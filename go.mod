module dspot

go 1.22
