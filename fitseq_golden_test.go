package dspot

import (
	"fmt"
	"testing"

	"dspot/internal/engine"
	"dspot/internal/tensor"
)

// Golden end-to-end pin of FitSequence on a fixed synthetic world. The
// expected values were re-captured (deliberately — see DESIGN.md §11) when
// the fitters switched from finite-difference to analytic Jacobians with
// two-phase multi-start screening: the LM trajectories legitimately moved,
// by ~1e-4 relative in every fitted field, while shock shape, scale, and
// growth verdict stayed identical. Every field is compared bit-for-bit: any
// *unintentional* change that reorders a float accumulation on the fitting
// path trips this test.
//
// If this test fails after an *intentional* algorithmic change (new search
// stage, different bracket, changed MDL costs), re-capture the constants by
// printing the fields with %x — do not loosen the comparison to a
// tolerance, or the next accidental drift will hide under it.
func TestFitSequenceGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("full FitSequence run")
	}
	truth, err := SyntheticGoogleTrendsKeyword("grammy",
		SyntheticConfig{Locations: 8, Ticks: 260, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	tr := NewFitTrace()
	m, err := FitSequence(truth.Tensor.Global(0), Options{Progress: tr.Hook()})
	if err != nil {
		t.Fatal(err)
	}

	// The analytic-Jacobian fit must never stall on the golden scenario: a
	// stall (damping driven to MaxLambda without an improving step) means LM
	// predicted descent along a direction where the objective refused to
	// move, which is exactly how a wrong Jacobian presents. Empirically the
	// analytic path runs every synthetic keyword stall-free while the FD
	// path stalls on 5 of 8 — see TestAnalyticJacobianStallFree.
	if rep := tr.Report(); rep.LMStalls != 0 {
		t.Errorf("analytic fit reported %d stalled LM runs over %d iterations, want 0",
			rep.LMStalls, rep.LMIterations)
	}

	p := m.Global[0]
	pin := func(name string, got, want float64) {
		t.Helper()
		if got != want {
			t.Errorf("%s = %x (%g), want %x (%g)", name, got, got, want, want)
		}
	}
	pin("N", p.N, 0x1.9168581d78295p+05)
	pin("Beta", p.Beta, 0x1.44dea0b40ba48p-01)
	pin("Delta", p.Delta, 0x1.23801a4f7c09p-01)
	pin("Gamma", p.Gamma, 0x1.0058eb8faf7dep+00)
	pin("I0", p.I0, 0x1.905ff9d14433p-05)
	pin("Eta0", p.Eta0, 0x0p+00)
	if p.TEta != NoGrowth {
		t.Errorf("TEta = %d, want NoGrowth", p.TEta)
	}
	pin("Scale", m.Scale[0], 0x1.4ec21e1d38817p+05)

	if len(m.Shocks) != 1 {
		t.Fatalf("got %d shocks, want 1", len(m.Shocks))
	}
	s := m.Shocks[0]
	if s.Period != 52 || s.Start != 4 || s.Width != 4 {
		t.Fatalf("shock shape P=%d S=%d W=%d, want P=52 S=4 W=4", s.Period, s.Start, s.Width)
	}
	wantStr := []float64{
		0x1.c265e8d009dfp-01,
		0x1.42f85bac9ada8p+02,
		0x1.44eb83d2e2aa8p+02,
		0x1.42d7ac44ab046p+02,
		0x1.430dc2275e069p+02,
	}
	if len(s.Strength) != len(wantStr) {
		t.Fatalf("got %d occurrence strengths, want %d", len(s.Strength), len(wantStr))
	}
	for i, want := range wantStr {
		pin(fmt.Sprintf("Strength[%d]", i), s.Strength[i], want)
	}

	// Cross-check the engine subsystem against the direct core path: the
	// same global sequence fitted through the "dspot" ModelEngine must be
	// bit-identical in every pinned field. The engine wrapper is required to
	// be a pure view over the core — any numeric divergence here means the
	// adapter re-entered the fit through a different code path.
	seq := truth.Tensor.Global(0)
	x := tensor.New([]string{"seq"}, []string{"all"}, len(seq))
	for tt, v := range seq {
		x.Set(0, 0, tt, v)
	}
	e, err := engine.Lookup(engine.Default)
	if err != nil {
		t.Fatal(err)
	}
	em, err := e.Fit(x, engine.FitOptions{GlobalOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	cm := em.(*engine.DspotModel).M
	ep := cm.Global[0]
	pin("engine N", ep.N, p.N)
	pin("engine Beta", ep.Beta, p.Beta)
	pin("engine Delta", ep.Delta, p.Delta)
	pin("engine Gamma", ep.Gamma, p.Gamma)
	pin("engine I0", ep.I0, p.I0)
	pin("engine Eta0", ep.Eta0, p.Eta0)
	pin("engine Scale", cm.Scale[0], m.Scale[0])
	if len(cm.Shocks) != len(m.Shocks) {
		t.Fatalf("engine path found %d shocks, want %d", len(cm.Shocks), len(m.Shocks))
	}
	es := cm.Shocks[0]
	if es.Period != s.Period || es.Start != s.Start || es.Width != s.Width {
		t.Fatalf("engine shock shape P=%d S=%d W=%d, want P=%d S=%d W=%d",
			es.Period, es.Start, es.Width, s.Period, s.Start, s.Width)
	}
	for i, want := range s.Strength {
		pin(fmt.Sprintf("engine Strength[%d]", i), es.Strength[i], want)
	}
}

// TestAnalyticJacobianStallFree pins the sharpest behavioural difference the
// analytic-sensitivity switch bought: LM never stalls with exact gradients on
// the synthetic scenarios, while the finite-difference path — whose probe
// step crosses the simulator's clamp/renormalisation subgradient kinks —
// stalls repeatedly (measured: 8 stalled runs on "harry potter", 5 on
// "grammy", stalls on 5 of the 8 keywords). A stall is LM driving damping to
// MaxLambda without finding an improving step: the model predicted descent
// where the objective would not move, i.e. the Jacobian disagreed with the
// function. If this test starts failing, the analytic recurrence in
// internal/core/sensitivity.go has drifted from Simulate — run the
// FD-vs-analytic agreement tests to localise the broken term.
func TestAnalyticJacobianStallFree(t *testing.T) {
	if testing.Short() {
		t.Skip("multiple full FitSequence runs")
	}
	// A spread of dynamics: "grammy" (the golden scenario, strongly
	// periodic), "harry potter" (the FD path's worst stall case), and
	// "olympics" (the heaviest fit, ~21k LM iterations).
	for _, kw := range []string{"grammy", "harry potter", "olympics"} {
		truth, err := SyntheticGoogleTrendsKeyword(kw,
			SyntheticConfig{Locations: 8, Ticks: 260, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		tr := NewFitTrace()
		if _, err := FitSequence(truth.Tensor.Global(0), Options{Progress: tr.Hook()}); err != nil {
			t.Fatalf("%s: %v", kw, err)
		}
		rep := tr.Report()
		if rep.LMIterations == 0 {
			t.Errorf("%s: trace saw no LM iterations; stall assertion is vacuous", kw)
		}
		if rep.LMStalls != 0 {
			t.Errorf("%s: %d stalled LM runs over %d iterations, want 0",
				kw, rep.LMStalls, rep.LMIterations)
		}
	}
}
