package dspot

import (
	"fmt"
	"testing"

	"dspot/internal/engine"
	"dspot/internal/tensor"
)

// Golden end-to-end pin of FitSequence on a fixed synthetic world. The
// expected values were captured before the hot-path buffer-reuse pass
// (SimulateInto / ε(t) window rebuilds / lm.FitInto) and every field is
// compared bit-for-bit: the optimisation work is required to be numerically
// invisible, and this test is the tripwire for any change that reorders a
// float accumulation on the fitting path.
//
// If this test fails after an *intentional* algorithmic change (new search
// stage, different bracket, changed MDL costs), re-capture the constants by
// printing the fields with %x — do not loosen the comparison to a
// tolerance, or the next accidental drift will hide under it.
func TestFitSequenceGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("full FitSequence run")
	}
	truth, err := SyntheticGoogleTrendsKeyword("grammy",
		SyntheticConfig{Locations: 8, Ticks: 260, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	m, err := FitSequence(truth.Tensor.Global(0), Options{})
	if err != nil {
		t.Fatal(err)
	}

	p := m.Global[0]
	pin := func(name string, got, want float64) {
		t.Helper()
		if got != want {
			t.Errorf("%s = %x (%g), want %x (%g)", name, got, got, want, want)
		}
	}
	pin("N", p.N, 0x1.9166cb34029cbp+05)
	pin("Beta", p.Beta, 0x1.44d958cf769c1p-01)
	pin("Delta", p.Delta, 0x1.237afecd4848ep-01)
	pin("Gamma", p.Gamma, 0x1.004f119da0b23p+00)
	pin("I0", p.I0, 0x1.90619deec2279p-05)
	pin("Eta0", p.Eta0, 0x0p+00)
	if p.TEta != NoGrowth {
		t.Errorf("TEta = %d, want NoGrowth", p.TEta)
	}
	pin("Scale", m.Scale[0], 0x1.4ec21e1d38817p+05)

	if len(m.Shocks) != 1 {
		t.Fatalf("got %d shocks, want 1", len(m.Shocks))
	}
	s := m.Shocks[0]
	if s.Period != 52 || s.Start != 4 || s.Width != 4 {
		t.Fatalf("shock shape P=%d S=%d W=%d, want P=52 S=4 W=4", s.Period, s.Start, s.Width)
	}
	wantStr := []float64{
		0x1.c26c685bc889dp-01,
		0x1.42fe13ecce8b7p+02,
		0x1.44f14c7dd84f7p+02,
		0x1.42dd71e58ff4dp+02,
		0x1.431383bb4bc2cp+02,
	}
	if len(s.Strength) != len(wantStr) {
		t.Fatalf("got %d occurrence strengths, want %d", len(s.Strength), len(wantStr))
	}
	for i, want := range wantStr {
		pin(fmt.Sprintf("Strength[%d]", i), s.Strength[i], want)
	}

	// Cross-check the engine subsystem against the direct core path: the
	// same global sequence fitted through the "dspot" ModelEngine must be
	// bit-identical in every pinned field. The engine wrapper is required to
	// be a pure view over the core — any numeric divergence here means the
	// adapter re-entered the fit through a different code path.
	seq := truth.Tensor.Global(0)
	x := tensor.New([]string{"seq"}, []string{"all"}, len(seq))
	for tt, v := range seq {
		x.Set(0, 0, tt, v)
	}
	e, err := engine.Lookup(engine.Default)
	if err != nil {
		t.Fatal(err)
	}
	em, err := e.Fit(x, engine.FitOptions{GlobalOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	cm := em.(*engine.DspotModel).M
	ep := cm.Global[0]
	pin("engine N", ep.N, p.N)
	pin("engine Beta", ep.Beta, p.Beta)
	pin("engine Delta", ep.Delta, p.Delta)
	pin("engine Gamma", ep.Gamma, p.Gamma)
	pin("engine I0", ep.I0, p.I0)
	pin("engine Eta0", ep.Eta0, p.Eta0)
	pin("engine Scale", cm.Scale[0], m.Scale[0])
	if len(cm.Shocks) != len(m.Shocks) {
		t.Fatalf("engine path found %d shocks, want %d", len(cm.Shocks), len(m.Shocks))
	}
	es := cm.Shocks[0]
	if es.Period != s.Period || es.Start != s.Start || es.Width != s.Width {
		t.Fatalf("engine shock shape P=%d S=%d W=%d, want P=%d S=%d W=%d",
			es.Period, es.Start, es.Width, s.Period, s.Start, s.Width)
	}
	for i, want := range s.Strength {
		pin(fmt.Sprintf("engine Strength[%d]", i), es.Strength[i], want)
	}
}
