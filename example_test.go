package dspot_test

import (
	"fmt"

	"dspot"
)

// ExampleFitSequence fits the single-sequence model to an annual-spike
// series and inspects the discovered cyclic event.
func ExampleFitSequence() {
	// A synthetic "grammy"-like world: annual spikes every 52 weeks.
	truth, err := dspot.SyntheticGoogleTrendsKeyword("grammy",
		dspot.SyntheticConfig{Locations: 8, Seed: 42})
	if err != nil {
		panic(err)
	}
	seq := truth.Tensor.Global(0)

	model, err := dspot.FitSequence(seq, dspot.Options{DisableGrowth: true})
	if err != nil {
		panic(err)
	}

	cyclic := 0
	for _, s := range model.ShocksFor(0) {
		if s.Period > 0 {
			cyclic++
		}
	}
	fmt.Println("found cyclic events:", cyclic > 0)
	// Output:
	// found cyclic events: true
}

// ExampleModel_ForecastGlobal forecasts past the training window; cyclic
// events recur at the right phase.
func ExampleModel_ForecastGlobal() {
	occ := make([]float64, 8)
	for i := range occ {
		occ[i] = 9
	}
	model := &dspot.Model{
		Keywords:  []string{"awards"},
		Locations: []string{"WW"},
		Ticks:     400,
		Global: []dspot.KeywordParams{{N: 100, Beta: 0.5, Delta: 0.45,
			Gamma: 0.5, I0: 0.02, TEta: dspot.NoGrowth}},
		Shocks: []dspot.Shock{{Keyword: 0, Period: 52, Start: 6, Width: 2,
			Strength: occ}},
	}

	forecast := model.ForecastGlobal(0, 156)
	events := model.PredictedEvents(0, 156)

	fmt.Println("forecast ticks:", len(forecast))
	fmt.Println("predicted occurrences:", len(events))
	fmt.Println("first at tick:", events[0].Start)
	// Output:
	// forecast ticks: 156
	// predicted occurrences: 3
	// first at tick: 422
}

// ExampleNewTensor shows direct tensor construction with missing values.
func ExampleNewTensor() {
	x := dspot.NewTensor([]string{"olympics"}, []string{"US", "JP"}, 4)
	x.Set(0, 0, 0, 36)
	x.Set(0, 1, 0, 12)
	x.Set(0, 0, 1, dspot.Missing) // unobserved week

	global := x.Global(0)
	fmt.Println("world total at tick 0:", global[0])
	// Output:
	// world total at tick 0: 48
}

// ExampleModel_AnomaliesGlobal flags ticks that the fitted model cannot
// explain.
func ExampleModel_AnomaliesGlobal() {
	model := &dspot.Model{
		Keywords:  []string{"k"},
		Locations: []string{"WW"},
		Ticks:     200,
		Global: []dspot.KeywordParams{{N: 100, Beta: 0.5, Delta: 0.45,
			Gamma: 0.5, I0: 0.02, TEta: dspot.NoGrowth}},
	}
	// Observations that follow the model except one corrupted tick.
	obs := model.SimulateGlobal(0, 200)
	obs[120] += 40

	anomalies := model.AnomaliesGlobal(0, obs, 3)
	fmt.Println("flagged:", len(anomalies) > 0 && anomalies[0].Tick == 120)
	// Output:
	// flagged: true
}

// ExampleNewStream appends ticks to a stream and refits incrementally.
func ExampleNewStream() {
	truth, err := dspot.SyntheticGoogleTrendsKeyword("grammy",
		dspot.SyntheticConfig{Locations: 8, Seed: 7})
	if err != nil {
		panic(err)
	}
	seq := truth.Tensor.Global(0)

	stream := dspot.NewStream(dspot.Options{DisableGrowth: true}, 52)
	refitted, err := stream.Append(seq[:300]...) // initial fit
	if err != nil {
		panic(err)
	}
	fmt.Println("initial fit:", refitted)

	refitted, _ = stream.Append(seq[300:310]...) // below refit threshold
	fmt.Println("eager refit:", refitted)

	fmt.Println("forecast ticks:", len(stream.Forecast(26)))
	// Output:
	// initial fit: true
	// eager refit: false
	// forecast ticks: 26
}
