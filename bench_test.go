package dspot

// One benchmark per figure of the paper's evaluation (Figs. 1, 4–11), plus
// micro-benchmarks for the core primitives. Figure benchmarks run the same
// code paths as cmd/dspot-exp at the Small experiment scale and report the
// headline quality metric alongside timing, so
//
//	go test -bench=. -benchmem
//
// regenerates a compact form of the whole evaluation. Table 1 (the
// capability matrix) is qualitative and documented in README.md instead.

import (
	"sort"
	"sync"
	"testing"
	"time"

	"dspot/internal/core"
	"dspot/internal/experiments"
	"dspot/internal/lm"
	"dspot/internal/stats"
)

func benchCfg() experiments.Config {
	cfg := experiments.Small()
	cfg.Workers = 4
	return cfg
}

// BenchmarkFig01HarryPotter — Fig. 1: event detection + world reaction.
func BenchmarkFig01HarryPotter(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig1(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Fit.NRMSE, "nrmse")
		b.ReportMetric(float64(len(res.Fit.Events)), "events")
	}
}

// BenchmarkFig04Ablation — Fig. 4: growth/shock ablation on "Amazon".
func BenchmarkFig04Ablation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig4(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.RMSEBoth, "rmse-both")
		b.ReportMetric(res.RMSENone, "rmse-none")
	}
}

// BenchmarkFig05Keywords — Fig. 5: global fits for the 8 keywords.
func BenchmarkFig05Keywords(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig5(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		mean := 0.0
		for _, r := range res.Reports {
			mean += r.NRMSE
		}
		b.ReportMetric(mean/float64(len(res.Reports)), "mean-nrmse")
	}
}

// BenchmarkFig06Twitter — Fig. 6: hashtag fits.
func BenchmarkFig06Twitter(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig6(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		mean := 0.0
		for _, r := range res.Reports {
			mean += r.NRMSE
		}
		b.ReportMetric(mean/float64(len(res.Reports)), "mean-nrmse")
	}
}

// BenchmarkFig07Memes — Fig. 7: meme fits.
func BenchmarkFig07Memes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig7(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		mean := 0.0
		for _, r := range res.Reports {
			mean += r.NRMSE
		}
		b.ReportMetric(mean/float64(len(res.Reports)), "mean-nrmse")
	}
}

// BenchmarkFig08EbolaLocal — Fig. 8: local analysis + outlier detection.
func BenchmarkFig08EbolaLocal(b *testing.B) {
	cfg := benchCfg()
	cfg.Locations = 20
	cfg.Ticks = 0 // needs the 2014 burst
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig8(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(res.Similar)), "similar")
		b.ReportMetric(float64(len(res.Outliers)), "outliers")
	}
}

// BenchmarkFig09GlobalAccuracy — Fig. 9(a): Δ-SPOT vs SIRS/SKIPS/FUNNEL.
func BenchmarkFig09GlobalAccuracy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig9Global(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Global["D-SPOT"], "dspot-nrmse")
		b.ReportMetric(res.Global["SIRS"], "sirs-nrmse")
		b.ReportMetric(res.Global["SKIPS"], "skips-nrmse")
		b.ReportMetric(res.Global["FUNNEL"], "funnel-nrmse")
	}
}

// BenchmarkFig09LocalAccuracy — Fig. 9(b): local-level comparison. Smaller
// location budget: every baseline fits every local sequence.
func BenchmarkFig09LocalAccuracy(b *testing.B) {
	cfg := benchCfg()
	cfg.Locations = 6
	cfg.Ticks = 200
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig9Local(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Local["D-SPOT"], "dspot-nrmse")
		b.ReportMetric(res.Local["FUNNEL"], "funnel-nrmse")
	}
}

// BenchmarkFig10ScalabilityKeywords — Fig. 10(a): cost vs d.
func BenchmarkFig10ScalabilityKeywords(b *testing.B) {
	cfg := benchCfg()
	cfg.Ticks = 160
	cfg.Locations = 8
	sweeps := experiments.Fig10Sweeps{Keywords: []int{1, 2, 4},
		Locations: []int{4}, Ticks: []int{160}}
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig10(cfg, sweeps)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(experiments.LinearityR2(res.ByKeywords), "r2-linear")
	}
}

// BenchmarkFig10ScalabilityLocations — Fig. 10(b): cost vs l.
func BenchmarkFig10ScalabilityLocations(b *testing.B) {
	cfg := benchCfg()
	cfg.Ticks = 160
	sweeps := experiments.Fig10Sweeps{Keywords: []int{1},
		Locations: []int{4, 8, 16}, Ticks: []int{160}}
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig10(cfg, sweeps)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(experiments.LinearityR2(res.ByLocations), "r2-linear")
	}
}

// BenchmarkFig10ScalabilityTicks — Fig. 10(c): cost vs n.
func BenchmarkFig10ScalabilityTicks(b *testing.B) {
	cfg := benchCfg()
	cfg.Locations = 8
	sweeps := experiments.Fig10Sweeps{Keywords: []int{1},
		Locations: []int{4}, Ticks: []int{80, 160, 240}}
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig10(cfg, sweeps)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(experiments.LinearityR2(res.ByTicks), "r2-linear")
	}
}

// BenchmarkFig11Forecast — Fig. 11: Grammy forecasting vs AR/TBATS.
func BenchmarkFig11Forecast(b *testing.B) {
	cfg := benchCfg()
	cfg.Ticks = 0 // full series: the horizon must contain future spikes
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig11(cfg, 400)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.RMSE["D-SPOT"], "dspot-rmse")
		b.ReportMetric(res.Flat, "flat-rmse")
	}
}

// Extension studies (beyond the paper's figures; see EXPERIMENTS.md).

// BenchmarkAblationCycles — the cyclic-shock-class ablation.
func BenchmarkAblationCycles(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationCycles(benchCfg(), 300)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.FullFcstRMSE, "full-fcst-rmse")
		b.ReportMetric(res.NoCycFcstRMSE, "nocyc-fcst-rmse")
	}
}

// BenchmarkAblationMDL — the MDL-gate ablation.
func BenchmarkAblationMDL(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationMDL(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.GatedShocks), "gated-shocks")
		b.ReportMetric(float64(res.UngatedShocks), "ungated-shocks")
	}
}

// BenchmarkRobustness — missing/noise degradation sweeps.
func BenchmarkRobustness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Robustness(benchCfg(),
			[]float64{0, 0.2}, []float64{0.02, 0.1})
		if err != nil {
			b.Fatal(err)
		}
		found := 0.0
		if res.Missing[1].Score.PeriodFound {
			found = 1
		}
		b.ReportMetric(found, "period-at-20pct-missing")
	}
}

// BenchmarkRollingForecast — rolling-origin comparison on the grammy series.
func BenchmarkRollingForecast(b *testing.B) {
	rc := experiments.RollingConfig{FirstOrigin: 400, Horizon: 52, Step: 124}
	for i := 0; i < b.N; i++ {
		res, err := experiments.Rolling(benchCfg(), rc, []string{"grammy"})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.RMSE["D-SPOT"], "dspot-nrmse")
		b.ReportMetric(res.RMSE["flat"], "flat-nrmse")
	}
}

// BenchmarkTailScale — wide-fit throughput over a bursty hashtag tail.
func BenchmarkTailScale(b *testing.B) {
	cfg := benchCfg()
	cfg.Locations = 4
	for i := 0; i < b.N; i++ {
		res, err := experiments.TailScale(cfg, 8)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.PerSequence, "s/sequence")
		b.ReportMetric(res.MeanNRMSE, "mean-nrmse")
	}
}

// Micro-benchmarks for the primitives the figures are built on.

// BenchmarkSimulate576 measures one SIV simulation at GoogleTrends length.
func BenchmarkSimulate576(b *testing.B) {
	p := KeywordParams{N: 100, Beta: 0.5, Delta: 0.45, Gamma: 0.5, I0: 0.02,
		TEta: NoGrowth}
	eps := make([]float64, 576)
	for i := range eps {
		eps[i] = 1
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.Simulate(&p, 576, eps, -1)
	}
}

// BenchmarkLevenbergMarquardt measures an LM fit of the 5-parameter base
// model against a 576-tick sequence.
func BenchmarkLevenbergMarquardt(b *testing.B) {
	truth := KeywordParams{N: 1, Beta: 0.5, Delta: 0.45, Gamma: 0.5, I0: 0.02,
		TEta: NoGrowth}
	obs := core.Simulate(&truth, 576, nil, -1)
	resid := func(p []float64) []float64 {
		cand := KeywordParams{N: p[0], Beta: p[1], Delta: p[2], Gamma: p[3],
			I0: p[4], TEta: NoGrowth}
		sim := core.Simulate(&cand, 576, nil, -1)
		r := make([]float64, len(sim))
		for t := range r {
			r[t] = sim[t] - obs[t]
		}
		return r
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lm.Fit(resid, []float64{0.5, 0.3, 0.3, 0.3, 0.01},
			lm.Options{MaxIter: 50}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGlobalFitSequence measures a full single-sequence GlobalFit.
func BenchmarkGlobalFitSequence(b *testing.B) {
	truth, err := SyntheticGoogleTrendsKeyword("grammy",
		SyntheticConfig{Locations: 8, Ticks: 260, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	seq := truth.Tensor.Global(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FitSequence(seq, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkJacobian compares the cost of one LM Jacobian evaluation under
// the two modes the fitters support: a single analytic forward-sensitivity
// pass (BenchmarkJacobian/analytic) versus the p+1 re-simulations of the
// finite-difference probe loop it replaced (BenchmarkJacobian/fd). The
// workload is the base-parameter lane set {N, β, δ, γ, i0} over a
// grammy-scale window, i.e. exactly the inner loop FitSequence runs
// thousands of times per fit.
func BenchmarkJacobian(b *testing.B) {
	const n = 260
	p := KeywordParams{N: 100, Beta: 0.55, Delta: 0.4, Gamma: 0.6,
		I0: 0.01, TEta: NoGrowth}
	specs := core.BaseSensSpecs()
	np := len(specs)

	b.Run("analytic", func(b *testing.B) {
		out := make([]float64, n)
		jac := make([]float64, n*np)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			out, jac = core.SimulateWithSensitivities(out, jac, &p, n, nil, -1, specs)
		}
		_ = jac
	})

	b.Run("fd", func(b *testing.B) {
		base := make([]float64, n)
		probe := make([]float64, n)
		jac := make([]float64, n*np)
		steps := []float64{1e-6 * p.N, 1e-7, 1e-7, 1e-7, 1e-7}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			base = core.SimulateInto(base, &p, n, nil, -1)
			for j := 0; j < np; j++ {
				pp := p
				switch specs[j].Param {
				case core.SensN:
					pp.N += steps[j]
				case core.SensBeta:
					pp.Beta += steps[j]
				case core.SensDelta:
					pp.Delta += steps[j]
				case core.SensGamma:
					pp.Gamma += steps[j]
				case core.SensI0:
					pp.I0 += steps[j]
				}
				probe = core.SimulateInto(probe, &pp, n, nil, -1)
				for t := 0; t < n; t++ {
					jac[t*np+j] = (probe[t] - base[t]) / steps[j]
				}
			}
		}
		_ = jac
	})
}

// BenchmarkForecast measures forecasting from a fitted model.
func BenchmarkForecast(b *testing.B) {
	occ := make([]float64, 8)
	for i := range occ {
		occ[i] = 9
	}
	m := &Model{
		Keywords: []string{"k"}, Locations: []string{"WW"}, Ticks: 400,
		Global: []KeywordParams{{N: 100, Beta: 0.5, Delta: 0.45, Gamma: 0.5,
			I0: 0.02, TEta: NoGrowth}},
		Shocks: []Shock{{Keyword: 0, Period: 52, Start: 6, Width: 2, Strength: occ}},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.ForecastGlobal(0, 156)
	}
}

// BenchmarkMDLCost measures the per-candidate MDL evaluation used inside
// shock discovery.
func BenchmarkMDLCost(b *testing.B) {
	truth, err := SyntheticGoogleTrendsKeyword("amazon",
		SyntheticConfig{Locations: 4, Ticks: 200, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	x := truth.Tensor
	m, err := FitGlobal(x, Options{DisableShocks: true, DisableGrowth: true})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.TotalCost(x)
	}
}

// BenchmarkRMSE576 measures the evaluation metric itself.
func BenchmarkRMSE576(b *testing.B) {
	a := make([]float64, 576)
	c := make([]float64, 576)
	for i := range a {
		a[i] = float64(i % 53)
		c[i] = float64(i % 47)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stats.RMSE(a, c)
	}
}

// benchStreamSeries synthesises n ticks of a cheap SIV series with one
// periodic spike, matching the stream maintenance scenarios.
func benchStreamSeries(n int) []float64 {
	p := core.KeywordParams{N: 50, Beta: 0.6, Delta: 0.45, Gamma: 0.4, I0: 0.03,
		TEta: core.NoGrowth}
	shock := core.Shock{Keyword: 0, Period: 52, Start: 10, Width: 2}
	shock.Strength = make([]float64, shock.Occurrences(n))
	for i := range shock.Strength {
		shock.Strength[i] = 7
	}
	m := &core.Model{Keywords: []string{"s"}, Ticks: n,
		Global: []core.KeywordParams{p}, Shocks: []core.Shock{shock}}
	return m.SimulateGlobal(0, n)
}

// streamBenchN is the series length at which BenchmarkStreamAppend
// measures: the tentpole SLO is stated at n=10k ticks.
const streamBenchN = 10_000

// streamBench grows a 10k-tick incremental stream exactly once (seed fit on
// a 300-tick prefix, then one O(tail) append per tick — never a 10k-tick
// batch fit) and snapshots it. Each benchmark invocation restores from the
// snapshot, which only replays the recurrence (O(n), no fitting), so the
// harness can re-run the function without re-paying the growth.
var streamBench struct {
	once   sync.Once
	err    error
	state  core.StreamState
	series []float64
}

func streamBenchStream(b *testing.B) (*core.Stream, []float64) {
	sb := &streamBench
	sb.once.Do(func() {
		sb.series = benchStreamSeries(streamBenchN + 1)
		s := core.NewIncrementalStream(core.FitOptions{DisableGrowth: true},
			26, core.IncrementalConfig{TailWindow: 104, DebtLimit: 1e12})
		if _, sb.err = s.Append(sb.series[:300]...); sb.err != nil {
			return
		}
		for _, v := range sb.series[300:streamBenchN] {
			if _, sb.err = s.Append(v); sb.err != nil {
				return
			}
		}
		sb.state = s.State()
	})
	if sb.err != nil {
		b.Fatal(sb.err)
	}
	return core.RestoreStream(core.FitOptions{DisableGrowth: true}, sb.state), sb.series
}

// BenchmarkStreamAppend measures one incremental single-tick append with
// 10k ticks already absorbed — the tentpole's bounded-time contract. The
// debt limit is out of reach so the measurement isolates the O(tail) path;
// p99-ms is the per-append tail latency the 10ms SLO gates in CI (see
// TestStreamAppendLatencySLO).
func BenchmarkStreamAppend(b *testing.B) {
	s, series := streamBenchStream(b)
	lat := make([]float64, 0, b.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		if _, err := s.Append(series[streamBenchN]); err != nil {
			b.Fatal(err)
		}
		lat = append(lat, time.Since(t0).Seconds())
	}
	b.StopTimer()
	sort.Float64s(lat)
	b.ReportMetric(lat[len(lat)*99/100]*1e3, "p99-ms")
}

// BenchmarkStreamAppendBatch is the pre-incremental baseline: the same
// single-tick appends on a batch-mode stream, which pays a full
// warm-started refit every RefitEvery appends. Kept at a much smaller n so
// the refit cycle stays benchmarkable; the per-op contrast with
// BenchmarkStreamAppend (amortised refit vs O(tail)) is the point.
func BenchmarkStreamAppendBatch(b *testing.B) {
	const n = 640
	series := benchStreamSeries(n + 1)
	s := core.NewStream(core.FitOptions{DisableGrowth: true, Workers: 1, MaxShocks: 4}, 26)
	if _, err := s.Append(series[:n]...); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Append(series[n]); err != nil {
			b.Fatal(err)
		}
	}
}
