package dspot

// End-to-end CLI tests: build the three binaries and run the full
// generate → fit → events → forecast pipeline on a small synthetic tensor.

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildCmds compiles the CLI binaries once into a shared temp dir.
func buildCmds(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	for _, name := range []string{"dspot", "dspot-gen", "dspot-exp"} {
		bin := filepath.Join(dir, name)
		out, err := exec.Command("go", "build", "-o", bin, "./cmd/"+name).CombinedOutput()
		if err != nil {
			t.Fatalf("building %s: %v\n%s", name, err, out)
		}
	}
	return dir
}

func run(t *testing.T, bin string, args ...string) string {
	t.Helper()
	out, err := exec.Command(bin, args...).CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", filepath.Base(bin), args, err, out)
	}
	return string(out)
}

func TestCLIPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI pipeline is slow")
	}
	bins := buildCmds(t)
	work := t.TempDir()
	data := filepath.Join(work, "data.csv")
	model := filepath.Join(work, "model.json")
	fcOut := filepath.Join(work, "forecast.csv")

	// Generate a small grammy world.
	out := run(t, filepath.Join(bins, "dspot-gen"),
		"-dataset", "googletrends", "-keyword", "grammy",
		"-locations", "6", "-seed", "3", "-out", data)
	if !strings.Contains(out, "1 keywords × 6 locations") {
		t.Fatalf("gen output: %s", out)
	}

	// Fit.
	out = run(t, filepath.Join(bins, "dspot"),
		"fit", "-in", data, "-out", model, "-workers", "4")
	if !strings.Contains(out, "fitted 1 keywords") {
		t.Fatalf("fit output: %s", out)
	}
	if _, err := os.Stat(model); err != nil {
		t.Fatalf("model file not written: %v", err)
	}

	// Events: the grammy world has an annual cycle.
	out = run(t, filepath.Join(bins, "dspot"), "events", "-model", model)
	if !strings.Contains(out, "grammy:") {
		t.Fatalf("events output: %s", out)
	}
	if !strings.Contains(out, "every") {
		t.Fatalf("no cyclic event in events output: %s", out)
	}

	// Forecast with CSV output.
	out = run(t, filepath.Join(bins, "dspot"),
		"forecast", "-model", model, "-horizon", "104", "-out", fcOut)
	if !strings.Contains(out, "predicted event") {
		t.Fatalf("forecast output: %s", out)
	}
	fc, err := os.ReadFile(fcOut)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(fc)), "\n")
	if len(lines) != 105 { // header + 104 ticks
		t.Fatalf("forecast CSV has %d lines", len(lines))
	}

	// Simulate (fitted curve) to stdout.
	out = run(t, filepath.Join(bins, "dspot"), "simulate", "-model", model)
	if len(strings.Split(strings.TrimSpace(out), "\n")) < 100 {
		t.Fatalf("simulate output too short")
	}

	// Local structure table.
	out = run(t, filepath.Join(bins, "dspot"), "local", "-model", model, "-top", "3")
	if !strings.Contains(out, "population") || !strings.Contains(out, "participation") {
		t.Fatalf("local output: %s", out)
	}

	// MDL cost report.
	out = run(t, filepath.Join(bins, "dspot"), "cost", "-model", model, "-in", data)
	if !strings.Contains(out, "total MDL cost") {
		t.Fatalf("cost output: %s", out)
	}
}

func TestCLIWideFormat(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI pipeline is slow")
	}
	bins := buildCmds(t)
	work := t.TempDir()
	wide := filepath.Join(work, "wide.csv")
	content := "week,US,JP\n"
	for i := 0; i < 120; i++ {
		content += "t" + string(rune('0'+i%10)) + ",5,3\n"
	}
	if err := os.WriteFile(wide, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	model := filepath.Join(work, "wide-model.json")
	out := run(t, filepath.Join(bins, "dspot"),
		"fit", "-in", wide, "-wide", "flatkw", "-out", model,
		"-no-shocks", "-no-growth", "-global-only")
	if !strings.Contains(out, "fitted 1 keywords × 2 locations") {
		t.Fatalf("wide fit output: %s", out)
	}
}

func TestCLIGenDatasets(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI pipeline is slow")
	}
	bins := buildCmds(t)
	work := t.TempDir()
	gen := filepath.Join(bins, "dspot-gen")

	for _, c := range []struct {
		dataset string
		args    []string
		want    string
	}{
		{"twitter", []string{"-extra", "2", "-locations", "4"}, "4 keywords × 4 locations × 245"},
		{"memetracker", []string{"-locations", "3"}, "2 keywords × 3 locations × 92"},
		{"googletrends", []string{"-locations", "3", "-ticks", "60"}, "8 keywords × 3 locations × 60"},
	} {
		out := filepath.Join(work, c.dataset+".csv")
		args := append([]string{"-dataset", c.dataset, "-seed", "2", "-out", out}, c.args...)
		got := run(t, gen, args...)
		if !strings.Contains(got, c.want) {
			t.Fatalf("%s: got %q, want %q", c.dataset, got, c.want)
		}
	}
}

func TestCLIErrors(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI pipeline is slow")
	}
	bins := buildCmds(t)
	// Missing -in must fail.
	if err := exec.Command(filepath.Join(bins, "dspot"), "fit").Run(); err == nil {
		t.Fatal("fit without -in succeeded")
	}
	// Unknown subcommand must fail.
	if err := exec.Command(filepath.Join(bins, "dspot"), "bogus").Run(); err == nil {
		t.Fatal("unknown subcommand succeeded")
	}
	// Unknown dataset must fail.
	if err := exec.Command(filepath.Join(bins, "dspot-gen"),
		"-dataset", "bogus").Run(); err == nil {
		t.Fatal("unknown dataset succeeded")
	}
}
