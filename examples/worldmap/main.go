// Worldmap: reproduce the paper's Fig. 8 workflow — fit the "Ebola" world
// locally, find the countries that track the global burst of 2014, and the
// low-connectivity outliers that do not react. Prints a text reaction map.
//
//	go run ./examples/worldmap
package main

import (
	"fmt"
	"log"
	"sort"
	"strings"

	"dspot"
)

func main() {
	truth, err := dspot.SyntheticGoogleTrendsKeyword("ebola",
		dspot.SyntheticConfig{Seed: 1}) // all 232 territories
	if err != nil {
		log.Fatal(err)
	}
	x := truth.Tensor

	// Keep the run quick: the 30 largest markets plus the paper's named
	// countries (the outliers are small and would otherwise be sliced off).
	keep := []int{}
	seen := map[int]bool{}
	for j := 0; j < 30; j++ {
		keep = append(keep, j)
		seen[j] = true
	}
	for _, code := range []string{"AU", "RU", "GB", "US", "JP", "LA", "NP", "CG"} {
		if j, err := x.LocationIndex(code); err == nil && !seen[j] {
			keep = append(keep, j)
			seen[j] = true
		}
	}
	x, err = x.SliceLocations(keep)
	if err != nil {
		log.Fatal(err)
	}

	model, err := dspot.Fit(x, dspot.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// Reaction level per country: the maximum fitted participation across
	// all occurrences of the keyword's shocks.
	levels := make([]float64, len(x.Locations))
	for _, s := range model.ShocksFor(0) {
		if s.Local == nil {
			continue
		}
		for _, row := range s.Local {
			for j, v := range row {
				if v > levels[j] {
					levels[j] = v
				}
			}
		}
	}
	max := 0.0
	for _, v := range levels {
		if v > max {
			max = v
		}
	}

	type row struct {
		code  string
		level float64
	}
	rows := make([]row, len(levels))
	for j := range levels {
		l := 0.0
		if max > 0 {
			l = levels[j] / max
		}
		rows[j] = row{x.Locations[j], l}
	}
	sort.Slice(rows, func(a, b int) bool {
		if rows[a].level != rows[b].level {
			return rows[a].level > rows[b].level
		}
		return rows[a].code < rows[b].code
	})

	fmt.Println("world reaction to the 2014 Ebola burst (fitted participation):")
	var outliers []string
	for _, r := range rows {
		if r.level <= 0.05 {
			outliers = append(outliers, r.code)
			continue
		}
		fmt.Printf("  %-3s %5.2f %s\n", r.code, r.level,
			strings.Repeat("#", 1+int(30*r.level)))
	}
	fmt.Printf("\noutliers (no reaction despite observed activity): %s\n",
		strings.Join(outliers, " "))
}
