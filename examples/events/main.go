// Events: reproduce the paper's Fig. 1 workflow — detect the cyclic and
// one-shot external events behind the "Harry Potter" search series and
// rank the world-wide reaction to the strongest occurrence.
//
//	go run ./examples/events
package main

import (
	"fmt"
	"log"
	"sort"
	"strings"

	"dspot"
)

func main() {
	truth, err := dspot.SyntheticGoogleTrendsKeyword("harry potter",
		dspot.SyntheticConfig{Locations: 40, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	x := truth.Tensor

	model, err := dspot.Fit(x, dspot.Options{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("detected events for \"harry potter\":")
	shocks := model.ShocksFor(0)
	for _, s := range shocks {
		date := weekToDate(s.Start)
		if s.Period > 0 {
			fmt.Printf("  cyclic: first %s, every %d weeks, width %d, strengths %s\n",
				date, s.Period, s.Width, fmtStrengths(s.Strength))
		} else {
			fmt.Printf("  one-shot: %s, width %d, strength %.2f\n",
				date, s.Width, s.MeanStrength())
		}
	}

	// World-wide reaction to the strongest single occurrence (the paper's
	// Fig. 1(b): the release of the final episode).
	bestShock, bestOcc, bestVal := -1, -1, -1.0
	for si, s := range shocks {
		for occ, v := range s.Strength {
			if v > bestVal {
				bestShock, bestOcc, bestVal = si, occ, v
			}
		}
	}
	if bestShock < 0 || shocks[bestShock].Local == nil {
		fmt.Println("no local participation fitted")
		return
	}
	s := shocks[bestShock]
	fmt.Printf("\nworld-wide reaction to the %s occurrence:\n",
		weekToDate(s.OccurrenceStart(bestOcc)))

	type reaction struct {
		code  string
		level float64
	}
	var rs []reaction
	maxLevel := 0.0
	for j, v := range s.Local[bestOcc] {
		rs = append(rs, reaction{x.Locations[j], v})
		if v > maxLevel {
			maxLevel = v
		}
	}
	sort.Slice(rs, func(a, b int) bool {
		if rs[a].level != rs[b].level {
			return rs[a].level > rs[b].level
		}
		return rs[a].code < rs[b].code
	})
	for i, r := range rs {
		if i >= 15 {
			fmt.Printf("  ... and %d more countries\n", len(rs)-i)
			break
		}
		bar := ""
		if maxLevel > 0 {
			bar = strings.Repeat("#", int(20*r.level/maxLevel))
		}
		fmt.Printf("  %-3s %6.2f %s\n", r.code, r.level, bar)
	}
}

// weekToDate renders a weekly tick (tick 0 = January 2004) as YYYY-MM.
func weekToDate(tick int) string {
	days := tick * 7
	year := 2004 + days/365
	month := (days%365)/30 + 1
	if month > 12 {
		month = 12
	}
	return fmt.Sprintf("%04d-%02d", year, month)
}

func fmtStrengths(s []float64) string {
	parts := make([]string, len(s))
	for i, v := range s {
		parts[i] = fmt.Sprintf("%.1f", v)
	}
	return "[" + strings.Join(parts, " ") + "]"
}
