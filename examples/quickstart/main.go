// Quickstart: build an activity tensor, fit Δ-SPOT, inspect the detected
// structure, and forecast.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"dspot"
)

func main() {
	// A small synthetic world stands in for real (keyword, country, week)
	// search counts: the "grammy" keyword over the ten largest markets.
	truth, err := dspot.SyntheticGoogleTrendsKeyword("grammy",
		dspot.SyntheticConfig{Locations: 10, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	x := truth.Tensor
	fmt.Printf("tensor: %d keyword × %d countries × %d weeks\n", x.D(), x.L(), x.N())

	// Fit the full two-layer model. No parameters to tune: the MDL
	// objective decides how many external events exist, whether there is a
	// growth effect, and which countries participate in which event.
	model, err := dspot.Fit(x, dspot.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// (P1) Base dynamics per keyword.
	p := model.Global[0]
	fmt.Printf("base dynamics: N=%.1f beta=%.3f delta=%.3f gamma=%.3f\n",
		p.N, p.Beta, p.Delta, p.Gamma)
	if p.HasGrowth() {
		fmt.Printf("growth effect: onset tick %d, rate %.3f\n", p.TEta, p.Eta0)
	}

	// (P4) Detected external events.
	for _, s := range model.ShocksFor(0) {
		kind := "one-shot"
		if s.Period > 0 {
			kind = fmt.Sprintf("every %d weeks", s.Period)
		}
		fmt.Printf("event: start week %d, width %d, strength %.2f (%s)\n",
			s.Start, s.Width, s.MeanStrength(), kind)
	}

	// (P2) Area specificity: the largest and smallest fitted local
	// populations.
	bigJ, smallJ := 0, 0
	for j := range x.Locations {
		if model.LocalN[0][j] > model.LocalN[0][bigJ] {
			bigJ = j
		}
		if model.LocalN[0][j] < model.LocalN[0][smallJ] {
			smallJ = j
		}
	}
	fmt.Printf("largest market: %s (N=%.1f); smallest: %s (N=%.1f)\n",
		x.Locations[bigJ], model.LocalN[0][bigJ],
		x.Locations[smallJ], model.LocalN[0][smallJ])

	// Forecast one year ahead: cyclic events recur in the forecast.
	future := model.ForecastGlobal(0, 52)
	peak, at := 0.0, 0
	for t, v := range future {
		if v > peak {
			peak, at = v, t
		}
	}
	fmt.Printf("forecast: next-year peak %.1f at week +%d\n", peak, at+1)
	for _, e := range model.PredictedEvents(0, 52) {
		fmt.Printf("predicted event: week %d (strength %.2f)\n", e.Start, e.Strength)
	}
}
