// Forecast: reproduce the paper's Fig. 11 workflow — train Δ-SPOT on the
// first 400 weeks of the "Grammy" series, forecast the rest, and compare
// against AR and TBATS baselines. Δ-SPOT predicts the *time-tick, duration
// and strength* of the future annual award spikes; linear baselines cannot.
//
//	go run ./examples/forecast
package main

import (
	"fmt"
	"log"
	"math"

	"dspot"
)

func main() {
	truth, err := dspot.SyntheticGoogleTrendsKeyword("grammy",
		dspot.SyntheticConfig{Locations: 20, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	obs := truth.Tensor.Global(0)
	const trainTicks = 400
	train, test := obs[:trainTicks], obs[trainTicks:]
	h := len(test)

	// Δ-SPOT.
	model, err := dspot.FitSequence(train, dspot.Options{})
	if err != nil {
		log.Fatal(err)
	}
	dspotFC := model.ForecastGlobal(0, h)

	fmt.Printf("training on %d weeks, forecasting %d weeks\n\n", trainTicks, h)
	fmt.Println("Δ-SPOT predicted events:")
	for _, e := range model.PredictedEvents(0, h) {
		fmt.Printf("  week %d (%s): width %d, strength %.2f, every %d weeks\n",
			e.Start, weekToDate(e.Start), e.Width, e.Strength, e.Period)
	}

	// Baselines: AR with the paper's regression orders, and TBATS.
	fmt.Println("\nforecast RMSE over the horizon (lower is better):")
	fmt.Printf("  %-8s %8.3f\n", "D-SPOT", rmse(test, dspotFC))
	for _, order := range []int{8, 26, 50} {
		fc, err := dspot.ForecastAR(train, order, h)
		if err != nil {
			continue
		}
		fmt.Printf("  AR(%-2d)   %8.3f\n", order, rmse(test, fc))
	}
	if fc, err := dspot.ForecastTBATS(train, h); err == nil {
		fmt.Printf("  %-8s %8.3f\n", "TBATS", rmse(test, fc))
	}
	fmt.Printf("  %-8s %8.3f  (predict the training mean)\n", "flat", flat(train, test))
}

func rmse(obs, est []float64) float64 {
	n := len(obs)
	if len(est) < n {
		n = len(est)
	}
	sum := 0.0
	for i := 0; i < n; i++ {
		d := obs[i] - est[i]
		sum += d * d
	}
	return math.Sqrt(sum / float64(n))
}

func flat(train, test []float64) float64 {
	mean := 0.0
	for _, v := range train {
		mean += v
	}
	mean /= float64(len(train))
	fc := make([]float64, len(test))
	for i := range fc {
		fc[i] = mean
	}
	return rmse(test, fc)
}

func weekToDate(tick int) string {
	days := tick * 7
	year := 2004 + days/365
	month := (days%365)/30 + 1
	if month > 12 {
		month = 12
	}
	return fmt.Sprintf("%04d-%02d", year, month)
}
