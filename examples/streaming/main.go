// Streaming: a live-monitoring scenario. Weekly counts arrive in batches;
// a dspot.Stream keeps the model warm (incremental refits that retain the
// discovered events), and each batch is screened for anomalies against the
// current model — the workflow of a team watching search interest for a
// brand or a disease.
//
//	go run ./examples/streaming
package main

import (
	"fmt"
	"log"

	"dspot"
)

func main() {
	// The "wire": a synthetic grammy world replayed in batches, with one
	// corrupted observation injected mid-stream.
	truth, err := dspot.SyntheticGoogleTrendsKeyword("grammy",
		dspot.SyntheticConfig{Locations: 12, Seed: 9})
	if err != nil {
		log.Fatal(err)
	}
	feed := truth.Tensor.Global(0)
	feed[430] *= 6 // a data glitch (or an undetected real-world event)

	stream := dspot.NewStream(dspot.Options{DisableGrowth: true}, 26)

	const batch = 26 // half a year per delivery
	for start := 0; start < len(feed); start += batch {
		end := start + batch
		if end > len(feed) {
			end = len(feed)
		}
		refitted, err := stream.Append(feed[start:end]...)
		if err != nil {
			log.Fatal(err)
		}
		if !refitted || !stream.Ready() {
			continue
		}
		model := stream.Model()
		fmt.Printf("tick %4d: refit — %d events known", end, len(model.ShocksFor(0)))

		// Screen the window we just ingested for anomalies.
		flagged := 0
		for _, a := range model.AnomaliesGlobal(0, feed[:end], 4) {
			if a.Tick >= start {
				flagged++
				fmt.Printf("; ANOMALY t=%d (%.1fσ, saw %.1f expected %.1f)",
					a.Tick, a.Score, a.Value, a.Est)
			}
		}
		if flagged == 0 {
			fmt.Printf("; window clean")
		}
		fmt.Println()
	}

	// End of stream: what does the model expect next year?
	fmt.Println("\nnext-year outlook:")
	model := stream.Model()
	for _, e := range model.PredictedEvents(0, 52) {
		fmt.Printf("  event at tick %d (width %d, strength %.1f, every %d weeks)\n",
			e.Start, e.Width, e.Strength, e.Period)
	}
	band := model.ForecastBands(0, 52, feed, 200, 0.8, 1)
	peak, at := 0.0, 0
	for t, v := range band.Median {
		if v > peak {
			peak, at = v, t
		}
	}
	fmt.Printf("  peak week +%d: median %.1f (80%% band %.1f – %.1f)\n",
		at+1, peak, band.Lower[at], band.Upper[at])
}
