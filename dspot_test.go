package dspot

import (
	"context"
	"errors"
	"path/filepath"
	"testing"
	"time"

	"dspot/internal/stats"
)

func TestFacadeFitCtxCancelled(t *testing.T) {
	truth, err := SyntheticGoogleTrendsKeyword("grammy",
		SyntheticConfig{Locations: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	m, err := FitCtx(ctx, truth.Tensor, Options{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if m != nil {
		t.Fatal("cancelled fit returned a model")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("pre-cancelled fit still ran for %v", elapsed)
	}
}

func TestFacadeFitSequenceAndForecast(t *testing.T) {
	truth, err := SyntheticGoogleTrendsKeyword("grammy",
		SyntheticConfig{Locations: 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	seq := truth.Tensor.Global(0)
	m, err := FitSequence(seq[:400], Options{DisableGrowth: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.ShocksFor(0)) == 0 {
		t.Fatal("no events detected on the grammy series")
	}
	fc := m.ForecastGlobal(0, len(seq)-400)
	if len(fc) != len(seq)-400 {
		t.Fatalf("forecast length %d", len(fc))
	}
	flat := make([]float64, len(fc))
	mean := stats.Mean(seq[:400])
	for i := range flat {
		flat[i] = mean
	}
	if stats.RMSE(seq[400:], fc) >= stats.RMSE(seq[400:], flat) {
		t.Fatal("facade forecast no better than flat mean")
	}
}

func TestFacadeTensorRoundTrip(t *testing.T) {
	x := NewTensor([]string{"k"}, []string{"US"}, 5)
	x.Set(0, 0, 0, 3)
	x.Set(0, 0, 1, Missing)
	dir := t.TempDir()
	path := filepath.Join(dir, "x.csv")
	if err := SaveTensorCSV(path, x); err != nil {
		t.Fatal(err)
	}
	y, err := LoadTensorCSV(path)
	if err != nil {
		t.Fatal(err)
	}
	if y.At(0, 0, 0) != 3 {
		t.Fatal("round trip lost data")
	}
}

func TestFacadeModelRoundTrip(t *testing.T) {
	truth, _ := SyntheticGoogleTrendsKeyword("amazon",
		SyntheticConfig{Locations: 3, Ticks: 120, Seed: 5})
	m, err := FitGlobal(truth.Tensor, Options{DisableShocks: true, DisableGrowth: true})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "m.json")
	if err := SaveModel(path, m); err != nil {
		t.Fatal(err)
	}
	got, err := LoadModel(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Ticks != m.Ticks || len(got.Global) != len(m.Global) {
		t.Fatal("model round trip lost structure")
	}
}

func TestFacadeBaselines(t *testing.T) {
	seq := make([]float64, 120)
	for i := range seq {
		seq[i] = 10 + float64(i%12)
	}
	ar, err := ForecastAR(seq, 12, 24)
	if err != nil {
		t.Fatal(err)
	}
	if len(ar) != 24 {
		t.Fatalf("AR forecast length %d", len(ar))
	}
	tb, err := ForecastTBATS(seq, 24)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb) != 24 {
		t.Fatalf("TBATS forecast length %d", len(tb))
	}
	if _, err := ForecastAR(seq[:3], 12, 5); err == nil {
		t.Fatal("short AR input accepted")
	}
}

func TestFacadeSyntheticConstructors(t *testing.T) {
	if len(SyntheticKeywords()) != 8 {
		t.Fatalf("SyntheticKeywords = %v", SyntheticKeywords())
	}
	tw := SyntheticTwitter(1, SyntheticConfig{Locations: 4, Seed: 1})
	if tw.Tensor.D() != 3 {
		t.Fatalf("twitter d = %d", tw.Tensor.D())
	}
	mt := SyntheticMemeTracker(0, SyntheticConfig{Locations: 4, Seed: 1})
	if mt.Tensor.D() != 2 {
		t.Fatalf("memetracker d = %d", mt.Tensor.D())
	}
	gt := SyntheticGoogleTrends(SyntheticConfig{Locations: 4, Ticks: 60, Seed: 1})
	if gt.Tensor.D() != 8 || gt.Tensor.N() != 60 {
		t.Fatalf("googletrends dims (%d,%d)", gt.Tensor.D(), gt.Tensor.N())
	}
}

func TestFacadeFitLocalFlow(t *testing.T) {
	truth, _ := SyntheticGoogleTrendsKeyword("amazon",
		SyntheticConfig{Locations: 4, Ticks: 150, Seed: 7})
	x := truth.Tensor
	m, err := FitGlobal(x, Options{DisableShocks: true, DisableGrowth: true, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := FitLocal(x, m, Options{Workers: 2}); err != nil {
		t.Fatal(err)
	}
	if m.LocalN == nil {
		t.Fatal("FitLocal did not fill local matrices")
	}
	full, err := Fit(x, Options{DisableShocks: true, DisableGrowth: true, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if full.LocalN == nil {
		t.Fatal("Fit did not run local phase")
	}
}
