// Command dspot-serve runs the Δ-SPOT HTTP service.
//
//	dspot-serve [-addr :8080] [-workers N] [-log-level info] [-log-json]
//	            [-pprof] [-shutdown-timeout 30s]
//
// Endpoints (see internal/service):
//
//	POST /v1/fit        text/csv tensor → model JSON
//	POST /v1/events     model JSON → detected events
//	POST /v1/forecast   model JSON → forecast + predicted events
//	POST /v1/anomalies  model + series → flagged ticks
//	GET  /healthz
//	GET  /metrics       Prometheus text exposition
//	GET  /debug/pprof/  net/http/pprof profiles (with -pprof)
//
// Every request is logged as a structured line (key=value, or JSON with
// -log-json) and counted in the /metrics registry; fits additionally record
// per-stage timings, LM iteration totals, and MDL shock verdicts. On
// SIGINT/SIGTERM the listener closes and in-flight fits drain for up to
// -shutdown-timeout before the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dspot/internal/obs"
	"dspot/internal/service"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 4, "fitting concurrency per request")
	logLevel := flag.String("log-level", "info", "log level: debug|info|warn|error")
	logJSON := flag.Bool("log-json", false, "log JSON instead of key=value text")
	pprofOn := flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")
	shutdownTimeout := flag.Duration("shutdown-timeout", 30*time.Second,
		"grace period for in-flight requests on SIGINT/SIGTERM")
	flag.Parse()

	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dspot-serve:", err)
		os.Exit(2)
	}
	logger := obs.NewLogger(os.Stderr, level, *logJSON)

	handler := (&service.Server{
		Workers: *workers,
		Metrics: service.NewMetrics(),
		Logger:  logger,
	}).Handler()
	if *pprofOn {
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
		// Fits on large tensors take a while; no blanket write timeout.
	}

	ctx, stop := signal.NotifyContext(context.Background(),
		syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	logger.Info("dspot-serve listening",
		"addr", *addr, "workers", *workers, "pprof", *pprofOn)

	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			logger.Error("serve failed", "err", err)
			os.Exit(1)
		}
	case <-ctx.Done():
		stop() // restore default signal handling: a second ^C kills hard
		logger.Info("shutting down, draining in-flight requests",
			"timeout", *shutdownTimeout)
		shCtx, cancel := context.WithTimeout(context.Background(), *shutdownTimeout)
		defer cancel()
		if err := srv.Shutdown(shCtx); err != nil {
			logger.Error("shutdown incomplete", "err", err)
			os.Exit(1)
		}
		logger.Info("shutdown complete")
	}
}
