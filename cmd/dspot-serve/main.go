// Command dspot-serve runs the model-engine HTTP service (Δ-SPOT by
// default; epidemic, FUNNEL and HIP engines selectable per request).
//
//	dspot-serve [-addr :8080] [-workers N] [-default-engine dspot]
//	            [-log-level info] [-log-json]
//	            [-pprof] [-shutdown-timeout 30s]
//	            [-data-dir DIR] [-fit-workers N] [-queue-depth N]
//	            [-job-timeout 15m] [-abandon-grace 2s] [-max-models N]
//	            [-stream-retention N] [-max-refits N]
//	            [-admit-budget D] [-append-budget D]
//	            [-breaker-threshold N] [-breaker-open-for 30s]
//	            [-trace] [-trace-max N] [-trace-slow 1s]
//	            [-runtime-metrics-every 15s]
//
// Endpoints (see internal/service):
//
//	POST /v1/fit        text/csv tensor → model JSON
//	                    ?engine=dspot|hip|epidemic|funnel|auto
//	POST /v1/events     model JSON → detected events
//	POST /v1/forecast   model JSON → forecast + predicted events
//	POST /v1/anomalies  model + series → flagged ticks
//	GET  /healthz       liveness (up as soon as the listener binds)
//	GET  /readyz        readiness (503 while the registry loads in the
//	                    background or the job queue is saturated)
//	GET  /metrics       Prometheus text exposition
//	GET  /debug/traces  trace flight recorder: recent + slow traces
//	                    (/debug/traces/{id} for one trace; with -trace)
//	GET  /debug/pprof/  net/http/pprof profiles (with -pprof)
//
// plus the stateful layer (see internal/service/stateful.go): async fit jobs
// under /v1/jobs, stored models under /v1/models, and incremental streams
// under /v1/streams. With -data-dir the registry persists models and stream
// snapshots there and reloads them on boot, so stored state survives a
// restart; without it state is memory-only.
//
// Every request is logged as a structured line (key=value, or JSON with
// -log-json) and counted in the /metrics registry; fits additionally record
// per-stage timings, LM iteration totals, and MDL shock verdicts. On
// SIGINT/SIGTERM the listener closes, in-flight fits drain for up to
// -shutdown-timeout, then the job engine stops. Cancellation is cooperative
// all the way down: cancelled or timed-out fit jobs, disconnected /v1/fit
// clients, and shutdown all stop the underlying compute within about one LM
// iteration (abandonment after -abandon-grace is only a backstop).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"dspot/internal/admit"
	modelengine "dspot/internal/engine"
	"dspot/internal/jobs"
	"dspot/internal/obs"
	"dspot/internal/obs/trace"
	"dspot/internal/registry"
	"dspot/internal/service"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 4, "fitting concurrency per request")
	defaultEngine := flag.String("default-engine", "",
		"model engine for fit requests without ?engine= (empty: dspot; 'auto' selects by MDL)")
	logLevel := flag.String("log-level", "info", "log level: debug|info|warn|error")
	logJSON := flag.Bool("log-json", false, "log JSON instead of key=value text")
	pprofOn := flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")
	shutdownTimeout := flag.Duration("shutdown-timeout", 30*time.Second,
		"grace period for in-flight requests on SIGINT/SIGTERM")
	dataDir := flag.String("data-dir", "",
		"directory for persisted models and streams (empty: memory-only)")
	fitWorkers := flag.Int("fit-workers", jobs.DefaultWorkers,
		"async fit-job worker pool size")
	queueDepth := flag.Int("queue-depth", jobs.DefaultQueueDepth,
		"async fit-job queue bound (full queue answers 503)")
	jobTimeout := flag.Duration("job-timeout", jobs.DefaultTimeout,
		"per-job run timeout for async fits")
	abandonGrace := flag.Duration("abandon-grace", jobs.DefaultAbandonGrace,
		"wait for a cancelled fit to stop cooperatively before abandoning it")
	maxModels := flag.Int("max-models", registry.DefaultMaxLoaded,
		"models kept in memory at once (persisted models reload on demand)")
	streamMode := flag.String("stream-mode", "batch",
		"default maintenance mode for new streams: batch|incremental "+
			"(per-append ?mode= overrides)")
	streamRetention := flag.Int("stream-retention", 0,
		"retention horizon in ticks for new streams: older ticks fold into "+
			"checkpointed state and evict (0: unbounded; per-append "+
			"?retention= overrides)")
	maxRefits := flag.Int("max-refits", registry.DefaultMaxConcurrentRefits,
		"concurrent scheduler-admitted stream consolidations (forced "+
			"/refit bypasses the cap)")
	admitBudget := flag.Duration("admit-budget", 0,
		"reject async fits with 429 when the estimated queue wait exceeds "+
			"this budget (0: only request deadlines gate admission)")
	appendBudget := flag.Duration("append-budget", 0,
		"shed stream appends with 429 while the smoothed append latency "+
			"exceeds this budget (0: only request deadlines gate)")
	breakerThreshold := flag.Int("breaker-threshold", admit.DefaultFailureThreshold,
		"consecutive fit failures that open an engine's circuit breaker")
	breakerOpenFor := flag.Duration("breaker-open-for", admit.DefaultOpenFor,
		"cool-off before an open engine breaker admits probe fits again")
	traceOn := flag.Bool("trace", true,
		"record request traces and serve them at /debug/traces")
	traceMax := flag.Int("trace-max", 0,
		"traces retained by the flight recorder (0: default 256)")
	traceSlow := flag.Duration("trace-slow", 0,
		"duration above which a trace is retained as slow (0: default 1s)")
	runtimeEvery := flag.Duration("runtime-metrics-every", 15*time.Second,
		"Go runtime gauge sampling interval (0 disables)")
	flag.Parse()

	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dspot-serve:", err)
		os.Exit(2)
	}
	// A typo'd -default-engine should fail the boot, not 400 every request.
	if *defaultEngine != "" && *defaultEngine != modelengine.Auto {
		if _, err := modelengine.Lookup(*defaultEngine); err != nil {
			fmt.Fprintln(os.Stderr, "dspot-serve:", err)
			os.Exit(2)
		}
	}
	// Same for -stream-mode: an unknown mode would silently create batch
	// streams forever.
	if *streamMode != "batch" && *streamMode != "incremental" {
		fmt.Fprintf(os.Stderr, "dspot-serve: unknown -stream-mode %q (want batch or incremental)\n", *streamMode)
		os.Exit(2)
	}
	logger := obs.NewLogger(os.Stderr, level, *logJSON)
	metrics := service.NewMetrics()

	// Tracing: spans from the HTTP middleware through the jobs engine and
	// the fit pipeline land in the flight recorder (GET /debug/traces), and
	// trace_id/span_id ride on ctx-aware log lines via the wrapped logger.
	var tracer *trace.Tracer
	if *traceOn {
		tracer = trace.NewTracer(trace.NewRecorder(trace.RecorderOptions{
			MaxTraces:     *traceMax,
			SlowThreshold: *traceSlow,
		}))
		logger = trace.WrapLogger(logger)
	}

	// Runtime telemetry: goroutine count, heap and GC gauges on the same
	// /metrics registry the request metrics use.
	runtimeCollector := obs.NewRuntimeCollector(metrics.Registry)
	stopRuntime := runtimeCollector.Start(*runtimeEvery)
	defer stopRuntime()

	// The listener comes up immediately; the registry (which may have many
	// models and stream snapshots to verify) loads in the background. Until
	// it finishes, a minimal handler serves /healthz (alive) and /readyz
	// (503 "registry loading") so orchestrators can tell "starting" from
	// "dead" — then the full handler is swapped in atomically.
	var current atomic.Value // http.Handler
	current.Store((&service.Server{
		Workers:       *workers,
		DefaultEngine: *defaultEngine,
		Metrics:       metrics,
		Logger:        logger,
		Tracer:        tracer,
		Ready:         func() error { return errors.New("registry loading") },
	}).Handler())
	var handler http.Handler = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		current.Load().(http.Handler).ServeHTTP(w, r)
	})
	if *pprofOn {
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
	}

	// engine is installed by the boot goroutine; shutdown must tolerate it
	// not existing yet (boot still running, or boot failed).
	var engineMu sync.Mutex
	var engine *jobs.Engine
	closeEngine := func() {
		engineMu.Lock()
		e := engine
		engineMu.Unlock()
		if e != nil {
			e.Close()
		}
	}

	fatal := make(chan error, 1)
	go func() {
		reg, err := registry.Open(registry.Options{
			DataDir:             *dataDir,
			MaxLoaded:           *maxModels,
			Logger:              logger,
			Metrics:             registry.NewMetricsOn(metrics.Registry),
			Tracer:              tracer,
			StreamMode:          *streamMode,
			StreamRetention:     *streamRetention,
			MaxConcurrentRefits: *maxRefits,
		})
		if err != nil {
			fatal <- fmt.Errorf("opening registry (data_dir %q): %w", *dataDir, err)
			return
		}
		e := jobs.New(jobs.Options{
			Workers:      *fitWorkers,
			QueueDepth:   *queueDepth,
			Timeout:      *jobTimeout,
			AbandonGrace: *abandonGrace,
			AdmitBudget:  *admitBudget,
			Logger:       logger,
			Metrics:      jobs.NewMetricsOn(metrics.Registry),
			Tracer:       tracer,
		})
		engineMu.Lock()
		engine = e
		engineMu.Unlock()
		current.Store((&service.Server{
			Workers:       *workers,
			DefaultEngine: *defaultEngine,
			Metrics:       metrics,
			Logger:        logger,
			Registry:      reg,
			Jobs:          e,
			Tracer:        tracer,
			Breakers: service.NewBreakerSet(admit.BreakerOptions{
				FailureThreshold: *breakerThreshold,
				OpenFor:          *breakerOpenFor,
			}, metrics),
			AppendBudget: *appendBudget,
		}).Handler())
		logger.Info("registry ready", "data_dir", *dataDir, "models", reg.Len())
	}()

	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
		// Fits on large tensors take a while; no blanket write timeout.
	}

	ctx, stop := signal.NotifyContext(context.Background(),
		syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	logger.Info("dspot-serve listening",
		"addr", *addr, "workers", *workers, "pprof", *pprofOn,
		"trace", *traceOn, "data_dir", *dataDir,
		"fit_workers", *fitWorkers, "queue_depth", *queueDepth,
		"engines", modelengine.Names(), "default_engine", *defaultEngine)

	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			logger.Error("serve failed", "err", err)
			os.Exit(1)
		}
	case err := <-fatal:
		logger.Error("boot failed", "err", err)
		os.Exit(1)
	case <-ctx.Done():
		stop() // restore default signal handling: a second ^C kills hard
		logger.Info("shutting down, draining in-flight requests",
			"timeout", *shutdownTimeout)
		shCtx, cancel := context.WithTimeout(context.Background(), *shutdownTimeout)
		defer cancel()
		if err := srv.Shutdown(shCtx); err != nil {
			logger.Error("shutdown incomplete", "err", err)
			closeEngine()
			os.Exit(1)
		}
		// HTTP is drained; stop the job engine last so accepted jobs had
		// their chance to finish queueing, then cancel what remains.
		closeEngine()
		logger.Info("shutdown complete")
	}
}
