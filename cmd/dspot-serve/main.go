// Command dspot-serve runs the Δ-SPOT HTTP service.
//
//	dspot-serve [-addr :8080] [-workers N]
//
// Endpoints (see internal/service):
//
//	POST /v1/fit        text/csv tensor → model JSON
//	POST /v1/events     model JSON → detected events
//	POST /v1/forecast   model JSON → forecast + predicted events
//	POST /v1/anomalies  model + series → flagged ticks
//	GET  /healthz
package main

import (
	"flag"
	"log"
	"net/http"
	"time"

	"dspot/internal/service"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 4, "fitting concurrency per request")
	flag.Parse()

	srv := &http.Server{
		Addr:              *addr,
		Handler:           (&service.Server{Workers: *workers}).Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		// Fits on large tensors take a while; no blanket write timeout.
	}
	log.Printf("dspot-serve listening on %s", *addr)
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		log.Fatal(err)
	}
}
