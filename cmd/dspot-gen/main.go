// Command dspot-gen generates the synthetic evaluation datasets (see
// DESIGN.md §3 for how they substitute the paper's GoogleTrends, Twitter and
// MemeTracker data) as long-form CSV tensors.
//
// Usage:
//
//	dspot-gen -dataset googletrends|twitter|memetracker [-locations L] [-ticks N] [-seed S] [-extra K] [-noise F] -out data.csv
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"dspot"
)

func main() {
	ds := flag.String("dataset", "googletrends", "googletrends, twitter, or memetracker")
	locations := flag.Int("locations", 0, "number of countries (0 = all 232)")
	ticks := flag.Int("ticks", 0, "duration in ticks (0 = dataset's natural length)")
	seed := flag.Int64("seed", 1, "generation seed")
	extra := flag.Int("extra", 0, "extra random hashtags/memes (twitter, memetracker)")
	noise := flag.Float64("noise", 0, "observation noise relative to peak (0 = default)")
	missing := flag.Float64("missing", 0, "fraction of cells dropped as missing observations")
	keyword := flag.String("keyword", "", "googletrends: restrict to one scripted keyword")
	out := flag.String("out", "data.csv", "output CSV path")
	flag.Parse()
	if *missing < 0 || *missing >= 1 {
		fmt.Fprintln(os.Stderr, "dspot-gen: -missing must be in [0, 1)")
		os.Exit(2)
	}

	cfg := dspot.SyntheticConfig{
		Locations: *locations, Ticks: *ticks, Seed: *seed, Noise: *noise,
	}
	var truth *dspot.SyntheticTruth
	var err error
	switch *ds {
	case "googletrends":
		if *keyword != "" {
			truth, err = dspot.SyntheticGoogleTrendsKeyword(*keyword, cfg)
		} else {
			truth = dspot.SyntheticGoogleTrends(cfg)
		}
	case "twitter":
		truth = dspot.SyntheticTwitter(*extra, cfg)
	case "memetracker":
		truth = dspot.SyntheticMemeTracker(*extra, cfg)
	default:
		err = fmt.Errorf("unknown dataset %q", *ds)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "dspot-gen:", err)
		os.Exit(1)
	}
	x := truth.Tensor
	if *missing > 0 {
		rng := rand.New(rand.NewSource(*seed ^ 0x9e3779b9))
		for i := 0; i < x.D(); i++ {
			for j := 0; j < x.L(); j++ {
				for t := 0; t < x.N(); t++ {
					if rng.Float64() < *missing {
						x.Set(i, j, t, dspot.Missing)
					}
				}
			}
		}
	}
	if err := dspot.SaveTensorCSV(*out, x); err != nil {
		fmt.Fprintln(os.Stderr, "dspot-gen:", err)
		os.Exit(1)
	}
	fmt.Printf("%s: %d keywords × %d locations × %d ticks → %s\n",
		*ds, x.D(), x.L(), x.N(), *out)
}
