// Command dspot-exp regenerates the figures of the Δ-SPOT paper's
// evaluation against the synthetic datasets and prints the rows/series the
// paper reports. See EXPERIMENTS.md for the recorded paper-vs-measured
// comparison.
//
// Usage:
//
//	dspot-exp -fig all|1|4|5|6|7|8|9|10|11 [-scale small|full] [-seed S] [-csv DIR] [-plot] [-stats]
//	dspot-exp -fig ablations|robustness|rolling|regional|tailscale [-scale small|full]
//
// -stats traces every fit the run performs and prints an aggregated fit
// report (per-stage wall-clock, LM iteration totals, shock candidates tried
// vs accepted) at the end, so benchmark runs become attributable.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"

	"dspot/internal/core"
	"dspot/internal/dataset"
	"dspot/internal/experiments"
	"dspot/internal/plot"
	"dspot/internal/svgplot"
)

func main() {
	fig := flag.String("fig", "all",
		"figure to run: all, 1, 4, 5, 6, 7, 8, 9, 10, 11, ablations, robustness, rolling, regional, tailscale")
	scale := flag.String("scale", "small", "small (fast) or full (paper scale)")
	seed := flag.Int64("seed", 1, "dataset seed")
	csvDir := flag.String("csv", "", "optional directory for per-figure series CSVs")
	train := flag.Int("train", 400, "Fig 11 training ticks")
	doPlot := flag.Bool("plot", false, "render ASCII charts for figure panels")
	svgDir := flag.String("svg", "", "optional directory for per-figure SVG panels")
	stats := flag.Bool("stats", false,
		"trace every fit and print an aggregated fit report at the end")
	flag.Parse()

	var cfg experiments.Config
	switch *scale {
	case "small":
		cfg = experiments.Small()
	case "full":
		cfg = experiments.Full()
	default:
		fmt.Fprintf(os.Stderr, "dspot-exp: unknown scale %q\n", *scale)
		os.Exit(2)
	}
	cfg.Seed = *seed
	var trace *core.FitTrace
	if *stats {
		trace = core.NewFitTrace()
		cfg.Progress = trace.Hook()
		defer func() { fmt.Printf("\n%s", trace.Report()) }()
	}

	run := func(name string) bool { return *fig == "all" || *fig == name }
	fail := func(name string, err error) {
		fmt.Fprintf(os.Stderr, "dspot-exp: fig %s: %v\n", name, err)
		os.Exit(1)
	}

	if run("1") {
		res, err := experiments.Fig1(cfg)
		if err != nil {
			fail("1", err)
		}
		fmt.Print(res)
		if *doPlot {
			fmt.Print(plot.NewChart(90, 14).
				Title("harry potter — observed (.) vs fitted (*)").
				Line(res.Obs, '.').Line(res.Est, '*').Render())
		}
		if *svgDir != "" {
			chart := svgplot.New("Fig 1 — harry potter: observed vs Δ-SPOT fit").
				Add(svgplot.Series{Name: "observed", Data: res.Obs, Points: true}).
				Add(svgplot.Series{Name: "fitted", Data: res.Est})
			for _, e := range res.Fit.Events {
				chart.Mark(svgplot.Marker{Tick: e.Start, Label: e.StartDate})
			}
			saveSVG(chart, *svgDir, "fig1_harry_potter.svg")
		}
		saveSeries(*csvDir, "fig1_harry_potter.csv",
			[]string{"observed", "fitted"}, res.Obs, res.Est)
	}
	if run("4") {
		res, err := experiments.Fig4(cfg)
		if err != nil {
			fail("4", err)
		}
		fmt.Print(res)
	}
	if run("5") {
		res, err := experiments.Fig5(cfg)
		if err != nil {
			fail("5", err)
		}
		fmt.Print(res)
	}
	if run("6") {
		res, err := experiments.Fig6(cfg)
		if err != nil {
			fail("6", err)
		}
		fmt.Print(res)
	}
	if run("7") {
		res, err := experiments.Fig7(cfg)
		if err != nil {
			fail("7", err)
		}
		fmt.Print(res)
	}
	if run("8") {
		res, err := experiments.Fig8(cfg)
		if err != nil {
			fail("8", err)
		}
		fmt.Print(res)
		if *csvDir != "" {
			var names []string
			var levels []float64
			for _, cr := range res.Reaction {
				names = append(names, cr.Code)
				levels = append(levels, cr.Level)
			}
			path := filepath.Join(*csvDir, "fig8_reaction.csv")
			f, err := os.Create(path)
			if err == nil {
				fmt.Fprintln(f, "country,level")
				for i := range names {
					fmt.Fprintf(f, "%s,%g\n", names[i], levels[i])
				}
				f.Close()
			}
		}
	}
	if run("9") {
		res, err := experiments.Fig9(cfg)
		if err != nil {
			fail("9", err)
		}
		fmt.Print(res)
		if *doPlot {
			var labels []string
			var values []float64
			for _, method := range []string{"SIRS", "SKIPS", "FUNNEL", "D-SPOT"} {
				if v, ok := res.Global[method]; ok {
					labels = append(labels, method)
					values = append(values, v)
				}
			}
			fmt.Println("global RMSE/peak (shorter is better):")
			fmt.Print(plot.Bars(labels, values, 50))
		}
	}
	if run("10") {
		res, err := experiments.Fig10(cfg, experiments.Fig10Sweeps{})
		if err != nil {
			fail("10", err)
		}
		fmt.Print(res)
	}
	if run("11") {
		res, err := experiments.Fig11(cfg, *train)
		if err != nil {
			fail("11", err)
		}
		fmt.Print(res)
		if *doPlot {
			fmt.Print(plot.NewChart(90, 14).
				Title("grammy — observed (.) vs Δ-SPOT forecast (*)").
				Line(res.Obs, '.').
				Line(padLeft(res.Forecast, res.TrainTicks), '*').Render())
		}
		if *svgDir != "" {
			chart := svgplot.New("Fig 11 — grammy: observed vs Δ-SPOT forecast").
				Add(svgplot.Series{Name: "observed", Data: res.Obs, Points: true}).
				Add(svgplot.Series{Name: "forecast",
					Data: padLeft(res.Forecast, res.TrainTicks)}).
				Mark(svgplot.Marker{Tick: res.TrainTicks, Label: "train end"})
			saveSVG(chart, *svgDir, "fig11_grammy.svg")
		}
		saveSeries(*csvDir, "fig11_grammy.csv",
			[]string{"observed", "dspot_forecast"}, res.Obs, padLeft(res.Forecast, res.TrainTicks))
	}
	if run("ablations") && *fig != "all" {
		out, err := experiments.Ablations(cfg)
		if err != nil {
			fail("ablations", err)
		}
		fmt.Print(out)
	}
	if run("robustness") && *fig != "all" {
		res, err := experiments.Robustness(cfg, nil, nil)
		if err != nil {
			fail("robustness", err)
		}
		fmt.Print(res)
	}
	if run("rolling") && *fig != "all" {
		res, err := experiments.Rolling(cfg, experiments.RollingConfig{}, nil)
		if err != nil {
			fail("rolling", err)
		}
		fmt.Print(res)
	}
	if run("regional") && *fig != "all" {
		res, err := experiments.Regional(cfg, "harry potter")
		if err != nil {
			fail("regional", err)
		}
		fmt.Print(res)
	}
	if run("tailscale") && *fig != "all" {
		res, err := experiments.TailScale(cfg, 0)
		if err != nil {
			fail("tailscale", err)
		}
		fmt.Print(res)
	}
	if !strings.Contains("all 1 4 5 6 7 8 9 10 11 ablations robustness rolling regional tailscale", *fig) {
		fmt.Fprintf(os.Stderr, "dspot-exp: unknown figure %q\n", *fig)
		os.Exit(2)
	}
}

// padLeft aligns a forecast starting at tick offset with the full series.
func padLeft(s []float64, offset int) []float64 {
	out := make([]float64, offset+len(s))
	for i := 0; i < offset; i++ {
		out[i] = math.NaN()
	}
	copy(out[offset:], s)
	return out
}

func saveSVG(chart *svgplot.Chart, dir, name string) {
	if err := chart.Save(filepath.Join(dir, name)); err != nil {
		fmt.Fprintf(os.Stderr, "dspot-exp: %v\n", err)
	}
}

func saveSeries(dir, name string, labels []string, series ...[]float64) {
	if dir == "" {
		return
	}
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dspot-exp: %v\n", err)
		return
	}
	defer f.Close()
	if err := dataset.WriteSeriesCSV(f, labels, series); err != nil {
		fmt.Fprintf(os.Stderr, "dspot-exp: %v\n", err)
	}
}
