// Command dspot fits the Δ-SPOT model to an activity tensor, lists the
// detected external events, and forecasts future dynamics.
//
// Usage:
//
//	dspot fit      -in data.csv -out model.json [-global-only] [-no-growth] [-no-shocks] [-no-cycles] [-workers N] [-stats]
//	dspot events   -model model.json
//	dspot forecast -model model.json [-keyword NAME] [-horizon H] [-out forecast.csv]
//	dspot simulate -model model.json [-keyword NAME] [-out fitted.csv]
//
// Tensors travel as long-form CSV with the header keyword,location,tick,count.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"sort"

	"dspot"
	"dspot/internal/dataset"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "fit":
		err = runFit(os.Args[2:])
	case "events":
		err = runEvents(os.Args[2:])
	case "forecast":
		err = runForecast(os.Args[2:])
	case "simulate":
		err = runSimulate(os.Args[2:])
	case "local":
		err = runLocal(os.Args[2:])
	case "cost":
		err = runCost(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "dspot:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  dspot fit      -in data.csv -out model.json [-wide KEYWORD] [-global-only] [-no-growth] [-no-shocks] [-no-cycles] [-workers N] [-stats]
  dspot events   -model model.json
  dspot forecast -model model.json [-keyword NAME] [-horizon H] [-out forecast.csv]
  dspot simulate -model model.json [-keyword NAME] [-out fitted.csv]
  dspot local    -model model.json [-keyword NAME] [-top N]
  dspot cost     -model model.json -in data.csv`)
}

func runFit(args []string) error {
	fs := flag.NewFlagSet("fit", flag.ExitOnError)
	in := fs.String("in", "", "input tensor CSV (keyword,location,tick,count)")
	wide := fs.String("wide", "", "treat -in as a wide-format file for this keyword")
	out := fs.String("out", "model.json", "output model JSON")
	globalOnly := fs.Bool("global-only", false, "skip the local fitting phase")
	noGrowth := fs.Bool("no-growth", false, "disable the population growth effect")
	noShocks := fs.Bool("no-shocks", false, "disable external shock detection")
	noCycles := fs.Bool("no-cycles", false, "restrict shocks to one-shot events")
	workers := fs.Int("workers", 4, "fitting concurrency")
	stats := fs.Bool("stats", false, "print a fit report (stage timings, LM iterations, shock verdicts)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("missing -in")
	}
	var x *dspot.Tensor
	var err error
	if *wide != "" {
		x, err = dspot.LoadTensorWideCSV(*in, *wide)
	} else {
		x, err = dspot.LoadTensorCSV(*in)
	}
	if err != nil {
		return err
	}
	opts := dspot.Options{
		DisableGrowth: *noGrowth, DisableShocks: *noShocks,
		DisableCycles: *noCycles, Workers: *workers,
	}
	var trace *dspot.FitTrace
	if *stats {
		trace = dspot.NewFitTrace()
		opts.Progress = trace.Hook()
	}
	var m *dspot.Model
	if *globalOnly {
		m, err = dspot.FitGlobal(x, opts)
	} else {
		m, err = dspot.Fit(x, opts)
	}
	if err != nil {
		return err
	}
	if err := dspot.SaveModel(*out, m); err != nil {
		return err
	}
	fmt.Printf("fitted %d keywords × %d locations × %d ticks; %d shocks; model → %s\n",
		len(m.Keywords), len(m.Locations), m.Ticks, len(m.Shocks), *out)
	if trace != nil {
		fmt.Print(trace.Report())
	}
	return nil
}

func runEvents(args []string) error {
	fs := flag.NewFlagSet("events", flag.ExitOnError)
	modelPath := fs.String("model", "model.json", "fitted model JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	m, err := dspot.LoadModel(*modelPath)
	if err != nil {
		return err
	}
	for i, kw := range m.Keywords {
		shocks := m.ShocksFor(i)
		fmt.Printf("%s: %d events", kw, len(shocks))
		if p := m.Global[i]; p.HasGrowth() {
			fmt.Printf(", growth effect from tick %d (rate %.3f)", p.TEta, p.Eta0)
		}
		fmt.Println()
		for _, s := range shocks {
			kind := "one-shot"
			if s.Period > 0 {
				kind = fmt.Sprintf("every %d ticks", s.Period)
			}
			fmt.Printf("  t=%-5d width=%-3d strength=%-8.3f %s\n",
				s.Start, s.Width, s.MeanStrength(), kind)
		}
	}
	return nil
}

func keywordIndex(m *dspot.Model, name string) (int, error) {
	if name == "" {
		return 0, nil
	}
	for i, kw := range m.Keywords {
		if kw == name {
			return i, nil
		}
	}
	return 0, fmt.Errorf("unknown keyword %q (have %v)", name, m.Keywords)
}

func runForecast(args []string) error {
	fs := flag.NewFlagSet("forecast", flag.ExitOnError)
	modelPath := fs.String("model", "model.json", "fitted model JSON")
	keyword := fs.String("keyword", "", "keyword to forecast (default: first)")
	horizon := fs.Int("horizon", 52, "ticks to forecast")
	out := fs.String("out", "", "optional CSV output (tick,forecast)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	m, err := dspot.LoadModel(*modelPath)
	if err != nil {
		return err
	}
	i, err := keywordIndex(m, *keyword)
	if err != nil {
		return err
	}
	fc := m.ForecastGlobal(i, *horizon)
	for _, e := range m.PredictedEvents(i, *horizon) {
		fmt.Printf("predicted event: t=%d width=%d strength=%.2f (every %d ticks)\n",
			e.Start, e.Width, e.Strength, e.Period)
	}
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := dataset.WriteSeriesCSV(f, []string{"forecast"}, [][]float64{fc}); err != nil {
			return err
		}
		fmt.Printf("forecast (%d ticks) → %s\n", len(fc), *out)
		return f.Close()
	}
	for t, v := range fc {
		fmt.Printf("%d,%g\n", m.Ticks+t, v)
	}
	return nil
}

func runLocal(args []string) error {
	fs := flag.NewFlagSet("local", flag.ExitOnError)
	modelPath := fs.String("model", "model.json", "fitted model JSON")
	keyword := fs.String("keyword", "", "keyword (default: first)")
	top := fs.Int("top", 20, "number of locations to print")
	if err := fs.Parse(args); err != nil {
		return err
	}
	m, err := dspot.LoadModel(*modelPath)
	if err != nil {
		return err
	}
	if m.LocalN == nil {
		return fmt.Errorf("model has no local phase (refit without -global-only)")
	}
	i, err := keywordIndex(m, *keyword)
	if err != nil {
		return err
	}
	// Per-location potential population and peak shock participation.
	type row struct {
		loc   string
		n     float64
		level float64
	}
	rows := make([]row, len(m.Locations))
	for j, loc := range m.Locations {
		rows[j] = row{loc: loc, n: m.LocalN[i][j]}
	}
	for _, s := range m.ShocksFor(i) {
		if s.Local == nil {
			continue
		}
		for _, occ := range s.Local {
			for j, v := range occ {
				if v > rows[j].level {
					rows[j].level = v
				}
			}
		}
	}
	sort.Slice(rows, func(a, b int) bool {
		if rows[a].n != rows[b].n {
			return rows[a].n > rows[b].n
		}
		return rows[a].loc < rows[b].loc
	})
	fmt.Printf("%s: local structure (top %d of %d locations)\n",
		m.Keywords[i], *top, len(rows))
	fmt.Printf("%-6s %12s %14s\n", "loc", "population", "participation")
	for r, row := range rows {
		if r >= *top {
			break
		}
		fmt.Printf("%-6s %12.2f %14.2f\n", row.loc, row.n, row.level)
	}
	return nil
}

func runCost(args []string) error {
	fs := flag.NewFlagSet("cost", flag.ExitOnError)
	modelPath := fs.String("model", "model.json", "fitted model JSON")
	in := fs.String("in", "", "tensor CSV the model was fitted on")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("missing -in")
	}
	m, err := dspot.LoadModel(*modelPath)
	if err != nil {
		return err
	}
	x, err := dspot.LoadTensorCSV(*in)
	if err != nil {
		return err
	}
	b := m.CostBreakdown(x)
	fmt.Printf("total MDL cost: %.1f bits (%d keywords, %d locations, %d ticks, %d shocks)\n",
		b.Total, len(m.Keywords), len(m.Locations), m.Ticks, len(m.Shocks))
	fmt.Printf("  header %.1f | base %.1f | growth %.1f | locals %.1f | shocks %.1f | data coding %.1f\n",
		b.Header, b.Base, b.Growth, b.Locals, b.Shocks, b.Coding)
	fmt.Printf("  compression ratio vs raw coding: %.2fx\n", m.CompressionRatio(x))
	for i, kw := range m.Keywords {
		obs := x.Global(i)
		est := m.SimulateGlobal(i, m.Ticks)
		fmt.Printf("  %-20s fit RMSE %.3f, %d shocks\n",
			kw, rmseOf(obs, est), len(m.ShocksFor(i)))
	}
	return nil
}

func rmseOf(obs, est []float64) float64 {
	n := len(obs)
	if len(est) < n {
		n = len(est)
	}
	sum, cnt := 0.0, 0
	for t := 0; t < n; t++ {
		if math.IsNaN(obs[t]) || math.IsNaN(est[t]) {
			continue
		}
		d := obs[t] - est[t]
		sum += d * d
		cnt++
	}
	if cnt == 0 {
		return 0
	}
	return math.Sqrt(sum / float64(cnt))
}

func runSimulate(args []string) error {
	fs := flag.NewFlagSet("simulate", flag.ExitOnError)
	modelPath := fs.String("model", "model.json", "fitted model JSON")
	keyword := fs.String("keyword", "", "keyword to simulate (default: first)")
	out := fs.String("out", "", "optional CSV output (tick,fitted)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	m, err := dspot.LoadModel(*modelPath)
	if err != nil {
		return err
	}
	i, err := keywordIndex(m, *keyword)
	if err != nil {
		return err
	}
	est := m.SimulateGlobal(i, m.Ticks)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := dataset.WriteSeriesCSV(f, []string{"fitted"}, [][]float64{est}); err != nil {
			return err
		}
		return f.Close()
	}
	for t, v := range est {
		fmt.Printf("%d,%g\n", t, v)
	}
	return nil
}
