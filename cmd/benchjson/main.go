// Command benchjson converts `go test -bench -benchmem` text output into
// the BENCH_*.json trajectory format committed at the repository root: a
// machine-readable before/after pair for one PR's performance work, so the
// benchmark history of the repo is diffable and CI can archive it as an
// artifact without re-running the slow figure benchmarks.
//
// Usage:
//
//	benchjson -before before.txt[,more.txt] -after after.txt[,more.txt] -out BENCH_5.json
//
// Each input file is raw `go test -bench` output. Standard metrics
// (ns/op, B/op, allocs/op) and custom b.ReportMetric units (nrmse,
// mean-nrmse, events, ...) are all carried through verbatim. The "after"
// side is optional while iterating (-after may be omitted), but a committed
// trajectory file should always carry both sides.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Entry is one benchmark result line.
type Entry struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Env records the go test environment header lines.
type Env struct {
	GOOS   string `json:"goos,omitempty"`
	GOARCH string `json:"goarch,omitempty"`
	Pkg    string `json:"pkg,omitempty"`
	CPU    string `json:"cpu,omitempty"`
}

// Trajectory is the document written to BENCH_*.json.
type Trajectory struct {
	Schema string  `json:"schema"`
	Env    Env     `json:"env"`
	Before []Entry `json:"before"`
	After  []Entry `json:"after,omitempty"`
}

// cpuSuffix strips the -GOMAXPROCS suffix go test appends to benchmark
// names, so entries compare across machines with different core counts.
var cpuSuffix = regexp.MustCompile(`-\d+$`)

func main() {
	before := flag.String("before", "", "comma-separated bench output files for the 'before' side (required)")
	after := flag.String("after", "", "comma-separated bench output files for the 'after' side")
	out := flag.String("out", "", "output JSON path (default stdout)")
	flag.Parse()

	if *before == "" {
		fmt.Fprintln(os.Stderr, "benchjson: -before is required")
		flag.Usage()
		os.Exit(2)
	}

	doc := Trajectory{Schema: "dspot-bench-trajectory/v1"}
	var err error
	doc.Before, err = parseFiles(strings.Split(*before, ","), &doc.Env)
	if err != nil {
		fatal(err)
	}
	if *after != "" {
		doc.After, err = parseFiles(strings.Split(*after, ","), &doc.Env)
		if err != nil {
			fatal(err)
		}
	}
	if len(doc.Before) == 0 {
		fatal(fmt.Errorf("no benchmark lines found in %s", *before))
	}

	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}

func parseFiles(paths []string, env *Env) ([]Entry, error) {
	var entries []Entry
	for _, path := range paths {
		path = strings.TrimSpace(path)
		if path == "" {
			continue
		}
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		es, err := parse(f, env)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		entries = append(entries, es...)
	}
	return entries, nil
}

func parse(f io.Reader, env *Env) ([]Entry, error) {
	var entries []Entry
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			env.GOOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			env.GOARCH = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "pkg:"):
			env.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			env.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		fields := strings.Fields(line)
		// Name, iterations, then (value, unit) pairs.
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // e.g. a "Benchmark..." name echoed by -v
		}
		e := Entry{
			Name:       cpuSuffix.ReplaceAllString(fields[0], ""),
			Iterations: iters,
			Metrics:    make(map[string]float64, (len(fields)-2)/2),
		}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("bad metric value %q in line %q", fields[i], line)
			}
			e.Metrics[fields[i+1]] = v
		}
		entries = append(entries, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return entries, nil
}
