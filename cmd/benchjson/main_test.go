package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: dspot
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkSimulate576        	  132954	      8561 ns/op	    4864 B/op	       1 allocs/op
BenchmarkFig01HarryPotter-8 	       1	1193837998 ns/op	         1.000 events	         0.04406 nrmse	829601776 B/op	  564215 allocs/op
PASS
ok  	dspot	11.999s
`

func TestParseBenchOutput(t *testing.T) {
	var env Env
	entries, err := parse(strings.NewReader(sample), &env)
	if err != nil {
		t.Fatal(err)
	}
	if env.GOOS != "linux" || env.GOARCH != "amd64" || env.Pkg != "dspot" {
		t.Fatalf("env = %+v", env)
	}
	if !strings.Contains(env.CPU, "Xeon") {
		t.Fatalf("cpu = %q", env.CPU)
	}
	if len(entries) != 2 {
		t.Fatalf("got %d entries, want 2", len(entries))
	}

	e := entries[0]
	if e.Name != "BenchmarkSimulate576" || e.Iterations != 132954 {
		t.Fatalf("entry 0 = %+v", e)
	}
	if e.Metrics["ns/op"] != 8561 || e.Metrics["B/op"] != 4864 || e.Metrics["allocs/op"] != 1 {
		t.Fatalf("entry 0 metrics = %v", e.Metrics)
	}

	// Custom b.ReportMetric units survive, and the -GOMAXPROCS suffix is
	// stripped so names compare across machines.
	e = entries[1]
	if e.Name != "BenchmarkFig01HarryPotter" {
		t.Fatalf("entry 1 name = %q (suffix not stripped?)", e.Name)
	}
	if e.Metrics["nrmse"] != 0.04406 || e.Metrics["events"] != 1 {
		t.Fatalf("entry 1 metrics = %v", e.Metrics)
	}
}

func TestParseSkipsNonBenchLines(t *testing.T) {
	var env Env
	entries, err := parse(strings.NewReader("PASS\nok  \tdspot\t1.2s\nBenchmarkOnly a name\n"), &env)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("got %d entries, want 0: %+v", len(entries), entries)
	}
}
