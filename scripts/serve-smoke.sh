#!/usr/bin/env bash
# serve-smoke: boot dspot-serve, run one async fit over HTTP, and assert the
# whole request shows up as ONE trace in the flight recorder — the HTTP
# span, the job queue-wait and run spans, and the fit-stage spans — with the
# same trace id on the request and job log lines, plus runtime gauges on
# /metrics. This is the end-to-end check that the tracing plumbing stays
# wired through every layer; the per-package unit tests cannot see a broken
# hand-off between them.
set -euo pipefail

cd "$(dirname "$0")/.."

PORT="${PORT:-18080}"
BASE="http://127.0.0.1:${PORT}"
WORKDIR="$(mktemp -d)"
SERVE_PID=""
SERVE2_PID=""
cleanup() {
  [ -n "$SERVE_PID" ] && kill "$SERVE_PID" 2>/dev/null || true
  [ -n "$SERVE2_PID" ] && kill "$SERVE2_PID" 2>/dev/null || true
  rm -rf "$WORKDIR"
}
trap cleanup EXIT

fail() {
  echo "serve-smoke: FAIL: $*" >&2
  echo "--- server log ---" >&2
  cat "$WORKDIR/serve.log" >&2 || true
  exit 1
}

go build -o "$WORKDIR/dspot-serve" ./cmd/dspot-serve
go run ./cmd/dspot-gen -dataset googletrends -keyword grammy \
  -locations 4 -seed 3 -out "$WORKDIR/fit.csv"

"$WORKDIR/dspot-serve" -addr "127.0.0.1:${PORT}" -log-json \
  -runtime-metrics-every 1s >"$WORKDIR/serve.log" 2>&1 &
SERVE_PID=$!

for _ in $(seq 1 100); do
  curl -fsS "$BASE/readyz" >/dev/null 2>&1 && break
  kill -0 "$SERVE_PID" 2>/dev/null || fail "server died during boot"
  sleep 0.1
done
curl -fsS "$BASE/readyz" >/dev/null || fail "server never became ready"

# --- async fit: capture the trace id the middleware echoes back ---------
TRACE_ID=$(curl -fsS -D - -o "$WORKDIR/accept.json" \
  --data-binary @"$WORKDIR/fit.csv" -H 'Content-Type: text/csv' \
  "$BASE/v1/jobs/fit?global_only=1&no_growth=1" \
  | tr -d '\r' | sed -n 's/^[Xx]-[Tt]race-[Ii]d: //p')
[ "${#TRACE_ID}" -eq 32 ] || fail "bad X-Trace-Id '$TRACE_ID'"
JOB_ID=$(sed -n 's/.*"job_id":"\([^"]*\)".*/\1/p' "$WORKDIR/accept.json")
[ -n "$JOB_ID" ] || fail "no job_id in accept body: $(cat "$WORKDIR/accept.json")"

# --- wait for the job, then for its late spans to land ------------------
for _ in $(seq 1 300); do
  STATE=$(curl -fsS "$BASE/v1/jobs/$JOB_ID" | sed -n 's/.*"state":"\([^"]*\)".*/\1/p')
  [ "$STATE" = "done" ] && break
  case "$STATE" in failed|cancelled) fail "job ended $STATE";; esac
  sleep 0.1
done
[ "$STATE" = "done" ] || fail "job never finished (state '$STATE')"

TRACE_JSON=""
for _ in $(seq 1 100); do
  TRACE_JSON=$(curl -fsS "$BASE/debug/traces/$TRACE_ID" || true)
  if echo "$TRACE_JSON" | grep -q '"name":"job.run"' &&
     echo "$TRACE_JSON" | grep -q '"name":"fit.global"'; then
    break
  fi
  sleep 0.1
done

for span in http.request job.wait job.run fit.global fit.keyword; do
  echo "$TRACE_JSON" | grep -q "\"name\":\"$span\"" \
    || fail "trace $TRACE_ID missing span $span: $TRACE_JSON"
done
echo "$TRACE_JSON" | grep -q '"key":"lm_iterations"' \
  || fail "fit spans carry no lm_iterations attribute: $TRACE_JSON"
curl -fsS "$BASE/debug/traces" | grep -q "$TRACE_ID" \
  || fail "trace listing does not include $TRACE_ID"

# --- log correlation: same trace id on request and job lifecycle lines --
grep '"msg":"request"' "$WORKDIR/serve.log" | grep '/v1/jobs/fit' \
  | grep -q "$TRACE_ID" || fail "request log line lacks trace_id $TRACE_ID"
grep '"msg":"job finished"' "$WORKDIR/serve.log" \
  | grep -q "$TRACE_ID" || fail "job-finished log line lacks trace_id $TRACE_ID"

# --- engine selection: one sync fit per non-default engine path ---------
# A small tensor keeps the auto fit (which runs every engine) fast.
go run ./cmd/dspot-gen -dataset googletrends -keyword grammy \
  -locations 2 -ticks 120 -seed 3 -out "$WORKDIR/fit-small.csv"

curl -fsS --data-binary @"$WORKDIR/fit-small.csv" -H 'Content-Type: text/csv' \
  "$BASE/v1/fit?engine=hip" >"$WORKDIR/hip.json" \
  || fail "engine=hip fit failed"
grep -q '"engine":[[:space:]]*"hip"' "$WORKDIR/hip.json" \
  || fail "hip fit response is not a hip model: $(cat "$WORKDIR/hip.json")"

curl -fsS --data-binary @"$WORKDIR/fit-small.csv" -H 'Content-Type: text/csv' \
  "$BASE/v1/fit?engine=auto&global_only=1" >"$WORKDIR/auto.json" \
  || fail "engine=auto fit failed"
grep -q '"costs"' "$WORKDIR/auto.json" \
  || fail "auto fit response carries no per-engine cost table: $(cat "$WORKDIR/auto.json")"
grep -q '"engine"' "$WORKDIR/auto.json" \
  || fail "auto fit response names no winning engine: $(cat "$WORKDIR/auto.json")"

# --- one stream append so its span + histogram have data ----------------
curl -fsS -X POST -H 'Content-Type: application/json' \
  -d '{"values":[1,2,3]}' "$BASE/v1/streams/smoke/append" >/dev/null \
  || fail "stream append failed"

# --- runtime gauges and the new histograms on /metrics ------------------
METRICS=$(curl -fsS "$BASE/metrics")
for m in go_goroutines go_heap_alloc_bytes go_gc_pause_seconds \
         jobs_queue_wait_seconds stream_append_seconds; do
  echo "$METRICS" | grep -q "$m" || fail "/metrics missing $m"
done
# The fits above touched their engines' breakers, so the state gauge must
# be exported (0 = closed).
echo "$METRICS" | grep -q 'engine_breaker_state{engine="dspot"}' \
  || fail "/metrics missing engine_breaker_state for dspot"

# --- load shedding: a shed request must carry Retry-After ----------------
# A 1ns append budget makes the shed deterministic: the first append is
# admitted (no latency estimate yet) and seeds the EWMA, the second must
# answer 429 append_lag with a Retry-After and the structured body.
PORT2=$((PORT + 1))
BASE2="http://127.0.0.1:${PORT2}"
"$WORKDIR/dspot-serve" -addr "127.0.0.1:${PORT2}" -log-json \
  -append-budget 1ns >"$WORKDIR/serve2.log" 2>&1 &
SERVE2_PID=$!
for _ in $(seq 1 100); do
  curl -fsS "$BASE2/readyz" >/dev/null 2>&1 && break
  kill -0 "$SERVE2_PID" 2>/dev/null || { cat "$WORKDIR/serve2.log" >&2; fail "budgeted server died during boot"; }
  sleep 0.1
done
curl -fsS -X POST -H 'Content-Type: application/json' \
  -d '{"values":[1,2,3]}' "$BASE2/v1/streams/shed/append" >/dev/null \
  || fail "first budgeted append failed"
SHED_STATUS=$(curl -sS -D "$WORKDIR/shed-headers.txt" -o "$WORKDIR/shed.json" \
  -w '%{http_code}' -X POST -H 'Content-Type: application/json' \
  -d '{"values":[4]}' "$BASE2/v1/streams/shed/append")
[ "$SHED_STATUS" = "429" ] || fail "shed append answered $SHED_STATUS, want 429: $(cat "$WORKDIR/shed.json")"
grep -qi '^Retry-After:' "$WORKDIR/shed-headers.txt" \
  || fail "shed response carries no Retry-After: $(cat "$WORKDIR/shed-headers.txt")"
grep -q '"reason":"append_lag"' "$WORKDIR/shed.json" \
  || fail "shed body not structured: $(cat "$WORKDIR/shed.json")"
curl -fsS "$BASE2/metrics" | grep -q 'http_sheds_total{reason="append_lag"}' \
  || fail "shed not counted in http_sheds_total"
kill "$SERVE2_PID"
wait "$SERVE2_PID" 2>/dev/null || true
SERVE2_PID=""
# Per-engine fit counts: the async dspot fit and the sync hip fit above
# must each show up under their engine label.
echo "$METRICS" | grep 'fits_total{engine="dspot"}' | grep -qv ' 0$' \
  || fail "/metrics missing fits_total for dspot"
echo "$METRICS" | grep 'fits_total{engine="hip"}' | grep -qv ' 0$' \
  || fail "/metrics missing fits_total for hip"

kill "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null || true
SERVE_PID=""
echo "serve-smoke: OK (trace $TRACE_ID, job $JOB_ID)"
