GO ?= go

.PHONY: all build test vet bench fuzz examples experiments clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test -timeout 1800s ./...

# Short mode skips the slow CLI-pipeline and wide-fit integration tests.
test-short:
	$(GO) test -short ./...

race:
	$(GO) test -race -run 'TestFitEndToEnd|TestFitGlobalOnly|TestStream|TestFitTraceConcurrent|TestFitGlobalSequenceCancel|TestFitCtx|TestFitCancel|TestFitLocalBoundsGoroutines' ./internal/core/
	$(GO) test -race -run 'TestMetrics|TestMiddleware|TestConcurrentStatefulTraffic|TestJobFitCancel' ./internal/service/ ./internal/obs/
	$(GO) test -race ./internal/registry/ ./internal/jobs/
	$(GO) test -race ./internal/lm/ ./internal/optimize/

bench:
	$(GO) test -bench=. -benchmem -run XXX .

# go test runs one fuzz target per invocation.
fuzz:
	$(GO) test -fuzz=FuzzReadCSV -fuzztime=30s ./internal/dataset/
	$(GO) test -fuzz=FuzzDecodeManifest -fuzztime=30s ./internal/registry/

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/events
	$(GO) run ./examples/forecast
	$(GO) run ./examples/worldmap
	$(GO) run ./examples/streaming

# Regenerate the paper's figures at full scale (minutes; see EXPERIMENTS.md).
experiments:
	$(GO) run ./cmd/dspot-exp -fig all -scale full

clean:
	$(GO) clean ./...
