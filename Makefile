GO ?= go

.PHONY: all build test vet bench fuzz chaos examples experiments clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test -timeout 1800s ./...

# Short mode skips the slow CLI-pipeline and wide-fit integration tests.
test-short:
	$(GO) test -short ./...

race:
	$(GO) test -race -run 'TestFitEndToEnd|TestFitGlobalOnly|TestStream|TestFitTraceConcurrent|TestFitGlobalSequenceCancel|TestFitCtx|TestFitCancel|TestFitLocalBoundsGoroutines|TestFitGlobalContainsWorkerPanic|TestFitLocalContainsCellPanic' ./internal/core/
	$(GO) test -race -run 'TestMetrics|TestMiddleware|TestConcurrentStatefulTraffic|TestJobFitCancel|TestReadyz' ./internal/service/ ./internal/obs/
	$(GO) test -race ./internal/registry/ ./internal/jobs/ ./internal/faultfs/
	$(GO) test -race ./internal/lm/ ./internal/optimize/ ./internal/numcheck/

# Fault-injection suite: fit robustness plus the registry's crash/corruption
# chaos tests, under the race detector.
chaos:
	$(GO) test -race -run 'TestChaos|TestWriteFileAtomicCleansUp|TestLegacy' ./internal/registry/
	$(GO) test -race ./internal/faultfs/
	$(GO) test -race -run 'Rejects|ContainsPanic|ContainsWorkerPanic|ContainsCellPanic|TestSimulateSanitises|TestFitGlobalValidatesTensor' ./internal/core/

bench:
	$(GO) test -bench=. -benchmem -run XXX .

# go test runs one fuzz target per invocation. The fit fuzzer bounds each
# exec with a 300ms cooperative deadline; -fuzzminimizetime keeps the
# minimiser from replaying slow candidates for the default 60s.
fuzz:
	$(GO) test -fuzz=FuzzReadCSV$$ -fuzztime=30s ./internal/dataset/
	$(GO) test -fuzz=FuzzReadWideCSV -fuzztime=30s ./internal/dataset/
	$(GO) test -fuzz=FuzzReadModel -fuzztime=30s ./internal/dataset/
	$(GO) test -fuzz=FuzzDecodeManifest -fuzztime=30s ./internal/registry/
	$(GO) test -fuzz=FuzzRestoreState -fuzztime=30s -fuzzminimizetime=5s ./internal/registry/
	$(GO) test -fuzz=FuzzFitSequence -fuzztime=30s -fuzzminimizetime=5s ./internal/core/

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/events
	$(GO) run ./examples/forecast
	$(GO) run ./examples/worldmap
	$(GO) run ./examples/streaming

# Regenerate the paper's figures at full scale (minutes; see EXPERIMENTS.md).
experiments:
	$(GO) run ./cmd/dspot-exp -fig all -scale full

clean:
	$(GO) clean ./...
