GO ?= go

.PHONY: all build test vet bench bench-micro bench-json fuzz chaos examples experiments clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test -timeout 1800s ./...

# Short mode skips the slow CLI-pipeline and wide-fit integration tests.
test-short:
	$(GO) test -short ./...

race:
	$(GO) test -race -run 'TestFitEndToEnd|TestFitGlobalOnly|TestStream|TestFitTraceConcurrent|TestFitGlobalSequenceCancel|TestFitCtx|TestFitCancel|TestFitLocalBoundsGoroutines|TestFitGlobalContainsWorkerPanic|TestFitLocalContainsCellPanic' ./internal/core/
	$(GO) test -race -run 'TestMetrics|TestMiddleware|TestConcurrentStatefulTraffic|TestJobFitCancel|TestJobFitTrace|TestReadyz|TestConcurrentSpans|TestRecorderSlowTraceRetention|TestRuntimeCollector' ./internal/service/ ./internal/obs/...
	$(GO) test -race ./internal/registry/ ./internal/jobs/ ./internal/faultfs/
	$(GO) test -race ./internal/lm/ ./internal/optimize/ ./internal/numcheck/

# Fault-injection suite: fit robustness plus the registry's crash/corruption
# chaos tests, under the race detector.
chaos:
	$(GO) test -race -run 'TestChaos|TestWriteFileAtomicCleansUp|TestLegacy' ./internal/registry/
	$(GO) test -race ./internal/faultfs/
	$(GO) test -race -run 'Rejects|ContainsPanic|ContainsWorkerPanic|ContainsCellPanic|TestSimulateSanitises|TestFitGlobalValidatesTensor' ./internal/core/
	# Hostile-input matrix and overload resilience: the five adversarial
	# append schedules over HTTP against bounded streams, the breaker
	# lifecycle under injected fit faults, structured admission sheds, and
	# the 100-stream refit-stampede bound.
	$(GO) test -race -run 'TestHostileScenarioMatrix|TestBreakerLifecycleOverHTTP|TestJobFitShedsOnOpenBreaker|TestJobFitOverBudget429|TestAppendLagSheds429|TestReadyzEnumeratesReasons' ./internal/service/
	$(GO) test -race -run 'TestRefitStampedeBounded|TestBoundedStreamPersistRestore|TestAppendStreamPositioned' ./internal/registry/
	$(GO) test -race ./internal/admit/ ./internal/datagen/

bench:
	$(GO) test -bench=. -benchmem -run XXX .

# The fast micro-benchmarks only (seconds, not the multi-minute figure
# benchmarks): the hot-path kernels the performance work targets.
BENCH_MICRO = Simulate576|^BenchmarkJacobian$$|LevenbergMarquardt|GlobalFitSequence|^BenchmarkForecast$$|MDLCost|RMSE576|^BenchmarkStreamAppend$$
bench-micro:
	$(GO) test -bench='$(BENCH_MICRO)' -benchmem -run XXX .

# Benchmark trajectory: run the micro-benchmarks and convert the output to
# the committed BENCH_*.json format (see README, "Benchmark trajectory").
# Point BENCH_BEFORE at a previously captured `go test -bench` text file to
# record a proper before/after pair; without it the fresh run fills both
# sides (a flat baseline for the next PR to diff against).
BENCH_JSON ?= BENCH_10.json
BENCH_AFTER_TXT ?= /tmp/dspot-bench-after.txt
bench-json:
	$(GO) test -bench='$(BENCH_MICRO)' -benchmem -run XXX . | tee $(BENCH_AFTER_TXT)
	$(GO) run ./cmd/benchjson -before $(if $(BENCH_BEFORE),$(BENCH_BEFORE),$(BENCH_AFTER_TXT)) \
		-after $(BENCH_AFTER_TXT) -out $(BENCH_JSON)

# go test runs one fuzz target per invocation. The fit fuzzer bounds each
# exec with a 300ms cooperative deadline; -fuzzminimizetime keeps the
# minimiser from replaying slow candidates for the default 60s.
fuzz:
	$(GO) test -fuzz=FuzzReadCSV$$ -fuzztime=30s ./internal/dataset/
	$(GO) test -fuzz=FuzzReadWideCSV -fuzztime=30s ./internal/dataset/
	$(GO) test -fuzz=FuzzReadModel -fuzztime=30s ./internal/dataset/
	$(GO) test -fuzz=FuzzDecodeManifest -fuzztime=30s ./internal/registry/
	$(GO) test -fuzz=FuzzRestoreState -fuzztime=30s -fuzzminimizetime=5s ./internal/registry/
	$(GO) test -fuzz=FuzzFitSequence -fuzztime=30s -fuzzminimizetime=5s ./internal/core/
	$(GO) test -fuzz=FuzzJacobianConsistency -fuzztime=30s ./internal/core/

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/events
	$(GO) run ./examples/forecast
	$(GO) run ./examples/worldmap
	$(GO) run ./examples/streaming

# Regenerate the paper's figures at full scale (minutes; see EXPERIMENTS.md).
experiments:
	$(GO) run ./cmd/dspot-exp -fig all -scale full

clean:
	$(GO) clean ./...
