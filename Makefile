GO ?= go

.PHONY: all build test vet bench fuzz examples experiments clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test -timeout 1800s ./...

# Short mode skips the slow CLI-pipeline and wide-fit integration tests.
test-short:
	$(GO) test -short ./...

race:
	$(GO) test -race -run 'TestFitEndToEnd|TestFitGlobalOnly|TestStream|TestFitTraceConcurrent' ./internal/core/
	$(GO) test -race -run 'TestMetrics|TestMiddleware' ./internal/service/ ./internal/obs/

bench:
	$(GO) test -bench=. -benchmem -run XXX .

fuzz:
	$(GO) test -fuzz=FuzzReadCSV -fuzztime=30s ./internal/dataset/

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/events
	$(GO) run ./examples/forecast
	$(GO) run ./examples/worldmap
	$(GO) run ./examples/streaming

# Regenerate the paper's figures at full scale (minutes; see EXPERIMENTS.md).
experiments:
	$(GO) run ./cmd/dspot-exp -fig all -scale full

clean:
	$(GO) clean ./...
