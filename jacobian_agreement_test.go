package dspot

import (
	"math"
	"math/rand"
	"testing"

	"dspot/internal/core"
	"dspot/internal/datagen"
)

// FD-vs-analytic consistency at the root: the core package pins Jacobian
// agreement on hand-picked parameter points; these tests close the loop on
// *data-driven* points by fitting the datagen scenario worlds — one per
// model family, plus a hostile regime change — both ways and checking (a)
// the two Jacobian modes land on fits of equivalent quality and (b) the
// analytic Jacobian still matches finite differences at the parameters the
// fit actually converged to, which canonical test points cannot guarantee.

// scenarioSequences returns one global sequence per scenario family. The
// regime-change series is the hostile generator's append schedule flattened
// in order (its ops are contiguous head appends).
func scenarioSequences() map[string][]float64 {
	cfg := datagen.Config{Locations: 8, Seed: 3}
	seqs := map[string][]float64{
		"trend":    datagen.TrendScenario(cfg).Tensor.Global(0),
		"epidemic": datagen.EpidemicScenario(cfg).Tensor.Global(0),
	}
	hawkes, _ := datagen.HawkesScenario(cfg)
	seqs["hawkes"] = hawkes.Tensor.Global(0)
	var regime []float64
	for _, op := range datagen.RegimeChange(rand.New(rand.NewSource(7)), 120).Ops {
		regime = append(regime, op.Values...)
	}
	seqs["regime-change"] = regime
	return seqs
}

// inSampleNRMSE scores a model's reconstruction of its own training window.
func inSampleNRMSE(t *testing.T, m *Model, seq []float64) float64 {
	t.Helper()
	rec := m.ForecastGlobalFull(0, 0)
	if len(rec) != len(seq) {
		t.Fatalf("reconstruction length %d, want %d", len(rec), len(seq))
	}
	sse, mean := 0.0, 0.0
	for i, v := range seq {
		d := rec[i] - v
		sse += d * d
		mean += v
	}
	mean /= float64(len(seq))
	if mean <= 0 {
		t.Fatal("degenerate sequence: non-positive mean")
	}
	return math.Sqrt(sse/float64(len(seq))) / mean
}

// TestFDAndAnalyticFitsAgreeOnScenarios fits every scenario world twice —
// analytic sensitivities (production) and finite differences (the oracle
// the analytic path replaced) — and requires the two fits to be of
// equivalent quality. The LM trajectories legitimately diverge (different
// rounding in the Jacobian moves every accept/reject decision), so the
// comparison is by reconstruction NRMSE, not by parameters, with the same
// equivalence band the incremental-vs-batch stream test uses. A one-sided
// failure (analytic much worse than FD) is the fit-level symptom of a
// broken sensitivity term; FD much worse than analytic would mean the
// oracle itself regressed. The FD-side band is looser because the FD path
// is already measurably weaker here: on "trend" it stalls into a basin a
// full 1.7× worse than the analytic fit (0.297 vs 0.177 NRMSE), which is
// exactly the deficit the analytic switch was built to remove.
func TestFDAndAnalyticFitsAgreeOnScenarios(t *testing.T) {
	if testing.Short() {
		t.Skip("eight full FitSequence runs")
	}
	for name, seq := range scenarioSequences() {
		an, err := FitSequence(seq, Options{})
		if err != nil {
			t.Fatalf("%s analytic: %v", name, err)
		}
		fd, err := FitSequence(seq, Options{FDJacobian: true})
		if err != nil {
			t.Fatalf("%s fd: %v", name, err)
		}
		anQ, fdQ := inSampleNRMSE(t, an, seq), inSampleNRMSE(t, fd, seq)
		t.Logf("%-13s NRMSE analytic %.4f fd %.4f", name, anQ, fdQ)
		if anQ > fdQ*1.5+0.05 {
			t.Errorf("%s: analytic NRMSE %.4f outside equivalence band of fd %.4f",
				name, anQ, fdQ)
		}
		if fdQ > anQ*2+0.05 {
			t.Errorf("%s: fd NRMSE %.4f outside equivalence band of analytic %.4f",
				name, fdQ, anQ)
		}
	}
}

// TestScenarioJacobianMatchesFDAtFittedPoints evaluates the analytic
// Jacobian at each scenario's *converged* parameters — with the fitted
// shock profile in place — and cross-checks every lane against central
// finite differences. The core-level agreement tests use canonical
// parameter points; this one guards the points that matter in production,
// where the state trajectory has been driven onto whatever clamp and
// renormalisation boundaries the data demands.
//
// FD is trusted only where it is self-consistent: an entry is checked when
// halving the step reproduces the central difference (Richardson gate),
// which skips the kink-straddling entries where FD measures the wrong
// one-sided slope. The gate must still pass the bulk of the entries or the
// test is vacuous.
func TestScenarioJacobianMatchesFDAtFittedPoints(t *testing.T) {
	if testing.Short() {
		t.Skip("full FitSequence runs")
	}
	for name, seq := range scenarioSequences() {
		m, err := FitSequence(seq, Options{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		p := m.Global[0]
		n := len(seq)

		// Rebuild the fitted susceptibility profile ε(t) = 1 + Σ strengths.
		eps := make([]float64, n)
		for i := range eps {
			eps[i] = 1
		}
		specs := core.BaseSensSpecs()
		specs = append(specs, core.SensSpec{Param: core.SensEta0})
		for si := range m.Shocks {
			s := &m.Shocks[si]
			for occ := range s.Strength {
				start := s.OccurrenceStart(occ)
				for tt := start; tt < start+s.Width && tt < n; tt++ {
					if tt >= 0 {
						eps[tt] += s.Strength[occ]
					}
				}
				specs = append(specs, core.StrengthSpec(s, occ, n))
			}
		}

		_, jac := core.SimulateWithSensitivities(nil, nil, &p, n, eps, -1, specs)

		// Central difference of lane j at step h: perturb the parameter (or
		// the strength's eps window) symmetrically and resimulate.
		fdLane := func(j int, h float64) []float64 {
			shift := func(sign float64) []float64 {
				pp, ee := p, eps
				d := sign * h
				switch specs[j].Param {
				case core.SensN:
					pp.N += d
				case core.SensBeta:
					pp.Beta += d
				case core.SensDelta:
					pp.Delta += d
				case core.SensGamma:
					pp.Gamma += d
				case core.SensI0:
					pp.I0 += d
				case core.SensEta0:
					pp.Eta0 += d
				case core.SensStrength:
					ee = append([]float64(nil), eps...)
					for tt := specs[j].Lo; tt < specs[j].Hi; tt++ {
						ee[tt] += d
					}
				}
				return core.Simulate(&pp, n, ee, -1)
			}
			hi, lo := shift(1), shift(-1)
			out := make([]float64, n)
			for tt := range out {
				out[tt] = (hi[tt] - lo[tt]) / (2 * h)
			}
			return out
		}

		checked, total := 0, 0
		for j := range specs {
			// Step scaled to the parameter's magnitude so N (hundreds) and
			// i0 (1e-5) both get a well-conditioned difference.
			scale := 1.0
			switch specs[j].Param {
			case core.SensN:
				scale = math.Max(1, math.Abs(p.N))
			case core.SensStrength:
				scale = math.Max(1, math.Abs(eps[specs[j].Lo]))
			}
			h := 1e-6 * scale
			d1, d2 := fdLane(j, h), fdLane(j, h/2)
			for tt := 0; tt < n; tt++ {
				total++
				ref := math.Max(math.Abs(d1[tt]), math.Abs(d2[tt]))
				// Richardson gate: only trust FD where halving the step
				// changes nothing beyond noise.
				if math.Abs(d1[tt]-d2[tt]) > 1e-3*ref+1e-7*scale {
					continue
				}
				checked++
				got := jac[tt*len(specs)+j]
				if math.Abs(got-d2[tt]) > 5e-3*ref+1e-6*scale {
					t.Errorf("%s: lane %d (%v) tick %d: analytic %g, fd %g",
						name, j, specs[j].Param, tt, got, d2[tt])
				}
			}
		}
		t.Logf("%-13s %d lanes, %d/%d entries FD-checkable", name, len(specs), checked, total)
		if checked < total/2 {
			t.Errorf("%s: Richardson gate skipped too much: %d of %d", name, checked, total)
		}
	}
}
