// Package dspot implements Δ-SPOT, a unifying analytical non-linear model
// for large collections of time-evolving online user activities (Do,
// Matsubara & Sakurai, 2016). Given a 3rd-order tensor of (keyword,
// location, time) counts, Δ-SPOT automatically:
//
//   - fits non-linear SIV (Susceptible–Infective–Vigilant) dynamics per
//     keyword (P1: base trends),
//   - estimates per-location potential populations (P2: area specificity),
//   - detects population growth effects (P3), and
//   - discovers cyclic and one-shot external shock events with per-location
//     participation (P4),
//
// with model complexity chosen by the minimum description length principle —
// no parameters to tune — and forecasts long-range future dynamics by
// extrapolating the discovered cyclic events.
//
// # Quick start
//
//	x := dspot.NewTensor([]string{"harry potter"}, []string{"US", "JP"}, 576)
//	// ... fill x with weekly counts via x.Set(keyword, location, tick, v) ...
//	model, err := dspot.Fit(x, dspot.Options{})
//	if err != nil { ... }
//	events := model.ShocksFor(0)          // detected external shocks
//	future := model.ForecastGlobal(0, 52) // one more year, spikes included
//
// Synthetic datasets mirroring the paper's evaluation data (GoogleTrends,
// Twitter, MemeTracker) are available via the Synthetic* constructors, and
// the cmd/dspot-exp binary regenerates every figure of the paper.
package dspot

import (
	"context"
	"os"

	"dspot/internal/arima"
	"dspot/internal/core"
	"dspot/internal/datagen"
	"dspot/internal/dataset"
	"dspot/internal/tbats"
	"dspot/internal/tensor"
)

// Tensor is the 3rd-order activity tensor X ∈ N^{d×l×n}: x_ij(t) is the
// count of keyword i in location j at time-tick t.
type Tensor = tensor.Tensor

// Missing marks an unobserved tensor cell; fitting skips missing cells.
var Missing = tensor.Missing

// NewTensor returns a zero tensor with the given keyword and location axes
// and duration n.
func NewTensor(keywords, locations []string, n int) *Tensor {
	return tensor.New(keywords, locations, n)
}

// Model is a fitted Δ-SPOT parameter set F = {B_G, B_L, R_G, R_L, S}.
type Model = core.Model

// Shock is one external shock event s = {s^(D), s^(N), s^(L)} with
// periodicity (Period; 0 = one-shot), start, width, per-occurrence global
// strengths, and per-location participation.
type Shock = core.Shock

// KeywordParams are one keyword's global dynamics {N, β, δ, γ} plus the
// growth effect {η₀, t_η}.
type KeywordParams = core.KeywordParams

// PredictedEvent is a projected future shock occurrence.
type PredictedEvent = core.PredictedEvent

// Options tunes fitting. The zero value enables the full automatic model;
// the Disable* switches reproduce the paper's Fig. 4 ablation. Set Context
// (or use FitCtx) to cancel a long fit cooperatively.
type Options = core.FitOptions

// NonCyclic is the Shock.Period value of one-shot events.
const NonCyclic = core.NonCyclic

// NoGrowth is the KeywordParams.TEta value when no growth effect is active.
const NoGrowth = core.NoGrowth

// Fit runs the full two-layer Δ-SPOT algorithm: GlobalFit over the d global
// sequences x̄_i = Σ_j x_ij, then LocalFit over all d×l local sequences.
func Fit(x *Tensor, opts Options) (*Model, error) {
	return core.Fit(x, opts)
}

// FitCtx is Fit under a cancellation context — shorthand for setting
// Options.Context. Once ctx ends, every fitting layer (LM iterations,
// golden-section and grid searches, shock discovery, local cells) stops
// cooperatively and the call returns an error wrapping context.Canceled or
// context.DeadlineExceeded, within about one LM iteration of the cancel.
func FitCtx(ctx context.Context, x *Tensor, opts Options) (*Model, error) {
	return core.FitCtx(ctx, x, opts)
}

// Observability: set Options.Progress to receive FitEvents at stage
// boundaries, or use the *WithReport variants to get an aggregated
// FitReport (stage timings, LM iteration counts, shock candidates tried vs
// accepted) alongside the model. Hooks are zero-cost when nil.

// FitEvent is one fit-progress observation emitted at a stage boundary.
type FitEvent = core.FitEvent

// ProgressFunc receives fit-progress events; it must be safe for
// concurrent use.
type ProgressFunc = core.ProgressFunc

// FitReport aggregates a fit run's trace events.
type FitReport = core.FitReport

// FitTrace aggregates FitEvents into a FitReport; NewFitTrace().Hook() is
// the canonical Options.Progress value.
type FitTrace = core.FitTrace

// NewFitTrace returns an empty fit-trace collector.
func NewFitTrace() *FitTrace { return core.NewFitTrace() }

// FitWithReport is Fit with tracing enabled, returning the FitReport too.
func FitWithReport(x *Tensor, opts Options) (*Model, *FitReport, error) {
	return core.FitWithReport(x, opts)
}

// FitGlobalWithReport is FitGlobal with tracing enabled.
func FitGlobalWithReport(x *Tensor, opts Options) (*Model, *FitReport, error) {
	return core.FitGlobalWithReport(x, opts)
}

// FitGlobal runs only the global phase (l times cheaper; local matrices stay
// nil). Use Fit, or follow with FitLocal, when per-location analysis or the
// world reaction maps are needed.
func FitGlobal(x *Tensor, opts Options) (*Model, error) {
	return core.FitGlobal(x, opts)
}

// FitLocal runs the local phase against a model from FitGlobal, filling
// B_L, R_L and each shock's per-location participation in place.
func FitLocal(x *Tensor, m *Model, opts Options) error {
	return core.FitLocal(x, m, opts)
}

// FitSequence fits the single-sequence Δ-SPOT model (Model 1 in the paper)
// to one global series: handy when there is no location axis. The returned
// model has one keyword named "seq" and one location named "all".
func FitSequence(seq []float64, opts Options) (*Model, error) {
	res, err := core.FitGlobalSequence(seq, 0, opts)
	if err != nil {
		return nil, err
	}
	return &Model{
		Keywords:  []string{"seq"},
		Locations: []string{"all"},
		Ticks:     len(seq),
		Global:    []KeywordParams{res.Params},
		Shocks:    res.Shocks,
		Scale:     []float64{res.Scale},
	}, nil
}

// Synthetic datasets. Each mirrors one dataset from the paper's evaluation
// with scripted ground truth (see DESIGN.md §3 for the substitution
// rationale); all are deterministic per seed.

// SyntheticConfig sizes a synthetic dataset.
type SyntheticConfig = datagen.Config

// SyntheticTruth bundles a generated tensor with its generation scripts.
type SyntheticTruth = datagen.Truth

// SyntheticGoogleTrends generates the weekly 8-keyword × countries tensor
// (Jan 2004 – Jan 2015 at natural size).
func SyntheticGoogleTrends(cfg SyntheticConfig) *SyntheticTruth {
	return datagen.GoogleTrends(cfg)
}

// SyntheticGoogleTrendsKeyword generates a single keyword's world; keywords
// are listed by SyntheticKeywords.
func SyntheticGoogleTrendsKeyword(name string, cfg SyntheticConfig) (*SyntheticTruth, error) {
	return datagen.GoogleTrendsKeyword(name, cfg)
}

// SyntheticKeywords lists the scripted GoogleTrends keywords.
func SyntheticKeywords() []string { return datagen.GoogleTrendsKeywordNames() }

// SyntheticTwitter generates the daily hashtag tensor ("#apple",
// "#backtoschool", plus extraTags random bursty hashtags).
func SyntheticTwitter(extraTags int, cfg SyntheticConfig) *SyntheticTruth {
	return datagen.Twitter(extraTags, cfg)
}

// SyntheticMemeTracker generates the daily meme-phrase tensor.
func SyntheticMemeTracker(extraMemes int, cfg SyntheticConfig) *SyntheticTruth {
	return datagen.MemeTracker(extraMemes, cfg)
}

// I/O. Tensors travel as long-form CSV (keyword,location,tick,count);
// fitted models as JSON.

// LoadTensorCSV reads a tensor from a long-form CSV file.
func LoadTensorCSV(path string) (*Tensor, error) { return dataset.LoadCSV(path) }

// SaveTensorCSV writes a tensor to a long-form CSV file.
func SaveTensorCSV(path string, x *Tensor) error { return dataset.SaveCSV(path, x) }

// LoadTensorWideCSV reads a wide-format file (one row per tick, one column
// per location — the shape real trend exports come in) as a single-keyword
// tensor named keyword. Use dataset.MergeKeywordTensors via repeated loads
// to assemble a multi-keyword tensor.
func LoadTensorWideCSV(path, keyword string) (*Tensor, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return dataset.ReadWideCSV(f, keyword)
}

// LoadModel reads a fitted model from a JSON file.
func LoadModel(path string) (*Model, error) { return dataset.LoadModel(path) }

// SaveModel writes a fitted model to a JSON file.
func SaveModel(path string, m *Model) error { return dataset.SaveModel(path, m) }

// Streaming: online series grow one tick at a time; Stream keeps a model
// warm. Two maintenance modes exist: RefitBatch re-runs the warm-started
// batch fitter on a tick cadence, RefitIncremental folds each tick into the
// model in O(TailWindow) time and amortises the full refit behind a debt
// counter (see Stream.Append).

// Stream maintains a Δ-SPOT model over an append-only series.
type Stream = core.Stream

// RefitMode selects a stream's maintenance strategy.
type RefitMode = core.RefitMode

// Stream maintenance modes.
const (
	RefitBatch       = core.RefitBatch
	RefitIncremental = core.RefitIncremental
)

// IncrementalConfig tunes incremental stream maintenance: the sliding tail
// window re-examined per append and the refit-debt limit that schedules the
// consolidating full refit. Zero fields select defaults.
type IncrementalConfig = core.IncrementalConfig

// NewStream returns a batch-mode stream that refits after every refitEvery
// appended ticks (<= 0 selects the default of 26).
func NewStream(opts Options, refitEvery int) *Stream {
	return core.NewStream(opts, refitEvery)
}

// NewIncrementalStream returns a stream maintained incrementally: O(tail)
// work per appended tick, with full refits amortised behind the debt
// counter (refitEvery becomes the debt unit and retry-backoff spacing).
func NewIncrementalStream(opts Options, refitEvery int, cfg IncrementalConfig) *Stream {
	return core.NewIncrementalStream(opts, refitEvery, cfg)
}

// Band holds per-tick forecast quantiles from Model.ForecastBands — a
// Monte-Carlo prediction interval via residual bootstrap (an extension
// beyond the paper; see DESIGN.md).
type Band = core.Band

// Anomaly is one flagged tick from Model.AnomaliesGlobal/AnomaliesLocal:
// a residual exceeding the threshold in units of the fitted noise σ.
type Anomaly = core.Anomaly

// Baseline forecasters, exposed for side-by-side comparisons (the paper's
// Fig. 11 uses both against Δ-SPOT).

// ForecastAR fits an AR(order) model to seq and forecasts h steps.
func ForecastAR(seq []float64, order, h int) ([]float64, error) {
	m, err := arima.FitAR(seq, order)
	if err != nil {
		return nil, err
	}
	return m.Forecast(h), nil
}

// ForecastTBATS fits a TBATS-style model to seq and forecasts h steps.
func ForecastTBATS(seq []float64, h int) ([]float64, error) {
	m, err := tbats.Fit(seq)
	if err != nil {
		return nil, err
	}
	return m.Forecast(h), nil
}
