package hip

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"

	"dspot/internal/numcheck"
)

// promoWithPulses builds a unit-baseline promotion series with scripted
// rectangular pulses — the "promoted on these days" exogenous script.
func promoWithPulses(n int, pulses map[int]float64, width int) []float64 {
	promo := make([]float64, n)
	for t := range promo {
		promo[t] = 1
	}
	for start, level := range pulses {
		for t := start; t < start+width && t < n; t++ {
			promo[t] += level
		}
	}
	return promo
}

// TestFitRecoversPlantedParameters plants a HIP world — power-law
// self-excitation plus promotion pulses — and checks the fit reproduces the
// clean trajectory within a tight NRMSE bound and lands near the planted
// parameters.
func TestFitRecoversPlantedParameters(t *testing.T) {
	const n = 200
	truth := Params{Mu: 50, C: 0.5, Theta: 0.6, Cutoff: 2}
	promo := promoWithPulses(n, map[int]float64{30: 10, 100: 8, 150: 12}, 3)
	clean := truth.Simulate(n, promo)

	peak := 0.0
	for _, v := range clean {
		if v > peak {
			peak = v
		}
	}
	rng := rand.New(rand.NewSource(7))
	obs := make([]float64, n)
	for t := range obs {
		obs[t] = clean[t] + rng.NormFloat64()*0.01*peak
		if obs[t] < 0 {
			obs[t] = 0
		}
	}

	got, err := Fit(obs, Options{Promotion: promo})
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	fit := got.Simulate(n, promo)
	sse := 0.0
	for t := range fit {
		d := fit[t] - clean[t]
		sse += d * d
	}
	nrmse := math.Sqrt(sse/float64(n)) / peak
	if nrmse > 0.05 {
		t.Fatalf("fitted curve NRMSE %.4f vs planted world (want <= 0.05); got %+v", nrmse, got)
	}
	// The curve bound is the strict check. Raw (C, θ, c) sit on a ridge of
	// near-equal fits — C trades off against the kernel mass — so the
	// parameter check targets the identifiable combinations: the branching
	// factor C·Σφ (endogenous amplification) and μ (exogenous sensitivity).
	bTruth, bGot := branching(truth, n), branching(got, n)
	if math.Abs(bGot-bTruth) > 0.1 {
		t.Errorf("recovered branching factor %.3f, planted %.3f (params %+v)",
			bGot, bTruth, got)
	}
	if got.Mu < truth.Mu*0.5 || got.Mu > truth.Mu*1.5 {
		t.Errorf("recovered Mu=%.3f, planted %.3f", got.Mu, truth.Mu)
	}
}

// branching is the endogenous amplification C·Σ_{k<n} (k+c)^{−(1+θ)} — the
// identifiable self-excitation quantity (raw C and the kernel shape trade
// off against each other).
func branching(p Params, n int) float64 {
	s := 0.0
	for k := 1; k < n; k++ {
		s += math.Pow(float64(k)+p.Cutoff, -(1 + p.Theta))
	}
	return p.C * s
}

func TestFitRejectsNonFiniteInput(t *testing.T) {
	seq := make([]float64, 32)
	for t := range seq {
		seq[t] = float64(t)
	}
	seq[5] = math.Inf(1)
	if _, err := Fit(seq, Options{}); !errors.Is(err, numcheck.ErrInf) {
		t.Fatalf("Fit(inf) err = %v, want numcheck.ErrInf", err)
	}
	seq[5] = -3
	if _, err := Fit(seq, Options{}); !errors.Is(err, numcheck.ErrNegative) {
		t.Fatalf("Fit(negative) err = %v, want numcheck.ErrNegative", err)
	}
	promo := make([]float64, 32)
	promo[0] = math.NaN()
	seq[5] = 3
	if _, err := Fit(seq, Options{Promotion: promo}); !errors.Is(err, numcheck.ErrNaN) {
		t.Fatalf("Fit(NaN promotion) err = %v, want numcheck.ErrNaN", err)
	}
}

func TestFitCancellation(t *testing.T) {
	seq := make([]float64, 64)
	for t := range seq {
		seq[t] = 10 + float64(t%7)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Fit(seq, Options{Context: ctx}); !errors.Is(err, context.Canceled) {
		t.Fatalf("Fit(cancelled ctx) err = %v, want context.Canceled", err)
	}
}

func TestForecastExtendsTrajectory(t *testing.T) {
	p := Params{Mu: 10, C: 0.4, Theta: 0.8, Cutoff: 1.5}
	promo := promoWithPulses(50, map[int]float64{20: 5}, 2)
	fc := p.Forecast(50, 10, promo)
	if len(fc) != 10 {
		t.Fatalf("Forecast len = %d, want 10", len(fc))
	}
	full := p.Simulate(60, append(append([]float64(nil), promo...),
		1, 1, 1, 1, 1, 1, 1, 1, 1, 1))
	for i, v := range fc {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			t.Fatalf("forecast[%d] = %v, want finite non-negative", i, v)
		}
		// Mean promotion of a 1-baseline series with one small pulse is ~1;
		// the forecast should track the same dynamics to within the pulse's
		// diluted contribution.
		if d := math.Abs(v - full[50+i]); d > 0.3*math.Abs(full[50+i])+1 {
			t.Fatalf("forecast[%d] = %g, continuation = %g", i, v, full[50+i])
		}
	}
}
