// Package hip implements a discrete-time Hawkes Intensity Process (Rizoiu,
// Xie, Sanner, Cebrián, Yu & Van Hentenryck, WWW 2017): popularity ξ(t) is
// driven by an exogenous promotion series s(t) plus power-law self-excitation
// of its own history,
//
//	ξ(t) = μ·s(t) + C · Σ_{τ<t} ξ(τ)·(t−τ+c)^{−(1+θ)}.
//
// Where Δ-SPOT explains a series through epidemic state (S/I/V compartments)
// with multiplicative shocks, HIP explains it through memory: every past tick
// re-excites the present with a heavy power-law tail, and external promotion
// enters additively. The two families decompose exogenous vs endogenous
// influence in structurally different ways, which is exactly what makes HIP a
// useful sibling behind the model-comparison API — MDL coding cost can favour
// one mechanism over the other on real series.
//
// Fitting is Levenberg–Marquardt (internal/lm) on normalised data with
// generative residuals: the candidate intensity is simulated from t=0, never
// conditioned on the observations, so the fitted parameters must reproduce
// the whole trajectory. Missing ticks (NaN) are skipped by the residual, and
// Options.Context cancels cooperatively between LM iterations and starts.
package hip

import (
	"context"
	"errors"
	"fmt"
	"math"

	"dspot/internal/lm"
	"dspot/internal/numcheck"
	"dspot/internal/stats"
	"dspot/internal/tensor"
)

// ParamCount is the number of fitted floats per sequence (μ, C, θ, c) —
// exported so MDL description costs stay in sync with the model.
const ParamCount = 4

// intensityCap bounds the simulated intensity so that supercritical
// parameter vectors (C beyond the branching limit, which LM explores freely)
// saturate instead of overflowing to +Inf and poisoning the residuals.
const intensityCap = 1e12

// Params is one fitted HIP model.
type Params struct {
	Mu     float64 `json:"mu"`     // exogenous sensitivity to promotion s(t)
	C      float64 `json:"excite"` // endogenous (self-excitation) strength
	Theta  float64 `json:"theta"`  // power-law decay exponent: kernel ∝ (τ+c)^{−(1+θ)}
	Cutoff float64 `json:"cutoff"` // kernel offset c, keeps the lag-1 response finite
}

// promoAt reads the promotion series with a constant-1 default: a nil or
// short series means "no recorded promotion", i.e. a unit baseline drive.
func promoAt(promo []float64, t int) float64 {
	if t < len(promo) {
		return promo[t]
	}
	return 1
}

// Simulate runs the intensity recurrence for n ticks under the given
// promotion series (nil = constant 1). The cost is O(n²) — the power-law
// kernel has no exponential-style recursive shortcut — which is fine at the
// series lengths the service fits (hundreds to a few thousand ticks).
func (p *Params) Simulate(n int, promo []float64) []float64 {
	out := make([]float64, n)
	if n == 0 {
		return out
	}
	// kernel[k] = (k+c)^{−(1+θ)} for lag k ≥ 1, shared by every tick.
	kern := make([]float64, n)
	exp := -(1 + p.Theta)
	for k := 1; k < n; k++ {
		kern[k] = math.Pow(float64(k)+p.Cutoff, exp)
	}
	for t := 0; t < n; t++ {
		v := p.Mu * promoAt(promo, t)
		endo := 0.0
		for tau := 0; tau < t; tau++ {
			endo += out[tau] * kern[t-tau]
		}
		v += p.C * endo
		if v < 0 || math.IsNaN(v) {
			v = 0
		} else if v > intensityCap {
			v = intensityCap
		}
		out[t] = v
	}
	return out
}

// Forecast extends the fitted trajectory past the training window: the model
// is simulated for n+h ticks (the first n reproduce the fit) and the last h
// are returned. Future promotion defaults to the mean of the observed
// promotion series — the exogenous drive is an input, so absent a script for
// the future the stationary level is the honest assumption.
func (p *Params) Forecast(n, h int, promo []float64) []float64 {
	total := n + h
	ext := promo
	if len(promo) > 0 && len(promo) < total {
		level := stats.Mean(promo)
		ext = make([]float64, total)
		copy(ext, promo)
		for t := len(promo); t < total; t++ {
			ext[t] = level
		}
	}
	return p.Simulate(total, ext)[n:]
}

// Options tunes Fit.
type Options struct {
	// Context cancels the fit cooperatively between LM iterations and
	// multi-starts; the error then wraps context.Canceled / DeadlineExceeded.
	Context context.Context
	// Promotion is the exogenous drive s(t), one value per tick (nil =
	// constant 1). It must be finite and non-negative: it is input data, not
	// a fitted quantity.
	Promotion []float64
	// MaxIter bounds LM iterations per start (default 150).
	MaxIter int
}

// Fit fits HIP to one sequence by LM on normalised data over a small
// deterministic grid of (C, θ) starting points, returning the best by SSE.
// Missing (NaN) observations are skipped; non-finite or negative values are
// rejected with a typed numcheck error before any fitting work.
func Fit(seq []float64, opts Options) (Params, error) {
	if err := numcheck.Sequence("hip sequence", seq); err != nil {
		return Params{}, err
	}
	if opts.Promotion != nil {
		if err := numcheck.StrictSequence("hip promotion", opts.Promotion); err != nil {
			return Params{}, err
		}
		if len(opts.Promotion) < len(seq) {
			return Params{}, fmt.Errorf("hip: promotion has %d ticks, sequence has %d",
				len(opts.Promotion), len(seq))
		}
	}
	if tensor.ObservedCount(seq) < 8 {
		return Params{}, errors.New("hip: sequence too short to fit")
	}
	maxIter := opts.MaxIter
	if maxIter <= 0 {
		maxIter = 150
	}
	ctx := opts.Context
	norm, scale := tensor.Normalize(seq)
	n := len(norm)
	promo := opts.Promotion

	build := func(v []float64) Params {
		return Params{Mu: v[0], C: v[1], Theta: v[2], Cutoff: v[3]}
	}
	resid := func(v []float64) []float64 {
		p := build(v)
		sim := p.Simulate(n, promo)
		r := make([]float64, n)
		for t := range r {
			if tensor.IsMissing(norm[t]) {
				r[t] = math.NaN()
				continue
			}
			r[t] = sim[t] - norm[t]
		}
		return r
	}

	// μ and C are the load-bearing scales; a seed that matches the early
	// observed level keeps LM out of the all-zero basin.
	promoLevel := 1.0
	if len(promo) > 0 {
		if m := stats.Mean(promo); m > 0 {
			promoLevel = m
		}
	}
	mu0 := math.Max(stats.Mean(norm)/promoLevel, 1e-3)

	lo := []float64{0, 0, 0.05, 1e-3}
	hi := []float64{10, 3, 3, 20}
	best := Params{}
	bestSSE := math.Inf(1)
	for _, c0 := range []float64{0.1, 0.5, 0.9} {
		for _, th0 := range []float64{0.3, 1.0} {
			if ctx != nil && ctx.Err() != nil {
				return Params{}, fmt.Errorf("hip: fit cancelled: %w", ctx.Err())
			}
			start := []float64{mu0, c0, th0, 1}
			res, err := lm.Fit(resid, start, lm.Options{
				MaxIter: maxIter, Lower: lo, Upper: hi, Ctx: ctx,
			})
			if err != nil {
				if ctx != nil && ctx.Err() != nil {
					return Params{}, fmt.Errorf("hip: fit cancelled: %w", ctx.Err())
				}
				continue
			}
			if res.SSE < bestSSE {
				bestSSE = res.SSE
				best = build(res.Params)
			}
		}
	}
	if math.IsInf(bestSSE, 1) {
		return Params{}, errors.New("hip: fit failed for all starting points")
	}
	// ξ is linear in μ for fixed (C, θ, c), so undoing the normalisation is
	// a pure rescale of the exogenous sensitivity.
	best.Mu *= scale
	return best, nil
}
