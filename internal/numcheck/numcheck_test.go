package numcheck

import (
	"errors"
	"math"
	"strings"
	"testing"
)

func TestValue(t *testing.T) {
	cases := []struct {
		name string
		v    float64
		want error // nil = accept
	}{
		{"zero", 0, nil},
		{"positive", 3.5, nil},
		{"nan", math.NaN(), ErrNaN},
		{"plus-inf", math.Inf(1), ErrInf},
		{"minus-inf", math.Inf(-1), ErrInf},
		{"negative", -1e-9, ErrNegative},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := Value("count", c.v)
			if c.want == nil {
				if err != nil {
					t.Fatalf("Value(%g) = %v, want nil", c.v, err)
				}
				return
			}
			if !errors.Is(err, c.want) {
				t.Fatalf("Value(%g) = %v, want errors.Is %v", c.v, err, c.want)
			}
		})
	}
}

func TestSequenceAllowsNaNAsMissing(t *testing.T) {
	if err := Sequence("seq", []float64{1, math.NaN(), 2, 0}); err != nil {
		t.Fatalf("Sequence with NaN (missing) = %v, want nil", err)
	}
	if err := StrictSequence("seq", []float64{1, math.NaN(), 2}); !errors.Is(err, ErrNaN) {
		t.Fatalf("StrictSequence with NaN = %v, want ErrNaN", err)
	}
}

func TestSequenceRejections(t *testing.T) {
	if err := Sequence("seq", []float64{1, 2, math.Inf(1)}); !errors.Is(err, ErrInf) {
		t.Fatalf("Sequence with +Inf = %v, want ErrInf", err)
	}
	if err := Sequence("seq", []float64{1, -3, 2}); !errors.Is(err, ErrNegative) {
		t.Fatalf("Sequence with negative = %v, want ErrNegative", err)
	}
}

func TestValueErrorDetail(t *testing.T) {
	err := Sequence("myseq", []float64{0, 1, math.Inf(-1)})
	var ve *ValueError
	if !errors.As(err, &ve) {
		t.Fatalf("error %v is not a *ValueError", err)
	}
	if ve.Index != 2 || ve.Name != "myseq" || !math.IsInf(ve.Value, -1) {
		t.Fatalf("ValueError = %+v, want index 2, name myseq, -Inf", ve)
	}
	if !strings.Contains(err.Error(), "myseq") || !strings.Contains(err.Error(), "index 2") {
		t.Fatalf("error text %q should name the input and the index", err.Error())
	}
}

func TestFinite(t *testing.T) {
	if err := Finite("resid", -4.2); err != nil {
		t.Fatalf("Finite(-4.2) = %v, want nil (negatives allowed)", err)
	}
	if err := Finite("resid", math.NaN()); !errors.Is(err, ErrNaN) {
		t.Fatalf("Finite(NaN) = %v, want ErrNaN", err)
	}
	if err := Finite("resid", math.Inf(1)); !errors.Is(err, ErrInf) {
		t.Fatalf("Finite(+Inf) = %v, want ErrInf", err)
	}
}
