// Package numcheck validates numeric inputs at the boundaries of the
// fitting pipeline. Real social-activity streams arrive ragged — missing
// cells, zero-variance keywords, hand-edited CSV exports with Inf or
// negative counts — and a degenerate value that slips past the boundary
// either poisons an optimiser (NaN comparisons are always false, so a
// golden-section bracket silently stops shrinking) or surfaces as a panic
// deep inside a worker goroutine. Every dspot.Fit* entry point and the HTTP
// fit/append handlers validate through this package, so callers can rely on
// typed errors (errors.Is against ErrNaN/ErrInf/ErrNegative) to map
// violations to 400s instead of 500s.
//
// Convention: NaN is the tensor package's missing-value sentinel, so
// Sequence treats NaN as an allowed "missing" marker and rejects only Inf
// and negative values; Value and StrictSequence reject NaN too, for
// contexts where missingness is encoded out-of-band (JSON null) and a raw
// NaN can only be a bug.
package numcheck

import (
	"errors"
	"fmt"
	"math"
)

// Typed causes carried by ValueError; test with errors.Is.
var (
	ErrNaN      = errors.New("numcheck: NaN value")
	ErrInf      = errors.New("numcheck: non-finite value")
	ErrNegative = errors.New("numcheck: negative value")
)

// ValueError pinpoints the first offending entry of a validated input.
type ValueError struct {
	Name  string  // what was being validated ("sequence", "count", …)
	Index int     // offending index; -1 for scalars
	Value float64 // the offending value
	Cause error   // ErrNaN, ErrInf or ErrNegative
}

func (e *ValueError) Error() string {
	if e.Index < 0 {
		return fmt.Sprintf("%s: %v (%g)", e.Name, e.Cause, e.Value)
	}
	return fmt.Sprintf("%s: %v at index %d (%g)", e.Name, e.Cause, e.Index, e.Value)
}

func (e *ValueError) Unwrap() error { return e.Cause }

// classify returns the violation of v, if any. allowNaN admits NaN (the
// missing-value sentinel).
func classify(v float64, allowNaN bool) error {
	switch {
	case math.IsNaN(v):
		if allowNaN {
			return nil
		}
		return ErrNaN
	case math.IsInf(v, 0):
		return ErrInf
	case v < 0:
		return ErrNegative
	}
	return nil
}

// Value checks one scalar count: it must be finite and non-negative.
func Value(name string, v float64) error {
	if cause := classify(v, false); cause != nil {
		return &ValueError{Name: name, Index: -1, Value: v, Cause: cause}
	}
	return nil
}

// Sequence checks a count sequence in the tensor convention: NaN marks a
// missing tick and is allowed; Inf and negative values are rejected.
func Sequence(name string, seq []float64) error {
	for i, v := range seq {
		if cause := classify(v, true); cause != nil {
			return &ValueError{Name: name, Index: i, Value: v, Cause: cause}
		}
	}
	return nil
}

// StrictSequence is Sequence with NaN also rejected — for inputs whose
// missing ticks are encoded out-of-band (e.g. JSON null), where a raw NaN
// can only be an encoding bug.
func StrictSequence(name string, seq []float64) error {
	for i, v := range seq {
		if cause := classify(v, false); cause != nil {
			return &ValueError{Name: name, Index: i, Value: v, Cause: cause}
		}
	}
	return nil
}

// Finite checks that v is neither NaN nor Inf (negative allowed) — for
// parameters like residuals or phases that may legitimately be negative.
func Finite(name string, v float64) error {
	if math.IsNaN(v) {
		return &ValueError{Name: name, Index: -1, Value: v, Cause: ErrNaN}
	}
	if math.IsInf(v, 0) {
		return &ValueError{Name: name, Index: -1, Value: v, Cause: ErrInf}
	}
	return nil
}
