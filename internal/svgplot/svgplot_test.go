package svgplot

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func sampleChart() *Chart {
	obs := []float64{1, 3, 2, 8, 2, 1, math.NaN(), 2}
	fit := []float64{1.2, 2.8, 2.2, 7.5, 2.1, 1.1, 1.4, 1.9}
	return New("test panel").
		Add(Series{Name: "observed", Data: obs, Points: true}).
		Add(Series{Name: "fitted", Data: fit}).
		Mark(Marker{Tick: 3, Label: "event"})
}

func TestRenderWellFormed(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleChart().Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"<svg", "</svg>", "polyline", "circle", "test panel", "event",
		`stroke-dasharray`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in SVG output", want)
		}
	}
	if strings.Count(out, "<svg") != 1 || strings.Count(out, "</svg>") != 1 {
		t.Fatal("malformed document structure")
	}
	if strings.Contains(out, "NaN") {
		t.Fatal("NaN leaked into SVG coordinates")
	}
}

func TestRenderNaNBreaksPolyline(t *testing.T) {
	data := []float64{1, 2, math.NaN(), 3, 4}
	var buf bytes.Buffer
	if err := New("gap").Add(Series{Name: "s", Data: data}).Render(&buf); err != nil {
		t.Fatal(err)
	}
	// A gap should split the line into two polylines.
	if got := strings.Count(buf.String(), "<polyline"); got != 2 {
		t.Fatalf("polyline segments = %d, want 2", got)
	}
}

func TestRenderEmptyFails(t *testing.T) {
	if err := New("empty").Render(&bytes.Buffer{}); err == nil {
		t.Fatal("empty chart rendered")
	}
	nanOnly := New("nan").Add(Series{Name: "s", Data: []float64{math.NaN()}})
	if err := nanOnly.Render(&bytes.Buffer{}); err == nil {
		t.Fatal("all-NaN chart rendered")
	}
}

func TestRenderEscapesXML(t *testing.T) {
	var buf bytes.Buffer
	c := New(`a<b>&"c"`).Add(Series{Name: "x<y", Data: []float64{1, 2}})
	if err := c.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Contains(out, "a<b>") {
		t.Fatal("title not escaped")
	}
	if !strings.Contains(out, "a&lt;b&gt;&amp;&quot;c&quot;") {
		t.Fatalf("escape output wrong: %s", out[:200])
	}
}

func TestSaveWritesFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "chart.svg")
	if err := sampleChart().Save(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "<svg") {
		t.Fatal("file does not start with <svg")
	}
}

func TestDefaultColorsAssigned(t *testing.T) {
	c := New("colors")
	for i := 0; i < 7; i++ {
		c.Add(Series{Name: "s", Data: []float64{1, 2}})
	}
	for i, s := range c.series {
		if s.Color == "" {
			t.Fatalf("series %d has no color", i)
		}
	}
	// Palette cycles.
	if c.series[0].Color != c.series[5].Color {
		t.Fatal("palette did not cycle")
	}
}

func TestMarkerOutOfRangeIgnored(t *testing.T) {
	var buf bytes.Buffer
	c := New("m").Add(Series{Name: "s", Data: []float64{1, 2, 3}}).
		Mark(Marker{Tick: 99, Label: "ghost"})
	if err := c.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "ghost") {
		t.Fatal("out-of-range marker rendered")
	}
}

func TestMinimumCanvas(t *testing.T) {
	c := New("tiny").Add(Series{Name: "s", Data: []float64{1, 2}})
	c.W, c.H = 10, 10
	var buf bytes.Buffer
	if err := c.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if c.W < 200 || c.H < 120 {
		t.Fatal("minimum canvas not enforced")
	}
}
