// Package svgplot renders time-series panels as standalone SVG documents —
// the publication-shaped counterpart of internal/plot's terminal charts.
// Output is deterministic, dependency-free XML: observed points as circles,
// fitted/forecast curves as polylines, optional event markers, axes with
// tick labels.
package svgplot

import (
	"fmt"
	"io"
	"math"
	"os"
	"strings"
)

// Series is one plotted series.
type Series struct {
	Name   string
	Data   []float64 // NaN entries are skipped
	Color  string    // CSS color; defaults assigned per index
	Points bool      // true: draw circles (observations); false: polyline
}

// Marker is a labelled vertical marker (e.g., a detected event).
type Marker struct {
	Tick  int
	Label string
	Color string
}

// Chart is an SVG chart under construction.
type Chart struct {
	Title   string
	XLabel  string
	YLabel  string
	W, H    int // canvas size in px (defaults 860×320)
	series  []Series
	markers []Marker
}

// defaultPalette cycles when a series has no explicit color.
var defaultPalette = []string{"#444444", "#c0392b", "#2471a3", "#1e8449", "#9a7d0a"}

// New returns an empty chart with the given title.
func New(title string) *Chart {
	return &Chart{Title: title, W: 860, H: 320, XLabel: "tick", YLabel: "count"}
}

// Add appends a series.
func (c *Chart) Add(s Series) *Chart {
	if s.Color == "" {
		s.Color = defaultPalette[len(c.series)%len(defaultPalette)]
	}
	c.series = append(c.series, s)
	return c
}

// Mark appends a vertical event marker.
func (c *Chart) Mark(m Marker) *Chart {
	if m.Color == "" {
		m.Color = "#7d3c98"
	}
	c.markers = append(c.markers, m)
	return c
}

// bounds computes the data extents.
func (c *Chart) bounds() (n int, lo, hi float64, ok bool) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, s := range c.series {
		if len(s.Data) > n {
			n = len(s.Data)
		}
		for _, v := range s.Data {
			if math.IsNaN(v) {
				continue
			}
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	if n == 0 || math.IsInf(lo, 1) {
		return 0, 0, 0, false
	}
	if hi == lo {
		hi = lo + 1
	}
	return n, lo, hi, true
}

const (
	padLeft   = 56
	padRight  = 16
	padTop    = 30
	padBottom = 42
)

// Render writes the SVG document.
func (c *Chart) Render(w io.Writer) error {
	n, lo, hi, ok := c.bounds()
	if !ok {
		return fmt.Errorf("svgplot: no data to render")
	}
	if c.W < 200 {
		c.W = 200
	}
	if c.H < 120 {
		c.H = 120
	}
	plotW := float64(c.W - padLeft - padRight)
	plotH := float64(c.H - padTop - padBottom)
	xOf := func(t int) float64 {
		if n <= 1 {
			return padLeft
		}
		return padLeft + plotW*float64(t)/float64(n-1)
	}
	yOf := func(v float64) float64 {
		return padTop + plotH*(1-(v-lo)/(hi-lo))
	}

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		c.W, c.H, c.W, c.H)
	b.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")
	fmt.Fprintf(&b, `<text x="%d" y="18" font-family="sans-serif" font-size="14" font-weight="bold">%s</text>`+"\n",
		padLeft, xmlEscape(c.Title))

	// Axes.
	fmt.Fprintf(&b, `<line x1="%d" y1="%g" x2="%d" y2="%g" stroke="#888"/>`+"\n",
		padLeft, padTop+plotH, c.W-padRight, padTop+plotH)
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%g" stroke="#888"/>`+"\n",
		padLeft, padTop, padLeft, padTop+plotH)
	// Y tick labels (lo, mid, hi) and X (0, n/2, n-1).
	for _, v := range []float64{lo, (lo + hi) / 2, hi} {
		fmt.Fprintf(&b, `<text x="%d" y="%g" font-family="sans-serif" font-size="10" text-anchor="end" fill="#555">%.4g</text>`+"\n",
			padLeft-6, yOf(v)+3, v)
		fmt.Fprintf(&b, `<line x1="%d" y1="%g" x2="%d" y2="%g" stroke="#ddd"/>`+"\n",
			padLeft, yOf(v), c.W-padRight, yOf(v))
	}
	for _, t := range []int{0, (n - 1) / 2, n - 1} {
		fmt.Fprintf(&b, `<text x="%g" y="%g" font-family="sans-serif" font-size="10" text-anchor="middle" fill="#555">%d</text>`+"\n",
			xOf(t), padTop+plotH+14, t)
	}
	fmt.Fprintf(&b, `<text x="%g" y="%d" font-family="sans-serif" font-size="11" text-anchor="middle" fill="#333">%s</text>`+"\n",
		padLeft+plotW/2, c.H-8, xmlEscape(c.XLabel))

	// Markers under the data.
	for _, m := range c.markers {
		if m.Tick < 0 || m.Tick >= n {
			continue
		}
		x := xOf(m.Tick)
		fmt.Fprintf(&b, `<line x1="%g" y1="%d" x2="%g" y2="%g" stroke="%s" stroke-dasharray="4 3"/>`+"\n",
			x, padTop, x, padTop+plotH, m.Color)
		if m.Label != "" {
			fmt.Fprintf(&b, `<text x="%g" y="%d" font-family="sans-serif" font-size="9" fill="%s" text-anchor="middle">%s</text>`+"\n",
				x, padTop-4, m.Color, xmlEscape(m.Label))
		}
	}

	// Series.
	for _, s := range c.series {
		if s.Points {
			for t, v := range s.Data {
				if math.IsNaN(v) {
					continue
				}
				fmt.Fprintf(&b, `<circle cx="%g" cy="%g" r="1.6" fill="%s" fill-opacity="0.55"/>`+"\n",
					xOf(t), yOf(v), s.Color)
			}
			continue
		}
		var pts []string
		flush := func() {
			if len(pts) > 1 {
				fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="1.6"/>`+"\n",
					strings.Join(pts, " "), s.Color)
			}
			pts = pts[:0]
		}
		for t, v := range s.Data {
			if math.IsNaN(v) {
				flush()
				continue
			}
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", xOf(t), yOf(v)))
		}
		flush()
	}

	// Legend.
	lx := float64(padLeft + 8)
	for _, s := range c.series {
		fmt.Fprintf(&b, `<rect x="%g" y="%d" width="10" height="10" fill="%s"/>`+"\n",
			lx, padTop+2, s.Color)
		fmt.Fprintf(&b, `<text x="%g" y="%d" font-family="sans-serif" font-size="11" fill="#333">%s</text>`+"\n",
			lx+14, padTop+11, xmlEscape(s.Name))
		lx += 18 + 7*float64(len(s.Name))
	}

	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// Save renders to a file.
func (c *Chart) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := c.Render(f); err != nil {
		return err
	}
	return f.Close()
}

func xmlEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
