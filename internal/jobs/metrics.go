package jobs

import (
	"time"

	"dspot/internal/obs"
)

// Metrics exports the engine's load profile: queue depth, busy workers,
// outcomes by kind and state, retries, rejections, and per-kind run
// latency. All methods are nil-safe.
type Metrics struct {
	depth    *obs.Gauge        // jobs_queue_depth
	busy     *obs.Gauge        // jobs_workers_busy
	outcomes *obs.CounterVec   // jobs_finished_total{kind,state}
	retries  *obs.Counter      // jobs_retries_total
	rejects  *obs.Counter      // jobs_rejected_total
	abandons *obs.Counter      // jobs_abandoned_total
	latency  *obs.HistogramVec // jobs_run_seconds{kind}
	wait     *obs.Histogram    // jobs_queue_wait_seconds
}

// NewMetricsOn registers the engine metrics on reg.
func NewMetricsOn(reg *obs.Registry) *Metrics {
	return &Metrics{
		depth: reg.Gauge("jobs_queue_depth",
			"Jobs waiting in the queue."),
		busy: reg.Gauge("jobs_workers_busy",
			"Workers currently running a job."),
		outcomes: reg.CounterVec("jobs_finished_total",
			"Jobs finished, by kind and terminal state.", "kind", "state"),
		retries: reg.Counter("jobs_retries_total",
			"Retries after transient failures."),
		rejects: reg.Counter("jobs_rejected_total",
			"Submissions rejected because the queue was full."),
		abandons: reg.Counter("jobs_abandoned_total",
			"Invocations abandoned because the Func ignored its context "+
				"past the grace window. Cooperative fits never count here."),
		latency: reg.HistogramVec("jobs_run_seconds",
			"Job run latency in seconds (excludes queue wait), by kind.",
			obs.DefBuckets(), "kind"),
		wait: reg.Histogram("jobs_queue_wait_seconds",
			"Time jobs spent queued before a worker picked them up.",
			obs.DefBuckets()),
	}
}

func (m *Metrics) queueDepth(n int) {
	if m == nil {
		return
	}
	m.depth.Set(float64(n))
}

func (m *Metrics) workerBusy(delta int) {
	if m == nil {
		return
	}
	m.busy.Add(float64(delta))
}

func (m *Metrics) finished(kind string, state State, latency time.Duration) {
	if m == nil {
		return
	}
	m.outcomes.With(kind, string(state)).Inc()
	if latency > 0 {
		m.latency.With(kind).Observe(latency.Seconds())
	}
}

func (m *Metrics) queueWaited(d time.Duration) {
	if m == nil {
		return
	}
	m.wait.Observe(d.Seconds())
}

func (m *Metrics) retry() {
	if m == nil {
		return
	}
	m.retries.Inc()
}

func (m *Metrics) rejected() {
	if m == nil {
		return
	}
	m.rejects.Inc()
}

func (m *Metrics) abandoned() {
	if m == nil {
		return
	}
	m.abandons.Inc()
}
