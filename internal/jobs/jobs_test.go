package jobs

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"dspot/internal/obs"
)

// waitState polls until the job reaches a terminal state or the deadline.
func waitState(t *testing.T, e *Engine, id string) Snapshot {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		snap, err := e.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if snap.State.Terminal() {
			return snap
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never reached a terminal state", id)
	return Snapshot{}
}

func TestJobLifecycleDone(t *testing.T) {
	e := New(Options{Workers: 1})
	defer e.Close()
	id, err := e.Submit("test", func(ctx context.Context) (any, error) {
		return map[string]int{"answer": 42}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	snap := waitState(t, e, id)
	if snap.State != StateDone || snap.Error != "" || snap.Attempts != 1 {
		t.Fatalf("snapshot = %+v", snap)
	}
	if m, ok := snap.Result.(map[string]int); !ok || m["answer"] != 42 {
		t.Fatalf("result = %#v", snap.Result)
	}
	if snap.StartedUnix == 0 || snap.FinishedUnix == 0 {
		t.Fatalf("timestamps missing: %+v", snap)
	}
}

func TestJobFailure(t *testing.T) {
	e := New(Options{Workers: 1})
	defer e.Close()
	id, _ := e.Submit("test", func(ctx context.Context) (any, error) {
		return nil, errors.New("boom")
	})
	snap := waitState(t, e, id)
	if snap.State != StateFailed || snap.Error != "boom" || snap.Attempts != 1 {
		t.Fatalf("snapshot = %+v", snap)
	}
}

func TestTransientRetrySucceeds(t *testing.T) {
	e := New(Options{Workers: 1, Metrics: NewMetricsOn(obs.NewRegistry())})
	defer e.Close()
	var mu sync.Mutex
	calls := 0
	id, _ := e.Submit("test", func(ctx context.Context) (any, error) {
		mu.Lock()
		defer mu.Unlock()
		calls++
		if calls == 1 {
			return nil, Transient(errors.New("flaky disk"))
		}
		return "ok", nil
	})
	snap := waitState(t, e, id)
	if snap.State != StateDone || snap.Attempts != 2 {
		t.Fatalf("snapshot = %+v", snap)
	}
}

func TestTransientRetryOnlyOnce(t *testing.T) {
	e := New(Options{Workers: 1})
	defer e.Close()
	id, _ := e.Submit("test", func(ctx context.Context) (any, error) {
		return nil, Transient(errors.New("always flaky"))
	})
	snap := waitState(t, e, id)
	if snap.State != StateFailed || snap.Attempts != 2 {
		t.Fatalf("snapshot = %+v (want failed after exactly one retry)", snap)
	}
	if !strings.Contains(snap.Error, "always flaky") {
		t.Fatalf("error = %q", snap.Error)
	}
}

func TestPermanentErrorNotRetried(t *testing.T) {
	e := New(Options{Workers: 1})
	defer e.Close()
	id, _ := e.Submit("test", func(ctx context.Context) (any, error) {
		return nil, errors.New("bad input")
	})
	if snap := waitState(t, e, id); snap.Attempts != 1 {
		t.Fatalf("permanent failure retried: %+v", snap)
	}
}

func TestQueueFull(t *testing.T) {
	block := make(chan struct{})
	e := New(Options{Workers: 1, QueueDepth: 1})
	defer func() { close(block); e.Close() }()
	wait := func(ctx context.Context) (any, error) {
		select {
		case <-block:
		case <-ctx.Done():
		}
		return nil, nil
	}
	if _, err := e.Submit("w", wait); err != nil { // occupies the worker
		t.Fatal(err)
	}
	// The worker may not have dequeued yet; fill until full.
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, err := e.Submit("w", wait)
		if errors.Is(err, ErrQueueFull) {
			return
		}
		if err != nil {
			t.Fatal(err)
		}
		if time.Now().After(deadline) {
			t.Fatal("queue never filled")
		}
	}
}

func TestCancelQueuedJob(t *testing.T) {
	block := make(chan struct{})
	e := New(Options{Workers: 1, QueueDepth: 4})
	defer func() { close(block); e.Close() }()
	if _, err := e.Submit("blocker", func(ctx context.Context) (any, error) {
		select {
		case <-block:
		case <-ctx.Done():
		}
		return nil, nil
	}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond) // let the blocker start
	id, err := e.Submit("victim", func(ctx context.Context) (any, error) {
		t.Error("cancelled queued job ran anyway")
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	snap, err := e.Cancel(id)
	if err != nil {
		t.Fatal(err)
	}
	if snap.State != StateCancelled {
		t.Fatalf("queued cancel state = %s", snap.State)
	}
	if _, err := e.Cancel(id); !errors.Is(err, ErrTerminal) {
		t.Fatalf("cancel of terminal job = %v", err)
	}
}

func TestCancelRunningJob(t *testing.T) {
	started := make(chan struct{})
	e := New(Options{Workers: 1})
	defer e.Close()
	id, _ := e.Submit("test", func(ctx context.Context) (any, error) {
		close(started)
		<-ctx.Done() // cooperative: return when cancelled
		return nil, ctx.Err()
	})
	<-started
	if _, err := e.Cancel(id); err != nil {
		t.Fatal(err)
	}
	snap := waitState(t, e, id)
	if snap.State != StateCancelled {
		t.Fatalf("state = %s, want cancelled", snap.State)
	}
}

func TestCancelAbandonsUncooperativeJob(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	// Short grace: the Func below never checks ctx, so waiting the default
	// two seconds would only slow the test down.
	e := New(Options{Workers: 1, AbandonGrace: 20 * time.Millisecond,
		Metrics: NewMetricsOn(obs.NewRegistry())})
	defer e.Close()
	id, _ := e.Submit("stubborn", func(ctx context.Context) (any, error) {
		close(started)
		<-release // ignores ctx entirely
		return "too late", nil
	})
	<-started
	if _, err := e.Cancel(id); err != nil {
		t.Fatal(err)
	}
	snap := waitState(t, e, id) // worker must not stay stuck on the Func
	if snap.State != StateCancelled || snap.Result != nil {
		t.Fatalf("snapshot = %+v", snap)
	}
	if got := e.opts.Metrics.abandons.Value(); got != 1 {
		t.Fatalf("jobs_abandoned_total = %g, want 1", got)
	}
	// The freed worker picks up new jobs while the stubborn Func lingers.
	id2, err := e.Submit("next", func(ctx context.Context) (any, error) { return 1, nil })
	if err != nil {
		t.Fatal(err)
	}
	if snap := waitState(t, e, id2); snap.State != StateDone {
		t.Fatalf("follow-up job state = %s", snap.State)
	}
	close(release)
}

func TestCooperativeCancelIsNotAbandoned(t *testing.T) {
	started := make(chan struct{})
	e := New(Options{Workers: 1, Metrics: NewMetricsOn(obs.NewRegistry())})
	defer e.Close()
	id, _ := e.Submit("coop", func(ctx context.Context) (any, error) {
		close(started)
		<-ctx.Done()
		// A real fit needs a moment between the ctx firing and the return
		// (it finishes the current LM iteration); the grace window must
		// absorb that without abandoning the invocation.
		time.Sleep(30 * time.Millisecond)
		return nil, fmt.Errorf("fit stopped: %w", ctx.Err())
	})
	<-started
	if _, err := e.Cancel(id); err != nil {
		t.Fatal(err)
	}
	snap := waitState(t, e, id)
	if snap.State != StateCancelled {
		t.Fatalf("state = %s, want cancelled", snap.State)
	}
	if got := e.opts.Metrics.abandons.Value(); got != 0 {
		t.Fatalf("jobs_abandoned_total = %g for a cooperative cancel, want 0", got)
	}
}

func TestAbandonGraceNegativeSkipsWait(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	defer close(release)
	e := New(Options{Workers: 1, AbandonGrace: -1,
		Metrics: NewMetricsOn(obs.NewRegistry())})
	defer e.Close()
	id, _ := e.Submit("stubborn", func(ctx context.Context) (any, error) {
		close(started)
		<-release
		return nil, nil
	})
	<-started
	cancelAt := time.Now()
	if _, err := e.Cancel(id); err != nil {
		t.Fatal(err)
	}
	snap := waitState(t, e, id)
	if snap.State != StateCancelled {
		t.Fatalf("state = %s, want cancelled", snap.State)
	}
	if waited := time.Since(cancelAt); waited > 5*time.Second {
		t.Fatalf("immediate abandon took %v", waited)
	}
	if got := e.opts.Metrics.abandons.Value(); got != 1 {
		t.Fatalf("jobs_abandoned_total = %g, want 1", got)
	}
}

func TestJobTimeout(t *testing.T) {
	e := New(Options{Workers: 1, Timeout: 20 * time.Millisecond})
	defer e.Close()
	id, _ := e.Submit("slow", func(ctx context.Context) (any, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	})
	snap := waitState(t, e, id)
	if snap.State != StateFailed || snap.Error != "timeout" {
		t.Fatalf("snapshot = %+v, want failed/timeout", snap)
	}
}

func TestPanicIsFailure(t *testing.T) {
	e := New(Options{Workers: 1})
	defer e.Close()
	id, _ := e.Submit("test", func(ctx context.Context) (any, error) {
		panic("kaboom")
	})
	snap := waitState(t, e, id)
	if snap.State != StateFailed || !strings.Contains(snap.Error, "kaboom") {
		t.Fatalf("snapshot = %+v", snap)
	}
}

func TestHistoryEviction(t *testing.T) {
	e := New(Options{Workers: 2, MaxHistory: 3, QueueDepth: 32})
	defer e.Close()
	var ids []string
	for i := 0; i < 8; i++ {
		id, err := e.Submit("test", func(ctx context.Context) (any, error) { return nil, nil })
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
		waitState(t, e, id)
	}
	if got := len(e.List()); got != 3 {
		t.Fatalf("retained %d jobs, want 3", got)
	}
	if _, err := e.Get(ids[0]); !errors.Is(err, ErrNotFound) {
		t.Fatalf("oldest job not evicted: %v", err)
	}
	if _, err := e.Get(ids[len(ids)-1]); err != nil {
		t.Fatalf("newest job evicted: %v", err)
	}
}

func TestSubmitAfterClose(t *testing.T) {
	e := New(Options{Workers: 1})
	e.Close()
	if _, err := e.Submit("test", func(ctx context.Context) (any, error) { return nil, nil }); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after close = %v", err)
	}
}

func TestCloseCancelsQueuedAndRunning(t *testing.T) {
	e := New(Options{Workers: 1, QueueDepth: 8})
	running := make(chan struct{})
	idRun, _ := e.Submit("run", func(ctx context.Context) (any, error) {
		close(running)
		<-ctx.Done()
		return nil, ctx.Err()
	})
	<-running
	idQueued, _ := e.Submit("queued", func(ctx context.Context) (any, error) { return nil, nil })
	e.Close()
	for _, id := range []string{idRun, idQueued} {
		snap, err := e.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if snap.State != StateCancelled {
			t.Fatalf("job %s state after Close = %s", snap.Kind, snap.State)
		}
	}
}

func TestConcurrentSubmitCancelGet(t *testing.T) {
	e := New(Options{Workers: 4, QueueDepth: 64, Metrics: NewMetricsOn(obs.NewRegistry())})
	defer e.Close()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				id, err := e.Submit(fmt.Sprintf("w%d", w), func(ctx context.Context) (any, error) {
					select {
					case <-time.After(time.Millisecond):
					case <-ctx.Done():
					}
					return i, nil
				})
				if errors.Is(err, ErrQueueFull) {
					continue
				}
				if err != nil {
					t.Errorf("submit: %v", err)
					return
				}
				if i%3 == 0 {
					_, _ = e.Cancel(id)
				}
				_, _ = e.Get(id)
				e.List()
			}
		}(w)
	}
	wg.Wait()
}

// TestAdmissionOverBudget pins deadline-aware admission: once the runtime
// EWMA is seeded and the single worker is pinned, a queued job ahead makes
// the estimated wait exceed a tight budget and the submission bounces with
// OverBudgetError — without consuming a queue slot.
func TestAdmissionOverBudget(t *testing.T) {
	e := New(Options{Workers: 1, QueueDepth: 4, AdmitBudget: time.Millisecond})
	defer e.Close()

	// Seed the runtime estimate with one measurably slow job.
	id, err := e.Submit("seed", func(ctx context.Context) (any, error) {
		time.Sleep(50 * time.Millisecond)
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, e, id)
	if e.EstimatedWait() != 0 {
		t.Fatalf("empty queue must estimate zero wait, got %v", e.EstimatedWait())
	}

	// Pin the worker and put one job in the queue.
	block := make(chan struct{})
	defer close(block)
	blocker := func(ctx context.Context) (any, error) {
		select {
		case <-block:
		case <-ctx.Done():
		}
		return nil, nil
	}
	if _, err := e.Submit("blocker", blocker); err != nil {
		t.Fatal(err)
	}
	for e.QueueLen() != 0 { // wait until the worker holds it
		time.Sleep(time.Millisecond)
	}
	if _, err := e.Submit("queued", blocker); err != nil {
		t.Fatal(err)
	}

	_, err = e.Submit("rejected", blocker)
	var ob *OverBudgetError
	if !errors.As(err, &ob) {
		t.Fatalf("err = %v, want OverBudgetError", err)
	}
	if ob.Budget != time.Millisecond || ob.Estimate < 10*time.Millisecond {
		t.Fatalf("OverBudgetError = %+v", ob)
	}
	if e.QueueLen() != 1 {
		t.Fatalf("rejected submission consumed a queue slot: depth %d", e.QueueLen())
	}

	// An expired context deadline gates admission even without AdmitBudget.
	e2 := New(Options{Workers: 1, QueueDepth: 4})
	defer e2.Close()
	sid, err := e2.Submit("seed", func(ctx context.Context) (any, error) {
		time.Sleep(20 * time.Millisecond)
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, e2, sid)
	if _, err := e2.Submit("blocker", blocker); err != nil {
		t.Fatal(err)
	}
	for e2.QueueLen() != 0 {
		time.Sleep(time.Millisecond)
	}
	if _, err := e2.Submit("queued", blocker); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(time.Millisecond))
	defer cancel()
	if _, err := e2.SubmitCtx(ctx, "rejected", blocker); !errors.As(err, &ob) {
		t.Fatalf("deadline-only submission: err = %v, want OverBudgetError", err)
	}
}

// TestQueueIntrospection covers the accessors the service layer's shed
// responses are built from.
func TestQueueIntrospection(t *testing.T) {
	e := New(Options{Workers: 3, QueueDepth: 7})
	defer e.Close()
	if e.QueueCap() != 7 || e.WorkerCount() != 3 || e.QueueLen() != 0 {
		t.Fatalf("cap=%d workers=%d len=%d", e.QueueCap(), e.WorkerCount(), e.QueueLen())
	}
}
