// Package jobs is the asynchronous execution engine behind the service's
// fit endpoints: fits take minutes at scale, so requests enqueue work and
// poll instead of holding a connection open for the whole fit.
//
// The engine is deliberately generic — it runs any Func — with a bounded
// queue (backpressure surfaces as ErrQueueFull, not unbounded memory),
// deadline-aware admission (a submission whose estimated queue wait cannot
// meet its deadline bounces with OverBudgetError instead of queueing dead
// work), a fixed worker pool, a per-job timeout, cooperative cancellation,
// and one retry for failures marked Transient. A job moves through
//
//	queued → running → done | failed | cancelled
//
// and its terminal snapshot (including the Func's result) stays queryable
// until evicted by the history bound. Cancelling a queued job is immediate.
// Cancelling a running job cancels its context and expects the Func to
// return cooperatively — the core fitters observe their context inside
// every optimisation loop, so a cancelled fit stops computing within about
// one LM iteration and finishes through the normal path as cancelled.
// Abandonment is only a backstop for truly uncooperative Funcs: if the Func
// still has not returned AbandonGrace after its context ended, the worker
// abandons the invocation (the goroutine keeps running until it notices,
// its outcome discarded) and moves on.
package jobs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"sync"
	"time"

	"dspot/internal/admit"
	"dspot/internal/obs/trace"
)

// State is a job lifecycle state.
type State string

// The five job states. The last three are terminal.
const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Func is the unit of work: it must honour ctx and return either a result
// (stored on the job, JSON-encodable for the HTTP layer) or an error.
type Func func(ctx context.Context) (any, error)

// Engine errors recognised by callers.
var (
	ErrQueueFull = errors.New("jobs: queue full")
	ErrClosed    = errors.New("jobs: engine closed")
	ErrNotFound  = errors.New("jobs: not found")
	ErrTerminal  = errors.New("jobs: job already finished")
)

// OverBudgetError rejects a submission whose estimated queue wait exceeds
// the admission budget: the job would be dead on arrival — queued past its
// caller's deadline, cancelled before a worker picks it up — so the engine
// refuses it up front instead of wasting a queue slot on it. Callers match
// it with errors.As and surface Estimate as a Retry-After hint.
type OverBudgetError struct {
	// Estimate is the predicted queue wait at submission time.
	Estimate time.Duration
	// Budget is the admission budget the estimate exceeded (the configured
	// AdmitBudget, tightened by the submitting context's deadline).
	Budget time.Duration
}

func (e *OverBudgetError) Error() string {
	return fmt.Sprintf("jobs: estimated queue wait %v exceeds admission budget %v",
		e.Estimate.Round(time.Millisecond), e.Budget.Round(time.Millisecond))
}

// transientError marks an error as retryable.
type transientError struct{ err error }

func (t *transientError) Error() string { return t.err.Error() }
func (t *transientError) Unwrap() error { return t.err }

// Transient wraps err so the engine retries the job once (nil stays nil).
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return &transientError{err}
}

// IsTransient reports whether err is marked retryable.
func IsTransient(err error) bool {
	var t *transientError
	return errors.As(err, &t)
}

// Defaults applied by New when the corresponding Options field is zero.
const (
	DefaultWorkers         = 2
	DefaultQueueDepth      = 16
	DefaultTimeout         = 15 * time.Minute
	DefaultMaxHistory      = 256
	DefaultAbandonGrace    = 2 * time.Second
	DefaultSaturationGrace = 5 * time.Second
)

// Options configures New.
type Options struct {
	// Workers is the fixed worker-pool size (default DefaultWorkers).
	Workers int
	// QueueDepth bounds queued-but-not-running jobs (default
	// DefaultQueueDepth); Submit fails fast with ErrQueueFull beyond it.
	QueueDepth int
	// Timeout bounds each running job (default DefaultTimeout; it does not
	// count queue wait). Negative disables the timeout.
	Timeout time.Duration
	// MaxHistory bounds retained terminal jobs (default DefaultMaxHistory);
	// the oldest finished snapshots are evicted first.
	MaxHistory int
	// AbandonGrace is how long a worker waits, after a job's context ends,
	// for the Func to return cooperatively before abandoning the invocation
	// (default DefaultAbandonGrace; negative abandons immediately). A
	// cooperative Func that returns inside the grace window finishes
	// through the normal path — cancelled or timed out, never abandoned —
	// and frees no lingering goroutine.
	AbandonGrace time.Duration
	// SaturationGrace is how long the queue must stay continuously full
	// before Saturated reports it (default DefaultSaturationGrace; negative
	// reports instantaneously). Submissions still bounce with ErrQueueFull
	// the moment the queue is full — the grace only keeps a momentary burst
	// from failing the whole instance's readiness probe and flapping it out
	// of load-balancer rotation.
	SaturationGrace time.Duration
	// AdmitBudget, when positive, enables deadline-aware admission: a
	// submission whose EstimatedWait exceeds the budget (or the submitting
	// context's remaining deadline, whichever is tighter) is rejected with
	// an OverBudgetError before it consumes a queue slot. Zero disables the
	// check; a context deadline alone still enforces admission when set.
	AdmitBudget time.Duration
	// Logger, when non-nil, reports job transitions and abandoned Funcs.
	Logger *slog.Logger
	// Metrics, when non-nil, exports queue depth, busy workers, outcomes
	// and latencies.
	Metrics *Metrics
	// Tracer, when non-nil, records two spans per job — queue wait
	// (enqueue → worker pickup) and run (pickup → terminal) — as children
	// of the span active in the SubmitCtx context, so an async fit's trace
	// continues past the HTTP 202 that accepted it.
	Tracer *trace.Tracer
}

// Snapshot is the queryable state of a job at one instant.
type Snapshot struct {
	ID           string `json:"id"`
	Kind         string `json:"kind"`
	State        State  `json:"state"`
	Error        string `json:"error,omitempty"`
	Attempts     int    `json:"attempts"`
	CreatedUnix  int64  `json:"created_unix"`
	StartedUnix  int64  `json:"started_unix,omitempty"`
	FinishedUnix int64  `json:"finished_unix,omitempty"`
	Result       any    `json:"result,omitempty"`
}

// job is the engine-internal record.
type job struct {
	id   string
	kind string
	fn   Func

	cancel context.CancelFunc // cancels jctx: explicit cancel or shutdown
	jctx   context.Context

	// Trace correlation, fixed at submit time: the submitter's span
	// context (the job spans' parent), the queue-wait span opened at
	// enqueue, and the trace id every lifecycle log line carries.
	parent   trace.SpanContext
	waitSpan *trace.Span
	traceID  string

	// Mutable fields below are guarded by the engine mutex.
	state     State
	err       string
	attempts  int
	created   time.Time
	started   time.Time
	finished  time.Time
	result    any
	cancelReq bool
}

// Engine runs jobs on a fixed worker pool over a bounded queue.
type Engine struct {
	opts  Options
	root  context.Context
	stop  context.CancelFunc
	queue chan *job
	wg    sync.WaitGroup

	// runtime tracks the EWMA of completed-job run latencies; EstimatedWait
	// scales it by the queue depth for admission decisions.
	runtime *admit.EWMA

	mu       sync.Mutex
	jobs     map[string]*job
	terminal []string // terminal job ids, oldest first, for history eviction
	satSince time.Time // when the queue last became full; zero = not full
	closed   bool
}

// New starts an engine with opts' worker pool. Call Close to drain it.
func New(opts Options) *Engine {
	if opts.Workers <= 0 {
		opts.Workers = DefaultWorkers
	}
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = DefaultQueueDepth
	}
	if opts.Timeout == 0 {
		opts.Timeout = DefaultTimeout
	}
	if opts.MaxHistory <= 0 {
		opts.MaxHistory = DefaultMaxHistory
	}
	if opts.AbandonGrace == 0 {
		opts.AbandonGrace = DefaultAbandonGrace
	}
	if opts.SaturationGrace == 0 {
		opts.SaturationGrace = DefaultSaturationGrace
	}
	root, stop := context.WithCancel(context.Background())
	e := &Engine{
		opts:    opts,
		root:    root,
		stop:    stop,
		queue:   make(chan *job, opts.QueueDepth),
		jobs:    make(map[string]*job),
		runtime: admit.NewEWMA(0),
	}
	for i := 0; i < opts.Workers; i++ {
		e.wg.Add(1)
		go e.worker()
	}
	return e
}

func (e *Engine) logger() *slog.Logger {
	if e.opts.Logger != nil {
		return e.opts.Logger
	}
	return nopLogger
}

var nopLogger = slog.New(slog.NewTextHandler(io.Discard, &slog.HandlerOptions{
	Level: slog.Level(127),
}))

// newID returns a random 16-hex-character job id.
func newID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("jobs: randomness unavailable: %v", err))
	}
	return hex.EncodeToString(b[:])
}

// Submit enqueues fn under a fresh id. kind labels the job in snapshots and
// metrics. It fails fast with ErrQueueFull when the queue is at depth.
func (e *Engine) Submit(kind string, fn Func) (string, error) {
	return e.SubmitCtx(context.Background(), kind, fn)
}

// SubmitCtx is Submit carrying trace identity and an admission deadline:
// the span active in ctx (or a remote span context extracted from an
// inbound traceparent) becomes the parent of the job's queue-wait and run
// spans, and its trace id rides on every lifecycle log line. ctx's deadline
// (when set, or Options.AdmitBudget) also gates admission — a submission
// whose estimated queue wait already exceeds it is rejected with an
// OverBudgetError instead of queueing a job that would be cancelled before
// a worker reaches it. The job's lifetime is still bound to the engine,
// never to the (typically short-lived) submitting request.
func (e *Engine) SubmitCtx(ctx context.Context, kind string, fn Func) (string, error) {
	jctx, cancel := context.WithCancel(e.root)
	j := &job{
		id: newID(), kind: kind, fn: fn,
		jctx: jctx, cancel: cancel,
		state: StateQueued, created: time.Now(),
		parent: trace.SpanContextOf(ctx),
	}
	j.waitSpan = e.opts.Tracer.StartChild(j.parent, "job.wait",
		trace.String("job_id", j.id), trace.String("kind", kind))
	if sc := j.waitSpan.Context(); sc.Valid() {
		j.traceID = sc.TraceID.String()
	}
	if budget, gated := e.admitBudget(ctx); gated {
		if est := e.EstimatedWait(); est > budget {
			cancel()
			e.opts.Metrics.rejected()
			j.waitSpan.SetAttr("outcome", "rejected_over_budget")
			j.waitSpan.End()
			return "", &OverBudgetError{Estimate: est, Budget: budget}
		}
	}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		cancel()
		j.waitSpan.SetAttr("outcome", "rejected_closed")
		j.waitSpan.End()
		return "", ErrClosed
	}
	select {
	case e.queue <- j:
	default:
		e.mu.Unlock()
		cancel()
		e.opts.Metrics.rejected()
		j.waitSpan.SetAttr("outcome", "rejected_queue_full")
		j.waitSpan.End()
		return "", fmt.Errorf("%w (depth %d)", ErrQueueFull, cap(e.queue))
	}
	e.jobs[j.id] = j
	if len(e.queue) == cap(e.queue) {
		if e.satSince.IsZero() {
			e.satSince = time.Now()
		}
	} else {
		e.satSince = time.Time{}
	}
	e.mu.Unlock()
	e.opts.Metrics.queueDepth(len(e.queue))
	e.logger().Debug("job queued", j.logArgs("id", j.id, "kind", kind)...)
	return j.id, nil
}

// admitBudget resolves the effective admission budget for one submission:
// the configured AdmitBudget, tightened by the submitting context's
// remaining deadline when it has one. gated=false means admission is
// unbounded (no budget, no deadline) and the estimate is not consulted.
func (e *Engine) admitBudget(ctx context.Context) (budget time.Duration, gated bool) {
	budget, gated = e.opts.AdmitBudget, e.opts.AdmitBudget > 0
	if dl, ok := ctx.Deadline(); ok {
		if rem := time.Until(dl); !gated || rem < budget {
			budget, gated = rem, true
		}
	}
	return budget, gated
}

// EstimatedWait predicts how long a job submitted now would sit in the
// queue: queued jobs ahead of it spread over the worker pool, scaled by the
// EWMA of observed run latencies. It deliberately ignores the remaining
// time of in-flight jobs (a mild underestimate) and reads zero until the
// first job completes — admission starts optimistic and only sheds once
// real latencies accumulate.
func (e *Engine) EstimatedWait() time.Duration {
	per := e.runtime.Seconds()
	if per <= 0 {
		return 0
	}
	w := e.opts.Workers
	if w < 1 {
		w = 1
	}
	wait := float64(len(e.queue)) / float64(w) * per
	return time.Duration(wait * float64(time.Second))
}

// QueueLen returns the number of queued-but-not-running jobs.
func (e *Engine) QueueLen() int { return len(e.queue) }

// QueueCap returns the configured queue depth.
func (e *Engine) QueueCap() int { return cap(e.queue) }

// WorkerCount returns the fixed worker-pool size.
func (e *Engine) WorkerCount() int { return e.opts.Workers }

// Saturated reports whether the job queue has been continuously full for at
// least Options.SaturationGrace. Readiness probes use it to steer load away
// from an instance that is genuinely backed up — the grace keeps one bursty
// batch of submissions (whose overflow already bounces with ErrQueueFull
// and a Retry-After) from flipping read-only traffic out of rotation.
func (e *Engine) Saturated() bool {
	full := len(e.queue) == cap(e.queue)
	e.mu.Lock()
	defer e.mu.Unlock()
	if !full {
		e.satSince = time.Time{}
		return false
	}
	if e.satSince.IsZero() {
		e.satSince = time.Now()
	}
	return e.opts.SaturationGrace < 0 ||
		time.Since(e.satSince) >= e.opts.SaturationGrace
}

// Get returns the job's snapshot.
func (e *Engine) Get(id string) (Snapshot, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	j, ok := e.jobs[id]
	if !ok {
		return Snapshot{}, fmt.Errorf("%w: job %q", ErrNotFound, id)
	}
	return j.snapshotLocked(), nil
}

// List returns every retained job snapshot, newest first.
func (e *Engine) List() []Snapshot {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]Snapshot, 0, len(e.jobs))
	for _, j := range e.jobs {
		out = append(out, j.snapshotLocked())
	}
	sortSnapshots(out)
	return out
}

// Cancel requests cancellation. A queued job is cancelled immediately; a
// running job has its context cancelled and finishes as cancelled once the
// worker observes it. Cancelling a terminal job returns ErrTerminal.
func (e *Engine) Cancel(id string) (Snapshot, error) {
	e.mu.Lock()
	j, ok := e.jobs[id]
	if !ok {
		e.mu.Unlock()
		return Snapshot{}, fmt.Errorf("%w: job %q", ErrNotFound, id)
	}
	if j.state.Terminal() {
		snap := j.snapshotLocked()
		e.mu.Unlock()
		return snap, ErrTerminal
	}
	j.cancelReq = true
	if j.state == StateQueued {
		e.finishLocked(j, StateCancelled, "cancelled while queued", nil)
	}
	snap := j.snapshotLocked()
	e.mu.Unlock()
	j.cancel()
	e.logger().Info("job cancel requested",
		j.logArgs("id", id, "state", snap.State)...)
	return snap, nil
}

// Close stops accepting jobs, cancels everything in flight, and waits for
// the workers to exit.
func (e *Engine) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		e.wg.Wait()
		return
	}
	e.closed = true
	e.mu.Unlock()
	e.stop() // cancels every job context derived from root
	e.wg.Wait()
	// Mark whatever never got picked up.
	e.mu.Lock()
	for {
		select {
		case j := <-e.queue:
			if !j.state.Terminal() {
				e.finishLocked(j, StateCancelled, "engine closed", nil)
			}
		default:
			e.mu.Unlock()
			return
		}
	}
}

func (e *Engine) worker() {
	defer e.wg.Done()
	for {
		select {
		case <-e.root.Done():
			return
		case j := <-e.queue:
			e.mu.Lock()
			if len(e.queue) < cap(e.queue) {
				e.satSince = time.Time{} // dequeue broke the full streak
			}
			e.mu.Unlock()
			e.run(j)
			e.opts.Metrics.queueDepth(len(e.queue))
		}
	}
}

// run executes one job: timeout context, invocation, retry-once on
// transient failure, terminal bookkeeping.
func (e *Engine) run(j *job) {
	e.mu.Lock()
	if j.state.Terminal() { // cancelled while queued
		e.mu.Unlock()
		return
	}
	j.state = StateRunning
	j.started = time.Now()
	e.mu.Unlock()
	j.waitSpan.End()
	e.opts.Metrics.queueWaited(j.started.Sub(j.created))
	runSpan := e.opts.Tracer.StartChild(j.parent, "job.run",
		trace.String("job_id", j.id), trace.String("kind", j.kind))
	e.opts.Metrics.workerBusy(+1)
	defer e.opts.Metrics.workerBusy(-1)
	e.logger().Info("job running", j.logArgs("id", j.id, "kind", j.kind)...)

	rctx := j.jctx
	if e.opts.Timeout > 0 {
		var cancel context.CancelFunc
		rctx, cancel = context.WithTimeout(j.jctx, e.opts.Timeout)
		defer cancel()
	}
	if runSpan != nil {
		// The Func sees the run span as its active span, so fit-stage
		// spans recorded from FitEvents become its children.
		rctx = trace.ContextWithSpan(rctx, runSpan)
	}

	const maxAttempts = 2 // one retry on transient failure
	for attempt := 1; ; attempt++ {
		e.mu.Lock()
		j.attempts = attempt
		e.mu.Unlock()
		result, err, abandoned := e.invoke(j, rctx)
		e.mu.Lock()
		switch {
		case abandoned || (err != nil && rctx.Err() != nil):
			// The context ended (cancel, shutdown or timeout) — classify.
			reason := "timeout"
			state := StateFailed
			if j.cancelReq || j.jctx.Err() != nil {
				reason, state = "cancelled", StateCancelled
			}
			if abandoned {
				runSpan.AddEvent("abandoned")
			}
			e.finishLocked(j, state, reason, nil)
		case err == nil:
			e.finishLocked(j, StateDone, "", result)
		case IsTransient(err) && attempt < maxAttempts:
			e.mu.Unlock()
			e.opts.Metrics.retry()
			runSpan.AddEvent("retry", trace.String("err", err.Error()))
			e.logger().Warn("job retrying after transient failure",
				j.logArgs("id", j.id, "kind", j.kind, "err", err)...)
			continue
		default:
			e.finishLocked(j, StateFailed, err.Error(), nil)
		}
		state, errMsg, attempts := j.state, j.err, j.attempts
		e.mu.Unlock()
		runSpan.SetAttr("state", string(state))
		runSpan.SetAttr("attempts", attempts)
		if errMsg != "" {
			runSpan.SetAttr("err", errMsg)
		}
		runSpan.End()
		return
	}
}

// invoke runs fn under ctx. When the context ends first, the worker waits
// up to AbandonGrace for fn to return cooperatively (the normal case: the
// fitters observe ctx and come back within one LM iteration); only a Func
// that outlives the grace window is abandoned (abandoned=true) — its
// goroutine keeps running until it notices, with the outcome discarded.
func (e *Engine) invoke(j *job, ctx context.Context) (result any, err error, abandoned bool) {
	type outcome struct {
		result any
		err    error
	}
	done := make(chan outcome, 1)
	launched := time.Now()
	go func() {
		defer func() {
			if r := recover(); r != nil {
				done <- outcome{nil, fmt.Errorf("jobs: panic: %v", r)}
			}
		}()
		res, ferr := j.fn(ctx)
		done <- outcome{res, ferr}
	}()
	select {
	case out := <-done:
		return out.result, out.err, false
	case <-ctx.Done():
	}
	if grace := e.opts.AbandonGrace; grace > 0 {
		t := time.NewTimer(grace)
		defer t.Stop()
		select {
		case out := <-done:
			if out.err == nil {
				// The Func raced a successful return against the cancel;
				// the context verdict wins so a cancelled job never
				// resurfaces as done.
				return out.result, ctx.Err(), false
			}
			return out.result, out.err, false
		case <-t.C:
		}
	}
	e.opts.Metrics.abandoned()
	e.logger().Warn("abandoning uncooperative job invocation",
		j.logArgs("id", j.id, "kind", j.kind, "grace", e.opts.AbandonGrace)...)
	go func() {
		<-done // drain so the Func goroutine can exit
		e.logger().Warn("abandoned job invocation finished",
			j.logArgs("id", j.id, "kind", j.kind, "after", time.Since(launched))...)
	}()
	return nil, ctx.Err(), true
}

// finishLocked moves j to a terminal state and applies the history bound.
func (e *Engine) finishLocked(j *job, state State, errMsg string, result any) {
	j.state = state
	j.err = errMsg
	j.result = result
	j.finished = time.Now()
	j.cancel()
	// Close the queue-wait span for jobs that never reached a worker
	// (cancelled while queued, engine closed); End is idempotent so the
	// normal pickup path is unaffected.
	j.waitSpan.End()
	e.terminal = append(e.terminal, j.id)
	for len(e.terminal) > e.opts.MaxHistory {
		evict := e.terminal[0]
		e.terminal = e.terminal[1:]
		delete(e.jobs, evict)
	}
	var latency time.Duration
	if !j.started.IsZero() {
		latency = j.finished.Sub(j.started)
		e.runtime.Observe(latency)
	}
	e.opts.Metrics.finished(j.kind, state, latency)
	e.logger().Info("job finished", j.logArgs("id", j.id, "kind", j.kind,
		"state", state, "err", errMsg, "latency", latency)...)
}

// logArgs appends the job's trace id (when it has one) to a lifecycle log
// line's key/value pairs, so every log about the job correlates with its
// trace in the flight recorder.
func (j *job) logArgs(kv ...any) []any {
	if j.traceID == "" {
		return kv
	}
	return append(kv, "trace_id", j.traceID)
}

func (j *job) snapshotLocked() Snapshot {
	s := Snapshot{
		ID: j.id, Kind: j.kind, State: j.state, Error: j.err,
		Attempts: j.attempts, CreatedUnix: j.created.Unix(),
		Result: j.result,
	}
	if !j.started.IsZero() {
		s.StartedUnix = j.started.Unix()
	}
	if !j.finished.IsZero() {
		s.FinishedUnix = j.finished.Unix()
	}
	return s
}

// sortSnapshots orders newest-created first, id as tiebreaker.
func sortSnapshots(s []Snapshot) {
	for i := 1; i < len(s); i++ { // insertion sort: lists are small
		for k := i; k > 0; k-- {
			a, b := &s[k-1], &s[k]
			if a.CreatedUnix > b.CreatedUnix ||
				(a.CreatedUnix == b.CreatedUnix && a.ID <= b.ID) {
				break
			}
			*a, *b = *b, *a
		}
	}
}
