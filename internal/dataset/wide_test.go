package dataset

import (
	"bytes"
	"strings"
	"testing"

	"dspot/internal/tensor"
)

func TestReadWideCSV(t *testing.T) {
	in := "week,US,JP,GB\n2004-01-04,36,10,22\n2004-01-11,34,9,\n"
	x, err := ReadWideCSV(strings.NewReader(in), "olympics")
	if err != nil {
		t.Fatal(err)
	}
	if x.D() != 1 || x.Keywords[0] != "olympics" {
		t.Fatalf("keywords %v", x.Keywords)
	}
	if x.L() != 3 || x.N() != 2 {
		t.Fatalf("dims (%d,%d)", x.L(), x.N())
	}
	if x.At(0, 0, 0) != 36 || x.At(0, 1, 1) != 9 {
		t.Fatal("values misplaced")
	}
	if !tensor.IsMissing(x.At(0, 2, 1)) {
		t.Fatal("empty cell should be missing")
	}
}

func TestReadWideCSVErrors(t *testing.T) {
	cases := []string{
		"",
		"week\n",
		"week,US,US\n2004,1,2\n",
		"week,,JP\n2004,1,2\n",
		"week,US\n2004,notanumber\n",
		"week,US\n2004,-1\n",
		"week,US,JP\n2004,1\n",
		"week,US\n",
	}
	for i, c := range cases {
		if _, err := ReadWideCSV(strings.NewReader(c), "k"); err == nil {
			t.Fatalf("case %d accepted", i)
		}
	}
}

func TestWriteWideCSVRoundTrip(t *testing.T) {
	x := tensor.New([]string{"k"}, []string{"US", "JP"}, 3)
	x.Set(0, 0, 0, 5)
	x.Set(0, 1, 1, tensor.Missing)
	x.Set(0, 1, 2, 7.5)
	var buf bytes.Buffer
	if err := WriteWideCSV(&buf, x, 0); err != nil {
		t.Fatal(err)
	}
	y, err := ReadWideCSV(&buf, "k")
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 2; j++ {
		for tt := 0; tt < 3; tt++ {
			a, b := x.At(0, j, tt), y.At(0, j, tt)
			if tensor.IsMissing(a) != tensor.IsMissing(b) {
				t.Fatalf("missing mismatch at (%d,%d)", j, tt)
			}
			if !tensor.IsMissing(a) && a != b {
				t.Fatalf("value mismatch at (%d,%d)", j, tt)
			}
		}
	}
}

func TestWriteWideCSVBadKeyword(t *testing.T) {
	x := tensor.New([]string{"k"}, []string{"US"}, 1)
	if err := WriteWideCSV(&bytes.Buffer{}, x, 5); err == nil {
		t.Fatal("bad keyword index accepted")
	}
}

func TestMergeKeywordTensors(t *testing.T) {
	a := tensor.New([]string{"k1"}, []string{"US", "JP"}, 2)
	a.Set(0, 0, 0, 1)
	b := tensor.New([]string{"k2"}, []string{"US", "JP"}, 2)
	b.Set(0, 1, 1, 9)
	merged, err := MergeKeywordTensors([]*tensor.Tensor{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if merged.D() != 2 {
		t.Fatalf("merged d = %d", merged.D())
	}
	if merged.At(0, 0, 0) != 1 || merged.At(1, 1, 1) != 9 {
		t.Fatal("merged values misplaced")
	}
}

func TestMergeKeywordTensorsErrors(t *testing.T) {
	if _, err := MergeKeywordTensors(nil); err == nil {
		t.Fatal("empty merge accepted")
	}
	a := tensor.New([]string{"k1"}, []string{"US"}, 2)
	b := tensor.New([]string{"k2"}, []string{"US"}, 3)
	if _, err := MergeKeywordTensors([]*tensor.Tensor{a, b}); err == nil {
		t.Fatal("duration mismatch accepted")
	}
	c := tensor.New([]string{"k2"}, []string{"JP"}, 2)
	if _, err := MergeKeywordTensors([]*tensor.Tensor{a, c}); err == nil {
		t.Fatal("location mismatch accepted")
	}
	d := tensor.New([]string{"k1"}, []string{"US"}, 2)
	if _, err := MergeKeywordTensors([]*tensor.Tensor{a, d}); err == nil {
		t.Fatal("duplicate keyword accepted")
	}
}
