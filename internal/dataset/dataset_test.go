package dataset

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dspot/internal/core"
	"dspot/internal/tensor"
)

func sampleTensor() *tensor.Tensor {
	x := tensor.New([]string{"a", "b"}, []string{"US", "JP"}, 3)
	v := 0.0
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			for t := 0; t < 3; t++ {
				x.Set(i, j, t, v)
				v += 1.5
			}
		}
	}
	x.Set(1, 0, 2, tensor.Missing)
	return x
}

func TestCSVRoundTrip(t *testing.T) {
	x := sampleTensor()
	var buf bytes.Buffer
	if err := WriteCSV(&buf, x); err != nil {
		t.Fatal(err)
	}
	y, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if y.D() != x.D() || y.L() != x.L() || y.N() != x.N() {
		t.Fatalf("dims (%d,%d,%d)", y.D(), y.L(), y.N())
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			for tt := 0; tt < 3; tt++ {
				a, b := x.At(i, j, tt), y.At(i, j, tt)
				if tensor.IsMissing(a) != tensor.IsMissing(b) {
					t.Fatalf("missing mismatch at (%d,%d,%d)", i, j, tt)
				}
				if !tensor.IsMissing(a) && a != b {
					t.Fatalf("value mismatch at (%d,%d,%d): %g vs %g", i, j, tt, a, b)
				}
			}
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"",
		"foo,bar\n",
		"keyword,location,tick,count\na,US,notanint,1\n",
		"keyword,location,tick,count\na,US,0,notafloat\n",
		"keyword,location,tick,count\na,US,-1,1\n",
		"keyword,location,tick,count\na,US,0,-5\n",
		"keyword,location,tick,count\n",
	}
	for i, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c)); err == nil {
			t.Fatalf("case %d accepted", i)
		}
	}
}

func TestReadCSVAbsentCellsAreMissing(t *testing.T) {
	in := "keyword,location,tick,count\na,US,0,1\na,US,2,3\n"
	x, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if x.N() != 3 {
		t.Fatalf("n = %d", x.N())
	}
	if !tensor.IsMissing(x.At(0, 0, 1)) {
		t.Fatal("absent cell should be missing")
	}
	if x.At(0, 0, 0) != 1 || x.At(0, 0, 2) != 3 {
		t.Fatal("present cells wrong")
	}
}

func TestSaveLoadCSVFiles(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.csv")
	x := sampleTensor()
	if err := SaveCSV(path, x); err != nil {
		t.Fatal(err)
	}
	y, err := LoadCSV(path)
	if err != nil {
		t.Fatal(err)
	}
	if y.Total() != x.Total() {
		t.Fatalf("totals differ: %g vs %g", y.Total(), x.Total())
	}
	if _, err := LoadCSV(filepath.Join(dir, "absent.csv")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func sampleModel() *core.Model {
	return &core.Model{
		Keywords:  []string{"k1", "k2"},
		Locations: []string{"US", "JP"},
		Ticks:     100,
		Global: []core.KeywordParams{
			{N: 50, Beta: 0.5, Delta: 0.4, Gamma: 0.3, I0: 0.01, TEta: core.NoGrowth},
			{N: 20, Beta: 0.6, Delta: 0.5, Gamma: 0.4, I0: 0.02, Eta0: 0.2, TEta: 40},
		},
		LocalN: [][]float64{{30, 20}, {15, 5}},
		LocalR: [][]float64{{0, 0}, {0.1, 0.3}},
		Shocks: []core.Shock{{Keyword: 0, Period: 52, Start: 10, Width: 2,
			Strength: []float64{3, 4}, Local: [][]float64{{3, 0}, {4, 2}}}},
		Scale: []float64{10, 5},
	}
}

func TestModelRoundTrip(t *testing.T) {
	m := sampleModel()
	var buf bytes.Buffer
	if err := WriteModel(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Ticks != m.Ticks || len(got.Global) != 2 || len(got.Shocks) != 1 {
		t.Fatalf("round-trip lost structure: %+v", got)
	}
	if got.Global[1].TEta != 40 || got.Global[0].TEta != core.NoGrowth {
		t.Fatal("TEta not preserved")
	}
	if got.Shocks[0].Local[1][0] != 4 {
		t.Fatal("shock local matrix not preserved")
	}
	if got.LocalN[0][0] != 30 || got.LocalR[1][1] != 0.3 {
		t.Fatal("local matrices not preserved")
	}
}

func TestReadModelRejectsCorrupt(t *testing.T) {
	cases := []string{
		"not json",
		`{"keywords":["a"],"ticks":10,"global":[]}`,
		`{"keywords":["a"],"locations":["US"],"ticks":10,
		  "global":[{"N":1}],
		  "shocks":[{"Keyword":5,"Period":0,"Start":1,"Width":1,"Strength":[1]}]}`,
		`{"keywords":["a"],"locations":["US"],"ticks":10,
		  "global":[{"N":1}],
		  "shocks":[{"Keyword":0,"Period":0,"Start":99,"Width":1,"Strength":[1]}]}`,
	}
	for i, c := range cases {
		if _, err := ReadModel(strings.NewReader(c)); err == nil {
			t.Fatalf("case %d accepted", i)
		}
	}
}

func TestSaveLoadModelFiles(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "m.json")
	if err := SaveModel(path, sampleModel()); err != nil {
		t.Fatal(err)
	}
	m, err := LoadModel(path)
	if err != nil {
		t.Fatal(err)
	}
	if m.Keywords[1] != "k2" {
		t.Fatal("keywords lost")
	}
	st, err := os.Stat(path)
	if err != nil || st.Size() == 0 {
		t.Fatal("model file empty")
	}
}

func TestWriteSeriesCSV(t *testing.T) {
	var buf bytes.Buffer
	err := WriteSeriesCSV(&buf, []string{"obs", "fit"},
		[][]float64{{1, 2, math.NaN()}, {1.5, 2.5}})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d: %q", len(lines), buf.String())
	}
	if lines[0] != "tick,obs,fit" {
		t.Fatalf("header %q", lines[0])
	}
	if lines[3] != "2,," {
		t.Fatalf("NaN/short row = %q", lines[3])
	}
}

func TestWriteSeriesCSVMismatch(t *testing.T) {
	if err := WriteSeriesCSV(&bytes.Buffer{}, []string{"a"}, nil); err == nil {
		t.Fatal("mismatch accepted")
	}
}

func TestSortedKeys(t *testing.T) {
	got := SortedKeys(map[string]float64{"b": 1, "a": 2, "c": 3})
	if len(got) != 3 || got[0] != "a" || got[2] != "c" {
		t.Fatalf("SortedKeys = %v", got)
	}
}
