package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strconv"

	"dspot/internal/tensor"
)

// Wide CSV: the shape real trend exports come in — one file per keyword,
// one row per time-tick, one column per location:
//
//	week,US,JP,GB
//	2004-01-04,36,10,22
//	2004-01-11,34,9,
//
// The first column is an opaque time label (kept only for ordering); empty
// cells are missing observations.

// ReadWideCSV parses a wide-format file into a single-keyword tensor. The
// keyword name is supplied by the caller (wide files do not carry it).
func ReadWideCSV(r io.Reader, keyword string) (*tensor.Tensor, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1 // validated manually for better messages
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading wide header: %w", err)
	}
	if len(header) < 2 {
		return nil, fmt.Errorf("dataset: wide header needs a time column and at least one location")
	}
	locations := header[1:]
	seen := map[string]bool{}
	for _, loc := range locations {
		if loc == "" {
			return nil, fmt.Errorf("dataset: empty location column name")
		}
		if seen[loc] {
			return nil, fmt.Errorf("dataset: duplicate location column %q", loc)
		}
		seen[loc] = true
	}

	var rows [][]float64
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: line %d: %w", line, err)
		}
		if len(rec) != len(header) {
			return nil, fmt.Errorf("dataset: line %d: %d fields, header has %d",
				line, len(rec), len(header))
		}
		row := make([]float64, len(locations))
		for c, raw := range rec[1:] {
			if raw == "" {
				row[c] = math.NaN()
				continue
			}
			v, err := strconv.ParseFloat(raw, 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: line %d, column %q: bad count %q",
					line, locations[c], raw)
			}
			if v < 0 {
				return nil, fmt.Errorf("dataset: line %d, column %q: negative count %g",
					line, locations[c], v)
			}
			row[c] = v
		}
		rows = append(rows, row)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("dataset: wide file has no data rows")
	}

	x := tensor.New([]string{keyword}, locations, len(rows))
	for t, row := range rows {
		for j, v := range row {
			x.Set(0, j, t, v)
		}
	}
	return x, nil
}

// WriteWideCSV writes keyword i of the tensor in wide format. Tick labels
// are the integer tick indices.
func WriteWideCSV(w io.Writer, x *tensor.Tensor, keyword int) error {
	if keyword < 0 || keyword >= x.D() {
		return fmt.Errorf("dataset: keyword index %d out of range", keyword)
	}
	cw := csv.NewWriter(w)
	if err := cw.Write(append([]string{"tick"}, x.Locations...)); err != nil {
		return err
	}
	rec := make([]string, x.L()+1)
	for t := 0; t < x.N(); t++ {
		rec[0] = strconv.Itoa(t)
		for j := 0; j < x.L(); j++ {
			v := x.At(keyword, j, t)
			if tensor.IsMissing(v) {
				rec[j+1] = ""
				continue
			}
			rec[j+1] = strconv.FormatFloat(v, 'g', -1, 64)
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// MergeKeywordTensors stacks single-keyword tensors (e.g., from several
// wide files) into one multi-keyword tensor. All inputs must share the
// same location axis and duration.
func MergeKeywordTensors(parts []*tensor.Tensor) (*tensor.Tensor, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("dataset: nothing to merge")
	}
	base := parts[0]
	var keywords []string
	for _, p := range parts {
		if p.L() != base.L() || p.N() != base.N() {
			return nil, fmt.Errorf("dataset: merge shape mismatch: (%d,%d) vs (%d,%d)",
				p.L(), p.N(), base.L(), base.N())
		}
		for j, loc := range p.Locations {
			if loc != base.Locations[j] {
				return nil, fmt.Errorf("dataset: merge location mismatch at %d: %q vs %q",
					j, loc, base.Locations[j])
			}
		}
		keywords = append(keywords, p.Keywords...)
	}
	seen := map[string]bool{}
	for _, k := range keywords {
		if seen[k] {
			return nil, fmt.Errorf("dataset: duplicate keyword %q in merge", k)
		}
		seen[k] = true
	}
	out := tensor.New(keywords, base.Locations, base.N())
	row := 0
	for _, p := range parts {
		for i := 0; i < p.D(); i++ {
			copy(out.Local(row, 0), p.Local(i, 0))
			for j := 0; j < p.L(); j++ {
				copy(out.Local(row, j), p.Local(i, j))
			}
			row++
		}
	}
	return out, nil
}
