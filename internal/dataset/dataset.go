// Package dataset provides on-disk interchange for tensors and fitted
// models: a long-form CSV format for (keyword, location, time, count)
// tuples — the shape web-activity exports come in — and JSON round-tripping
// for fitted Δ-SPOT models.
package dataset

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"

	"dspot/internal/core"
	"dspot/internal/tensor"
)

// WriteCSV writes the tensor in long form with a header row:
// keyword,location,tick,count. Missing cells are written with an empty
// count field.
func WriteCSV(w io.Writer, x *tensor.Tensor) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"keyword", "location", "tick", "count"}); err != nil {
		return err
	}
	for i := 0; i < x.D(); i++ {
		for j := 0; j < x.L(); j++ {
			seq := x.Local(i, j)
			for t, v := range seq {
				count := ""
				if !tensor.IsMissing(v) {
					count = strconv.FormatFloat(v, 'g', -1, 64)
				}
				rec := []string{x.Keywords[i], x.Locations[j], strconv.Itoa(t), count}
				if err := cw.Write(rec); err != nil {
					return err
				}
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses the long-form CSV written by WriteCSV (or any file with
// the same header). Axis orders follow first appearance; the duration is
// the maximum tick + 1; absent cells and empty counts are missing.
func ReadCSV(r io.Reader) (*tensor.Tensor, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading header: %w", err)
	}
	if len(header) != 4 || header[0] != "keyword" || header[1] != "location" ||
		header[2] != "tick" || header[3] != "count" {
		return nil, fmt.Errorf("dataset: unexpected header %v", header)
	}

	type cell struct {
		kw, loc string
		tick    int
		val     float64 // NaN = missing
	}
	var cells []cell
	kwIndex := map[string]int{}
	locIndex := map[string]int{}
	var kws, locs []string
	maxTick := -1
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: line %d: %w", line, err)
		}
		tick, err := strconv.Atoi(rec[2])
		if err != nil || tick < 0 {
			return nil, fmt.Errorf("dataset: line %d: bad tick %q", line, rec[2])
		}
		val := math.NaN()
		if rec[3] != "" {
			val, err = strconv.ParseFloat(rec[3], 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: line %d: bad count %q", line, rec[3])
			}
			if val < 0 {
				return nil, fmt.Errorf("dataset: line %d: negative count %g", line, val)
			}
		}
		if _, ok := kwIndex[rec[0]]; !ok {
			kwIndex[rec[0]] = len(kws)
			kws = append(kws, rec[0])
		}
		if _, ok := locIndex[rec[1]]; !ok {
			locIndex[rec[1]] = len(locs)
			locs = append(locs, rec[1])
		}
		if tick > maxTick {
			maxTick = tick
		}
		cells = append(cells, cell{rec[0], rec[1], tick, val})
	}
	if maxTick < 0 || len(kws) == 0 || len(locs) == 0 {
		return nil, fmt.Errorf("dataset: no data rows")
	}
	x := tensor.New(kws, locs, maxTick+1)
	// Cells absent from the file are missing, not zero.
	for i := 0; i < x.D(); i++ {
		for j := 0; j < x.L(); j++ {
			seq := x.Local(i, j)
			for t := range seq {
				seq[t] = tensor.Missing
			}
		}
	}
	for _, c := range cells {
		x.Set(kwIndex[c.kw], locIndex[c.loc], c.tick, c.val)
	}
	return x, nil
}

// SaveCSV writes the tensor to a file path.
func SaveCSV(path string, x *tensor.Tensor) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := WriteCSV(f, x); err != nil {
		return err
	}
	return f.Close()
}

// LoadCSV reads a tensor from a file path.
func LoadCSV(path string) (*tensor.Tensor, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadCSV(f)
}

// modelJSON is the serialised form of a fitted model. NaN cannot appear in
// JSON, so TEta's NoGrowth sentinel is kept as-is (an int) and float fields
// are finite by construction.
type modelJSON struct {
	Keywords  []string             `json:"keywords"`
	Locations []string             `json:"locations"`
	Ticks     int                  `json:"ticks"`
	Global    []core.KeywordParams `json:"global"`
	LocalN    [][]float64          `json:"local_n,omitempty"`
	LocalR    [][]float64          `json:"local_r,omitempty"`
	Shocks    []core.Shock         `json:"shocks,omitempty"`
	Scale     []float64            `json:"scale,omitempty"`
}

// WriteModel serialises a fitted model as indented JSON.
func WriteModel(w io.Writer, m *core.Model) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(modelJSON{
		Keywords: m.Keywords, Locations: m.Locations, Ticks: m.Ticks,
		Global: m.Global, LocalN: m.LocalN, LocalR: m.LocalR,
		Shocks: m.Shocks, Scale: m.Scale,
	})
}

// ReadModel parses a model written by WriteModel and validates its shape.
func ReadModel(r io.Reader) (*core.Model, error) {
	var mj modelJSON
	if err := json.NewDecoder(r).Decode(&mj); err != nil {
		return nil, fmt.Errorf("dataset: decoding model: %w", err)
	}
	m := &core.Model{
		Keywords: mj.Keywords, Locations: mj.Locations, Ticks: mj.Ticks,
		Global: mj.Global, LocalN: mj.LocalN, LocalR: mj.LocalR,
		Shocks: mj.Shocks, Scale: mj.Scale,
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("dataset: %w", err)
	}
	return m, nil
}

// SaveModel writes a model to a file path.
func SaveModel(path string, m *core.Model) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := WriteModel(f, m); err != nil {
		return err
	}
	return f.Close()
}

// LoadModel reads a model from a file path.
func LoadModel(path string) (*core.Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadModel(f)
}

// WriteSeriesCSV writes named, aligned series as columns:
// tick,name1,name2,... — the format the experiment harness emits for every
// figure so results can be re-plotted.
func WriteSeriesCSV(w io.Writer, names []string, series [][]float64) error {
	if len(names) != len(series) {
		return fmt.Errorf("dataset: %d names for %d series", len(names), len(series))
	}
	cw := csv.NewWriter(w)
	if err := cw.Write(append([]string{"tick"}, names...)); err != nil {
		return err
	}
	n := 0
	for _, s := range series {
		if len(s) > n {
			n = len(s)
		}
	}
	for t := 0; t < n; t++ {
		rec := make([]string, 0, len(series)+1)
		rec = append(rec, strconv.Itoa(t))
		for _, s := range series {
			if t >= len(s) || math.IsNaN(s[t]) {
				rec = append(rec, "")
				continue
			}
			rec = append(rec, strconv.FormatFloat(s[t], 'g', -1, 64))
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// SortedKeys returns the sorted keys of a string-keyed map of float64 —
// a helper for deterministic report printing.
func SortedKeys(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
