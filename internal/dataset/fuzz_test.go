package dataset

// Native fuzz targets for the two CSV parsers: whatever bytes arrive, the
// parsers must return a structurally valid tensor or an error — never
// panic, and never hand back a tensor that fails its own Validate.
// Run with: go test -fuzz=FuzzReadCSV ./internal/dataset (seeds run in
// normal `go test` mode).

import (
	"strings"
	"testing"
)

func FuzzReadCSV(f *testing.F) {
	f.Add("keyword,location,tick,count\na,US,0,1\n")
	f.Add("keyword,location,tick,count\na,US,0,\na,US,1,2.5\nb,JP,0,3\n")
	f.Add("keyword,location,tick,count\n")
	f.Add("keyword,location,tick,count\na,US,-1,1\n")
	f.Add("keyword,location,tick,count\na,US,0,-3\n")
	f.Add("keyword,location,tick,count\na,US,notanint,1\n")
	f.Add("not,a,header\n")
	f.Add("")
	f.Add("keyword,location,tick,count\n\"quoted,keyword\",US,0,1\n")
	f.Fuzz(func(t *testing.T, input string) {
		x, err := ReadCSV(strings.NewReader(input))
		if err != nil {
			return
		}
		if x == nil {
			t.Fatal("nil tensor without error")
		}
		if err := x.Validate(); err != nil {
			t.Fatalf("parser produced invalid tensor: %v", err)
		}
		if x.D() < 1 || x.L() < 1 || x.N() < 1 {
			t.Fatalf("degenerate dimensions (%d,%d,%d)", x.D(), x.L(), x.N())
		}
	})
}

func FuzzReadWideCSV(f *testing.F) {
	f.Add("week,US,JP\n2004-01,3,4\n")
	f.Add("week,US\nx,\n")
	f.Add("week,US,US\nx,1,2\n")
	f.Add("week\nx\n")
	f.Add("")
	f.Add("week,US\nx,1\ny\n")
	f.Add("week,US\nx,-1\n")
	f.Fuzz(func(t *testing.T, input string) {
		x, err := ReadWideCSV(strings.NewReader(input), "kw")
		if err != nil {
			return
		}
		if x == nil {
			t.Fatal("nil tensor without error")
		}
		if err := x.Validate(); err != nil {
			t.Fatalf("parser produced invalid tensor: %v", err)
		}
		if x.D() != 1 {
			t.Fatalf("wide parse should yield one keyword, got %d", x.D())
		}
	})
}

func FuzzReadModel(f *testing.F) {
	f.Add(`{"keywords":["a"],"locations":["US"],"ticks":10,"global":[{"N":1,"TEta":-1}]}`)
	f.Add(`{}`)
	f.Add(`not json`)
	f.Add(`{"keywords":["a"],"locations":["US"],"ticks":10,"global":[{"N":1}],
	       "shocks":[{"Keyword":0,"Period":5,"Start":1,"Width":2,"Strength":[1,2]}]}`)
	f.Fuzz(func(t *testing.T, input string) {
		m, err := ReadModel(strings.NewReader(input))
		if err != nil {
			return
		}
		if m == nil {
			t.Fatal("nil model without error")
		}
		if len(m.Global) != len(m.Keywords) {
			t.Fatal("accepted model with keyword/param mismatch")
		}
		for _, s := range m.Shocks {
			if s.Keyword < 0 || s.Keyword >= len(m.Keywords) {
				t.Fatal("accepted dangling shock keyword")
			}
		}
	})
}
