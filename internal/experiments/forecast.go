package experiments

import (
	"fmt"
	"strings"

	"dspot/internal/arima"
	"dspot/internal/core"
	"dspot/internal/datagen"
	"dspot/internal/stats"
	"dspot/internal/tbats"
)

// Fig11Result reproduces Fig. 11: long-range forecasting of the "Grammy"
// series. The model trains on the first TrainTicks ticks and predicts the
// remainder; Δ-SPOT is compared against AR with r ∈ {8, 26, 50} and a
// TBATS-style forecaster. RMSE is over the forecast horizon only; Flat is
// the predict-the-training-mean strawman.
type Fig11Result struct {
	TrainTicks int
	Horizon    int
	RMSE       map[string]float64 // method → forecast RMSE
	Flat       float64
	Events     []core.PredictedEvent // Δ-SPOT's predicted future occurrences
	Obs        []float64             // full observed series
	Forecast   []float64             // Δ-SPOT forecast (aligned to horizon)
}

func (r Fig11Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 11 — Grammy forecasting (train %d, horizon %d)\n",
		r.TrainTicks, r.Horizon)
	fmt.Fprintf(&b, "  flat-mean strawman: RMSE=%.3f\n", r.Flat)
	for _, m := range []string{"D-SPOT", "AR(8)", "AR(26)", "AR(50)", "TBATS"} {
		if v, ok := r.RMSE[m]; ok {
			fmt.Fprintf(&b, "  %-8s RMSE=%.3f\n", m, v)
		}
	}
	for _, e := range r.Events {
		fmt.Fprintf(&b, "  predicted event: t=%d width=%d strength=%.2f (every %d)\n",
			e.Start, e.Width, e.Strength, e.Period)
	}
	return b.String()
}

// Fig11 runs the forecasting comparison. trainTicks <= 0 selects the
// paper's 400 ticks (clamped to 70%% of the series when shorter).
func Fig11(cfg Config, trainTicks int) (Fig11Result, error) {
	gen := cfg.gen()
	gen.Ticks = 0 // forecasting needs a real horizon past the training cut
	truth, err := datagen.GoogleTrendsKeyword("grammy", gen)
	if err != nil {
		return Fig11Result{}, err
	}
	obs := truth.Tensor.Global(0)
	n := len(obs)
	if trainTicks <= 0 {
		trainTicks = 400
	}
	if trainTicks >= n-52 {
		trainTicks = n * 7 / 10
	}
	train, test := obs[:trainTicks], obs[trainTicks:]
	h := len(test)

	res := Fig11Result{
		TrainTicks: trainTicks, Horizon: h,
		RMSE: map[string]float64{},
		Flat: flatRMSE(train, test),
		Obs:  obs,
	}

	// Δ-SPOT: fit the training prefix, extrapolate cyclic shocks.
	fit, err := core.FitGlobalSequence(train, 0, cfg.fit())
	if err != nil {
		return res, err
	}
	m := &core.Model{Keywords: []string{"grammy"}, Locations: []string{"WW"},
		Ticks: trainTicks, Global: []core.KeywordParams{fit.Params}, Shocks: fit.Shocks}
	res.Forecast = m.ForecastGlobal(0, h)
	res.RMSE["D-SPOT"] = stats.RMSE(test, res.Forecast)
	res.Events = m.PredictedEvents(0, h)

	// AR baselines with the paper's regression orders.
	for _, order := range []int{8, 26, 50} {
		name := fmt.Sprintf("AR(%d)", order)
		ar, err := arima.FitAR(train, order)
		if err != nil {
			continue
		}
		res.RMSE[name] = stats.RMSE(test, ar.Forecast(h))
	}

	// TBATS baseline.
	if tb, err := tbats.Fit(train); err == nil {
		res.RMSE["TBATS"] = stats.RMSE(test, tb.Forecast(h))
	}
	return res, nil
}
