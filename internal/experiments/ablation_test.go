package experiments

import (
	"strings"
	"testing"
)

func TestAblationCycles(t *testing.T) {
	cfg := Small()
	res, err := AblationCycles(cfg, 300)
	if err != nil {
		t.Fatal(err)
	}
	// The cyclic class must pay off in forecasting: without it no future
	// occurrences are predicted, so the forecast degenerates toward the
	// baseline.
	if res.FullFcstRMSE >= res.NoCycFcstRMSE {
		t.Fatalf("cyclic class did not improve forecasting: full %.3f vs no-cycles %.3f",
			res.FullFcstRMSE, res.NoCycFcstRMSE)
	}
	if res.FullpredEvents == 0 {
		t.Fatal("full model predicted no future events on an annual series")
	}
	if res.FullFcstRMSE >= res.FlatFcstRMSE {
		t.Fatalf("full model does not beat flat mean: %.3f vs %.3f",
			res.FullFcstRMSE, res.FlatFcstRMSE)
	}
	if !strings.Contains(res.String(), "cyclic shock class") {
		t.Fatal("String() malformed")
	}
}

func TestAblationMDL(t *testing.T) {
	res, err := AblationMDL(Small())
	if err != nil {
		t.Fatal(err)
	}
	// The ungated fitter must spend at least as many shocks.
	if res.UngatedShocks < res.GatedShocks {
		t.Fatalf("ungated fitter used fewer shocks (%d) than gated (%d)",
			res.UngatedShocks, res.GatedShocks)
	}
	// And the gate must not hurt the holdout: gated holdout error should be
	// no worse than ~10%% above ungated (usually it is better).
	if res.GatedHoldout > res.UngatedHoldout*1.1 {
		t.Fatalf("MDL gate hurt holdout badly: gated %.3f vs ungated %.3f",
			res.GatedHoldout, res.UngatedHoldout)
	}
	if !strings.Contains(res.String(), "MDL acceptance gate") {
		t.Fatal("String() malformed")
	}
}

func TestAblationLocal(t *testing.T) {
	cfg := Small()
	cfg.Locations = 8
	res, err := AblationLocal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OutlierDetected {
		t.Fatal("LocalFit failed to zero the scripted outliers' participation")
	}
	// The structural discriminator is the participation semantics, asserted
	// above via OutlierDetected: only LocalFit can say "this country did not
	// take part in this event" — a scaled copy has no participation notion
	// at all. In pure RMSE the two are nearly the same model class for a
	// non-participant (shared dynamics × one local scale), so RMSE is only
	// sanity-checked, not used to declare a winner.
	if res.DSPOTOutlierRMSE > res.ScaledOutlierRMSE*1.25 {
		t.Fatalf("LocalFit outliers (%.4f) much worse than scaled copies (%.4f)",
			res.DSPOTOutlierRMSE, res.ScaledOutlierRMSE)
	}
	if res.DSPOTPartRMSE > res.ScaledPartRMSE*2.5 {
		t.Fatalf("LocalFit participants (%.4f) far worse than scaled copies (%.4f)",
			res.DSPOTPartRMSE, res.ScaledPartRMSE)
	}
	if !strings.Contains(res.String(), "LocalFit") {
		t.Fatal("String() malformed")
	}
}
