package experiments

// Robustness studies beyond the paper's evaluation, possible here because
// the synthetic datasets expose their ground truth: how gracefully does
// Δ-SPOT degrade as observations go missing, and as observation noise
// grows? Recovery is scored against the scripts — period, phase, and growth
// onset — not just by residual RMSE.

import (
	"fmt"
	"math/rand"
	"strings"

	"dspot/internal/core"
	"dspot/internal/datagen"
	"dspot/internal/stats"
	"dspot/internal/tensor"
)

// RecoveryScore grades a fitted model against the generator scripts for a
// single keyword.
type RecoveryScore struct {
	PeriodFound bool    // some shock with the scripted periodicity (±10%)
	PhaseError  int     // ticks between scripted and fitted anchor phases (-1 when not found)
	GrowthFound bool    // growth effect detected when scripted (vacuously true otherwise)
	GrowthError int     // onset error in ticks (-1 when not applicable/found)
	NRMSE       float64 // fit RMSE / peak
}

// scoreRecovery compares a fitted single-keyword model to its spec.
func scoreRecovery(spec datagen.KeywordSpec, params core.KeywordParams,
	shocks []core.Shock, obs []float64, n int) RecoveryScore {
	m := &core.Model{Keywords: []string{spec.Name}, Ticks: n,
		Global: []core.KeywordParams{params}, Shocks: shocks}
	score := RecoveryScore{PhaseError: -1, GrowthError: -1}
	peak := stats.Max(obs)
	if peak > 0 {
		score.NRMSE = stats.RMSE(obs, m.SimulateGlobal(0, n)) / peak
	}

	// Periodicity/phase: check the dominant scripted cyclic event.
	var want *datagen.EventSpec
	for i := range spec.Events {
		e := &spec.Events[i]
		if e.Period > 0 && (want == nil || e.Strength > want.Strength) {
			want = e
		}
	}
	if want == nil {
		score.PeriodFound = true // nothing to find
	} else {
		tol := want.Period / 10
		if tol < 2 {
			tol = 2
		}
		for _, s := range shocks {
			if s.Period == 0 {
				continue
			}
			if abs(s.Period-want.Period) <= tol {
				score.PeriodFound = true
				phase := abs((s.Start%want.Period)-(want.Start%want.Period))
				if wrap := want.Period - phase; wrap < phase {
					phase = wrap
				}
				if score.PhaseError == -1 || phase < score.PhaseError {
					score.PhaseError = phase
				}
			}
		}
	}

	// Growth.
	if spec.Growth == nil {
		score.GrowthFound = true
	} else if params.HasGrowth() {
		score.GrowthFound = true
		score.GrowthError = abs(params.TEta - spec.Growth.Start)
	}
	return score
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// RobustnessPoint is one sweep measurement.
type RobustnessPoint struct {
	Level float64 // missing fraction or noise level
	Score RecoveryScore
}

// RobustnessResult holds the two sweeps for one keyword.
type RobustnessResult struct {
	Keyword string
	Missing []RobustnessPoint
	Noise   []RobustnessPoint
}

func (r RobustnessResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Robustness — %s (ground-truth recovery under degradation)\n", r.Keyword)
	row := func(p RobustnessPoint) string {
		return fmt.Sprintf("period=%v phase±%d nrmse=%.3f",
			p.Score.PeriodFound, p.Score.PhaseError, p.Score.NRMSE)
	}
	fmt.Fprintln(&b, "  missing fraction:")
	for _, p := range r.Missing {
		fmt.Fprintf(&b, "    %4.0f%%  %s\n", p.Level*100, row(p))
	}
	fmt.Fprintln(&b, "  noise level:")
	for _, p := range r.Noise {
		fmt.Fprintf(&b, "    %4.0f%%  %s\n", p.Level*100, row(p))
	}
	return b.String()
}

// Robustness sweeps missing-data fractions and noise levels on the Grammy
// world and scores ground-truth recovery at each point.
func Robustness(cfg Config, missingLevels, noiseLevels []float64) (RobustnessResult, error) {
	if missingLevels == nil {
		missingLevels = []float64{0, 0.1, 0.2, 0.4}
	}
	if noiseLevels == nil {
		noiseLevels = []float64{0.01, 0.05, 0.1, 0.2}
	}
	res := RobustnessResult{Keyword: "grammy"}

	fitScored := func(truth *datagen.Truth, obs []float64) (RecoveryScore, error) {
		n := len(obs)
		opts := cfg.fit()
		opts.DisableGrowth = truth.Keywords[0].Growth == nil
		fit, err := core.FitGlobalSequence(obs, 0, opts)
		if err != nil {
			return RecoveryScore{}, err
		}
		return scoreRecovery(truth.Keywords[0], fit.Params, fit.Shocks, obs, n), nil
	}

	// Missing-data sweep at fixed low noise.
	for _, frac := range missingLevels {
		gen := cfg.gen()
		gen.Noise = 0.02
		truth, err := datagen.GoogleTrendsKeyword("grammy", gen)
		if err != nil {
			return res, err
		}
		obs := truth.Tensor.Global(0)
		if frac > 0 {
			rng := rand.New(rand.NewSource(cfg.Seed ^ 0xb0b))
			for t := range obs {
				if rng.Float64() < frac {
					obs[t] = tensor.Missing
				}
			}
		}
		score, err := fitScored(truth, obs)
		if err != nil {
			return res, err
		}
		res.Missing = append(res.Missing, RobustnessPoint{frac, score})
	}

	// Noise sweep with full observations.
	for _, noise := range noiseLevels {
		gen := cfg.gen()
		gen.Noise = noise
		truth, err := datagen.GoogleTrendsKeyword("grammy", gen)
		if err != nil {
			return res, err
		}
		obs := truth.Tensor.Global(0)
		score, err := fitScored(truth, obs)
		if err != nil {
			return res, err
		}
		res.Noise = append(res.Noise, RobustnessPoint{noise, score})
	}
	return res, nil
}
