package experiments

import (
	"strings"
	"testing"
)

func TestTickDate(t *testing.T) {
	if got := tickDate(0, 2004, 7); got != "2004-01" {
		t.Fatalf("tickDate(0) = %q", got)
	}
	if got := tickDate(52, 2004, 7); got != "2004-12" && got != "2005-01" {
		t.Fatalf("tickDate(52) = %q", got)
	}
	if got := tickDate(5, 2011, 0); got != "t=5" {
		t.Fatalf("tickDate without mapping = %q", got)
	}
}

func TestSmallAndFullConfigs(t *testing.T) {
	s, f := Small(), Full()
	if s.Locations >= f.Locations {
		t.Fatal("Small should be smaller than Full")
	}
	if f.Locations != 232 {
		t.Fatalf("Full locations = %d, want 232", f.Locations)
	}
}

func TestFig1HarryPotter(t *testing.T) {
	res, err := Fig1(Small())
	if err != nil {
		t.Fatal(err)
	}
	if res.Fit.NRMSE > 0.15 {
		t.Fatalf("Fig1 fit NRMSE %.3f too high", res.Fit.NRMSE)
	}
	if len(res.Fit.Events) == 0 {
		t.Fatal("Fig1 detected no events")
	}
	// At least one detected event must be cyclic (the scripted releases).
	cyclic := false
	for _, e := range res.Fit.Events {
		if e.Cyclic() {
			cyclic = true
		}
	}
	if !cyclic {
		t.Fatalf("no cyclic event among %v", res.Fit.Events)
	}
	if len(res.Reaction) == 0 {
		t.Fatal("no reaction map")
	}
	if !strings.Contains(res.String(), "Fig 1") {
		t.Fatal("String() malformed")
	}
}

func TestFig4Ablation(t *testing.T) {
	res, err := Fig4(Small())
	if err != nil {
		t.Fatal(err)
	}
	// The full model must fit best, as in the paper's Fig. 4(d).
	if !(res.RMSEBoth <= res.RMSENone) {
		t.Fatalf("both=%.3f should beat none=%.3f", res.RMSEBoth, res.RMSENone)
	}
	if !(res.RMSEBoth <= res.RMSEGrowthOnly+1e-9 && res.RMSEBoth <= res.RMSEShockOnly+1e-9) {
		t.Fatalf("both=%.3f should be best: growth=%.3f shock=%.3f",
			res.RMSEBoth, res.RMSEGrowthOnly, res.RMSEShockOnly)
	}
	if !strings.Contains(res.String(), "ablation") {
		t.Fatal("String() malformed")
	}
}

func TestFig5EightKeywords(t *testing.T) {
	res, err := Fig5(Small())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Reports) != 8 {
		t.Fatalf("%d reports, want 8", len(res.Reports))
	}
	for _, r := range res.Reports {
		if r.NRMSE > 0.25 {
			t.Fatalf("keyword %q fits poorly: NRMSE %.3f", r.Keyword, r.NRMSE)
		}
	}
}

func TestFig6Twitter(t *testing.T) {
	res, err := Fig6(Small())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Reports) != 2 {
		t.Fatalf("%d reports, want 2", len(res.Reports))
	}
	for _, r := range res.Reports {
		if r.NRMSE > 0.25 {
			t.Fatalf("hashtag %q fits poorly: NRMSE %.3f", r.Keyword, r.NRMSE)
		}
	}
}

func TestFig7Memes(t *testing.T) {
	res, err := Fig7(Small())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Reports) != 2 {
		t.Fatalf("%d reports, want 2", len(res.Reports))
	}
	for _, r := range res.Reports {
		if r.NRMSE > 0.3 {
			t.Fatalf("meme %q fits poorly: NRMSE %.3f", r.Keyword, r.NRMSE)
		}
	}
}

func TestFig8EbolaOutliers(t *testing.T) {
	cfg := Small()
	cfg.Locations = 30 // must include the scripted outliers LA/NP/CG
	cfg.Ticks = 0      // need the 2014 burst, so use the natural duration
	res, err := Fig8(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Similar) == 0 {
		t.Fatal("no similar countries found")
	}
	similar := strings.Join(res.Similar, " ")
	if !strings.Contains(similar, "US") {
		t.Fatalf("US missing from similar set: %s", similar)
	}
	outliers := strings.Join(res.Outliers, " ")
	for _, code := range []string{"LA", "NP", "CG"} {
		if !strings.Contains(outliers, code) {
			t.Fatalf("scripted outlier %s not detected (outliers: %s; similar: %s)",
				code, outliers, similar)
		}
	}
}

func TestFig9GlobalOrdering(t *testing.T) {
	res, err := Fig9Global(Small())
	if err != nil {
		t.Fatal(err)
	}
	ds, ok := res.Global["D-SPOT"]
	if !ok {
		t.Fatal("missing D-SPOT result")
	}
	for _, m := range []string{"SIRS", "SKIPS"} {
		if v, ok := res.Global[m]; ok && ds > v {
			t.Fatalf("D-SPOT (%.4f) should beat %s (%.4f)", ds, m, v)
		}
	}
	if v, ok := res.Global["FUNNEL"]; ok && ds > v*1.1 {
		t.Fatalf("D-SPOT (%.4f) should not lose clearly to FUNNEL (%.4f)", ds, v)
	}
}

func TestFig10Linearity(t *testing.T) {
	cfg := Small()
	cfg.Ticks = 160
	cfg.Locations = 8
	sweeps := Fig10Sweeps{
		Keywords:  []int{1, 2, 3},
		Locations: []int{2, 4, 8},
		Ticks:     []int{80, 120, 160},
	}
	res, err := Fig10(cfg, sweeps)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ByKeywords) != 3 || len(res.ByLocations) != 3 || len(res.ByTicks) != 3 {
		t.Fatalf("sweep sizes wrong: %+v", res)
	}
	for _, pts := range [][]ScalePoint{res.ByKeywords, res.ByLocations, res.ByTicks} {
		for _, p := range pts {
			if p.Seconds <= 0 {
				t.Fatalf("non-positive timing %+v", p)
			}
		}
	}
	// Coarse sanity rather than strict linearity (timing noise): the largest
	// size must not be more than ~8x the per-unit cost of the smallest.
	kd := res.ByKeywords
	perUnitSmall := kd[0].Seconds / float64(kd[0].Size)
	perUnitLarge := kd[len(kd)-1].Seconds / float64(kd[len(kd)-1].Size)
	if perUnitLarge > perUnitSmall*8 {
		t.Fatalf("keyword sweep superlinear: %.4f vs %.4f s/unit", perUnitSmall, perUnitLarge)
	}
}

func TestLinearityR2(t *testing.T) {
	perfect := []ScalePoint{{1, 1}, {2, 2}, {3, 3}, {4, 4}}
	if r2 := LinearityR2(perfect); r2 < 0.999 {
		t.Fatalf("perfect line R² = %g", r2)
	}
	if r2 := LinearityR2(perfect[:2]); r2 != 1 {
		t.Fatalf("degenerate sweep R² = %g", r2)
	}
	quad := []ScalePoint{{1, 1}, {2, 4}, {3, 9}, {4, 16}, {5, 25}, {6, 36}, {8, 64}, {10, 100}}
	if r2 := LinearityR2(quad); r2 > 0.99 {
		t.Fatalf("quadratic should not look perfectly linear: R² = %g", r2)
	}
}

func TestFig11ForecastBeatsBaselines(t *testing.T) {
	cfg := Small()
	cfg.Ticks = 0 // full 576 weeks so there is a real forecast horizon
	res, err := Fig11(cfg, 400)
	if err != nil {
		t.Fatal(err)
	}
	ds, ok := res.RMSE["D-SPOT"]
	if !ok {
		t.Fatal("missing D-SPOT forecast")
	}
	if ds >= res.Flat {
		t.Fatalf("D-SPOT (%.3f) does not beat flat-mean (%.3f)", ds, res.Flat)
	}
	// The paper's qualitative claim: AR and TBATS fail to forecast the
	// future spikes; Δ-SPOT should beat every baseline.
	for name, v := range res.RMSE {
		if name == "D-SPOT" {
			continue
		}
		if ds > v {
			t.Fatalf("D-SPOT (%.3f) loses to %s (%.3f)", ds, name, v)
		}
	}
	if len(res.Events) == 0 {
		t.Fatal("no predicted future events")
	}
	if !strings.Contains(res.String(), "Grammy") {
		t.Fatal("String() malformed")
	}
}
