package experiments

// Tail-scale fitting: the paper's Twitter and MemeTracker datasets are wide
// (10,000 hashtags, 1,000 memes) rather than long. This experiment fits a
// large generated tail of bursty hashtags and reports quality and
// throughput, demonstrating that per-sequence cost stays flat as the
// keyword axis grows (the d-axis of Lemma 1).

import (
	"fmt"
	"math"
	"strings"

	"dspot/internal/core"
	"dspot/internal/datagen"
	"dspot/internal/stats"
)

// TailScaleResult summarises a wide-fit run.
type TailScaleResult struct {
	Sequences    int     // hashtags fitted
	MeanNRMSE    float64 // mean RMSE/peak over all fitted series
	WorstNRMSE   float64
	TotalSeconds float64
	PerSequence  float64 // seconds per sequence
	ShockTotal   int     // shocks discovered across the tail
}

func (r TailScaleResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Tail-scale fit — %d hashtags (daily, %d shocks found)\n",
		r.Sequences, r.ShockTotal)
	fmt.Fprintf(&b, "  mean NRMSE %.4f, worst %.4f\n", r.MeanNRMSE, r.WorstNRMSE)
	fmt.Fprintf(&b, "  %.1fs total, %.3fs per sequence\n", r.TotalSeconds, r.PerSequence)
	return b.String()
}

// defaultTailTags is the tail size when the caller does not choose one.
const defaultTailTags = 48

// datagenTwitterShape reports how many sequences a tail of extraTags would
// fit (the two scripted hashtags plus the tail), applying the default.
func datagenTwitterShape(extraTags int) int {
	if extraTags <= 0 {
		extraTags = defaultTailTags
	}
	return extraTags + 2
}

// TailScale generates extraTags random bursty hashtags (plus the two
// scripted ones) and fits every global sequence.
func TailScale(cfg Config, extraTags int) (TailScaleResult, error) {
	if extraTags <= 0 {
		extraTags = defaultTailTags
	}
	truth := datagen.Twitter(extraTags, datagen.Config{
		Locations: cfg.Locations, Seed: cfg.Seed})
	x := truth.Tensor

	opts := cfg.fit()
	opts.CalendarPeriods = []int{7, 30, 365}

	var m *core.Model
	var err error
	secs := timeIt(func() {
		m, err = core.FitGlobal(x, opts)
	})
	if err != nil {
		return TailScaleResult{}, err
	}

	res := TailScaleResult{
		Sequences:    x.D(),
		TotalSeconds: secs,
		PerSequence:  secs / float64(x.D()),
		ShockTotal:   len(m.Shocks),
	}
	nrmses := make([]float64, 0, x.D())
	for i := 0; i < x.D(); i++ {
		obs := x.Global(i)
		peak := stats.Max(obs)
		if peak <= 0 {
			continue
		}
		nrmses = append(nrmses, stats.RMSE(obs, m.SimulateGlobal(i, x.N()))/peak)
	}
	res.MeanNRMSE, res.WorstNRMSE = aggregateNRMSE(nrmses)
	return res, nil
}

// aggregateNRMSE folds per-keyword NRMSE values into (mean, worst),
// skipping NaN entries explicitly — stats.RMSE answers NaN for a
// zero-overlap comparison, and averaging it in would poison the aggregate
// while silently dropping it from the divisor would misweight the rest.
func aggregateNRMSE(nrmses []float64) (mean, worst float64) {
	cnt := 0
	for _, v := range nrmses {
		if math.IsNaN(v) {
			continue
		}
		mean += v
		cnt++
		if v > worst {
			worst = v
		}
	}
	if cnt == 0 {
		return 0, 0
	}
	return mean / float64(cnt), worst
}
