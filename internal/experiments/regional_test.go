package experiments

import (
	"strings"
	"testing"

	"dspot/internal/world"
)

func TestRegionalHarryPotter(t *testing.T) {
	cfg := Small()
	res, err := Regional(cfg, "harry potter")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Reactions) != len(world.Regions()) {
		t.Fatalf("%d regions, want %d", len(res.Reactions), len(world.Regions()))
	}
	byRegion := map[world.Region]RegionReaction{}
	for _, r := range res.Reactions {
		byRegion[r.Region] = r
	}
	// The English-affine regions must react at the top level.
	na := byRegion[world.NorthAmerica]
	oc := byRegion[world.Oceania]
	if na.Level < 0.5 && oc.Level < 0.5 {
		t.Fatalf("English-affine regions under-react: NA %.2f, Oceania %.2f",
			na.Level, oc.Level)
	}
	// Regional fits must be sane.
	for _, r := range res.Reactions {
		if r.NRMSE > 0.35 {
			t.Fatalf("region %s fit NRMSE %.3f", r.Region, r.NRMSE)
		}
		if r.Level < 0 || r.Level > 1 {
			t.Fatalf("region %s level %g out of range", r.Region, r.Level)
		}
	}
	if !strings.Contains(res.String(), "Regional reaction") {
		t.Fatal("String() malformed")
	}
}

func TestRegionalUnknownKeyword(t *testing.T) {
	if _, err := Regional(Small(), "nope"); err == nil {
		t.Fatal("unknown keyword accepted")
	}
}
