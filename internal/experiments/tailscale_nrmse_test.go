package experiments

import (
	"math"
	"testing"
)

// The tail-scale aggregation must skip NaN per-keyword NRMSEs (stats.RMSE's
// zero-overlap verdict) instead of poisoning the mean, and must divide by
// the number of values actually aggregated.
func TestAggregateNRMSESkipsNaN(t *testing.T) {
	mean, worst := aggregateNRMSE([]float64{0.2, math.NaN(), 0.4})
	if math.Abs(mean-0.3) > 1e-12 {
		t.Fatalf("mean = %g, want 0.3 (NaN skipped, divisor 2)", mean)
	}
	if worst != 0.4 {
		t.Fatalf("worst = %g, want 0.4", worst)
	}

	mean, worst = aggregateNRMSE([]float64{math.NaN()})
	if mean != 0 || worst != 0 {
		t.Fatalf("all-NaN aggregate = (%g, %g), want (0, 0)", mean, worst)
	}

	mean, worst = aggregateNRMSE(nil)
	if mean != 0 || worst != 0 {
		t.Fatalf("empty aggregate = (%g, %g), want (0, 0)", mean, worst)
	}
}
