package experiments

import (
	"fmt"
	"sort"
	"strings"

	"dspot/internal/core"
	"dspot/internal/datagen"
	"dspot/internal/stats"
)

// CountryReaction is one row of a "world-wide reaction" map: the reaction
// level of a country to a particular shock occurrence.
type CountryReaction struct {
	Code  string
	Level float64
}

// Fig1Result reproduces Fig. 1: the "Harry Potter" global fit with its
// detected cyclic/non-cyclic events, and the world-wide reaction to the
// franchise-finale occurrence.
type Fig1Result struct {
	Fit      FitReport
	Obs, Est []float64
	Reaction []CountryReaction // sorted by descending level
}

func (r Fig1Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 1 — %s\n", r.Fit)
	for _, e := range r.Fit.Events {
		fmt.Fprintf(&b, "  event: %s\n", e)
	}
	top := r.Reaction
	if len(top) > 10 {
		top = top[:10]
	}
	fmt.Fprintf(&b, "  top reacting countries:")
	for _, c := range top {
		fmt.Fprintf(&b, " %s=%.2f", c.Code, c.Level)
	}
	fmt.Fprintln(&b)
	return b.String()
}

// Fig1 runs the Harry Potter experiment.
func Fig1(cfg Config) (Fig1Result, error) {
	truth, err := datagen.GoogleTrendsKeyword("harry potter", cfg.gen())
	if err != nil {
		return Fig1Result{}, err
	}
	x := truth.Tensor
	m, err := core.Fit(x, cfg.fit())
	if err != nil {
		return Fig1Result{}, err
	}
	obs := x.Global(0)
	res := Fig1Result{
		Fit: reportFor(m, 0, obs, truth),
		Obs: obs,
		Est: m.SimulateGlobal(0, m.Ticks),
	}
	res.Reaction = reactionMap(m, x.Locations, lastStrongOccurrence(m))
	return res, nil
}

// lastStrongOccurrence picks the (shock, occurrence) with the largest
// global strength among the latest occurrences — e.g., the series finale.
func lastStrongOccurrence(m *core.Model) [2]int {
	best := [2]int{-1, -1}
	bestVal := -1.0
	for si, s := range m.Shocks {
		for occ, v := range s.Strength {
			if v > bestVal {
				bestVal = v
				best = [2]int{si, occ}
			}
		}
	}
	return best
}

// reactionMap extracts the per-country participation levels of one shock
// occurrence, normalised to [0, 1].
func reactionMap(m *core.Model, codes []string, pick [2]int) []CountryReaction {
	si, occ := pick[0], pick[1]
	if si < 0 || si >= len(m.Shocks) {
		return nil
	}
	s := m.Shocks[si]
	if s.Local == nil || occ >= len(s.Local) {
		return nil
	}
	row := s.Local[occ]
	max := 0.0
	for _, v := range row {
		if v > max {
			max = v
		}
	}
	out := make([]CountryReaction, 0, len(row))
	for j, v := range row {
		level := 0.0
		if max > 0 {
			level = v / max
		}
		out = append(out, CountryReaction{Code: codes[j], Level: level})
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Level != out[b].Level {
			return out[a].Level > out[b].Level
		}
		return out[a].Code < out[b].Code
	})
	return out
}

// Fig4Result reproduces Fig. 4: the "Amazon" ablation of growth and shock
// effects. RMSE per variant; the full model must win and the recovered
// growth onset should sit near the scripted tick (343 in the paper's
// footnote for the real data; the generator scripts the same).
type Fig4Result struct {
	RMSENone       float64
	RMSEGrowthOnly float64
	RMSEShockOnly  float64
	RMSEBoth       float64
	GrowthAt       int // recovered onset in the full model (-1 if none)
	Peak           float64
}

func (r Fig4Result) String() string {
	return fmt.Sprintf(
		"Fig 4 — Amazon ablation (peak %.1f)\n"+
			"  (a) no growth, no shocks : RMSE=%.3f\n"+
			"  (b) growth only          : RMSE=%.3f\n"+
			"  (c) shocks only          : RMSE=%.3f\n"+
			"  (d) growth + shocks      : RMSE=%.3f (growth onset t=%d)\n",
		r.Peak, r.RMSENone, r.RMSEGrowthOnly, r.RMSEShockOnly, r.RMSEBoth, r.GrowthAt)
}

// Fig4 runs the ablation on the Amazon global sequence. The scripted growth
// onset sits deep in the window (tick 343, per the paper's footnote), so the
// experiment always uses the dataset's natural duration.
func Fig4(cfg Config) (Fig4Result, error) {
	gen := cfg.gen()
	gen.Ticks = 0
	truth, err := datagen.GoogleTrendsKeyword("amazon", gen)
	if err != nil {
		return Fig4Result{}, err
	}
	obs := truth.Tensor.Global(0)
	n := len(obs)

	variants := []struct {
		name string
		opts core.FitOptions
	}{
		{"none", core.FitOptions{DisableGrowth: true, DisableShocks: true}},
		{"growth", core.FitOptions{DisableShocks: true}},
		{"shock", core.FitOptions{DisableGrowth: true}},
		{"both", core.FitOptions{}},
	}
	res := Fig4Result{Peak: stats.Max(obs)}
	for _, v := range variants {
		v.opts.Workers = cfg.Workers
		v.opts.Progress = cfg.Progress
		fit, err := core.FitGlobalSequence(obs, 0, v.opts)
		if err != nil {
			return Fig4Result{}, fmt.Errorf("variant %s: %w", v.name, err)
		}
		m := &core.Model{Keywords: []string{"amazon"}, Ticks: n,
			Global: []core.KeywordParams{fit.Params}, Shocks: fit.Shocks}
		rmse := stats.RMSE(obs, m.SimulateGlobal(0, n))
		switch v.name {
		case "none":
			res.RMSENone = rmse
		case "growth":
			res.RMSEGrowthOnly = rmse
		case "shock":
			res.RMSEShockOnly = rmse
		case "both":
			res.RMSEBoth = rmse
			res.GrowthAt = fit.Params.TEta
		}
	}
	return res, nil
}

// Fig5Result reproduces Fig. 5: global fits for the eight trending keywords.
type Fig5Result struct {
	Reports []FitReport
}

func (r Fig5Result) String() string {
	var b strings.Builder
	fmt.Fprintln(&b, "Fig 5 — GoogleTrends global fits (8 keywords)")
	for _, rep := range r.Reports {
		fmt.Fprintf(&b, "  %s\n", rep)
	}
	return b.String()
}

// Fig5 fits all eight scripted keywords at the global level.
func Fig5(cfg Config) (Fig5Result, error) {
	truth := datagen.GoogleTrends(cfg.gen())
	x := truth.Tensor
	m, err := core.FitGlobal(x, cfg.fit())
	if err != nil {
		return Fig5Result{}, err
	}
	var res Fig5Result
	for i := range x.Keywords {
		res.Reports = append(res.Reports, reportFor(m, i, x.Global(i), truth))
	}
	return res, nil
}

// Fig6Result reproduces Fig. 6: Twitter hashtag fits.
type Fig6Result struct {
	Reports []FitReport
}

func (r Fig6Result) String() string {
	var b strings.Builder
	fmt.Fprintln(&b, "Fig 6 — Twitter hashtag fits")
	for _, rep := range r.Reports {
		fmt.Fprintf(&b, "  %s\n", rep)
	}
	return b.String()
}

// Fig6 fits the two scripted hashtags (#apple, #backtoschool).
func Fig6(cfg Config) (Fig6Result, error) {
	truth := datagen.Twitter(0, datagen.Config{Locations: cfg.Locations, Seed: cfg.Seed})
	x := truth.Tensor
	opts := cfg.fit()
	// Daily resolution: weekly calendar periods do not apply.
	opts.CalendarPeriods = []int{7, 30, 365}
	m, err := core.FitGlobal(x, opts)
	if err != nil {
		return Fig6Result{}, err
	}
	var res Fig6Result
	for i := range x.Keywords {
		res.Reports = append(res.Reports, reportFor(m, i, x.Global(i), truth))
	}
	return res, nil
}

// Fig7Result reproduces Fig. 7: MemeTracker phrase fits.
type Fig7Result struct {
	Reports []FitReport
}

func (r Fig7Result) String() string {
	var b strings.Builder
	fmt.Fprintln(&b, "Fig 7 — MemeTracker meme fits")
	for _, rep := range r.Reports {
		fmt.Fprintf(&b, "  %s\n", rep)
	}
	return b.String()
}

// Fig7 fits the two scripted memes.
func Fig7(cfg Config) (Fig7Result, error) {
	truth := datagen.MemeTracker(0, datagen.Config{Locations: cfg.Locations, Seed: cfg.Seed})
	x := truth.Tensor
	opts := cfg.fit()
	opts.CalendarPeriods = []int{7, 30}
	m, err := core.FitGlobal(x, opts)
	if err != nil {
		return Fig7Result{}, err
	}
	var res Fig7Result
	for i := range x.Keywords {
		res.Reports = append(res.Reports, reportFor(m, i, x.Global(i), truth))
	}
	return res, nil
}

// Fig8Result reproduces Fig. 8: Ebola local analysis — countries behaving
// like the global trend versus low-connectivity outliers, plus the reaction
// map of the 2014 burst.
type Fig8Result struct {
	Fit       FitReport
	Similar   []string // countries tracking the global burst
	Outliers  []string // countries that did not react
	Reaction  []CountryReaction
	LocalRMSE map[string]float64 // per-country local fit RMSE / local peak
}

func (r Fig8Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 8 — Ebola local analysis: %s\n", r.Fit)
	fmt.Fprintf(&b, "  similar to global trend: %s\n", strings.Join(r.Similar, " "))
	fmt.Fprintf(&b, "  outliers (no reaction) : %s\n", strings.Join(r.Outliers, " "))
	return b.String()
}

// fig8Reference lists the countries the paper's Fig. 8 discusses by name:
// the global-trend followers (AU, RU, GB, US, JP) and the low-connectivity
// outliers (LA, NP, CG). The experiment always includes them, whatever the
// configured location budget.
var fig8Reference = []string{"AU", "RU", "GB", "US", "JP", "LA", "NP", "CG"}

// Fig8 runs the Ebola local experiment.
func Fig8(cfg Config) (Fig8Result, error) {
	// Generate at full registry width, then slice to the configured budget
	// plus the paper's reference countries — a pure top-by-weight slice
	// would drop the scripted outliers.
	gen := cfg.gen()
	gen.Locations = 0
	gen.Ticks = 0 // the scripted 2014 burst needs the natural duration
	truth, err := datagen.GoogleTrendsKeyword("ebola", gen)
	if err != nil {
		return Fig8Result{}, err
	}
	x := truth.Tensor
	keep := make([]int, 0, cfg.Locations+len(fig8Reference))
	seen := map[int]bool{}
	for j := 0; j < cfg.Locations && j < x.L(); j++ {
		keep = append(keep, j)
		seen[j] = true
	}
	for _, code := range fig8Reference {
		if j, err := x.LocationIndex(code); err == nil && !seen[j] {
			keep = append(keep, j)
			seen[j] = true
		}
	}
	x, err = x.SliceLocations(keep)
	if err != nil {
		return Fig8Result{}, err
	}

	m, err := core.Fit(x, cfg.fit())
	if err != nil {
		return Fig8Result{}, err
	}
	res := Fig8Result{
		Fit:       reportFor(m, 0, x.Global(0), truth),
		LocalRMSE: map[string]float64{},
	}
	res.Reaction = reactionMapAll(m, x.Locations, 0)

	// Classify: a country is "similar" when it participates in the keyword's
	// shocks at a noticeable level; an outlier participates at ~zero despite
	// having observations.
	for _, cr := range res.Reaction {
		j, err := x.LocationIndex(cr.Code)
		if err != nil {
			continue
		}
		est := m.SimulateLocal(0, j, m.Ticks)
		obs := x.Local(0, j)
		peak := stats.Max(obs)
		if peak > 0 {
			res.LocalRMSE[cr.Code] = stats.RMSE(obs, est) / peak
		}
		if cr.Level > 0.1 {
			res.Similar = append(res.Similar, cr.Code)
		} else if stats.Max(obs) > 0 {
			res.Outliers = append(res.Outliers, cr.Code)
		}
	}
	return res, nil
}

// reactionMapAll aggregates each country's participation over every shock
// occurrence of the keyword (max local strength), normalised to [0, 1].
// More robust than a single-occurrence map when strengths saturate.
func reactionMapAll(m *core.Model, codes []string, keyword int) []CountryReaction {
	levels := make([]float64, len(codes))
	for _, s := range m.Shocks {
		if s.Keyword != keyword || s.Local == nil {
			continue
		}
		for _, row := range s.Local {
			for j, v := range row {
				if j < len(levels) && v > levels[j] {
					levels[j] = v
				}
			}
		}
	}
	max := 0.0
	for _, v := range levels {
		if v > max {
			max = v
		}
	}
	out := make([]CountryReaction, 0, len(codes))
	for j, code := range codes {
		level := 0.0
		if max > 0 {
			level = levels[j] / max
		}
		out = append(out, CountryReaction{Code: code, Level: level})
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Level != out[b].Level {
			return out[a].Level > out[b].Level
		}
		return out[a].Code < out[b].Code
	})
	return out
}
