package experiments

import (
	"strings"
	"testing"

	"dspot/internal/core"
	"dspot/internal/datagen"
)

func TestRobustnessCleanDataRecovers(t *testing.T) {
	cfg := Small()
	res, err := Robustness(cfg, []float64{0}, []float64{0.02})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Missing) != 1 || len(res.Noise) != 1 {
		t.Fatalf("sweep sizes %d/%d", len(res.Missing), len(res.Noise))
	}
	clean := res.Missing[0].Score
	if !clean.PeriodFound {
		t.Fatal("annual period not recovered on clean data")
	}
	if clean.PhaseError > 4 {
		t.Fatalf("phase error %d on clean data", clean.PhaseError)
	}
	if clean.NRMSE > 0.1 {
		t.Fatalf("clean NRMSE %.3f", clean.NRMSE)
	}
	if !strings.Contains(res.String(), "Robustness") {
		t.Fatal("String() malformed")
	}
}

func TestRobustnessDegradesGracefullyWithMissing(t *testing.T) {
	cfg := Small()
	res, err := Robustness(cfg, []float64{0, 0.3}, []float64{0.02})
	if err != nil {
		t.Fatal(err)
	}
	// 30% missing should still recover the annual cycle.
	if !res.Missing[1].Score.PeriodFound {
		t.Fatal("annual period lost at 30% missing data")
	}
}

func TestRobustnessNoiseSweepMonotonicity(t *testing.T) {
	cfg := Small()
	res, err := Robustness(cfg, []float64{0}, []float64{0.01, 0.2})
	if err != nil {
		t.Fatal(err)
	}
	quiet, loud := res.Noise[0].Score, res.Noise[1].Score
	// Fit quality degrades as noise grows, but never catastrophically
	// relative to the noise floor itself.
	if loud.NRMSE < quiet.NRMSE {
		t.Fatalf("noisier data fitted better than quiet: %.3f vs %.3f",
			loud.NRMSE, quiet.NRMSE)
	}
	if !quiet.PeriodFound {
		t.Fatal("annual period not recovered at low noise")
	}
}

func TestScoreRecoveryNoScriptedStructure(t *testing.T) {
	spec := datagen.KeywordSpec{Name: "flat"}
	params := core.KeywordParams{N: 1, TEta: core.NoGrowth}
	obs := make([]float64, 50)
	score := scoreRecovery(spec, params, nil, obs, 50)
	if !score.PeriodFound || !score.GrowthFound {
		t.Fatal("vacuous recovery should pass")
	}
	if score.PhaseError != -1 || score.GrowthError != -1 {
		t.Fatal("inapplicable errors should be -1")
	}
}

func TestScoreRecoveryGrowth(t *testing.T) {
	spec := datagen.KeywordSpec{
		Name:   "g",
		Growth: &datagen.GrowthSpec{Start: 100, Rate: 0.3},
	}
	params := core.KeywordParams{N: 1, TEta: 110, Eta0: 0.25}
	obs := make([]float64, 200)
	score := scoreRecovery(spec, params, nil, obs, 200)
	if !score.GrowthFound || score.GrowthError != 10 {
		t.Fatalf("growth score %+v", score)
	}
	// Missing growth.
	params = core.KeywordParams{N: 1, TEta: core.NoGrowth}
	score = scoreRecovery(spec, params, nil, obs, 200)
	if score.GrowthFound {
		t.Fatal("missing growth should not score as found")
	}
}

func TestScoreRecoveryPhaseWraps(t *testing.T) {
	spec := datagen.KeywordSpec{
		Name: "p",
		Events: []datagen.EventSpec{
			{Period: 52, Start: 2, Width: 2, Strength: 5},
		},
	}
	shocks := []core.Shock{{Keyword: 0, Period: 52, Start: 52, Width: 2,
		Strength: []float64{5, 5}}}
	params := core.KeywordParams{N: 1, TEta: core.NoGrowth}
	obs := make([]float64, 200)
	score := scoreRecovery(spec, params, shocks, obs, 200)
	if !score.PeriodFound {
		t.Fatal("period should be found")
	}
	// Phase 0 vs scripted phase 2 → error 2 (not 50).
	if score.PhaseError != 2 {
		t.Fatalf("wrapped phase error = %d, want 2", score.PhaseError)
	}
}
