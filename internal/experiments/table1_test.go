package experiments

// Table 1 of the paper is a qualitative capability matrix. These tests turn
// each load-bearing cell into an executable claim against this repository's
// implementations, so the README's table is backed by running code rather
// than assertion.

import (
	"testing"

	"dspot/internal/arima"
	"dspot/internal/core"
	"dspot/internal/datagen"
	"dspot/internal/epidemic"
	"dspot/internal/funnel"
	"dspot/internal/stats"
)

// grammySeries returns the annual-cycle series used by several rows.
func grammySeries(t *testing.T) []float64 {
	t.Helper()
	truth, err := datagen.GoogleTrendsKeyword("grammy",
		datagen.Config{Locations: 10, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	return truth.Tensor.Global(0)
}

// Row "Cyclic events/shocks": only Δ-SPOT's shock class carries an explicit
// periodicity; the SIRS/FUNNEL fits cannot represent one.
func TestTable1CyclicEvents(t *testing.T) {
	obs := grammySeries(t)

	fit, err := core.FitGlobalSequence(obs, 0, core.FitOptions{DisableGrowth: true})
	if err != nil {
		t.Fatal(err)
	}
	cyclic := false
	for _, s := range fit.Shocks {
		if s.Period > 0 {
			cyclic = true
		}
	}
	if !cyclic {
		t.Fatal("Δ-SPOT did not represent the annual event as cyclic")
	}

	// FUNNEL detects the spikes but every one of its shocks is one-shot by
	// construction (the type has no periodicity field) — the structural gap
	// Table 1 records.
	fp, err := funnel.Fit(obs, funnel.Options{})
	if err != nil {
		t.Fatal(err)
	}
	_ = fp.Shocks // []funnel.Shock{Start, Width, Strength}: no period field
}

// Row "Non-linear": an AR model is a linear map of its lags, so its
// one-step residual on the non-linear SIV dynamics stays structured, while
// the non-linear models track the curve itself.
func TestTable1NonLinear(t *testing.T) {
	obs := grammySeries(t)
	n := len(obs)

	fit, err := core.FitGlobalSequence(obs, 0, core.FitOptions{DisableGrowth: true})
	if err != nil {
		t.Fatal(err)
	}
	m := &core.Model{Keywords: []string{"g"}, Ticks: n,
		Global: []core.KeywordParams{fit.Params}, Shocks: fit.Shocks}
	dspotCurve := stats.RMSE(obs, m.SimulateGlobal(0, n))

	// AR's *simulated trajectory* (not one-step prediction) collapses to
	// the mean — it has no stable non-linear attractor to follow.
	ar, err := arima.FitAR(obs, 26)
	if err != nil {
		t.Fatal(err)
	}
	arTraj := append(append([]float64(nil), obs[:26]...), ar.Forecast(n-26)...)
	arCurve := stats.RMSE(obs[26:], arTraj[26:])

	if dspotCurve >= arCurve {
		t.Fatalf("non-linear model should track the trajectory better: Δ-SPOT %.3f vs AR %.3f",
			dspotCurve, arCurve)
	}
}

// Row "Forecasting": the SI/SIRS family is incapable of forecasting
// recurring spikes — its trajectory is monotone-to-equilibrium, so the
// future spikes are missed entirely.
func TestTable1ForecastingGap(t *testing.T) {
	obs := grammySeries(t)
	train, test := obs[:400], obs[400:]

	sirs, err := epidemic.Fit(epidemic.SIRS, train)
	if err != nil {
		t.Fatal(err)
	}
	full := sirs.Simulate(len(obs))
	sirsFc := stats.RMSE(test, full[400:])

	fit, err := core.FitGlobalSequence(train, 0, core.FitOptions{DisableGrowth: true})
	if err != nil {
		t.Fatal(err)
	}
	m := &core.Model{Keywords: []string{"g"}, Ticks: 400,
		Global: []core.KeywordParams{fit.Params}, Shocks: fit.Shocks}
	dspotFc := stats.RMSE(test, m.ForecastGlobal(0, len(test)))

	if dspotFc >= sirsFc {
		t.Fatalf("Δ-SPOT forecast (%.3f) should beat SIRS extrapolation (%.3f)",
			dspotFc, sirsFc)
	}
}

// Row "Parameter-free": the full pipeline runs with a zero Options value —
// no orders, periods, thresholds, or counts to choose.
func TestTable1ParameterFree(t *testing.T) {
	obs := grammySeries(t)
	if _, err := core.FitGlobalSequence(obs, 0, core.FitOptions{}); err != nil {
		t.Fatal(err)
	}
	// AR, by contrast, requires a regression order (compile-time evidence:
	// the signature demands it).
	if _, err := arima.FitAR(obs, 26); err != nil {
		t.Fatal(err)
	}
}

// Row "Local analysis": Δ-SPOT and FUNNEL have location-level machinery;
// Δ-SPOT's is per-event (participation), FUNNEL's is a scale.
func TestTable1LocalAnalysis(t *testing.T) {
	truth, err := datagen.GoogleTrendsKeyword("grammy",
		datagen.Config{Locations: 6, Ticks: 200, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	x := truth.Tensor
	m, err := core.Fit(x, core.FitOptions{DisableGrowth: true, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if m.LocalN == nil {
		t.Fatal("Δ-SPOT local matrices missing")
	}
	global, err := funnel.Fit(x.Global(0), funnel.Options{})
	if err != nil {
		t.Fatal(err)
	}
	locals := make([][]float64, x.L())
	for j := range locals {
		locals[j] = x.Local(0, j)
	}
	if scales := funnel.FitLocal(global, locals); len(scales) != x.L() {
		t.Fatal("FUNNEL local scales missing")
	}
}

// Row "Outliers detection": the fitted model flags injected anomalies.
func TestTable1OutlierDetection(t *testing.T) {
	obs := grammySeries(t)
	fit, err := core.FitGlobalSequence(obs, 0, core.FitOptions{DisableGrowth: true})
	if err != nil {
		t.Fatal(err)
	}
	m := &core.Model{Keywords: []string{"g"}, Ticks: len(obs),
		Global: []core.KeywordParams{fit.Params}, Shocks: fit.Shocks}
	corrupted := append([]float64(nil), obs...)
	corrupted[300] += stats.Max(obs)
	found := false
	for _, a := range m.AnomaliesGlobal(0, corrupted, 3) {
		if a.Tick == 300 {
			found = true
		}
	}
	if !found {
		t.Fatal("injected outlier not detected")
	}
}
