package experiments

// Ablations of Δ-SPOT's design choices beyond the paper's own Fig. 4
// (growth/shock ablation). DESIGN.md calls out three decisions the fitter
// depends on; each gets a measurable study:
//
//   - the cyclic shock class (AblationCycles): restricted to one-shot
//     shocks, the model needs many more parameters to cover a periodic
//     series and loses the ability to forecast future occurrences;
//   - the MDL acceptance gate (AblationMDL): accepting every candidate
//     shock overfits — training error shrinks but held-out error grows;
//   - multi-layer fitting (AblationLocal): fitting locals as scaled copies
//     of the global curve (FUNNEL-style) misses area-specific structure.

import (
	"fmt"
	"strings"

	"dspot/internal/core"
	"dspot/internal/datagen"
	"dspot/internal/funnel"
	"dspot/internal/stats"
)

// AblationCyclesResult compares the full model against a cycles-disabled
// variant on a strongly periodic series.
type AblationCyclesResult struct {
	FullShocks     int     // shocks discovered with the cyclic class
	NoCycShocks    int     // shocks discovered without it
	FullFitRMSE    float64 // training fit
	NoCycFitRMSE   float64
	FullFcstRMSE   float64 // forecast of the held-out tail
	NoCycFcstRMSE  float64
	FlatFcstRMSE   float64
	FullpredEvents int // predicted future occurrences (no-cycles is always 0)
}

func (r AblationCyclesResult) String() string {
	return fmt.Sprintf(
		"Ablation: cyclic shock class (grammy, train/test split)\n"+
			"  full model : %d shocks, fit RMSE %.3f, forecast RMSE %.3f, %d predicted events\n"+
			"  no cycles  : %d shocks, fit RMSE %.3f, forecast RMSE %.3f, 0 predicted events\n"+
			"  flat mean  : forecast RMSE %.3f\n",
		r.FullShocks, r.FullFitRMSE, r.FullFcstRMSE, r.FullpredEvents,
		r.NoCycShocks, r.NoCycFitRMSE, r.NoCycFcstRMSE, r.FlatFcstRMSE)
}

// AblationCycles runs the cyclic-class ablation on the Grammy series.
func AblationCycles(cfg Config, trainTicks int) (AblationCyclesResult, error) {
	gen := cfg.gen()
	gen.Ticks = 0
	truth, err := datagen.GoogleTrendsKeyword("grammy", gen)
	if err != nil {
		return AblationCyclesResult{}, err
	}
	obs := truth.Tensor.Global(0)
	if trainTicks <= 0 || trainTicks >= len(obs)-52 {
		trainTicks = 400
	}
	train, test := obs[:trainTicks], obs[trainTicks:]

	res := AblationCyclesResult{FlatFcstRMSE: flatRMSE(train, test)}

	fullOpts := cfg.fit()
	full, err := core.FitGlobalSequence(train, 0, fullOpts)
	if err != nil {
		return res, err
	}
	fm := &core.Model{Keywords: []string{"grammy"}, Ticks: trainTicks,
		Global: []core.KeywordParams{full.Params}, Shocks: full.Shocks}
	res.FullShocks = len(full.Shocks)
	res.FullFitRMSE = stats.RMSE(train, fm.SimulateGlobal(0, trainTicks))
	res.FullFcstRMSE = stats.RMSE(test, fm.ForecastGlobal(0, len(test)))
	res.FullpredEvents = len(fm.PredictedEvents(0, len(test)))

	nocOpts := cfg.fit()
	nocOpts.DisableCycles = true
	noc, err := core.FitGlobalSequence(train, 0, nocOpts)
	if err != nil {
		return res, err
	}
	nm := &core.Model{Keywords: []string{"grammy"}, Ticks: trainTicks,
		Global: []core.KeywordParams{noc.Params}, Shocks: noc.Shocks}
	res.NoCycShocks = len(noc.Shocks)
	res.NoCycFitRMSE = stats.RMSE(train, nm.SimulateGlobal(0, trainTicks))
	res.NoCycFcstRMSE = stats.RMSE(test, nm.ForecastGlobal(0, len(test)))
	return res, nil
}

// AblationMDLResult compares MDL-gated shock acceptance against accepting
// every candidate, measured on a train/holdout split of a noisy series.
type AblationMDLResult struct {
	GatedShocks    int
	UngatedShocks  int
	GatedTrainFit  float64
	UngatedTrain   float64
	GatedHoldout   float64 // one-step-style holdout: fit on train, simulate through holdout window
	UngatedHoldout float64
}

func (r AblationMDLResult) String() string {
	return fmt.Sprintf(
		"Ablation: MDL acceptance gate (noisy amazon series)\n"+
			"  gated   : %d shocks, train RMSE %.3f, holdout RMSE %.3f\n"+
			"  ungated : %d shocks, train RMSE %.3f, holdout RMSE %.3f\n",
		r.GatedShocks, r.GatedTrainFit, r.GatedHoldout,
		r.UngatedShocks, r.UngatedTrain, r.UngatedHoldout)
}

// AblationMDL runs the MDL-gate ablation: the ungated fitter is free to
// spend up to MaxShocks shocks on noise.
func AblationMDL(cfg Config) (AblationMDLResult, error) {
	gen := cfg.gen()
	gen.Ticks = 0
	gen.Noise = 0.08 // noisy regime: plenty of spurious residual peaks
	truth, err := datagen.GoogleTrendsKeyword("amazon", gen)
	if err != nil {
		return AblationMDLResult{}, err
	}
	obs := truth.Tensor.Global(0)
	split := len(obs) * 7 / 10
	train, holdout := obs[:split], obs[split:]

	res := AblationMDLResult{}
	fit := func(acceptAll bool) (int, float64, float64, error) {
		opts := cfg.fit()
		opts.AcceptAllShocks, opts.DisableGrowth = acceptAll, true
		r, err := core.FitGlobalSequence(train, 0, opts)
		if err != nil {
			return 0, 0, 0, err
		}
		m := &core.Model{Keywords: []string{"amazon"}, Ticks: split,
			Global: []core.KeywordParams{r.Params}, Shocks: r.Shocks}
		trainRMSE := stats.RMSE(train, m.SimulateGlobal(0, split))
		holdRMSE := stats.RMSE(holdout, m.ForecastGlobal(0, len(holdout)))
		return len(r.Shocks), trainRMSE, holdRMSE, nil
	}
	var err2 error
	if res.GatedShocks, res.GatedTrainFit, res.GatedHoldout, err2 = fit(false); err2 != nil {
		return res, err2
	}
	if res.UngatedShocks, res.UngatedTrain, res.UngatedHoldout, err2 = fit(true); err2 != nil {
		return res, err2
	}
	return res, nil
}

// AblationLocalResult compares Δ-SPOT's LocalFit against FUNNEL-style
// scaled-copy locals on a world with area-specific shock participation.
// The comparison is split: participants (countries that react to the
// scripted burst) versus the scripted outliers, because the outlier series
// are near-noise and a method can "win" there just by underfitting
// globally.
type AblationLocalResult struct {
	DSPOTLocalRMSE    float64 // mean normalised local RMSE, all locations
	ScaledCopyRMSE    float64
	DSPOTPartRMSE     float64 // mean over burst participants only
	ScaledPartRMSE    float64
	DSPOTOutlierRMSE  float64 // mean over the scripted outliers
	ScaledOutlierRMSE float64
	OutlierDetected   bool // did LocalFit zero the outliers' participation?
}

func (r AblationLocalResult) String() string {
	return fmt.Sprintf(
		"Ablation: multi-layer LocalFit vs scaled-copy locals (ebola world)\n"+
			"  Δ-SPOT LocalFit : local RMSE %.4f (participants %.4f, outliers %.4f; detected: %v)\n"+
			"  scaled copies   : local RMSE %.4f (participants %.4f, outliers %.4f)\n",
		r.DSPOTLocalRMSE, r.DSPOTPartRMSE, r.DSPOTOutlierRMSE, r.OutlierDetected,
		r.ScaledCopyRMSE, r.ScaledPartRMSE, r.ScaledOutlierRMSE)
}

// ablationOutliers are the non-participating countries in the ablation
// world: the paper's low-connectivity trio plus Japan — a heavyweight
// outlier added so the RMSE comparison is measured on a series with real
// signal, not noise (the scripted trio have tiny volumes).
var ablationOutliers = []string{"JP", "LA", "NP", "CG"}

// AblationLocal runs the local-structure ablation on an Ebola-like world
// with one heavyweight non-participating country (Japan). A scaled copy of
// the global curve is structurally wrong for an outlier — it must either
// paint a burst onto a country that had none or under-scale its baseline —
// whereas LocalFit can zero the per-event participation. On the
// participants the locals are near-proportional copies by construction, so
// least-squares scaling is the right model class there and that comparison
// is reported but not asserted.
func AblationLocal(cfg Config) (AblationLocalResult, error) {
	spec := datagen.KeywordSpec{
		Name: "outbreak", Volume: 75,
		Beta: 0.53, Delta: 0.5, Gamma: 0.4, I0: 0.005,
		Events: []datagen.EventSpec{
			{Name: "burst", Period: 0, Start: 450, Width: 6, Strength: 14,
				Skip: ablationOutliers},
			{Name: "echo", Period: 0, Start: 458, Width: 2, Strength: 8,
				Skip: ablationOutliers},
		},
	}
	gen := cfg.gen()
	gen.Locations = 0
	gen.Ticks = 0
	truth := datagen.Custom([]datagen.KeywordSpec{spec}, gen)
	x := truth.Tensor
	// Budgeted slice that keeps every outlier.
	keep := []int{}
	seen := map[int]bool{}
	limit := cfg.Locations
	if limit <= 0 || limit > x.L() {
		limit = x.L()
	}
	for j := 0; j < limit; j++ {
		keep = append(keep, j)
		seen[j] = true
	}
	for _, code := range ablationOutliers {
		if j, err := x.LocationIndex(code); err == nil && !seen[j] {
			keep = append(keep, j)
			seen[j] = true
		}
	}
	x, err := x.SliceLocations(keep)
	if err != nil {
		return AblationLocalResult{}, err
	}

	m, err := core.Fit(x, cfg.fit())
	if err != nil {
		return AblationLocalResult{}, err
	}

	obs := x.Global(0)
	fGlobal, err := funnel.Fit(obs, funnel.Options{})
	if err != nil {
		return AblationLocalResult{}, err
	}
	locals := make([][]float64, x.L())
	for j := range locals {
		locals[j] = x.Local(0, j)
	}
	scales := funnel.FitLocal(fGlobal, locals)

	res := AblationLocalResult{}
	n := x.N()
	isOutlier := map[string]bool{}
	for _, code := range ablationOutliers {
		isOutlier[code] = true
	}
	count, partCount, outCount := 0, 0, 0
	for j := 0; j < x.L(); j++ {
		peak := stats.Max(locals[j])
		if peak <= 0 {
			continue
		}
		ds := stats.RMSE(locals[j], m.SimulateLocal(0, j, n)) / peak
		sc := stats.RMSE(locals[j], funnel.SimulateLocal(fGlobal, scales[j], n)) / peak
		res.DSPOTLocalRMSE += ds
		res.ScaledCopyRMSE += sc
		count++
		if isOutlier[x.Locations[j]] {
			res.DSPOTOutlierRMSE += ds
			res.ScaledOutlierRMSE += sc
			outCount++
		} else {
			res.DSPOTPartRMSE += ds
			res.ScaledPartRMSE += sc
			partCount++
		}
	}
	if count > 0 {
		res.DSPOTLocalRMSE /= float64(count)
		res.ScaledCopyRMSE /= float64(count)
	}
	if partCount > 0 {
		res.DSPOTPartRMSE /= float64(partCount)
		res.ScaledPartRMSE /= float64(partCount)
	}
	if outCount > 0 {
		res.DSPOTOutlierRMSE /= float64(outCount)
		res.ScaledOutlierRMSE /= float64(outCount)
	}

	// Outlier check: every scripted outlier's maximum participation must be
	// (near) zero in the fitted shock tensor.
	res.OutlierDetected = true
	for _, code := range ablationOutliers {
		j, err := x.LocationIndex(code)
		if err != nil {
			continue
		}
		level := 0.0
		for _, s := range m.ShocksFor(0) {
			if s.Local == nil {
				continue
			}
			for _, row := range s.Local {
				if row[j] > level {
					level = row[j]
				}
			}
		}
		if level > 0.5 {
			res.OutlierDetected = false
		}
	}
	return res, nil
}

// Ablations runs all three studies and concatenates their reports.
func Ablations(cfg Config) (string, error) {
	var b strings.Builder
	cyc, err := AblationCycles(cfg, 0)
	if err != nil {
		return "", err
	}
	b.WriteString(cyc.String())
	mdl, err := AblationMDL(cfg)
	if err != nil {
		return "", err
	}
	b.WriteString(mdl.String())
	loc, err := AblationLocal(cfg)
	if err != nil {
		return "", err
	}
	b.WriteString(loc.String())
	return b.String(), nil
}
