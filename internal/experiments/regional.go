package experiments

// Regional rollups: the paper renders world maps (Figs. 1b, 8b); a regional
// summary is the tabular equivalent. The tensor is aggregated into the
// seven world regions, Δ-SPOT is fitted on the regional axis, and the
// per-region event participation becomes a compact reaction table.

import (
	"fmt"
	"strings"

	"dspot/internal/core"
	"dspot/internal/datagen"
	"dspot/internal/stats"
	"dspot/internal/world"
)

// RegionReaction is one region's row.
type RegionReaction struct {
	Region world.Region
	Level  float64 // normalised participation in the keyword's events
	NRMSE  float64 // regional fit quality
}

// RegionalResult is the rollup for one keyword.
type RegionalResult struct {
	Keyword   string
	Reactions []RegionReaction // in Regions() display order
}

func (r RegionalResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Regional reaction — %s\n", r.Keyword)
	for _, row := range r.Reactions {
		bar := strings.Repeat("#", int(row.Level*30+0.5))
		fmt.Fprintf(&b, "  %-14s %5.2f %s\n", row.Region, row.Level, bar)
	}
	return b.String()
}

// Regional aggregates the keyword's world into regions and reports each
// region's participation in the detected events.
func Regional(cfg Config, keyword string) (RegionalResult, error) {
	gen := cfg.gen()
	gen.Locations = 0 // full registry, so regions are fully populated
	gen.Ticks = 0
	truth, err := datagen.GoogleTrendsKeyword(keyword, gen)
	if err != nil {
		return RegionalResult{}, err
	}
	x := truth.Tensor

	groups := world.CodesByRegion()
	names := make([]string, 0, len(groups))
	members := make([][]string, 0, len(groups))
	for _, region := range world.Regions() {
		names = append(names, string(region))
		members = append(members, groups[region])
	}
	rolled, err := x.AggregateLocations(names, members)
	if err != nil {
		return RegionalResult{}, err
	}

	m, err := core.Fit(rolled, cfg.fit())
	if err != nil {
		return RegionalResult{}, err
	}

	levels := make([]float64, rolled.L())
	for _, s := range m.ShocksFor(0) {
		if s.Local == nil {
			continue
		}
		for _, row := range s.Local {
			for j, v := range row {
				if v > levels[j] {
					levels[j] = v
				}
			}
		}
	}
	max := 0.0
	for _, v := range levels {
		if v > max {
			max = v
		}
	}

	res := RegionalResult{Keyword: keyword}
	n := rolled.N()
	for j, region := range world.Regions() {
		obs := rolled.Local(0, j)
		peak := stats.Max(obs)
		nrmse := 0.0
		if peak > 0 {
			nrmse = stats.RMSE(obs, m.SimulateLocal(0, j, n)) / peak
		}
		level := 0.0
		if max > 0 {
			level = levels[j] / max
		}
		res.Reactions = append(res.Reactions, RegionReaction{
			Region: region, Level: level, NRMSE: nrmse,
		})
	}
	return res, nil
}
