package experiments

import (
	"strings"
	"testing"
)

func TestRollingGrammyOnly(t *testing.T) {
	cfg := Small()
	rc := RollingConfig{FirstOrigin: 360, Horizon: 52, Step: 104}
	res, err := Rolling(cfg, rc, []string{"grammy"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Origins < 2 {
		t.Fatalf("only %d origins evaluated", res.Origins)
	}
	ds, ok := res.RMSE["D-SPOT"]
	if !ok {
		t.Fatal("no D-SPOT results")
	}
	flat := res.RMSE["flat"]
	if ds >= flat {
		t.Fatalf("D-SPOT (%.4f) does not beat flat (%.4f) across origins", ds, flat)
	}
	// The cyclic series is where Δ-SPOT's structural forecast must win
	// against the paper's baselines (AR with r < period, TBATS) on average.
	// AR(auto) is deliberately excluded from the must-beat set: with a
	// selected order ≥ the 52-tick period it regresses directly on last
	// year's value and is a genuinely competitive point forecaster — an
	// honest extension finding recorded in EXPERIMENTS.md (it still has no
	// event semantics: no predicted occurrence times/strengths). Δ-SPOT
	// must stay within 1.3× of it.
	for name, v := range res.RMSE {
		if name == "D-SPOT" || name == "flat" || name == "AR(auto)" {
			continue
		}
		if ds > v {
			t.Fatalf("D-SPOT (%.4f) loses to %s (%.4f) on a cyclic series", ds, name, v)
		}
	}
	if auto, ok := res.RMSE["AR(auto)"]; ok && ds > auto*1.5 {
		t.Fatalf("D-SPOT (%.4f) far behind AR(auto) (%.4f)", ds, auto)
	}
	if !strings.Contains(res.String(), "Rolling-origin") {
		t.Fatal("String() malformed")
	}
}

func TestRollingConfigDefaults(t *testing.T) {
	rc := RollingConfig{}.withDefaults(520)
	if rc.Horizon != 52 || rc.FirstOrigin != 312 || rc.Step != 52 {
		t.Fatalf("defaults %+v", rc)
	}
	rc = RollingConfig{Horizon: 10, FirstOrigin: 100, Step: 20}.withDefaults(520)
	if rc.Horizon != 10 || rc.FirstOrigin != 100 || rc.Step != 20 {
		t.Fatalf("overrides lost: %+v", rc)
	}
}

func TestRollingCountsConsistent(t *testing.T) {
	cfg := Small()
	rc := RollingConfig{FirstOrigin: 400, Horizon: 52, Step: 124}
	res, err := Rolling(cfg, rc, []string{"grammy"})
	if err != nil {
		t.Fatal(err)
	}
	flatCount := res.Count["flat"]
	if flatCount == 0 {
		t.Fatal("no flat evaluations")
	}
	for name, c := range res.Count {
		if c > flatCount {
			t.Fatalf("method %s evaluated more often (%d) than flat (%d)", name, c, flatCount)
		}
	}
}
