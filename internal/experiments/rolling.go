package experiments

// Rolling-origin forecast evaluation: the time-series analogue of
// cross-validation. Each method trains on a growing prefix and forecasts a
// fixed horizon; errors are averaged over origins and keywords. This
// extends the paper's single-split Fig. 11 into a statistically steadier
// comparison over every scripted keyword.

import (
	"fmt"
	"strings"

	"dspot/internal/arima"
	"dspot/internal/core"
	"dspot/internal/datagen"
	"dspot/internal/stats"
	"dspot/internal/tbats"
)

// RollingConfig shapes the evaluation.
type RollingConfig struct {
	FirstOrigin int // first training-prefix length (default 60% of series)
	Horizon     int // forecast horizon per origin (default 52)
	Step        int // origin increment (default = Horizon)
}

func (c RollingConfig) withDefaults(n int) RollingConfig {
	if c.Horizon <= 0 {
		c.Horizon = 52
	}
	if c.FirstOrigin <= 0 {
		c.FirstOrigin = n * 6 / 10
	}
	if c.Step <= 0 {
		c.Step = c.Horizon
	}
	return c
}

// RollingResult aggregates forecast RMSE per method, normalised per
// (keyword, origin) by the training peak so keywords contribute comparably.
type RollingResult struct {
	Origins int
	Horizon int
	RMSE    map[string]float64 // method → mean normalised forecast RMSE
	Count   map[string]int     // method → evaluations aggregated
}

func (r RollingResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Rolling-origin forecasting (%d origins, horizon %d; mean RMSE/peak)\n",
		r.Origins, r.Horizon)
	for _, m := range []string{"D-SPOT", "AR(8)", "AR(26)", "AR(50)", "AR(auto)", "TBATS", "flat"} {
		if v, ok := r.RMSE[m]; ok {
			fmt.Fprintf(&b, "  %-9s %.4f  (n=%d)\n", m, v, r.Count[m])
		}
	}
	return b.String()
}

// Rolling runs the evaluation over the given keywords (nil = a bursty
// trio: harry potter, grammy, olympics — the series where cyclic structure
// matters for forecasting).
func Rolling(cfg Config, rc RollingConfig, keywords []string) (RollingResult, error) {
	if keywords == nil {
		keywords = []string{"harry potter", "grammy", "olympics"}
	}
	res := RollingResult{RMSE: map[string]float64{}, Count: map[string]int{}}
	add := func(method string, rmse, peak float64) {
		if peak <= 0 {
			return
		}
		res.RMSE[method] += rmse / peak
		res.Count[method]++
	}

	for _, kw := range keywords {
		gen := cfg.gen()
		gen.Ticks = 0 // rolling needs the full timeline
		truth, err := datagen.GoogleTrendsKeyword(kw, gen)
		if err != nil {
			return res, err
		}
		obs := truth.Tensor.Global(0)
		n := len(obs)
		kc := rc.withDefaults(n)
		if res.Horizon == 0 {
			res.Horizon = kc.Horizon
		}

		origins := 0
		for origin := kc.FirstOrigin; origin+kc.Horizon <= n; origin += kc.Step {
			origins++
			train, test := obs[:origin], obs[origin:origin+kc.Horizon]
			peak := stats.Max(train)

			// Δ-SPOT.
			if fit, err := core.FitGlobalSequence(train, 0, cfg.fit()); err == nil {
				m := &core.Model{Keywords: []string{kw}, Ticks: origin,
					Global: []core.KeywordParams{fit.Params}, Shocks: fit.Shocks}
				add("D-SPOT", stats.RMSE(test, m.ForecastGlobal(0, kc.Horizon)), peak)
			}
			// AR family.
			for _, order := range []int{8, 26, 50} {
				if ar, err := arima.FitAR(train, order); err == nil {
					add(fmt.Sprintf("AR(%d)", order),
						stats.RMSE(test, ar.Forecast(kc.Horizon)), peak)
				}
			}
			if ar, _, err := arima.SelectOrder(train, 60); err == nil {
				add("AR(auto)", stats.RMSE(test, ar.Forecast(kc.Horizon)), peak)
			}
			// TBATS.
			if tb, err := tbats.Fit(train); err == nil {
				add("TBATS", stats.RMSE(test, tb.Forecast(kc.Horizon)), peak)
			}
			// Flat strawman.
			add("flat", flatRMSE(train, test), peak)
		}
		if origins > res.Origins {
			res.Origins = origins
		}
	}
	for method, total := range res.RMSE {
		if res.Count[method] > 0 {
			res.RMSE[method] = total / float64(res.Count[method])
		}
	}
	return res, nil
}
