package experiments

import (
	"fmt"
	"strings"
	"sync"

	"dspot/internal/core"
	"dspot/internal/datagen"
	"dspot/internal/epidemic"
	"dspot/internal/funnel"
	"dspot/internal/stats"
)

// Fig9Result reproduces Fig. 9: fitting RMSE of Δ-SPOT against the SIRS,
// SKIPS, and FUNNEL baselines, at the global level (a) and local level (b).
// RMSE values are normalised per keyword by the sequence peak before
// averaging, so keywords with different volumes contribute comparably
// (the paper reports per-dataset bars; the normalised mean captures the
// same ordering).
type Fig9Result struct {
	Global map[string]float64 // method → mean normalised RMSE over keywords
	Local  map[string]float64 // method → mean normalised RMSE over (keyword, country)
}

func (r Fig9Result) String() string {
	var b strings.Builder
	fmt.Fprintln(&b, "Fig 9 — fitting accuracy (mean RMSE / peak; lower is better)")
	fmt.Fprintln(&b, "  (a) global level:")
	for _, m := range []string{"SIRS", "SKIPS", "FUNNEL", "D-SPOT"} {
		if v, ok := r.Global[m]; ok {
			fmt.Fprintf(&b, "      %-7s %.4f\n", m, v)
		}
	}
	if len(r.Local) > 0 {
		fmt.Fprintln(&b, "  (b) local level:")
		for _, m := range []string{"SIRS", "SKIPS", "FUNNEL", "D-SPOT"} {
			if v, ok := r.Local[m]; ok {
				fmt.Fprintf(&b, "      %-7s %.4f\n", m, v)
			}
		}
	}
	return b.String()
}

// Fig9Global runs the global-level accuracy comparison over the eight
// GoogleTrends keywords.
func Fig9Global(cfg Config) (Fig9Result, error) {
	truth := datagen.GoogleTrends(cfg.gen())
	x := truth.Tensor

	m, err := core.FitGlobal(x, cfg.fit())
	if err != nil {
		return Fig9Result{}, err
	}

	res := Fig9Result{Global: map[string]float64{}}
	counts := map[string]int{}
	add := func(method string, rmse, peak float64) {
		if peak <= 0 {
			return
		}
		res.Global[method] += rmse / peak
		counts[method]++
	}

	for i := range x.Keywords {
		obs := x.Global(i)
		peak := stats.Max(obs)
		n := len(obs)

		add("D-SPOT", stats.RMSE(obs, m.SimulateGlobal(i, n)), peak)

		if p, err := epidemic.Fit(epidemic.SIRS, obs); err == nil {
			add("SIRS", stats.RMSE(obs, p.Simulate(n)), peak)
		}
		if p, err := epidemic.Fit(epidemic.SKIPS, obs); err == nil {
			add("SKIPS", stats.RMSE(obs, p.Simulate(n)), peak)
		}
		if p, err := funnel.Fit(obs, funnel.Options{}); err == nil {
			add("FUNNEL", stats.RMSE(obs, p.Simulate(n)), peak)
		}
	}
	for method, total := range res.Global {
		res.Global[method] = total / float64(counts[method])
	}
	return res, nil
}

// maxLocalPanelLocations caps the location axis of the Fig. 9(b) panel:
// SIRS and SKIPS fit every local sequence from scratch, so the panel's cost
// is dominated by the baselines rather than Δ-SPOT. A deterministic
// top-by-weight subsample preserves the comparison (every method sees the
// same sequences) at tractable cost; the cap is logged in EXPERIMENTS.md.
const maxLocalPanelLocations = 40

// Fig9Local runs the local-level comparison: every method fits each
// (keyword, country) sequence. Δ-SPOT and FUNNEL use their hierarchical
// global→local machinery; SIRS and SKIPS fit each local sequence
// independently (they have no notion of shared structure).
func Fig9Local(cfg Config) (Fig9Result, error) {
	if cfg.Locations <= 0 || cfg.Locations > maxLocalPanelLocations {
		cfg.Locations = maxLocalPanelLocations
	}
	truth := datagen.GoogleTrends(cfg.gen())
	x := truth.Tensor

	m, err := core.Fit(x, cfg.fit())
	if err != nil {
		return Fig9Result{}, err
	}

	res := Fig9Result{Local: map[string]float64{}}
	counts := map[string]int{}

	n := x.N()
	type cell struct {
		rmse map[string]float64 // method → normalised RMSE (absent = failed)
	}
	for i := range x.Keywords {
		obs := x.Global(i)
		// FUNNEL: one global fit per keyword, locals by least-squares scale.
		funnelGlobal, funnelErr := funnel.Fit(obs, funnel.Options{})

		locals := make([][]float64, x.L())
		for j := range locals {
			locals[j] = x.Local(i, j)
		}
		var funnelScales []float64
		if funnelErr == nil {
			funnelScales = funnel.FitLocal(funnelGlobal, locals)
		}

		// SIRS/SKIPS fit every local sequence independently; that is the
		// dominant cost of this panel, so it runs on a worker pool. Each
		// worker writes only its own cell, and accumulation afterwards is
		// ordered, keeping the result deterministic.
		cells := make([]cell, x.L())
		var wg sync.WaitGroup
		sem := make(chan struct{}, cfg.Workers)
		for j := 0; j < x.L(); j++ {
			wg.Add(1)
			go func(j int) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				seq := locals[j]
				peak := stats.Max(seq)
				if peak <= 0 {
					return
				}
				c := cell{rmse: map[string]float64{}}
				c.rmse["D-SPOT"] = stats.RMSE(seq, m.SimulateLocal(i, j, n)) / peak
				if funnelErr == nil {
					est := funnel.SimulateLocal(funnelGlobal, funnelScales[j], n)
					c.rmse["FUNNEL"] = stats.RMSE(seq, est) / peak
				}
				if p, err := epidemic.Fit(epidemic.SIRS, seq); err == nil {
					c.rmse["SIRS"] = stats.RMSE(seq, p.Simulate(n)) / peak
				}
				if p, err := epidemic.Fit(epidemic.SKIPS, seq); err == nil {
					c.rmse["SKIPS"] = stats.RMSE(seq, p.Simulate(n)) / peak
				}
				cells[j] = c
			}(j)
		}
		wg.Wait()
		for j := range cells {
			for method, v := range cells[j].rmse {
				res.Local[method] += v
				counts[method]++
			}
		}
	}
	for method, total := range res.Local {
		res.Local[method] = total / float64(counts[method])
	}
	return res, nil
}

// Fig9 runs both panels and merges the results.
func Fig9(cfg Config) (Fig9Result, error) {
	g, err := Fig9Global(cfg)
	if err != nil {
		return Fig9Result{}, err
	}
	l, err := Fig9Local(cfg)
	if err != nil {
		return Fig9Result{}, err
	}
	return Fig9Result{Global: g.Global, Local: l.Local}, nil
}
