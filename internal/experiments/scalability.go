package experiments

import (
	"fmt"
	"strings"

	"dspot/internal/core"
	"dspot/internal/datagen"
)

// ScalePoint is one measurement of a scalability sweep.
type ScalePoint struct {
	Size    int     // the varied dimension (d, l, or n)
	Seconds float64 // wall-clock fitting time
}

// Fig10Result reproduces Fig. 10: wall-clock fitting cost versus each
// dimension of the input tensor. Lemma 1 says Δ-SPOT is O(d·l·n); the
// sweeps should be near-linear, which LinearityR2 quantifies as the R² of
// a least-squares line through the points.
type Fig10Result struct {
	ByKeywords  []ScalePoint // (a) varying d
	ByLocations []ScalePoint // (b) varying l
	ByTicks     []ScalePoint // (c) varying n
}

func (r Fig10Result) String() string {
	var b strings.Builder
	fmt.Fprintln(&b, "Fig 10 — scalability (wall-clock seconds)")
	panel := func(name string, pts []ScalePoint) {
		fmt.Fprintf(&b, "  %s:", name)
		for _, p := range pts {
			fmt.Fprintf(&b, " (%d, %.3fs)", p.Size, p.Seconds)
		}
		fmt.Fprintf(&b, "  R²(linear)=%.3f\n", LinearityR2(pts))
	}
	panel("(a) keywords d ", r.ByKeywords)
	panel("(b) locations l", r.ByLocations)
	panel("(c) duration n ", r.ByTicks)
	return b.String()
}

// LinearityR2 returns the coefficient of determination of the best
// least-squares line through the (Size, Seconds) points; 1.0 is perfectly
// linear. Degenerate sweeps (fewer than 3 points) return 1.
func LinearityR2(pts []ScalePoint) float64 {
	if len(pts) < 3 {
		return 1
	}
	n := float64(len(pts))
	var sx, sy, sxx, sxy float64
	for _, p := range pts {
		x, y := float64(p.Size), p.Seconds
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 1
	}
	slope := (n*sxy - sx*sy) / den
	intercept := (sy - slope*sx) / n
	var ssRes, ssTot float64
	meanY := sy / n
	for _, p := range pts {
		pred := slope*float64(p.Size) + intercept
		ssRes += (p.Seconds - pred) * (p.Seconds - pred)
		ssTot += (p.Seconds - meanY) * (p.Seconds - meanY)
	}
	if ssTot == 0 {
		return 1
	}
	return 1 - ssRes/ssTot
}

// Fig10Sweeps configures which sizes the three sweeps visit. The zero value
// picks paper-like sizes scaled to the config.
type Fig10Sweeps struct {
	Keywords  []int
	Locations []int
	Ticks     []int
}

func (s Fig10Sweeps) withDefaults(cfg Config) Fig10Sweeps {
	if s.Keywords == nil {
		s.Keywords = []int{1, 2, 4, 6, 8}
	}
	if s.Locations == nil {
		l := cfg.Locations
		s.Locations = []int{l / 8, l / 4, l / 2, 3 * l / 4, l}
		for i := range s.Locations {
			if s.Locations[i] < 1 {
				s.Locations[i] = 1
			}
		}
	}
	if s.Ticks == nil {
		n := cfg.Ticks
		if n <= 0 {
			n = datagen.GoogleTrendsTicks
		}
		s.Ticks = []int{n / 8, n / 4, n / 2, 3 * n / 4, n}
		for i := range s.Ticks {
			if s.Ticks[i] < 40 {
				s.Ticks[i] = 40
			}
		}
	}
	return s
}

// Fig10 measures the three sweeps. Workers is forced to 1 so the
// measurement reflects algorithmic cost rather than parallel speedup.
func Fig10(cfg Config, sweeps Fig10Sweeps) (Fig10Result, error) {
	sweeps = sweeps.withDefaults(cfg)
	serial := cfg
	serial.Workers = 1

	var res Fig10Result
	for _, d := range sweeps.Keywords {
		truth := datagen.Scalability(d, serial.gen())
		secs := timeIt(func() {
			if _, err := core.FitGlobal(truth.Tensor, serial.fit()); err != nil {
				panic(err) // generated data is always fittable
			}
		})
		res.ByKeywords = append(res.ByKeywords, ScalePoint{d, secs})
	}
	for _, l := range sweeps.Locations {
		gen := serial.gen()
		gen.Locations = l
		truth := datagen.Scalability(2, gen)
		// Local fitting dominates the l sweep, as in the paper's Lemma 1.
		m, err := core.FitGlobal(truth.Tensor, serial.fit())
		if err != nil {
			return res, err
		}
		secs := timeIt(func() {
			if err := core.FitLocal(truth.Tensor, m, serial.fit()); err != nil {
				panic(err)
			}
		})
		res.ByLocations = append(res.ByLocations, ScalePoint{l, secs})
	}
	for _, n := range sweeps.Ticks {
		gen := serial.gen()
		gen.Ticks = n
		truth := datagen.Scalability(2, gen)
		secs := timeIt(func() {
			if _, err := core.FitGlobal(truth.Tensor, serial.fit()); err != nil {
				panic(err)
			}
		})
		res.ByTicks = append(res.ByTicks, ScalePoint{n, secs})
	}
	return res, nil
}
