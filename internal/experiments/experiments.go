// Package experiments regenerates every figure of the Δ-SPOT paper's
// evaluation (Figs. 1, 4–11) against the synthetic datasets, printing the
// same rows/series the paper reports. Each figure is a pure function of a
// Config, so results are deterministic and directly comparable across runs;
// EXPERIMENTS.md records paper-vs-measured shapes.
package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"dspot/internal/core"
	"dspot/internal/datagen"
	"dspot/internal/stats"
	"dspot/internal/tensor"
)

// Config sizes an experiment run. Full() reproduces the paper's scale;
// Small() is a fast configuration used by tests and smoke runs.
type Config struct {
	Locations int   // countries for tensor experiments
	Ticks     int   // duration for GoogleTrends-like data (0 = natural)
	Seed      int64 // generation seed
	Workers   int   // fitting concurrency
	// Progress, when non-nil, observes every fit the experiment performs
	// (see core.FitOptions.Progress); dspot-exp -stats aggregates it into
	// a run-wide FitReport.
	Progress core.ProgressFunc
}

// Full returns the paper-scale configuration: 232 countries, 576 weeks.
func Full() Config { return Config{Locations: 232, Ticks: 0, Seed: 1, Workers: 8} }

// Small returns a fast configuration for tests: fewer countries, 5 years.
func Small() Config { return Config{Locations: 12, Ticks: 280, Seed: 1, Workers: 4} }

func (c Config) gen() datagen.Config {
	return datagen.Config{Locations: c.Locations, Ticks: c.Ticks, Seed: c.Seed}
}

func (c Config) fit() core.FitOptions {
	return core.FitOptions{Workers: c.Workers, Progress: c.Progress}
}

// EventReport describes one detected external shock in presentation form.
type EventReport struct {
	Keyword      string
	Period       int // ticks; 0 = non-cyclic
	Start        int
	Width        int
	MeanStrength float64
	StartDate    string // calendar form when the dataset has a mapping
}

// Cyclic reports whether the event recurs.
func (e EventReport) Cyclic() bool { return e.Period > 0 }

func (e EventReport) String() string {
	kind := "one-shot"
	if e.Cyclic() {
		kind = fmt.Sprintf("every %d ticks", e.Period)
	}
	return fmt.Sprintf("%-14s start=%d (%s) width=%d strength=%.2f [%s]",
		e.Keyword, e.Start, e.StartDate, e.Width, e.MeanStrength, kind)
}

// FitReport summarises one keyword's global fit.
type FitReport struct {
	Keyword   string
	RMSE      float64
	Peak      float64 // max of the observed sequence, for scale
	NRMSE     float64 // RMSE / peak
	HasGrowth bool
	GrowthAt  int
	Events    []EventReport
}

func (f FitReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-22s RMSE=%.3f (%.1f%% of peak %.1f)",
		f.Keyword, f.RMSE, 100*f.NRMSE, f.Peak)
	if f.HasGrowth {
		fmt.Fprintf(&b, " growth@%d", f.GrowthAt)
	}
	fmt.Fprintf(&b, " events=%d", len(f.Events))
	return b.String()
}

// tickDate renders a tick as YYYY-MM for a dataset with a calendar mapping.
func tickDate(tick, startYear, tickDays int) string {
	if tickDays <= 0 {
		return fmt.Sprintf("t=%d", tick)
	}
	days := tick * tickDays
	year := startYear + days/365
	month := (days%365)/30 + 1
	if month > 12 {
		month = 12
	}
	return fmt.Sprintf("%04d-%02d", year, month)
}

// reportFor converts a fitted model's view of keyword i into a FitReport.
func reportFor(m *core.Model, i int, obs []float64, truth *datagen.Truth) FitReport {
	est := m.SimulateGlobal(i, m.Ticks)
	peak := stats.Max(obs)
	r := FitReport{
		Keyword:   m.Keywords[i],
		RMSE:      stats.RMSE(obs, est),
		Peak:      peak,
		HasGrowth: m.Global[i].HasGrowth(),
		GrowthAt:  m.Global[i].TEta,
	}
	if peak > 0 {
		r.NRMSE = r.RMSE / peak
	}
	for _, s := range m.ShocksFor(i) {
		r.Events = append(r.Events, EventReport{
			Keyword: m.Keywords[i], Period: s.Period, Start: s.Start,
			Width: s.Width, MeanStrength: s.MeanStrength(),
			StartDate: tickDate(s.Start, truth.StartYear, truth.TickDays),
		})
	}
	sort.Slice(r.Events, func(a, b int) bool { return r.Events[a].Start < r.Events[b].Start })
	return r
}

// timeIt measures wall-clock seconds of f.
func timeIt(f func()) float64 {
	t0 := time.Now()
	f()
	return time.Since(t0).Seconds()
}

// flatRMSE is the RMSE of predicting the training mean everywhere — the
// strawman every method must beat.
func flatRMSE(train, test []float64) float64 {
	mean := stats.Mean(train)
	flat := make([]float64, len(test))
	for i := range flat {
		flat[i] = mean
	}
	return stats.RMSE(test, flat)
}

// globalOf extracts keyword i's global sequence from a truth tensor.
func globalOf(truth *datagen.Truth, name string) ([]float64, int, error) {
	i, err := truth.Tensor.KeywordIndex(name)
	if err != nil {
		return nil, 0, err
	}
	return truth.Tensor.Global(i), i, nil
}

var _ = tensor.Missing // keep tensor import for helpers added below
