package experiments

import (
	"strings"
	"testing"
)

func TestTailScaleWideFit(t *testing.T) {
	cfg := Small()
	cfg.Locations = 6
	res, err := TailScale(cfg, 8)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sequences != 10 { // 2 scripted + 8 extra
		t.Fatalf("sequences = %d, want 10", res.Sequences)
	}
	if res.MeanNRMSE > 0.25 {
		t.Fatalf("tail mean NRMSE %.3f too high", res.MeanNRMSE)
	}
	if res.WorstNRMSE > 0.8 {
		t.Fatalf("worst tail NRMSE %.3f too high", res.WorstNRMSE)
	}
	if res.PerSequence <= 0 || res.TotalSeconds <= 0 {
		t.Fatal("throughput not measured")
	}
	if !strings.Contains(res.String(), "Tail-scale") {
		t.Fatal("String() malformed")
	}
}

func TestTailScaleDefaultTags(t *testing.T) {
	// The default tail size is applied for extraTags <= 0; fitting 50
	// sequences is too slow for the unit suite, so only the tensor shape is
	// checked here (TestTailScaleWideFit covers the fitting path).
	truth := datagenTwitterShape(0)
	if truth != 50 {
		t.Fatalf("default tail = %d sequences, want 50", truth)
	}
}
