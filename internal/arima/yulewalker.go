package arima

// Yule–Walker estimation and automatic order selection. The conditional
// least-squares estimator in ar.go is the workhorse; Yule–Walker solves the
// autocorrelation normal equations via Levinson–Durbin recursion instead —
// O(p²), numerically stable, and guaranteed-stationary — and its per-order
// innovation variances give AIC order selection for free.

import (
	"errors"
	"fmt"
	"math"
)

// FitYuleWalker fits an AR(order) model by solving the Yule–Walker
// equations with Levinson–Durbin. Missing values are linearly interpolated
// first (as in FitAR). The fitted model forecasts identically to an
// LS-fitted one via the shared ARModel machinery.
func FitYuleWalker(seq []float64, order int) (*ARModel, error) {
	if order < 1 {
		return nil, errors.New("arima: order must be >= 1")
	}
	work := interpolate(seq)
	n := len(work)
	if n < order+2 {
		return nil, fmt.Errorf("arima: need at least %d observations, have %d", order+2, n)
	}
	mean := 0.0
	for _, v := range work {
		mean += v
	}
	mean /= float64(n)

	// Autocovariances c(0..order).
	c := make([]float64, order+1)
	for lag := 0; lag <= order; lag++ {
		sum := 0.0
		for t := lag; t < n; t++ {
			sum += (work[t] - mean) * (work[t-lag] - mean)
		}
		c[lag] = sum / float64(n)
	}
	if c[0] <= 0 {
		return nil, errors.New("arima: constant series has no AR structure")
	}

	phi, _, err := levinsonDurbin(c, order)
	if err != nil {
		return nil, err
	}

	// Intercept so the process mean matches the sample mean.
	sumPhi := 0.0
	for _, p := range phi {
		sumPhi += p
	}
	m := &ARModel{
		Order:     order,
		Intercept: mean * (1 - sumPhi),
		Coef:      phi,
		history:   append([]float64(nil), work[n-order:]...),
	}
	return m, nil
}

// levinsonDurbin solves the Toeplitz system for AR coefficients up to the
// given order, returning the final coefficients and the innovation variance
// at each order 0..order.
func levinsonDurbin(c []float64, order int) (phi []float64, variances []float64, err error) {
	variances = make([]float64, order+1)
	variances[0] = c[0]
	phi = make([]float64, 0, order)
	prev := make([]float64, 0, order)
	for k := 1; k <= order; k++ {
		if variances[k-1] <= 0 {
			return nil, nil, errors.New("arima: Levinson-Durbin variance collapsed")
		}
		acc := c[k]
		for j := 1; j < k; j++ {
			acc -= prev[j-1] * c[k-j]
		}
		kappa := acc / variances[k-1]
		cur := make([]float64, k)
		cur[k-1] = kappa
		for j := 1; j < k; j++ {
			cur[j-1] = prev[j-1] - kappa*prev[k-1-j]
		}
		variances[k] = variances[k-1] * (1 - kappa*kappa)
		prev = cur
		phi = cur
	}
	return phi, variances, nil
}

// SelectOrder picks the AR order in [1, maxOrder] minimising AIC computed
// from the Levinson–Durbin innovation variances, then fits that order by
// Yule–Walker. It returns the fitted model and the selected order.
func SelectOrder(seq []float64, maxOrder int) (*ARModel, int, error) {
	work := interpolate(seq)
	n := len(work)
	if maxOrder < 1 {
		return nil, 0, errors.New("arima: maxOrder must be >= 1")
	}
	if maxOrder > n/3 {
		maxOrder = n / 3
	}
	if maxOrder < 1 {
		return nil, 0, errors.New("arima: series too short for order selection")
	}
	mean := 0.0
	for _, v := range work {
		mean += v
	}
	mean /= float64(n)
	c := make([]float64, maxOrder+1)
	for lag := 0; lag <= maxOrder; lag++ {
		sum := 0.0
		for t := lag; t < n; t++ {
			sum += (work[t] - mean) * (work[t-lag] - mean)
		}
		c[lag] = sum / float64(n)
	}
	if c[0] <= 0 {
		return nil, 0, errors.New("arima: constant series has no AR structure")
	}
	_, variances, err := levinsonDurbin(c, maxOrder)
	if err != nil {
		return nil, 0, err
	}
	bestOrder, bestAIC := 1, math.Inf(1)
	for k := 1; k <= maxOrder; k++ {
		v := variances[k]
		if v < 1e-12 {
			v = 1e-12
		}
		aic := float64(n)*math.Log(v) + 2*float64(k)
		if aic < bestAIC {
			bestAIC, bestOrder = aic, k
		}
	}
	m, err := FitYuleWalker(seq, bestOrder)
	if err != nil {
		return nil, 0, err
	}
	return m, bestOrder, nil
}
