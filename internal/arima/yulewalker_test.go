package arima

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dspot/internal/stats"
)

func TestFitYuleWalkerRecoversAR1(t *testing.T) {
	seq := genAR([]float64{0.7}, 1, 5000, 0.3, 11)
	m, err := FitYuleWalker(seq, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Coef[0]-0.7) > 0.05 {
		t.Fatalf("YW phi = %v, want ≈0.7", m.Coef)
	}
	// Intercept should reproduce the process mean c/(1-φ) ≈ 3.33.
	implied := m.Intercept / (1 - m.Coef[0])
	if math.Abs(implied-1.0/(1-0.7)) > 0.4 {
		t.Fatalf("implied mean %g, want ≈3.33", implied)
	}
}

func TestFitYuleWalkerMatchesLSOnLongSeries(t *testing.T) {
	seq := genAR([]float64{0.5, -0.2}, 0.5, 8000, 0.4, 12)
	yw, err := FitYuleWalker(seq, 2)
	if err != nil {
		t.Fatal(err)
	}
	ls, err := FitAR(seq, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range yw.Coef {
		if math.Abs(yw.Coef[i]-ls.Coef[i]) > 0.05 {
			t.Fatalf("YW %v vs LS %v diverge", yw.Coef, ls.Coef)
		}
	}
}

func TestFitYuleWalkerErrors(t *testing.T) {
	if _, err := FitYuleWalker([]float64{1, 2, 3}, 0); err == nil {
		t.Fatal("order 0 accepted")
	}
	if _, err := FitYuleWalker([]float64{1, 2}, 3); err == nil {
		t.Fatal("short series accepted")
	}
	if _, err := FitYuleWalker([]float64{5, 5, 5, 5, 5}, 1); err == nil {
		t.Fatal("constant series accepted")
	}
}

func TestYuleWalkerForecastWorks(t *testing.T) {
	seq := genAR([]float64{0.6}, 2, 2000, 0.1, 13)
	m, err := FitYuleWalker(seq, 1)
	if err != nil {
		t.Fatal(err)
	}
	fc := m.Forecast(100)
	want := 2 / (1 - 0.6) // process mean
	if math.Abs(fc[99]-want) > 0.5 {
		t.Fatalf("long-run YW forecast %g, want ≈%g", fc[99], want)
	}
}

func TestLevinsonDurbinStationarity(t *testing.T) {
	// Yule–Walker solutions are always stationary: |roots| inside the unit
	// circle, which for AR(1) means |phi| < 1 even on rough data.
	rng := rand.New(rand.NewSource(14))
	seq := make([]float64, 200)
	for i := range seq {
		seq[i] = rng.Float64() * 100
	}
	m, err := FitYuleWalker(seq, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Coef[0]) >= 1 {
		t.Fatalf("non-stationary YW AR(1): %g", m.Coef[0])
	}
}

func TestSelectOrderFindsTrueOrder(t *testing.T) {
	seq := genAR([]float64{0.5, -0.3}, 1, 6000, 0.3, 15)
	m, order, err := SelectOrder(seq, 8)
	if err != nil {
		t.Fatal(err)
	}
	if order != 2 {
		t.Fatalf("selected order %d, want 2", order)
	}
	if m.Order != 2 {
		t.Fatalf("model order %d", m.Order)
	}
}

func TestSelectOrderWhiteNoisePicksSmall(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	seq := make([]float64, 3000)
	for i := range seq {
		seq[i] = rng.NormFloat64()
	}
	_, order, err := SelectOrder(seq, 10)
	if err != nil {
		t.Fatal(err)
	}
	if order > 2 {
		t.Fatalf("white noise selected order %d", order)
	}
}

func TestSelectOrderErrors(t *testing.T) {
	if _, _, err := SelectOrder([]float64{1, 2, 3}, 0); err == nil {
		t.Fatal("maxOrder 0 accepted")
	}
	if _, _, err := SelectOrder([]float64{1, 2}, 5); err == nil {
		t.Fatal("tiny series accepted")
	}
	if _, _, err := SelectOrder(make([]float64, 100), 5); err == nil {
		t.Fatal("constant series accepted")
	}
}

// Property: Yule–Walker AR(1) coefficient equals lag-1 autocorrelation.
func TestYuleWalkerAR1EqualsACFQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 100 + rng.Intn(200)
		seq := make([]float64, n)
		for i := 1; i < n; i++ {
			seq[i] = 0.4*seq[i-1] + rng.NormFloat64()
		}
		if stats.Std(seq) < 1e-9 {
			return true
		}
		m, err := FitYuleWalker(seq, 1)
		if err != nil {
			return false
		}
		r1 := stats.Autocorrelation(seq, 1)
		return math.Abs(m.Coef[0]-r1) < 0.05
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
