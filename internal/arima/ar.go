// Package arima implements autoregressive models — the linear forecasting
// baseline the Δ-SPOT paper compares against in Fig. 11 (AR with regression
// orders r = 8, 26, 50). Coefficients are estimated by conditional least
// squares on the normal equations; forecasting is recursive. An optional
// differencing order handles trending series (the "I" in ARIMA).
package arima

import (
	"errors"
	"fmt"
	"math"
)

// ARModel is a fitted autoregressive model x(t) = c + Σ φ_k x(t-k) + e(t).
type ARModel struct {
	Order     int       // regression order p
	Diff      int       // differencing order applied before fitting
	Intercept float64   // c
	Coef      []float64 // φ_1..φ_p
	history   []float64 // last Order values of the (differenced) series
	last      []float64 // values needed to undo differencing
}

// FitAR fits an AR(order) model to seq by least squares. The sequence must
// contain at least order+2 observations after differencing. Missing (NaN)
// values are linearly interpolated before fitting, since AR regression needs
// a contiguous design matrix.
func FitAR(seq []float64, order int) (*ARModel, error) {
	return FitARI(seq, order, 0)
}

// FitARI fits an AR(order) model after diff rounds of first differencing.
func FitARI(seq []float64, order, diff int) (*ARModel, error) {
	if order < 1 {
		return nil, errors.New("arima: order must be >= 1")
	}
	if diff < 0 {
		return nil, errors.New("arima: negative differencing order")
	}
	work := interpolate(seq)
	last := make([]float64, 0, diff)
	for k := 0; k < diff; k++ {
		if len(work) < 2 {
			return nil, errors.New("arima: series too short to difference")
		}
		last = append(last, work[len(work)-1])
		work = difference(work)
	}
	n := len(work)
	if n < order+2 {
		return nil, fmt.Errorf("arima: need at least %d observations, have %d", order+2, n)
	}

	// Design: rows t = order..n-1, columns [1, x(t-1), ..., x(t-p)].
	dim := order + 1
	ata := make([]float64, dim*dim)
	atb := make([]float64, dim)
	row := make([]float64, dim)
	for t := order; t < n; t++ {
		row[0] = 1
		for k := 1; k <= order; k++ {
			row[k] = work[t-k]
		}
		y := work[t]
		for a := 0; a < dim; a++ {
			atb[a] += row[a] * y
			for b := 0; b < dim; b++ {
				ata[a*dim+b] += row[a] * row[b]
			}
		}
	}
	// Ridge jitter keeps near-collinear designs solvable.
	for a := 0; a < dim; a++ {
		ata[a*dim+a] += 1e-9
	}
	theta, err := solve(ata, atb, dim)
	if err != nil {
		return nil, fmt.Errorf("arima: normal equations singular: %w", err)
	}

	m := &ARModel{
		Order:     order,
		Diff:      diff,
		Intercept: theta[0],
		Coef:      theta[1:],
		history:   append([]float64(nil), work[n-order:]...),
		last:      last,
	}
	return m, nil
}

// Predict returns in-sample one-step-ahead predictions aligned with seq
// (the first order+diff entries repeat the observations, as no prediction
// exists for them).
func (m *ARModel) Predict(seq []float64) []float64 {
	work := interpolate(seq)
	for k := 0; k < m.Diff; k++ {
		work = difference(work)
	}
	n := len(work)
	pred := make([]float64, n)
	for t := 0; t < n; t++ {
		if t < m.Order {
			pred[t] = work[t]
			continue
		}
		v := m.Intercept
		for k := 1; k <= m.Order; k++ {
			v += m.Coef[k-1] * work[t-k]
		}
		pred[t] = v
	}
	// Undo differencing against the observed (not predicted) lags so the
	// output is a proper one-step-ahead prediction in the original scale.
	for k := m.Diff - 1; k >= 0; k-- {
		undone := make([]float64, len(pred)+1)
		base := interpolate(seq)
		for j := 0; j < k; j++ {
			base = difference(base)
		}
		undone[0] = base[0]
		for t := 0; t < len(pred); t++ {
			undone[t+1] = base[t] + pred[t]
		}
		pred = undone
	}
	if len(pred) > len(seq) {
		pred = pred[len(pred)-len(seq):]
	}
	return pred
}

// Forecast extrapolates h steps past the end of the training sequence.
func (m *ARModel) Forecast(h int) []float64 {
	if h <= 0 {
		return nil
	}
	hist := append([]float64(nil), m.history...)
	out := make([]float64, h)
	for t := 0; t < h; t++ {
		v := m.Intercept
		for k := 1; k <= m.Order; k++ {
			v += m.Coef[k-1] * hist[len(hist)-k]
		}
		hist = append(hist, v)
		out[t] = v
	}
	// Integrate back through each level of differencing.
	for k := len(m.last) - 1; k >= 0; k-- {
		acc := m.last[k]
		for t := range out {
			acc += out[t]
			out[t] = acc
		}
	}
	return out
}

// difference returns the first difference of s (length len(s)-1).
func difference(s []float64) []float64 {
	out := make([]float64, len(s)-1)
	for i := range out {
		out[i] = s[i+1] - s[i]
	}
	return out
}

// interpolate fills NaN gaps linearly (edge gaps take the nearest value).
func interpolate(s []float64) []float64 {
	out := append([]float64(nil), s...)
	n := len(out)
	prev := -1
	for t := 0; t < n; t++ {
		if math.IsNaN(out[t]) {
			continue
		}
		if prev == -1 && t > 0 {
			for u := 0; u < t; u++ {
				out[u] = out[t]
			}
		} else if prev >= 0 && t-prev > 1 {
			for u := prev + 1; u < t; u++ {
				frac := float64(u-prev) / float64(t-prev)
				out[u] = out[prev] + (out[t]-out[prev])*frac
			}
		}
		prev = t
	}
	if prev == -1 {
		for t := range out {
			out[t] = 0
		}
		return out
	}
	for t := prev + 1; t < n; t++ {
		out[t] = out[prev]
	}
	return out
}

// solve performs Gaussian elimination with partial pivoting on the n×n
// system a·x = b. a and b are modified in place.
func solve(a, b []float64, n int) ([]float64, error) {
	for col := 0; col < n; col++ {
		// Pivot.
		pivot, pmax := col, math.Abs(a[col*n+col])
		for r := col + 1; r < n; r++ {
			if v := math.Abs(a[r*n+col]); v > pmax {
				pivot, pmax = r, v
			}
		}
		if pmax < 1e-300 {
			return nil, errors.New("singular matrix")
		}
		if pivot != col {
			for c := 0; c < n; c++ {
				a[col*n+c], a[pivot*n+c] = a[pivot*n+c], a[col*n+c]
			}
			b[col], b[pivot] = b[pivot], b[col]
		}
		inv := 1 / a[col*n+col]
		for r := col + 1; r < n; r++ {
			f := a[r*n+col] * inv
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				a[r*n+c] -= f * a[col*n+c]
			}
			b[r] -= f * b[col]
		}
	}
	x := make([]float64, n)
	for r := n - 1; r >= 0; r-- {
		v := b[r]
		for c := r + 1; c < n; c++ {
			v -= a[r*n+c] * x[c]
		}
		x[r] = v / a[r*n+r]
	}
	return x, nil
}
