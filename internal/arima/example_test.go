package arima_test

import (
	"fmt"
	"math/rand"

	"dspot/internal/arima"
)

// genAR1 builds a reproducible AR(1) process (math/rand streams are stable
// for a fixed seed).
func genAR1(c, phi float64, n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	seq := make([]float64, n)
	for t := 1; t < n; t++ {
		seq[t] = c + phi*seq[t-1] + rng.NormFloat64()*0.2
	}
	return seq
}

// Fit an AR(1) model and forecast toward the process mean c/(1-φ).
func ExampleFitAR() {
	seq := genAR1(1, 0.5, 4000, 7)
	m, err := arima.FitAR(seq, 1)
	if err != nil {
		panic(err)
	}
	fc := m.Forecast(100)
	fmt.Printf("phi=%.1f long-run=%.1f\n", m.Coef[0], fc[99])
	// Output:
	// phi=0.5 long-run=2.0
}

// Automatic order selection via Levinson–Durbin innovation variances.
func ExampleSelectOrder() {
	rng := rand.New(rand.NewSource(9))
	seq := make([]float64, 4000)
	for t := 2; t < len(seq); t++ {
		seq[t] = 0.5*seq[t-1] - 0.3*seq[t-2] + rng.NormFloat64()*0.3
	}
	m, order, err := arima.SelectOrder(seq, 8)
	if err != nil {
		panic(err)
	}
	// AIC may keep an extra small coefficient or two on finite samples; the
	// true order is always covered and the leading coefficients match.
	fmt.Printf("covers true order: %v\n", order >= 2)
	fmt.Printf("phi1=%.1f phi2=%.1f\n", m.Coef[0], m.Coef[1])
	// Output:
	// covers true order: true
	// phi1=0.5 phi2=-0.3
}
