package arima

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dspot/internal/stats"
)

// genAR synthesises an AR(p) process with the given coefficients and noise.
func genAR(coef []float64, c float64, n int, noise float64, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	p := len(coef)
	s := make([]float64, n+p)
	for t := p; t < len(s); t++ {
		v := c
		for k := 1; k <= p; k++ {
			v += coef[k-1] * s[t-k]
		}
		s[t] = v + rng.NormFloat64()*noise
	}
	return s[p:]
}

func TestFitARRecoversNoiselessProcess(t *testing.T) {
	coef := []float64{0.6, -0.3}
	seq := genAR(coef, 2, 300, 0, 42)
	m, err := FitAR(seq, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Coef[0]-0.6) > 1e-6 || math.Abs(m.Coef[1]+0.3) > 1e-6 {
		t.Fatalf("coef = %v, want [0.6 -0.3]", m.Coef)
	}
	if math.Abs(m.Intercept-2) > 1e-5 {
		t.Fatalf("intercept = %g, want 2", m.Intercept)
	}
}

func TestFitARNoisyStillClose(t *testing.T) {
	coef := []float64{0.5, 0.2}
	seq := genAR(coef, 1, 2000, 0.5, 7)
	m, err := FitAR(seq, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Coef[0]-0.5) > 0.1 || math.Abs(m.Coef[1]-0.2) > 0.1 {
		t.Fatalf("noisy coef = %v", m.Coef)
	}
}

func TestFitARErrors(t *testing.T) {
	if _, err := FitAR([]float64{1, 2, 3}, 0); err == nil {
		t.Fatal("order 0 accepted")
	}
	if _, err := FitAR([]float64{1, 2, 3}, 5); err == nil {
		t.Fatal("short sequence accepted")
	}
	if _, err := FitARI([]float64{1, 2, 3, 4, 5, 6}, 1, -1); err == nil {
		t.Fatal("negative differencing accepted")
	}
	if _, err := FitARI([]float64{1}, 1, 3); err == nil {
		t.Fatal("over-differencing accepted")
	}
}

func TestPredictAlignsWithObservations(t *testing.T) {
	seq := genAR([]float64{0.7}, 0.5, 200, 0, 3)
	m, err := FitAR(seq, 1)
	if err != nil {
		t.Fatal(err)
	}
	pred := m.Predict(seq)
	if len(pred) != len(seq) {
		t.Fatalf("pred length %d != %d", len(pred), len(seq))
	}
	// Noiseless process: one-step predictions should match after warmup.
	if rmse := stats.RMSE(seq[5:], pred[5:]); rmse > 1e-6 {
		t.Fatalf("one-step RMSE = %g", rmse)
	}
}

func TestForecastConvergesToProcessMean(t *testing.T) {
	// AR(1) with φ=0.5, c=3 has mean c/(1-φ) = 6.
	seq := genAR([]float64{0.5}, 3, 500, 0, 11)
	m, err := FitAR(seq, 1)
	if err != nil {
		t.Fatal(err)
	}
	fc := m.Forecast(200)
	if math.Abs(fc[len(fc)-1]-6) > 1e-3 {
		t.Fatalf("long-run forecast = %g, want 6", fc[len(fc)-1])
	}
	if m.Forecast(0) != nil {
		t.Fatal("Forecast(0) should be nil")
	}
}

func TestFitARIWithLinearTrend(t *testing.T) {
	// Pure linear trend: first difference is constant, AR(1) on it forecasts
	// continued growth.
	n := 100
	seq := make([]float64, n)
	for i := range seq {
		seq[i] = 5 + 2*float64(i)
	}
	m, err := FitARI(seq, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	fc := m.Forecast(10)
	for h, v := range fc {
		want := 5 + 2*float64(n-1+h+1)
		if math.Abs(v-want) > 1e-6 {
			t.Fatalf("trend forecast h=%d: got %g want %g", h, v, want)
		}
	}
}

func TestPredictWithDifferencing(t *testing.T) {
	n := 80
	seq := make([]float64, n)
	for i := range seq {
		seq[i] = 3*float64(i) + 1
	}
	m, err := FitARI(seq, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	pred := m.Predict(seq)
	if len(pred) != n {
		t.Fatalf("pred length %d != %d", len(pred), n)
	}
	if rmse := stats.RMSE(seq[5:], pred[5:]); rmse > 1e-6 {
		t.Fatalf("differenced one-step RMSE = %g", rmse)
	}
}

func TestInterpolateHandlesNaN(t *testing.T) {
	seq := []float64{1, math.NaN(), 3, math.NaN(), math.NaN(), 6}
	out := interpolate(seq)
	want := []float64{1, 2, 3, 4, 5, 6}
	for i := range want {
		if math.Abs(out[i]-want[i]) > 1e-12 {
			t.Fatalf("interpolate = %v", out)
		}
	}
	// All-NaN becomes zeros.
	z := interpolate([]float64{math.NaN(), math.NaN()})
	if z[0] != 0 || z[1] != 0 {
		t.Fatalf("all-NaN interpolate = %v", z)
	}
}

func TestFitARWithMissingValues(t *testing.T) {
	seq := genAR([]float64{0.6}, 1, 300, 0, 5)
	seq[50] = math.NaN()
	seq[51] = math.NaN()
	m, err := FitAR(seq, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Coef[0]-0.6) > 0.05 {
		t.Fatalf("coef with gaps = %v", m.Coef)
	}
}

func TestSolveSingular(t *testing.T) {
	a := []float64{1, 1, 1, 1}
	if _, err := solve(a, []float64{1, 2}, 2); err == nil {
		t.Fatal("singular system accepted")
	}
}

func TestSolvePivoting(t *testing.T) {
	// Zero leading pivot forces a row swap.
	a := []float64{0, 1, 1, 0}
	b := []float64{2, 3}
	x, err := solve(a, b, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-3) > 1e-12 || math.Abs(x[1]-2) > 1e-12 {
		t.Fatalf("pivoted solve = %v", x)
	}
}

// Property: fitting a lightly-noised stable AR(p) process recovers the
// coefficients. (A fully noiseless process converges to its constant mean,
// leaving the coefficients unidentifiable, so a persistent excitation term
// is required.)
func TestFitARRecoveryQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := 1 + rng.Intn(3)
		coef := make([]float64, p)
		sum := 0.0
		for i := range coef {
			coef[i] = rng.Float64()*0.4 - 0.2
			sum += math.Abs(coef[i])
		}
		if sum >= 0.9 { // keep comfortably stationary
			for i := range coef {
				coef[i] *= 0.8 / sum
			}
		}
		seq := genAR(coef, rng.Float64()*2, 4000, 0.1, seed)
		m, err := FitAR(seq, p)
		if err != nil {
			return false
		}
		for i := range coef {
			if math.Abs(m.Coef[i]-coef[i]) > 0.08 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: forecasts of a stable AR model stay bounded.
func TestForecastBoundedQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		coef := []float64{rng.Float64()*1.6 - 0.8}
		seq := genAR(coef, 1, 150, 0.2, seed)
		m, err := FitAR(seq, 1)
		if err != nil {
			return false
		}
		for _, v := range m.Forecast(100) {
			if math.IsNaN(v) || math.Abs(v) > 1e6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
