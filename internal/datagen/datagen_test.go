package datagen

import (
	"math"
	"testing"

	"dspot/internal/stats"
	"dspot/internal/tensor"
	"dspot/internal/world"
)

func TestGoogleTrendsShape(t *testing.T) {
	truth := GoogleTrends(Config{Locations: 40, Ticks: 200, Seed: 7})
	x := truth.Tensor
	if x.D() != 8 {
		t.Fatalf("d = %d, want 8 keywords", x.D())
	}
	if x.L() != 40 || x.N() != 200 {
		t.Fatalf("dims (%d,%d), want (40,200)", x.L(), x.N())
	}
	if err := x.Validate(); err != nil {
		t.Fatal(err)
	}
	if truth.StartYear != 2004 || truth.TickDays != 7 {
		t.Fatalf("calendar mapping %d/%d", truth.StartYear, truth.TickDays)
	}
}

func TestGoogleTrendsDefaults(t *testing.T) {
	truth := GoogleTrends(Config{Seed: 1, Locations: 5, Ticks: 60})
	if truth.Tensor.L() != 5 {
		t.Fatal("locations override ignored")
	}
	full := GoogleTrends(Config{Seed: 1, Ticks: 30})
	if full.Tensor.L() != world.Count() {
		t.Fatalf("default locations %d, want %d", full.Tensor.L(), world.Count())
	}
}

func TestGoogleTrendsDeterministic(t *testing.T) {
	a := GoogleTrends(Config{Locations: 10, Ticks: 100, Seed: 42})
	b := GoogleTrends(Config{Locations: 10, Ticks: 100, Seed: 42})
	for i := 0; i < a.Tensor.D(); i++ {
		for j := 0; j < a.Tensor.L(); j++ {
			for tt := 0; tt < a.Tensor.N(); tt++ {
				if a.Tensor.At(i, j, tt) != b.Tensor.At(i, j, tt) {
					t.Fatalf("not deterministic at (%d,%d,%d)", i, j, tt)
				}
			}
		}
	}
	c := GoogleTrends(Config{Locations: 10, Ticks: 100, Seed: 43})
	diff := false
	for tt := 0; tt < 100 && !diff; tt++ {
		if a.Tensor.At(0, 0, tt) != c.Tensor.At(0, 0, tt) {
			diff = true
		}
	}
	if !diff {
		t.Fatal("different seeds produced identical data")
	}
}

func TestHarryPotterHasBiennialSpikes(t *testing.T) {
	truth := GoogleTrends(Config{Locations: 60, Seed: 3})
	x := truth.Tensor
	i, err := x.KeywordIndex("harry potter")
	if err != nil {
		t.Fatal(err)
	}
	g := x.Global(i)
	// July releases are scripted biennially from mid-2005; the series must
	// show strong spikes at ~tick 78 and ~tick 182.
	base := stats.Quantile(g, 0.5)
	for _, tick := range []int{weekOf(2005, 7), weekOf(2007, 7), weekOf(2009, 7)} {
		window := g[tick : tick+4]
		if stats.Max(window) < base*2 {
			t.Fatalf("no July spike near tick %d: max %g base %g", tick, stats.Max(window), base)
		}
	}
	// After the 2011 finale there are no further July spikes.
	late := g[weekOf(2013, 6):weekOf(2013, 9)]
	if stats.Max(late) > base*2 {
		t.Fatalf("franchise should have ended: 2013 July max %g base %g", stats.Max(late), base)
	}
}

func TestAmazonGrowthEffect(t *testing.T) {
	truth := GoogleTrends(Config{Locations: 30, Seed: 5})
	x := truth.Tensor
	i, err := x.KeywordIndex("amazon")
	if err != nil {
		t.Fatal(err)
	}
	g := x.Global(i)
	before := stats.Mean(g[250:340])
	after := stats.Mean(g[450:560])
	if after < before*1.3 {
		t.Fatalf("growth effect missing: before %g after %g", before, after)
	}
}

func TestEbolaOutliersDoNotReact(t *testing.T) {
	truth := GoogleTrends(Config{Seed: 2})
	x := truth.Tensor
	i, err := x.KeywordIndex("ebola")
	if err != nil {
		t.Fatal(err)
	}
	burst := weekOf(2014, 8)
	for _, code := range []string{"LA", "NP", "CG"} {
		j, err := x.LocationIndex(code)
		if err != nil {
			t.Fatal(err)
		}
		seq := x.Local(i, j)
		pre := stats.Mean(seq[:burst])
		peak := stats.Max(seq[burst : burst+10])
		if pre > 0 && peak > pre*4 {
			t.Fatalf("outlier %s reacted to the burst: pre %g peak %g", code, pre, peak)
		}
	}
	// The US must react strongly.
	j, _ := x.LocationIndex("US")
	seq := x.Local(i, j)
	pre := stats.Mean(seq[:burst])
	peak := stats.Max(seq[burst : burst+10])
	if peak < pre*3 {
		t.Fatalf("US did not react: pre %g peak %g", pre, peak)
	}
}

func TestGoogleTrendsKeyword(t *testing.T) {
	truth, err := GoogleTrendsKeyword("grammy", Config{Locations: 20, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if truth.Tensor.D() != 1 || truth.Tensor.Keywords[0] != "grammy" {
		t.Fatalf("keywords %v", truth.Tensor.Keywords)
	}
	if _, err := GoogleTrendsKeyword("nonexistent", Config{}); err == nil {
		t.Fatal("unknown keyword accepted")
	}
	names := GoogleTrendsKeywordNames()
	if len(names) != 8 {
		t.Fatalf("%d scripted keywords, want 8", len(names))
	}
}

func TestGrammyAnnualPeriodicity(t *testing.T) {
	truth, err := GoogleTrendsKeyword("grammy", Config{Locations: 30, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	g := truth.Tensor.Global(0)
	r := stats.Autocorrelation(g, 52)
	if r < 0.25 {
		t.Fatalf("grammy annual autocorrelation %g too weak", r)
	}
}

func TestTwitterShape(t *testing.T) {
	truth := Twitter(8, Config{Locations: 15, Seed: 11})
	x := truth.Tensor
	if x.D() != 10 {
		t.Fatalf("d = %d, want 2 scripted + 8 extra", x.D())
	}
	if x.N() != TwitterTicks {
		t.Fatalf("n = %d, want %d", x.N(), TwitterTicks)
	}
	if _, err := x.KeywordIndex("#apple"); err != nil {
		t.Fatal(err)
	}
	if _, err := x.KeywordIndex("#backtoschool"); err != nil {
		t.Fatal(err)
	}
	if err := x.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTwitterAppleSpike(t *testing.T) {
	truth := Twitter(0, Config{Locations: 25, Seed: 12})
	x := truth.Tensor
	i, _ := x.KeywordIndex("#apple")
	g := x.Global(i)
	base := stats.Quantile(g, 0.5)
	peak := stats.Max(g[124:132]) // iPhone 4S window
	if peak < base*2 {
		t.Fatalf("#apple launch spike missing: peak %g base %g", peak, base)
	}
}

func TestMemeTrackerShape(t *testing.T) {
	truth := MemeTracker(5, Config{Locations: 10, Seed: 13})
	x := truth.Tensor
	if x.D() != 7 || x.N() != MemeTrackerTicks {
		t.Fatalf("dims (%d, %d)", x.D(), x.N())
	}
	if err := x.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMemeRisesAndFalls(t *testing.T) {
	truth := MemeTracker(0, Config{Locations: 20, Seed: 14})
	x := truth.Tensor
	i, _ := x.KeywordIndex("joe satriani viva la vida statement")
	g := x.Global(i)
	peakVal, peakAt := tensor.MaxSeq(g)
	if peakAt < 60 || peakAt > 75 {
		t.Fatalf("satriani peak at %d, want early December window", peakAt)
	}
	if g[len(g)-1] > peakVal*0.5 {
		t.Fatalf("meme did not decay: end %g peak %g", g[len(g)-1], peakVal)
	}
}

func TestScalabilityDimensions(t *testing.T) {
	truth := Scalability(13, Config{Locations: 12, Ticks: 80, Seed: 15})
	if truth.Tensor.D() != 13 {
		t.Fatalf("d = %d, want 13", truth.Tensor.D())
	}
	seen := map[string]bool{}
	for _, k := range truth.Tensor.Keywords {
		if seen[k] {
			t.Fatalf("duplicate keyword name %q", k)
		}
		seen[k] = true
	}
}

func TestWeekOf(t *testing.T) {
	if weekOf(2004, 1) != 0 {
		t.Fatalf("weekOf(2004,1) = %d", weekOf(2004, 1))
	}
	if weekOf(2005, 1) != 52 {
		t.Fatalf("weekOf(2005,1) = %d", weekOf(2005, 1))
	}
	if w := weekOf(2008, 11); w < 247 || w > 255 {
		t.Fatalf("weekOf(2008,11) = %d", w)
	}
}

func TestNoiseScalesWithConfig(t *testing.T) {
	quiet := GoogleTrends(Config{Locations: 5, Ticks: 150, Seed: 20, Noise: 0.001})
	loud := GoogleTrends(Config{Locations: 5, Ticks: 150, Seed: 20, Noise: 0.2})
	// Same ground truth, different noise: the loud tensor deviates more
	// from its smoothed self.
	gq := quiet.Tensor.Global(0)
	gl := loud.Tensor.Global(0)
	dq := stats.RMSE(gq, tensor.Smooth(gq, 2))
	dl := stats.RMSE(gl, tensor.Smooth(gl, 2))
	if dl < dq {
		t.Fatalf("noise config ineffective: quiet %g loud %g", dq, dl)
	}
	if math.IsNaN(dq) || math.IsNaN(dl) {
		t.Fatal("NaN in generated data")
	}
}
