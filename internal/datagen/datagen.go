// Package datagen synthesises the three datasets of the Δ-SPOT paper's
// evaluation. The real datasets (GoogleTrends 2004–2015, a 7M-post Twitter
// crawl, MemeTracker) are not redistributable, so each generator produces a
// ground-truth-scripted equivalent: keyword worlds are rendered through the
// same SIV dynamics family the paper models (base trends, population growth
// effects, cyclic and one-shot external shocks, per-country populations from
// the world registry) plus observation noise. Because the ground truth is
// known, experiments can check *recovery correctness* in addition to fit
// quality — something the paper could not do. See DESIGN.md §3.
package datagen

import (
	"fmt"
	"math"
	"math/rand"

	"dspot/internal/core"
	"dspot/internal/tensor"
	"dspot/internal/world"
)

// EventSpec is a scripted external shock in the generated world.
type EventSpec struct {
	Name        string  // label for documentation ("movie release", ...)
	Period      int     // ticks between occurrences; 0 = one-shot
	Start       int     // first occurrence tick
	Width       int     // ticks per occurrence
	Strength    float64 // ε₀ injected into the susceptibility profile
	Occurrences int     // cap on occurrences (0 = unlimited within window)

	// EnglishBias skews per-country participation by the registry's English
	// affinity raised to this power (0 = uniform participation).
	EnglishBias float64
	// Skip lists country codes that do not participate at all (e.g., the
	// low-connectivity outliers of Fig. 8).
	Skip []string
}

// GrowthSpec is a scripted population growth effect.
type GrowthSpec struct {
	Start int     // onset tick t_η
	Rate  float64 // η₀
}

// KeywordSpec scripts one keyword's ground-truth world.
type KeywordSpec struct {
	Name   string
	Volume float64 // world-wide potential population (arbitrary units)

	Beta, Delta, Gamma, I0 float64 // base SIV dynamics

	Growth *GrowthSpec
	Events []EventSpec

	// EnglishBias skews the per-country population share (not just event
	// participation): Harry Potter's audience concentrates in
	// English-affine markets, Ebola interest is near-universal.
	EnglishBias float64
}

// Truth bundles a generated tensor with the scripts that produced it.
type Truth struct {
	Tensor   *tensor.Tensor
	Keywords []KeywordSpec
	// Start/TickDays document the calendar mapping for presentation.
	StartYear int
	TickDays  int
}

// Config controls generation.
type Config struct {
	Locations int     // number of countries, capped at the registry size (default 232)
	Ticks     int     // duration; 0 selects the dataset's natural length
	Noise     float64 // observation noise relative to each cell's peak (default 0.03)
	Seed      int64   // RNG seed (0 means seed 1; generation is deterministic per seed)
}

func (c Config) withDefaults(naturalTicks int) Config {
	if c.Locations <= 0 || c.Locations > world.Count() {
		c.Locations = world.Count()
	}
	if c.Ticks <= 0 {
		c.Ticks = naturalTicks
	}
	if c.Noise <= 0 {
		c.Noise = 0.03
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// weekOf maps (year, month) to a weekly tick with tick 0 = January 2004.
func weekOf(year, month int) int {
	return (year-2004)*52 + (month-1)*52/12
}

// googleTrendsSpecs scripts the eight trending keywords of Fig. 5 (plus the
// figure-specific keywords reused across the paper's experiments).
func googleTrendsSpecs() []KeywordSpec {
	return []KeywordSpec{
		{
			Name: "harry potter", Volume: 90,
			Beta: 0.5, Delta: 0.45, Gamma: 0.5, I0: 0.015, EnglishBias: 1.2,
			Events: []EventSpec{
				// Biennial July movie/book releases, 2004 through 2011 only
				// (the franchise's publication era) — the green circles of
				// Fig. 1(a).
				{Name: "july releases", Period: 104, Start: weekOf(2005, 7), Width: 2,
					Strength: 7, Occurrences: 4, EnglishBias: 1.0},
				// November movie episodes — the purple circles.
				{Name: "november episodes", Period: 104, Start: weekOf(2004, 11), Width: 2,
					Strength: 4.5, Occurrences: 4, EnglishBias: 1.0},
				// One non-cyclic May spike — the red circle.
				{Name: "may spike", Period: 0, Start: weekOf(2004, 5), Width: 1,
					Strength: 3.5, EnglishBias: 0.8},
			},
		},
		{
			Name: "barack obama", Volume: 110,
			Beta: 0.48, Delta: 0.46, Gamma: 0.45, I0: 0.008, EnglishBias: 0.5,
			Events: []EventSpec{
				{Name: "2008 election", Period: 0, Start: weekOf(2008, 11), Width: 3,
					Strength: 12, EnglishBias: 0.3},
				{Name: "2009 inauguration", Period: 0, Start: weekOf(2009, 1), Width: 2,
					Strength: 5, EnglishBias: 0.3},
				{Name: "2012 election", Period: 0, Start: weekOf(2012, 11), Width: 2,
					Strength: 6, EnglishBias: 0.3},
			},
		},
		{
			Name: "olympics", Volume: 100,
			Beta: 0.52, Delta: 0.48, Gamma: 0.5, I0: 0.006, EnglishBias: 0.2,
			Events: []EventSpec{
				{Name: "summer games", Period: 208, Start: weekOf(2004, 8), Width: 3,
					Strength: 10},
				{Name: "winter games", Period: 208, Start: weekOf(2006, 2), Width: 2,
					Strength: 5},
				{Name: "london 2012", Period: 0, Start: weekOf(2012, 7), Width: 3,
					Strength: 11},
			},
		},
		{
			Name: "amazon", Volume: 80,
			Beta: 0.5014, Delta: 0.4675, Gamma: 0.5211, I0: 0.02, EnglishBias: 0.9,
			// The paper's footnote *1 parameters: growth from tick 343.
			Growth: &GrowthSpec{Start: 343, Rate: 0.1605},
			Events: []EventSpec{
				{Name: "holiday shopping", Period: 52, Start: weekOf(2004, 12) - 3, Width: 3,
					Strength: 1.8, EnglishBias: 0.8},
			},
		},
		{
			Name: "facebook", Volume: 120,
			Beta: 0.49, Delta: 0.47, Gamma: 0.5, I0: 0.004, EnglishBias: 0.4,
			Growth: &GrowthSpec{Start: weekOf(2007, 6), Rate: 0.28},
		},
		{
			Name: "netflix", Volume: 70,
			Beta: 0.5, Delta: 0.46, Gamma: 0.48, I0: 0.003, EnglishBias: 1.0,
			Growth: &GrowthSpec{Start: weekOf(2011, 7), Rate: 0.22},
		},
		{
			Name: "grammy", Volume: 60,
			Beta: 0.5, Delta: 0.45, Gamma: 0.5, I0: 0.01, EnglishBias: 1.1,
			Events: []EventSpec{
				// Annual awards held every February (Fig. 11).
				{Name: "grammy awards", Period: 52, Start: weekOf(2004, 2), Width: 2,
					Strength: 9, EnglishBias: 0.7},
			},
		},
		{
			// β must exceed δ so a low endemic interest level survives the
			// decade before the outbreak — otherwise the 2014 shock has no
			// infectives left to amplify.
			Name: "ebola", Volume: 75,
			Beta: 0.53, Delta: 0.5, Gamma: 0.4, I0: 0.005, EnglishBias: 0,
			Events: []EventSpec{
				// The 2014 West-Africa outbreak burst (Fig. 8); the
				// low-connectivity outliers of the paper do not react.
				{Name: "2014 outbreak", Period: 0, Start: weekOf(2014, 8), Width: 6,
					Strength: 14, Skip: []string{"LA", "NP", "CG"}},
				{Name: "2014 us case", Period: 0, Start: weekOf(2014, 10), Width: 2,
					Strength: 8, Skip: []string{"LA", "NP", "CG"}},
			},
		},
	}
}

// GoogleTrendsTicks is the natural duration of the GoogleTrends-like
// dataset: weekly ticks from January 2004 to January 2015.
const GoogleTrendsTicks = 576

// GoogleTrends generates the weekly (keyword, country, week) tensor.
func GoogleTrends(cfg Config) *Truth {
	cfg = cfg.withDefaults(GoogleTrendsTicks)
	return generate(googleTrendsSpecs(), cfg, 2004, 7)
}

// GoogleTrendsKeyword generates a single keyword's world (all countries),
// convenient for the single-keyword figures. It fails only for unknown
// names.
func GoogleTrendsKeyword(name string, cfg Config) (*Truth, error) {
	for _, spec := range googleTrendsSpecs() {
		if spec.Name == name {
			cfg = cfg.withDefaults(GoogleTrendsTicks)
			return generate([]KeywordSpec{spec}, cfg, 2004, 7), nil
		}
	}
	return nil, fmt.Errorf("datagen: unknown GoogleTrends keyword %q", name)
}

// GoogleTrendsKeywordNames lists the scripted keywords.
func GoogleTrendsKeywordNames() []string {
	specs := googleTrendsSpecs()
	out := make([]string, len(specs))
	for i, s := range specs {
		out[i] = s.Name
	}
	return out
}

// TwitterTicks is the natural duration of the Twitter-like dataset: daily
// ticks for the paper's 8-month window (June 2011 – January 2012).
const TwitterTicks = 245

// twitterSpecs scripts the hashtags of Fig. 6 plus a bursty long tail.
func twitterSpecs(extra int, seed int64) []KeywordSpec {
	specs := []KeywordSpec{
		{
			Name: "#apple", Volume: 100,
			Beta: 0.55, Delta: 0.5, Gamma: 0.45, I0: 0.02, EnglishBias: 0.6,
			Events: []EventSpec{
				// Product-launch spikes: iPhone 4S announcement (Oct 4),
				// Steve Jobs' death (Oct 5), iTunes Match (Nov).
				{Name: "wwdc", Period: 0, Start: 6, Width: 2, Strength: 6},
				{Name: "iphone 4s", Period: 0, Start: 126, Width: 3, Strength: 13},
				{Name: "november launch", Period: 0, Start: 165, Width: 2, Strength: 4},
			},
		},
		{
			Name: "#backtoschool", Volume: 40,
			Beta: 0.5, Delta: 0.48, Gamma: 0.42, I0: 0.01, EnglishBias: 1.4,
			Events: []EventSpec{
				// Annual burst at the end of August; within the 8-month
				// window a single occurrence of a yearly event (period 365).
				{Name: "school season", Period: 365, Start: 85, Width: 10, Strength: 7,
					EnglishBias: 1.0},
			},
		},
	}
	rng := rand.New(rand.NewSource(seed ^ 0x7177))
	for i := 0; i < extra; i++ {
		spec := KeywordSpec{
			Name: fmt.Sprintf("#tag%03d", i), Volume: 5 + rng.Float64()*40,
			Beta: 0.45 + rng.Float64()*0.15, Delta: 0.44 + rng.Float64()*0.1,
			Gamma: 0.4 + rng.Float64()*0.2, I0: 0.002 + rng.Float64()*0.02,
			EnglishBias: rng.Float64(),
		}
		bursts := 1 + rng.Intn(3)
		for b := 0; b < bursts; b++ {
			spec.Events = append(spec.Events, EventSpec{
				Name: "burst", Period: 0, Start: rng.Intn(TwitterTicks - 10),
				Width: 1 + rng.Intn(4), Strength: 2 + rng.Float64()*8,
			})
		}
		specs = append(specs, spec)
	}
	return specs
}

// Twitter generates the daily hashtag tensor: the two scripted hashtags of
// Fig. 6 plus extraTags random bursty hashtags.
func Twitter(extraTags int, cfg Config) *Truth {
	cfg = cfg.withDefaults(TwitterTicks)
	return generate(twitterSpecs(extraTags, cfg.Seed), cfg, 2011, 1)
}

// MemeTrackerTicks is the natural duration of the MemeTracker-like dataset:
// daily ticks for August–October 2008.
const MemeTrackerTicks = 92

// memeSpecs scripts short-lived quoted phrases: single-peak rise and fall,
// occasionally with an echo. Meme #3 ("yes we can yes we can") and #16 (the
// Satriani statement) of Fig. 7 are the first two.
func memeSpecs(extra int, seed int64) []KeywordSpec {
	specs := []KeywordSpec{
		{
			Name: "yes we can yes we can", Volume: 80,
			Beta: 0.6, Delta: 0.42, Gamma: 0.05, I0: 0.001, EnglishBias: 1.5,
			Events: []EventSpec{
				{Name: "debate echo", Period: 0, Start: 58, Width: 2, Strength: 5},
				{Name: "election week", Period: 0, Start: 88, Width: 3, Strength: 9},
			},
		},
		{
			Name: "joe satriani viva la vida statement", Volume: 35,
			Beta: 0.85, Delta: 0.55, Gamma: 0.01, I0: 0.0005, EnglishBias: 1.0,
			Events: []EventSpec{
				{Name: "story breaks", Period: 0, Start: 62, Width: 3, Strength: 18},
			},
		},
	}
	rng := rand.New(rand.NewSource(seed ^ 0x6d656d))
	for i := 0; i < extra; i++ {
		specs = append(specs, KeywordSpec{
			Name: fmt.Sprintf("meme%03d", i), Volume: 3 + rng.Float64()*25,
			Beta: 0.5 + rng.Float64()*0.5, Delta: 0.4 + rng.Float64()*0.25,
			Gamma: rng.Float64() * 0.1, I0: 0.0005 + rng.Float64()*0.002,
			EnglishBias: rng.Float64() * 1.5,
			Events: []EventSpec{{
				Name: "peak", Period: 0, Start: 5 + rng.Intn(MemeTrackerTicks-20),
				Width: 1 + rng.Intn(5), Strength: 4 + rng.Float64()*16,
			}},
		})
	}
	return specs
}

// MemeTracker generates the daily phrase-mention tensor: the two scripted
// memes of Fig. 7 plus extraMemes random single-peak phrases.
func MemeTracker(extraMemes int, cfg Config) *Truth {
	cfg = cfg.withDefaults(MemeTrackerTicks)
	return generate(memeSpecs(extraMemes, cfg.Seed), cfg, 2008, 1)
}

// Custom renders caller-supplied keyword scripts with the weekly
// GoogleTrends calendar — the hook for experiments that need a world the
// stock scripts do not provide (e.g., a heavyweight non-participating
// country for the local-structure ablation).
func Custom(specs []KeywordSpec, cfg Config) *Truth {
	cfg = cfg.withDefaults(GoogleTrendsTicks)
	return generate(specs, cfg, 2004, 7)
}

// Scalability generates d synthetic keywords by cycling and perturbing the
// GoogleTrends scripts — the workload for the Fig. 10 sweeps.
func Scalability(d int, cfg Config) *Truth {
	base := googleTrendsSpecs()
	specs := make([]KeywordSpec, d)
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x5ca1e))
	for i := range specs {
		s := base[i%len(base)]
		s.Name = fmt.Sprintf("%s/%d", s.Name, i/len(base))
		s.Volume *= 0.6 + rng.Float64()
		specs[i] = s
	}
	cfg = cfg.withDefaults(GoogleTrendsTicks)
	return generate(specs, cfg, 2004, 7)
}

// generate renders the scripted keyword worlds into a tensor.
func generate(specs []KeywordSpec, cfg Config, startYear, tickDays int) *Truth {
	countries := world.Countries()[:cfg.Locations]
	codes := make([]string, len(countries))
	for j, c := range countries {
		codes[j] = c.Code
	}
	names := make([]string, len(specs))
	for i, s := range specs {
		names[i] = s.Name
	}
	x := tensor.New(names, codes, cfg.Ticks)
	rng := rand.New(rand.NewSource(cfg.Seed))

	for i, spec := range specs {
		shares := countryShares(countries, spec.EnglishBias, rng)
		for j, c := range countries {
			params := core.KeywordParams{
				N:    spec.Volume * shares[j],
				Beta: spec.Beta, Delta: spec.Delta, Gamma: spec.Gamma,
				I0: spec.I0, TEta: core.NoGrowth,
			}
			rate := -1.0
			if spec.Growth != nil && spec.Growth.Start < cfg.Ticks {
				params.TEta = spec.Growth.Start
				params.Eta0 = spec.Growth.Rate
				// Per-country growth-rate variation (R_L in the model).
				rate = spec.Growth.Rate * (0.6 + 0.8*rng.Float64())
			}
			eps := epsilonForCountry(spec.Events, c, cfg.Ticks, rng)
			sim := core.Simulate(&params, cfg.Ticks, eps, rate)
			peak := 0.0
			for _, v := range sim {
				if v > peak {
					peak = v
				}
			}
			for t := 0; t < cfg.Ticks; t++ {
				v := sim[t] + rng.NormFloat64()*cfg.Noise*peak
				if v < 0 {
					v = 0
				}
				x.Set(i, j, t, v)
			}
		}
	}
	return &Truth{Tensor: x, Keywords: specs, StartYear: startYear, TickDays: tickDays}
}

// countryShares distributes a keyword's volume across countries by registry
// weight, skewed by English affinity and jittered deterministically.
func countryShares(countries []world.Country, englishBias float64, rng *rand.Rand) []float64 {
	shares := make([]float64, len(countries))
	total := 0.0
	for j, c := range countries {
		w := c.Weight
		if englishBias > 0 {
			w *= math.Pow(math.Max(c.English, 0.02), englishBias)
		}
		w *= 0.7 + 0.6*rng.Float64() // idiosyncratic interest
		shares[j] = w
		total += w
	}
	for j := range shares {
		shares[j] /= total
	}
	return shares
}

// epsilonForCountry builds the susceptibility profile ε(t) for one country
// from the event scripts.
func epsilonForCountry(events []EventSpec, c world.Country, n int, rng *rand.Rand) []float64 {
	eps := make([]float64, n)
	for t := range eps {
		eps[t] = 1
	}
	for _, e := range events {
		if skipCountry(e.Skip, c.Code) {
			continue
		}
		mult := 1.0
		if e.EnglishBias > 0 {
			mult = math.Pow(math.Max(c.English, 0.02), e.EnglishBias)
		}
		mult *= 0.8 + 0.4*rng.Float64()
		occ := 0
		for start := e.Start; start < n; start += max(e.Period, 1) {
			if e.Occurrences > 0 && occ >= e.Occurrences {
				break
			}
			for t := start; t < start+e.Width && t < n; t++ {
				if t >= 0 {
					eps[t] += e.Strength * mult
				}
			}
			occ++
			if e.Period <= 0 {
				break
			}
		}
	}
	return eps
}

func skipCountry(skip []string, code string) bool {
	for _, s := range skip {
		if s == code {
			return true
		}
	}
	return false
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
