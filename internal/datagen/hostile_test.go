package datagen

import (
	"testing"

	"dspot/internal/tensor"
)

// schedulesEqual compares scenario lists treating Missing (NaN) as equal to
// itself, which reflect.DeepEqual does not.
func schedulesEqual(a, b []HostileScenario) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Name != b[i].Name || len(a[i].Ops) != len(b[i].Ops) {
			return false
		}
		for j := range a[i].Ops {
			oa, ob := a[i].Ops[j], b[i].Ops[j]
			if oa.At != ob.At || len(oa.Values) != len(ob.Values) {
				return false
			}
			for k := range oa.Values {
				if tensor.IsMissing(oa.Values[k]) && tensor.IsMissing(ob.Values[k]) {
					continue
				}
				if oa.Values[k] != ob.Values[k] {
					return false
				}
			}
		}
	}
	return true
}

func TestHostileScenariosDeterministic(t *testing.T) {
	a := HostileScenarios(42, 120)
	b := HostileScenarios(42, 120)
	if !schedulesEqual(a, b) {
		t.Fatal("same seed produced different schedules")
	}
	c := HostileScenarios(43, 120)
	if schedulesEqual(a, c) {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestHostileScenariosShape(t *testing.T) {
	const n = 120
	scenarios := HostileScenarios(7, n)
	want := []string{"regime-change", "duplicate-replay", "missing-storm",
		"count-overflow", "spike-train-burst"}
	if len(scenarios) != len(want) {
		t.Fatalf("%d scenarios, want %d", len(scenarios), len(want))
	}
	for i, sc := range scenarios {
		if sc.Name != want[i] {
			t.Fatalf("scenario %d named %q, want %q", i, sc.Name, want[i])
		}
		if err := sc.Validate(); err != nil {
			t.Fatal(err)
		}
		if sc.Ticks() < n {
			t.Fatalf("%s carries %d ticks, want >= %d", sc.Name, sc.Ticks(), n)
		}
	}
}

func TestHostileScenariosCharacter(t *testing.T) {
	byName := map[string]HostileScenario{}
	for _, sc := range HostileScenarios(11, 120) {
		byName[sc.Name] = sc
	}
	missing := 0
	for _, op := range byName["missing-storm"].Ops {
		for _, v := range op.Values {
			if tensor.IsMissing(v) {
				missing++
			}
		}
	}
	if missing < 20 {
		t.Fatalf("missing-storm blanked only %d ticks", missing)
	}
	peak := 0.0
	for _, op := range byName["count-overflow"].Ops {
		for _, v := range op.Values {
			if v > peak {
				peak = v
			}
		}
	}
	if peak < 1e250 {
		t.Fatalf("count-overflow peaked at %g, want near the float ceiling", peak)
	}
	positioned := 0
	for _, op := range byName["duplicate-replay"].Ops {
		if op.At >= 0 {
			positioned++
		}
	}
	if positioned == 0 {
		t.Fatal("duplicate-replay never positioned an append")
	}
}
