package datagen

import (
	"fmt"
	"math"
	"math/rand"

	"dspot/internal/tensor"
)

// Hostile-input generators: scripted adversarial append schedules for the
// serving layer's chaos matrix. Where scenarios.go asks "which engine
// explains this world most cheaply?", these ask "does the serving layer
// degrade gracefully when the world misbehaves?" — regime changes that
// invalidate every fitted model at once, producers that replay or reorder
// ticks, outages that blank most of the signal, counters that overflow
// toward the float ceiling, and heavy-tailed spike trains. Every value is
// non-negative and finite (or tensor.Missing): the point is input that is
// *plausible at the wire* yet hostile to the models behind it.

// StreamOp is one append in a hostile schedule: Values lands at absolute
// tick At, or at the stream head when At is negative.
type StreamOp struct {
	At     int64
	Values []float64
}

// HostileScenario is one named adversarial append schedule.
type HostileScenario struct {
	Name string
	Ops  []StreamOp
}

// Ticks returns the total number of values the schedule carries (fillers
// and duplicates included) — the chaos matrix uses it to bound expected
// stream growth.
func (h HostileScenario) Ticks() int {
	n := 0
	for _, op := range h.Ops {
		n += len(op.Values)
	}
	return n
}

// hostileSeedSalt decorrelates hostile schedules from the world generators
// sharing a seed.
const hostileSeedSalt = 0x6f57a11

// HostileScenarios returns the full chaos matrix: all five generators,
// each scripting about n ticks, deterministic in seed.
func HostileScenarios(seed int64, n int) []HostileScenario {
	if n < 40 {
		n = 40
	}
	rng := rand.New(rand.NewSource(seed ^ hostileSeedSalt))
	return []HostileScenario{
		RegimeChange(rng, n),
		DuplicateReplay(rng, n),
		MissingStorm(rng, n),
		CountOverflow(rng, n),
		SpikeTrainBurst(rng, n),
	}
}

// chunked splits series into head appends of the given chunk size.
func chunked(series []float64, chunk int) []StreamOp {
	var ops []StreamOp
	for lo := 0; lo < len(series); lo += chunk {
		hi := lo + chunk
		if hi > len(series) {
			hi = len(series)
		}
		ops = append(ops, StreamOp{At: -1, Values: series[lo:hi]})
	}
	return ops
}

// RegimeChange scripts a ×25 level shift at mid-series: every model fitted
// on the first regime is instantly wrong, so the fleet's refit debt spikes
// in lockstep — the stampede input.
func RegimeChange(rng *rand.Rand, n int) HostileScenario {
	series := make([]float64, n)
	for t := range series {
		level := 20.0
		if t >= n/2 {
			level = 500
		}
		series[t] = level * (0.8 + 0.4*rng.Float64())
	}
	return HostileScenario{Name: "regime-change", Ops: chunked(series, 10)}
}

// DuplicateReplay scripts a misbehaving producer: normal head appends
// interleaved with full replays of earlier chunks (exact duplicates),
// partial overlaps (late ticks straddling the head) and the occasional
// small forward gap. A correct server drops the duplicates idempotently
// and bridges the gaps; history must never be rewritten.
func DuplicateReplay(rng *rand.Rand, n int) HostileScenario {
	var ops []StreamOp
	head := int64(0)
	chunk := 8
	emit := func(at int64, k int) []float64 {
		vals := make([]float64, k)
		for i := range vals {
			vals[i] = 30 + 10*math.Sin(float64(int64(i)+at)/6) + 3*rng.Float64()
		}
		return vals
	}
	for int(head) < n {
		vals := emit(head, chunk)
		ops = append(ops, StreamOp{At: head, Values: vals})
		head += int64(len(vals))
		switch rng.Intn(4) {
		case 0: // exact replay of the chunk just sent
			ops = append(ops, StreamOp{At: head - int64(chunk), Values: vals})
		case 1: // late ticks straddling the head: half duplicate, half new
			straddle := emit(head-int64(chunk)/2, chunk)
			ops = append(ops, StreamOp{At: head - int64(chunk)/2, Values: straddle})
			head += int64(chunk) - int64(chunk)/2
		case 2: // short forward gap the server must bridge with missing ticks
			gap := int64(1 + rng.Intn(3))
			vals := emit(head+gap, chunk)
			ops = append(ops, StreamOp{At: head + gap, Values: vals})
			head += gap + int64(len(vals))
		}
	}
	return HostileScenario{Name: "duplicate-replay", Ops: ops}
}

// MissingStorm scripts a collection outage: long runs where 50–80% of
// ticks arrive as tensor.Missing, with brief clear windows between storms.
func MissingStorm(rng *rand.Rand, n int) HostileScenario {
	series := make([]float64, n)
	inStorm := false
	left := 0
	dropP := 0.0
	for t := range series {
		if left == 0 {
			inStorm = !inStorm
			if inStorm {
				left = 10 + rng.Intn(15)
				dropP = 0.5 + 0.3*rng.Float64()
			} else {
				left = 5 + rng.Intn(10)
			}
		}
		left--
		if inStorm && rng.Float64() < dropP {
			series[t] = tensor.Missing
		} else {
			series[t] = 25 + 8*rng.Float64()
		}
	}
	return HostileScenario{Name: "missing-storm", Ops: chunked(series, 10)}
}

// CountOverflow scripts a runaway counter: values escalating geometrically
// from ordinary counts toward ~1e300 — still finite at the wire, but any
// squared residual or population product downstream overflows. The serving
// layer must answer with a 4xx or a degraded model, never a panic or an
// Inf leaking into state.
func CountOverflow(rng *rand.Rand, n int) HostileScenario {
	series := make([]float64, n)
	v := 50.0
	for t := range series {
		series[t] = v * (0.9 + 0.2*rng.Float64())
		if t > n/4 {
			v *= 1e4 // four decades per tick: hits the 1e300 cap well inside the schedule
			if v > 1e300 {
				v = 1e300
			}
		}
	}
	return HostileScenario{Name: "count-overflow", Ops: chunked(series, 10)}
}

// SpikeTrainBurst scripts a heavy-tailed spike train: a low baseline with
// Pareto-distributed bursts arriving in clusters, the shape that makes
// shock-candidate scans explode combinatorially if unbounded.
func SpikeTrainBurst(rng *rand.Rand, n int) HostileScenario {
	series := make([]float64, n)
	for t := range series {
		series[t] = 5 + 2*rng.Float64()
	}
	t := 0
	for t < n {
		t += 3 + rng.Intn(12)
		// Pareto tail (α≈1.2) capped to stay plausibly countish.
		spike := 100 * math.Pow(rng.Float64()+1e-9, -1/1.2)
		if spike > 1e6 {
			spike = 1e6
		}
		for w := 0; w < 1+rng.Intn(3) && t+w < n; w++ {
			series[t+w] += spike / float64(w+1)
		}
	}
	return HostileScenario{Name: "spike-train-burst", Ops: chunked(series, 10)}
}

// Validate checks a schedule's invariants: every value non-negative and
// finite or Missing, and every positioned op at a non-negative tick. The
// generators' own tests call it; chaos harnesses may too.
func (h HostileScenario) Validate() error {
	for i, op := range h.Ops {
		if op.At < -1 {
			return fmt.Errorf("%s op %d: bad position %d", h.Name, i, op.At)
		}
		for j, v := range op.Values {
			if tensor.IsMissing(v) {
				continue
			}
			if v < 0 || math.IsInf(v, 0) {
				return fmt.Errorf("%s op %d value %d: %g not wire-plausible", h.Name, i, j, v)
			}
		}
	}
	return nil
}
