package datagen

import (
	"math/rand"

	"dspot/internal/epidemic"
	"dspot/internal/hip"
	"dspot/internal/tensor"
	"dspot/internal/world"
)

// Scenario generators: one synthetic world per model family, used by the
// cross-engine selection experiments. Each renders its family's generative
// process through the shared country/noise machinery, so "which engine
// explains this world most cheaply?" has a scripted ground-truth answer.

// ScenarioTicks is the natural duration of the scenario worlds: three years
// of weekly ticks.
const ScenarioTicks = 156

// TrendScenario scripts a Δ-SPOT world: SIV base dynamics with a population
// growth onset and an annual cyclic shock — structure only the Δ-SPOT family
// models explicitly.
func TrendScenario(cfg Config) *Truth {
	cfg = cfg.withDefaults(ScenarioTicks)
	spec := KeywordSpec{
		Name: "trend", Volume: 90,
		Beta: 0.5, Delta: 0.45, Gamma: 0.5, I0: 0.01,
		// Sharp narrow annual bursts and a sustained growth ramp: structure a
		// sinusoidally-forced compartment (SKIPS) cannot reproduce.
		Growth: &GrowthSpec{Start: cfg.Ticks / 3, Rate: 0.35},
		Events: []EventSpec{
			{Name: "annual burst", Period: 52, Start: 10, Width: 2, Strength: 12},
		},
	}
	return generate([]KeywordSpec{spec}, cfg, 2004, 7)
}

// EpidemicScenario scripts a pure SI adoption world: a logistic S-curve that
// rises once and saturates, with no seasonality, growth or shocks — the
// compartmental family's home turf.
func EpidemicScenario(cfg Config) *Truth {
	cfg = cfg.withDefaults(ScenarioTicks)
	p := epidemic.Params{Kind: epidemic.SI, N: 100, Beta: 0.08, I0: 0.01}
	return renderCurve("adoption", p.Simulate(cfg.Ticks), cfg)
}

// HawkesScenario scripts a self-exciting world: a HIP process driven by three
// promotion pulses, where each burst's decay is the power-law kernel rather
// than compartmental dynamics. It returns the world plus the promotion series
// s(t) that drove it (the fit must be given the same exogenous input).
func HawkesScenario(cfg Config) (*Truth, []float64) {
	cfg = cfg.withDefaults(ScenarioTicks)
	n := cfg.Ticks
	promo := make([]float64, n)
	for t := range promo {
		promo[t] = 1
	}
	for _, pulse := range []struct {
		at     int
		height float64
	}{
		{n * 15 / 100, 10},
		{n * 50 / 100, 8},
		{n * 75 / 100, 12},
	} {
		for t := pulse.at; t < pulse.at+3 && t < n; t++ {
			promo[t] += pulse.height
		}
	}
	p := hip.Params{Mu: 50, C: 0.5, Theta: 0.6, Cutoff: 2}
	return renderCurve("viral", p.Simulate(n, promo), cfg), promo
}

// renderCurve distributes one global curve across the country registry with
// deterministic shares and per-cell observation noise — the scenario
// counterpart of generate for families without per-country dynamics.
func renderCurve(name string, curve []float64, cfg Config) *Truth {
	countries := world.Countries()[:cfg.Locations]
	codes := make([]string, len(countries))
	for j, c := range countries {
		codes[j] = c.Code
	}
	x := tensor.New([]string{name}, codes, cfg.Ticks)
	rng := rand.New(rand.NewSource(cfg.Seed))
	shares := countryShares(countries, 0, rng)
	peak := 0.0
	for _, v := range curve {
		if v > peak {
			peak = v
		}
	}
	for j := range countries {
		for t := 0; t < cfg.Ticks; t++ {
			v := curve[t]*shares[j] + rng.NormFloat64()*cfg.Noise*peak*shares[j]
			if v < 0 {
				v = 0
			}
			x.Set(0, j, t, v)
		}
	}
	return &Truth{Tensor: x, StartYear: 2004, TickDays: 7}
}
