package lm

import (
	"math"
	"testing"
)

// Regression: the forward-difference Jacobian used to probe outside Lower
// when the Upper check flipped the step — with a box narrower than the FD
// step, p[j]+h > hi flips to p[j]-h, which lands below lo and is handed to
// the residual function unclamped. The residual function here asserts the
// promised box on every call; it fails against the pre-fix code.
func TestJacobianProbeRespectsLowerBound(t *testing.T) {
	lo := []float64{1, 0}
	hi := []float64{1 + 1e-9, 10} // param 0 pinned: box far narrower than FD step
	var violations []float64
	f := func(p []float64) []float64 {
		if p[0] < lo[0] || p[0] > hi[0] {
			violations = append(violations, p[0])
		}
		return []float64{(p[0] - 1) * 5, p[1] - 3}
	}
	res, err := Fit(f, []float64{1, 7}, Options{Lower: lo, Upper: hi, MaxIter: 20})
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	if len(violations) > 0 {
		t.Fatalf("residual function called %d times outside [lo, hi]; first offending p[0] = %g",
			len(violations), violations[0])
	}
	if got := res.Params[0]; got < lo[0] || got > hi[0] {
		t.Fatalf("fitted param 0 = %g escaped its box", got)
	}
	if got := res.Params[1]; math.Abs(got-3) > 1e-6 {
		t.Fatalf("fitted param 1 = %g, want 3 (free parameter must still converge)", got)
	}
}

// The flipped probe may violate Lower even when the box is wider than one
// step (p sits within FDStep·|p| of both bounds). The probe must then be
// clamped to Lower — still inside the box — rather than passed through.
func TestJacobianProbeClampedNotSkipped(t *testing.T) {
	// p0 = 1, FD step = 1e-6: forward probe 1+1e-6 exceeds hi = 1+1e-9,
	// flipped probe 1-1e-6 undercuts lo = 1-5e-7 and must clamp to lo.
	lo := []float64{1 - 5e-7}
	hi := []float64{1 + 1e-9}
	probed := map[float64]bool{}
	f := func(p []float64) []float64 {
		if p[0] < lo[0] || p[0] > hi[0] {
			t.Errorf("probe %g outside [%g, %g]", p[0], lo[0], hi[0])
		}
		probed[p[0]] = true
		return []float64{p[0] - 2}
	}
	if _, err := Fit(f, []float64{1}, Options{Lower: lo, Upper: hi, MaxIter: 3}); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	if !probed[lo[0]] {
		t.Fatalf("clamped probe at lo = %g never evaluated; probes: %v", lo[0], probed)
	}
}

// A pinned parameter (lo == hi) must neither be probed outside the point
// box nor stop the other parameters from converging.
func TestJacobianPinnedParameter(t *testing.T) {
	lo := []float64{2, -10}
	hi := []float64{2, 10}
	f := func(p []float64) []float64 {
		if p[0] != 2 {
			t.Errorf("pinned parameter probed at %g", p[0])
		}
		return []float64{p[1] - p[0]}
	}
	res, err := Fit(f, []float64{2, 0}, Options{Lower: lo, Upper: hi})
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	if math.Abs(res.Params[1]-2) > 1e-6 {
		t.Fatalf("free parameter = %g, want 2", res.Params[1])
	}
}
