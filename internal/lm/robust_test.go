package lm

import (
	"math"
	"strings"
	"testing"
)

// A non-finite starting cost must be reported as an error, not looped on.
func TestFitNonFiniteInitialCost(t *testing.T) {
	f := func(p []float64) []float64 { return []float64{math.Inf(1)} }
	_, err := Fit(f, []float64{1}, Options{})
	if err == nil || !strings.Contains(err.Error(), "non-finite") {
		t.Fatalf("Fit with Inf initial residual: err = %v, want non-finite cost error", err)
	}
	g := func(p []float64) []float64 { return []float64{math.Inf(-1), 1} }
	if _, err := Fit(g, []float64{1}, Options{}); err == nil {
		t.Fatalf("Fit with -Inf initial residual: want error, got nil")
	}
}

// An objective that blows up to Inf away from the optimum must not stop the
// fit from converging from a finite start: Inf trials are rejected like any
// worse step and Inf-contaminated Jacobian entries are dropped.
func TestFitSurvivesInfRegion(t *testing.T) {
	target := 3.0
	f := func(p []float64) []float64 {
		x := p[0]
		if x > 10 { // simulated overflow region
			return []float64{math.Inf(1)}
		}
		return []float64{x - target}
	}
	res, err := Fit(f, []float64{9.9}, Options{})
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	if math.Abs(res.Params[0]-target) > 1e-4 {
		t.Fatalf("Fit converged to %g, want %g", res.Params[0], target)
	}
	if math.IsNaN(res.SSE) || math.IsInf(res.SSE, 0) {
		t.Fatalf("Fit returned non-finite SSE %g", res.SSE)
	}
}

// A residual entry that flips to NaN under perturbation (missing under one
// parameterisation, observed under another) must contribute zero slope, and
// an Inf difference must be dropped rather than poisoning the step.
func TestFitNonFiniteJacobianEntries(t *testing.T) {
	f := func(p []float64) []float64 {
		x := p[0]
		r := []float64{x - 2, 0}
		if x > 5 {
			r[1] = math.Inf(1)
		}
		return r
	}
	res, err := Fit(f, []float64{4.999999}, Options{})
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	if math.Abs(res.Params[0]-2) > 1e-3 {
		t.Fatalf("Fit converged to %g, want 2", res.Params[0])
	}
}

func TestSSEInf(t *testing.T) {
	if got := sse([]float64{1, math.Inf(-1), 2}); !math.IsInf(got, 1) {
		t.Fatalf("sse with Inf entry = %g, want +Inf", got)
	}
	if got := sse([]float64{1, math.NaN(), 2}); got != 5 {
		t.Fatalf("sse with NaN (missing) entry = %g, want 5", got)
	}
}
