// Package lm implements the Levenberg–Marquardt algorithm for non-linear
// least squares, the optimiser named by the Δ-SPOT paper (its reference [4],
// Levenberg 1944). It is written for the shape of problem the fitters
// produce: a handful of bounded parameters, residual vectors of a few
// hundred to a few thousand entries, and objective functions that are full
// SIV simulations. Jacobians come from a caller-supplied analytic
// JacobianFunc when Options.Jacobian is set (one sensitivity pass per
// iteration), and from forward finite differences otherwise (p+1 residual
// evaluations per iteration) — the FD path doubles as the cross-check
// oracle for analytic implementations.
package lm

import (
	"context"
	"errors"
	"fmt"
	"math"
)

// ResidualFunc evaluates the residual vector r(p) for parameters p. The
// returned slice must have constant length across calls; NaN entries are
// treated as missing observations and contribute zero to the objective and
// Jacobian.
type ResidualFunc func(p []float64) []float64

// ResidualIntoFunc evaluates r(p) into a caller-provided buffer. The
// contract mirrors the residualsInto helpers in the fitters: when dst has
// sufficient capacity the function must write into it and return dst[:m];
// when dst is nil or too small it must allocate and return a fresh slice —
// never a view of internal state shared across calls. FitInto relies on
// this to hold the current, probe, and trial residual vectors in three
// distinct buffers, so an implementation that returns the same backing
// array on every call would corrupt the Jacobian.
type ResidualIntoFunc func(dst, p []float64) []float64

// JacobianFunc fills jac — row-major m×dim, m the residual length and dim
// the parameter count — with the analytic Jacobian ∂r_i/∂p_j at p. The
// buffer is caller-owned and sized; every entry must be written. Entries in
// rows whose residual is NaN (missing observations) and non-finite entries
// (overflowed sensitivities of explosive trajectories) are zeroed by the
// driver after the call, so implementations need no special handling for
// either.
type JacobianFunc func(jac, p []float64)

// Options configures a Fit run. The zero value selects sensible defaults.
type Options struct {
	MaxIter   int       // maximum outer iterations (default 100)
	Tol       float64   // relative SSE improvement tolerance (default 1e-8)
	Lambda0   float64   // initial damping factor (default 1e-3)
	LambdaUp  float64   // damping multiplier on rejection (default 10)
	LambdaDn  float64   // damping divisor on acceptance (default 10)
	Lower     []float64 // optional per-parameter lower bounds
	Upper     []float64 // optional per-parameter upper bounds
	FDStep    float64   // relative finite-difference step (default 1e-6)
	MaxLambda float64   // damping ceiling before giving up (default 1e10)

	// Jacobian, when non-nil, supplies the analytic Jacobian of the
	// residuals and replaces the forward-difference probes entirely: one
	// call per iteration instead of dim probe evaluations. FDStep is then
	// unused.
	Jacobian JacobianFunc

	// Ctx, when non-nil, is checked at the top of every outer iteration:
	// once it is done Fit stops and returns the best parameters found so
	// far together with an error wrapping ctx.Err(). An objective function
	// is a full simulation, so this bounds cancel-to-stop latency by one
	// LM iteration (one Jacobian plus the damped trial steps).
	Ctx context.Context
}

// Result reports the outcome of a Fit run.
type Result struct {
	Params     []float64 // best parameters found
	SSE        float64   // sum of squared residuals at Params
	Iterations int       // outer iterations performed
	Converged  bool      // true if the relative-improvement tolerance was reached
	// Stalled is true when the damping loop hit MaxLambda without finding
	// an improving step: the search stopped at a (possibly bounded) local
	// minimum or on a pathological surface, not because the tolerance was
	// met. Converged and Stalled are mutually exclusive; both false means
	// MaxIter ran out while steps were still improving.
	Stalled bool
}

func (o *Options) fill(dim int) error {
	if o.MaxIter <= 0 {
		o.MaxIter = 100
	}
	if o.Tol <= 0 {
		o.Tol = 1e-8
	}
	if o.Lambda0 <= 0 {
		o.Lambda0 = 1e-3
	}
	if o.LambdaUp <= 1 {
		o.LambdaUp = 10
	}
	if o.LambdaDn <= 1 {
		o.LambdaDn = 10
	}
	if o.FDStep <= 0 {
		o.FDStep = 1e-6
	}
	if o.MaxLambda <= 0 {
		o.MaxLambda = 1e10
	}
	if o.Lower != nil && len(o.Lower) != dim {
		return errors.New("lm: Lower bound length mismatch")
	}
	if o.Upper != nil && len(o.Upper) != dim {
		return errors.New("lm: Upper bound length mismatch")
	}
	return nil
}

// sse sums squared residuals; NaN entries are missing observations and
// contribute zero, while an Inf entry drives the sum to +Inf so the damped
// step that produced it is rejected like any other worse trial.
func sse(r []float64) float64 {
	s := 0.0
	for _, v := range r {
		if math.IsNaN(v) {
			continue
		}
		if math.IsInf(v, 0) {
			return math.Inf(1)
		}
		s += v * v
	}
	return s
}

func (o *Options) clamp(p []float64) {
	for i := range p {
		if o.Lower != nil && p[i] < o.Lower[i] {
			p[i] = o.Lower[i]
		}
		if o.Upper != nil && p[i] > o.Upper[i] {
			p[i] = o.Upper[i]
		}
	}
}

// Fit minimises ‖r(p)‖² starting from p0. p0 is not modified. Bounds, when
// provided, are enforced by projection after each accepted step and during
// Jacobian evaluation.
func Fit(f ResidualFunc, p0 []float64, opts Options) (Result, error) {
	return fitCore(func(_, p []float64) []float64 { return f(p) }, p0, opts)
}

// FitInto is Fit over a buffer-reusing residual function: the driver owns
// three residual buffers (current, Jacobian probe, damped trial) and passes
// them back to f, so a well-behaved f makes the whole run allocate a fixed
// amount of memory independent of the iteration count. The search itself is
// identical to Fit's — same steps, same results.
func FitInto(f ResidualIntoFunc, p0 []float64, opts Options) (Result, error) {
	return fitCore(f, p0, opts)
}

func fitCore(f ResidualIntoFunc, p0 []float64, opts Options) (Result, error) {
	dim := len(p0)
	if dim == 0 {
		return Result{}, errors.New("lm: empty parameter vector")
	}
	if err := opts.fill(dim); err != nil {
		return Result{}, err
	}

	p := append([]float64(nil), p0...)
	opts.clamp(p)
	r := f(nil, p)
	m := len(r)
	if m == 0 {
		return Result{}, errors.New("lm: empty residual vector")
	}
	cur := sse(r)
	if math.IsInf(cur, 0) || math.IsNaN(cur) {
		// A non-finite starting cost gives the damped steps nothing to
		// improve against; report it so multi-start callers can skip this
		// start instead of looping on rejected trials.
		return Result{Params: append([]float64(nil), p...), SSE: cur},
			errors.New("lm: non-finite cost at initial parameters")
	}

	lambda := opts.Lambda0
	jac := make([]float64, m*dim) // row-major m×dim
	jtj := make([]float64, dim*dim)
	jtr := make([]float64, dim)
	pTrial := make([]float64, dim)
	// Scratch hoisted out of the iteration and damping loops: residual
	// buffers for the Jacobian probes and damped trials, the damped normal
	// matrix, and the Cholesky solve's workspace. Nothing below this point
	// allocates per iteration (given a buffer-honouring f).
	probeBuf := make([]float64, m)
	trialBuf := make([]float64, m)
	damped := make([]float64, dim*dim)
	delta := make([]float64, dim)
	cholL := make([]float64, dim*dim)
	cholY := make([]float64, dim)

	res := Result{Params: append([]float64(nil), p...), SSE: cur}
	for iter := 0; iter < opts.MaxIter; iter++ {
		if opts.Ctx != nil {
			if err := opts.Ctx.Err(); err != nil {
				res.Params = append(res.Params[:0], p...)
				res.SSE = cur
				return res, fmt.Errorf("lm: stopped after %d iterations: %w",
					res.Iterations, err)
			}
		}
		res.Iterations = iter + 1

		if opts.Jacobian != nil {
			// Analytic Jacobian: one sensitivity pass replaces the dim
			// probe evaluations below. The FD path zeroes missing-row and
			// non-finite entries as it fills; the analytic path gets the
			// same sanitisation in one sweep — the JᵀJ accumulation has no
			// NaN guard and relies on those zeros.
			opts.Jacobian(jac, p)
			for i := 0; i < m; i++ {
				row := jac[i*dim : i*dim+dim]
				if ri := r[i]; ri != ri {
					for j := range row {
						row[j] = 0
					}
					continue
				}
				for j, d := range row {
					if d-d != 0 { // NaN or ±Inf
						row[j] = 0
					}
				}
			}
		} else {
			// Forward-difference Jacobian of the residuals.
			for j := 0; j < dim; j++ {
				h := opts.FDStep * math.Abs(p[j])
				if h == 0 {
					h = opts.FDStep
				}
				// Step inside the bounds if a bound is active.
				pj := p[j] + h
				if opts.Upper != nil && pj > opts.Upper[j] {
					pj = p[j] - h
					h = -h
				}
				// The flipped (backward) probe must respect Lower too: with a
				// tightly bounded or pinned parameter (hi−lo smaller than the
				// step) the unclamped probe would evaluate f outside the box the
				// caller promised it. Clamp the probe and recompute the step
				// from the value actually probed; when the box leaves no room at
				// all, the parameter is immovable — record a zero gradient
				// column instead of probing.
				if opts.Lower != nil && pj < opts.Lower[j] {
					pj = opts.Lower[j]
					h = pj - p[j]
					if h == 0 {
						for i := 0; i < m; i++ {
							jac[i*dim+j] = 0
						}
						continue
					}
				}
				saved := p[j]
				p[j] = pj
				rj := f(probeBuf, p)
				p[j] = saved
				if len(rj) != m {
					return res, errors.New("lm: residual length changed between calls")
				}
				inv := 1 / h
				for i := 0; i < m; i++ {
					d := (rj[i] - r[i]) * inv
					// d-d is 0 only for finite d: a NaN residual on either
					// side (missing observation) or a probe that blew up to
					// ±Inf says nothing about the local slope, so the entry
					// is recorded as missing rather than poisoning the
					// normal equations. One subtract replaces the separate
					// NaN/Inf tests on this very hot loop.
					if d-d != 0 {
						d = 0
					}
					jac[i*dim+j] = d
				}
			}
		}

		// Normal equations: (JᵀJ + λ·diag(JᵀJ))·δ = Jᵀr, accumulated as one
		// row-wise sweep of rank-1 updates. A cell-at-a-time dot product
		// walks the whole m×dim Jacobian once per cell pair with stride dim
		// (the m·dim²/2 loads all miss L1 once the Jacobian outgrows it);
		// the row-wise sweep streams the Jacobian exactly once while jtj —
		// dim² floats — stays cache-resident. Each cell still receives its
		// terms in ascending-i order, so the sums are bit-identical to the
		// dot-product form. Rows with a NaN residual carry all-zero Jacobian
		// entries (set during the fill above), and adding +0 terms never
		// changes a running sum, so only Jᵀr needs the explicit NaN guard.
		for a := 0; a < dim; a++ {
			sr := 0.0
			for i, ia := 0, a; i < m; i, ia = i+1, ia+dim {
				if ri := r[i]; ri == ri {
					sr += jac[ia] * ri
				}
			}
			jtr[a] = sr
			for b := a; b < dim; b++ {
				s := 0.0
				for ia, ib := a, b; ia < len(jac); ia, ib = ia+dim, ib+dim {
					s += jac[ia] * jac[ib]
				}
				jtj[a*dim+b] = s
			}
		}
		for a := 0; a < dim; a++ { // mirror upper triangle
			for b := 0; b < a; b++ {
				jtj[a*dim+b] = jtj[b*dim+a]
			}
		}

		improved := false
		for lambda <= opts.MaxLambda {
			copy(damped, jtj)
			for a := 0; a < dim; a++ {
				d := jtj[a*dim+a]
				if d == 0 {
					d = 1e-12
				}
				damped[a*dim+a] = d * (1 + lambda)
			}
			if err := solveSPDInto(delta, cholL, cholY, damped, jtr, dim); err != nil {
				lambda *= opts.LambdaUp
				continue
			}
			finite := true
			for a := 0; a < dim; a++ {
				if math.IsInf(delta[a], 0) || math.IsNaN(delta[a]) {
					finite = false
					break
				}
			}
			if !finite {
				lambda *= opts.LambdaUp
				continue
			}
			for a := 0; a < dim; a++ {
				pTrial[a] = p[a] - delta[a]
			}
			opts.clamp(pTrial)
			rTrial := f(trialBuf, pTrial)
			trial := sse(rTrial)
			if trial < cur && !math.IsNaN(trial) {
				rel := (cur - trial) / math.Max(cur, 1e-300)
				copy(p, pTrial)
				// Swap rather than copy: the accepted trial becomes the
				// current residual vector and the old one becomes the next
				// trial's scratch. (With an allocating f the swapped-in
				// buffer is simply the freshly returned slice.)
				r, trialBuf = rTrial, r
				cur = trial
				lambda /= opts.LambdaDn
				if lambda < 1e-12 {
					lambda = 1e-12
				}
				improved = true
				if rel < opts.Tol {
					res.Converged = true
				}
				break
			}
			lambda *= opts.LambdaUp
		}
		if !improved {
			// Damping hit MaxLambda without an improving step: the search is
			// stuck at a (possibly bounded) minimum or on a pathological
			// surface. This used to be reported as Converged; it is a
			// different outcome and callers watching fit health need to
			// tell them apart.
			res.Stalled = true
			break
		}
		if res.Converged {
			break
		}
	}
	res.Params = append(res.Params[:0], p...)
	res.SSE = cur
	return res, nil
}

// Fit1D is a convenience wrapper fitting a single bounded parameter. Like
// Fit, it returns the best value found even on error — a cancelled run
// hands back its best-so-far x and SSE alongside the wrapped ctx error, not
// the starting point. Only when the run produced nothing at all (setup
// errors) does it fall back to x0 with SSE = +Inf.
func Fit1D(f func(x float64) []float64, x0, lo, hi float64, opts Options) (float64, float64, error) {
	opts.Lower = []float64{lo}
	opts.Upper = []float64{hi}
	res, err := Fit(func(p []float64) []float64 { return f(p[0]) }, []float64{x0}, opts)
	if err != nil {
		if len(res.Params) == 1 {
			return res.Params[0], res.SSE, err
		}
		return x0, math.Inf(1), err
	}
	return res.Params[0], res.SSE, nil
}
