package lm_test

import (
	"fmt"
	"math"

	"dspot/internal/lm"
)

// Fit an exponential decay y = a·exp(-b·t) to noisy observations. (On a
// noiseless problem LM walks into the exact minimum — every step improves
// by orders of magnitude until none improves at all — and reports Stalled
// rather than Converged; a noise floor is what makes the relative-tolerance
// test meaningful.)
func ExampleFit() {
	obs := make([]float64, 30)
	for t := range obs {
		obs[t] = 2.0*math.Exp(-0.5*float64(t)*0.2) + 1e-4*math.Sin(float64(t)*7)
	}
	resid := func(p []float64) []float64 {
		r := make([]float64, len(obs))
		for t := range r {
			r[t] = p[0]*math.Exp(-p[1]*float64(t)*0.2) - obs[t]
		}
		return r
	}
	res, err := lm.Fit(resid, []float64{1, 0.1}, lm.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("a=%.3f b=%.3f converged=%v\n", res.Params[0], res.Params[1], res.Converged)
	// Output:
	// a=2.000 b=0.500 converged=true
}

// Bounded one-dimensional fitting via the convenience wrapper.
func ExampleFit1D() {
	// Solve x² = 2 for x in [0, 2].
	x, _, err := lm.Fit1D(func(x float64) []float64 {
		return []float64{x*x - 2}
	}, 1, 0, 2, lm.Options{MaxIter: 200})
	if err != nil {
		panic(err)
	}
	fmt.Printf("x=%.4f\n", x)
	// Output:
	// x=1.4142
}
