package lm

import (
	"errors"
	"math"
)

// solveSPD solves A·x = b for a symmetric positive-definite matrix A (given
// as row-major n×n) via Cholesky decomposition. A and b are not modified.
// It returns an error when A is not (numerically) positive definite, which
// the LM driver treats as "increase damping and retry".
func solveSPD(a []float64, b []float64, n int) ([]float64, error) {
	x := make([]float64, n)
	if err := solveSPDInto(x, make([]float64, n*n), make([]float64, n), a, b, n); err != nil {
		return nil, err
	}
	return x, nil
}

// solveSPDInto is solveSPD with caller-provided workspace: x receives the
// solution (length n), l is the n×n Cholesky factor scratch and y the
// substitution scratch. The LM driver calls this once per damped trial, so
// reusing the workspace removes three allocations from the innermost loop.
func solveSPDInto(x, l, y, a, b []float64, n int) error {
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := a[i*n+j]
			for k := 0; k < j; k++ {
				sum -= l[i*n+k] * l[j*n+k]
			}
			if i == j {
				if sum <= 0 || math.IsNaN(sum) {
					return errors.New("lm: matrix not positive definite")
				}
				l[i*n+i] = math.Sqrt(sum)
			} else {
				l[i*n+j] = sum / l[j*n+j]
			}
		}
	}
	// Forward substitution L·y = b.
	for i := 0; i < n; i++ {
		sum := b[i]
		for k := 0; k < i; k++ {
			sum -= l[i*n+k] * y[k]
		}
		y[i] = sum / l[i*n+i]
	}
	// Back substitution Lᵀ·x = y.
	for i := n - 1; i >= 0; i-- {
		sum := y[i]
		for k := i + 1; k < n; k++ {
			sum -= l[k*n+i] * x[k]
		}
		x[i] = sum / l[i*n+i]
	}
	return nil
}
