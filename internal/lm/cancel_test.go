package lm

import (
	"context"
	"errors"
	"math"
	"testing"
)

// rosenResiduals is a deliberately slow-converging objective so cancellation
// tests have many outer iterations to interrupt.
func rosenResiduals(p []float64) []float64 {
	return []float64{10 * (p[1] - p[0]*p[0]), 1 - p[0]}
}

func TestFitPreCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	evals := 0
	f := func(p []float64) []float64 {
		evals++
		return rosenResiduals(p)
	}
	res, err := Fit(f, []float64{-1.2, 1}, Options{Ctx: ctx})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res.Iterations != 0 {
		t.Fatalf("iterations = %d, want 0", res.Iterations)
	}
	// Only the initial residual evaluation may run before the first check.
	if evals > 1 {
		t.Fatalf("objective evaluated %d times after pre-cancel", evals)
	}
	// The best-so-far parameters are still reported (the clamped start).
	if len(res.Params) != 2 || res.Params[0] != -1.2 || res.Params[1] != 1 {
		t.Fatalf("params = %v, want the starting point", res.Params)
	}
}

func TestFitCancelMidRunStopsWithinOneIteration(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	evals := 0
	f := func(p []float64) []float64 {
		evals++
		if evals == 10 {
			cancel() // fires mid-iteration; Fit notices at the next loop top
		}
		return rosenResiduals(p)
	}
	res, err := Fit(f, []float64{-1.2, 1}, Options{Ctx: ctx, MaxIter: 10000, Tol: 0})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// One iteration costs at most dim Jacobian evals plus the damped trial
	// steps; stopping "within one iteration" of eval 10 leaves evals far
	// below what 10000 free iterations would spend.
	if evals > 60 {
		t.Fatalf("objective evaluated %d times after cancel", evals)
	}
	if res.Iterations >= 10000 {
		t.Fatalf("ran to MaxIter (%d iterations) despite cancel", res.Iterations)
	}
	for _, v := range res.Params {
		if math.IsNaN(v) {
			t.Fatalf("cancelled fit returned NaN params: %v", res.Params)
		}
	}
}

func TestFitNilContextUnaffected(t *testing.T) {
	res, err := Fit(rosenResiduals, []float64{-1.2, 1}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Params[0]-1) > 1e-4 || math.Abs(res.Params[1]-1) > 1e-4 {
		t.Fatalf("params = %v, want [1 1]", res.Params)
	}
}
