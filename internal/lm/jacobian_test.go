package lm

import (
	"context"
	"errors"
	"math"
	"testing"
)

// Problems with exactly representable analytic Jacobians, so the analytic
// path can be checked against both FD and closed-form expectations.

// expDecay: r_t = a·exp(-b·t·0.2) - obs_t over 30 ticks.
func expDecayObs() []float64 {
	obs := make([]float64, 30)
	for t := range obs {
		obs[t] = 2.0*math.Exp(-0.5*float64(t)*0.2) + 1e-4*math.Sin(float64(t)*7)
	}
	return obs
}

func expDecayResid(obs []float64) ResidualFunc {
	return func(p []float64) []float64 {
		r := make([]float64, len(obs))
		for t := range r {
			r[t] = p[0]*math.Exp(-p[1]*float64(t)*0.2) - obs[t]
		}
		return r
	}
}

func expDecayJac(obs []float64) JacobianFunc {
	return func(jac, p []float64) {
		for t := range obs {
			e := math.Exp(-p[1] * float64(t) * 0.2)
			jac[t*2+0] = e
			jac[t*2+1] = -p[0] * float64(t) * 0.2 * e
		}
	}
}

// TestFitAnalyticJacobianMatchesFD pins that the analytic path lands on the
// same optimum as FD (identical tolerances, fresh starts) and uses exactly
// one residual evaluation per iteration beyond the trials — no probe calls.
func TestFitAnalyticJacobianMatchesFD(t *testing.T) {
	obs := expDecayObs()
	start := []float64{1, 0.1}

	fd, err := Fit(expDecayResid(obs), start, Options{})
	if err != nil {
		t.Fatal(err)
	}
	probeEvals := 0
	counting := func(p []float64) []float64 {
		probeEvals++
		return expDecayResid(obs)(p)
	}
	an, err := Fit(counting, start, Options{Jacobian: expDecayJac(obs)})
	if err != nil {
		t.Fatal(err)
	}
	if !an.Converged {
		t.Fatalf("analytic path did not converge: %+v", an)
	}
	for i := range fd.Params {
		if d := math.Abs(an.Params[i] - fd.Params[i]); d > 1e-6 {
			t.Fatalf("param %d: analytic %v vs FD %v", i, an.Params[i], fd.Params[i])
		}
	}
	// Analytic evaluations: 1 initial + per iteration only the damped
	// trials (≥1 each); FD would add dim=2 probes per iteration on top.
	// The generous bound still fails if probes sneak back in.
	if max := 1 + 3*an.Iterations; probeEvals > max {
		t.Fatalf("analytic path made %d residual evals over %d iterations (max %d): FD probes leaked in",
			probeEvals, an.Iterations, max)
	}
}

// TestFitAnalyticJacobianRespectsMissingRows pins the sanitisation sweep:
// NaN residual rows must not contribute to the normal equations, matching
// the FD path's zero-column behaviour, even when the JacobianFunc fills
// those rows with garbage.
func TestFitAnalyticJacobianRespectsMissingRows(t *testing.T) {
	obs := expDecayObs()
	obs[3] = math.NaN()
	obs[17] = math.NaN()
	resid := expDecayResid(obs) // NaN obs → NaN residual rows
	jac := func(j, p []float64) {
		expDecayJac(obs)(j, p)
		j[3*2+0], j[3*2+1] = math.Inf(1), -7    // garbage on missing rows:
		j[17*2+0], j[17*2+1] = math.NaN(), 1e30 // the driver must zero them
	}
	fd, err := Fit(resid, []float64{1, 0.1}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	an, err := Fit(resid, []float64{1, 0.1}, Options{Jacobian: jac})
	if err != nil {
		t.Fatal(err)
	}
	for i := range fd.Params {
		if d := math.Abs(an.Params[i] - fd.Params[i]); d > 1e-6 {
			t.Fatalf("param %d: analytic %v vs FD %v", i, an.Params[i], fd.Params[i])
		}
	}
}

// TestFitSanitisesNonFiniteJacobian: non-finite entries on live rows
// (overflowed sensitivities) are zeroed rather than poisoning JᵀJ — the fit
// still finishes with finite parameters and cost.
func TestFitSanitisesNonFiniteJacobian(t *testing.T) {
	obs := expDecayObs()
	jac := func(j, p []float64) {
		expDecayJac(obs)(j, p)
		j[5*2+1] = math.Inf(1) // live row, exploded entry
		j[9*2+0] = math.NaN()
	}
	res, err := Fit(expDecayResid(obs), []float64{1, 0.1}, Options{Jacobian: jac})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range res.Params {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("param %d non-finite: %v", i, v)
		}
	}
	if math.IsNaN(res.SSE) || math.IsInf(res.SSE, 0) {
		t.Fatalf("SSE non-finite: %v", res.SSE)
	}
}

// TestFitIntoAnalyticMatchesFit pins that the buffer-reusing driver takes
// the identical analytic search path.
func TestFitIntoAnalyticMatchesFit(t *testing.T) {
	obs := expDecayObs()
	opts := Options{Jacobian: expDecayJac(obs)}
	plain, err := Fit(expDecayResid(obs), []float64{1, 0.1}, opts)
	if err != nil {
		t.Fatal(err)
	}
	into, err := FitInto(func(dst, p []float64) []float64 {
		if cap(dst) < len(obs) {
			dst = make([]float64, len(obs))
		}
		dst = dst[:len(obs)]
		for t := range dst {
			dst[t] = p[0]*math.Exp(-p[1]*float64(t)*0.2) - obs[t]
		}
		return dst
	}, []float64{1, 0.1}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if plain.SSE != into.SSE || plain.Iterations != into.Iterations {
		t.Fatalf("FitInto diverged: %+v vs %+v", into, plain)
	}
	for i := range plain.Params {
		if plain.Params[i] != into.Params[i] {
			t.Fatalf("param %d: %x vs %x", i, into.Params[i], plain.Params[i])
		}
	}
}

// TestConvergedVsStalled pins the split: a noise-floored problem converges
// by tolerance; a noiseless one walks into the exact minimum and stalls
// (no improving step at MaxLambda). Neither may report the other's flag.
func TestConvergedVsStalled(t *testing.T) {
	noisy, err := Fit(expDecayResid(expDecayObs()), []float64{1, 0.1}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !noisy.Converged || noisy.Stalled {
		t.Fatalf("noisy fit: converged=%v stalled=%v, want converged only",
			noisy.Converged, noisy.Stalled)
	}

	clean := make([]float64, 30)
	for i := range clean {
		clean[i] = 2.0 * math.Exp(-0.5*float64(i)*0.2)
	}
	exact, err := Fit(expDecayResid(clean), []float64{2, 0.5}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if exact.Converged || !exact.Stalled {
		t.Fatalf("exact-minimum fit: converged=%v stalled=%v, want stalled only",
			exact.Converged, exact.Stalled)
	}
}

// TestFit1DKeepsBestOnCancel is the regression test for the best-so-far
// discard: a cancelled Fit1D must hand back its best x and SSE alongside
// the error, not the starting point with SSE=+Inf.
func TestFit1DKeepsBestOnCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	evals := 0
	f := func(x float64) []float64 {
		evals++
		if evals == 8 {
			cancel()
		}
		// Slow 1-D valley: minimum at x = 1.5.
		return []float64{math.Atan(x-1.5) * 10, (x - 1.5) / 4}
	}
	x0 := 4.0
	x, sseV, err := Fit1D(f, x0, 0, 5, Options{MaxIter: 10000, Tol: 0, Ctx: ctx})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if math.IsInf(sseV, 1) {
		t.Fatal("Fit1D discarded best-so-far SSE on cancel (got +Inf)")
	}
	if x == x0 {
		t.Fatal("Fit1D returned the starting point instead of its best x")
	}
	start := sse(f(x0))
	if sseV >= start {
		t.Fatalf("best-so-far SSE %v not better than start %v", sseV, start)
	}
	// Setup failures still fall back to (x0, +Inf): bounds of mismatched
	// shape never produce a result vector.
	x, sseV, err = Fit1D(func(float64) []float64 { return nil }, x0, 0, 5, Options{})
	if err == nil {
		t.Fatal("expected error for empty residual vector")
	}
	if x != x0 || !math.IsInf(sseV, 1) {
		t.Fatalf("setup failure: got (%v, %v), want (x0, +Inf)", x, sseV)
	}
}
