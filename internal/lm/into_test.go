package lm

import "testing"

// rosenbrockInto is a buffer-honouring residual function for the Rosenbrock
// valley, whose curved floor keeps LM iterating for dozens of steps — long
// enough to expose any per-iteration allocation.
func rosenbrockInto(dst, p []float64) []float64 {
	if cap(dst) < 2 {
		dst = make([]float64, 2)
	}
	r := dst[:2]
	r[0] = 10 * (p[1] - p[0]*p[0])
	r[1] = 1 - p[0]
	return r
}

// FitInto must walk exactly the same path as Fit: the buffer plumbing is a
// memory optimisation, not a different algorithm.
func TestFitIntoMatchesFit(t *testing.T) {
	opts := Options{MaxIter: 200, Lower: []float64{-5, -5}, Upper: []float64{5, 5}}
	p0 := []float64{-1.2, 1}
	a, errA := Fit(func(p []float64) []float64 {
		return rosenbrockInto(nil, p)
	}, p0, opts)
	b, errB := FitInto(rosenbrockInto, p0, opts)
	if errA != nil || errB != nil {
		t.Fatalf("errors: %v, %v", errA, errB)
	}
	if a.SSE != b.SSE || a.Iterations != b.Iterations || a.Converged != b.Converged {
		t.Fatalf("Fit %+v and FitInto %+v diverged", a, b)
	}
	for i := range a.Params {
		if a.Params[i] != b.Params[i] {
			t.Fatalf("param %d: %v (Fit) != %v (FitInto)", i, a.Params[i], b.Params[i])
		}
	}
}

// The allocation gate of the tentpole: one FitInto run allocates a fixed
// amount regardless of how many iterations it performs, i.e. the lambda
// loop and the Jacobian probes allocate nothing. Measured by comparing a
// 2-iteration run against a long run — with any per-iteration allocation
// the long run would cost strictly more.
func TestFitIntoNoPerIterationAllocs(t *testing.T) {
	p0 := []float64{-1.2, 1}
	run := func(maxIter int) (allocs float64, iters int) {
		res, err := FitInto(rosenbrockInto, p0, Options{MaxIter: maxIter})
		if err != nil {
			t.Fatalf("FitInto: %v", err)
		}
		iters = res.Iterations
		allocs = testing.AllocsPerRun(20, func() {
			if _, err := FitInto(rosenbrockInto, p0, Options{MaxIter: maxIter}); err != nil {
				t.Errorf("FitInto: %v", err)
			}
		})
		return allocs, iters
	}
	shortAllocs, shortIters := run(2)
	longAllocs, longIters := run(60)
	if longIters <= shortIters {
		t.Fatalf("test needs a long run (%d iters) to out-iterate the short one (%d)",
			longIters, shortIters)
	}
	if longAllocs > shortAllocs {
		t.Fatalf("per-iteration allocations detected: %d iters → %.0f allocs, %d iters → %.0f allocs",
			shortIters, shortAllocs, longIters, longAllocs)
	}
}
