package lm

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSolveSPDIdentity(t *testing.T) {
	a := []float64{1, 0, 0, 1}
	b := []float64{3, -7}
	x, err := solveSPD(a, b, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-3) > 1e-12 || math.Abs(x[1]+7) > 1e-12 {
		t.Fatalf("solveSPD identity = %v", x)
	}
}

func TestSolveSPDKnownSystem(t *testing.T) {
	// A = [[4,2],[2,3]], x = [1,2] => b = [8, 8].
	a := []float64{4, 2, 2, 3}
	b := []float64{8, 8}
	x, err := solveSPD(a, b, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-1) > 1e-10 || math.Abs(x[1]-2) > 1e-10 {
		t.Fatalf("solveSPD = %v, want [1 2]", x)
	}
}

func TestSolveSPDRejectsIndefinite(t *testing.T) {
	a := []float64{1, 2, 2, 1} // eigenvalues 3, -1
	if _, err := solveSPD(a, []float64{1, 1}, 2); err == nil {
		t.Fatal("indefinite matrix accepted")
	}
}

func TestFitLinearRegression(t *testing.T) {
	// y = 2x + 1 with exact data: LM should recover (2, 1).
	xs := []float64{0, 1, 2, 3, 4, 5}
	f := func(p []float64) []float64 {
		r := make([]float64, len(xs))
		for i, x := range xs {
			r[i] = (p[0]*x + p[1]) - (2*x + 1)
		}
		return r
	}
	res, err := Fit(f, []float64{0, 0}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Params[0]-2) > 1e-5 || math.Abs(res.Params[1]-1) > 1e-5 {
		t.Fatalf("params = %v, want [2 1]", res.Params)
	}
	if res.SSE > 1e-9 {
		t.Fatalf("SSE = %g", res.SSE)
	}
}

func TestFitExponentialDecay(t *testing.T) {
	// y = 3·exp(-0.7 t): genuinely non-linear.
	n := 40
	obs := make([]float64, n)
	for i := range obs {
		obs[i] = 3 * math.Exp(-0.7*float64(i)*0.25)
	}
	f := func(p []float64) []float64 {
		r := make([]float64, n)
		for i := range r {
			r[i] = p[0]*math.Exp(-p[1]*float64(i)*0.25) - obs[i]
		}
		return r
	}
	res, err := Fit(f, []float64{1, 0.1}, Options{MaxIter: 200})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Params[0]-3) > 1e-4 || math.Abs(res.Params[1]-0.7) > 1e-4 {
		t.Fatalf("params = %v, want [3 0.7] (SSE %g)", res.Params, res.SSE)
	}
}

func TestFitRespectsBounds(t *testing.T) {
	// Unconstrained optimum at p=5, but bound at 2.
	f := func(p []float64) []float64 { return []float64{p[0] - 5} }
	res, err := Fit(f, []float64{0}, Options{Lower: []float64{0}, Upper: []float64{2}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Params[0]-2) > 1e-9 {
		t.Fatalf("bounded param = %g, want 2", res.Params[0])
	}
}

func TestFitStartOutsideBoundsIsClamped(t *testing.T) {
	f := func(p []float64) []float64 { return []float64{p[0] - 0.5} }
	res, err := Fit(f, []float64{10}, Options{Lower: []float64{0}, Upper: []float64{1}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Params[0] < 0 || res.Params[0] > 1 {
		t.Fatalf("param escaped bounds: %g", res.Params[0])
	}
}

func TestFitHandlesNaNResiduals(t *testing.T) {
	// Missing observations marked NaN must not poison the fit.
	f := func(p []float64) []float64 {
		return []float64{p[0] - 4, math.NaN(), 2 * (p[0] - 4)}
	}
	res, err := Fit(f, []float64{0}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Params[0]-4) > 1e-6 {
		t.Fatalf("param with NaN = %g, want 4", res.Params[0])
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit(func(p []float64) []float64 { return []float64{0} }, nil, Options{}); err == nil {
		t.Fatal("empty params accepted")
	}
	if _, err := Fit(func(p []float64) []float64 { return nil }, []float64{1}, Options{}); err == nil {
		t.Fatal("empty residuals accepted")
	}
	if _, err := Fit(func(p []float64) []float64 { return []float64{0} }, []float64{1},
		Options{Lower: []float64{0, 0}}); err == nil {
		t.Fatal("bound length mismatch accepted")
	}
}

func TestFitResidualLengthChangeDetected(t *testing.T) {
	call := 0
	f := func(p []float64) []float64 {
		call++
		if call > 1 {
			return []float64{p[0], p[0]}
		}
		return []float64{p[0] - 1}
	}
	if _, err := Fit(f, []float64{0}, Options{}); err == nil {
		t.Fatal("length change not detected")
	}
}

func TestFitDoesNotMutateP0(t *testing.T) {
	p0 := []float64{1, 2}
	f := func(p []float64) []float64 { return []float64{p[0] - 3, p[1] - 4} }
	if _, err := Fit(f, p0, Options{}); err != nil {
		t.Fatal(err)
	}
	if p0[0] != 1 || p0[1] != 2 {
		t.Fatalf("p0 mutated: %v", p0)
	}
}

func TestFit1D(t *testing.T) {
	f := func(x float64) []float64 { return []float64{x*x - 2} } // root at √2 within [0,2]
	x, sse, err := Fit1D(f, 1, 0, 2, Options{MaxIter: 200})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x-math.Sqrt2) > 1e-5 {
		t.Fatalf("Fit1D = %g (sse %g), want √2", x, sse)
	}
}

func TestFitSineFrequency(t *testing.T) {
	// Fit amplitude and phase of a sinusoid (frequency known) — a smooth
	// non-linear problem resembling seasonal fitting.
	n := 100
	obs := make([]float64, n)
	for i := range obs {
		obs[i] = 2.5 * math.Sin(0.2*float64(i)+0.8)
	}
	f := func(p []float64) []float64 {
		r := make([]float64, n)
		for i := range r {
			r[i] = p[0]*math.Sin(0.2*float64(i)+p[1]) - obs[i]
		}
		return r
	}
	res, err := Fit(f, []float64{1, 0.5}, Options{MaxIter: 300})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Params[0]-2.5) > 1e-3 || math.Abs(res.Params[1]-0.8) > 1e-3 {
		t.Fatalf("sine fit params = %v", res.Params)
	}
}

// Property: on random overdetermined linear systems LM reaches the
// least-squares optimum (checked against the normal-equations solution).
func TestFitLinearSystemQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, dim := 12+rng.Intn(20), 2+rng.Intn(2)
		A := make([][]float64, m)
		y := make([]float64, m)
		truth := make([]float64, dim)
		for j := range truth {
			truth[j] = rng.NormFloat64() * 3
		}
		for i := range A {
			A[i] = make([]float64, dim)
			for j := range A[i] {
				A[i][j] = rng.NormFloat64()
			}
			for j := range A[i] {
				y[i] += A[i][j] * truth[j]
			}
		}
		resid := func(p []float64) []float64 {
			r := make([]float64, m)
			for i := range r {
				dot := 0.0
				for j := range p {
					dot += A[i][j] * p[j]
				}
				r[i] = dot - y[i]
			}
			return r
		}
		res, err := Fit(resid, make([]float64, dim), Options{MaxIter: 200})
		if err != nil {
			return false
		}
		return res.SSE < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: the final SSE never exceeds the starting SSE.
func TestFitNeverWorsensQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := rng.NormFloat64() * 5
		obj := func(p []float64) []float64 {
			return []float64{math.Exp(p[0]*0.1) - c, p[0] * 0.3}
		}
		start := []float64{rng.NormFloat64() * 4}
		startSSE := 0.0
		for _, v := range obj(start) {
			startSSE += v * v
		}
		res, err := Fit(obj, start, Options{MaxIter: 50})
		if err != nil {
			return false
		}
		return res.SSE <= startSSE+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
