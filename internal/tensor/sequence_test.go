package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func seqEq(a, b []float64, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if IsMissing(a[i]) != IsMissing(b[i]) {
			return false
		}
		if IsMissing(a[i]) {
			continue
		}
		if math.Abs(a[i]-b[i]) > tol {
			return false
		}
	}
	return true
}

func TestSumMaxMeanSeq(t *testing.T) {
	s := []float64{1, Missing, 3, 2}
	if got := SumSeq(s); got != 6 {
		t.Fatalf("SumSeq = %g, want 6", got)
	}
	if v, at := MaxSeq(s); v != 3 || at != 2 {
		t.Fatalf("MaxSeq = (%g,%d), want (3,2)", v, at)
	}
	if got := MeanSeq(s); got != 2 {
		t.Fatalf("MeanSeq = %g, want 2", got)
	}
	if got := ObservedCount(s); got != 3 {
		t.Fatalf("ObservedCount = %d, want 3", got)
	}
	all := []float64{Missing, Missing}
	if v, at := MaxSeq(all); v != 0 || at != -1 {
		t.Fatalf("MaxSeq(all missing) = (%g,%d), want (0,-1)", v, at)
	}
	if got := MeanSeq(all); got != 0 {
		t.Fatalf("MeanSeq(all missing) = %g, want 0", got)
	}
}

func TestScaleKeepsMissing(t *testing.T) {
	s := []float64{2, Missing, 4}
	out := Scale(s, 0.5)
	if out[0] != 1 || !IsMissing(out[1]) || out[2] != 2 {
		t.Fatalf("Scale = %v", out)
	}
}

func TestAddSubSeq(t *testing.T) {
	a := []float64{1, 2, Missing}
	b := []float64{10, Missing, 30}
	sum := AddSeq(a, b)
	if sum[0] != 11 || !IsMissing(sum[1]) || !IsMissing(sum[2]) {
		t.Fatalf("AddSeq = %v", sum)
	}
	diff := SubSeq(b, a)
	if diff[0] != 9 || !IsMissing(diff[1]) || !IsMissing(diff[2]) {
		t.Fatalf("SubSeq = %v", diff)
	}
}

func TestAddSeqLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	AddSeq([]float64{1}, []float64{1, 2})
}

func TestFillMissingInterior(t *testing.T) {
	s := []float64{1, Missing, Missing, 4}
	out := FillMissing(s)
	want := []float64{1, 2, 3, 4}
	if !seqEq(out, want, 1e-12) {
		t.Fatalf("FillMissing = %v, want %v", out, want)
	}
}

func TestFillMissingEdges(t *testing.T) {
	s := []float64{Missing, Missing, 5, Missing}
	out := FillMissing(s)
	want := []float64{5, 5, 5, 5}
	if !seqEq(out, want, 1e-12) {
		t.Fatalf("FillMissing edges = %v, want %v", out, want)
	}
}

func TestFillMissingAllMissing(t *testing.T) {
	out := FillMissing([]float64{Missing, Missing})
	if !seqEq(out, []float64{0, 0}, 0) {
		t.Fatalf("FillMissing all-missing = %v, want zeros", out)
	}
}

func TestSmooth(t *testing.T) {
	s := []float64{0, 3, 0, 3, 0}
	out := Smooth(s, 1)
	if math.Abs(out[1]-1) > 1e-12 || math.Abs(out[2]-2) > 1e-12 {
		t.Fatalf("Smooth = %v", out)
	}
	// half <= 0 is a copy.
	cp := Smooth(s, 0)
	if !seqEq(cp, s, 0) {
		t.Fatalf("Smooth(0) = %v, want copy", cp)
	}
	cp[0] = 99
	if s[0] == 99 {
		t.Fatal("Smooth(0) aliases input")
	}
}

func TestSmoothSkipsMissing(t *testing.T) {
	s := []float64{2, Missing, 4}
	out := Smooth(s, 1)
	if math.Abs(out[1]-3) > 1e-12 {
		t.Fatalf("Smooth over missing = %v, want mid 3", out)
	}
}

func TestNormalize(t *testing.T) {
	s := []float64{0, 5, 10}
	out, scale := Normalize(s)
	if scale != 10 {
		t.Fatalf("scale = %g, want 10", scale)
	}
	if !seqEq(out, []float64{0, 0.5, 1}, 1e-12) {
		t.Fatalf("Normalize = %v", out)
	}
	flat := []float64{0, 0}
	out, scale = Normalize(flat)
	if scale != 1 || !seqEq(out, flat, 0) {
		t.Fatalf("Normalize(flat) = %v scale %g", out, scale)
	}
}

// Property: FillMissing never leaves a missing value and preserves observed
// entries.
func TestFillMissingQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(32)
		s := make([]float64, n)
		for i := range s {
			if rng.Float64() < 0.3 {
				s[i] = Missing
			} else {
				s[i] = rng.Float64() * 100
			}
		}
		out := FillMissing(s)
		for i := range out {
			if IsMissing(out[i]) {
				return false
			}
			if !IsMissing(s[i]) && out[i] != s[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: Normalize then rescale round-trips.
func TestNormalizeRoundTripQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(32)
		s := make([]float64, n)
		for i := range s {
			s[i] = rng.Float64() * 1e6
		}
		out, scale := Normalize(s)
		back := Scale(out, scale)
		return seqEq(back, s, 1e-6*scale+1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
