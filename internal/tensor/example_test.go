package tensor_test

import (
	"fmt"

	"dspot/internal/tensor"
)

// Build a tensor, mark a missing cell, and read the global rollup.
func ExampleTensor_Global() {
	x := tensor.New([]string{"olympics"}, []string{"US", "JP", "GB"}, 2)
	x.Set(0, 0, 0, 36)
	x.Set(0, 1, 0, 12)
	x.Set(0, 2, 0, tensor.Missing) // unobserved
	x.Set(0, 0, 1, 40)
	x.Set(0, 1, 1, 15)
	x.Set(0, 2, 1, 9)

	g := x.Global(0)
	fmt.Println(g[0], g[1])
	// Output:
	// 48 64
}

// Aggregate the location axis into named groups.
func ExampleTensor_AggregateLocations() {
	x := tensor.New([]string{"k"}, []string{"US", "DE", "FR"}, 1)
	x.Set(0, 0, 0, 10)
	x.Set(0, 1, 0, 4)
	x.Set(0, 2, 0, 6)
	agg, err := x.AggregateLocations(
		[]string{"america", "europe"},
		[][]string{{"US"}, {"DE", "FR"}})
	if err != nil {
		panic(err)
	}
	fmt.Println(agg.At(0, 0, 0), agg.At(0, 1, 0))
	// Output:
	// 10 10
}

// Linear interpolation across missing stretches.
func ExampleFillMissing() {
	s := []float64{1, tensor.Missing, tensor.Missing, 4}
	fmt.Println(tensor.FillMissing(s))
	// Output:
	// [1 2 3 4]
}
