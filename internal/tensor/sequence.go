package tensor

import (
	"fmt"
	"math"
)

// Sequence utilities shared by the fitters. All functions treat NaN cells as
// missing and skip them, mirroring the tensor semantics.

// SumSeq returns the sum of the non-missing entries of s.
func SumSeq(s []float64) float64 {
	sum := 0.0
	for _, v := range s {
		if IsMissing(v) {
			continue
		}
		sum += v
	}
	return sum
}

// MaxSeq returns the maximum non-missing entry and its index, or (0, -1) if
// every entry is missing.
func MaxSeq(s []float64) (float64, int) {
	best, at := 0.0, -1
	for t, v := range s {
		if IsMissing(v) {
			continue
		}
		if at == -1 || v > best {
			best, at = v, t
		}
	}
	return best, at
}

// MeanSeq returns the mean of the non-missing entries (0 if none).
func MeanSeq(s []float64) float64 {
	sum, cnt := 0.0, 0
	for _, v := range s {
		if IsMissing(v) {
			continue
		}
		sum += v
		cnt++
	}
	if cnt == 0 {
		return 0
	}
	return sum / float64(cnt)
}

// ObservedCount returns the number of non-missing entries.
func ObservedCount(s []float64) int {
	c := 0
	for _, v := range s {
		if !IsMissing(v) {
			c++
		}
	}
	return c
}

// Scale returns s scaled by f (missing entries stay missing).
func Scale(s []float64, f float64) []float64 {
	out := make([]float64, len(s))
	for t, v := range s {
		if IsMissing(v) {
			out[t] = Missing
			continue
		}
		out[t] = v * f
	}
	return out
}

// AddSeq returns a+b elementwise; a missing entry in either operand makes
// the result entry missing. It panics on length mismatch (caller bug).
func AddSeq(a, b []float64) []float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("tensor: AddSeq length mismatch %d vs %d", len(a), len(b)))
	}
	out := make([]float64, len(a))
	for t := range a {
		if IsMissing(a[t]) || IsMissing(b[t]) {
			out[t] = Missing
			continue
		}
		out[t] = a[t] + b[t]
	}
	return out
}

// SubSeq returns a-b elementwise with the same missing semantics as AddSeq.
func SubSeq(a, b []float64) []float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("tensor: SubSeq length mismatch %d vs %d", len(a), len(b)))
	}
	out := make([]float64, len(a))
	for t := range a {
		if IsMissing(a[t]) || IsMissing(b[t]) {
			out[t] = Missing
			continue
		}
		out[t] = a[t] - b[t]
	}
	return out
}

// FillMissing returns s with missing entries replaced by linear
// interpolation between the nearest observed neighbours (edge gaps take the
// nearest observed value; an all-missing sequence becomes all zeros).
func FillMissing(s []float64) []float64 {
	out := append([]float64(nil), s...)
	n := len(out)
	prev := -1 // last observed index
	for t := 0; t < n; t++ {
		if IsMissing(out[t]) {
			continue
		}
		if prev == -1 && t > 0 {
			for u := 0; u < t; u++ { // leading gap
				out[u] = out[t]
			}
		} else if prev >= 0 && t-prev > 1 {
			lo, hi := out[prev], out[t]
			span := float64(t - prev)
			for u := prev + 1; u < t; u++ {
				frac := float64(u-prev) / span
				out[u] = lo + (hi-lo)*frac
			}
		}
		prev = t
	}
	if prev == -1 {
		for t := range out {
			out[t] = 0
		}
		return out
	}
	for t := prev + 1; t < n; t++ { // trailing gap
		out[t] = out[prev]
	}
	return out
}

// Smooth returns a centred moving average of s with the given half-window
// (window = 2*half+1), skipping missing entries. half <= 0 returns a copy.
func Smooth(s []float64, half int) []float64 {
	if half <= 0 {
		return append([]float64(nil), s...)
	}
	n := len(s)
	out := make([]float64, n)
	for t := 0; t < n; t++ {
		sum, cnt := 0.0, 0
		lo, hi := t-half, t+half
		if lo < 0 {
			lo = 0
		}
		if hi >= n {
			hi = n - 1
		}
		for u := lo; u <= hi; u++ {
			if IsMissing(s[u]) {
				continue
			}
			sum += s[u]
			cnt++
		}
		if cnt == 0 {
			out[t] = Missing
			continue
		}
		out[t] = sum / float64(cnt)
	}
	return out
}

// Normalize returns s divided by its maximum non-missing value together with
// the scale used. A flat-zero sequence is returned unchanged with scale 1.
func Normalize(s []float64) (scaled []float64, scale float64) {
	max, _ := MaxSeq(s)
	if max <= 0 || math.IsInf(max, 0) {
		return append([]float64(nil), s...), 1
	}
	return Scale(s, 1/max), max
}
