package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func newTestTensor() *Tensor {
	x := New([]string{"a", "b"}, []string{"US", "JP", "GB"}, 4)
	for i := 0; i < x.D(); i++ {
		for j := 0; j < x.L(); j++ {
			for t := 0; t < x.N(); t++ {
				x.Set(i, j, t, float64(100*i+10*j+t))
			}
		}
	}
	return x
}

func TestNewDimensions(t *testing.T) {
	x := newTestTensor()
	if x.D() != 2 || x.L() != 3 || x.N() != 4 {
		t.Fatalf("got dims (%d,%d,%d), want (2,3,4)", x.D(), x.L(), x.N())
	}
	if x.Size() != 24 {
		t.Fatalf("Size() = %d, want 24", x.Size())
	}
}

func TestNewPanics(t *testing.T) {
	cases := []func(){
		func() { New(nil, []string{"US"}, 3) },
		func() { New([]string{"a"}, nil, 3) },
		func() { New([]string{"a"}, []string{"US"}, -1) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestAtSetRoundTrip(t *testing.T) {
	x := newTestTensor()
	x.Set(1, 2, 3, 42.5)
	if got := x.At(1, 2, 3); got != 42.5 {
		t.Fatalf("At = %g, want 42.5", got)
	}
}

func TestIndexOutOfBoundsPanics(t *testing.T) {
	x := newTestTensor()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-bounds index")
		}
	}()
	x.At(2, 0, 0)
}

func TestAddOnMissingReplaces(t *testing.T) {
	x := newTestTensor()
	x.Set(0, 0, 0, Missing)
	x.Add(0, 0, 0, 7)
	if got := x.At(0, 0, 0); got != 7 {
		t.Fatalf("Add on missing = %g, want 7", got)
	}
	x.Add(0, 0, 0, 3)
	if got := x.At(0, 0, 0); got != 10 {
		t.Fatalf("Add accumulate = %g, want 10", got)
	}
}

func TestLocalAliasesStorage(t *testing.T) {
	x := newTestTensor()
	s := x.Local(1, 1)
	s[2] = -99
	if got := x.At(1, 1, 2); got != -99 {
		t.Fatalf("Local slice does not alias storage: At = %g", got)
	}
	c := x.LocalCopy(1, 1)
	c[0] = 123456
	if x.At(1, 1, 0) == 123456 {
		t.Fatal("LocalCopy aliases storage; want copy")
	}
}

func TestGlobalSumsLocations(t *testing.T) {
	x := newTestTensor()
	g := x.Global(0)
	for tt := 0; tt < x.N(); tt++ {
		want := x.At(0, 0, tt) + x.At(0, 1, tt) + x.At(0, 2, tt)
		if g[tt] != want {
			t.Fatalf("Global(0)[%d] = %g, want %g", tt, g[tt], want)
		}
	}
}

func TestGlobalSkipsMissing(t *testing.T) {
	x := newTestTensor()
	x.Set(0, 1, 2, Missing)
	g := x.Global(0)
	want := x.At(0, 0, 2) + x.At(0, 2, 2)
	if g[2] != want {
		t.Fatalf("Global with missing = %g, want %g", g[2], want)
	}
	// All locations missing at a tick -> missing.
	for j := 0; j < x.L(); j++ {
		x.Set(0, j, 3, Missing)
	}
	g = x.Global(0)
	if !IsMissing(g[3]) {
		t.Fatalf("Global over all-missing tick = %g, want missing", g[3])
	}
}

func TestGlobalAll(t *testing.T) {
	x := newTestTensor()
	gs := x.GlobalAll()
	if len(gs) != x.D() {
		t.Fatalf("GlobalAll len = %d, want %d", len(gs), x.D())
	}
	for i := range gs {
		want := x.Global(i)
		for tt := range want {
			if gs[i][tt] != want[tt] {
				t.Fatalf("GlobalAll[%d][%d] = %g, want %g", i, tt, gs[i][tt], want[tt])
			}
		}
	}
}

func TestKeywordLocationIndex(t *testing.T) {
	x := newTestTensor()
	if i, err := x.KeywordIndex("b"); err != nil || i != 1 {
		t.Fatalf("KeywordIndex(b) = %d, %v", i, err)
	}
	if _, err := x.KeywordIndex("zzz"); err == nil {
		t.Fatal("KeywordIndex(zzz) should fail")
	}
	if j, err := x.LocationIndex("JP"); err != nil || j != 1 {
		t.Fatalf("LocationIndex(JP) = %d, %v", j, err)
	}
	if _, err := x.LocationIndex("XX"); err == nil {
		t.Fatal("LocationIndex(XX) should fail")
	}
}

func TestCloneIsDeep(t *testing.T) {
	x := newTestTensor()
	y := x.Clone()
	y.Set(0, 0, 0, 1e9)
	if x.At(0, 0, 0) == 1e9 {
		t.Fatal("Clone shares storage")
	}
}

func TestSliceTicks(t *testing.T) {
	x := newTestTensor()
	y, err := x.SliceTicks(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if y.N() != 2 {
		t.Fatalf("sliced N = %d, want 2", y.N())
	}
	if y.At(1, 2, 0) != x.At(1, 2, 1) {
		t.Fatal("SliceTicks misaligned")
	}
	if _, err := x.SliceTicks(3, 2); err == nil {
		t.Fatal("expected error for inverted range")
	}
	if _, err := x.SliceTicks(0, 99); err == nil {
		t.Fatal("expected error for out-of-range slice")
	}
}

func TestSliceKeywordsAndLocations(t *testing.T) {
	x := newTestTensor()
	y, err := x.SliceKeywords([]int{1})
	if err != nil {
		t.Fatal(err)
	}
	if y.D() != 1 || y.Keywords[0] != "b" {
		t.Fatalf("SliceKeywords got %v", y.Keywords)
	}
	if y.At(0, 1, 2) != x.At(1, 1, 2) {
		t.Fatal("SliceKeywords misaligned")
	}
	z, err := x.SliceLocations([]int{2, 0})
	if err != nil {
		t.Fatal(err)
	}
	if z.L() != 2 || z.Locations[0] != "GB" || z.Locations[1] != "US" {
		t.Fatalf("SliceLocations got %v", z.Locations)
	}
	if z.At(1, 0, 3) != x.At(1, 2, 3) {
		t.Fatal("SliceLocations misaligned")
	}
	if _, err := x.SliceKeywords(nil); err == nil {
		t.Fatal("expected error for empty keyword slice")
	}
	if _, err := x.SliceLocations([]int{9}); err == nil {
		t.Fatal("expected error for bad location index")
	}
}

func TestTotalMaxMissingCount(t *testing.T) {
	x := New([]string{"a"}, []string{"US"}, 3)
	x.Set(0, 0, 0, 2)
	x.Set(0, 0, 1, Missing)
	x.Set(0, 0, 2, 5)
	if got := x.Total(); got != 7 {
		t.Fatalf("Total = %g, want 7", got)
	}
	if got := x.Max(); got != 5 {
		t.Fatalf("Max = %g, want 5", got)
	}
	if got := x.MissingCount(); got != 1 {
		t.Fatalf("MissingCount = %d, want 1", got)
	}
}

func TestValidate(t *testing.T) {
	x := newTestTensor()
	if err := x.Validate(); err != nil {
		t.Fatalf("valid tensor rejected: %v", err)
	}
	x.Set(0, 0, 0, -1)
	if err := x.Validate(); err == nil {
		t.Fatal("negative count accepted")
	}
	x.Set(0, 0, 0, math.Inf(1))
	if err := x.Validate(); err == nil {
		t.Fatal("infinite count accepted")
	}
	x.Set(0, 0, 0, Missing)
	if err := x.Validate(); err != nil {
		t.Fatalf("missing cell rejected: %v", err)
	}
}

func TestAggregateLocations(t *testing.T) {
	x := newTestTensor()
	agg, err := x.AggregateLocations([]string{"west", "east"},
		[][]string{{"US"}, {"JP", "GB"}})
	if err != nil {
		t.Fatal(err)
	}
	if agg.L() != 2 || agg.Locations[1] != "east" {
		t.Fatalf("aggregate locations %v", agg.Locations)
	}
	for i := 0; i < x.D(); i++ {
		for tt := 0; tt < x.N(); tt++ {
			if agg.At(i, 0, tt) != x.At(i, 0, tt) {
				t.Fatal("singleton group mismatch")
			}
			want := x.At(i, 1, tt) + x.At(i, 2, tt)
			if agg.At(i, 1, tt) != want {
				t.Fatalf("group sum = %g, want %g", agg.At(i, 1, tt), want)
			}
		}
	}
}

func TestAggregateLocationsMissingSemantics(t *testing.T) {
	x := newTestTensor()
	x.Set(0, 1, 0, Missing)
	x.Set(0, 2, 0, Missing)
	x.Set(0, 1, 1, Missing)
	agg, err := x.AggregateLocations([]string{"east"}, [][]string{{"JP", "GB"}})
	if err != nil {
		t.Fatal(err)
	}
	if !IsMissing(agg.At(0, 0, 0)) {
		t.Fatal("all-members-missing tick should stay missing")
	}
	if agg.At(0, 0, 1) != x.At(0, 2, 1) {
		t.Fatal("partially missing tick should sum observed members")
	}
}

func TestAggregateLocationsErrors(t *testing.T) {
	x := newTestTensor()
	if _, err := x.AggregateLocations(nil, nil); err == nil {
		t.Fatal("empty groups accepted")
	}
	if _, err := x.AggregateLocations([]string{"a"}, [][]string{{"ZZ"}}); err == nil {
		t.Fatal("unknown member accepted")
	}
	if _, err := x.AggregateLocations([]string{"a", "b"}, [][]string{{"US"}}); err == nil {
		t.Fatal("misaligned groups accepted")
	}
}

// Property: Global is invariant under any permutation of the location axis.
func TestGlobalPermutationInvariantQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d, l, n := 1+rng.Intn(3), 2+rng.Intn(4), 1+rng.Intn(8)
		kw := make([]string, d)
		for i := range kw {
			kw[i] = string(rune('a' + i))
		}
		loc := make([]string, l)
		for j := range loc {
			loc[j] = string(rune('A' + j))
		}
		x := New(kw, loc, n)
		for i := 0; i < d; i++ {
			for j := 0; j < l; j++ {
				for tt := 0; tt < n; tt++ {
					x.Set(i, j, tt, float64(rng.Intn(100)))
				}
			}
		}
		perm := rng.Perm(l)
		y, err := x.SliceLocations(perm)
		if err != nil {
			return false
		}
		for i := 0; i < d; i++ {
			gx, gy := x.Global(i), y.Global(i)
			for tt := 0; tt < n; tt++ {
				if math.Abs(gx[tt]-gy[tt]) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: Clone round-trips exactly.
func TestCloneRoundTripQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x := New([]string{"k"}, []string{"A", "B"}, 1+rng.Intn(16))
		for j := 0; j < 2; j++ {
			for tt := 0; tt < x.N(); tt++ {
				x.Set(0, j, tt, rng.Float64()*1000)
			}
		}
		y := x.Clone()
		for j := 0; j < 2; j++ {
			for tt := 0; tt < x.N(); tt++ {
				if x.At(0, j, tt) != y.At(0, j, tt) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
