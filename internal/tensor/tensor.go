// Package tensor provides the 3rd-order count tensor that underlies all of
// Δ-SPOT: X ∈ N^{d×l×n}, where x_ij(t) is the activity count of keyword i in
// location j at time-tick t. It also provides the derived sequence views the
// fitting algorithms operate on (local sequences x_ij and global sequences
// x̄_i), missing-value handling, and slicing/aggregation utilities.
package tensor

import (
	"errors"
	"fmt"
	"math"

	"dspot/internal/numcheck"
)

// Missing marks an unobserved cell. Sums and fits skip missing entries.
// NaN is used so that accidental arithmetic on a missing value is loud.
var Missing = math.NaN()

// IsMissing reports whether v denotes a missing observation.
func IsMissing(v float64) bool { return math.IsNaN(v) }

// Tensor is a dense 3rd-order tensor of activity counts, indexed as
// (keyword, location, time). Values are float64 so that missing values and
// normalised data can be represented, but semantically they are counts.
type Tensor struct {
	Keywords  []string // names of the d keywords/queries
	Locations []string // names of the l locations/countries
	Ticks     int      // duration n

	data []float64 // len d*l*n, row-major (keyword, location, time)
}

// New returns a zero tensor with the given keyword and location names and
// duration n. It panics if n < 0 or a dimension is empty, since a tensor
// without keywords or locations is never meaningful in this codebase.
func New(keywords, locations []string, n int) *Tensor {
	if n < 0 {
		panic("tensor: negative duration")
	}
	if len(keywords) == 0 || len(locations) == 0 {
		panic("tensor: empty keyword or location axis")
	}
	return &Tensor{
		Keywords:  append([]string(nil), keywords...),
		Locations: append([]string(nil), locations...),
		Ticks:     n,
		data:      make([]float64, len(keywords)*len(locations)*n),
	}
}

// D returns the number of keywords d.
func (x *Tensor) D() int { return len(x.Keywords) }

// L returns the number of locations l.
func (x *Tensor) L() int { return len(x.Locations) }

// N returns the duration n (number of time-ticks).
func (x *Tensor) N() int { return x.Ticks }

// Size returns the total number of cells d·l·n.
func (x *Tensor) Size() int { return x.D() * x.L() * x.N() }

func (x *Tensor) index(i, j, t int) int {
	if i < 0 || i >= x.D() || j < 0 || j >= x.L() || t < 0 || t >= x.N() {
		panic(fmt.Sprintf("tensor: index (%d,%d,%d) out of bounds (%d,%d,%d)",
			i, j, t, x.D(), x.L(), x.N()))
	}
	return (i*x.L()+j)*x.N() + t
}

// At returns x_ij(t).
func (x *Tensor) At(i, j, t int) float64 { return x.data[x.index(i, j, t)] }

// Set assigns x_ij(t) = v.
func (x *Tensor) Set(i, j, t int, v float64) { x.data[x.index(i, j, t)] = v }

// Add accumulates v into x_ij(t); adding to a missing cell replaces it.
func (x *Tensor) Add(i, j, t int, v float64) {
	idx := x.index(i, j, t)
	if IsMissing(x.data[idx]) {
		x.data[idx] = v
		return
	}
	x.data[idx] += v
}

// Local returns the local-level sequence x_ij = {x_ij(t)}. The returned
// slice aliases the tensor storage; callers that mutate it mutate the tensor.
func (x *Tensor) Local(i, j int) []float64 {
	start := x.index(i, j, 0)
	return x.data[start : start+x.N() : start+x.N()]
}

// LocalCopy returns a copy of the local sequence x_ij.
func (x *Tensor) LocalCopy(i, j int) []float64 {
	return append([]float64(nil), x.Local(i, j)...)
}

// Global returns the global-level sequence x̄_i(t) = Σ_j x_ij(t), skipping
// missing cells. A tick where every location is missing is itself missing.
func (x *Tensor) Global(i int) []float64 {
	n, l := x.N(), x.L()
	out := make([]float64, n)
	for t := 0; t < n; t++ {
		sum, seen := 0.0, false
		for j := 0; j < l; j++ {
			v := x.At(i, j, t)
			if IsMissing(v) {
				continue
			}
			sum += v
			seen = true
		}
		if !seen {
			out[t] = Missing
			continue
		}
		out[t] = sum
	}
	return out
}

// GlobalAll returns the d global sequences {x̄_i}.
func (x *Tensor) GlobalAll() [][]float64 {
	out := make([][]float64, x.D())
	for i := range out {
		out[i] = x.Global(i)
	}
	return out
}

// KeywordIndex returns the axis index of the named keyword, or an error.
func (x *Tensor) KeywordIndex(name string) (int, error) {
	for i, k := range x.Keywords {
		if k == name {
			return i, nil
		}
	}
	return 0, fmt.Errorf("tensor: unknown keyword %q", name)
}

// LocationIndex returns the axis index of the named location, or an error.
func (x *Tensor) LocationIndex(name string) (int, error) {
	for j, l := range x.Locations {
		if l == name {
			return j, nil
		}
	}
	return 0, fmt.Errorf("tensor: unknown location %q", name)
}

// Clone returns a deep copy of the tensor.
func (x *Tensor) Clone() *Tensor {
	y := New(x.Keywords, x.Locations, x.N())
	copy(y.data, x.data)
	return y
}

// SliceTicks returns a new tensor restricted to ticks [lo, hi).
func (x *Tensor) SliceTicks(lo, hi int) (*Tensor, error) {
	if lo < 0 || hi > x.N() || lo >= hi {
		return nil, fmt.Errorf("tensor: bad tick range [%d,%d) of %d", lo, hi, x.N())
	}
	y := New(x.Keywords, x.Locations, hi-lo)
	for i := 0; i < x.D(); i++ {
		for j := 0; j < x.L(); j++ {
			copy(y.Local(i, j), x.Local(i, j)[lo:hi])
		}
	}
	return y, nil
}

// SliceKeywords returns a new tensor with only the given keyword indices.
func (x *Tensor) SliceKeywords(idx []int) (*Tensor, error) {
	if len(idx) == 0 {
		return nil, errors.New("tensor: empty keyword selection")
	}
	names := make([]string, len(idx))
	for p, i := range idx {
		if i < 0 || i >= x.D() {
			return nil, fmt.Errorf("tensor: keyword index %d out of range", i)
		}
		names[p] = x.Keywords[i]
	}
	y := New(names, x.Locations, x.N())
	for p, i := range idx {
		for j := 0; j < x.L(); j++ {
			copy(y.Local(p, j), x.Local(i, j))
		}
	}
	return y, nil
}

// SliceLocations returns a new tensor with only the given location indices.
func (x *Tensor) SliceLocations(idx []int) (*Tensor, error) {
	if len(idx) == 0 {
		return nil, errors.New("tensor: empty location selection")
	}
	names := make([]string, len(idx))
	for p, j := range idx {
		if j < 0 || j >= x.L() {
			return nil, fmt.Errorf("tensor: location index %d out of range", j)
		}
		names[p] = x.Locations[j]
	}
	y := New(x.Keywords, names, x.N())
	for i := 0; i < x.D(); i++ {
		for p, j := range idx {
			copy(y.Local(i, p), x.Local(i, j))
		}
	}
	return y, nil
}

// AggregateLocations returns a new tensor whose location axis is the given
// groups: group g sums the counts of every member location (missing cells
// skipped; a tick where every member is missing stays missing). Group names
// and membership lists must be aligned; unknown member names are an error.
func (x *Tensor) AggregateLocations(groupNames []string, members [][]string) (*Tensor, error) {
	if len(groupNames) == 0 || len(groupNames) != len(members) {
		return nil, fmt.Errorf("tensor: %d group names for %d member lists",
			len(groupNames), len(members))
	}
	idx := make([][]int, len(members))
	for g, list := range members {
		for _, name := range list {
			j, err := x.LocationIndex(name)
			if err != nil {
				return nil, fmt.Errorf("tensor: group %q: %w", groupNames[g], err)
			}
			idx[g] = append(idx[g], j)
		}
	}
	out := New(x.Keywords, groupNames, x.N())
	for i := 0; i < x.D(); i++ {
		for g := range idx {
			dst := out.Local(i, g)
			for t := range dst {
				dst[t] = Missing
			}
			for _, j := range idx[g] {
				src := x.Local(i, j)
				for t, v := range src {
					if IsMissing(v) {
						continue
					}
					if IsMissing(dst[t]) {
						dst[t] = v
						continue
					}
					dst[t] += v
				}
			}
		}
	}
	return out, nil
}

// Total returns the sum over all non-missing cells.
func (x *Tensor) Total() float64 {
	sum := 0.0
	for _, v := range x.data {
		if IsMissing(v) {
			continue
		}
		sum += v
	}
	return sum
}

// MissingCount returns the number of missing cells.
func (x *Tensor) MissingCount() int {
	c := 0
	for _, v := range x.data {
		if IsMissing(v) {
			c++
		}
	}
	return c
}

// Max returns the maximum non-missing cell value (0 for an all-missing tensor).
func (x *Tensor) Max() float64 {
	best := 0.0
	for _, v := range x.data {
		if IsMissing(v) {
			continue
		}
		if v > best {
			best = v
		}
	}
	return best
}

// Validate checks structural invariants (dimension/storage agreement, no
// negative or infinite counts; NaN marks a missing cell and is allowed) and
// returns a descriptive error on the first violation. Value violations are
// numcheck errors, so callers can errors.Is against numcheck.ErrInf /
// numcheck.ErrNegative to classify bad input at an API boundary.
func (x *Tensor) Validate() error {
	if want := x.D() * x.L() * x.N(); len(x.data) != want {
		return fmt.Errorf("tensor: storage %d != d*l*n %d", len(x.data), want)
	}
	for i := 0; i < x.D(); i++ {
		for j := 0; j < x.L(); j++ {
			if err := numcheck.Sequence("tensor", x.Local(i, j)); err != nil {
				return fmt.Errorf("tensor: keyword %q location %q: %w",
					x.Keywords[i], x.Locations[j], err)
			}
		}
	}
	return nil
}
