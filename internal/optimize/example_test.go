package optimize_test

import (
	"fmt"

	"dspot/internal/optimize"
)

// Golden-section search over a bounded interval.
func ExampleGolden() {
	f := func(x float64) float64 { return (x - 3) * (x - 3) }
	x, fx := optimize.Golden(f, 0, 10, 1e-9, 0)
	fmt.Printf("argmin=%.3f min=%.3f\n", x, fx)
	// Output:
	// argmin=3.000 min=0.000
}

// Nelder–Mead on the Rosenbrock function.
func ExampleNelderMead() {
	rosen := func(x []float64) float64 {
		a := 1 - x[0]
		b := x[1] - x[0]*x[0]
		return a*a + 100*b*b
	}
	x, _ := optimize.NelderMead(rosen, []float64{-1.2, 1},
		optimize.NelderMeadOptions{MaxIter: 5000, Tol: 1e-14})
	fmt.Printf("(%.2f, %.2f)\n", x[0], x[1])
	// Output:
	// (1.00, 1.00)
}

// Coarse-then-exact integer search.
func ExampleRefiningGrid() {
	f := func(c int) float64 { return float64((c - 457) * (c - 457)) }
	best, _ := optimize.RefiningGrid(f, 0, 1000, 20)
	fmt.Println(best)
	// Output:
	// 457
}
