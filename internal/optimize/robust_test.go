package optimize

import (
	"math"
	"testing"
)

// A NaN-returning stretch of the objective must not freeze the bracket:
// NaN comparisons are always false, so an unguarded golden section would
// stop shrinking (or keep a NaN as the "best" value) the first time it
// sampled the bad region.
func TestGoldenNaNRegion(t *testing.T) {
	f := func(x float64) float64 {
		if x < 2 { // degenerate region: simulation failed
			return math.NaN()
		}
		return (x - 3) * (x - 3)
	}
	x, fx := Golden(f, 0, 10, 1e-6, 200)
	if math.IsNaN(fx) {
		t.Fatalf("Golden returned NaN objective at x=%g", x)
	}
	if math.Abs(x-3) > 1e-3 {
		t.Fatalf("Golden found x=%g, want 3", x)
	}
}

// An all-NaN objective degrades to +Inf, never NaN.
func TestGoldenAllNaN(t *testing.T) {
	nan := func(x float64) float64 { return math.NaN() }
	_, fx := Golden(nan, 0, 1, 1e-6, 50)
	if !math.IsInf(fx, 1) {
		t.Fatalf("Golden over all-NaN objective: fx = %g, want +Inf", fx)
	}
}

func TestGridMinNaNCandidates(t *testing.T) {
	f := func(c int) float64 {
		if c == 2 {
			return math.NaN()
		}
		return float64((c - 5) * (c - 5))
	}
	best, fbest := GridMin(f, []int{0, 2, 5, 9})
	if best != 5 || fbest != 0 {
		t.Fatalf("GridMin = (%d, %g), want (5, 0)", best, fbest)
	}
	// NaN first in the candidate list must not win the running minimum.
	best, fbest = GridMin(f, []int{2, 5})
	if best != 5 || math.IsNaN(fbest) {
		t.Fatalf("GridMin with NaN first = (%d, %g), want (5, 0)", best, fbest)
	}
}

func TestGridMinFloatNaN(t *testing.T) {
	f := func(c float64) float64 {
		if c < 0 {
			return math.NaN()
		}
		return c
	}
	best, fbest := GridMinFloat(f, []float64{-1, 4, 1})
	if best != 1 || fbest != 1 {
		t.Fatalf("GridMinFloat = (%g, %g), want (1, 1)", best, fbest)
	}
}

func TestRefiningGridNaN(t *testing.T) {
	f := func(c int) float64 {
		if c%3 == 0 {
			return math.NaN()
		}
		return math.Abs(float64(c - 50))
	}
	best, fbest := RefiningGrid(f, 0, 100, 16)
	if math.IsNaN(fbest) {
		t.Fatalf("RefiningGrid returned NaN objective")
	}
	if best%3 == 0 {
		t.Fatalf("RefiningGrid picked a NaN candidate %d", best)
	}
}
