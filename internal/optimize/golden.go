// Package optimize provides the derivative-free optimisers used throughout
// the fitting pipeline: golden-section search for 1-D bounded minimisation,
// exhaustive/refining grid search for discrete parameters (shock start
// times, periods, growth onset), and Nelder–Mead simplex descent for small
// dense parameter vectors where Levenberg–Marquardt is not applicable (e.g.
// TBATS smoothing constants).
package optimize

import (
	"context"
	"fmt"
	"math"
)

const invPhi = 0.6180339887498949 // 1/φ

// finiteMin maps a NaN objective value to +Inf. Every comparison against
// NaN is false, so a single NaN evaluation would otherwise freeze a
// golden-section bracket or win a grid tie it never earned; +Inf makes a
// degenerate candidate lose every comparison instead.
func finiteMin(v float64) float64 {
	if math.IsNaN(v) {
		return math.Inf(1)
	}
	return v
}

// Golden minimises f over [lo, hi] with golden-section search, returning the
// minimising x and f(x). tol is the absolute interval tolerance; maxIter
// bounds the number of shrink steps (each shrinks the interval by 1/φ).
func Golden(f func(float64) float64, lo, hi, tol float64, maxIter int) (x, fx float64) {
	x, fx, _ = GoldenCtx(nil, f, lo, hi, tol, maxIter)
	return x, fx
}

// GoldenCtx is Golden under a context: ctx (which may be nil for "never
// cancelled") is checked before every shrink step, and once it is done the
// search stops and returns the best point evaluated so far together with an
// error wrapping ctx.Err(). Each step costs one objective evaluation, so
// cancel-to-stop latency is bounded by a single evaluation of f.
func GoldenCtx(ctx context.Context, f func(float64) float64, lo, hi, tol float64, maxIter int) (x, fx float64, err error) {
	if hi < lo {
		lo, hi = hi, lo
	}
	if maxIter <= 0 {
		maxIter = 200
	}
	a, b := lo, hi
	c := b - (b-a)*invPhi
	d := a + (b-a)*invPhi
	fc, fd := finiteMin(f(c)), finiteMin(f(d))
	for i := 0; i < maxIter && (b-a) > tol; i++ {
		if ctx != nil {
			if cerr := ctx.Err(); cerr != nil {
				x, fx = c, fc
				if fd < fc {
					x, fx = d, fd
				}
				return x, fx, fmt.Errorf("optimize: golden stopped: %w", cerr)
			}
		}
		if fc < fd {
			b, d, fd = d, c, fc
			c = b - (b-a)*invPhi
			fc = finiteMin(f(c))
		} else {
			a, c, fc = c, d, fd
			d = a + (b-a)*invPhi
			fd = finiteMin(f(d))
		}
	}
	x = (a + b) / 2
	fx = finiteMin(f(x))
	// Return the best point actually evaluated, not just the midpoint.
	if fc < fx {
		x, fx = c, fc
	}
	if fd < fx {
		x, fx = d, fd
	}
	return x, fx, nil
}

// GridMin evaluates f at each candidate and returns the argmin and minimum.
// Ties resolve to the earliest candidate, making searches deterministic. It
// returns (0, +Inf) for an empty candidate set.
func GridMin(f func(int) float64, candidates []int) (best int, fbest float64) {
	fbest = math.Inf(1)
	for _, c := range candidates {
		if v := finiteMin(f(c)); v < fbest {
			best, fbest = c, v
		}
	}
	return best, fbest
}

// GridMinFloat is GridMin over float64 candidates.
func GridMinFloat(f func(float64) float64, candidates []float64) (best, fbest float64) {
	fbest = math.Inf(1)
	for _, c := range candidates {
		if v := finiteMin(f(c)); v < fbest {
			best, fbest = c, v
		}
	}
	return best, fbest
}

// RefiningGrid minimises f over the integer range [lo, hi] by a coarse pass
// of at most width points followed by an exact scan of the winning
// neighbourhood. It is exact when hi-lo+1 <= width and otherwise trades a
// small risk of missing a narrow optimum for O(width + stride) evaluations.
func RefiningGrid(f func(int) float64, lo, hi, width int) (best int, fbest float64) {
	best, fbest, _ = RefiningGridCtx(nil, f, lo, hi, width)
	return best, fbest
}

// RefiningGridCtx is RefiningGrid under a context: ctx (which may be nil) is
// checked before every candidate evaluation, and once it is done the scan
// stops and returns the best candidate evaluated so far together with an
// error wrapping ctx.Err().
func RefiningGridCtx(ctx context.Context, f func(int) float64, lo, hi, width int) (best int, fbest float64, err error) {
	if hi < lo {
		lo, hi = hi, lo
	}
	if width < 2 {
		width = 2
	}
	span := hi - lo + 1
	stride := span / width
	if stride < 1 {
		stride = 1
	}
	var coarse []int
	for c := lo; c <= hi; c += stride {
		coarse = append(coarse, c)
	}
	if coarse[len(coarse)-1] != hi {
		coarse = append(coarse, hi)
	}
	center, fcenter, err := gridMinCtx(ctx, f, coarse)
	if err != nil {
		return center, fcenter, err
	}
	flo, fhi := center-stride, center+stride
	if flo < lo {
		flo = lo
	}
	if fhi > hi {
		fhi = hi
	}
	var fine []int
	for c := flo; c <= fhi; c++ {
		fine = append(fine, c)
	}
	return gridMinCtx(ctx, f, fine)
}

// gridMinCtx is GridMin with a per-candidate context check. It returns the
// best of the candidates evaluated before cancellation; fbest is +Inf when
// no candidate was evaluated at all.
func gridMinCtx(ctx context.Context, f func(int) float64, candidates []int) (best int, fbest float64, err error) {
	fbest = math.Inf(1)
	for _, c := range candidates {
		if ctx != nil {
			if cerr := ctx.Err(); cerr != nil {
				return best, fbest, fmt.Errorf("optimize: grid stopped: %w", cerr)
			}
		}
		if v := finiteMin(f(c)); v < fbest {
			best, fbest = c, v
		}
	}
	return best, fbest, nil
}
