package optimize

import (
	"math"
	"sort"
)

// NelderMeadOptions configures the simplex search.
type NelderMeadOptions struct {
	MaxIter int     // maximum iterations (default 400·dim)
	Tol     float64 // convergence tolerance on simplex f-spread (default 1e-8)
	Step    float64 // initial simplex edge relative to |x0| (default 0.1)
}

// NelderMead minimises f starting from x0 using the Nelder–Mead simplex
// method with the standard (1, 2, 0.5, 0.5) reflection/expansion/contraction/
// shrink coefficients. It returns the best point found and its value. The
// input slice is not modified.
func NelderMead(f func([]float64) float64, x0 []float64, opts NelderMeadOptions) ([]float64, float64) {
	dim := len(x0)
	if dim == 0 {
		return nil, f(nil)
	}
	if opts.MaxIter <= 0 {
		opts.MaxIter = 400 * dim
	}
	if opts.Tol <= 0 {
		opts.Tol = 1e-8
	}
	if opts.Step <= 0 {
		opts.Step = 0.1
	}

	type vertex struct {
		x []float64
		f float64
	}
	simplex := make([]vertex, dim+1)
	base := append([]float64(nil), x0...)
	simplex[0] = vertex{base, f(base)}
	for i := 0; i < dim; i++ {
		x := append([]float64(nil), x0...)
		h := opts.Step * math.Abs(x[i])
		if h == 0 {
			h = opts.Step
		}
		x[i] += h
		simplex[i+1] = vertex{x, f(x)}
	}
	order := func() { sort.Slice(simplex, func(a, b int) bool { return simplex[a].f < simplex[b].f }) }
	order()

	centroid := make([]float64, dim)
	point := func(coef float64) ([]float64, float64) {
		// x = centroid + coef·(centroid - worst)
		x := make([]float64, dim)
		worst := simplex[dim].x
		for i := range x {
			x[i] = centroid[i] + coef*(centroid[i]-worst[i])
		}
		return x, f(x)
	}

	for iter := 0; iter < opts.MaxIter; iter++ {
		if math.Abs(simplex[dim].f-simplex[0].f) < opts.Tol {
			break
		}
		for i := range centroid {
			centroid[i] = 0
		}
		for v := 0; v < dim; v++ { // exclude worst
			for i := range centroid {
				centroid[i] += simplex[v].x[i]
			}
		}
		for i := range centroid {
			centroid[i] /= float64(dim)
		}

		xr, fr := point(1) // reflection
		switch {
		case fr < simplex[0].f:
			if xe, fe := point(2); fe < fr { // expansion
				simplex[dim] = vertex{xe, fe}
			} else {
				simplex[dim] = vertex{xr, fr}
			}
		case fr < simplex[dim-1].f:
			simplex[dim] = vertex{xr, fr}
		default:
			xc, fc := point(-0.5) // inside contraction toward centroid
			if fr < simplex[dim].f {
				xc2 := make([]float64, dim)
				for i := range xc2 { // outside contraction
					xc2[i] = centroid[i] + 0.5*(xr[i]-centroid[i])
				}
				if fc2 := f(xc2); fc2 < fc {
					xc, fc = xc2, fc2
				}
			}
			if fc < simplex[dim].f {
				simplex[dim] = vertex{xc, fc}
			} else { // shrink toward best
				for v := 1; v <= dim; v++ {
					for i := range simplex[v].x {
						simplex[v].x[i] = simplex[0].x[i] + 0.5*(simplex[v].x[i]-simplex[0].x[i])
					}
					simplex[v].f = f(simplex[v].x)
				}
			}
		}
		order()
	}
	return simplex[0].x, simplex[0].f
}

// Clamp returns v clamped to [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
