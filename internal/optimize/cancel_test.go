package optimize

import (
	"context"
	"errors"
	"math"
	"testing"
)

func TestGoldenCtxNilMatchesGolden(t *testing.T) {
	f := func(x float64) float64 { return (x - 3.2) * (x - 3.2) }
	x0, fx0 := Golden(f, -10, 10, 1e-9, 0)
	x1, fx1, err := GoldenCtx(nil, f, -10, 10, 1e-9, 0)
	if err != nil {
		t.Fatal(err)
	}
	if x0 != x1 || fx0 != fx1 {
		t.Fatalf("GoldenCtx(nil) = (%g,%g), Golden = (%g,%g)", x1, fx1, x0, fx0)
	}
}

func TestGoldenCtxCancelStopsWithinOneEval(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	evals := 0
	f := func(x float64) float64 {
		evals++
		if evals == 5 {
			cancel()
		}
		return (x - 2) * (x - 2)
	}
	x, fx, err := GoldenCtx(ctx, f, 0, 100, 1e-12, 500)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// ctx is checked before every shrink step; at most the in-flight
	// evaluation completes after cancel fires.
	if evals > 6 {
		t.Fatalf("objective evaluated %d times after cancel at eval 5", evals)
	}
	// The best point seen so far is still returned, inside the bracket.
	if x < 0 || x > 100 || math.IsInf(fx, 0) || math.IsNaN(fx) {
		t.Fatalf("cancelled GoldenCtx = (%g, %g)", x, fx)
	}
}

func TestGoldenCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	evals := 0
	f := func(x float64) float64 { evals++; return x * x }
	_, _, err := GoldenCtx(ctx, f, -4, 4, 1e-9, 100)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Only the two bracket seeds run before the first check.
	if evals > 2 {
		t.Fatalf("objective evaluated %d times after pre-cancel", evals)
	}
}

func TestRefiningGridCtxNilMatchesRefiningGrid(t *testing.T) {
	f := func(c int) float64 { return float64((c - 137) * (c - 137)) }
	b0, f0 := RefiningGrid(f, 0, 1000, 20)
	b1, f1, err := RefiningGridCtx(nil, f, 0, 1000, 20)
	if err != nil {
		t.Fatal(err)
	}
	if b0 != b1 || f0 != f1 {
		t.Fatalf("RefiningGridCtx(nil) = (%d,%g), RefiningGrid = (%d,%g)", b1, f1, b0, f0)
	}
}

func TestRefiningGridCtxCancelStopsScan(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	evals := 0
	f := func(c int) float64 {
		evals++
		if evals == 4 {
			cancel()
		}
		return float64((c - 500) * (c - 500))
	}
	_, _, err := RefiningGridCtx(ctx, f, 0, 1000, 50)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The check runs before every candidate: the eval that fired cancel is
	// the last one.
	if evals > 4 {
		t.Fatalf("grid evaluated %d candidates after cancel at eval 4", evals)
	}
}

func TestGridMinCtxPreCancelledReportsInf(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, fbest, err := gridMinCtx(ctx, func(c int) float64 { return 0 }, []int{1, 2, 3})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if !math.IsInf(fbest, 1) {
		t.Fatalf("fbest = %g with no candidates evaluated, want +Inf", fbest)
	}
}
