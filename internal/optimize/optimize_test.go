package optimize

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGoldenQuadratic(t *testing.T) {
	f := func(x float64) float64 { return (x - 3.2) * (x - 3.2) }
	x, fx := Golden(f, -10, 10, 1e-9, 0)
	if math.Abs(x-3.2) > 1e-6 {
		t.Fatalf("Golden argmin = %g, want 3.2", x)
	}
	if fx > 1e-10 {
		t.Fatalf("Golden min value = %g", fx)
	}
}

func TestGoldenReversedBounds(t *testing.T) {
	f := func(x float64) float64 { return math.Abs(x - 1) }
	x, _ := Golden(f, 5, -5, 1e-9, 0)
	if math.Abs(x-1) > 1e-6 {
		t.Fatalf("Golden with reversed bounds = %g, want 1", x)
	}
}

func TestGoldenRespectsBounds(t *testing.T) {
	// Minimum outside the interval: should return the boundary region.
	f := func(x float64) float64 { return (x - 100) * (x - 100) }
	x, _ := Golden(f, 0, 1, 1e-9, 0)
	if x < 0 || x > 1 {
		t.Fatalf("Golden wandered outside bounds: %g", x)
	}
	if math.Abs(x-1) > 1e-3 {
		t.Fatalf("Golden boundary argmin = %g, want ~1", x)
	}
}

func TestGridMin(t *testing.T) {
	f := func(c int) float64 { return float64((c - 7) * (c - 7)) }
	best, fbest := GridMin(f, []int{1, 5, 7, 9})
	if best != 7 || fbest != 0 {
		t.Fatalf("GridMin = (%d,%g), want (7,0)", best, fbest)
	}
	_, fbest = GridMin(f, nil)
	if !math.IsInf(fbest, 1) {
		t.Fatalf("GridMin(empty) fbest = %g, want +Inf", fbest)
	}
}

func TestGridMinTieBreaksEarliest(t *testing.T) {
	f := func(c int) float64 { return 1.0 }
	best, _ := GridMin(f, []int{4, 2, 9})
	if best != 4 {
		t.Fatalf("tie should go to first candidate, got %d", best)
	}
}

func TestGridMinFloat(t *testing.T) {
	f := func(c float64) float64 { return math.Abs(c - 0.5) }
	best, _ := GridMinFloat(f, []float64{0.1, 0.4, 0.9})
	if best != 0.4 {
		t.Fatalf("GridMinFloat = %g, want 0.4", best)
	}
}

func TestRefiningGridExactSmallRange(t *testing.T) {
	f := func(c int) float64 { return float64((c - 13) * (c - 13)) }
	best, fbest := RefiningGrid(f, 0, 20, 50)
	if best != 13 || fbest != 0 {
		t.Fatalf("RefiningGrid = (%d,%g), want (13,0)", best, fbest)
	}
}

func TestRefiningGridCoarseThenFine(t *testing.T) {
	// Smooth objective over a wide range: refine pass should land exactly.
	f := func(c int) float64 { return math.Pow(float64(c-457), 2) }
	best, _ := RefiningGrid(f, 0, 1000, 20)
	if best != 457 {
		t.Fatalf("RefiningGrid wide = %d, want 457", best)
	}
}

func TestRefiningGridReversedAndDegenerate(t *testing.T) {
	f := func(c int) float64 { return float64(c) }
	best, _ := RefiningGrid(f, 10, 5, 4)
	if best != 5 {
		t.Fatalf("reversed range best = %d, want 5", best)
	}
	best, _ = RefiningGrid(f, 3, 3, 0)
	if best != 3 {
		t.Fatalf("single-point range best = %d, want 3", best)
	}
}

func TestNelderMeadRosenbrock(t *testing.T) {
	rosen := func(x []float64) float64 {
		a := 1 - x[0]
		b := x[1] - x[0]*x[0]
		return a*a + 100*b*b
	}
	x, fx := NelderMead(rosen, []float64{-1.2, 1}, NelderMeadOptions{MaxIter: 5000, Tol: 1e-14})
	if math.Abs(x[0]-1) > 1e-3 || math.Abs(x[1]-1) > 1e-3 {
		t.Fatalf("NelderMead Rosenbrock argmin = %v (f=%g)", x, fx)
	}
}

func TestNelderMeadQuadratic3D(t *testing.T) {
	target := []float64{2, -3, 0.5}
	f := func(x []float64) float64 {
		s := 0.0
		for i := range x {
			d := x[i] - target[i]
			s += d * d
		}
		return s
	}
	x, fx := NelderMead(f, []float64{0, 0, 0}, NelderMeadOptions{})
	for i := range target {
		if math.Abs(x[i]-target[i]) > 1e-3 {
			t.Fatalf("dim %d: got %g want %g (f=%g)", i, x[i], target[i], fx)
		}
	}
}

func TestNelderMeadEmpty(t *testing.T) {
	called := false
	_, fx := NelderMead(func([]float64) float64 { called = true; return 42 }, nil, NelderMeadOptions{})
	if !called || fx != 42 {
		t.Fatalf("empty-dim NelderMead = %g", fx)
	}
}

func TestNelderMeadDoesNotMutateInput(t *testing.T) {
	x0 := []float64{5, 5}
	NelderMead(func(x []float64) float64 { return x[0]*x[0] + x[1]*x[1] }, x0, NelderMeadOptions{})
	if x0[0] != 5 || x0[1] != 5 {
		t.Fatalf("input mutated: %v", x0)
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Fatal("Clamp wrong")
	}
}

// Property: Golden never returns a worse point than either bound for convex
// objectives.
func TestGoldenConvexQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := rng.Float64()*20 - 10
		obj := func(x float64) float64 { return (x - c) * (x - c) }
		lo, hi := -15.0, 15.0
		x, fx := Golden(obj, lo, hi, 1e-10, 0)
		return fx <= obj(lo)+1e-12 && fx <= obj(hi)+1e-12 && x >= lo && x <= hi &&
			math.Abs(x-c) < 1e-5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: NelderMead on a random positive-definite quadratic converges to
// the known minimiser.
func TestNelderMeadQuadraticQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dim := 2 + rng.Intn(3)
		target := make([]float64, dim)
		w := make([]float64, dim)
		for i := range target {
			target[i] = rng.Float64()*4 - 2
			w[i] = 0.5 + rng.Float64()*3
		}
		obj := func(x []float64) float64 {
			s := 0.0
			for i := range x {
				d := x[i] - target[i]
				s += w[i] * d * d
			}
			return s
		}
		x, _ := NelderMead(obj, make([]float64, dim), NelderMeadOptions{MaxIter: 4000, Tol: 1e-14})
		for i := range x {
			if math.Abs(x[i]-target[i]) > 1e-2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
