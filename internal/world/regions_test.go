package world

import "testing"

func TestEveryRegistryCodeHasExplicitRegion(t *testing.T) {
	for _, c := range Countries() {
		if _, ok := regionOf[c.Code]; !ok {
			t.Errorf("code %q (%s) missing from region map", c.Code, c.Name)
		}
	}
}

func TestRegionOfKnownAssignments(t *testing.T) {
	cases := map[string]Region{
		"US": NorthAmerica, "BR": LatinAmerica, "GB": Europe, "SA": MiddleEast,
		"NG": Africa, "JP": AsiaPacific, "AU": Oceania, "RU": Europe,
		"LA": AsiaPacific, "NP": AsiaPacific, "CG": Africa,
	}
	for code, want := range cases {
		if got := RegionOf(code); got != want {
			t.Errorf("RegionOf(%s) = %s, want %s", code, got, want)
		}
	}
	if got := RegionOf("ZZ"); got != AsiaPacific {
		t.Errorf("unknown code default = %s", got)
	}
}

func TestRegionsCompleteAndOrdered(t *testing.T) {
	rs := Regions()
	if len(rs) != 7 {
		t.Fatalf("regions = %d, want 7", len(rs))
	}
	seen := map[Region]bool{}
	for _, r := range rs {
		if seen[r] {
			t.Fatalf("duplicate region %s", r)
		}
		seen[r] = true
	}
}

func TestCodesByRegionPartition(t *testing.T) {
	groups := CodesByRegion()
	total := 0
	for _, codes := range groups {
		total += len(codes)
	}
	if total != Count() {
		t.Fatalf("region groups cover %d codes, want %d", total, Count())
	}
	// Groups inherit the weight ordering.
	for region, codes := range groups {
		prev := -1.0
		for i, code := range codes {
			c, ok := ByCode(code)
			if !ok {
				t.Fatalf("unknown code %q in region %s", code, region)
			}
			if i > 0 && c.Weight > prev {
				t.Fatalf("region %s not weight-sorted at %q", region, code)
			}
			prev = c.Weight
		}
	}
}

func TestRegionWeightsSumToTotal(t *testing.T) {
	sum := 0.0
	for _, w := range RegionWeights() {
		sum += w
	}
	if diff := sum - TotalWeight(); diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("region weights sum %g != total %g", sum, TotalWeight())
	}
}

func TestSortedRegionNames(t *testing.T) {
	names := SortedRegionNames(RegionWeights())
	if len(names) != 7 {
		t.Fatalf("sorted names = %d", len(names))
	}
	for i := 1; i < len(names); i++ {
		if names[i] < names[i-1] {
			t.Fatal("names not sorted")
		}
	}
}
