// Package world provides the location axis used by the synthetic datasets:
// 232 countries/territories (the count used by the paper's GoogleTrends
// dataset) with ISO 3166-1 alpha-2 codes, display names, and a synthetic
// connectivity weight standing in for each territory's online population.
//
// The weights are order-of-magnitude figures (roughly "millions of internet
// users, mid-2010s") for the larger countries and deterministic small values
// for the long tail. They are a data substitute, not a statistical source:
// the evaluation only needs a heavy-tailed, fixed, realistic-looking
// distribution of local activity volumes (documented in DESIGN.md).
package world

import "sort"

// Country describes one location on the location axis.
type Country struct {
	Code    string  // ISO 3166-1 alpha-2
	Name    string  // display name
	Weight  float64 // synthetic online-population weight (arbitrary units)
	English float64 // affinity to English-language topics in [0,1]
}

// named holds the explicitly curated entries (the high-volume countries and
// every country referenced by the paper's figures: US, JP, GB, AU, RU, LA,
// NP, CG, ...).
var named = []Country{
	{"US", "United States", 280, 1.0},
	{"CN", "China", 640, 0.1},
	{"IN", "India", 240, 0.6},
	{"BR", "Brazil", 110, 0.2},
	{"JP", "Japan", 110, 0.2},
	{"RU", "Russia", 100, 0.15},
	{"DE", "Germany", 70, 0.5},
	{"ID", "Indonesia", 70, 0.25},
	{"NG", "Nigeria", 60, 0.7},
	{"MX", "Mexico", 55, 0.2},
	{"GB", "United Kingdom", 58, 1.0},
	{"FR", "France", 55, 0.4},
	{"IT", "Italy", 38, 0.3},
	{"ES", "Spain", 36, 0.3},
	{"TR", "Turkey", 35, 0.2},
	{"KR", "South Korea", 43, 0.3},
	{"VN", "Vietnam", 40, 0.2},
	{"PH", "Philippines", 40, 0.8},
	{"EG", "Egypt", 30, 0.3},
	{"IR", "Iran", 30, 0.2},
	{"PK", "Pakistan", 28, 0.5},
	{"CA", "Canada", 31, 0.95},
	{"AR", "Argentina", 28, 0.25},
	{"TH", "Thailand", 26, 0.25},
	{"PL", "Poland", 25, 0.35},
	{"ZA", "South Africa", 24, 0.8},
	{"CO", "Colombia", 22, 0.2},
	{"UA", "Ukraine", 18, 0.2},
	{"SA", "Saudi Arabia", 18, 0.35},
	{"MY", "Malaysia", 19, 0.6},
	{"AU", "Australia", 20, 1.0},
	{"TW", "Taiwan", 18, 0.25},
	{"NL", "Netherlands", 15, 0.7},
	{"MA", "Morocco", 14, 0.2},
	{"VE", "Venezuela", 14, 0.2},
	{"PE", "Peru", 12, 0.2},
	{"CL", "Chile", 12, 0.25},
	{"RO", "Romania", 11, 0.35},
	{"BD", "Bangladesh", 10, 0.4},
	{"KE", "Kenya", 10, 0.75},
	{"SE", "Sweden", 8.5, 0.8},
	{"BE", "Belgium", 8.5, 0.55},
	{"KZ", "Kazakhstan", 9, 0.15},
	{"CZ", "Czechia", 7.5, 0.4},
	{"AT", "Austria", 7, 0.5},
	{"HU", "Hungary", 7, 0.35},
	{"CH", "Switzerland", 6.5, 0.6},
	{"GR", "Greece", 6.5, 0.4},
	{"PT", "Portugal", 6.5, 0.35},
	{"IL", "Israel", 6, 0.7},
	{"AE", "United Arab Emirates", 8, 0.7},
	{"DZ", "Algeria", 8, 0.2},
	{"EC", "Ecuador", 6, 0.2},
	{"SG", "Singapore", 4.5, 0.9},
	{"DK", "Denmark", 5, 0.8},
	{"FI", "Finland", 4.8, 0.75},
	{"NO", "Norway", 4.6, 0.8},
	{"IE", "Ireland", 3.8, 1.0},
	{"NZ", "New Zealand", 3.7, 1.0},
	{"HK", "Hong Kong", 5.7, 0.7},
	{"SK", "Slovakia", 4.2, 0.35},
	{"BY", "Belarus", 5.5, 0.15},
	{"RS", "Serbia", 4.2, 0.3},
	{"BG", "Bulgaria", 4, 0.3},
	{"HR", "Croatia", 3, 0.35},
	{"JO", "Jordan", 3.5, 0.4},
	{"LK", "Sri Lanka", 4, 0.5},
	{"TN", "Tunisia", 4.5, 0.2},
	{"GH", "Ghana", 5, 0.8},
	{"UZ", "Uzbekistan", 6, 0.1},
	{"IQ", "Iraq", 6, 0.2},
	{"MM", "Myanmar", 4, 0.2},
	{"ET", "Ethiopia", 4, 0.4},
	{"TZ", "Tanzania", 4, 0.6},
	{"UG", "Uganda", 4, 0.7},
	{"BO", "Bolivia", 3, 0.15},
	{"DO", "Dominican Republic", 3.5, 0.25},
	{"GT", "Guatemala", 3, 0.2},
	{"CR", "Costa Rica", 2.5, 0.3},
	{"UY", "Uruguay", 2.3, 0.25},
	{"PA", "Panama", 2, 0.3},
	{"LB", "Lebanon", 2.5, 0.4},
	{"KW", "Kuwait", 3, 0.5},
	{"QA", "Qatar", 2.2, 0.6},
	{"OM", "Oman", 2.5, 0.4},
	{"BH", "Bahrain", 1.2, 0.5},
	{"LT", "Lithuania", 2.2, 0.4},
	{"LV", "Latvia", 1.6, 0.4},
	{"EE", "Estonia", 1.1, 0.5},
	{"SI", "Slovenia", 1.5, 0.45},
	{"AL", "Albania", 1.8, 0.3},
	{"MK", "North Macedonia", 1.3, 0.3},
	{"BA", "Bosnia and Herzegovina", 2, 0.3},
	{"MD", "Moldova", 1.8, 0.2},
	{"GE", "Georgia", 2, 0.2},
	{"AM", "Armenia", 1.7, 0.2},
	{"AZ", "Azerbaijan", 5, 0.15},
	{"KG", "Kyrgyzstan", 1.8, 0.1},
	{"TJ", "Tajikistan", 1.3, 0.1},
	{"TM", "Turkmenistan", 0.6, 0.1},
	{"MN", "Mongolia", 1.2, 0.2},
	{"KH", "Cambodia", 2, 0.25},
	{"LA", "Laos", 0.9, 0.15},
	{"NP", "Nepal", 3, 0.35},
	{"AF", "Afghanistan", 2, 0.2},
	{"SY", "Syria", 3, 0.2},
	{"YE", "Yemen", 2.5, 0.15},
	{"SD", "Sudan", 3.5, 0.25},
	{"LY", "Libya", 1.5, 0.2},
	{"SN", "Senegal", 2.5, 0.15},
	{"CI", "Ivory Coast", 2.5, 0.15},
	{"CM", "Cameroon", 2, 0.3},
	{"ZM", "Zambia", 1.8, 0.6},
	{"ZW", "Zimbabwe", 2, 0.7},
	{"MZ", "Mozambique", 1.2, 0.2},
	{"AO", "Angola", 2, 0.15},
	{"CD", "DR Congo (Kinshasa)", 1.5, 0.15},
	{"CG", "DR Congo", 0.4, 0.15},
	{"MG", "Madagascar", 0.8, 0.15},
	{"RW", "Rwanda", 1, 0.5},
	{"BJ", "Benin", 0.6, 0.15},
	{"ML", "Mali", 0.8, 0.15},
	{"BF", "Burkina Faso", 0.8, 0.15},
	{"NE", "Niger", 0.4, 0.15},
	{"TD", "Chad", 0.3, 0.15},
	{"SO", "Somalia", 0.4, 0.2},
	{"ER", "Eritrea", 0.1, 0.2},
	{"GM", "Gambia", 0.3, 0.5},
	{"SL", "Sierra Leone", 0.3, 0.6},
	{"LR", "Liberia", 0.3, 0.7},
	{"GN", "Guinea", 0.4, 0.15},
	{"TG", "Togo", 0.4, 0.15},
	{"GA", "Gabon", 0.5, 0.15},
	{"NA", "Namibia", 0.6, 0.6},
	{"BW", "Botswana", 0.7, 0.7},
	{"MW", "Malawi", 0.6, 0.55},
	{"BI", "Burundi", 0.2, 0.2},
	{"LS", "Lesotho", 0.4, 0.6},
	{"SZ", "Eswatini", 0.3, 0.55},
	{"MU", "Mauritius", 0.7, 0.6},
	{"IS", "Iceland", 0.3, 0.75},
	{"LU", "Luxembourg", 0.5, 0.6},
	{"MT", "Malta", 0.3, 0.75},
	{"CY", "Cyprus", 0.8, 0.6},
	{"ME", "Montenegro", 0.4, 0.3},
	{"JM", "Jamaica", 1.3, 0.9},
	{"TT", "Trinidad and Tobago", 0.9, 0.9},
	{"BS", "Bahamas", 0.3, 0.9},
	{"BB", "Barbados", 0.2, 0.9},
	{"HT", "Haiti", 0.8, 0.2},
	{"CU", "Cuba", 2, 0.2},
	{"HN", "Honduras", 1.5, 0.2},
	{"SV", "El Salvador", 1.5, 0.2},
	{"NI", "Nicaragua", 1, 0.2},
	{"PY", "Paraguay", 2.5, 0.2},
	{"GY", "Guyana", 0.3, 0.85},
	{"SR", "Suriname", 0.3, 0.3},
	{"BZ", "Belize", 0.15, 0.8},
	{"FJ", "Fiji", 0.4, 0.8},
	{"PG", "Papua New Guinea", 0.5, 0.7},
	{"BN", "Brunei", 0.35, 0.6},
	{"MV", "Maldives", 0.25, 0.5},
	{"BT", "Bhutan", 0.25, 0.4},
	{"TL", "Timor-Leste", 0.1, 0.2},
	{"PS", "Palestine", 1.5, 0.3},
	{"MO", "Macao", 0.4, 0.4},
	{"PR", "Puerto Rico", 2.5, 0.7},
	{"GL", "Greenland", 0.05, 0.4},
	{"FO", "Faroe Islands", 0.04, 0.5},
	{"AD", "Andorra", 0.07, 0.4},
	{"MC", "Monaco", 0.03, 0.4},
	{"LI", "Liechtenstein", 0.03, 0.5},
	{"SM", "San Marino", 0.02, 0.4},
	{"VA", "Vatican City", 0.01, 0.4},
	{"GI", "Gibraltar", 0.03, 0.9},
	{"BM", "Bermuda", 0.06, 0.95},
	{"KY", "Cayman Islands", 0.05, 0.95},
	{"VG", "British Virgin Islands", 0.02, 0.95},
	{"VI", "U.S. Virgin Islands", 0.07, 0.95},
	{"AW", "Aruba", 0.09, 0.6},
	{"CW", "Curacao", 0.12, 0.6},
	{"GP", "Guadeloupe", 0.2, 0.3},
	{"MQ", "Martinique", 0.2, 0.3},
	{"GF", "French Guiana", 0.1, 0.3},
	{"RE", "Reunion", 0.4, 0.3},
	{"NC", "New Caledonia", 0.15, 0.35},
	{"PF", "French Polynesia", 0.15, 0.35},
	{"WS", "Samoa", 0.06, 0.8},
	{"TO", "Tonga", 0.04, 0.8},
	{"VU", "Vanuatu", 0.06, 0.7},
	{"SB", "Solomon Islands", 0.06, 0.7},
	{"KI", "Kiribati", 0.02, 0.7},
	{"FM", "Micronesia", 0.03, 0.7},
	{"MH", "Marshall Islands", 0.02, 0.7},
	{"PW", "Palau", 0.02, 0.7},
	{"NR", "Nauru", 0.01, 0.7},
	{"TV", "Tuvalu", 0.01, 0.7},
	{"CK", "Cook Islands", 0.01, 0.8},
	{"AS", "American Samoa", 0.03, 0.8},
	{"GU", "Guam", 0.1, 0.8},
	{"MP", "Northern Mariana Islands", 0.03, 0.8},
	{"SC", "Seychelles", 0.06, 0.6},
	{"KM", "Comoros", 0.06, 0.15},
	{"DJ", "Djibouti", 0.1, 0.2},
	{"CV", "Cape Verde", 0.2, 0.2},
	{"ST", "Sao Tome and Principe", 0.05, 0.15},
	{"GQ", "Equatorial Guinea", 0.15, 0.15},
	{"GW", "Guinea-Bissau", 0.06, 0.15},
	{"MR", "Mauritania", 0.4, 0.15},
	{"EH", "Western Sahara", 0.03, 0.15},
	{"SS", "South Sudan", 0.2, 0.3},
	{"CF", "Central African Republic", 0.1, 0.15},
	{"KP", "North Korea", 0.02, 0.05},
	{"MF", "Saint Martin", 0.02, 0.3},
	{"SX", "Sint Maarten", 0.03, 0.5},
	{"AI", "Anguilla", 0.01, 0.9},
	{"MS", "Montserrat", 0.004, 0.9},
	{"TC", "Turks and Caicos Islands", 0.03, 0.9},
	{"DM", "Dominica", 0.04, 0.85},
	{"GD", "Grenada", 0.06, 0.85},
	{"LC", "Saint Lucia", 0.09, 0.85},
	{"VC", "Saint Vincent and the Grenadines", 0.06, 0.85},
	{"KN", "Saint Kitts and Nevis", 0.04, 0.85},
	{"AG", "Antigua and Barbuda", 0.06, 0.85},
	{"IM", "Isle of Man", 0.06, 0.95},
	{"JE", "Jersey", 0.07, 0.95},
	{"GG", "Guernsey", 0.05, 0.95},
	{"AX", "Aland Islands", 0.02, 0.5},
	{"FK", "Falkland Islands", 0.003, 0.9},
	{"SH", "Saint Helena", 0.004, 0.9},
	{"IO", "British Indian Ocean Territory", 0.002, 0.9},
	{"YT", "Mayotte", 0.05, 0.3},
}

// Countries returns the full 232-territory registry, sorted by descending
// weight (ties broken by code) so that index 0 is the largest market. The
// returned slice is a fresh copy.
func Countries() []Country {
	out := append([]Country(nil), named...)
	sort.Slice(out, func(a, b int) bool {
		if out[a].Weight != out[b].Weight {
			return out[a].Weight > out[b].Weight
		}
		return out[a].Code < out[b].Code
	})
	return out
}

// Count is the number of territories in the registry.
func Count() int { return len(named) }

// ByCode returns the country with the given ISO code and whether it exists.
func ByCode(code string) (Country, bool) {
	for _, c := range named {
		if c.Code == code {
			return c, true
		}
	}
	return Country{}, false
}

// Codes returns the codes in the same order as Countries().
func Codes() []string {
	cs := Countries()
	out := make([]string, len(cs))
	for i, c := range cs {
		out[i] = c.Code
	}
	return out
}

// TotalWeight returns the sum of all registry weights.
func TotalWeight() float64 {
	sum := 0.0
	for _, c := range named {
		sum += c.Weight
	}
	return sum
}
