package world

import "testing"

func TestCountIs232(t *testing.T) {
	if Count() != 232 {
		t.Fatalf("registry has %d territories, want 232 (paper's GoogleTrends count)", Count())
	}
	if got := len(Countries()); got != 232 {
		t.Fatalf("Countries() returned %d entries", got)
	}
}

func TestCountriesSortedByWeight(t *testing.T) {
	cs := Countries()
	for i := 1; i < len(cs); i++ {
		if cs[i].Weight > cs[i-1].Weight {
			t.Fatalf("not sorted at %d: %v > %v", i, cs[i], cs[i-1])
		}
		if cs[i].Weight == cs[i-1].Weight && cs[i].Code < cs[i-1].Code {
			t.Fatalf("tie not broken by code at %d", i)
		}
	}
}

func TestCountriesNoDuplicatesValidFields(t *testing.T) {
	seen := map[string]bool{}
	for _, c := range Countries() {
		if len(c.Code) != 2 {
			t.Fatalf("bad code %q", c.Code)
		}
		if seen[c.Code] {
			t.Fatalf("duplicate code %q", c.Code)
		}
		seen[c.Code] = true
		if c.Name == "" {
			t.Fatalf("empty name for %q", c.Code)
		}
		if c.Weight <= 0 {
			t.Fatalf("non-positive weight for %q", c.Code)
		}
		if c.English < 0 || c.English > 1 {
			t.Fatalf("affinity out of range for %q: %g", c.Code, c.English)
		}
	}
}

func TestPaperCountriesPresent(t *testing.T) {
	// Every country referenced in the paper's figures must exist.
	for _, code := range []string{"US", "JP", "GB", "AU", "RU", "LA", "NP", "CG"} {
		if _, ok := ByCode(code); !ok {
			t.Fatalf("paper country %q missing from registry", code)
		}
	}
}

func TestByCodeUnknown(t *testing.T) {
	if _, ok := ByCode("XX"); ok {
		t.Fatal("unknown code resolved")
	}
}

func TestCodesAlignsWithCountries(t *testing.T) {
	cs, codes := Countries(), Codes()
	if len(cs) != len(codes) {
		t.Fatal("length mismatch")
	}
	for i := range cs {
		if cs[i].Code != codes[i] {
			t.Fatalf("order mismatch at %d", i)
		}
	}
}

func TestCountriesReturnsCopy(t *testing.T) {
	a := Countries()
	a[0].Weight = -1
	b := Countries()
	if b[0].Weight == -1 {
		t.Fatal("Countries() exposes internal storage")
	}
}

func TestTotalWeightPositive(t *testing.T) {
	if TotalWeight() < 100 {
		t.Fatalf("TotalWeight = %g, suspiciously small", TotalWeight())
	}
}

func TestUSIsTopEnglishMarket(t *testing.T) {
	us, ok := ByCode("US")
	if !ok || us.English != 1.0 {
		t.Fatalf("US affinity = %v", us)
	}
	la, _ := ByCode("LA")
	if la.Weight >= us.Weight {
		t.Fatal("outlier country should have much smaller weight than US")
	}
}
