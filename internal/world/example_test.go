package world_test

import (
	"fmt"

	"dspot/internal/world"
)

// The registry covers the paper's 232 territories, weight-sorted.
func ExampleCountries() {
	cs := world.Countries()
	fmt.Println(len(cs), cs[0].Code)
	// Output:
	// 232 CN
}

// Look up the paper's reference countries.
func ExampleByCode() {
	us, _ := world.ByCode("US")
	la, _ := world.ByCode("LA")
	fmt.Printf("%s weight>%s weight: %v\n", us.Code, la.Code, us.Weight > la.Weight)
	// Output:
	// US weight>LA weight: true
}

// Region rollup groups for the regional analyses.
func ExampleCodesByRegion() {
	groups := world.CodesByRegion()
	total := 0
	for _, codes := range groups {
		total += len(codes)
	}
	fmt.Println(len(groups), total)
	// Output:
	// 7 232
}
