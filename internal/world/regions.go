package world

import "sort"

// Region is a coarse geographic grouping used for regional rollups of
// reaction maps and tensors (the paper's world-map figures are, in effect,
// regional summaries rendered per country).
type Region string

// The seven regions used by the rollup analyses.
const (
	NorthAmerica Region = "North America"
	LatinAmerica Region = "Latin America"
	Europe       Region = "Europe"
	MiddleEast   Region = "Middle East"
	Africa       Region = "Africa"
	AsiaPacific  Region = "Asia-Pacific"
	Oceania      Region = "Oceania"
)

// regionOf assigns every registry code to a region. Codes absent from the
// map default to AsiaPacific (none currently are; the test enforces total
// coverage).
var regionOf = map[string]Region{
	// North America.
	"US": NorthAmerica, "CA": NorthAmerica, "BM": NorthAmerica,
	"GL": NorthAmerica, "PM": NorthAmerica,
	// Latin America & Caribbean.
	"MX": LatinAmerica, "BR": LatinAmerica, "AR": LatinAmerica, "CO": LatinAmerica,
	"VE": LatinAmerica, "PE": LatinAmerica, "CL": LatinAmerica, "EC": LatinAmerica,
	"BO": LatinAmerica, "PY": LatinAmerica, "UY": LatinAmerica, "GY": LatinAmerica,
	"SR": LatinAmerica, "GF": LatinAmerica, "PA": LatinAmerica, "CR": LatinAmerica,
	"NI": LatinAmerica, "HN": LatinAmerica, "SV": LatinAmerica, "GT": LatinAmerica,
	"BZ": LatinAmerica, "CU": LatinAmerica, "HT": LatinAmerica, "DO": LatinAmerica,
	"JM": LatinAmerica, "TT": LatinAmerica, "BB": LatinAmerica, "BS": LatinAmerica,
	"PR": LatinAmerica, "AW": LatinAmerica, "CW": LatinAmerica, "SX": LatinAmerica,
	"MF": LatinAmerica, "AI": LatinAmerica, "MS": LatinAmerica, "TC": LatinAmerica,
	"KY": LatinAmerica, "VG": LatinAmerica, "VI": LatinAmerica, "GP": LatinAmerica,
	"MQ": LatinAmerica, "DM": LatinAmerica, "GD": LatinAmerica, "LC": LatinAmerica,
	"VC": LatinAmerica, "KN": LatinAmerica, "AG": LatinAmerica, "FK": LatinAmerica,
	// Europe.
	"GB": Europe, "DE": Europe, "FR": Europe, "IT": Europe, "ES": Europe,
	"PT": Europe, "NL": Europe, "BE": Europe, "LU": Europe, "IE": Europe,
	"CH": Europe, "AT": Europe, "PL": Europe, "CZ": Europe, "SK": Europe,
	"HU": Europe, "RO": Europe, "BG": Europe, "GR": Europe, "HR": Europe,
	"SI": Europe, "RS": Europe, "BA": Europe, "ME": Europe, "MK": Europe,
	"AL": Europe, "MD": Europe, "UA": Europe, "BY": Europe, "LT": Europe,
	"LV": Europe, "EE": Europe, "FI": Europe, "SE": Europe, "NO": Europe,
	"DK": Europe, "IS": Europe, "RU": Europe, "MT": Europe, "CY": Europe,
	"AD": Europe, "MC": Europe, "LI": Europe, "SM": Europe, "VA": Europe,
	"GI": Europe, "FO": Europe, "IM": Europe, "JE": Europe, "GG": Europe,
	"AX": Europe,
	// Middle East & North Africa.
	"TR": MiddleEast, "SA": MiddleEast, "AE": MiddleEast, "QA": MiddleEast,
	"KW": MiddleEast, "BH": MiddleEast, "OM": MiddleEast, "YE": MiddleEast,
	"IQ": MiddleEast, "IR": MiddleEast, "SY": MiddleEast, "JO": MiddleEast,
	"LB": MiddleEast, "IL": MiddleEast, "PS": MiddleEast, "EG": MiddleEast,
	"LY": MiddleEast, "TN": MiddleEast, "DZ": MiddleEast, "MA": MiddleEast,
	"EH": MiddleEast,
	// Sub-Saharan Africa.
	"NG": Africa, "ZA": Africa, "KE": Africa, "GH": Africa, "ET": Africa,
	"TZ": Africa, "UG": Africa, "ZM": Africa, "ZW": Africa, "MZ": Africa,
	"AO": Africa, "CD": Africa, "CG": Africa, "CM": Africa, "CI": Africa,
	"SN": Africa, "ML": Africa, "BF": Africa, "NE": Africa, "TD": Africa,
	"SD": Africa, "SS": Africa, "SO": Africa, "ER": Africa, "DJ": Africa,
	"RW": Africa, "BI": Africa, "MW": Africa, "LS": Africa, "SZ": Africa,
	"BW": Africa, "NA": Africa, "MG": Africa, "MU": Africa, "SC": Africa,
	"KM": Africa, "RE": Africa, "YT": Africa, "CV": Africa, "ST": Africa,
	"GQ": Africa, "GA": Africa, "GM": Africa, "GN": Africa, "GW": Africa,
	"SL": Africa, "LR": Africa, "TG": Africa, "BJ": Africa, "MR": Africa,
	"CF": Africa, "SH": Africa, "IO": Africa,
	// Asia-Pacific.
	"CN": AsiaPacific, "IN": AsiaPacific, "JP": AsiaPacific, "KR": AsiaPacific,
	"KP": AsiaPacific, "TW": AsiaPacific, "HK": AsiaPacific, "MO": AsiaPacific,
	"ID": AsiaPacific, "MY": AsiaPacific, "SG": AsiaPacific, "TH": AsiaPacific,
	"VN": AsiaPacific, "PH": AsiaPacific, "MM": AsiaPacific, "KH": AsiaPacific,
	"LA": AsiaPacific, "BD": AsiaPacific, "LK": AsiaPacific, "NP": AsiaPacific,
	"BT": AsiaPacific, "MV": AsiaPacific, "PK": AsiaPacific, "AF": AsiaPacific,
	"KZ": AsiaPacific, "UZ": AsiaPacific, "KG": AsiaPacific, "TJ": AsiaPacific,
	"TM": AsiaPacific, "MN": AsiaPacific, "GE": AsiaPacific, "AM": AsiaPacific,
	"AZ": AsiaPacific, "BN": AsiaPacific, "TL": AsiaPacific,
	// Oceania.
	"AU": Oceania, "NZ": Oceania, "PG": Oceania, "FJ": Oceania, "WS": Oceania,
	"TO": Oceania, "VU": Oceania, "SB": Oceania, "KI": Oceania, "FM": Oceania,
	"MH": Oceania, "PW": Oceania, "NR": Oceania, "TV": Oceania, "CK": Oceania,
	"AS": Oceania, "GU": Oceania, "MP": Oceania, "NC": Oceania, "PF": Oceania,
}

// RegionOf returns the region of an ISO code (AsiaPacific for unknowns).
func RegionOf(code string) Region {
	if r, ok := regionOf[code]; ok {
		return r
	}
	return AsiaPacific
}

// Regions lists all regions in display order.
func Regions() []Region {
	return []Region{NorthAmerica, LatinAmerica, Europe, MiddleEast, Africa,
		AsiaPacific, Oceania}
}

// CodesByRegion groups the registry codes by region, each group sorted by
// descending weight.
func CodesByRegion() map[Region][]string {
	out := map[Region][]string{}
	for _, c := range Countries() { // already weight-sorted
		r := RegionOf(c.Code)
		out[r] = append(out[r], c.Code)
	}
	return out
}

// RegionWeights returns each region's total registry weight.
func RegionWeights() map[Region]float64 {
	out := map[Region]float64{}
	for _, c := range Countries() {
		out[RegionOf(c.Code)] += c.Weight
	}
	return out
}

// SortedRegionNames returns region names sorted alphabetically — a helper
// for deterministic report printing.
func SortedRegionNames(m map[Region]float64) []Region {
	out := make([]Region, 0, len(m))
	for r := range m {
		out = append(out, r)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}
