package obs

import (
	"bytes"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("jobs_total", "jobs processed")
	c.Inc()
	c.Add(2.5)
	c.Add(-4) // ignored: counters are monotonic
	if got := c.Value(); got != 3.5 {
		t.Fatalf("counter value %g, want 3.5", got)
	}
	g := r.Gauge("queue_depth", "items queued")
	g.Set(7)
	g.Dec()
	g.Add(-2)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge value %g, want 4", got)
	}
	// Re-registering the same name returns the same series.
	if r.Counter("jobs_total", "jobs processed").Value() != 3.5 {
		t.Fatal("re-registered counter lost its value")
	}
}

func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("hits_total", "hits", "path")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				v.With("/a").Inc()
			}
		}()
	}
	wg.Wait()
	if got := v.With("/a").Value(); got != 8000 {
		t.Fatalf("concurrent counter %g, want 8000", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("latency_seconds", "latency", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 2, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count %d, want 5", h.Count())
	}
	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	out := buf.String()
	for _, want := range []string{
		`latency_seconds_bucket{le="0.1"} 2`, // 0.05 and 0.1 (le is inclusive)
		`latency_seconds_bucket{le="1"} 3`,
		`latency_seconds_bucket{le="10"} 4`,
		`latency_seconds_bucket{le="+Inf"} 5`,
		`latency_seconds_count 5`,
		`# TYPE latency_seconds histogram`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestLabelledExposition(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("http_requests_total", "requests", "method", "code")
	v.With("POST", "200").Add(3)
	v.With("GET", "405").Inc()
	h := r.HistogramVec("req_seconds", "req latency", []float64{1}, "path")
	h.With("/v1/fit").Observe(0.5)

	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	out := buf.String()
	for _, want := range []string{
		`http_requests_total{method="GET",code="405"} 1`,
		`http_requests_total{method="POST",code="200"} 3`,
		`req_seconds_bucket{path="/v1/fit",le="1"} 1`,
		`req_seconds_sum{path="/v1/fit"} 0.5`,
		`req_seconds_count{path="/v1/fit"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Families are sorted by name: http_requests_total before req_seconds.
	if strings.Index(out, "http_requests_total") > strings.Index(out, "req_seconds") {
		t.Errorf("families not sorted:\n%s", out)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("weird_total", "", "v").With("a\"b\\c\nd").Inc()
	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	if want := `weird_total{v="a\"b\\c\nd"} 1`; !strings.Contains(buf.String(), want) {
		t.Fatalf("escaping wrong, want %q in:\n%s", want, buf.String())
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("x_total", "")
}

func TestMetricsHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "a").Inc()
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}

	resp2, err := http.Post(srv.URL, "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST status %d, want 405", resp2.StatusCode)
	}
	if allow := resp2.Header.Get("Allow"); !strings.Contains(allow, "GET") {
		t.Fatalf("Allow header %q", allow)
	}
}

func TestParseLevel(t *testing.T) {
	for in, want := range map[string]slog.Level{
		"debug": slog.LevelDebug, "INFO": slog.LevelInfo,
		"warn": slog.LevelWarn, "warning": slog.LevelWarn,
		"Error": slog.LevelError, "": slog.LevelInfo,
	} {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Fatal("ParseLevel accepted garbage")
	}
}

func TestLoggerLevels(t *testing.T) {
	var buf bytes.Buffer
	log := NewLogger(&buf, slog.LevelWarn, false)
	log.Info("hidden", "k", 1)
	log.Warn("shown", "k", 2)
	out := buf.String()
	if strings.Contains(out, "hidden") || !strings.Contains(out, "shown") {
		t.Fatalf("level filtering wrong: %s", out)
	}

	buf.Reset()
	NewLogger(&buf, slog.LevelInfo, true).Info("m", "key", "val")
	if !strings.Contains(buf.String(), `"key":"val"`) {
		t.Fatalf("json handler output: %s", buf.String())
	}
}
