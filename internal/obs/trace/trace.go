// Package trace is the zero-dependency request-scoped tracing layer of the
// Δ-SPOT service: spans with trace/span IDs, parent links, attributes and
// events, propagated through context.Context across the HTTP middleware,
// the async jobs engine, registry stream operations and the fit pipeline,
// plus W3C traceparent inbound/outbound propagation so traces survive
// process hops (the prep for the sharded serving fleet).
//
// The package is built around two invariants:
//
//   - Disabled tracing is free. Every method is nil-safe: a nil *Tracer
//     returns nil spans, and every method on a nil *Span is a no-op that
//     performs zero allocations. Code can therefore thread spans
//     unconditionally without guarding call sites.
//
//   - Completed spans are observable after the fact. Ending a span hands
//     its immutable SpanData to the Recorder (the trace flight recorder,
//     see recorder.go), which groups spans by trace and serves them at
//     GET /debug/traces — including spans that end after their trace's
//     root did, the normal case for async fit jobs.
package trace

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// TraceID identifies one trace: 16 bytes, rendered as 32 lowercase hex
// characters (the W3C trace-id field).
type TraceID [16]byte

// IsZero reports whether the id is the invalid all-zeros id.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// String renders the id as 32 hex characters.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// SpanID identifies one span within a trace: 8 bytes, 16 hex characters
// (the W3C parent-id field).
type SpanID [8]byte

// IsZero reports whether the id is the invalid all-zeros id.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// String renders the id as 16 hex characters.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// SpanContext is the propagated identity of a span: everything a child in
// another goroutine or process needs to link itself to its parent.
type SpanContext struct {
	TraceID TraceID
	SpanID  SpanID
	Sampled bool
}

// Valid reports whether the context names a real span (non-zero ids).
func (sc SpanContext) Valid() bool {
	return !sc.TraceID.IsZero() && !sc.SpanID.IsZero()
}

// Traceparent renders the context as a W3C traceparent header value
// (version 00). Invalid contexts render as "".
func (sc SpanContext) Traceparent() string {
	if !sc.Valid() {
		return ""
	}
	flags := "00"
	if sc.Sampled {
		flags = "01"
	}
	return "00-" + sc.TraceID.String() + "-" + sc.SpanID.String() + "-" + flags
}

// ParseTraceparent parses a W3C traceparent header value. It accepts any
// non-ff version (per spec, unknown versions are parsed as version 00 as
// long as the first four fields match) and rejects all-zero ids.
func ParseTraceparent(s string) (SpanContext, error) {
	// version(2) - trace-id(32) - parent-id(16) - flags(2)
	if len(s) < 55 || s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return SpanContext{}, fmt.Errorf("trace: malformed traceparent %q", s)
	}
	if len(s) > 55 && s[55] != '-' {
		return SpanContext{}, fmt.Errorf("trace: malformed traceparent %q", s)
	}
	if s[0:2] == "ff" {
		return SpanContext{}, fmt.Errorf("trace: forbidden traceparent version ff")
	}
	var sc SpanContext
	if _, err := hex.Decode(sc.TraceID[:], []byte(s[3:35])); err != nil {
		return SpanContext{}, fmt.Errorf("trace: bad trace-id in %q", s)
	}
	if _, err := hex.Decode(sc.SpanID[:], []byte(s[36:52])); err != nil {
		return SpanContext{}, fmt.Errorf("trace: bad parent-id in %q", s)
	}
	var flags [1]byte
	if _, err := hex.Decode(flags[:], []byte(s[53:55])); err != nil {
		return SpanContext{}, fmt.Errorf("trace: bad flags in %q", s)
	}
	if sc.TraceID.IsZero() || sc.SpanID.IsZero() {
		return SpanContext{}, fmt.Errorf("trace: all-zero id in %q", s)
	}
	sc.Sampled = flags[0]&1 != 0
	return sc, nil
}

// TraceparentHeader is the W3C propagation header name.
const TraceparentHeader = "traceparent"

// Extract returns the remote span context carried by h's traceparent
// header, or a zero context when absent or malformed (propagation is
// best-effort; a broken header must not fail the request).
func Extract(h http.Header) SpanContext {
	v := h.Get(TraceparentHeader)
	if v == "" {
		return SpanContext{}
	}
	sc, err := ParseTraceparent(v)
	if err != nil {
		return SpanContext{}
	}
	return sc
}

// Inject stamps the current span context from ctx onto h as a traceparent
// header, for outbound requests to downstream shards. A ctx without a span
// leaves h untouched.
func Inject(ctx context.Context, h http.Header) {
	sc := SpanContextOf(ctx)
	if !sc.Valid() {
		return
	}
	h.Set(TraceparentHeader, sc.Traceparent())
}

// Context keys. Two distinct keys: an active *Span (local, attribute-able)
// and a remote SpanContext extracted from an inbound header (identity
// only). A span in ctx shadows any remote context.
type (
	spanKey   struct{}
	remoteKey struct{}
)

// ContextWithSpan returns ctx carrying span as the active span.
func ContextWithSpan(ctx context.Context, span *Span) context.Context {
	return context.WithValue(ctx, spanKey{}, span)
}

// SpanFromContext returns ctx's active span, or nil. All *Span methods are
// nil-safe, so the result can be used unconditionally.
func SpanFromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}

// ContextWithRemote returns ctx carrying an inbound remote span context;
// the next span started from it becomes that remote span's child.
func ContextWithRemote(ctx context.Context, sc SpanContext) context.Context {
	if !sc.Valid() {
		return ctx
	}
	return context.WithValue(ctx, remoteKey{}, sc)
}

// SpanContextOf resolves ctx's current span identity: the active span's
// context if one is set, else any remote context, else the zero context.
func SpanContextOf(ctx context.Context) SpanContext {
	if ctx == nil {
		return SpanContext{}
	}
	if s, ok := ctx.Value(spanKey{}).(*Span); ok && s != nil {
		return s.Context()
	}
	if sc, ok := ctx.Value(remoteKey{}).(SpanContext); ok {
		return sc
	}
	return SpanContext{}
}

// Attr is one key/value span attribute.
type Attr struct {
	Key   string `json:"key"`
	Value any    `json:"value"`
}

// String builds a string attribute.
func String(key, value string) Attr { return Attr{key, value} }

// Int builds an integer attribute.
func Int(key string, value int) Attr { return Attr{key, value} }

// Float64 builds a float attribute.
func Float64(key string, value float64) Attr { return Attr{key, value} }

// Bool builds a boolean attribute.
func Bool(key string, value bool) Attr { return Attr{key, value} }

// Event is one timestamped point annotation on a span.
type Event struct {
	Name  string    `json:"name"`
	Time  time.Time `json:"time"`
	Attrs []Attr    `json:"attrs,omitempty"`
}

// maxSpanEvents bounds per-span event accumulation so a chatty producer
// (e.g. a fit that accepts many shocks) cannot grow a span without bound.
const maxSpanEvents = 128

// Span is one timed operation inside a trace. Spans are created by a
// Tracer, annotated while running, and recorded on End. A nil *Span is the
// disabled-tracing span: every method no-ops.
type Span struct {
	tracer *Tracer
	name   string
	sc     SpanContext
	parent SpanID
	start  time.Time

	mu      sync.Mutex
	attrs   []Attr
	events  []Event
	dropped int
	ended   bool
}

// Context returns the span's propagation identity (zero for nil spans).
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return s.sc
}

// SetAttr sets (or overwrites) one attribute.
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended {
		return
	}
	for i := range s.attrs {
		if s.attrs[i].Key == key {
			s.attrs[i].Value = value
			return
		}
	}
	s.attrs = append(s.attrs, Attr{key, value})
}

// AddEvent appends a timestamped annotation. Events beyond maxSpanEvents
// are counted as dropped rather than retained.
func (s *Span) AddEvent(name string, attrs ...Attr) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended {
		return
	}
	if len(s.events) >= maxSpanEvents {
		s.dropped++
		return
	}
	s.events = append(s.events, Event{Name: name, Time: time.Now(), Attrs: attrs})
}

// End completes the span and hands it to the recorder. Ending twice is
// harmless; only the first End records.
func (s *Span) End() { s.endAt(s.now()) }

func (s *Span) now() time.Time {
	if s == nil {
		return time.Time{}
	}
	return time.Now()
}

func (s *Span) endAt(end time.Time) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	data := SpanData{
		TraceID:       s.sc.TraceID.String(),
		SpanID:        s.sc.SpanID.String(),
		Name:          s.name,
		Start:         s.start,
		DurationNs:    end.Sub(s.start).Nanoseconds(),
		Attrs:         s.attrs,
		Events:        s.events,
		DroppedEvents: s.dropped,
	}
	if !s.parent.IsZero() {
		data.ParentSpanID = s.parent.String()
	}
	s.mu.Unlock()
	if s.tracer != nil && s.tracer.rec != nil {
		s.tracer.rec.record(data)
	}
}

// SpanData is the immutable wire form of a completed span, as served by
// GET /debug/traces/{id}.
type SpanData struct {
	TraceID       string    `json:"trace_id"`
	SpanID        string    `json:"span_id"`
	ParentSpanID  string    `json:"parent_span_id,omitempty"`
	Name          string    `json:"name"`
	Start         time.Time `json:"start"`
	DurationNs    int64     `json:"duration_ns"`
	Attrs         []Attr    `json:"attrs,omitempty"`
	Events        []Event   `json:"events,omitempty"`
	DroppedEvents int       `json:"dropped_events,omitempty"`
}

// Tracer creates spans and feeds completed ones to its Recorder. A nil
// *Tracer is the disabled tracer: Start and Record are allocation-free
// no-ops, which is what keeps the fit hot path untouched when tracing is
// off.
type Tracer struct {
	rec *Recorder
}

// NewTracer returns a tracer recording completed spans into rec (rec may
// be nil: spans then exist only for propagation and log correlation).
func NewTracer(rec *Recorder) *Tracer { return &Tracer{rec: rec} }

// Enabled reports whether the tracer actually traces.
func (t *Tracer) Enabled() bool { return t != nil }

// Recorder returns the tracer's flight recorder (nil when disabled).
func (t *Tracer) Recorder() *Recorder {
	if t == nil {
		return nil
	}
	return t.rec
}

// Start begins a span named name as a child of ctx's current span (active
// or remote), or as a new root when ctx has neither, and returns ctx with
// the new span installed. On a nil tracer it returns ctx unchanged and a
// nil span, without allocating.
func (t *Tracer) Start(ctx context.Context, name string, attrs ...Attr) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	s := t.StartChild(SpanContextOf(ctx), name, attrs...)
	return ContextWithSpan(ctx, s), s
}

// StartChild begins a span under an explicit parent context — the hop
// primitive used where a context.Context does not flow naturally (e.g. a
// job captured at enqueue time and started later on a worker). An invalid
// parent starts a new root trace.
func (t *Tracer) StartChild(parent SpanContext, name string, attrs ...Attr) *Span {
	if t == nil {
		return nil
	}
	sc := SpanContext{Sampled: true}
	if parent.Valid() {
		sc.TraceID = parent.TraceID
	} else {
		sc.TraceID = newTraceID()
	}
	sc.SpanID = newSpanID()
	return &Span{
		tracer: t, name: name, sc: sc, parent: parent.SpanID,
		start: time.Now(), attrs: attrs,
	}
}

// Record emits an already-completed operation as a child span of ctx's
// current span: end is now, start is now−d. This is the bridge shape for
// the fit pipeline, whose Progress events report stage durations at stage
// boundaries rather than wrapping stages in calls.
func (t *Tracer) Record(ctx context.Context, name string, d time.Duration, attrs ...Attr) {
	if t == nil {
		return
	}
	t.RecordChild(SpanContextOf(ctx), name, d, attrs...)
}

// RecordChild is Record under an explicit parent span context.
func (t *Tracer) RecordChild(parent SpanContext, name string, d time.Duration, attrs ...Attr) {
	if t == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	s := t.StartChild(parent, name, attrs...)
	s.start = time.Now().Add(-d)
	s.endAt(s.start.Add(d))
}

// --- id generation --------------------------------------------------------
//
// IDs must be unique, not cryptographically strong: a crypto/rand-seeded
// splitmix64 counter gives collision-free ids at a few atomic ops each,
// without a syscall per span.

var idState atomic.Uint64

func init() {
	var seed [8]byte
	if _, err := rand.Read(seed[:]); err == nil {
		idState.Store(binary.LittleEndian.Uint64(seed[:]))
	} else {
		idState.Store(uint64(time.Now().UnixNano()))
	}
}

// nextID returns the next non-zero 64-bit id (splitmix64 output).
func nextID() uint64 {
	for {
		x := idState.Add(0x9e3779b97f4a7c15)
		x ^= x >> 30
		x *= 0xbf58476d1ce4e5b9
		x ^= x >> 27
		x *= 0x94d049bb133111eb
		x ^= x >> 31
		if x != 0 {
			return x
		}
	}
}

func newTraceID() TraceID {
	var id TraceID
	binary.BigEndian.PutUint64(id[:8], nextID())
	binary.BigEndian.PutUint64(id[8:], nextID())
	return id
}

func newSpanID() SpanID {
	var id SpanID
	binary.BigEndian.PutUint64(id[:], nextID())
	return id
}
