package trace

import (
	"context"
	"log/slog"
)

// logHandler stamps trace_id/span_id from the record's context onto every
// log line, so logs, metrics and traces correlate on one id. It wraps any
// slog.Handler (text or JSON) and adds nothing when the context carries no
// span — log lines outside a request stay exactly as they were.
type logHandler struct {
	inner slog.Handler
}

// WrapLogHandler returns h extended with trace correlation. Loggers built
// on the result must log through the ctx-aware methods (InfoContext & co)
// for the ids to appear; ctx-less calls pass through unchanged.
func WrapLogHandler(h slog.Handler) slog.Handler {
	if _, ok := h.(*logHandler); ok {
		return h
	}
	return &logHandler{inner: h}
}

// WrapLogger is WrapLogHandler over a whole *slog.Logger.
func WrapLogger(l *slog.Logger) *slog.Logger {
	return slog.New(WrapLogHandler(l.Handler()))
}

func (h *logHandler) Enabled(ctx context.Context, level slog.Level) bool {
	return h.inner.Enabled(ctx, level)
}

func (h *logHandler) Handle(ctx context.Context, rec slog.Record) error {
	if sc := SpanContextOf(ctx); sc.Valid() {
		rec.AddAttrs(
			slog.String("trace_id", sc.TraceID.String()),
			slog.String("span_id", sc.SpanID.String()),
		)
	}
	return h.inner.Handle(ctx, rec)
}

func (h *logHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return &logHandler{inner: h.inner.WithAttrs(attrs)}
}

func (h *logHandler) WithGroup(name string) slog.Handler {
	if name == "" {
		return h
	}
	return &logHandler{inner: h.inner.WithGroup(name)}
}
