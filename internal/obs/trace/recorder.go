package trace

import (
	"encoding/json"
	"net/http"
	"sort"
	"sync"
	"time"
)

// Recorder is the trace flight recorder: a bounded in-memory store of
// completed spans grouped by trace, serving the most recent traffic at
// GET /debug/traces. Two retention classes keep it useful under load:
//
//   - normal traces live in a FIFO ring of MaxTraces — steady traffic
//     continuously overwrites the oldest entries;
//   - slow traces (total duration ≥ SlowThreshold) move to a separate ring
//     of MaxSlow and survive normal eviction, so the request you actually
//     want to debug is still there after ten thousand fast ones landed.
//
// Spans within one trace are additionally bounded by MaxSpansPerTrace
// (excess spans are counted, not stored). All methods are safe for
// concurrent use.
type Recorder struct {
	opts RecorderOptions

	mu     sync.Mutex
	traces map[string]*traceEntry
	normal []*traceEntry // FIFO, oldest first
	slow   []*traceEntry // FIFO, oldest first
}

// RecorderOptions bound the recorder. Zero values select the defaults.
type RecorderOptions struct {
	// MaxTraces bounds retained normal (fast) traces (default 256).
	MaxTraces int
	// MaxSlow bounds retained slow traces (default 64).
	MaxSlow int
	// SlowThreshold is the total-duration bar above which a trace is
	// retained as slow (default 1s; negative disables slow retention).
	SlowThreshold time.Duration
	// MaxSpansPerTrace bounds spans stored per trace (default 512).
	MaxSpansPerTrace int
}

func (o RecorderOptions) withDefaults() RecorderOptions {
	if o.MaxTraces <= 0 {
		o.MaxTraces = 256
	}
	if o.MaxSlow <= 0 {
		o.MaxSlow = 64
	}
	if o.SlowThreshold == 0 {
		o.SlowThreshold = time.Second
	}
	if o.MaxSpansPerTrace <= 0 {
		o.MaxSpansPerTrace = 512
	}
	return o
}

// NewRecorder returns an empty flight recorder.
func NewRecorder(opts RecorderOptions) *Recorder {
	return &Recorder{
		opts:   opts.withDefaults(),
		traces: make(map[string]*traceEntry),
	}
}

// traceEntry accumulates one trace's completed spans.
type traceEntry struct {
	id           string
	spans        []SpanData
	droppedSpans int
	first        time.Time // earliest span start
	last         time.Time // latest span end
	slow         bool
}

func (e *traceEntry) duration() time.Duration { return e.last.Sub(e.first) }

// rootName returns the name of the span with no recorded parent (the
// oldest parentless span), or the oldest span's name as a fallback.
func (e *traceEntry) rootName() string {
	name, at := "", time.Time{}
	rootAt := time.Time{}
	root := ""
	for i := range e.spans {
		s := &e.spans[i]
		if at.IsZero() || s.Start.Before(at) {
			at, name = s.Start, s.Name
		}
		if s.ParentSpanID == "" && (rootAt.IsZero() || s.Start.Before(rootAt)) {
			rootAt, root = s.Start, s.Name
		}
	}
	if root != "" {
		return root
	}
	return name
}

// record files one completed span under its trace.
func (r *Recorder) record(data SpanData) {
	end := data.Start.Add(time.Duration(data.DurationNs))
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.traces[data.TraceID]
	if !ok {
		e = &traceEntry{id: data.TraceID, first: data.Start, last: end}
		r.traces[data.TraceID] = e
		r.normal = append(r.normal, e)
		r.evictLocked()
	}
	if len(e.spans) < r.opts.MaxSpansPerTrace {
		e.spans = append(e.spans, data)
	} else {
		e.droppedSpans++
	}
	if data.Start.Before(e.first) {
		e.first = data.Start
	}
	if end.After(e.last) {
		e.last = end
	}
	if !e.slow && r.opts.SlowThreshold > 0 && e.duration() >= r.opts.SlowThreshold {
		e.slow = true
		r.normal = removeEntry(r.normal, e)
		r.slow = append(r.slow, e)
		r.evictLocked()
	}
}

// evictLocked applies both FIFO bounds.
func (r *Recorder) evictLocked() {
	for len(r.normal) > r.opts.MaxTraces {
		delete(r.traces, r.normal[0].id)
		r.normal = r.normal[1:]
	}
	for len(r.slow) > r.opts.MaxSlow {
		delete(r.traces, r.slow[0].id)
		r.slow = r.slow[1:]
	}
}

func removeEntry(s []*traceEntry, e *traceEntry) []*traceEntry {
	for i, x := range s {
		if x == e {
			return append(s[:i], s[i+1:]...)
		}
	}
	return s
}

// TraceSummary is one row of the GET /debug/traces listing.
type TraceSummary struct {
	TraceID      string    `json:"trace_id"`
	Root         string    `json:"root"`
	Spans        int       `json:"spans"`
	DroppedSpans int       `json:"dropped_spans,omitempty"`
	Start        time.Time `json:"start"`
	DurationNs   int64     `json:"duration_ns"`
	Slow         bool      `json:"slow,omitempty"`
}

// TraceData is one full trace as served by GET /debug/traces/{id}, spans
// ordered by start time.
type TraceData struct {
	TraceID      string     `json:"trace_id"`
	Root         string     `json:"root"`
	Start        time.Time  `json:"start"`
	DurationNs   int64      `json:"duration_ns"`
	Slow         bool       `json:"slow,omitempty"`
	DroppedSpans int        `json:"dropped_spans,omitempty"`
	Spans        []SpanData `json:"spans"`
}

// List returns a summary of every retained trace, newest first.
func (r *Recorder) List() []TraceSummary {
	r.mu.Lock()
	out := make([]TraceSummary, 0, len(r.traces))
	for _, e := range r.traces {
		out = append(out, TraceSummary{
			TraceID: e.id, Root: e.rootName(),
			Spans: len(e.spans), DroppedSpans: e.droppedSpans,
			Start: e.first, DurationNs: e.duration().Nanoseconds(),
			Slow: e.slow,
		})
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if !out[i].Start.Equal(out[j].Start) {
			return out[i].Start.After(out[j].Start)
		}
		return out[i].TraceID < out[j].TraceID
	})
	return out
}

// Get returns one trace by 32-hex-character id.
func (r *Recorder) Get(id string) (TraceData, bool) {
	r.mu.Lock()
	e, ok := r.traces[id]
	if !ok {
		r.mu.Unlock()
		return TraceData{}, false
	}
	td := TraceData{
		TraceID: e.id, Root: e.rootName(), Start: e.first,
		DurationNs: e.duration().Nanoseconds(), Slow: e.slow,
		DroppedSpans: e.droppedSpans,
		Spans:        append([]SpanData(nil), e.spans...),
	}
	r.mu.Unlock()
	sort.Slice(td.Spans, func(i, j int) bool {
		if !td.Spans[i].Start.Equal(td.Spans[j].Start) {
			return td.Spans[i].Start.Before(td.Spans[j].Start)
		}
		return td.Spans[i].SpanID < td.Spans[j].SpanID
	})
	return td, true
}

// Len returns the number of retained traces.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.traces)
}

// ListHandler serves the GET /debug/traces listing as JSON.
func (r *Recorder) ListHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			w.Header().Set("Allow", http.MethodGet)
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]any{"traces": r.List()})
	})
}

// GetHandler serves GET /debug/traces/{id} as JSON (404 for unknown or
// already-evicted traces). It expects to be routed with an {id} pattern.
func (r *Recorder) GetHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			w.Header().Set("Allow", http.MethodGet)
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		td, ok := r.Get(req.PathValue("id"))
		if !ok {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusNotFound)
			_ = json.NewEncoder(w).Encode(map[string]string{
				"error": "trace not found (never sampled, or evicted from the flight recorder)",
			})
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(td)
	})
}
