package trace

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceparentRoundTrip(t *testing.T) {
	rec := NewRecorder(RecorderOptions{})
	tr := NewTracer(rec)
	_, root := tr.Start(context.Background(), "root")
	sc := root.Context()
	if !sc.Valid() {
		t.Fatal("root span context invalid")
	}
	header := sc.Traceparent()
	if len(header) != 55 || !strings.HasPrefix(header, "00-") || !strings.HasSuffix(header, "-01") {
		t.Fatalf("traceparent %q not in W3C shape", header)
	}
	got, err := ParseTraceparent(header)
	if err != nil {
		t.Fatalf("ParseTraceparent(%q): %v", header, err)
	}
	if got != sc {
		t.Fatalf("round trip: got %+v, want %+v", got, sc)
	}
}

func TestParseTraceparentRejectsMalformed(t *testing.T) {
	bad := []string{
		"",
		"00",
		"00-abc-def-01",
		"ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", // version ff forbidden
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01", // zero trace id
		"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01", // zero span id
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-0g", // bad flags
		"00-XYZ92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", // bad hex
		"00+4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", // bad separator
	}
	for _, s := range bad {
		if _, err := ParseTraceparent(s); err == nil {
			t.Errorf("ParseTraceparent(%q) accepted malformed input", s)
		}
	}
	// Unknown (non-ff) versions with trailing fields parse per spec.
	ok := "cc-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-extra"
	if _, err := ParseTraceparent(ok); err != nil {
		t.Errorf("ParseTraceparent(%q): %v (future versions should parse)", ok, err)
	}
}

func TestExtractInject(t *testing.T) {
	tr := NewTracer(nil)
	ctx, span := tr.Start(context.Background(), "op")
	h := http.Header{}
	Inject(ctx, h)
	got := Extract(h)
	if got != span.Context() {
		t.Fatalf("Extract(Inject(ctx)) = %+v, want %+v", got, span.Context())
	}
	// Inject from a span-less ctx must not set the header.
	h2 := http.Header{}
	Inject(context.Background(), h2)
	if h2.Get(TraceparentHeader) != "" {
		t.Fatal("Inject from empty ctx set a traceparent header")
	}
	// Extract tolerates garbage.
	h3 := http.Header{}
	h3.Set(TraceparentHeader, "not-a-traceparent")
	if Extract(h3).Valid() {
		t.Fatal("Extract accepted a malformed header")
	}
}

func TestSpanHierarchyAndRecording(t *testing.T) {
	rec := NewRecorder(RecorderOptions{})
	tr := NewTracer(rec)

	ctx, root := tr.Start(context.Background(), "root", String("kind", "test"))
	cctx, child := tr.Start(ctx, "child")
	child.SetAttr("n", 42)
	child.SetAttr("n", 43) // overwrite
	child.AddEvent("tick", Int("i", 1))
	_ = cctx
	child.End()
	tr.Record(ctx, "retro", 5*time.Millisecond, Bool("late", true))
	root.End()

	if root.Context().TraceID != child.Context().TraceID {
		t.Fatal("child span on a different trace than its parent")
	}
	td, ok := rec.Get(root.Context().TraceID.String())
	if !ok {
		t.Fatal("trace not recorded")
	}
	if len(td.Spans) != 3 {
		t.Fatalf("recorded %d spans, want 3", len(td.Spans))
	}
	byName := map[string]SpanData{}
	for _, s := range td.Spans {
		byName[s.Name] = s
	}
	rootData := byName["root"]
	if rootData.ParentSpanID != "" {
		t.Fatalf("root has parent %q", rootData.ParentSpanID)
	}
	for _, name := range []string{"child", "retro"} {
		s := byName[name]
		if s.ParentSpanID != rootData.SpanID {
			t.Fatalf("%s parent %q, want root %q", name, s.ParentSpanID, rootData.SpanID)
		}
		if s.TraceID != rootData.TraceID {
			t.Fatalf("%s on trace %q, want %q", name, s.TraceID, rootData.TraceID)
		}
	}
	childData := byName["child"]
	if len(childData.Attrs) != 1 || childData.Attrs[0].Value != 43 {
		t.Fatalf("child attrs %+v, want single n=43", childData.Attrs)
	}
	if len(childData.Events) != 1 || childData.Events[0].Name != "tick" {
		t.Fatalf("child events %+v", childData.Events)
	}
	if d := byName["retro"].DurationNs; d != (5 * time.Millisecond).Nanoseconds() {
		t.Fatalf("retro duration %d, want 5ms", d)
	}
	if td.Root != "root" {
		t.Fatalf("trace root %q, want root", td.Root)
	}
}

func TestSpanEndIdempotentAndPostEndMutationIgnored(t *testing.T) {
	rec := NewRecorder(RecorderOptions{})
	tr := NewTracer(rec)
	_, s := tr.Start(context.Background(), "once")
	s.End()
	s.SetAttr("late", true)
	s.AddEvent("late")
	s.End()
	td, _ := rec.Get(s.Context().TraceID.String())
	if len(td.Spans) != 1 {
		t.Fatalf("double End recorded %d spans", len(td.Spans))
	}
	if len(td.Spans[0].Attrs) != 0 || len(td.Spans[0].Events) != 0 {
		t.Fatalf("post-End mutation leaked into %+v", td.Spans[0])
	}
}

func TestRecorderEvictionFIFO(t *testing.T) {
	rec := NewRecorder(RecorderOptions{MaxTraces: 3, SlowThreshold: time.Hour})
	tr := NewTracer(rec)
	var ids []string
	for i := 0; i < 5; i++ {
		_, s := tr.Start(context.Background(), "op")
		ids = append(ids, s.Context().TraceID.String())
		s.End()
	}
	if rec.Len() != 3 {
		t.Fatalf("recorder holds %d traces, want 3", rec.Len())
	}
	for _, old := range ids[:2] {
		if _, ok := rec.Get(old); ok {
			t.Fatalf("trace %s survived FIFO eviction", old)
		}
	}
	for _, recent := range ids[2:] {
		if _, ok := rec.Get(recent); !ok {
			t.Fatalf("recent trace %s evicted", recent)
		}
	}
}

func TestRecorderSlowTraceRetention(t *testing.T) {
	rec := NewRecorder(RecorderOptions{MaxTraces: 2, MaxSlow: 4, SlowThreshold: 50 * time.Millisecond})
	tr := NewTracer(rec)

	// One slow trace (retro span with a duration over the bar)...
	_, slowRoot := tr.Start(context.Background(), "slow-root")
	tr.Record(ContextWithSpan(context.Background(), slowRoot), "slow-stage", 80*time.Millisecond)
	slowRoot.End()
	slowID := slowRoot.Context().TraceID.String()

	td, ok := rec.Get(slowID)
	if !ok || !td.Slow {
		t.Fatalf("slow trace not marked slow: ok=%v slow=%v", ok, td.Slow)
	}

	// ...then a flood of fast traces that would evict it from the normal ring.
	for i := 0; i < 10; i++ {
		_, s := tr.Start(context.Background(), "fast")
		s.End()
	}
	if _, ok := rec.Get(slowID); !ok {
		t.Fatal("slow trace evicted by fast-trace flood; slow retention broken")
	}

	// The slow ring has its own bound.
	for i := 0; i < 6; i++ {
		_, s := tr.Start(context.Background(), "also-slow")
		tr.Record(ContextWithSpan(context.Background(), s), "stage", 80*time.Millisecond)
		s.End()
	}
	if _, ok := rec.Get(slowID); ok {
		t.Fatal("oldest slow trace survived past MaxSlow newer slow traces")
	}
}

func TestRecorderSpanBound(t *testing.T) {
	rec := NewRecorder(RecorderOptions{MaxSpansPerTrace: 4})
	tr := NewTracer(rec)
	ctx, root := tr.Start(context.Background(), "root")
	for i := 0; i < 10; i++ {
		_, s := tr.Start(ctx, "child")
		s.End()
	}
	root.End()
	td, _ := rec.Get(root.Context().TraceID.String())
	if len(td.Spans) != 4 {
		t.Fatalf("trace holds %d spans, want MaxSpansPerTrace=4", len(td.Spans))
	}
	if td.DroppedSpans != 7 {
		t.Fatalf("dropped_spans %d, want 7", td.DroppedSpans)
	}
}

// TestNoopAllocGates pins the disabled-tracing contract the fit hot path
// depends on: every operation on a nil tracer and nil span — starting,
// annotating, ending, recording, resolving context identity — performs
// zero allocations. CI's bench-smoke job runs this gate.
func TestNoopAllocGates(t *testing.T) {
	var tr *Tracer
	ctx := context.Background()
	if a := testing.AllocsPerRun(200, func() {
		c, s := tr.Start(ctx, "op")
		s.SetAttr("k", "v")
		s.AddEvent("e")
		tr.Record(c, "retro", time.Second)
		s.End()
	}); a != 0 {
		t.Fatalf("nil-tracer span lifecycle: %.1f allocs/op, want 0", a)
	}
	if a := testing.AllocsPerRun(200, func() {
		_ = SpanFromContext(ctx)
		_ = SpanContextOf(ctx)
	}); a != 0 {
		t.Fatalf("context resolution on empty ctx: %.1f allocs/op, want 0", a)
	}
}

func TestLogHandlerStampsTraceIDs(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(WrapLogHandler(slog.NewJSONHandler(&buf, nil)))
	tr := NewTracer(nil)
	ctx, span := tr.Start(context.Background(), "op")

	logger.InfoContext(ctx, "inside")
	logger.Info("outside")
	span.End()

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d log lines, want 2", len(lines))
	}
	var inside map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &inside); err != nil {
		t.Fatal(err)
	}
	if inside["trace_id"] != span.Context().TraceID.String() {
		t.Fatalf("trace_id %v, want %s", inside["trace_id"], span.Context().TraceID)
	}
	if inside["span_id"] != span.Context().SpanID.String() {
		t.Fatalf("span_id %v, want %s", inside["span_id"], span.Context().SpanID)
	}
	if strings.Contains(lines[1], "trace_id") {
		t.Fatalf("ctx-less log line grew a trace_id: %s", lines[1])
	}
	// Wrapping twice must not double-stamp.
	h := WrapLogHandler(WrapLogHandler(slog.NewJSONHandler(&buf, nil)))
	if _, ok := h.(*logHandler); !ok {
		t.Fatal("double wrap changed handler type")
	}
}

// TestConcurrentSpans exercises the tracer and recorder from many
// goroutines (meaningful under -race): interleaved child spans across
// traces must each land in their own trace with consistent parents.
func TestConcurrentSpans(t *testing.T) {
	rec := NewRecorder(RecorderOptions{MaxTraces: 64})
	tr := NewTracer(rec)
	const workers = 16
	var wg sync.WaitGroup
	ids := make([]string, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ctx, root := tr.Start(context.Background(), "root")
			ids[w] = root.Context().TraceID.String()
			var cwg sync.WaitGroup
			for c := 0; c < 4; c++ {
				cwg.Add(1)
				go func(c int) {
					defer cwg.Done()
					_, s := tr.Start(ctx, "child")
					s.SetAttr("c", c)
					s.AddEvent("work")
					s.End()
				}(c)
			}
			cwg.Wait()
			root.End()
		}(w)
	}
	wg.Wait()
	seen := map[string]bool{}
	for _, id := range ids {
		if seen[id] {
			t.Fatalf("trace id %s collided across workers", id)
		}
		seen[id] = true
		td, ok := rec.Get(id)
		if !ok {
			t.Fatalf("trace %s missing", id)
		}
		if len(td.Spans) != 5 {
			t.Fatalf("trace %s has %d spans, want 5", id, len(td.Spans))
		}
		rootID := ""
		for _, s := range td.Spans {
			if s.ParentSpanID == "" {
				rootID = s.SpanID
			}
		}
		for _, s := range td.Spans {
			if s.ParentSpanID != "" && s.ParentSpanID != rootID {
				t.Fatalf("span %s parent %s is not the root %s", s.SpanID, s.ParentSpanID, rootID)
			}
		}
	}
}

func TestHandlers(t *testing.T) {
	rec := NewRecorder(RecorderOptions{})
	tr := NewTracer(rec)
	_, s := tr.Start(context.Background(), "op")
	s.End()
	id := s.Context().TraceID.String()

	mux := http.NewServeMux()
	mux.Handle("GET /debug/traces", rec.ListHandler())
	mux.Handle("GET /debug/traces/{id}", rec.GetHandler())

	body := serveJSON(t, mux, "/debug/traces", http.StatusOK)
	var list struct {
		Traces []TraceSummary `json:"traces"`
	}
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Traces) != 1 || list.Traces[0].TraceID != id {
		t.Fatalf("listing %+v, want the one trace %s", list.Traces, id)
	}

	body = serveJSON(t, mux, "/debug/traces/"+id, http.StatusOK)
	var td TraceData
	if err := json.Unmarshal(body, &td); err != nil {
		t.Fatal(err)
	}
	if td.TraceID != id || len(td.Spans) != 1 {
		t.Fatalf("got trace %+v", td)
	}

	serveJSON(t, mux, "/debug/traces/ffffffffffffffffffffffffffffffff", http.StatusNotFound)
}

func serveJSON(t *testing.T, h http.Handler, path string, wantStatus int) []byte {
	t.Helper()
	req, _ := http.NewRequest(http.MethodGet, path, nil)
	rw := &recordingWriter{header: http.Header{}}
	h.ServeHTTP(rw, req)
	if rw.status != wantStatus {
		t.Fatalf("GET %s status %d, want %d: %s", path, rw.status, wantStatus, rw.body.String())
	}
	return rw.body.Bytes()
}

type recordingWriter struct {
	header http.Header
	status int
	body   bytes.Buffer
}

func (w *recordingWriter) Header() http.Header { return w.header }
func (w *recordingWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
}
func (w *recordingWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.body.Write(p)
}
