package obs

import (
	"runtime"
	"strings"
	"testing"
	"time"
)

func TestRuntimeCollectorExposesGauges(t *testing.T) {
	reg := NewRegistry()
	c := NewRuntimeCollector(reg)
	runtime.GC() // ensure at least one pause sample exists
	c.Collect()

	var b strings.Builder
	reg.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		"# TYPE go_goroutines gauge",
		"# TYPE go_heap_alloc_bytes gauge",
		"go_heap_sys_bytes",
		"go_heap_objects",
		"go_next_gc_bytes",
		"go_gc_cycles",
		"go_gc_cpu_fraction",
		`go_gc_pause_seconds{quantile="0.5"}`,
		`go_gc_pause_seconds{quantile="0.9"}`,
		`go_gc_pause_seconds{quantile="0.99"}`,
		`go_gc_pause_seconds{quantile="max"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	if c.goroutines.Value() < 1 {
		t.Fatalf("go_goroutines %g, want >= 1", c.goroutines.Value())
	}
	if c.heapAlloc.Value() <= 0 {
		t.Fatalf("go_heap_alloc_bytes %g, want > 0", c.heapAlloc.Value())
	}
	// Quantiles are ordered: p50 <= p90 <= p99 <= max.
	p50 := c.pause.With("0.5").Value()
	p99 := c.pause.With("0.99").Value()
	max := c.pause.With("max").Value()
	if p50 > p99 || p99 > max {
		t.Fatalf("pause quantiles unordered: p50=%g p99=%g max=%g", p50, p99, max)
	}
}

func TestRuntimeCollectorStartStop(t *testing.T) {
	reg := NewRegistry()
	c := NewRuntimeCollector(reg)
	stop := c.Start(time.Millisecond)
	// The initial sample is synchronous.
	if c.goroutines.Value() < 1 {
		t.Fatal("Start did not take an initial sample")
	}
	stop()
	stop() // idempotent
	c.Stop()

	// Restartable after a stop.
	stop2 := c.Start(time.Hour)
	stop2()
}

func TestQuantile(t *testing.T) {
	s := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	cases := []struct {
		q    float64
		want float64
	}{{0, 1}, {0.5, 6}, {0.9, 10}, {0.99, 10}, {1, 10}}
	for _, c := range cases {
		if got := quantile(s, c.q); got != c.want {
			t.Errorf("quantile(%.2f) = %g, want %g", c.q, got, c.want)
		}
	}
	if got := quantile([]float64{7}, 0.5); got != 7 {
		t.Errorf("single-element quantile = %g, want 7", got)
	}
}
