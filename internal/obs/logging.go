package obs

import (
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// ParseLevel maps a -log-level flag value (debug, info, warn, error;
// case-insensitive) to a slog.Level.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug, nil
	case "info", "":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return slog.LevelInfo, fmt.Errorf("obs: unknown log level %q (want debug|info|warn|error)", s)
}

// NewLogger returns a leveled structured logger writing key=value text (or
// JSON when jsonFormat is set) to w.
func NewLogger(w io.Writer, level slog.Level, jsonFormat bool) *slog.Logger {
	opts := &slog.HandlerOptions{Level: level}
	if jsonFormat {
		return slog.New(slog.NewJSONHandler(w, opts))
	}
	return slog.New(slog.NewTextHandler(w, opts))
}
