package obs

import (
	"runtime"
	"sort"
	"sync"
	"time"
)

// RuntimeCollector samples Go runtime health into registry gauges on a
// fixed cadence: goroutine count, heap and GC accounting, and GC pause
// quantiles over the runtime's recent-pause ring. It answers the operator
// questions aggregate request metrics cannot — is a latency regression the
// fit pipeline, or the collector stealing the CPU? is a goroutine leak
// building up behind an abandoned job?
type RuntimeCollector struct {
	goroutines *Gauge    // go_goroutines
	heapAlloc  *Gauge    // go_heap_alloc_bytes
	heapSys    *Gauge    // go_heap_sys_bytes
	heapObj    *Gauge    // go_heap_objects
	nextGC     *Gauge    // go_next_gc_bytes
	gcCycles   *Gauge    // go_gc_cycles
	gcCPU      *Gauge    // go_gc_cpu_fraction
	pause      *GaugeVec // go_gc_pause_seconds{quantile}

	mu   sync.Mutex
	stop chan struct{}
	done chan struct{}
}

// NewRuntimeCollector registers the runtime gauges on reg. Call Collect
// for one sample or Start for a periodic loop.
func NewRuntimeCollector(reg *Registry) *RuntimeCollector {
	return &RuntimeCollector{
		goroutines: reg.Gauge("go_goroutines",
			"Goroutines currently live."),
		heapAlloc: reg.Gauge("go_heap_alloc_bytes",
			"Bytes of allocated heap objects."),
		heapSys: reg.Gauge("go_heap_sys_bytes",
			"Bytes of heap memory obtained from the OS."),
		heapObj: reg.Gauge("go_heap_objects",
			"Allocated heap objects."),
		nextGC: reg.Gauge("go_next_gc_bytes",
			"Heap size target of the next GC cycle."),
		gcCycles: reg.Gauge("go_gc_cycles",
			"Completed GC cycles since process start."),
		gcCPU: reg.Gauge("go_gc_cpu_fraction",
			"Fraction of available CPU spent in GC since process start."),
		pause: reg.GaugeVec("go_gc_pause_seconds",
			"GC stop-the-world pause quantiles over the runtime's recent-pause ring.",
			"quantile"),
	}
}

// Collect takes one sample. Safe for concurrent use.
func (c *RuntimeCollector) Collect() {
	if c == nil {
		return
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	c.goroutines.Set(float64(runtime.NumGoroutine()))
	c.heapAlloc.Set(float64(ms.HeapAlloc))
	c.heapSys.Set(float64(ms.HeapSys))
	c.heapObj.Set(float64(ms.HeapObjects))
	c.nextGC.Set(float64(ms.NextGC))
	c.gcCycles.Set(float64(ms.NumGC))
	c.gcCPU.Set(ms.GCCPUFraction)

	// MemStats.PauseNs is a circular buffer of the last 256 pause times;
	// only min(NumGC, 256) slots hold data.
	n := int(ms.NumGC)
	if n > len(ms.PauseNs) {
		n = len(ms.PauseNs)
	}
	if n == 0 {
		return
	}
	pauses := make([]float64, n)
	for i := 0; i < n; i++ {
		pauses[i] = float64(ms.PauseNs[i]) / 1e9
	}
	sort.Float64s(pauses)
	c.pause.With("0.5").Set(quantile(pauses, 0.5))
	c.pause.With("0.9").Set(quantile(pauses, 0.9))
	c.pause.With("0.99").Set(quantile(pauses, 0.99))
	c.pause.With("max").Set(pauses[n-1])
}

// quantile reads the q-th quantile from an ascending-sorted slice
// (nearest-rank; the slice must be non-empty).
func quantile(sorted []float64, q float64) float64 {
	i := int(q*float64(len(sorted)) + 0.5)
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	if i < 0 {
		i = 0
	}
	return sorted[i]
}

// Start samples immediately and then every interval until the returned
// stop function is called (idempotent). Starting an already-started
// collector is a no-op returning the active stop.
func (c *RuntimeCollector) Start(interval time.Duration) (stop func()) {
	if c == nil || interval <= 0 {
		return func() {}
	}
	c.mu.Lock()
	if c.stop != nil {
		c.mu.Unlock()
		return c.Stop
	}
	c.stop = make(chan struct{})
	c.done = make(chan struct{})
	stopCh, doneCh := c.stop, c.done
	c.mu.Unlock()

	c.Collect()
	go func() {
		defer close(doneCh)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-stopCh:
				return
			case <-t.C:
				c.Collect()
			}
		}
	}()
	return c.Stop
}

// Stop ends the periodic loop and waits for it to exit. Safe to call
// multiple times, and a no-op when never started.
func (c *RuntimeCollector) Stop() {
	if c == nil {
		return
	}
	c.mu.Lock()
	stopCh, doneCh := c.stop, c.done
	c.stop, c.done = nil, nil
	c.mu.Unlock()
	if stopCh == nil {
		return
	}
	close(stopCh)
	<-doneCh
}
