// Package obs is the stdlib-only observability toolkit for the Δ-SPOT
// service and fitters: a small metrics registry (counters, gauges,
// histograms, with labels) that renders the Prometheus text exposition
// format, and leveled structured logging helpers over log/slog.
//
// The registry is safe for concurrent use; metric handles are cheap to hold
// and update (atomic operations, no allocation on the hot path once the
// series exists). It deliberately implements only the subset of the
// Prometheus data model the project needs — no external dependency, no
// push gateways, no summaries.
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Metric kinds as rendered in the # TYPE exposition line.
const (
	kindCounter   = "counter"
	kindGauge     = "gauge"
	kindHistogram = "histogram"
)

// Registry holds metric families and renders them as Prometheus text.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// family is one named metric with a fixed label schema and its series.
type family struct {
	name    string
	help    string
	kind    string
	labels  []string
	buckets []float64 // histograms only

	mu     sync.Mutex
	series map[string]metric // key: rendered label suffix ("" when unlabelled)
}

// metric is anything a family can hold.
type metric interface {
	expose(w io.Writer, name, labelSuffix string)
}

func (r *Registry) lookup(name, kind, help string, labels []string, buckets []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != kind || len(f.labels) != len(labels) {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s%v (was %s%v)",
				name, kind, labels, f.kind, f.labels))
		}
		return f
	}
	f := &family{name: name, help: help, kind: kind,
		labels: append([]string(nil), labels...),
		series: make(map[string]metric)}
	if kind == kindHistogram {
		f.buckets = normalizeBuckets(buckets)
	}
	r.families[name] = f
	return f
}

// get returns the series for the given label values, creating it on first
// use via make.
func (f *family) get(values []string, make func() metric) metric {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %q wants %d label values, got %d",
			f.name, len(f.labels), len(values)))
	}
	key := renderLabels(f.labels, values)
	f.mu.Lock()
	defer f.mu.Unlock()
	if m, ok := f.series[key]; ok {
		return m
	}
	m := make()
	f.series[key] = m
	return m
}

// renderLabels builds the `{a="x",b="y"}` suffix (empty for no labels).
func renderLabels(names, values []string) string {
	if len(names) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// --- scalar metrics -------------------------------------------------------

// scalar is an atomically updated float64 shared by Counter and Gauge.
type scalar struct{ bits atomic.Uint64 }

func (s *scalar) add(delta float64) {
	for {
		old := s.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if s.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (s *scalar) set(v float64)     { s.bits.Store(math.Float64bits(v)) }
func (s *scalar) value() float64    { return math.Float64frombits(s.bits.Load()) }
func (s *scalar) expose(w io.Writer, name, suffix string) {
	fmt.Fprintf(w, "%s%s %s\n", name, suffix, formatFloat(s.value()))
}

// Counter is a monotonically increasing value.
type Counter struct{ scalar }

// Inc adds one.
func (c *Counter) Inc() { c.add(1) }

// Add adds delta; negative deltas are ignored (counters never decrease).
func (c *Counter) Add(delta float64) {
	if delta < 0 {
		return
	}
	c.add(delta)
}

// Value returns the current count.
func (c *Counter) Value() float64 { return c.value() }

// Gauge is a value that can go up and down.
type Gauge struct{ scalar }

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.set(v) }

// Add adds delta (may be negative).
func (g *Gauge) Add(delta float64) { g.add(delta) }

// Inc adds one.
func (g *Gauge) Inc() { g.add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.value() }

// --- histogram ------------------------------------------------------------

// Histogram counts observations into cumulative buckets.
type Histogram struct {
	bounds []float64 // ascending upper bounds, +Inf excluded
	counts []atomic.Uint64
	sum    scalar
	total  atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.sum.add(v)
	h.total.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.total.Load() }

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 { return h.sum.value() }

func (h *Histogram) expose(w io.Writer, name, suffix string) {
	// Rebuild the label suffix with le appended.
	open := "{"
	if suffix != "" {
		open = suffix[:len(suffix)-1] + ","
	}
	cum := uint64(0)
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket%sle=\"%s\"} %d\n", name, open, formatFloat(b), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(w, "%s_bucket%sle=\"+Inf\"} %d\n", name, open, cum)
	fmt.Fprintf(w, "%s_sum%s %s\n", name, suffix, formatFloat(h.Sum()))
	fmt.Fprintf(w, "%s_count%s %d\n", name, suffix, h.Count())
}

// DefBuckets are latency buckets in seconds, spanning fast handler hits to
// multi-minute tensor fits.
func DefBuckets() []float64 {
	return []float64{0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120}
}

// SizeBuckets are payload-size buckets in bytes (256 B – 64 MiB).
func SizeBuckets() []float64 {
	return []float64{256, 1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10,
		1 << 20, 4 << 20, 16 << 20, 64 << 20}
}

func normalizeBuckets(b []float64) []float64 {
	if len(b) == 0 {
		b = DefBuckets()
	}
	out := append([]float64(nil), b...)
	sort.Float64s(out)
	// Drop a trailing +Inf; it is implicit.
	for len(out) > 0 && math.IsInf(out[len(out)-1], 1) {
		out = out[:len(out)-1]
	}
	return out
}

// --- registry constructors ------------------------------------------------

// Counter returns the unlabelled counter name, registering it on first use.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.lookup(name, kindCounter, help, nil, nil)
	return f.get(nil, func() metric { return &Counter{} }).(*Counter)
}

// Gauge returns the unlabelled gauge name.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.lookup(name, kindGauge, help, nil, nil)
	return f.get(nil, func() metric { return &Gauge{} }).(*Gauge)
}

// Histogram returns the unlabelled histogram name with the given bucket
// upper bounds (nil selects DefBuckets).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	f := r.lookup(name, kindHistogram, help, nil, buckets)
	return f.get(nil, func() metric { return newHistogram(f.buckets) }).(*Histogram)
}

// CounterVec is a counter family with labels.
type CounterVec struct{ f *family }

// CounterVec registers (or returns) a labelled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{r.lookup(name, kindCounter, help, labels, nil)}
}

// With returns the counter for the given label values.
func (v *CounterVec) With(values ...string) *Counter {
	return v.f.get(values, func() metric { return &Counter{} }).(*Counter)
}

// GaugeVec is a gauge family with labels.
type GaugeVec struct{ f *family }

// GaugeVec registers (or returns) a labelled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{r.lookup(name, kindGauge, help, labels, nil)}
}

// With returns the gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	return v.f.get(values, func() metric { return &Gauge{} }).(*Gauge)
}

// HistogramVec is a histogram family with labels.
type HistogramVec struct{ f *family }

// HistogramVec registers (or returns) a labelled histogram family; nil
// buckets selects DefBuckets.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	return &HistogramVec{r.lookup(name, kindHistogram, help, labels, buckets)}
}

// With returns the histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	return v.f.get(values, func() metric { return newHistogram(v.f.buckets) }).(*Histogram)
}

// --- exposition -----------------------------------------------------------

// WritePrometheus renders every registered family in the Prometheus text
// exposition format (version 0.0.4), families and series in sorted order so
// output is deterministic.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.RLock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		fams = append(fams, r.families[name])
	}
	r.mu.RUnlock()

	for _, f := range fams {
		f.mu.Lock()
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		if f.help != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help)
		}
		fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind)
		for _, k := range keys {
			f.series[k].expose(w, f.name, k)
		}
		f.mu.Unlock()
	}
}

// Handler returns a GET-only /metrics endpoint for this registry.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if req.Method == http.MethodHead {
			return
		}
		r.WritePrometheus(w)
	})
}
