package funnel

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dspot/internal/stats"
)

var truthBase = Params{N: 100, Beta: 0.5, Delta: 0.45, Gamma: 0.5, I0: 0.02}

func synth(p Params, n int, noise float64, seed int64) []float64 {
	out := p.Simulate(n)
	peak := stats.Max(out)
	if peak <= 0 {
		peak = 1
	}
	rng := rand.New(rand.NewSource(seed))
	for i := range out {
		out[i] += rng.NormFloat64() * noise * peak
		if out[i] < 0 {
			out[i] = 0
		}
	}
	return out
}

func TestSimulateBounded(t *testing.T) {
	p := truthBase
	p.Shocks = []Shock{{Start: 50, Width: 2, Strength: 0.5}}
	for _, v := range p.Simulate(200) {
		if v < 0 || v > p.N+1e-9 || math.IsNaN(v) {
			t.Fatalf("out of range: %g", v)
		}
	}
}

func TestShockInjectsSpike(t *testing.T) {
	base := truthBase.Simulate(150)
	p := truthBase
	p.Shocks = []Shock{{Start: 70, Width: 2, Strength: 0.4}}
	shocked := p.Simulate(150)
	for t1 := 0; t1 < 70; t1++ {
		if math.Abs(shocked[t1]-base[t1]) > 1e-9 {
			t.Fatalf("pre-shock divergence at %d", t1)
		}
	}
	if shocked[72] <= base[72]*1.3 {
		t.Fatalf("no spike: %g vs %g", shocked[72], base[72])
	}
}

func TestSeasonalBetaOscillates(t *testing.T) {
	p := truthBase
	p.Period, p.Amp = 52, 0.5
	out := p.Simulate(520)
	tail := out[260:]
	if stats.Std(tail) < stats.Mean(tail)*0.02 {
		t.Fatalf("seasonal model flat: std %g mean %g", stats.Std(tail), stats.Mean(tail))
	}
	if r := stats.Autocorrelation(tail, 52); r < 0.3 {
		t.Fatalf("seasonal ACF %g too weak", r)
	}
}

func TestBetaNonNegative(t *testing.T) {
	p := Params{Beta: 1, Period: 10, Amp: 3}
	for tt := 0; tt < 20; tt++ {
		if p.beta(tt) < 0 {
			t.Fatal("negative beta")
		}
	}
}

func TestFitRecoversBase(t *testing.T) {
	obs := synth(truthBase, 200, 0.01, 1)
	p, err := Fit(obs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r := stats.RMSE(obs, p.Simulate(200)); r > 0.06*stats.Max(obs) {
		t.Fatalf("base fit RMSE %g of peak %g", r, stats.Max(obs))
	}
}

func TestFitDetectsOneShotShock(t *testing.T) {
	truth := truthBase
	truth.Shocks = []Shock{{Start: 100, Width: 2, Strength: 0.5}}
	obs := synth(truth, 200, 0.01, 2)
	p, err := Fit(obs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Shocks) == 0 {
		t.Fatal("shock not detected")
	}
	found := false
	for _, s := range p.Shocks {
		if s.Start >= 96 && s.Start <= 104 {
			found = true
		}
	}
	if !found {
		t.Fatalf("no shock near tick 100: %+v", p.Shocks)
	}
	if r := stats.RMSE(obs, p.Simulate(200)); r > 0.08*stats.Max(obs) {
		t.Fatalf("shock fit RMSE %g", r)
	}
}

func TestFitCannotModelCyclicAsCyclic(t *testing.T) {
	// FUNNEL has no cyclic shock class: a cyclic bursty series costs it
	// several independent shocks (or a worse fit) — this is the qualitative
	// gap Fig. 9 reports. Here we just verify it still fits reasonably by
	// spending one-shot shocks.
	truth := truthBase
	for k := 0; k < 4; k++ {
		truth.Shocks = append(truth.Shocks, Shock{Start: 20 + 52*k, Width: 2, Strength: 0.5})
	}
	obs := synth(truth, 220, 0.01, 3)
	p, err := Fit(obs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range p.Shocks {
		if s.Width <= 0 || s.Strength < 0 {
			t.Fatalf("malformed shock %+v", s)
		}
	}
	if r := stats.RMSE(obs, p.Simulate(220)); r > stats.Std(obs) {
		t.Fatalf("cyclic-series fit no better than mean: %g vs %g", r, stats.Std(obs))
	}
}

func TestFitTooShort(t *testing.T) {
	if _, err := Fit([]float64{1, 2, 3}, Options{}); err == nil {
		t.Fatal("short sequence accepted")
	}
}

func TestFitLocalScales(t *testing.T) {
	global := truthBase
	shape := global.Simulate(100)
	locals := [][]float64{
		scaleSeq(shape, 0.6),
		scaleSeq(shape, 0.3),
		scaleSeq(shape, 0.1),
	}
	scales := FitLocal(global, locals)
	want := []float64{0.6, 0.3, 0.1}
	for j := range want {
		if math.Abs(scales[j]-want[j]) > 1e-9 {
			t.Fatalf("scale %d = %g, want %g", j, scales[j], want[j])
		}
	}
	local := SimulateLocal(global, 0.3, 100)
	if r := stats.RMSE(locals[1], local); r > 1e-9 {
		t.Fatalf("SimulateLocal RMSE %g", r)
	}
}

func TestFitLocalEmpty(t *testing.T) {
	if out := FitLocal(truthBase, nil); len(out) != 0 {
		t.Fatal("expected empty result")
	}
}

func scaleSeq(s []float64, f float64) []float64 {
	out := make([]float64, len(s))
	for i := range s {
		out[i] = s[i] * f
	}
	return out
}

// Property: simulation bounded and deterministic under random parameters.
func TestSimulateQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := Params{
			N: rng.Float64() * 500, Beta: rng.Float64() * 3,
			Delta: rng.Float64() * 2, Gamma: rng.Float64() * 2,
			I0: rng.Float64(), Period: rng.Intn(60),
			Amp: rng.Float64(), Phase: rng.Float64()*2*math.Pi - math.Pi,
		}
		if rng.Float64() < 0.5 {
			p.Shocks = []Shock{{Start: rng.Intn(80), Width: 1 + rng.Intn(4),
				Strength: rng.Float64()}}
		}
		a, b := p.Simulate(100), p.Simulate(100)
		for i := range a {
			if a[i] != b[i] || a[i] < 0 || a[i] > p.N+1e-9 || math.IsNaN(a[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
