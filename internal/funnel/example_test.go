package funnel_test

import (
	"fmt"

	"dspot/internal/funnel"
)

// Fit the FUNNEL baseline to a series with one external shock.
func ExampleFit() {
	truth := funnel.Params{N: 100, Beta: 0.5, Delta: 0.45, Gamma: 0.5, I0: 0.02}
	truth.Shocks = []funnel.Shock{{Start: 100, Width: 2, Strength: 0.5}}
	obs := truth.Simulate(200)

	fitted, err := funnel.Fit(obs, funnel.Options{})
	if err != nil {
		panic(err)
	}
	near := false
	for _, s := range fitted.Shocks {
		if s.Start >= 96 && s.Start <= 104 {
			near = true
		}
	}
	fmt.Println("shock detected near tick 100:", near)
	// Output:
	// shock detected near tick 100: true
}
