// Package funnel implements a FUNNEL-style baseline (Matsubara, Sakurai,
// van Panhuis & Faloutsos, KDD 2014 — the Δ-SPOT paper's reference [14]):
// a non-linear epidemic model for co-evolving sequences with sinusoidal
// seasonality and one-shot external shocks, fitted automatically with an
// MDL-gated greedy shock search.
//
// Two deliberate differences from Δ-SPOT, matching the paper's Table 1:
// shocks are strictly non-cyclic (FUNNEL "cannot detect cyclic external
// events"), and there is no population growth effect. Mechanically, FUNNEL
// shocks inject external infections additively (β·S·(I+e)), whereas Δ-SPOT
// multiplies the susceptibility (β·S·ε·I).
package funnel

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"

	"dspot/internal/lm"
	"dspot/internal/mdl"
	"dspot/internal/optimize"
	"dspot/internal/stats"
	"dspot/internal/tensor"
)

// Shock is a one-shot external event injecting e infections per tick over
// [Start, Start+Width).
type Shock struct {
	Start    int
	Width    int
	Strength float64
}

// Params is a fitted FUNNEL model for one sequence.
type Params struct {
	N     float64 // population scale
	Beta  float64 // contact rate
	Delta float64 // recovery rate
	Gamma float64 // immunity-loss rate
	I0    float64 // initial infective fraction

	Period int     // seasonality period in ticks (0 = none)
	Amp    float64 // seasonal amplitude in [0,1]
	Phase  float64 // seasonal phase in radians

	Shocks []Shock
}

// beta returns the seasonally forced contact rate at tick t.
func (p *Params) beta(t int) float64 {
	if p.Period <= 0 {
		return p.Beta
	}
	b := p.Beta * (1 + p.Amp*math.Cos(2*math.Pi*float64(t)/float64(p.Period)+p.Phase))
	if b < 0 {
		return 0
	}
	return b
}

// external returns the shock injection e(t) (an infective-fraction
// equivalent added to the contact term).
func (p *Params) external(t int) float64 {
	e := 0.0
	for _, s := range p.Shocks {
		if t >= s.Start && t < s.Start+s.Width {
			e += s.Strength
		}
	}
	return e
}

// Simulate runs the model for n ticks and returns infective counts N·i(t).
func (p *Params) Simulate(n int) []float64 {
	out := make([]float64, n)
	i := clamp01(p.I0)
	s := 1 - i
	r := 0.0
	for t := 0; t < n; t++ {
		out[t] = p.N * i
		infect := p.beta(t) * s * (i + p.external(t))
		if infect > s {
			infect = s
		}
		recover := p.Delta * i
		relapse := p.Gamma * r
		s = clamp01(s - infect + relapse)
		i = clamp01(i + infect - recover)
		r = clamp01(r + recover - relapse)
		tot := s + i + r
		if tot > 0 {
			s, i, r = s/tot, i/tot, r/tot
		}
	}
	return out
}

func clamp01(v float64) float64 {
	if v < 0 || math.IsNaN(v) {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// Options tunes the fitting procedure.
type Options struct {
	MaxShocks       int   // default 10
	CalendarPeriods []int // candidate seasonal periods; default {52, 26, 12, 7}

	// Context cancels the fit cooperatively (between LM iterations, period
	// candidates and shock candidates); the error then wraps
	// context.Canceled or context.DeadlineExceeded.
	Context context.Context
}

func (o Options) withDefaults() Options {
	if o.MaxShocks <= 0 {
		o.MaxShocks = 10
	}
	if o.CalendarPeriods == nil {
		o.CalendarPeriods = []int{52, 26, 12, 7}
	}
	return o
}

// Fit fits the FUNNEL model to one sequence: base + seasonality by LM with
// the period selected from autocorrelation/calendar candidates, then greedy
// MDL-gated one-shot shock discovery.
func Fit(seq []float64, opts Options) (Params, error) {
	opts = opts.withDefaults()
	ctx := opts.Context
	if ctx == nil {
		ctx = context.Background()
	}
	if tensor.ObservedCount(seq) < 8 {
		return Params{}, errors.New("funnel: sequence too short")
	}
	norm, scale := tensor.Normalize(seq)
	n := len(norm)

	periods := append([]int{0}, stats.DominantPeriods(norm, 3, 4, 0.1)...)
	periods = append(periods, opts.CalendarPeriods...)
	seen := map[int]bool{}

	best := Params{}
	bestCost := math.Inf(1)
	for _, period := range periods {
		if ctx.Err() != nil {
			break
		}
		if period < 0 || period > n/2 || seen[period] {
			continue
		}
		seen[period] = true
		p, cost := fitWithPeriod(ctx, norm, n, period, opts)
		if cost < bestCost {
			bestCost, best = cost, p
		}
	}
	if err := ctx.Err(); err != nil {
		return Params{}, fmt.Errorf("funnel: fit cancelled: %w", err)
	}
	if math.IsInf(bestCost, 1) {
		return Params{}, errors.New("funnel: fit failed")
	}
	best.N *= scale
	return best, nil
}

// fitWithPeriod fits base+seasonality for one fixed period, then shocks.
func fitWithPeriod(ctx context.Context, norm []float64, n, period int, opts Options) (Params, float64) {
	p := Params{Period: period}
	fitBase(ctx, &p, norm, n, true)
	detectShocks(ctx, &p, norm, n, opts.MaxShocks)
	fitBase(ctx, &p, norm, n, false)
	return p, cost(&p, norm, n)
}

// cost is the MDL objective: Gaussian coding of residuals + shock cost.
func cost(p *Params, norm []float64, n int) float64 {
	sim := p.Simulate(n)
	res := make([]float64, n)
	for t := range res {
		if tensor.IsMissing(norm[t]) {
			res[t] = tensor.Missing
			continue
		}
		res[t] = norm[t] - sim[t]
	}
	c := mdl.GaussianCost(res)
	c += mdl.LogStar(len(p.Shocks))
	c += float64(len(p.Shocks)) * (2*mdl.IntCost(n) + mdl.FloatCost)
	if p.Period > 0 {
		c += mdl.FloatsCost(2) + mdl.IntCost(n) // amp, phase, period
	}
	return c
}

func residuals(norm, sim []float64) []float64 {
	res := make([]float64, len(norm))
	for t := range res {
		if tensor.IsMissing(norm[t]) {
			res[t] = tensor.Missing
			continue
		}
		res[t] = norm[t] - sim[t]
	}
	return res
}

// fitBase runs LM over the continuous parameters with shocks fixed.
func fitBase(ctx context.Context, p *Params, norm []float64, n int, multiStart bool) {
	seasonal := p.Period > 0
	dim := 5
	if seasonal {
		dim = 7
	}
	build := func(v []float64) Params {
		q := *p
		q.N, q.Beta, q.Delta, q.Gamma, q.I0 = v[0], v[1], v[2], v[3], v[4]
		if seasonal {
			q.Amp, q.Phase = v[5], v[6]
		}
		return q
	}
	resid := func(v []float64) []float64 {
		q := build(v)
		return residuals(norm, q.Simulate(n))
	}
	lo := []float64{1e-4, 1e-4, 1e-4, 1e-4, 1e-7, 0, -math.Pi}[:dim]
	hi := []float64{20, 5, 2, 2, 1, 1, math.Pi}[:dim]

	head := norm
	if len(head) > 5 {
		head = head[:5]
	}
	headLevel := stats.Mean(head)
	var starts [][]float64
	if p.N > 0 { // warm start from the current fit
		st := []float64{p.N, p.Beta, p.Delta, p.Gamma, p.I0, p.Amp, p.Phase}[:dim]
		starts = append(starts, st)
	}
	if multiStart || p.N == 0 {
		for _, n0 := range []float64{math.Max(2*stats.Mean(norm), 0.05), 2, 6} {
			i0 := math.Min(math.Max(headLevel/n0, 1e-5), 0.9)
			st := []float64{n0, 0.5, 0.45, 0.5, i0, 0.4, 0}[:dim]
			starts = append(starts, st)
		}
	}

	bestSSE := math.Inf(1)
	var bestV []float64
	for _, st := range starts {
		if ctx.Err() != nil {
			return
		}
		res, err := lm.Fit(resid, st, lm.Options{MaxIter: 100, Lower: lo, Upper: hi, Ctx: ctx})
		if err != nil {
			continue
		}
		if res.SSE < bestSSE {
			bestSSE, bestV = res.SSE, res.Params
		}
	}
	if bestV != nil {
		*p = build(bestV)
	}
}

// detectShocks greedily adds one-shot shocks while the MDL cost improves.
func detectShocks(ctx context.Context, p *Params, norm []float64, n, maxShocks int) {
	cur := cost(p, norm, n)
	for len(p.Shocks) < maxShocks {
		if ctx.Err() != nil {
			return
		}
		res := residuals(norm, p.Simulate(n))
		_, sigma2 := mdl.ResidualNoise(res)
		level := math.Max(2*math.Sqrt(sigma2), 0.08*stats.Max(norm))
		peaks := stats.FindPeaks(res, level)
		if len(peaks) == 0 {
			return
		}
		peak := peaks[0]

		type cfg struct{ start, width int }
		var cfgs []cfg
		for _, jit := range []int{-2, -1, 0, 1} {
			for _, w := range []int{peak.Width - 1, peak.Width, peak.Width + 1} {
				st := peak.Start + jit
				if st < 0 || st >= n || w < 1 || w > n/4+1 {
					continue
				}
				cfgs = append(cfgs, cfg{st, w})
			}
		}
		bestCost := math.Inf(1)
		var bestShock Shock
		var bestParams Params
		for _, c := range cfgs {
			if ctx.Err() != nil {
				return
			}
			s := Shock{Start: c.start, Width: c.width}
			q := *p
			q.Shocks = append(append([]Shock(nil), p.Shocks...), s)
			self := &q.Shocks[len(q.Shocks)-1]
			strength, _ := optimize.Golden(func(e float64) float64 {
				self.Strength = e
				return stats.SSE(norm, q.Simulate(n))
			}, 0, 2, 1e-5, 60)
			self.Strength = strength
			// Joint refit: base parameters tuned to shock-free data
			// systematically under-rate shock candidates (the modelled
			// spike drags an artificial dip), so refit the base with the
			// shock present, then re-fit the strength.
			fitBase(ctx, &q, norm, n, true)
			self = &q.Shocks[len(q.Shocks)-1]
			strength, _ = optimize.Golden(func(e float64) float64 {
				self.Strength = e
				return stats.SSE(norm, q.Simulate(n))
			}, 0, 2, 1e-5, 60)
			self.Strength = strength
			if cc := cost(&q, norm, n); cc < bestCost {
				bestCost, bestShock, bestParams = cc, *self, q
			}
		}
		if bestCost >= cur-1e-9 || bestShock.Strength < 1e-6 {
			return
		}
		shocks := append(append([]Shock(nil), p.Shocks...), bestShock)
		*p = bestParams
		p.Shocks = shocks
		sort.Slice(p.Shocks, func(a, b int) bool { return p.Shocks[a].Start < p.Shocks[b].Start })
		cur = bestCost
	}
}

// FitLocal fits per-location population scales against a global FUNNEL
// model: the local curve is the global shape rescaled, the standard FUNNEL
// treatment of spatial co-evolution. It returns one scale per location
// sequence (scale · global-simulation ≈ local counts).
func FitLocal(global Params, locals [][]float64) []float64 {
	out := make([]float64, len(locals))
	if len(locals) == 0 {
		return out
	}
	n := len(locals[0])
	shape := global.Simulate(n)
	den := 0.0
	for _, v := range shape {
		den += v * v
	}
	for j, seq := range locals {
		if den == 0 {
			continue
		}
		num := 0.0
		for t := 0; t < n && t < len(seq); t++ {
			if tensor.IsMissing(seq[t]) {
				continue
			}
			num += seq[t] * shape[t]
		}
		out[j] = num / den // least-squares scale
	}
	return out
}

// SimulateLocal returns the local curve for one fitted scale.
func SimulateLocal(global Params, scale float64, n int) []float64 {
	shape := global.Simulate(n)
	out := make([]float64, n)
	for t := range out {
		out[t] = scale * shape[t]
	}
	return out
}
