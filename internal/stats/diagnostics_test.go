package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestChiSquareCDFKnownValues(t *testing.T) {
	// Chi-square with 2 dof is Exp(1/2): CDF(x) = 1 - exp(-x/2).
	for _, x := range []float64{0.5, 1, 2, 5, 10} {
		want := 1 - math.Exp(-x/2)
		if got := ChiSquareCDF(x, 2); math.Abs(got-want) > 1e-10 {
			t.Fatalf("ChiSquareCDF(%g,2) = %g, want %g", x, got, want)
		}
	}
	// Median of chi-square(1) is ≈ 0.4549.
	if got := ChiSquareCDF(0.4549, 1); math.Abs(got-0.5) > 1e-3 {
		t.Fatalf("chi2(1) median CDF = %g", got)
	}
	// k=10 at its mean is a bit above half.
	got := ChiSquareCDF(10, 10)
	if got < 0.5 || got > 0.65 {
		t.Fatalf("chi2(10) at mean = %g", got)
	}
	if ChiSquareCDF(-1, 3) != 0 || ChiSquareCDF(1, 0) != 0 {
		t.Fatal("degenerate inputs should be 0")
	}
}

func TestChiSquareCDFMonotoneQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 1 + rng.Float64()*20
		prev := -1.0
		for x := 0.1; x < 50; x += 2.4 {
			v := ChiSquareCDF(x, k)
			if v < prev-1e-12 || v < 0 || v > 1 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestLjungBoxWhiteNoiseAccepts(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	resid := make([]float64, 500)
	for i := range resid {
		resid[i] = rng.NormFloat64()
	}
	_, p := LjungBox(resid, 10)
	if p < 0.01 {
		t.Fatalf("white noise rejected: p = %g", p)
	}
}

func TestLjungBoxAutocorrelatedRejects(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	resid := make([]float64, 500)
	for i := 1; i < len(resid); i++ {
		resid[i] = 0.7*resid[i-1] + rng.NormFloat64()*0.3
	}
	q, p := LjungBox(resid, 10)
	if p > 1e-6 {
		t.Fatalf("strong AR(1) residuals accepted: q=%g p=%g", q, p)
	}
}

func TestLjungBoxDegenerate(t *testing.T) {
	if q, p := LjungBox(nil, 5); q != 0 || p != 1 {
		t.Fatalf("empty residuals: q=%g p=%g", q, p)
	}
	if q, p := LjungBox([]float64{1, 2}, 5); q != 0 || p != 1 {
		t.Fatalf("too-short residuals: q=%g p=%g", q, p)
	}
	if _, p := LjungBox([]float64{1, 2, 3, 4, 5}, 0); p != 1 {
		t.Fatal("zero lags should be vacuous")
	}
	// Lags clamp below n.
	if q, _ := LjungBox([]float64{1, -1, 1, -1, 1}, 99); math.IsNaN(q) {
		t.Fatal("clamped lags produced NaN")
	}
}

// Property: p-values stay in [0, 1].
func TestLjungBoxPValueRangeQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(200)
		resid := make([]float64, n)
		for i := range resid {
			resid[i] = rng.NormFloat64() * (0.5 + rng.Float64())
		}
		_, p := LjungBox(resid, 1+rng.Intn(20))
		return p >= 0 && p <= 1 && !math.IsNaN(p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
