package stats_test

import (
	"fmt"
	"math"

	"dspot/internal/stats"
)

// Candidate periodicities from the autocorrelation function.
func ExampleDominantPeriods() {
	n, p := 208, 52
	s := make([]float64, n)
	for i := range s {
		if i%p < 3 {
			s[i] = 10
		}
	}
	periods := stats.DominantPeriods(s, 1, 4, 0.2)
	near52 := len(periods) == 1 && periods[0] >= 50 && periods[0] <= 54
	fmt.Println("annual period found:", near52)
	// Output:
	// annual period found: true
}

// Contiguous elevated runs become shock-candidate peaks.
func ExampleFindPeaks() {
	s := []float64{0, 5, 8, 5, 0, 0, 3, 0}
	peaks := stats.FindPeaks(s, 1)
	fmt.Printf("peaks=%d biggest: start=%d width=%d apex=%d\n",
		len(peaks), peaks[0].Start, peaks[0].Width, peaks[0].Apex)
	// Output:
	// peaks=2 biggest: start=1 width=3 apex=2
}

// RMSE skips NaN (missing) observations.
func ExampleRMSE() {
	obs := []float64{1, math.NaN(), 3}
	est := []float64{2, 99, 4}
	fmt.Println(stats.RMSE(obs, est))
	// Output:
	// 1
}
