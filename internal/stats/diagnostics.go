package stats

// Residual diagnostics: after a model absorbs the structure it claims, its
// residuals should be white. The Ljung–Box portmanteau test quantifies
// that, and the fitters' test suites use it to verify they leave no
// autocorrelation behind. The chi-square CDF is computed from the
// regularised lower incomplete gamma function (series + continued-fraction
// evaluation, stdlib only).

import "math"

// LjungBox returns the Ljung–Box Q statistic over the given number of lags
// and its p-value under the chi-square(lags) null of white residuals. A
// small p-value rejects whiteness. NaN entries are treated as missing and
// skipped by the underlying autocorrelations; fewer than 3 observations or
// non-positive lags yield (0, 1).
func LjungBox(resid []float64, lags int) (q, pvalue float64) {
	n := 0
	for _, v := range resid {
		if !math.IsNaN(v) {
			n++
		}
	}
	if n < 3 || lags <= 0 {
		return 0, 1
	}
	if lags >= n {
		lags = n - 1
	}
	for k := 1; k <= lags; k++ {
		r := Autocorrelation(resid, k)
		q += r * r / float64(n-k)
	}
	q *= float64(n) * (float64(n) + 2)
	return q, 1 - ChiSquareCDF(q, float64(lags))
}

// ChiSquareCDF returns P(X <= x) for a chi-square distribution with k
// degrees of freedom.
func ChiSquareCDF(x, k float64) float64 {
	if x <= 0 || k <= 0 {
		return 0
	}
	return regularizedGammaP(k/2, x/2)
}

// regularizedGammaP computes P(a, x), the regularised lower incomplete
// gamma function, by the series expansion for x < a+1 and the continued
// fraction for the complement otherwise (Numerical Recipes gammp/gammq).
func regularizedGammaP(a, x float64) float64 {
	if x < 0 || a <= 0 {
		return 0
	}
	if x == 0 {
		return 0
	}
	if x < a+1 {
		return gammaSeries(a, x)
	}
	return 1 - gammaContinuedFraction(a, x)
}

func gammaSeries(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1 / a
	del := sum
	for i := 0; i < 500; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*1e-14 {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-lg)
}

func gammaContinuedFraction(a, x float64) float64 {
	const tiny = 1e-300
	lg, _ := math.Lgamma(a)
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i < 500; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < 1e-14 {
			break
		}
	}
	return math.Exp(-x+a*math.Log(x)-lg) * h
}
