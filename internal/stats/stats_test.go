package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanVarianceStd(t *testing.T) {
	s := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(s); !almost(got, 5, 1e-12) {
		t.Fatalf("Mean = %g, want 5", got)
	}
	if got := Variance(s); !almost(got, 4, 1e-12) {
		t.Fatalf("Variance = %g, want 4", got)
	}
	if got := Std(s); !almost(got, 2, 1e-12) {
		t.Fatalf("Std = %g, want 2", got)
	}
}

func TestMeanSkipsNaN(t *testing.T) {
	s := []float64{1, math.NaN(), 3}
	if got := Mean(s); !almost(got, 2, 1e-12) {
		t.Fatalf("Mean with NaN = %g, want 2", got)
	}
	if got := Mean(nil); got != 0 {
		t.Fatalf("Mean(nil) = %g, want 0", got)
	}
}

func TestMinMax(t *testing.T) {
	s := []float64{3, math.NaN(), -1, 7}
	if got := Min(s); got != -1 {
		t.Fatalf("Min = %g", got)
	}
	if got := Max(s); got != 7 {
		t.Fatalf("Max = %g", got)
	}
	if !math.IsInf(Min(nil), 1) || !math.IsInf(Max(nil), -1) {
		t.Fatal("empty Min/Max sentinel wrong")
	}
}

func TestRMSEAndMAE(t *testing.T) {
	obs := []float64{1, 2, 3}
	est := []float64{1, 2, 3}
	if got := RMSE(obs, est); got != 0 {
		t.Fatalf("RMSE identical = %g", got)
	}
	est = []float64{2, 3, 4}
	if got := RMSE(obs, est); !almost(got, 1, 1e-12) {
		t.Fatalf("RMSE shifted = %g, want 1", got)
	}
	if got := MAE(obs, est); !almost(got, 1, 1e-12) {
		t.Fatalf("MAE shifted = %g, want 1", got)
	}
	// NaN pairs skipped; unequal lengths use common prefix.
	obs = []float64{1, math.NaN(), 5}
	est = []float64{2, 100}
	if got := RMSE(obs, est); !almost(got, 1, 1e-12) {
		t.Fatalf("RMSE with NaN/len = %g, want 1", got)
	}
	// A zero-overlap comparison has no error to report: 0 would claim a
	// perfect fit, so both metrics answer NaN.
	if got := RMSE(nil, nil); !math.IsNaN(got) {
		t.Fatalf("RMSE empty = %g, want NaN", got)
	}
	if got := RMSE([]float64{math.NaN(), math.NaN()}, []float64{1, 2}); !math.IsNaN(got) {
		t.Fatalf("RMSE all-missing = %g, want NaN", got)
	}
	if got := MAE(nil, nil); !math.IsNaN(got) {
		t.Fatalf("MAE empty = %g, want NaN", got)
	}
}

func TestSSE(t *testing.T) {
	if got := SSE([]float64{1, 2}, []float64{0, 0}); !almost(got, 5, 1e-12) {
		t.Fatalf("SSE = %g, want 5", got)
	}
}

func TestAutocorrelationPeriodic(t *testing.T) {
	n, p := 120, 12
	s := make([]float64, n)
	for i := range s {
		s[i] = math.Sin(2 * math.Pi * float64(i) / float64(p))
	}
	if got := Autocorrelation(s, 0); got != 1 {
		t.Fatalf("ACF(0) = %g, want 1", got)
	}
	if got := Autocorrelation(s, p); got < 0.8 {
		t.Fatalf("ACF(period) = %g, want high", got)
	}
	if got := Autocorrelation(s, p/2); got > -0.5 {
		t.Fatalf("ACF(half period) = %g, want strongly negative", got)
	}
	if got := Autocorrelation([]float64{5, 5, 5}, 1); got != 0 {
		t.Fatalf("ACF constant = %g, want 0", got)
	}
	if got := Autocorrelation(s, n+5); got != 0 {
		t.Fatalf("ACF out-of-range = %g, want 0", got)
	}
}

func TestACFLength(t *testing.T) {
	s := []float64{1, 2, 3, 4}
	acf := ACF(s, 10)
	if len(acf) != 4 { // clamped to n-1 lags + lag 0
		t.Fatalf("ACF len = %d, want 4", len(acf))
	}
	if ACF(nil, 3) != nil {
		t.Fatal("ACF(nil) should be nil")
	}
}

func TestDominantPeriods(t *testing.T) {
	n, p := 208, 52
	s := make([]float64, n)
	for i := range s {
		if i%p < 3 {
			s[i] = 10
		}
	}
	periods := DominantPeriods(s, 3, 4, 0.2)
	if len(periods) == 0 {
		t.Fatal("no dominant periods found")
	}
	found := false
	for _, got := range periods {
		if got >= p-2 && got <= p+2 {
			found = true
		}
	}
	if !found {
		t.Fatalf("period %d not among %v", p, periods)
	}
}

func TestDominantPeriodsFlat(t *testing.T) {
	if got := DominantPeriods(make([]float64, 50), 3, 2, 0.2); len(got) != 0 {
		t.Fatalf("flat series returned periods %v", got)
	}
}

func TestFindPeaks(t *testing.T) {
	s := []float64{0, 5, 8, 5, 0, 0, 3, 0, 9}
	peaks := FindPeaks(s, 1)
	if len(peaks) != 3 {
		t.Fatalf("found %d peaks, want 3: %v", len(peaks), peaks)
	}
	// Ordered by mass: run [1,4) has mass 18.
	if peaks[0].Start != 1 || peaks[0].Width != 3 || peaks[0].Apex != 2 || peaks[0].Max != 8 {
		t.Fatalf("biggest peak = %+v", peaks[0])
	}
	// Final run reaching the end of the slice is flushed.
	last := peaks[1]
	if last.Start != 8 || last.Width != 1 || last.Max != 9 {
		t.Fatalf("tail peak = %+v", last)
	}
}

func TestFindPeaksNaNBreaksRun(t *testing.T) {
	s := []float64{5, math.NaN(), 5}
	peaks := FindPeaks(s, 1)
	if len(peaks) != 2 {
		t.Fatalf("NaN should split run: got %d peaks", len(peaks))
	}
}

func TestQuantile(t *testing.T) {
	s := []float64{1, 2, 3, 4}
	if got := Quantile(s, 0); got != 1 {
		t.Fatalf("q0 = %g", got)
	}
	if got := Quantile(s, 1); got != 4 {
		t.Fatalf("q1 = %g", got)
	}
	if got := Quantile(s, 0.5); !almost(got, 2.5, 1e-12) {
		t.Fatalf("median = %g, want 2.5", got)
	}
	if got := Quantile(nil, 0.5); got != 0 {
		t.Fatalf("empty quantile = %g", got)
	}
}

func TestPearson(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	b := []float64{2, 4, 6, 8}
	if got := Pearson(a, b); !almost(got, 1, 1e-12) {
		t.Fatalf("Pearson proportional = %g", got)
	}
	c := []float64{8, 6, 4, 2}
	if got := Pearson(a, c); !almost(got, -1, 1e-12) {
		t.Fatalf("Pearson inverse = %g", got)
	}
	if got := Pearson(a, []float64{5, 5, 5, 5}); got != 0 {
		t.Fatalf("Pearson constant = %g", got)
	}
}

// Property: RMSE is symmetric and non-negative; RMSE(x,x)=0.
func TestRMSEPropertiesQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(64)
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i] = rng.NormFloat64() * 10
			b[i] = rng.NormFloat64() * 10
		}
		r1, r2 := RMSE(a, b), RMSE(b, a)
		return r1 >= 0 && almost(r1, r2, 1e-9) && RMSE(a, a) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: quantile is monotone in q and bounded by min/max.
func TestQuantileMonotoneQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(64)
		s := make([]float64, n)
		for i := range s {
			s[i] = rng.NormFloat64() * 100
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.1 {
			v := Quantile(s, q)
			if v < prev-1e-9 || v < Min(s)-1e-9 || v > Max(s)+1e-9 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: Pearson is within [-1, 1].
func TestPearsonBoundedQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(64)
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i] = rng.NormFloat64()
			b[i] = rng.NormFloat64()
		}
		r := Pearson(a, b)
		return r >= -1-1e-9 && r <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
