// Package stats provides the descriptive statistics and signal-processing
// primitives shared across the Δ-SPOT fitters and the evaluation harness:
// moments, error metrics (RMSE/MAE), autocorrelation, a simple periodogram,
// and peak detection used for seeding external-shock candidates.
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of s (0 for an empty slice). NaN entries
// are skipped so that tensor missing values can be passed through directly.
func Mean(s []float64) float64 {
	sum, cnt := 0.0, 0
	for _, v := range s {
		if math.IsNaN(v) {
			continue
		}
		sum += v
		cnt++
	}
	if cnt == 0 {
		return 0
	}
	return sum / float64(cnt)
}

// Variance returns the population variance of s (0 for fewer than one
// observation). NaN entries are skipped.
func Variance(s []float64) float64 {
	m := Mean(s)
	sum, cnt := 0.0, 0
	for _, v := range s {
		if math.IsNaN(v) {
			continue
		}
		d := v - m
		sum += d * d
		cnt++
	}
	if cnt == 0 {
		return 0
	}
	return sum / float64(cnt)
}

// Std returns the population standard deviation.
func Std(s []float64) float64 { return math.Sqrt(Variance(s)) }

// Min returns the minimum non-NaN value (+Inf for empty/all-NaN input).
func Min(s []float64) float64 {
	best := math.Inf(1)
	for _, v := range s {
		if math.IsNaN(v) {
			continue
		}
		if v < best {
			best = v
		}
	}
	return best
}

// Max returns the maximum non-NaN value (-Inf for empty/all-NaN input).
func Max(s []float64) float64 {
	best := math.Inf(-1)
	for _, v := range s {
		if math.IsNaN(v) {
			continue
		}
		if v > best {
			best = v
		}
	}
	return best
}

// RMSE returns the root-mean-square error between observed and estimated
// sequences, skipping pairs where either side is NaN. Sequences of unequal
// length are compared over their common prefix. An empty comparison set
// yields NaN — not 0, which would report a perfect fit for an all-missing
// series; aggregating callers are expected to skip NaN explicitly.
func RMSE(obs, est []float64) float64 {
	n := len(obs)
	if len(est) < n {
		n = len(est)
	}
	sum, cnt := 0.0, 0
	for t := 0; t < n; t++ {
		if math.IsNaN(obs[t]) || math.IsNaN(est[t]) {
			continue
		}
		d := obs[t] - est[t]
		sum += d * d
		cnt++
	}
	if cnt == 0 {
		return math.NaN()
	}
	return math.Sqrt(sum / float64(cnt))
}

// MAE returns the mean absolute error with the same NaN/length semantics as
// RMSE.
func MAE(obs, est []float64) float64 {
	n := len(obs)
	if len(est) < n {
		n = len(est)
	}
	sum, cnt := 0.0, 0
	for t := 0; t < n; t++ {
		if math.IsNaN(obs[t]) || math.IsNaN(est[t]) {
			continue
		}
		sum += math.Abs(obs[t] - est[t])
		cnt++
	}
	if cnt == 0 {
		return math.NaN()
	}
	return sum / float64(cnt)
}

// SSE returns the sum of squared errors with the same NaN/length semantics
// as RMSE.
func SSE(obs, est []float64) float64 {
	n := len(obs)
	if len(est) < n {
		n = len(est)
	}
	sum := 0.0
	for t := 0; t < n; t++ {
		if math.IsNaN(obs[t]) || math.IsNaN(est[t]) {
			continue
		}
		d := obs[t] - est[t]
		sum += d * d
	}
	return sum
}

// Autocorrelation returns the sample autocorrelation of s at the given lag
// (0 when the lag is out of range or the series is constant).
func Autocorrelation(s []float64, lag int) float64 {
	n := len(s)
	if lag <= 0 || lag >= n {
		if lag == 0 {
			return 1
		}
		return 0
	}
	m := Mean(s)
	var num, den float64
	for t := 0; t < n; t++ {
		if math.IsNaN(s[t]) {
			continue
		}
		d := s[t] - m
		den += d * d
	}
	if den == 0 {
		return 0
	}
	for t := 0; t+lag < n; t++ {
		if math.IsNaN(s[t]) || math.IsNaN(s[t+lag]) {
			continue
		}
		num += (s[t] - m) * (s[t+lag] - m)
	}
	return num / den
}

// ACF returns autocorrelations for lags 0..maxLag inclusive.
func ACF(s []float64, maxLag int) []float64 {
	if maxLag >= len(s) {
		maxLag = len(s) - 1
	}
	if maxLag < 0 {
		return nil
	}
	out := make([]float64, maxLag+1)
	for lag := 0; lag <= maxLag; lag++ {
		out[lag] = Autocorrelation(s, lag)
	}
	return out
}

// DominantPeriods returns up to k candidate periods of s, found as local
// maxima of the autocorrelation function above the given threshold, ordered
// by decreasing autocorrelation. Periods shorter than minPeriod are ignored.
func DominantPeriods(s []float64, k, minPeriod int, threshold float64) []int {
	maxLag := len(s) / 2
	acf := ACF(s, maxLag)
	if len(acf) < 3 {
		return nil
	}
	type cand struct {
		lag int
		r   float64
	}
	var cands []cand
	for lag := 2; lag < len(acf)-1; lag++ {
		if lag < minPeriod {
			continue
		}
		if acf[lag] >= threshold && acf[lag] >= acf[lag-1] && acf[lag] >= acf[lag+1] {
			cands = append(cands, cand{lag, acf[lag]})
		}
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].r != cands[b].r {
			return cands[a].r > cands[b].r
		}
		return cands[a].lag < cands[b].lag
	})
	if len(cands) > k {
		cands = cands[:k]
	}
	out := make([]int, len(cands))
	for i, c := range cands {
		out[i] = c.lag
	}
	return out
}

// Peak describes a contiguous run of elevated values in a sequence.
type Peak struct {
	Start int     // first tick of the run
	Width int     // number of ticks in the run
	Apex  int     // tick of the run maximum
	Mass  float64 // sum of values over the run
	Max   float64 // maximum value in the run
}

// FindPeaks segments s into contiguous runs where s exceeds level, returning
// the runs ordered by decreasing mass. NaN entries terminate runs.
func FindPeaks(s []float64, level float64) []Peak {
	var peaks []Peak
	inRun := false
	var cur Peak
	flush := func(end int) {
		if !inRun {
			return
		}
		cur.Width = end - cur.Start
		peaks = append(peaks, cur)
		inRun = false
	}
	for t, v := range s {
		if math.IsNaN(v) || v <= level {
			flush(t)
			continue
		}
		if !inRun {
			inRun = true
			cur = Peak{Start: t, Apex: t, Max: v, Mass: 0}
		}
		cur.Mass += v
		if v > cur.Max {
			cur.Max, cur.Apex = v, t
		}
	}
	flush(len(s))
	sort.Slice(peaks, func(a, b int) bool {
		if peaks[a].Mass != peaks[b].Mass {
			return peaks[a].Mass > peaks[b].Mass
		}
		return peaks[a].Start < peaks[b].Start
	})
	return peaks
}

// Quantile returns the q-quantile (0 <= q <= 1) of the non-NaN entries of s
// using linear interpolation; it returns 0 for an empty sample.
func Quantile(s []float64, q float64) float64 {
	var clean []float64
	for _, v := range s {
		if !math.IsNaN(v) {
			clean = append(clean, v)
		}
	}
	if len(clean) == 0 {
		return 0
	}
	sort.Float64s(clean)
	if q <= 0 {
		return clean[0]
	}
	if q >= 1 {
		return clean[len(clean)-1]
	}
	pos := q * float64(len(clean)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return clean[lo]
	}
	frac := pos - float64(lo)
	return clean[lo]*(1-frac) + clean[hi]*frac
}

// Pearson returns the Pearson correlation coefficient between a and b over
// their common prefix, skipping NaN pairs (0 for degenerate input).
func Pearson(a, b []float64) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	var xs, ys []float64
	for t := 0; t < n; t++ {
		if math.IsNaN(a[t]) || math.IsNaN(b[t]) {
			continue
		}
		xs = append(xs, a[t])
		ys = append(ys, b[t])
	}
	if len(xs) < 2 {
		return 0
	}
	mx, my := Mean(xs), Mean(ys)
	var num, dx, dy float64
	for i := range xs {
		num += (xs[i] - mx) * (ys[i] - my)
		dx += (xs[i] - mx) * (xs[i] - mx)
		dy += (ys[i] - my) * (ys[i] - my)
	}
	if dx == 0 || dy == 0 {
		return 0
	}
	return num / math.Sqrt(dx*dy)
}
