package admit

import (
	"sort"
	"sync"
	"time"
)

// State is a circuit breaker's position.
type State int

const (
	// Closed passes traffic and counts consecutive failures.
	Closed State = 0
	// HalfOpen lets a bounded number of probes through; one success closes
	// the breaker, one failure re-opens it.
	HalfOpen State = 1
	// Open sheds all traffic until the cool-off elapses.
	Open State = 2
)

// String returns the conventional lowercase name.
func (s State) String() string {
	switch s {
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// Breaker defaults applied by NewBreaker for zero option fields.
const (
	DefaultFailureThreshold = 5
	DefaultOpenFor          = 30 * time.Second
	DefaultHalfOpenProbes   = 1
)

// BreakerOptions configures a Breaker; zero fields select the defaults.
type BreakerOptions struct {
	// FailureThreshold is how many consecutive failures trip the breaker.
	FailureThreshold int
	// OpenFor is the cool-off before an open breaker admits probes again.
	OpenFor time.Duration
	// HalfOpenProbes bounds concurrent probes while half-open.
	HalfOpenProbes int

	// Now overrides the clock (tests); nil selects time.Now.
	Now func() time.Time
	// OnChange, when non-nil, observes every state transition (metrics
	// export). Called outside the breaker lock is NOT guaranteed — keep it
	// cheap and non-reentrant.
	OnChange func(State)
}

// Breaker is a consecutive-failure circuit breaker:
//
//	closed --threshold failures--> open --cool-off--> half-open
//	half-open --probe success--> closed
//	half-open --probe failure--> open
//
// Callers bracket each protected operation with Acquire; the returned
// release reports the outcome. Cancellations must be reported as
// failure=false — a caller hanging up says nothing about the engine's
// health. Safe for concurrent use.
type Breaker struct {
	mu     sync.Mutex
	opts   BreakerOptions
	state  State
	fails  int
	opened time.Time
	probes int // in-flight half-open probes
}

// NewBreaker returns a closed breaker.
func NewBreaker(opts BreakerOptions) *Breaker {
	if opts.FailureThreshold <= 0 {
		opts.FailureThreshold = DefaultFailureThreshold
	}
	if opts.OpenFor <= 0 {
		opts.OpenFor = DefaultOpenFor
	}
	if opts.HalfOpenProbes <= 0 {
		opts.HalfOpenProbes = DefaultHalfOpenProbes
	}
	if opts.Now == nil {
		opts.Now = time.Now
	}
	return &Breaker{opts: opts}
}

// Acquire asks to run one protected operation. ok=false means the breaker
// is shedding (open, or half-open with all probe slots taken) and the
// caller must fail fast. ok=true returns a release that MUST be called
// exactly once with the outcome: failure=true for a genuine failure or
// timeout, false for success or caller-side cancellation.
func (b *Breaker) Acquire() (release func(failure bool), ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Open:
		if b.opts.Now().Sub(b.opened) < b.opts.OpenFor {
			return nil, false
		}
		b.transition(HalfOpen)
		b.probes = 0
		fallthrough
	case HalfOpen:
		if b.probes >= b.opts.HalfOpenProbes {
			return nil, false
		}
		b.probes++
		return b.releaseProbe, true
	default:
		return b.releaseClosed, true
	}
}

// Allow reports whether an Acquire would currently succeed, without
// reserving a probe slot. Use it for cheap early rejection (e.g. before
// queueing async work whose real Acquire happens at run time).
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Open:
		return b.opts.Now().Sub(b.opened) >= b.opts.OpenFor
	case HalfOpen:
		return b.probes < b.opts.HalfOpenProbes
	default:
		return true
	}
}

// State returns the current position (Open flips to HalfOpen lazily, on the
// next Acquire/Allow, so State may report Open past the cool-off).
func (b *Breaker) State() State {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// RetryAfter returns how long until an open breaker admits probes again
// (0 when not open).
func (b *Breaker) RetryAfter() time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != Open {
		return 0
	}
	d := b.opts.OpenFor - b.opts.Now().Sub(b.opened)
	if d < 0 {
		d = 0
	}
	return d
}

func (b *Breaker) releaseClosed(failure bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != Closed {
		// A trip raced this release (another operation already opened the
		// breaker); its verdict stands.
		return
	}
	if !failure {
		b.fails = 0
		return
	}
	b.fails++
	if b.fails >= b.opts.FailureThreshold {
		b.trip()
	}
}

func (b *Breaker) releaseProbe(failure bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.probes > 0 {
		b.probes--
	}
	if b.state != HalfOpen {
		return
	}
	if failure {
		b.trip()
		return
	}
	b.fails = 0
	b.transition(Closed)
}

// trip opens the breaker (b.mu held).
func (b *Breaker) trip() {
	b.opened = b.opts.Now()
	b.fails = 0
	b.transition(Open)
}

// transition changes state and notifies (b.mu held).
func (b *Breaker) transition(s State) {
	if b.state == s {
		return
	}
	b.state = s
	if b.opts.OnChange != nil {
		b.opts.OnChange(s)
	}
}

// BreakerSet lazily manages one Breaker per name (per model engine, in the
// serving layer). Safe for concurrent use.
type BreakerSet struct {
	mu   sync.Mutex
	opts BreakerOptions
	set  map[string]*Breaker

	// onChange observes (name, state) transitions across the whole set.
	onChange func(string, State)
}

// NewBreakerSet returns an empty set; every breaker it creates shares opts.
// onChange, when non-nil, observes each member's state transitions.
func NewBreakerSet(opts BreakerOptions, onChange func(name string, s State)) *BreakerSet {
	return &BreakerSet{opts: opts, set: make(map[string]*Breaker), onChange: onChange}
}

// For returns the named breaker, creating it closed on first use.
func (bs *BreakerSet) For(name string) *Breaker {
	bs.mu.Lock()
	defer bs.mu.Unlock()
	if b, ok := bs.set[name]; ok {
		return b
	}
	opts := bs.opts
	if bs.onChange != nil {
		fn := bs.onChange
		opts.OnChange = func(s State) { fn(name, s) }
	}
	b := NewBreaker(opts)
	bs.set[name] = b
	if bs.onChange != nil {
		bs.onChange(name, Closed)
	}
	return b
}

// Open returns the names of breakers currently not closed, sorted — the
// readiness probe enumerates these as tripped gates.
func (bs *BreakerSet) Open() []string {
	if bs == nil {
		return nil
	}
	bs.mu.Lock()
	defer bs.mu.Unlock()
	var out []string
	for name, b := range bs.set {
		if b.State() != Closed {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}
