package admit

import (
	"testing"
	"time"
)

// fakeClock is a manually advanced clock for breaker tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newTestBreaker(clock *fakeClock, transitions *[]State) *Breaker {
	return NewBreaker(BreakerOptions{
		FailureThreshold: 3,
		OpenFor:          10 * time.Second,
		Now:              clock.now,
		OnChange: func(s State) {
			if transitions != nil {
				*transitions = append(*transitions, s)
			}
		},
	})
}

func mustAcquire(t *testing.T, b *Breaker) func(bool) {
	t.Helper()
	release, ok := b.Acquire()
	if !ok {
		t.Fatalf("Acquire refused in state %v", b.State())
	}
	return release
}

// TestBreakerOpenHalfOpenClosed walks the full recovery cycle under
// injected faults: consecutive failures trip it, the cool-off admits a
// probe, a failed probe re-opens, a successful probe closes.
func TestBreakerOpenHalfOpenClosed(t *testing.T) {
	clock := &fakeClock{t: time.Unix(1000, 0)}
	var transitions []State
	b := newTestBreaker(clock, &transitions)

	// Three consecutive failures trip the breaker.
	for i := 0; i < 3; i++ {
		if b.State() != Closed {
			t.Fatalf("breaker left Closed after %d failures", i)
		}
		mustAcquire(t, b)(true)
	}
	if b.State() != Open {
		t.Fatalf("state = %v after threshold failures, want Open", b.State())
	}
	if _, ok := b.Acquire(); ok {
		t.Fatal("open breaker admitted traffic before cool-off")
	}
	if ra := b.RetryAfter(); ra != 10*time.Second {
		t.Fatalf("RetryAfter = %v, want 10s", ra)
	}

	// Cool-off elapses: exactly one probe is admitted.
	clock.advance(11 * time.Second)
	release := mustAcquire(t, b)
	if b.State() != HalfOpen {
		t.Fatalf("state = %v during probe, want HalfOpen", b.State())
	}
	if _, ok := b.Acquire(); ok {
		t.Fatal("half-open breaker admitted a second concurrent probe")
	}
	// Failed probe re-opens.
	release(true)
	if b.State() != Open {
		t.Fatalf("state = %v after failed probe, want Open", b.State())
	}

	// Second cool-off; successful probe closes the breaker.
	clock.advance(11 * time.Second)
	mustAcquire(t, b)(false)
	if b.State() != Closed {
		t.Fatalf("state = %v after successful probe, want Closed", b.State())
	}
	// And the closed breaker serves traffic again.
	mustAcquire(t, b)(false)

	want := []State{Open, HalfOpen, Open, HalfOpen, Closed}
	if len(transitions) != len(want) {
		t.Fatalf("transitions = %v, want %v", transitions, want)
	}
	for i := range want {
		if transitions[i] != want[i] {
			t.Fatalf("transitions = %v, want %v", transitions, want)
		}
	}
}

// TestBreakerSuccessResetsFailureStreak pins "consecutive": a success
// between failures keeps the breaker closed indefinitely.
func TestBreakerSuccessResetsFailureStreak(t *testing.T) {
	clock := &fakeClock{t: time.Unix(0, 0)}
	b := newTestBreaker(clock, nil)
	for i := 0; i < 20; i++ {
		mustAcquire(t, b)(true)
		mustAcquire(t, b)(true)
		mustAcquire(t, b)(false) // breaks the streak at 2 of 3
	}
	if b.State() != Closed {
		t.Fatalf("state = %v, want Closed", b.State())
	}
}

// TestBreakerAllowDoesNotReserve pins that Allow is a read-only check: it
// must not consume the half-open probe slot.
func TestBreakerAllowDoesNotReserve(t *testing.T) {
	clock := &fakeClock{t: time.Unix(0, 0)}
	b := newTestBreaker(clock, nil)
	for i := 0; i < 3; i++ {
		mustAcquire(t, b)(true)
	}
	clock.advance(11 * time.Second)
	if !b.Allow() || !b.Allow() {
		t.Fatal("Allow refused past the cool-off")
	}
	// The probe slot is still available after the Allow calls.
	mustAcquire(t, b)(false)
	if b.State() != Closed {
		t.Fatalf("state = %v, want Closed", b.State())
	}
}

func TestBreakerSetTracksOpenMembers(t *testing.T) {
	clock := &fakeClock{t: time.Unix(0, 0)}
	var got []string
	bs := NewBreakerSet(BreakerOptions{FailureThreshold: 1, Now: clock.now},
		func(name string, s State) { got = append(got, name+":"+s.String()) })
	if open := bs.Open(); len(open) != 0 {
		t.Fatalf("fresh set reports open breakers: %v", open)
	}
	bs.For("dspot") // created closed
	release, _ := bs.For("hip").Acquire()
	release(true) // threshold 1: trips immediately
	open := bs.Open()
	if len(open) != 1 || open[0] != "hip" {
		t.Fatalf("Open() = %v, want [hip]", open)
	}
	if bs.For("hip") != bs.For("hip") {
		t.Fatal("For returns distinct breakers for one name")
	}
	wantEvents := map[string]bool{"dspot:closed": true, "hip:closed": true, "hip:open": true}
	for _, ev := range got {
		if !wantEvents[ev] {
			t.Fatalf("unexpected transition event %q (all: %v)", ev, got)
		}
	}
}

func TestEWMA(t *testing.T) {
	e := NewEWMA(0.5)
	if e.Seconds() != 0 {
		t.Fatal("fresh EWMA not zero")
	}
	e.Observe(100 * time.Millisecond)
	if got := e.Seconds(); got != 0.1 {
		t.Fatalf("first observation = %g, want 0.1 (seeds the average)", got)
	}
	e.Observe(300 * time.Millisecond)
	if got := e.Seconds(); got < 0.19 || got > 0.21 {
		t.Fatalf("after second observation = %g, want ~0.2", got)
	}
	e.Observe(-time.Second) // ignored
	if got := e.Seconds(); got < 0.19 || got > 0.21 {
		t.Fatalf("negative observation moved the average to %g", got)
	}
	if got := RetryAfterSeconds(0); got != 1 {
		t.Fatalf("RetryAfterSeconds(0) = %d, want 1", got)
	}
	if got := RetryAfterSeconds(2300 * time.Millisecond); got != 3 {
		t.Fatalf("RetryAfterSeconds(2.3s) = %d, want 3", got)
	}
}
