// Package admit holds the serving layer's overload-protection primitives:
// an EWMA load tracker for deadline-aware admission decisions and a
// per-engine circuit breaker (breaker.go). The package is deliberately
// mechanism-only — no HTTP, no metrics registry, no policy — so the jobs
// engine and the HTTP service can share the same primitives without an
// import cycle, and tests can drive them with a fake clock.
package admit

import (
	"math"
	"sync"
	"time"
)

// DefaultAlpha is the EWMA smoothing factor used when NewEWMA is given a
// non-positive one: each observation contributes 30%, so the estimate
// tracks a shifting load level within a few observations without flapping
// on a single outlier.
const DefaultAlpha = 0.3

// EWMA tracks an exponentially weighted moving average of observed
// durations. The zero estimate (before any observation) reads as "no load
// information" — admission built on it starts optimistic and only begins
// shedding once real latencies accumulate. Safe for concurrent use.
type EWMA struct {
	mu    sync.Mutex
	alpha float64
	val   float64 // seconds
	seen  bool
}

// NewEWMA returns a tracker with the given smoothing factor in (0,1]
// (non-positive or >1 selects DefaultAlpha).
func NewEWMA(alpha float64) *EWMA {
	if alpha <= 0 || alpha > 1 || math.IsNaN(alpha) {
		alpha = DefaultAlpha
	}
	return &EWMA{alpha: alpha}
}

// Observe folds one observed duration into the average. Negative durations
// are ignored (a clock step backwards must not poison the estimate).
func (e *EWMA) Observe(d time.Duration) {
	if e == nil || d < 0 {
		return
	}
	s := d.Seconds()
	e.mu.Lock()
	if !e.seen {
		e.val, e.seen = s, true
	} else {
		e.val = e.alpha*s + (1-e.alpha)*e.val
	}
	e.mu.Unlock()
}

// Seconds returns the current estimate in seconds (0 before any
// observation).
func (e *EWMA) Seconds() float64 {
	if e == nil {
		return 0
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.val
}

// Estimate returns the current estimate as a duration (0 before any
// observation).
func (e *EWMA) Estimate() time.Duration {
	return time.Duration(e.Seconds() * float64(time.Second))
}

// RetryAfterSeconds converts a wait estimate into a Retry-After value:
// whole seconds, rounded up, at least 1 (clients treat 0 as "immediately",
// which defeats the point of shedding).
func RetryAfterSeconds(wait time.Duration) int {
	s := int(math.Ceil(wait.Seconds()))
	if s < 1 {
		s = 1
	}
	return s
}
