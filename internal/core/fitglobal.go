package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"dspot/internal/lm"
	"dspot/internal/mdl"
	"dspot/internal/numcheck"
	"dspot/internal/optimize"
	"dspot/internal/stats"
	"dspot/internal/tensor"
)

// FitOptions controls the Δ-SPOT fitting pipeline. The zero value enables
// the full model; the Enable* switches exist for the paper's Fig. 4 ablation
// and for callers that know their data has no growth/shock structure.
type FitOptions struct {
	// DisableGrowth removes the population growth effect (P3).
	DisableGrowth bool
	// DisableShocks removes external shock detection (P4).
	DisableShocks bool
	// DisableCycles restricts every detected shock to be non-cyclic
	// (FUNNEL-style behaviour).
	DisableCycles bool
	// AcceptAllShocks disables the MDL gate on shock acceptance: every
	// proposed candidate is kept until MaxShocks or no residual peaks
	// remain. FOR ABLATION STUDIES ONLY — it demonstrates why the gate
	// exists (overfitting on held-out data); see experiments.AblationMDL.
	AcceptAllShocks bool
	// MaxShocks bounds shock discovery per keyword (default 12).
	MaxShocks int
	// MaxOuterIter bounds the alternate base/growth/shock rounds (default 3).
	MaxOuterIter int
	// CalendarPeriods are extra candidate periodicities in ticks (e.g.,
	// 52/26/104/208 for weekly data, 7/30/365 for daily). Defaults to the
	// weekly calendar; autocorrelation candidates are always added.
	CalendarPeriods []int
	// Workers bounds fitting concurrency across keywords/locations
	// (default: 4; 1 disables parallelism).
	Workers int
	// FDJacobian forces the LM sub-problems back onto finite-difference
	// Jacobians instead of the analytic sensitivity kernel
	// (SimulateWithSensitivities). The FD path is the documented fallback
	// and the cross-check oracle for the analytic derivatives (DESIGN.md
	// §11); production fits should leave this off — it costs p+1 full
	// simulations per LM iteration instead of one sensitivity pass.
	FDJacobian bool
	// Prevalidated asserts the caller already ran x.Validate() on this
	// exact tensor, letting Fit/FitGlobal skip the redundant O(d·l·n)
	// rescan. The HTTP boundary sets it after validating at parse time (so
	// degenerate input answers 400 before consuming fit workers or queue
	// slots); Fit sets it before delegating to FitGlobal. Never set it for
	// a tensor you did not just validate — the non-finite guards deeper in
	// the optimisers then become the only line of defence.
	Prevalidated bool
	// Context, when non-nil, cancels the fit cooperatively: every layer of
	// the pipeline — the outer alternation rounds, each LM iteration, each
	// golden-section/grid step, each shock-candidate evaluation, and each
	// local cell — checks it and returns an error wrapping context.Canceled
	// or context.DeadlineExceeded promptly once it is done. Cancel-to-stop
	// latency is bounded by one LM iteration, not one fit. The ctx-first
	// wrappers (FitCtx, FitGlobalCtx, FitLocalCtx, Stream.AppendCtx) set
	// this field for you. Nil means the fit runs to completion.
	Context context.Context
	// Progress, when non-nil, receives a FitEvent at every stage boundary:
	// per-keyword LM iteration counts and residuals, each shock candidate's
	// MDL cost delta and verdict, growth decisions, and per-stage wall-clock
	// timings. It is called concurrently from fitting workers and must be
	// safe for parallel use (FitTrace.Hook is the canonical consumer). Nil
	// disables tracing at zero cost.
	Progress ProgressFunc
}

func (o FitOptions) withDefaults() FitOptions {
	if o.MaxShocks <= 0 {
		o.MaxShocks = 12
	}
	if o.MaxOuterIter <= 0 {
		o.MaxOuterIter = 3
	}
	if o.CalendarPeriods == nil {
		o.CalendarPeriods = []int{52, 26, 104, 208}
	}
	if o.Workers <= 0 {
		o.Workers = 4
	}
	return o
}

// maxShockStrength is the upper bound of every shock-strength search: the
// per-occurrence golden refinements (global, streaming, and local) and the
// LM strength boxes all use it. It used to differ between layers (60 in the
// streaming refine pass, 80 in the local fit), so a strength legitimately
// fitted near 80 by one layer was silently clipped by the next.
const maxShockStrength = 80

// GlobalFitResult is the outcome of fitting one keyword's global sequence.
type GlobalFitResult struct {
	Params KeywordParams
	Shocks []Shock
	Scale  float64 // normalisation divisor applied to the sequence
	Cost   float64 // final per-keyword MDL cost (model + coding), normalised data
}

// FitGlobalSequence fits the Δ-SPOT single-sequence model (Model 1 in the
// paper) to one global sequence x̄ by the alternating GlobalFit algorithm
// (Algorithm 2): LM base fit, MDL-gated growth fit, and greedy MDL-gated
// shock discovery, repeated while the total cost improves.
func FitGlobalSequence(seq []float64, keyword int, opts FitOptions) (res GlobalFitResult, err error) {
	opts = opts.withDefaults()
	// Entry-point boundary: this is where FitSequence, the FitGlobal
	// workers, and the stream refit path all funnel through, so validation
	// and panic containment live here. NaN entries pass (they are the
	// missing-value sentinel); Inf and negative counts are rejected with a
	// typed numcheck error before any optimiser sees them.
	defer recoverFitPanic(opts, keyword, -1, &err)
	if verr := numcheck.Sequence("core: sequence", seq); verr != nil {
		return GlobalFitResult{}, verr
	}
	if tensor.ObservedCount(seq) < 8 {
		return GlobalFitResult{}, errors.New("core: sequence too short to fit")
	}
	norm, scale := tensor.Normalize(seq)
	n := len(norm)

	st := &gfit{seq: norm, n: n, keyword: keyword, opts: opts, ctx: opts.Context}
	start := st.traceNow()
	st.params = KeywordParams{TEta: NoGrowth}
	st.fitBase(true)

	best := st.snapshot()
	bestCost := st.cost()
	rounds := 0
	for iter := 0; iter < opts.MaxOuterIter && !st.cancelled(); iter++ {
		rounds = iter + 1
		st.fitBase(iter == 0)
		if !opts.DisableGrowth {
			st.fitGrowth()
		}
		if !opts.DisableShocks {
			st.detectShocks()
			st.refineStrengths()
		}
		if st.cancelled() {
			break
		}
		c := st.cost()
		if opts.AcceptAllShocks {
			// Ablation mode: no MDL gating anywhere, including the outer
			// snapshot — keep whatever the round produced.
			bestCost = c
			best = st.snapshot()
			continue
		}
		if c < bestCost-1e-9 {
			bestCost = c
			best = st.snapshot()
		} else {
			break
		}
	}

	if err := st.cancelErr(); err != nil {
		return GlobalFitResult{}, fmt.Errorf("core: fit cancelled: %w", err)
	}
	params, shocks := best.params, best.shocks
	params.N *= scale // back to raw counts
	if math.IsInf(params.N, 0) || math.IsNaN(params.N) {
		// A near-float-ceiling input (scale ~1e308) can push the rescaled
		// population past the float64 range even though every fitted value
		// was finite. Honour the finite-parameters contract with an error
		// rather than handing a non-finite model to the registry.
		return GlobalFitResult{}, fmt.Errorf(
			"core: fitted population overflows at data scale %g", scale)
	}
	if opts.Progress != nil {
		opts.Progress(FitEvent{Stage: StageKeyword, Keyword: keyword, Location: -1,
			Round: rounds, LMIters: st.lmIters, LMStalls: st.lmStalls,
			Residual: bestCost, Duration: time.Since(start)})
	}
	return GlobalFitResult{Params: params, Shocks: shocks, Scale: scale, Cost: bestCost}, nil
}

// gfit is the mutable state of one global fit.
type gfit struct {
	seq     []float64 // normalised observations
	n       int
	keyword int
	opts    FitOptions
	ctx     context.Context // cooperative cancellation; nil = never cancelled
	ctxErr  error           // sticky: first ctx.Err() observed

	params KeywordParams
	shocks []Shock

	lmIters  int // LM iterations spent on this keyword so far
	lmStalls int // LM runs that ended Stalled (damping hit MaxLambda)

	// Scratch buffers threaded through the objective closures (see
	// DESIGN.md, "Hot path & memory discipline"). The fitting stages run
	// sequentially on one gfit, and each buffer is owned by exactly one
	// stage at a time; contents are only valid within a single objective
	// evaluation. epsBase additionally caches a stage's fixed base ε(t)
	// profile across evaluations (the accepted shocks' contribution in
	// evaluateCandidate), which is why it is distinct from epsBuf.
	// sensBuf is the per-parameter lane state of the analytic Jacobian
	// passes (3 lanes per differentiated parameter).
	epsBuf  []float64
	epsBase []float64
	simBuf  []float64
	sensBuf []float64
	// batchBuf and epsBatchBuf back the multi-start pruning passes: one
	// lane-major simulation block and (for shock candidates, whose starts
	// carry different strengths) one ε profile per candidate start.
	batchBuf    []float64
	epsBatchBuf []float64
}

// evaluateCandidate's multi-start budget: of the 8 warm/masked/canonical
// candidate starts, one batched forward pass (SimulateBatchInto) keeps the
// candKeep most promising by initial SSE (warm and masked always survive);
// each survivor gets a candScreenIter-iteration screening LM run; and the
// candPolish best screened results — ranked by MDL cost, the measure that
// judges the final candidate — are polished with the remaining budget.
// Initial SSE alone is too blunt an instrument to pick LM winners (a
// spiky-basin start can look terrible at its starting point yet win after
// LM, which is why the base fit prunes per population-scale group instead —
// see fitBaseIter), but it is safe for shaving the clearly hopeless tail
// when screening does the real ranking: after a dozen LM iterations each
// start has descended into its basin, so the screened costs compare basin
// floors rather than arbitrary starting heights.
const (
	candKeep       = 6
	candScreenIter = 20
	candPolishIter = 40
	candPolish     = 2
)

// batchStartSSE scores each candidate LM start by the SSE of one batched
// forward pass against the observed sequence. NaN (all-missing) scores
// become +Inf so every ordering built on them is total.
func (g *gfit) batchStartSSE(params []KeywordParams, eps [][]float64) []float64 {
	g.batchBuf = SimulateBatchInto(g.batchBuf, params, g.n, eps, -1)
	sses := make([]float64, len(params))
	for i := range params {
		sse := stats.SSE(g.seq, g.batchBuf[i*g.n:(i+1)*g.n])
		if math.IsNaN(sse) {
			sse = math.Inf(1)
		}
		sses[i] = sse
	}
	return sses
}

// bestStartIdx returns the indices of the starts worth a full LM run, in
// their original order: the first force entries unconditionally (warm and
// masked starts are kept for the basin they open up, not their initial SSE),
// then the lowest-SSE remainder up to keep total. Ties break on index, so
// the selection is deterministic.
func bestStartIdx(sses []float64, keep, force int) []int {
	k := len(sses)
	if keep > k {
		keep = k
	}
	idx := make([]int, 0, keep)
	for i := 0; i < force && i < keep; i++ {
		idx = append(idx, i)
	}
	if len(idx) == keep {
		return idx
	}
	rest := make([]int, 0, k-len(idx))
	for i := force; i < k; i++ {
		rest = append(rest, i)
	}
	sort.Slice(rest, func(a, b int) bool {
		if sses[rest[a]] != sses[rest[b]] {
			return sses[rest[a]] < sses[rest[b]]
		}
		return rest[a] < rest[b]
	})
	idx = append(idx, rest[:keep-len(idx)]...)
	sort.Ints(idx)
	return idx
}

// ensureLen returns buf resized to n, reallocating only when the capacity
// is insufficient. The contents are unspecified.
func ensureLen(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

// cancelled reports whether the fit's context has ended. The first
// observation is sticky, so every stage sees a consistent verdict even if
// the context races with the check.
func (g *gfit) cancelled() bool {
	if g.ctxErr != nil {
		return true
	}
	if g.ctx == nil {
		return false
	}
	if err := g.ctx.Err(); err != nil {
		g.ctxErr = err
		return true
	}
	return false
}

// cancelErr returns the sticky context error (nil while the fit is live).
func (g *gfit) cancelErr() error {
	if g.cancelled() {
		return g.ctxErr
	}
	return nil
}

// lmOpts builds the LM options for this fit's sub-problems, carrying the
// cancellation context so a mid-fit cancel stops within one LM iteration.
// jac is the analytic Jacobian of the sub-problem's residuals; it is
// dropped — falling back to finite differences inside lm — when the caller
// opted into FDJacobian. This is the only place internal/core constructs
// lm.Options, which is what lets the FDJacobian switch (and the CI grep
// gate guarding it) cover every production fit path at once.
func (g *gfit) lmOpts(maxIter int, lo, hi []float64, jac lm.JacobianFunc) lm.Options {
	o := lm.Options{MaxIter: maxIter, Lower: lo, Upper: hi, Ctx: g.ctx}
	if !g.opts.FDJacobian {
		o.Jacobian = jac
	}
	return o
}

// lmFit runs one LM sub-problem, folding its iteration count and stall
// verdict into the fit's running totals (surfaced per stage and per keyword
// as FitEvent.LMStalls). Every production LM call in this file goes through
// here, so the stall accounting covers the analytic and FD paths alike.
func (g *gfit) lmFit(resid lm.ResidualIntoFunc, p0 []float64, o lm.Options) (lm.Result, error) {
	res, err := lm.FitInto(resid, p0, o)
	if err == nil {
		g.lmIters += res.Iterations
		if res.Stalled {
			g.lmStalls++
		}
	}
	return res, err
}

// sensJacobian adapts one LM sub-problem to the analytic sensitivity
// kernel: assemble maps the LM vector v to the simulation inputs (params +
// ε profile, using the gfit scratch buffers), and specs names the
// differentiated lane of each v entry, in order. Residuals are seq − sim,
// so every sensitivity is negated in place. The returned closure writes
// the full m×dim Jacobian that lm expects; rows at missing observations
// are zeroed by the lm driver itself.
func (g *gfit) sensJacobian(specs []SensSpec, assemble func(v []float64) (*KeywordParams, []float64)) lm.JacobianFunc {
	return func(jac, v []float64) {
		p, eps := assemble(v)
		g.sensBuf = ensureLen(g.sensBuf, 3*len(specs))
		g.simBuf, jac = simulateSens(g.simBuf, jac, g.sensBuf, p, g.n, eps, -1, specs)
		for i := range jac {
			jac[i] = -jac[i]
		}
	}
}

type gsnapshot struct {
	params KeywordParams
	shocks []Shock
}

func (g *gfit) snapshot() gsnapshot {
	shocks := make([]Shock, len(g.shocks))
	for i, s := range g.shocks {
		s.Strength = append([]float64(nil), s.Strength...)
		shocks[i] = s
	}
	return gsnapshot{params: g.params, shocks: shocks}
}

// epsilon builds ε(t) from the current shocks.
func (g *gfit) epsilon() []float64 {
	return epsilonFromShocks(g.shocks, g.n)
}

func epsilonFromShocks(shocks []Shock, n int) []float64 {
	return epsilonFromShocksInto(nil, shocks, n)
}

// epsilonFromShocksInto is epsilonFromShocks into a caller-provided buffer
// (reused when its capacity suffices, freshly allocated otherwise).
func epsilonFromShocksInto(dst []float64, shocks []Shock, n int) []float64 {
	if cap(dst) < n {
		dst = make([]float64, n)
	}
	eps := dst[:n]
	for t := range eps {
		eps[t] = 1
	}
	for i := range shocks {
		addShockProfile(eps, &shocks[i], shocks[i].Strength)
	}
	return eps
}

// rebuildEpsilonWindow recomputes eps[lo:hi) from scratch, accumulating in
// the same canonical (shock, occurrence) order as epsilonFromShocks. Float
// addition is not associative, so applying a ±delta in place would drift
// from a full rebuild; re-deriving the window ticks in canonical order keeps
// them bit-identical, which the golden-value tests pin down. Used by the
// strength refiners, where one occurrence's strength changes per evaluation
// and only its own window of ε(t) is affected.
func rebuildEpsilonWindow(eps []float64, shocks []Shock, lo, hi int) {
	if lo < 0 {
		lo = 0
	}
	if hi > len(eps) {
		hi = len(eps)
	}
	for t := lo; t < hi; t++ {
		eps[t] = 1
	}
	for i := range shocks {
		addShockProfileWindow(eps, &shocks[i], shocks[i].Strength, lo, hi)
	}
}

// simulate runs the current model.
func (g *gfit) simulate() []float64 {
	return Simulate(&g.params, g.n, g.epsilon(), -1)
}

// residuals returns seq − simulation with NaN at missing ticks.
func (g *gfit) residuals() []float64 {
	return residuals(g.seq, g.simulate())
}

// cost is the per-keyword MDL objective on normalised data: growth cost +
// shock model cost + Gaussian coding cost of the residuals. Base-parameter
// cost is identical across candidates and omitted.
func (g *gfit) cost() float64 {
	c := mdl.GaussianCost(g.residuals())
	c += costShockTensor(g.shocks, 1, 1, g.n)
	ps := []KeywordParams{g.params}
	c += costGrowthGlobal(ps)
	return c
}

// fitBase fits {N, β, δ, γ, i0} by LM with the current shocks and growth
// fixed. multiStart additionally tries a deterministic set of alternative
// starting points (used on the first round, when no warm start exists).
func (g *gfit) fitBase(multiStart bool) { g.fitBaseIter(multiStart, 120, true) }

// fitBaseIter is fitBase with an iteration budget and an optional batched
// pruning of the multi-start set (one SimulateBatchInto pass keeps the best
// start of each population-scale group — see the pruning block below). Both
// the top-level base fits and the per-candidate masked fits prune; the
// two-phase screen/polish loop underneath is what keeps pruning safe, since
// every surviving start still gets a basin-ranking screening run before the
// full budget is committed.
func (g *gfit) fitBaseIter(multiStart bool, maxIter int, prune bool) {
	t0 := g.traceNow()
	itersBefore, stallsBefore := g.lmIters, g.lmStalls
	eps := g.epsilon()
	resid := func(dst, p []float64) []float64 {
		cand := g.params
		cand.N, cand.Beta, cand.Delta, cand.Gamma, cand.I0 = p[0], p[1], p[2], p[3], p[4]
		g.simBuf = SimulateInto(g.simBuf, &cand, g.n, eps, -1)
		return residualsInto(dst, g.seq, g.simBuf)
	}
	var jp KeywordParams
	jacFn := g.sensJacobian(BaseSensSpecs(), func(v []float64) (*KeywordParams, []float64) {
		jp = g.params
		jp.N, jp.Beta, jp.Delta, jp.Gamma, jp.I0 = v[0], v[1], v[2], v[3], v[4]
		return &jp, eps
	})
	lo := []float64{1e-4, 1e-4, 1e-4, 1e-4, 1e-7}
	hi := []float64{20, 5, 2, 2, 1}

	type start [5]float64
	starts := []start{{g.params.N, g.params.Beta, g.params.Delta, g.params.Gamma, g.params.I0}}
	if g.params.N == 0 { // uninitialised: seed from the data
		m := stats.Mean(g.seq)
		if m <= 0 {
			m = 0.1
		}
		i0 := math.Max(g.seq[0], 1e-4)
		starts = []start{{math.Max(2*m, 0.05), 0.5, 0.45, 0.5, i0}}
	}
	var groups [][2]int // index ranges of the fast-mixing contact-rate sweeps
	if multiStart {
		base := starts[0]
		// Data-derived initial infective fraction: the first observations
		// divided by the population scale, so fast-mixing starts begin at
		// the observed level rather than at a degenerate warm-start value.
		head := g.seq
		if len(head) > 5 {
			head = head[:5]
		}
		headLevel := stats.Mean(head)
		// Fast-mixing starts over contact rates and population scales: the
		// search must cover both the "spiky" basin (large N headroom) and
		// the "smooth" basin regardless of the warm start.
		for _, n0 := range []float64{base[0], 2, 6} {
			i0Est := headLevel / math.Max(n0, 1e-6)
			if i0Est < 1e-5 {
				i0Est = 1e-5
			}
			if i0Est > 0.9 {
				i0Est = 0.9
			}
			lo := len(starts)
			for _, b := range []float64{0.2, 1.0, 2.5} {
				starts = append(starts, start{n0, b, 0.45, 0.5, i0Est})
			}
			groups = append(groups, [2]int{lo, len(starts)})
		}
		starts = append(starts, start{base[0], 0.5, 0.05, 0.05, base[4]}) // slow-mixing
	}
	if prune && len(groups) > 0 {
		// Batched pruning, one LM run per basin: the basins of the base fit
		// are indexed by population-scale headroom, so each contact-rate
		// sweep keeps only its lowest initial-SSE member (scored by one
		// SimulateBatchInto pass over all starts) while the warm start and
		// the slow-mixing start survive unconditionally. Pruning across
		// groups by global SSE rank is tempting but wrong: a spiky-basin
		// start can look terrible at its starting point yet win after LM.
		cand := make([]KeywordParams, len(starts))
		epsL := make([][]float64, len(starts))
		for i, s0 := range starts {
			p := g.params
			p.N, p.Beta, p.Delta, p.Gamma, p.I0 = s0[0], s0[1], s0[2], s0[3], s0[4]
			cand[i] = p
			epsL[i] = eps
		}
		sses := g.batchStartSSE(cand, epsL)
		keep := make(map[int]bool, len(groups)+2)
		keep[0] = true
		keep[len(starts)-1] = true
		for _, gr := range groups {
			best := gr[0]
			for i := gr[0] + 1; i < gr[1]; i++ {
				if sses[i] < sses[best] {
					best = i
				}
			}
			keep[best] = true
		}
		pruned := make([]start, 0, len(keep))
		for i, s0 := range starts {
			if keep[i] {
				pruned = append(pruned, s0)
			}
		}
		starts = pruned
	}

	bestSSE := math.Inf(1)
	var bestParams []float64
	if len(starts) == 1 {
		// Warm single-start refit: one full-budget run, no phasing.
		res, err := g.lmFit(resid,
			[]float64{starts[0][0], starts[0][1], starts[0][2], starts[0][3], starts[0][4]},
			g.lmOpts(maxIter, lo, hi, jacFn))
		if err == nil {
			bestSSE, bestParams = res.SSE, res.Params
		}
	} else {
		// Two-phase multi-start, as in evaluateCandidate: short screening
		// runs rank the basins (each screened result remains a valid
		// answer), then the best two resume with the remaining budget.
		const screenIter, polishKeep = 10, 2
		type screened struct {
			params []float64
			sse    float64
			idx    int
		}
		scr := make([]screened, 0, len(starts))
		for _, s0 := range starts {
			if g.cancelled() {
				break
			}
			p0 := []float64{s0[0], s0[1], s0[2], s0[3], s0[4]}
			res, err := g.lmFit(resid, p0, g.lmOpts(screenIter, lo, hi, jacFn))
			if err != nil {
				continue
			}
			if res.SSE < bestSSE {
				bestSSE = res.SSE
				bestParams = res.Params
			}
			scr = append(scr, screened{params: res.Params, sse: res.SSE, idx: len(scr)})
		}
		sort.Slice(scr, func(a, b int) bool {
			if scr[a].sse != scr[b].sse {
				return scr[a].sse < scr[b].sse
			}
			return scr[a].idx < scr[b].idx
		})
		if len(scr) > polishKeep {
			scr = scr[:polishKeep]
		}
		for _, sc := range scr {
			if g.cancelled() {
				break
			}
			res, err := g.lmFit(resid, sc.params, g.lmOpts(maxIter-screenIter, lo, hi, jacFn))
			if err != nil {
				continue
			}
			if res.SSE < bestSSE {
				bestSSE = res.SSE
				bestParams = res.Params
			}
		}
	}
	if bestParams != nil {
		g.params.N, g.params.Beta, g.params.Delta = bestParams[0], bestParams[1], bestParams[2]
		g.params.Gamma, g.params.I0 = bestParams[3], bestParams[4]
	}
	g.emit(FitEvent{Stage: StageBase, Keyword: g.keyword, Location: -1,
		LMIters: g.lmIters - itersBefore, LMStalls: g.lmStalls - stallsBefore,
		Residual: bestSSE, Duration: sinceIfTraced(g, t0)})
}

// sinceIfTraced returns the elapsed time since start when tracing is on.
func sinceIfTraced(g *gfit, start time.Time) time.Duration {
	if g.opts.Progress == nil {
		return 0
	}
	return time.Since(start)
}

// fitGrowth searches for a population growth effect. A cheap pass grids
// over onset times t_η with only η₀ free; the best onsets are then given a
// joint Levenberg–Marquardt refit of {N, β, δ, γ, i0, η₀} so that a growth
// model competes on equal footing with the growth-free base (otherwise a
// base fit that has already smeared the level shift across slow dynamics
// can never be beaten). The growth term is kept only when the MDL cost —
// which charges the two extra floats {η₀, t_η} — improves.
func (g *gfit) fitGrowth() {
	lo, hi := g.n/20+1, g.n-g.n/20-1
	if hi <= lo || g.cancelled() {
		return
	}
	start := g.traceNow()
	// Cheap pre-check: the growth effect raises the *base level*, so a
	// series whose median level never shifts cannot carry one. Medians are
	// robust to the shock spikes, so bursty-but-level series (the common
	// case in wide hashtag tails) skip the expensive joint onset search
	// entirely. The thirds comparison is deliberately lenient (15%).
	third := g.n / 3
	if third >= 8 {
		first := stats.Quantile(g.seq[:third], 0.5)
		mid := stats.Quantile(g.seq[third:2*third], 0.5)
		last := stats.Quantile(g.seq[g.n-third:], 0.5)
		maxLate := mid
		if last > maxLate {
			maxLate = last
		}
		if first > 0 && maxLate/first < 1.15 {
			g.params.Eta0, g.params.TEta = 0, NoGrowth
			g.emit(FitEvent{Stage: StageGrowth, Keyword: g.keyword, Location: -1,
				Duration: sinceIfTraced(g, start)})
			return
		}
	}
	eps := g.epsilon()
	withoutGrowth := g.params
	withoutGrowth.Eta0, withoutGrowth.TEta = 0, NoGrowth
	simWithout := Simulate(&withoutGrowth, g.n, eps, -1)
	costWithout := mdl.GaussianCost(residuals(g.seq, simWithout)) +
		costGrowthGlobal([]KeywordParams{withoutGrowth})

	// Onset search: a refining grid over t_η where each candidate gets the
	// full joint fit. An η₀-only pass is too easily misled when the current
	// base parameters have smeared the level shift, so the joint fit is the
	// objective even during the coarse scan.
	cache := map[int]KeywordParams{}
	jointAt := func(tEta int) KeywordParams {
		if p, ok := cache[tEta]; ok {
			return p
		}
		p := g.jointGrowthFit(tEta, eps)
		cache[tEta] = p
		return p
	}
	tEta, _, err := optimize.RefiningGridCtx(g.ctx, func(t int) float64 {
		p := jointAt(t)
		g.simBuf = SimulateInto(g.simBuf, &p, g.n, eps, -1)
		return stats.SSE(g.seq, g.simBuf)
	}, lo, hi, 16)
	if err != nil {
		return // cancelled mid-scan: keep the current (growth-free) params
	}

	p := jointAt(tEta)
	sim := Simulate(&p, g.n, eps, -1)
	costWith := mdl.GaussianCost(residuals(g.seq, sim)) +
		costGrowthGlobal([]KeywordParams{p})
	accepted := costWith < costWithout-1e-9 && p.Eta0 > 1e-4
	if accepted {
		g.params = p
	} else {
		g.params = withoutGrowth
	}
	g.emit(FitEvent{Stage: StageGrowth, Keyword: g.keyword, Location: -1,
		CostDelta: costWith - costWithout, Accepted: accepted,
		Duration: sinceIfTraced(g, start)})
}

// jointGrowthFit runs LM over {N, β, δ, γ, i0, η₀} with t_η fixed. eps is
// the current shock profile, computed once by the caller — the shock set is
// fixed during the growth search, so rebuilding it per candidate onset (as
// this function used to) was pure waste.
func (g *gfit) jointGrowthFit(tEta int, eps []float64) KeywordParams {
	build := func(v []float64) KeywordParams {
		return KeywordParams{N: v[0], Beta: v[1], Delta: v[2], Gamma: v[3],
			I0: v[4], Eta0: v[5], TEta: tEta}
	}
	resid := func(dst, v []float64) []float64 {
		cand := build(v)
		g.simBuf = SimulateInto(g.simBuf, &cand, g.n, eps, -1)
		return residualsInto(dst, g.seq, g.simBuf)
	}
	var jp KeywordParams
	jacFn := g.sensJacobian(append(BaseSensSpecs(), SensSpec{Param: SensEta0}),
		func(v []float64) (*KeywordParams, []float64) {
			jp = build(v)
			return &jp, eps
		})
	lo := []float64{1e-4, 1e-4, 1e-4, 1e-4, 1e-7, 0}
	hi := []float64{20, 5, 2, 2, 1, 10}
	eta0, _, _ := optimize.GoldenCtx(g.ctx, func(e float64) float64 {
		cand := g.params
		cand.TEta, cand.Eta0 = tEta, e
		g.simBuf = SimulateInto(g.simBuf, &cand, g.n, eps, -1)
		return stats.SSE(g.seq, g.simBuf)
	}, 0, 10, 1e-4, 60)
	start := []float64{g.params.N, g.params.Beta, g.params.Delta, g.params.Gamma,
		g.params.I0, eta0}
	bestSSE := math.Inf(1)
	best := build(start)
	for _, s0 := range [][]float64{start, {0.3, 0.5, 0.45, 0.5, 1e-3, 0.3}} {
		if g.cancelled() {
			break
		}
		res, err := g.lmFit(resid, s0, g.lmOpts(80, lo, hi, jacFn))
		if err != nil {
			continue
		}
		if res.SSE < bestSSE {
			bestSSE = res.SSE
			best = build(res.Params)
		}
	}
	return best
}

// detectShocks greedily adds external shocks while the MDL cost improves
// (the inner while-loop of Algorithm 2). Each round seeds a candidate from
// the largest positive residual run, searches over candidate periodicities
// and anchors, fits per-occurrence strengths, and accepts the best variant
// only if Cost_T drops.
func (g *gfit) detectShocks() {
	g.shocks = nil // re-initialise, as in Algorithm 2 line 10
	g.growShocks()
}

// growShocks extends the current shock set greedily while the MDL cost
// improves, without resetting it first — used both by detectShocks and by
// the incremental refit path, which keeps the previously discovered shocks.
func (g *gfit) growShocks() {
	cur := g.cost()
	for len(g.shocks) < g.opts.MaxShocks && !g.cancelled() {
		start := g.traceNow()
		cand, params, cost, ok := g.bestShockCandidate()
		if !ok {
			break
		}
		accepted := cost < cur-1e-9 || g.opts.AcceptAllShocks
		if g.opts.Progress != nil {
			sc := cand // stable copy: the live shock keeps being refined
			g.opts.Progress(FitEvent{Stage: StageShock, Keyword: g.keyword,
				Location: -1, CostDelta: cost - cur, Accepted: accepted,
				Shock: &sc, Duration: time.Since(start)})
		}
		if !accepted {
			break
		}
		g.shocks = append(g.shocks, cand)
		g.params = params
		cur = cost
	}
}

// bestShockCandidate proposes the single best next shock, trying non-cyclic
// and cyclic variants of the dominant residual peak. Each candidate's
// occurrence strengths are fitted and the base parameters are briefly
// refitted jointly with the shock — without the joint refit, base dynamics
// tuned to shock-free data systematically under-rate every candidate (a
// modelled spike drags a long artificial dip behind it when γ is fitted too
// low). It returns the winning shock, the accompanying refitted base
// parameters, and the resulting MDL cost.
func (g *gfit) bestShockCandidate() (Shock, KeywordParams, float64, bool) {
	resid := g.residuals()
	level := shockSeedLevel(resid, g.seq)
	peaks := stats.FindPeaks(resid, level)
	if len(peaks) == 0 {
		return Shock{}, g.params, 0, false
	}
	// Candidates seed from the dominant residual peak only: each accepted
	// shock changes the residuals, so secondary peaks get their turn on the
	// next greedy round (seeding several peaks at once proved to breed
	// accidental-period artifacts that cover multiple peaks at once).
	peaks = peaks[:1]

	// Stage A: cheap, simulation-free scoring of (period, anchor, width)
	// configurations by residual-mass coverage. Simulation-based scoring is
	// basin-dependent (a base fit stuck with a near-zero infective level
	// cannot express early spikes, so it misranks anchors); coverage is
	// not: each occurrence window is credited with the positive residual
	// mass it covers (with a two-tick lag allowance, since spikes trail the
	// ε onset), and occurrences landing on quiet stretches are penalised so
	// that over-frequent periods do not free-ride. The precise strengths
	// and the accept/reject decision come from stage B's joint LM + MDL.
	type config struct {
		shock Shock
		score float64
		peak  int // which residual peak seeded this config
	}
	// Thresholds derive from the dominant peak so secondary-peak candidates
	// are judged on the same scale.
	emptyLevel := 0.2 * peaks[0].Mass
	penalty := 0.3 * peaks[0].Mass
	coverage := func(p, anchor, w int) (config, bool) {
		s := Shock{Keyword: g.keyword, Period: p, Start: anchor, Width: w}
		occ := s.Occurrences(g.n)
		s.Strength = make([]float64, occ)
		if err := s.Validate(g.n, 0); err != nil {
			return config{}, false
		}
		total := 0.0
		for m := 0; m < occ; m++ {
			ws := s.OccurrenceStart(m)
			we := ws + w + 2
			if we > g.n {
				we = g.n
			}
			mass := 0.0
			for t := ws; t < we; t++ {
				if r := resid[t]; !math.IsNaN(r) && r > 0 {
					mass += r
				}
			}
			if mass < emptyLevel {
				total -= penalty
				continue
			}
			total += mass
		}
		return config{shock: s, score: total}, true
	}
	byScore := func(configs []config) {
		sort.Slice(configs, func(a, b int) bool {
			if configs[a].score != configs[b].score {
				return configs[a].score > configs[b].score
			}
			sa, sb := configs[a].shock, configs[b].shock
			if sa.Start != sb.Start {
				return sa.Start < sb.Start
			}
			if sa.Period != sb.Period {
				return sa.Period < sb.Period
			}
			return sa.Width < sb.Width
		})
	}

	var configs []config
	for _, peak := range peaks {
		width := peak.Width
		if width < 1 {
			width = 1
		}
		if width > g.n/8+1 {
			width = g.n/8 + 1
		}
		// Candidate periodicities: non-cyclic plus ACF/calendar periods
		// that fit at least two occurrences into the window.
		periods := []int{NonCyclic}
		if !g.opts.DisableCycles {
			cands := stats.DominantPeriods(resid, 4, width+2, 0.15)
			cands = append(cands, g.opts.CalendarPeriods...)
			seenP := map[int]bool{}
			for _, p := range cands {
				if p <= width || p > g.n/2 || seenP[p] {
					continue
				}
				seenP[p] = true
				periods = append(periods, p)
			}
		}
		seen := map[int]bool{}
		for _, p := range periods {
			for _, jit := range []int{-2, -1, 0, 1} {
				for _, base := range anchorCandidates(peak.Start+jit, p) {
					if base < 0 {
						continue
					}
					for _, w := range []int{width - 1, width, width + 1} {
						if w < 1 || seen[p*1048576+base*1024+w] {
							continue
						}
						seen[p*1048576+base*1024+w] = true
						if c, ok := coverage(p, base, w); ok {
							c.peak = peak.Start
							configs = append(configs, c)
						}
					}
				}
			}
		}
	}
	if len(configs) == 0 {
		return Shock{}, g.params, 0, false
	}
	byScore(configs)
	// Shortlist: the top three by coverage, plus the best one-shot config
	// when none made the cut. Coverage structurally favours cyclic
	// candidates — they gather mass from every occurrence — but an
	// accidental period whose stage-B fit fails must not crowd out the
	// plain one-shot, which often wins the MDL gate (a launch spike the
	// base dynamics had contorted themselves to imitate is the canonical
	// case).
	top := 3
	if len(configs) < top {
		top = len(configs)
	}
	shortlist := append([]config(nil), configs[:top]...)
	hasOneShot := false
	for _, c := range shortlist {
		if c.shock.Period == NonCyclic {
			hasOneShot = true
		}
	}
	if !hasOneShot {
		for _, c := range configs[top:] {
			if c.shock.Period == NonCyclic {
				shortlist = append(shortlist, c)
				break
			}
		}
	}
	configs = shortlist

	// Stage B: joint base+strength LM refit of the shortlist, MDL-scored.
	best := Shock{}
	bestParams := g.params
	bestCost := math.Inf(1)
	found := false
	savedParams := g.params
	for _, cfg := range configs {
		if g.cancelled() {
			break
		}
		g.params = savedParams
		cand, params, c := g.evaluateCandidate(cfg.shock)
		if c < bestCost {
			bestCost, best, bestParams, found = c, cand, params, true
		}
	}
	g.params = savedParams
	return best, bestParams, bestCost, found
}

// evaluateCandidate fits the candidate shock jointly with the base
// parameters — LM over {N, β, δ, γ, i0} ∪ strengths — from a warm start
// (current params + windowed golden strengths) and from canonical starts.
// Fitting the two groups separately is a chicken-and-egg trap: strengths
// tuned to a bad base basin prevent the base refit from leaving it. It
// returns the fitted shock, the accompanying base parameters, and the
// resulting MDL cost.
func (g *gfit) evaluateCandidate(s Shock) (Shock, KeywordParams, float64) {
	occ := len(s.Strength)
	others := g.shocks // fixed, already-accepted shocks

	build := func(v []float64) (KeywordParams, []float64) {
		p := KeywordParams{N: v[0], Beta: v[1], Delta: v[2], Gamma: v[3], I0: v[4],
			Eta0: g.params.Eta0, TEta: g.params.TEta}
		return p, v[5 : 5+occ]
	}
	// The accepted shocks are fixed for the whole candidate evaluation, so
	// their ε(t) contribution is computed once; each residual evaluation
	// copies it and layers only the candidate's occurrences on top. The
	// candidate is added last, exactly as a full rebuild over others+cand
	// would, keeping the profile bit-identical to the allocating path.
	g.epsBase = epsilonFromShocksInto(g.epsBase, others, g.n)
	epsBase := g.epsBase
	resid := func(dst, v []float64) []float64 {
		p, strengths := build(v)
		cand := s
		cand.Strength = strengths
		g.epsBuf = ensureLen(g.epsBuf, g.n)
		copy(g.epsBuf, epsBase)
		addShockProfile(g.epsBuf, &cand, strengths)
		g.simBuf = SimulateInto(g.simBuf, &p, g.n, g.epsBuf, -1)
		return residualsInto(dst, g.seq, g.simBuf)
	}
	specs := BaseSensSpecs()
	for m := 0; m < occ; m++ {
		specs = append(specs, StrengthSpec(&s, m, g.n))
	}
	var jp KeywordParams
	jacFn := g.sensJacobian(specs, func(v []float64) (*KeywordParams, []float64) {
		var strengths []float64
		jp, strengths = build(v)
		cand := s
		cand.Strength = strengths
		g.epsBuf = ensureLen(g.epsBuf, g.n)
		copy(g.epsBuf, epsBase)
		addShockProfile(g.epsBuf, &cand, strengths)
		return &jp, g.epsBuf
	})
	lo := make([]float64, 5+occ)
	hi := make([]float64, 5+occ)
	copy(lo, []float64{1e-4, 1e-4, 1e-4, 1e-4, 1e-7})
	copy(hi, []float64{20, 5, 2, 2, 1})
	for i := 5; i < len(hi); i++ {
		hi[i] = maxShockStrength
	}

	// Warm start: current base + windowed golden strengths.
	warm := s
	warm.Strength = append([]float64(nil), s.Strength...)
	g.fitShockStrengths(&warm)
	p0 := []float64{g.params.N, g.params.Beta, g.params.Delta, g.params.Gamma, g.params.I0}
	p0 = append(p0, warm.Strength...)

	// Masked start: base parameters fitted with the candidate's occurrence
	// windows blanked out. When the warm basin is degenerate — base
	// dynamics contorted into a single outbreak that imitates the dominant
	// spike — every start seeded from it keeps explaining the spike with
	// the base; the masked fit is forced to explain only the off-event
	// baseline, giving LM a "shock explains the spike" basin to start from.
	masked := g.maskedBaseParams(&s)
	pm := []float64{masked.N, masked.Beta, masked.Delta, masked.Gamma, masked.I0}
	for i := 0; i < occ; i++ {
		if i < len(warm.Strength) && warm.Strength[i] > 0 {
			pm = append(pm, warm.Strength[i])
		} else {
			pm = append(pm, 6)
		}
	}

	// Canonical starts: fast-mixing base at several population scales
	// (spiky series need N well above the baseline level so that ε-driven
	// spikes have susceptible headroom), with uniform strength guesses at
	// two magnitudes.
	head := g.seq
	if len(head) > 5 {
		head = head[:5]
	}
	headLevel := stats.Mean(head)
	starts := [][]float64{p0, pm}
	for _, n0 := range []float64{math.Max(2*stats.Mean(g.seq), 0.05), 2, 6} {
		i0Est := math.Min(math.Max(headLevel/n0, 1e-5), 0.9)
		for _, str := range []float64{4, 15} {
			cs := []float64{n0, 0.5, 0.45, 0.5, i0Est}
			for i := 0; i < occ; i++ {
				cs = append(cs, str)
			}
			starts = append(starts, cs)
		}
	}
	if len(starts) > candKeep {
		// Batched pruning: one SimulateBatchInto pass scores every start's
		// initial SSE (each lane with its own strengths layered onto the
		// shared base ε). The warm and masked starts (indices 0 and 1) are
		// exempt — the masked start exists precisely because its basin beats
		// its initial SSE — and the bar is deliberately loose: the screening
		// runs below do the real basin ranking.
		k := len(starts)
		candP := make([]KeywordParams, k)
		epsL := make([][]float64, k)
		g.epsBatchBuf = ensureLen(g.epsBatchBuf, k*g.n)
		for i, v := range starts {
			p, strengths := build(v)
			candP[i] = p
			lane := g.epsBatchBuf[i*g.n : (i+1)*g.n]
			copy(lane, epsBase)
			cand := s
			cand.Strength = strengths
			addShockProfile(lane, &cand, strengths)
			epsL[i] = lane
		}
		sses := g.batchStartSSE(candP, epsL)
		keep := bestStartIdx(sses, candKeep, 2)
		pruned := make([][]float64, 0, len(keep))
		for _, i := range keep {
			pruned = append(pruned, starts[i])
		}
		starts = pruned
	}

	// Each start is judged by the MDL cost of its fitted result — not by
	// SSE. The acceptance gate downstream is MDL, and an extra start with
	// marginally lower SSE but a costlier description must not displace a
	// cheaper one; under cost-based selection, adding starts is strictly
	// non-harmful.
	savedParams, savedShocks := g.params, g.shocks
	costOf := func(v []float64) (Shock, KeywordParams, float64) {
		p, strengths := build(v)
		out := s
		out.Strength = make([]float64, occ)
		for i, sv := range strengths {
			if sv < 1e-3 {
				sv = 0
			}
			out.Strength[i] = sv
		}
		g.params = p
		g.shocks = append(append([]Shock(nil), others...), out)
		c := g.cost()
		g.params, g.shocks = savedParams, savedShocks
		return out, p, c
	}

	bestCost := math.Inf(1)
	var bestShock Shock
	bestParams := g.params
	consider := func(v []float64) float64 {
		out, p, c := costOf(v)
		if c < bestCost {
			bestCost, bestShock, bestParams = c, out, p
		}
		return c
	}
	consider(p0) // the un-refit warm start is itself a valid candidate

	// Screening phase: a short LM run from every start, each result scored
	// (and kept as a valid candidate — the polish phase can only improve on
	// the screened best).
	type screened struct {
		params []float64
		cost   float64
		idx    int
	}
	scr := make([]screened, 0, len(starts))
	for _, st := range starts {
		if g.cancelled() {
			break
		}
		res, err := g.lmFit(resid, st, g.lmOpts(candScreenIter, lo, hi, jacFn))
		if err != nil {
			continue
		}
		scr = append(scr, screened{params: res.Params, cost: consider(res.Params),
			idx: len(scr)})
	}

	// Polish phase: the best screened results get the remaining iteration
	// budget, resumed from their screened endpoints. Ties break on screening
	// order, so the selection is deterministic.
	sort.Slice(scr, func(a, b int) bool {
		if scr[a].cost != scr[b].cost {
			return scr[a].cost < scr[b].cost
		}
		return scr[a].idx < scr[b].idx
	})
	if len(scr) > candPolish {
		scr = scr[:candPolish]
	}
	for _, sc := range scr {
		if g.cancelled() {
			break
		}
		res, err := g.lmFit(resid, sc.params, g.lmOpts(candPolishIter, lo, hi, jacFn))
		if err != nil {
			continue
		}
		consider(res.Params)
	}
	return bestShock, bestParams, bestCost
}

// shockSeedLevel picks the residual level above which a run is considered a
// candidate shock: well above the noise floor and a noticeable fraction of
// the signal.
func shockSeedLevel(resid, seq []float64) float64 {
	_, sigma2 := mdl.ResidualNoise(resid)
	noise := 2 * math.Sqrt(sigma2)
	signal := 0.08 * stats.Max(seq)
	if noise > signal {
		return noise
	}
	return signal
}

// anchorCandidates lists possible first-occurrence starts for a peak
// detected at tick start: the peak itself, and (for cyclic shocks) earlier
// ticks at the same phase. Long chains are subsampled to eight candidates
// (always keeping the peak itself and the earliest phase-aligned tick).
func anchorCandidates(start, period int) []int {
	if period <= 0 {
		return []int{start}
	}
	var out []int
	for a := start; a >= 0; a -= period {
		out = append(out, a)
	}
	const maxAnchors = 8
	if len(out) <= maxAnchors {
		return out
	}
	sub := make([]int, 0, maxAnchors)
	step := float64(len(out)-1) / float64(maxAnchors-1)
	for i := 0; i < maxAnchors; i++ {
		sub = append(sub, out[int(float64(i)*step+0.5)])
	}
	return sub
}

// fitShockStrengths fits the per-occurrence strengths of s (in time order,
// since the dynamics are causal), zeroing occurrences that do not help.
func (g *gfit) fitShockStrengths(s *Shock) {
	occ := s.Occurrences(g.n)
	s.Strength = make([]float64, occ)
	// Explicit copy, never append: when g.shocks has spare capacity an
	// append would write the candidate into the live backing array, where
	// later appends to the accepted-shock set would resurrect it.
	working := make([]Shock, len(g.shocks)+1)
	copy(working, g.shocks)
	working[len(working)-1] = *s
	self := &working[len(working)-1]
	// ε(t) cache: one full build up front, then only the perturbed
	// occurrence's window is re-derived per objective evaluation (and once
	// more when its fitted strength is committed, so the profile stays
	// current for the next occurrence).
	g.epsBuf = epsilonFromShocksInto(g.epsBuf, working, g.n)
	// Checkpointed simulation: occurrences are fitted in time order and
	// Strength[m] only perturbs ε(t) inside its own window, so the state
	// entering the window never depends on the value being searched. The
	// shared state advances monotonically to each window start; per golden
	// evaluation only [wstart, wend) is re-simulated from a copy of the
	// checkpoint — bit-identical to the full re-simulation this replaces
	// (simState.tick matches SimulateInto exactly; see batch.go).
	g.simBuf = ensureLen(g.simBuf, g.n)
	ckpt := newSimState(&g.params, g.n, -1)
	for m := 0; m < occ; m++ {
		if g.cancelled() {
			break
		}
		// SSE over the window influenced by occurrence m: from its start to
		// the next occurrence (or a decay horizon for the last one).
		wstart := s.OccurrenceStart(m)
		wend := g.n
		if s.Period > 0 && wstart+s.Period < g.n {
			wend = wstart + s.Period
		} else if wstart+4*s.Width+16 < g.n {
			wend = wstart + 4*s.Width + 16
		}
		ohi := wstart + s.Width
		ckpt.advance(g.simBuf, g.epsBuf, wstart)
		obj := func(str float64) float64 {
			self.Strength[m] = str
			rebuildEpsilonWindow(g.epsBuf, working, wstart, ohi)
			win := ckpt
			win.advance(g.simBuf, g.epsBuf, wend)
			return stats.SSE(g.seq[wstart:wend], g.simBuf[wstart:wend])
		}
		strength, _, _ := optimize.GoldenCtx(g.ctx, obj, 0, 60, 1e-3, 60)
		if strength < 1e-3 {
			strength = 0
		}
		self.Strength[m] = strength
		rebuildEpsilonWindow(g.epsBuf, working, wstart, ohi)
	}
	s.Strength = append(s.Strength[:0], self.Strength...)
}

// refineStrengths jointly polishes all occurrence strengths with LM after
// greedy discovery, which corrects for interactions between nearby shocks.
func (g *gfit) refineStrengths() {
	var idx [][2]int // (shock, occurrence) for each parameter
	var p0 []float64
	for si := range g.shocks {
		for m, v := range g.shocks[si].Strength {
			if v > 0 {
				idx = append(idx, [2]int{si, m})
				p0 = append(p0, v)
			}
		}
	}
	if len(p0) == 0 {
		return
	}
	lo := make([]float64, len(p0))
	hi := make([]float64, len(p0))
	for i := range hi {
		hi[i] = maxShockStrength
	}
	resid := func(dst, p []float64) []float64 {
		for i, id := range idx {
			g.shocks[id[0]].Strength[id[1]] = p[i]
		}
		g.epsBuf = epsilonFromShocksInto(g.epsBuf, g.shocks, g.n)
		g.simBuf = SimulateInto(g.simBuf, &g.params, g.n, g.epsBuf, -1)
		return residualsInto(dst, g.seq, g.simBuf)
	}
	specs := make([]SensSpec, len(idx))
	for i, id := range idx {
		specs[i] = StrengthSpec(&g.shocks[id[0]], id[1], g.n)
	}
	jacFn := g.sensJacobian(specs, func(v []float64) (*KeywordParams, []float64) {
		for i, id := range idx {
			g.shocks[id[0]].Strength[id[1]] = v[i]
		}
		g.epsBuf = epsilonFromShocksInto(g.epsBuf, g.shocks, g.n)
		return &g.params, g.epsBuf
	})
	res, err := g.lmFit(resid, p0, g.lmOpts(60, lo, hi, jacFn))
	if err != nil {
		resid(nil, p0) // restore
		return
	}
	resid(nil, res.Params)
}

// maskedBaseParams fits the base parameters against the sequence with the
// shock's occurrence windows (plus a decay margin) masked out, so the base
// has to explain only the off-event baseline.
func (g *gfit) maskedBaseParams(s *Shock) KeywordParams {
	seqMasked := append([]float64(nil), g.seq...)
	for m := 0; m < len(s.Strength); m++ {
		start := s.OccurrenceStart(m) - 1
		end := s.OccurrenceStart(m) + s.Width + 4
		for t := start; t < end && t < g.n; t++ {
			if t >= 0 {
				seqMasked[t] = tensor.Missing
			}
		}
	}
	subOpts := g.opts
	subOpts.Progress = nil // inner helper fit: no stage events of its own
	sub := &gfit{seq: seqMasked, n: g.n, keyword: g.keyword, opts: subOpts, ctx: g.ctx}
	sub.params = KeywordParams{TEta: g.params.TEta, Eta0: g.params.Eta0}
	sub.fitBaseIter(true, 40, true)
	g.lmIters += sub.lmIters
	g.lmStalls += sub.lmStalls
	return sub.params
}

// sortShocks orders shocks deterministically (keyword, start, period).
func sortShocks(shocks []Shock) {
	sort.Slice(shocks, func(a, b int) bool {
		if shocks[a].Keyword != shocks[b].Keyword {
			return shocks[a].Keyword < shocks[b].Keyword
		}
		if shocks[a].Start != shocks[b].Start {
			return shocks[a].Start < shocks[b].Start
		}
		return shocks[a].Period < shocks[b].Period
	})
}
