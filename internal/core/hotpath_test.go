package core

import (
	"testing"

	"dspot/internal/tensor"
)

// The into-variants introduced by the hot-path pass are memory plumbing,
// not new algorithms: every one of them must be bit-identical to the
// allocating implementation it shadows. These tests pin that down, so a
// future "optimisation" that reorders a float accumulation fails loudly
// instead of silently drifting the fitted models.

func hotpathParams() KeywordParams {
	return KeywordParams{N: 120, Beta: 0.6, Delta: 0.35, Gamma: 0.9, I0: 0.01, TEta: NoGrowth}
}

// Two cyclic shocks with overlapping occurrence windows plus a one-off that
// lands inside one of them: the accumulation order over shared ticks is
// exactly what rebuildEpsilonWindow must reproduce.
func hotpathShocks() []Shock {
	return []Shock{
		{Keyword: 0, Period: 20, Start: 10, Width: 6, Strength: []float64{3.5, 2.25, 4.125, 1.75, 2.5}},
		{Keyword: 0, Period: 20, Start: 13, Width: 5, Strength: []float64{1.1, 0.7, 2.3, 0.9, 1.6}},
		{Keyword: 0, Period: NonCyclic, Start: 31, Width: 4, Strength: []float64{5.5}},
	}
}

func TestSimulateIntoMatchesSimulate(t *testing.T) {
	n := 96
	eps := epsilonFromShocks(hotpathShocks(), n)
	cases := []struct {
		name string
		p    KeywordParams
		rate float64
	}{
		{"no-growth", hotpathParams(), -1},
		{"growth", KeywordParams{N: 120, Beta: 0.6, Delta: 0.35, Gamma: 0.9, I0: 0.01, Eta0: 0.02, TEta: 30}, -1},
		{"local-rate", hotpathParams(), 0.015},
	}
	for _, tc := range cases {
		want := Simulate(&tc.p, n, eps, tc.rate)

		// Fresh allocation path (nil dst).
		got := SimulateInto(nil, &tc.p, n, eps, tc.rate)
		assertBitEqual(t, tc.name+"/nil-dst", want, got)

		// Reuse path: a dirty oversized buffer must be overwritten in place.
		buf := make([]float64, n+7)
		for i := range buf {
			buf[i] = -123.456
		}
		got = SimulateInto(buf, &tc.p, n, eps, tc.rate)
		assertBitEqual(t, tc.name+"/reused-dst", want, got)
		if &got[0] != &buf[0] {
			t.Fatalf("%s: SimulateInto allocated despite sufficient capacity", tc.name)
		}
	}
}

func TestResidualsIntoMatchesResiduals(t *testing.T) {
	obs := []float64{1, tensor.Missing, 3, 4, tensor.Missing, 6}
	est := []float64{1.5, 2, 2.5, 4.25, 5, 5.5}
	want := residuals(obs, est)

	got := residualsInto(nil, obs, est)
	assertBitEqual(t, "nil-dst", want, got)

	buf := make([]float64, len(obs))
	got = residualsInto(buf, obs, est)
	assertBitEqual(t, "reused-dst", want, got)
	if &got[0] != &buf[0] {
		t.Fatal("residualsInto allocated despite sufficient capacity")
	}
}

func TestEpsilonFromShocksIntoReuse(t *testing.T) {
	shocks := hotpathShocks()
	n := 96
	want := epsilonFromShocks(shocks, n)

	buf := make([]float64, n)
	for i := range buf {
		buf[i] = 99
	}
	got := epsilonFromShocksInto(buf, shocks, n)
	assertBitEqual(t, "reused-dst", want, got)
	if &got[0] != &buf[0] {
		t.Fatal("epsilonFromShocksInto allocated despite sufficient capacity")
	}
}

// rebuildEpsilonWindow is the ε(t)-caching workhorse: after a single
// occurrence strength changes, rebuilding only that occurrence's window
// must leave the whole profile bit-identical to a from-scratch rebuild —
// including ticks where overlapping occurrences of *other* shocks
// contribute, since float addition is not associative.
func TestRebuildEpsilonWindowMatchesFullRebuild(t *testing.T) {
	shocks := hotpathShocks()
	n := 96
	eps := epsilonFromShocks(shocks, n)

	perturb := []struct{ si, occ int }{
		{0, 2}, // overlaps shock 1's windows
		{1, 1}, // overlaps shock 0's windows
		{2, 0}, // one-off inside shock 0/1 territory
		{0, 4}, // last occurrence, window clipped by n? (start 90, width 6)
	}
	for _, pb := range perturb {
		s := &shocks[pb.si]
		s.Strength[pb.occ] *= 1.37
		lo := s.OccurrenceStart(pb.occ)
		hi := lo + s.Width
		rebuildEpsilonWindow(eps, shocks, lo, hi)
		want := epsilonFromShocks(shocks, n)
		assertBitEqual(t, "after-perturb", want, eps)
	}

	// Out-of-range windows must clamp, not panic.
	rebuildEpsilonWindow(eps, shocks, -5, n+10)
	assertBitEqual(t, "clamped-window", epsilonFromShocks(shocks, n), eps)
}

// The allocation gates of the tentpole, at the figure benchmarks' sequence
// length: SimulateInto with an adequate buffer allocates nothing, and the
// allocating Simulate wrapper costs exactly its one output slice.
func TestSimulateAllocationGates(t *testing.T) {
	const n = 576
	p := hotpathParams()
	eps := make([]float64, n)
	for i := range eps {
		eps[i] = 1
	}
	dst := make([]float64, n)

	if a := testing.AllocsPerRun(50, func() {
		SimulateInto(dst, &p, n, eps, -1)
	}); a != 0 {
		t.Fatalf("SimulateInto with adequate dst: %.0f allocs/op, want 0", a)
	}
	if a := testing.AllocsPerRun(50, func() {
		Simulate(&p, n, eps, -1)
	}); a > 1 {
		t.Fatalf("Simulate at n=%d: %.0f allocs/op, want <= 1", n, a)
	}
}

func assertBitEqual(t *testing.T, label string, want, got []float64) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: length %d != %d", label, len(got), len(want))
	}
	for i := range want {
		wi, gi := want[i], got[i]
		if wi != gi && !(wi != wi && gi != gi) { // NaN == NaN for our purposes
			t.Fatalf("%s: index %d: got %x, want %x", label, i, gi, wi)
		}
	}
}
