package core

import (
	"math"
	"math/rand"
	"testing"

	"dspot/internal/stats"
	"dspot/internal/tensor"
)

// synthGlobal builds a ground-truth global sequence from the model family
// itself plus observation noise scaled to the clean signal's peak.
func synthGlobal(p KeywordParams, shocks []Shock, n int, noise float64, seed int64) []float64 {
	eps := epsilonFromShocks(shocks, n)
	out := Simulate(&p, n, eps, -1)
	peak := stats.Max(out)
	if peak <= 0 {
		peak = 1
	}
	rng := rand.New(rand.NewSource(seed))
	for i := range out {
		out[i] += rng.NormFloat64() * noise * peak
		if out[i] < 0 {
			out[i] = 0
		}
	}
	return out
}

var truthBase = KeywordParams{N: 100, Beta: 0.5, Delta: 0.45, Gamma: 0.5, I0: 0.02, TEta: NoGrowth}

func TestFitGlobalSequenceBaseOnly(t *testing.T) {
	obs := synthGlobal(truthBase, nil, 300, 0.005, 1)
	res, err := FitGlobalSequence(obs, 0, FitOptions{DisableGrowth: true, DisableShocks: true})
	if err != nil {
		t.Fatal(err)
	}
	m := &Model{Keywords: []string{"k"}, Ticks: 300, Global: []KeywordParams{res.Params}}
	fit := m.SimulateGlobal(0, 300)
	if r := stats.RMSE(obs, fit); r > 0.05*stats.Max(obs) {
		t.Fatalf("base-only RMSE %g of peak %g (params %+v)", r, stats.Max(obs), res.Params)
	}
}

func TestFitGlobalSequenceRecoversAnnualShock(t *testing.T) {
	truth := truthBase
	shocks := []Shock{{Keyword: 0, Period: 52, Start: 20, Width: 2,
		Strength: []float64{8, 8, 8, 8, 8}}}
	n := 52*5 + 30
	obs := synthGlobal(truth, shocks, n, 0.005, 2)
	res, err := FitGlobalSequence(obs, 0, FitOptions{DisableGrowth: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Shocks) == 0 {
		t.Fatal("no shocks detected")
	}
	// The dominant shock should be cyclic with period ≈ 52 and phase ≈ 20.
	s := res.Shocks[0]
	if s.Period < 45 || s.Period > 60 {
		t.Fatalf("detected period %d, want ≈52 (shock %+v)", s.Period, s)
	}
	phaseGot, phaseWant := s.Start%52, 20
	diff := (phaseGot - phaseWant + 52) % 52
	if diff > 4 && diff < 48 {
		t.Fatalf("detected phase %d, want ≈20", phaseGot)
	}
	m := &Model{Keywords: []string{"k"}, Ticks: n, Global: []KeywordParams{res.Params}, Shocks: res.Shocks}
	if r := stats.RMSE(obs, m.SimulateGlobal(0, n)); r > 0.08*stats.Max(obs) {
		t.Fatalf("annual-shock fit RMSE %g of peak %g", r, stats.Max(obs))
	}
}

func TestFitGlobalSequenceRecoversGrowth(t *testing.T) {
	truth := truthBase
	truth.TEta, truth.Eta0 = 200, 0.4
	obs := synthGlobal(truth, nil, 400, 0.005, 3)
	res, err := FitGlobalSequence(obs, 0, FitOptions{DisableShocks: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Params.HasGrowth() {
		t.Fatalf("growth not detected: %+v", res.Params)
	}
	if res.Params.TEta < 170 || res.Params.TEta > 230 {
		t.Fatalf("growth onset %d, want ≈200", res.Params.TEta)
	}
}

func TestFitGlobalSequenceNoFalseGrowth(t *testing.T) {
	obs := synthGlobal(truthBase, nil, 300, 0.01, 4)
	res, err := FitGlobalSequence(obs, 0, FitOptions{DisableShocks: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Params.HasGrowth() && res.Params.Eta0 > 0.15 {
		t.Fatalf("spurious growth detected: %+v", res.Params)
	}
}

func TestFitGlobalSequenceNonCyclicSpike(t *testing.T) {
	truth := truthBase
	shocks := []Shock{{Keyword: 0, Period: NonCyclic, Start: 150, Width: 2, Strength: []float64{12}}}
	obs := synthGlobal(truth, shocks, 300, 0.005, 5)
	res, err := FitGlobalSequence(obs, 0, FitOptions{DisableGrowth: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Shocks) == 0 {
		t.Fatal("spike not detected")
	}
	found := false
	for _, s := range res.Shocks {
		if s.OccurrenceAt(150) >= 0 || s.OccurrenceAt(151) >= 0 ||
			(s.Start >= 146 && s.Start <= 154) {
			found = true
		}
	}
	if !found {
		t.Fatalf("no detected shock covers tick 150: %+v", res.Shocks)
	}
}

func TestFitGlobalSequenceFlatSeriesNoShocks(t *testing.T) {
	obs := make([]float64, 200)
	rng := rand.New(rand.NewSource(6))
	for i := range obs {
		obs[i] = 50 + rng.NormFloat64()
	}
	res, err := FitGlobalSequence(obs, 0, FitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Shocks) > 1 {
		t.Fatalf("flat noise produced %d shocks", len(res.Shocks))
	}
}

func TestFitGlobalSequenceTooShort(t *testing.T) {
	if _, err := FitGlobalSequence([]float64{1, 2, 3}, 0, FitOptions{}); err == nil {
		t.Fatal("short sequence accepted")
	}
}

func TestFitGlobalSequenceWithMissing(t *testing.T) {
	truth := truthBase
	obs := synthGlobal(truth, nil, 300, 0.005, 7)
	for i := 30; i < 300; i += 17 {
		obs[i] = tensor.Missing
	}
	res, err := FitGlobalSequence(obs, 0, FitOptions{DisableGrowth: true, DisableShocks: true})
	if err != nil {
		t.Fatal(err)
	}
	m := &Model{Keywords: []string{"k"}, Ticks: 300, Global: []KeywordParams{res.Params}}
	if r := stats.RMSE(obs, m.SimulateGlobal(0, 300)); r > 0.06*stats.Max(obs) {
		t.Fatalf("missing-data fit RMSE %g", r)
	}
}

func TestFitEndToEndSmallTensor(t *testing.T) {
	// 2 keywords × 3 locations with different local scales and a shock that
	// only location 0 participates in for keyword 0.
	n := 160
	kw := []string{"alpha", "beta"}
	loc := []string{"US", "JP", "BR"}
	x := tensor.New(kw, loc, n)
	rng := rand.New(rand.NewSource(8))

	shock := Shock{Keyword: 0, Period: NonCyclic, Start: 80, Width: 2, Strength: []float64{10}}
	weights := [][]float64{{60, 30, 10}, {20, 20, 20}}
	for i := range kw {
		for j := range loc {
			p := truthBase
			p.N = weights[i][j]
			var eps []float64
			if i == 0 && j == 0 {
				eps = epsilonFromShocks([]Shock{shock}, n)
			}
			sim := Simulate(&p, n, eps, -1)
			for t1 := 0; t1 < n; t1++ {
				v := sim[t1] + rng.NormFloat64()*0.3
				if v < 0 {
					v = 0
				}
				x.Set(i, j, t1, v)
			}
		}
	}

	model, err := Fit(x, FitOptions{DisableGrowth: true, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if model.LocalN == nil || model.LocalR == nil {
		t.Fatal("local matrices not fitted")
	}
	// Local populations must reflect the 6:3:1 weighting of keyword 0.
	if !(model.LocalN[0][0] > model.LocalN[0][1] && model.LocalN[0][1] > model.LocalN[0][2]) {
		t.Fatalf("LocalN ordering wrong: %v", model.LocalN[0])
	}
	// Local fits must be accurate.
	for i := range kw {
		for j := range loc {
			obs := x.Local(i, j)
			fit := model.SimulateLocal(i, j, n)
			if r := stats.RMSE(obs, fit); r > 0.15*stats.Max(obs)+0.5 {
				t.Fatalf("local fit (%d,%d) RMSE %g of peak %g", i, j, r, stats.Max(obs))
			}
		}
	}
	// The shock should be localised to location 0 when fitted locally.
	for _, s := range model.ShocksFor(0) {
		if s.Local == nil {
			t.Fatal("shock local matrix missing")
		}
		if s.OccurrenceAt(80) < 0 && s.OccurrenceAt(81) < 0 {
			continue
		}
		occ := s.OccurrenceAt(80)
		if occ < 0 {
			occ = s.OccurrenceAt(81)
		}
		if s.Local[occ][0] <= s.Local[occ][2] {
			t.Fatalf("shock participation not localised: %v", s.Local[occ])
		}
	}
}

func TestFitGlobalOnlySkipsLocal(t *testing.T) {
	n := 120
	x := tensor.New([]string{"a"}, []string{"X", "Y"}, n)
	for j := 0; j < 2; j++ {
		p := truthBase
		p.N = 50
		sim := Simulate(&p, n, nil, -1)
		for t1 := range sim {
			x.Set(0, j, t1, sim[t1])
		}
	}
	m, err := FitGlobal(x, FitOptions{DisableGrowth: true, DisableShocks: true})
	if err != nil {
		t.Fatal(err)
	}
	if m.LocalN != nil {
		t.Fatal("FitGlobal should not fill local matrices")
	}
	if err := FitLocal(x, m, FitOptions{}); err != nil {
		t.Fatal(err)
	}
	if m.LocalN == nil {
		t.Fatal("FitLocal did not fill local matrices")
	}
}

func TestFitLocalDimensionMismatch(t *testing.T) {
	x := tensor.New([]string{"a"}, []string{"X"}, 50)
	m := &Model{Keywords: []string{"a"}, Locations: []string{"X"}, Ticks: 40,
		Global: make([]KeywordParams, 1)}
	if err := FitLocal(x, m, FitOptions{}); err == nil {
		t.Fatal("tick mismatch accepted")
	}
}

func TestFitRejectsInvalidTensor(t *testing.T) {
	x := tensor.New([]string{"a"}, []string{"X"}, 50)
	x.Set(0, 0, 0, -5)
	if _, err := Fit(x, FitOptions{}); err == nil {
		t.Fatal("invalid tensor accepted")
	}
}

func TestFitDeterministic(t *testing.T) {
	truth := truthBase
	shocks := []Shock{{Keyword: 0, Period: 52, Start: 20, Width: 2, Strength: []float64{8, 8, 8}}}
	obs := synthGlobal(truth, shocks, 170, 0.01, 9)
	a, err := FitGlobalSequence(obs, 0, FitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := FitGlobalSequence(obs, 0, FitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Params != b.Params || len(a.Shocks) != len(b.Shocks) {
		t.Fatalf("fit not deterministic: %+v vs %+v", a.Params, b.Params)
	}
	if math.Abs(a.Cost-b.Cost) > 1e-12 {
		t.Fatalf("cost not deterministic: %g vs %g", a.Cost, b.Cost)
	}
}

func TestTotalCostDecreasesWithBetterModel(t *testing.T) {
	n := 160
	x := tensor.New([]string{"a"}, []string{"X"}, n)
	p := truthBase
	p.N = 80
	shock := Shock{Keyword: 0, Period: NonCyclic, Start: 80, Width: 2, Strength: []float64{10}}
	sim := Simulate(&p, n, epsilonFromShocks([]Shock{shock}, n), -1)
	for t1 := range sim {
		x.Set(0, 0, t1, sim[t1])
	}

	flat := &Model{Keywords: x.Keywords, Locations: x.Locations, Ticks: n,
		Global: []KeywordParams{{N: 1, Beta: 0.1, Delta: 0.5, Gamma: 0.1, I0: 0.001, TEta: NoGrowth}}}
	good, err := Fit(x, FitOptions{DisableGrowth: true})
	if err != nil {
		t.Fatal(err)
	}
	if good.TotalCost(x) >= flat.TotalCost(x) {
		t.Fatalf("fitted cost %g not below strawman cost %g",
			good.TotalCost(x), flat.TotalCost(x))
	}
}
