package core

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dspot/internal/tensor"
)

func TestFitGlobalSequenceCancelMidFitReturnsPromptly(t *testing.T) {
	seq := grammyLike(420, 31)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// Cancel from inside the fit, right after the first base round: the
	// expensive shock discovery is still ahead, so a fit that ignores the
	// context would keep running for a long time.
	var once sync.Once
	var cancelledAt atomic.Int64
	opts := FitOptions{DisableGrowth: true, Context: ctx}
	opts.Progress = func(ev FitEvent) {
		if ev.Stage == StageBase {
			once.Do(func() {
				cancelledAt.Store(time.Now().UnixNano())
				cancel()
			})
		}
	}
	res, err := FitGlobalSequence(seq, 0, opts)
	returned := time.Now().UnixNano()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res.Params != (KeywordParams{}) || res.Shocks != nil {
		t.Fatalf("cancelled fit leaked a partial result: %+v", res)
	}
	at := cancelledAt.Load()
	if at == 0 {
		t.Fatal("fit finished without emitting a base event")
	}
	// "Within one LM iteration" on a 420-tick series is milliseconds; allow
	// a generous margin for slow CI machines.
	if lag := time.Duration(returned - at); lag > 5*time.Second {
		t.Fatalf("fit took %v to stop after cancel", lag)
	}
}

func TestFitCtxPreCancelledReturnsImmediately(t *testing.T) {
	x := tensor.New([]string{"a", "b"}, []string{"x"}, 120)
	for i := 0; i < 2; i++ {
		seq := grammyLike(120, int64(40+i))
		for ti, v := range seq {
			x.Set(i, 0, ti, v)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	m, err := FitCtx(ctx, x, FitOptions{Workers: 2})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if m != nil {
		t.Fatalf("cancelled fit returned a model")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("pre-cancelled fit still ran for %v", elapsed)
	}
}

func TestFitCancelDuringLocalPhase(t *testing.T) {
	const n = 140
	x := tensor.New([]string{"a"}, []string{"x", "y", "z"}, n)
	seq := grammyLike(n, 42)
	for j := 0; j < 3; j++ {
		for ti, v := range seq {
			x.Set(0, j, ti, v*(1+0.2*float64(j)))
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var once sync.Once
	opts := FitOptions{Workers: 1, DisableGrowth: true, Context: ctx}
	opts.Progress = func(ev FitEvent) {
		if ev.Stage == StageLocalCell {
			once.Do(cancel) // global phase done; cancel mid-local
		}
	}
	_, err := Fit(x, opts)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestStreamAppendFailedRefitKeepsResult is the regression for Append
// clobbering the warm-start state: a refit that fails must leave the last
// good fit (and hence Model/Forecast and the next warm start) untouched.
func TestStreamAppendFailedRefitKeepsResult(t *testing.T) {
	full := grammyLike(340, 33)
	s := NewStream(FitOptions{DisableGrowth: true}, 40)
	if _, err := s.Append(full[:260]...); err != nil {
		t.Fatal(err)
	}
	if !s.Ready() {
		t.Fatal("stream not fitted after first append")
	}
	before := s.Model()

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // force the triggered refit to fail
	refitted, err := s.AppendCtx(ctx, full[260:300]...)
	if refitted || !errors.Is(err, context.Canceled) {
		t.Fatalf("AppendCtx = (%v, %v), want failed refit", refitted, err)
	}
	if s.Len() != 300 {
		t.Fatalf("appended ticks dropped: len = %d, want 300", s.Len())
	}
	if !s.Ready() {
		t.Fatal("stream lost its fit after a failed refit")
	}
	after := s.Model()
	if after == nil {
		t.Fatal("Model() = nil after failed refit")
	}
	if err := after.Validate(); err != nil {
		t.Fatalf("model corrupted by failed refit: %v", err)
	}
	if after.Global[0] != before.Global[0] {
		t.Fatalf("warm-start params clobbered: %+v -> %+v", before.Global[0], after.Global[0])
	}
	if len(after.Shocks) != len(before.Shocks) {
		t.Fatalf("shocks clobbered: %d -> %d", len(before.Shocks), len(after.Shocks))
	}
	if s.Forecast(8) == nil {
		t.Fatal("Forecast = nil after failed refit")
	}

	// The next trigger with a live context retries and succeeds.
	refitted, err = s.Append(full[300:]...)
	if err != nil {
		t.Fatal(err)
	}
	if !refitted {
		t.Fatal("refit not retried after the failed one")
	}
}

// TestFitShockStrengthsDoesNotClobberBacking is the regression for the
// candidate-evaluation aliasing bug: building the working set with append
// could write the candidate into spare capacity of the accepted-shock
// slice's backing array, corrupting a shock a later append would expose.
func TestFitShockStrengthsDoesNotClobberBacking(t *testing.T) {
	seq := grammyLike(160, 35)
	norm, _ := tensor.Normalize(seq)
	g := &gfit{seq: norm, n: len(norm), opts: FitOptions{}.withDefaults(),
		params: truthBase}
	backing := make([]Shock, 2)
	backing[0] = Shock{Keyword: 0, Period: NonCyclic, Start: 10, Width: 2,
		Strength: []float64{3}}
	sentinel := Shock{Keyword: 0, Period: NonCyclic, Start: 120, Width: 1,
		Strength: []float64{7}}
	backing[1] = sentinel
	g.shocks = backing[:1] // spare capacity holds the sentinel

	cand := Shock{Keyword: 0, Period: 52, Start: 6, Width: 2}
	g.fitShockStrengths(&cand)

	if backing[1].Period != sentinel.Period || backing[1].Start != sentinel.Start ||
		backing[1].Width != sentinel.Width {
		t.Fatalf("candidate leaked into the live backing array: %+v", backing[1])
	}
	if len(cand.Strength) != cand.Occurrences(g.n) {
		t.Fatalf("candidate strengths not fitted: %v", cand.Strength)
	}
}

// TestFitLocalBoundsGoroutines is the regression for the local phase
// spawning one goroutine per (keyword, location) cell up front: the worker
// pool must keep the live goroutine count near Workers, not d×l.
func TestFitLocalBoundsGoroutines(t *testing.T) {
	const n = 90
	d, l := 2, 30
	keywords := []string{"a", "b"}
	locations := make([]string, l)
	for j := range locations {
		locations[j] = string(rune('A' + j))
	}
	x := tensor.New(keywords, locations, n)
	for i := 0; i < d; i++ {
		seq := grammyLike(n, int64(50+i))
		for j := 0; j < l; j++ {
			for ti, v := range seq {
				x.Set(i, j, ti, v*(1+0.01*float64(j)))
			}
		}
	}
	gopts := FitOptions{Workers: 2, DisableGrowth: true, DisableShocks: true}
	m, err := FitGlobal(x, gopts)
	if err != nil {
		t.Fatal(err)
	}
	base := int64(runtime.NumGoroutine())
	var peak atomic.Int64
	opts := gopts
	opts.Progress = func(ev FitEvent) {
		if ev.Stage != StageLocalCell {
			return
		}
		// Sampled from inside a worker while cells are in flight: with the
		// old spawn-all implementation this sees ~d×l live goroutines.
		g := int64(runtime.NumGoroutine())
		for {
			cur := peak.Load()
			if g <= cur || peak.CompareAndSwap(cur, g) {
				break
			}
		}
	}
	if err := FitLocal(x, m, opts); err != nil {
		t.Fatal(err)
	}
	if extra := peak.Load() - base; extra > 10 {
		t.Fatalf("local fit of %d cells with Workers=2 ran %d extra goroutines", d*l, extra)
	}
}
