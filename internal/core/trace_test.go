package core

import (
	"strings"
	"sync"
	"testing"

	"dspot/internal/tensor"
)

// traceTestTensor builds a small tensor from the model family itself: an
// annual shock on top of the canonical base dynamics, split across
// locations with fixed weights.
func traceTestTensor(locations int, n int, seed int64) *tensor.Tensor {
	shocks := []Shock{{Keyword: 0, Period: 52, Start: 20, Width: 2,
		Strength: []float64{8, 8, 8, 8, 8}}}
	obs := synthGlobal(truthBase, shocks, n, 0.005, seed)
	locNames := make([]string, locations)
	for j := range locNames {
		locNames[j] = string(rune('A' + j))
	}
	x := tensor.New([]string{"k"}, locNames, n)
	total := float64(locations*(locations+1)) / 2
	for j := 0; j < locations; j++ {
		w := float64(j+1) / total
		for t := 0; t < n; t++ {
			x.Set(0, j, t, obs[t]*w)
		}
	}
	return x
}

// TestFitWithReport exercises the full traced pipeline and checks the
// report is populated coherently.
func TestFitWithReport(t *testing.T) {
	x := traceTestTensor(3, 52*5+30, 11)
	m, rep, err := FitWithReport(x, FitOptions{Workers: 2, DisableGrowth: true})
	if err != nil {
		t.Fatal(err)
	}
	if m == nil || rep == nil {
		t.Fatal("nil model or report")
	}
	if rep.Keywords != 1 {
		t.Fatalf("report keywords %d, want 1", rep.Keywords)
	}
	if rep.LMIterations <= 0 {
		t.Fatalf("no LM iterations recorded: %+v", rep)
	}
	if rep.ShocksTried < rep.ShocksAccepted {
		t.Fatalf("tried %d < accepted %d", rep.ShocksTried, rep.ShocksAccepted)
	}
	if rep.ShocksAccepted == 0 {
		t.Fatal("no shocks accepted on a shock-bearing series")
	}
	if rep.GlobalDuration <= 0 || rep.LocalDuration <= 0 {
		t.Fatalf("phase durations not recorded: %+v", rep)
	}
	if want := 1 * 3; rep.LocalCells != want {
		t.Fatalf("local cells %d, want %d", rep.LocalCells, want)
	}
	if rep.StageDurations[StageBase] <= 0 {
		t.Fatalf("no base-stage time: %v", rep.StageDurations)
	}
	if len(rep.PerKeyword) != 1 || rep.PerKeyword[0].LMIterations != rep.LMIterations {
		t.Fatalf("per-keyword stats wrong: %+v", rep.PerKeyword)
	}

	out := rep.String()
	for _, want := range []string{"fit report:", "LM iterations", "phases: global", "keyword 0"} {
		if !strings.Contains(out, want) {
			t.Errorf("report String() missing %q:\n%s", want, out)
		}
	}
}

// TestProgressHookEvents checks raw event flow: stage names, keyword
// indices, and that shock events carry their candidate.
func TestProgressHookEvents(t *testing.T) {
	x := traceTestTensor(2, 52*5+30, 7)
	var mu sync.Mutex
	byStage := map[string]int{}
	var shockEv []FitEvent
	opts := FitOptions{Workers: 2, DisableGrowth: true, Progress: func(ev FitEvent) {
		mu.Lock()
		defer mu.Unlock()
		byStage[ev.Stage]++
		if ev.Stage == StageShock {
			shockEv = append(shockEv, ev)
		}
	}}
	if _, err := FitGlobal(x, opts); err != nil {
		t.Fatal(err)
	}
	if byStage[StageBase] == 0 || byStage[StageKeyword] != 1 || byStage[StageGlobal] != 1 {
		t.Fatalf("stage counts: %v", byStage)
	}
	if byStage[StageShock] == 0 {
		t.Fatalf("no shock events on a shock-bearing series: %v", byStage)
	}
	for _, ev := range shockEv {
		if ev.Shock == nil {
			t.Fatal("shock event without candidate")
		}
		if ev.Keyword != 0 {
			t.Fatalf("shock event keyword %d", ev.Keyword)
		}
		if ev.Accepted && ev.CostDelta >= 0 {
			t.Fatalf("accepted shock with non-negative cost delta: %+v", ev)
		}
	}
}

// TestNilProgressUnchanged guards the observe-only contract: a traced run
// must produce the same model as an untraced one.
func TestNilProgressUnchanged(t *testing.T) {
	x := traceTestTensor(2, 52*4+20, 5)
	plain, err := FitGlobal(x, FitOptions{Workers: 1, DisableGrowth: true})
	if err != nil {
		t.Fatal(err)
	}
	traced, _, err := FitGlobalWithReport(x, FitOptions{Workers: 1, DisableGrowth: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.Shocks) != len(traced.Shocks) {
		t.Fatalf("tracing changed the fit: %d vs %d shocks",
			len(plain.Shocks), len(traced.Shocks))
	}
	for i := range plain.Global {
		if plain.Global[i] != traced.Global[i] {
			t.Fatalf("tracing changed keyword %d params: %+v vs %+v",
				i, plain.Global[i], traced.Global[i])
		}
	}
}

// TestFitTraceConcurrent hammers one collector from many goroutines.
func TestFitTraceConcurrent(t *testing.T) {
	tr := NewFitTrace()
	hook := tr.Hook()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				hook(FitEvent{Stage: StageShock, Keyword: w, Accepted: i%2 == 0})
			}
		}(w)
	}
	wg.Wait()
	rep := tr.Report()
	if rep.ShocksTried != 4000 || rep.ShocksAccepted != 2000 {
		t.Fatalf("tried %d accepted %d, want 4000/2000", rep.ShocksTried, rep.ShocksAccepted)
	}
	if len(rep.PerKeyword) != 8 {
		t.Fatalf("per-keyword entries %d, want 8", len(rep.PerKeyword))
	}
}
