package core

import (
	"math/rand"
	"sort"
)

// Forecast uncertainty: Δ-SPOT's point forecast extrapolates the fitted
// dynamics, but users deciding on capacity or alerting thresholds need a
// range. ForecastBands produces Monte-Carlo prediction intervals by
// bootstrap-resampling the training residuals onto simulated trajectories
// whose future occurrence strengths are themselves jittered by the spread
// of the observed occurrence strengths. This is an extension beyond the
// paper (documented in DESIGN.md); the point forecast is unchanged.

// Band holds per-tick forecast quantiles.
type Band struct {
	Lower  []float64 // lower quantile trajectory
	Median []float64
	Upper  []float64 // upper quantile trajectory
}

// ForecastBands returns (lower, median, upper) quantile trajectories for an
// h-tick forecast of keyword i, from nSim bootstrap trajectories at the
// given coverage (e.g., 0.8 → 10%/90% quantiles). obs supplies the training
// observations for residual resampling; seed makes the bands reproducible.
func (m *Model) ForecastBands(i, h int, obs []float64, nSim int, coverage float64, seed int64) Band {
	if h <= 0 || nSim <= 0 {
		return Band{}
	}
	if coverage <= 0 || coverage >= 1 {
		coverage = 0.8
	}
	rng := rand.New(rand.NewSource(seed))

	// Training residuals for bootstrap noise.
	fit := m.SimulateGlobal(i, m.Ticks)
	var residPool []float64
	n := m.Ticks
	if len(obs) < n {
		n = len(obs)
	}
	for t := 0; t < n; t++ {
		if obs[t] != obs[t] || fit[t] != fit[t] { // NaN guards
			continue
		}
		residPool = append(residPool, obs[t]-fit[t])
	}
	if len(residPool) == 0 {
		residPool = []float64{0}
	}

	// Occurrence-strength spread per cyclic shock, for future-strength
	// jitter.
	var shocks []Shock
	var strengths [][]float64
	for _, s := range m.Shocks {
		if s.Keyword != i {
			continue
		}
		shocks = append(shocks, s)
		strengths = append(strengths, s.Strength)
	}

	total := m.Ticks + h
	trajectories := make([][]float64, nSim)
	for sim := 0; sim < nSim; sim++ {
		// Jitter future strengths: resample from the observed non-zero
		// occurrence strengths of each shock.
		jittered := make([][]float64, len(shocks))
		for si := range shocks {
			jittered[si] = resampleStrengths(strengths[si], rng)
		}
		eps := extendEpsilonResampled(shocks, strengths, jittered, total)
		traj := Simulate(&m.Global[i], total, eps, -1)[m.Ticks:]
		for t := range traj {
			traj[t] += residPool[rng.Intn(len(residPool))]
			if traj[t] < 0 {
				traj[t] = 0
			}
		}
		trajectories[sim] = traj
	}

	loQ := (1 - coverage) / 2
	hiQ := 1 - loQ
	band := Band{
		Lower:  make([]float64, h),
		Median: make([]float64, h),
		Upper:  make([]float64, h),
	}
	col := make([]float64, nSim)
	for t := 0; t < h; t++ {
		for sim := range trajectories {
			col[sim] = trajectories[sim][t]
		}
		sort.Float64s(col)
		band.Lower[t] = quantileSorted(col, loQ)
		band.Median[t] = quantileSorted(col, 0.5)
		band.Upper[t] = quantileSorted(col, hiQ)
	}
	return band
}

// resampleStrengths draws a per-occurrence strength sample from the
// observed non-zero strengths (returning the original mean when none).
func resampleStrengths(observed []float64, rng *rand.Rand) []float64 {
	var pool []float64
	for _, v := range observed {
		if v > 0 {
			pool = append(pool, v)
		}
	}
	if len(pool) == 0 {
		return nil
	}
	// One draw is enough: all future occurrences of a trajectory share it,
	// which models "how strong will next year's event be" rather than
	// independent per-year noise.
	draw := pool[rng.Intn(len(pool))]
	return []float64{draw}
}

// extendEpsilonResampled is extendEpsilon with per-trajectory future
// strengths.
func extendEpsilonResampled(shocks []Shock, observed, jittered [][]float64, total int) []float64 {
	eps := make([]float64, total)
	for t := range eps {
		eps[t] = 1
	}
	for si := range shocks {
		s := &shocks[si]
		addShockProfile(eps, s, observed[si])
		if s.Period <= 0 {
			continue
		}
		future := 0.0
		if len(jittered[si]) > 0 {
			future = jittered[si][0]
		}
		if future <= 0 {
			continue
		}
		for m := len(observed[si]); ; m++ {
			start := s.OccurrenceStart(m)
			if start >= total {
				break
			}
			for t := start; t < start+s.Width && t < total; t++ {
				eps[t] += future
			}
		}
	}
	return eps
}

// quantileSorted interpolates the q-quantile of an ascending slice.
func quantileSorted(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[len(sorted)-1]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}
