package core

import (
	"math"
	"testing"
)

func validModel() *Model {
	return &Model{
		Keywords:  []string{"a", "b"},
		Locations: []string{"US", "JP"},
		Ticks:     100,
		Global: []KeywordParams{
			{N: 10, Beta: 0.5, Delta: 0.4, Gamma: 0.3, I0: 0.01, TEta: NoGrowth},
			{N: 5, Beta: 0.6, Delta: 0.5, Gamma: 0.4, I0: 0.02, Eta0: 0.2, TEta: 40},
		},
		LocalN: [][]float64{{6, 4}, {3, 2}},
		LocalR: [][]float64{{0, 0}, {0.1, 0.2}},
		Shocks: []Shock{{Keyword: 0, Period: 52, Start: 10, Width: 2,
			Strength: []float64{3, 4}, Local: [][]float64{{3, 0}, {4, 2}}}},
	}
}

func TestModelValidateAccepts(t *testing.T) {
	if err := validModel().Validate(); err != nil {
		t.Fatalf("valid model rejected: %v", err)
	}
	// Local matrices are optional.
	m := validModel()
	m.LocalN, m.LocalR = nil, nil
	m.Shocks[0].Local = nil
	if err := m.Validate(); err != nil {
		t.Fatalf("global-only model rejected: %v", err)
	}
}

func TestModelValidateRejects(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Model)
	}{
		{"no keywords", func(m *Model) { m.Keywords = nil; m.Global = nil }},
		{"zero ticks", func(m *Model) { m.Ticks = 0 }},
		{"param count", func(m *Model) { m.Global = m.Global[:1] }},
		{"NaN beta", func(m *Model) { m.Global[0].Beta = math.NaN() }},
		{"negative N", func(m *Model) { m.Global[0].N = -1 }},
		{"growth onset outside", func(m *Model) { m.Global[1].TEta = 500 }},
		{"B_L rows", func(m *Model) { m.LocalN = m.LocalN[:1] }},
		{"B_L cols", func(m *Model) { m.LocalN[0] = m.LocalN[0][:1] }},
		{"negative local", func(m *Model) { m.LocalR[0][0] = -0.5 }},
		{"dangling shock keyword", func(m *Model) { m.Shocks[0].Keyword = 9 }},
		{"bad shock geometry", func(m *Model) { m.Shocks[0].Width = 0 }},
		{"shock local shape", func(m *Model) { m.Shocks[0].Local = [][]float64{{1}} }},
	}
	for _, c := range cases {
		m := validModel()
		c.mutate(m)
		if err := m.Validate(); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestFittedModelsValidate(t *testing.T) {
	// Whatever the fitter produces must pass its own validation.
	obs := synthGlobal(truthBase, []Shock{{Keyword: 0, Period: 52, Start: 20,
		Width: 2, Strength: []float64{8, 8, 8}}}, 170, 0.01, 61)
	res, err := FitGlobalSequence(obs, 0, FitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	m := &Model{Keywords: []string{"k"}, Locations: []string{"all"}, Ticks: 170,
		Global: []KeywordParams{res.Params}, Shocks: res.Shocks}
	if err := m.Validate(); err != nil {
		t.Fatalf("fitted model fails validation: %v", err)
	}
}
