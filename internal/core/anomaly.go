package core

import (
	"math"
	"sort"

	"dspot/internal/mdl"
	"dspot/internal/tensor"
)

// Temporal outlier detection (the "Outliers detection" row of the paper's
// Table 1): once the model explains base dynamics, growth, and the known
// external events, whatever sticks out of the residuals is anomalous —
// either an undetected event or corrupted data. Scores are residuals in
// units of the fitted noise σ, so a threshold of 3 has the usual reading.

// Anomaly flags one tick of one sequence.
type Anomaly struct {
	Tick  int
	Score float64 // residual / σ (signed; positive = activity above model)
	Value float64 // observed count
	Est   float64 // model estimate
}

// AnomaliesGlobal scores keyword i's global sequence against the fitted
// model and returns ticks with |score| >= threshold, ordered by |score|
// descending. Missing observations are skipped.
func (m *Model) AnomaliesGlobal(i int, obs []float64, threshold float64) []Anomaly {
	est := m.SimulateGlobal(i, m.Ticks)
	return anomalies(obs, est, threshold)
}

// AnomaliesLocal scores the (i, j) local sequence.
func (m *Model) AnomaliesLocal(i, j int, obs []float64, threshold float64) []Anomaly {
	est := m.SimulateLocal(i, j, m.Ticks)
	return anomalies(obs, est, threshold)
}

func anomalies(obs, est []float64, threshold float64) []Anomaly {
	if threshold <= 0 {
		threshold = 3
	}
	res := residuals(obs, est)
	mu, sigma2 := mdl.ResidualNoise(res)
	sigma := math.Sqrt(sigma2)
	if sigma <= 0 {
		return nil
	}
	var out []Anomaly
	for t, r := range res {
		if tensor.IsMissing(r) {
			continue
		}
		score := (r - mu) / sigma
		if math.Abs(score) >= threshold {
			out = append(out, Anomaly{Tick: t, Score: score, Value: obs[t], Est: est[t]})
		}
	}
	sort.Slice(out, func(a, b int) bool {
		sa, sb := math.Abs(out[a].Score), math.Abs(out[b].Score)
		if sa != sb {
			return sa > sb
		}
		return out[a].Tick < out[b].Tick
	})
	return out
}

// CompressionRatio returns the MDL compression achieved by the model:
// raw-coding cost of X divided by Cost_T(X; F). Values above 1 mean the
// model genuinely compresses the data — the paper's "the more we can
// compress data, the more we can detect its hidden patterns" reading.
// Raw coding charges each observation as a float plus the Gaussian cost of
// the data around its own mean (a model-free encoder).
func (m *Model) CompressionRatio(x *tensor.Tensor) float64 {
	modelCost := m.TotalCost(x)
	if modelCost <= 0 {
		return math.Inf(1)
	}
	raw := 0.0
	for i := 0; i < x.D(); i++ {
		for j := 0; j < x.L(); j++ {
			seq := x.Local(i, j)
			centered := make([]float64, len(seq))
			mean := tensor.MeanSeq(seq)
			for t, v := range seq {
				if tensor.IsMissing(v) {
					centered[t] = tensor.Missing
					continue
				}
				centered[t] = v - mean
			}
			raw += mdl.GaussianCost(centered) + mdl.FloatsCost(1)
		}
	}
	return raw / modelCost
}
