package core

import (
	"errors"
	"math"
	"strings"
	"testing"

	"dspot/internal/numcheck"
	"dspot/internal/tensor"
)

// quickOpts keeps robustness fits cheap: one worker, one outer round.
func quickOpts() FitOptions {
	return FitOptions{Workers: 1, MaxOuterIter: 1, MaxShocks: 2}
}

// bumpySeq returns a fittable synthetic series (a level plus one bump).
func bumpySeq(n int) []float64 {
	seq := make([]float64, n)
	for t := range seq {
		seq[t] = 2 + math.Sin(float64(t)/5)
		if t >= n/2 && t < n/2+3 {
			seq[t] += 6
		}
	}
	return seq
}

func TestFitGlobalSequenceRejectsInf(t *testing.T) {
	seq := bumpySeq(40)
	seq[7] = math.Inf(1)
	_, err := FitGlobalSequence(seq, 0, quickOpts())
	if !errors.Is(err, numcheck.ErrInf) {
		t.Fatalf("FitGlobalSequence with Inf: err = %v, want numcheck.ErrInf", err)
	}
}

func TestFitGlobalSequenceRejectsNegative(t *testing.T) {
	seq := bumpySeq(40)
	seq[3] = -1
	_, err := FitGlobalSequence(seq, 0, quickOpts())
	if !errors.Is(err, numcheck.ErrNegative) {
		t.Fatalf("FitGlobalSequence with negative: err = %v, want numcheck.ErrNegative", err)
	}
}

func TestContinueGlobalSequenceRejectsInf(t *testing.T) {
	seq := bumpySeq(40)
	res, err := FitGlobalSequence(seq, 0, quickOpts())
	if err != nil {
		t.Fatalf("FitGlobalSequence: %v", err)
	}
	longer := append(append([]float64(nil), seq...), math.Inf(-1))
	if _, err := ContinueGlobalSequence(longer, 0, res, quickOpts()); !errors.Is(err, numcheck.ErrInf) {
		t.Fatalf("ContinueGlobalSequence with Inf: err = %v, want numcheck.ErrInf", err)
	}
}

func TestFitGlobalValidatesTensor(t *testing.T) {
	x := tensor.New([]string{"a", "b"}, []string{"us"}, 40)
	for t0 := 0; t0 < 40; t0++ {
		x.Set(0, 0, t0, 1)
		x.Set(1, 0, t0, 1)
	}
	x.Set(1, 0, 9, math.Inf(1))
	_, err := FitGlobal(x, quickOpts())
	if !errors.Is(err, numcheck.ErrInf) {
		t.Fatalf("FitGlobal with Inf cell: err = %v, want numcheck.ErrInf", err)
	}
	if err == nil || !strings.Contains(err.Error(), `"b"`) {
		t.Fatalf("FitGlobal error %v should name the offending keyword", err)
	}
}

// NaN stays legal: it is the missing-value sentinel.
func TestFitGlobalSequenceAllowsMissing(t *testing.T) {
	seq := bumpySeq(60)
	seq[10], seq[11] = tensor.Missing, tensor.Missing
	if _, err := FitGlobalSequence(seq, 0, quickOpts()); err != nil {
		t.Fatalf("FitGlobalSequence with missing ticks: %v", err)
	}
}

// A panicking Progress hook stands in for any bug inside the fit worker:
// the panic must surface as a per-keyword error, never escape the goroutine.
func TestFitGlobalSequenceContainsPanic(t *testing.T) {
	opts := quickOpts()
	opts.Progress = func(ev FitEvent) {
		if ev.Stage == StageBase {
			panic("hook boom")
		}
	}
	res, err := FitGlobalSequence(bumpySeq(40), 0, opts)
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("err = %v (res=%+v), want contained panic error", err, res)
	}
}

func TestFitGlobalContainsWorkerPanic(t *testing.T) {
	x := tensor.New([]string{"kw"}, []string{"us"}, 40)
	for t0 := 0; t0 < 40; t0++ {
		x.Set(0, 0, t0, bumpySeq(40)[t0])
	}
	tr := NewFitTrace()
	hook := tr.Hook()
	opts := quickOpts()
	opts.Progress = func(ev FitEvent) {
		hook(ev)
		if ev.Stage == StageBase {
			panic("worker boom")
		}
	}
	_, err := FitGlobal(x, opts)
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("FitGlobal err = %v, want contained panic error", err)
	}
	if got := tr.Report().Panics; got < 1 {
		t.Fatalf("FitReport.Panics = %d, want >= 1", got)
	}
}

func TestFitLocalContainsCellPanic(t *testing.T) {
	x := tensor.New([]string{"kw"}, []string{"us", "jp"}, 40)
	for t0 := 0; t0 < 40; t0++ {
		v := bumpySeq(40)[t0]
		x.Set(0, 0, t0, v)
		x.Set(0, 1, t0, v/2)
	}
	m, err := FitGlobal(x, quickOpts())
	if err != nil {
		t.Fatalf("FitGlobal: %v", err)
	}
	opts := quickOpts()
	opts.Progress = func(ev FitEvent) {
		if ev.Stage == StageLocalCell && ev.Location == 1 {
			panic("cell boom")
		}
	}
	err = FitLocal(x, m, opts)
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("FitLocal err = %v, want contained panic error", err)
	}
	if !strings.Contains(err.Error(), `"jp"`) {
		t.Fatalf("FitLocal error %v should name the panicking cell's location", err)
	}
}

// Stream.Append funnels through the same containment: a panicking refit
// keeps the appended ticks and the last good model.
func TestStreamAppendContainsPanic(t *testing.T) {
	opts := quickOpts()
	opts.Progress = func(ev FitEvent) { panic("stream boom") }
	s := NewStream(opts, 4)
	_, err := s.Append(bumpySeq(40)...)
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("Append err = %v, want contained panic error", err)
	}
	if s.Len() != 40 {
		t.Fatalf("appended ticks lost: Len = %d, want 40", s.Len())
	}
	if s.Ready() {
		t.Fatalf("stream claims Ready after a failed first fit")
	}
}

// Simulate must return finite counts for arbitrary degenerate parameters.
func TestSimulateSanitises(t *testing.T) {
	cases := []KeywordParams{
		{N: math.Inf(1), Beta: 1, Delta: 0.4, Gamma: 0.5, I0: 0.1, TEta: NoGrowth},
		{N: math.NaN(), Beta: 1, Delta: 0.4, Gamma: 0.5, I0: 0.1, TEta: NoGrowth},
		{N: -5, Beta: 1, Delta: 0.4, Gamma: 0.5, I0: 0.1, TEta: NoGrowth},
		{N: 2, Beta: math.Inf(1), Delta: 0.4, Gamma: 0.5, I0: 0.1, TEta: NoGrowth},
		{N: 2, Beta: 1, Delta: 0.4, Gamma: 0.5, I0: 0.1, Eta0: math.Inf(1), TEta: 3},
		{N: 2, Beta: 1, Delta: 0.4, Gamma: 0.5, I0: math.NaN(), TEta: NoGrowth},
	}
	for ci, p := range cases {
		out := Simulate(&p, 30, nil, -1)
		for t0, v := range out {
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
				t.Fatalf("case %d: Simulate[%d] = %g, want finite non-negative", ci, t0, v)
			}
		}
	}
	eps := make([]float64, 30)
	for i := range eps {
		eps[i] = 1
	}
	eps[4], eps[9] = math.Inf(1), math.NaN()
	p := KeywordParams{N: 2, Beta: 1, Delta: 0.4, Gamma: 0.5, I0: 0.1, TEta: NoGrowth}
	for t0, v := range Simulate(&p, 30, eps, -1) {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			t.Fatalf("Inf/NaN eps: Simulate[%d] = %g, want finite non-negative", t0, v)
		}
	}
}
