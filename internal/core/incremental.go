package core

import (
	"math"

	"dspot/internal/mdl"
	"dspot/internal/optimize"
	"dspot/internal/stats"
	"dspot/internal/tensor"
)

// Incremental maintenance: a Stream in RefitIncremental mode does O(tail)
// work per appended tick instead of re-entering the batch fitter. The model
// simulation is extended one tick at a time from a checkpointed SIV state,
// residuals over a sliding tail window are re-examined for new shocks (and
// for stale occurrence strengths of known shocks), and the expensive batch
// refit is amortised behind a refit-debt counter: cheap maintenance accrues
// debt, structural changes accrue more, and only when the debt crosses a
// threshold does a full ContinueGlobalSequence run. This is the D-Tracker
// posture — model the stream incrementally, treat batch refits as rare
// consolidation — and what makes per-append latency independent of the
// stream length.

// RefitMode selects how a Stream maintains its model as ticks arrive.
type RefitMode int

const (
	// RefitBatch re-enters the warm-start batch fitter
	// (ContinueGlobalSequence) every RefitEvery appended ticks. Maximally
	// accurate, but each refit costs O(n) — per-append cost grows with the
	// stream, which is unusable for long-lived high-rate streams.
	RefitBatch RefitMode = iota
	// RefitIncremental extends the model O(TailWindow) per appended tick and
	// schedules a full batch refit only when the accumulated refit debt
	// crosses the debt limit (or on demand via RefitNow).
	RefitIncremental
)

// String returns the wire name of the mode ("batch" / "incremental").
func (m RefitMode) String() string {
	if m == RefitIncremental {
		return "incremental"
	}
	return "batch"
}

// ParseRefitMode parses a wire-format mode name. The empty string selects
// RefitBatch (the historical default), keeping legacy callers and persisted
// snapshots meaningful.
func ParseRefitMode(s string) (RefitMode, bool) {
	switch s {
	case "", "batch":
		return RefitBatch, true
	case "incremental":
		return RefitIncremental, true
	}
	return RefitBatch, false
}

// IncrementalConfig tunes the incremental maintenance path. The zero value
// selects defaults.
type IncrementalConfig struct {
	// TailWindow is how many trailing ticks the incremental path re-examines
	// for new shocks and stale strengths (default 104). It bounds the
	// per-append work: every maintenance operation is O(TailWindow).
	TailWindow int
	// DebtLimit is the refit-debt level at which a full batch refit fires.
	// Zero selects 8×RefitEvery (at least 2×TailWindow). Each appended tick
	// adds one unit of debt; structural events (an accepted tail shock, a
	// value beyond the fitted normalisation scale) add more, pulling the
	// consolidating refit closer exactly when the model drifted.
	DebtLimit float64
}

func (c IncrementalConfig) withDefaults() IncrementalConfig {
	if c.TailWindow <= 0 {
		c.TailWindow = 104
	}
	return c
}

// Debt surcharge constants (in ticks-worth of debt). Values are heuristic
// but deterministic: they only decide how soon the consolidating batch refit
// fires, never what the model says.
const (
	// debtTailShock is added when the tail scan commits a structural change
	// (new shock or refitted occurrence strength): the quick windowed fit is
	// a stop-gap the full refit should consolidate.
	debtTailShock = 64
	// debtRejectedPeak is added once per distinct residual peak the tail scan
	// examined and rejected — unmodelled structure the batch fitter should
	// get a proper look at.
	debtRejectedPeak = 16
	// debtStaleScale is added per tick whose observation exceeds the fitted
	// normalisation scale: the [0,1] normalisation the model was fitted under
	// no longer covers the data.
	debtStaleScale = 4
)

// sivPoint is the SIV fraction state entering one tick.
type sivPoint struct{ s, i, v float64 }

// incState is the derived per-stream state of the incremental path. It is
// never serialised: RestoreStream rebuilds it deterministically from the
// sequence and the fit result, and the rebuild is bit-identical to having
// maintained it live (pinned by TestIncrementalRestoreBitIdentical).
type incState struct {
	w     int     // ring capacity == TailWindow
	scale float64 // normalisation of the fit this state extends

	// Normalised parameters, sanitised exactly as SimulateInto's fast path
	// sanitises them, so the per-tick stepper below stays bit-identical to a
	// batch simulation over the same inputs.
	p      KeywordParams
	oneEta float64 // 1 + sanitised growth magnitude
	gStart int     // first tick with the growth factor active (maxInt when none)

	head int      // ticks simulated so far; rings cover [head-w, head)
	cur  sivPoint // state entering tick head

	states  []sivPoint // states[t%w]: SIV state entering tick t
	sim     []float64  // sim[t%w]: simulated normalised output at t
	resid   []float64  // resid[t%w]: normalised observation − sim (NaN = missing)
	future  []float64  // per shock: projected strength for not-yet-seen occurrences
	normMax float64    // max normalised observation seen

	scratch []float64 // contiguous tail copies for scans
}

// newIncState builds the incremental state for a fitted stream by replaying
// the whole sequence once through the per-tick stepper — O(n), paid only at
// (re)fit and restore time. future overrides the projected per-shock
// strengths (restore passes the persisted ones; nil recomputes them).
func newIncState(seq []float64, res *GlobalFitResult, future []float64, w int) *incState {
	st := &incState{w: w, scale: res.Scale}
	p := res.Params
	if st.scale > 0 {
		p.N = p.N / st.scale // back into normalised space
	}
	// Mirror of SimulateInto's input sanitisation: the stepper must produce
	// the same bits a batch simulation would.
	if math.IsNaN(p.N) || math.IsInf(p.N, 0) || p.N < 0 {
		p.N = 0
	}
	eta := p.Eta0
	if math.IsNaN(eta) || math.IsInf(eta, 0) {
		eta = 0
	}
	st.oneEta = 1 + eta
	st.gStart = math.MaxInt
	if p.TEta != NoGrowth {
		st.gStart = p.TEta
		if st.gStart < 0 {
			st.gStart = 0
		}
	}
	st.p = p
	i0 := clamp01(p.I0)
	st.cur = sivPoint{s: 1 - i0, i: i0, v: 0}
	st.states = make([]sivPoint, w)
	st.sim = make([]float64, w)
	st.resid = make([]float64, w)
	if future != nil {
		st.future = append([]float64(nil), future...)
	} else {
		st.future = make([]float64, len(res.Shocks))
		for si := range res.Shocks {
			st.future[si] = futureStrength(&res.Shocks[si])
		}
	}
	for len(st.future) < len(res.Shocks) {
		st.future = append(st.future, 0)
	}
	for _, v := range seq {
		st.advance(res.Shocks, v)
	}
	return st
}

// advance extends the simulation by one tick: materialise any occurrence
// strength that begins at or before the new tick, derive ε(t), step the SIV
// recurrence, and record the (state, simulation, residual) rings. O(#shocks)
// per call.
func (st *incState) advance(shocks []Shock, raw float64) {
	t := st.head
	// A cyclic occurrence past the fitted window gets the projected future
	// strength the moment it begins, written into the shock's own strength
	// row — so the persisted snapshot carries it and a restored stream sees
	// exactly the ε(t) the live stream used.
	for si := range shocks {
		sh := &shocks[si]
		if m := sh.OccurrenceAt(t); m >= 0 {
			for len(sh.Strength) <= m {
				sh.Strength = append(sh.Strength, st.future[si])
			}
		}
	}
	eps := st.epsAt(shocks, t)
	st.states[t%st.w] = st.cur
	out := st.step(t, eps)
	norm := math.NaN()
	if !tensor.IsMissing(raw) && !math.IsInf(raw, 0) && raw >= 0 {
		norm = raw
		if st.scale > 0 {
			norm = raw / st.scale
		}
		if norm > st.normMax {
			st.normMax = norm
		}
	}
	st.sim[t%st.w] = out
	st.resid[t%st.w] = norm - out
	st.head++
}

// epsAt derives ε(t) for one tick, summing shock contributions in shock
// order — the same order epsilonFromShocks accumulates in, so the scalar is
// bit-identical to the array entry a batch rebuild would produce.
func (st *incState) epsAt(shocks []Shock, t int) float64 {
	e := 1.0
	for si := range shocks {
		sh := &shocks[si]
		m := sh.OccurrenceAt(t)
		if m < 0 || m >= len(sh.Strength) {
			continue
		}
		e += sh.Strength[m]
	}
	return e
}

// step advances the SIV recurrence by one tick and returns the simulated
// output. It is a statement-for-statement mirror of SimulateInto's clean-ε
// fast path (growth split included), which keeps the incremental simulation
// bit-identical to the batch one — TestIncrementalStepMatchesSimulate pins
// this against the real SimulateInto.
func (st *incState) step(t int, eps float64) float64 {
	s, i, v := st.cur.s, st.cur.i, st.cur.v
	out := st.p.N * i
	var infect float64
	if t >= st.gStart {
		infect = st.p.Beta * s * eps * i * st.oneEta
	} else {
		infect = st.p.Beta * s * eps * i
	}
	lose := st.p.Delta * i
	wake := st.p.Gamma * v
	s = clamp01(s - infect + wake)
	i = clamp01(i + infect - lose)
	v = clamp01(v + lose - wake)
	if tot := s + i + v; tot > 0 && tot != 1 {
		s, i, v = s/tot, i/tot, v/tot
	}
	st.cur = sivPoint{s: s, i: i, v: v}
	return out
}

// rebuildFrom re-simulates ticks [t0, head) after a shock-set change. t0
// must lie inside the state ring; callers guarantee that by only committing
// changes whose affected range starts inside the tail window. O(TailWindow).
func (st *incState) rebuildFrom(seq []float64, shocks []Shock, t0 int) {
	st.cur = st.states[t0%st.w]
	for t := t0; t < len(seq); t++ {
		eps := st.epsAt(shocks, t)
		st.states[t%st.w] = st.cur
		out := st.step(t, eps)
		norm := math.NaN()
		raw := seq[t]
		if !tensor.IsMissing(raw) && !math.IsInf(raw, 0) && raw >= 0 {
			norm = raw
			if st.scale > 0 {
				norm = raw / st.scale
			}
		}
		st.sim[t%st.w] = out
		st.resid[t%st.w] = norm - out
	}
	st.head = len(seq)
}

// tailLo returns the first tick of the current tail window.
func (st *incState) tailLo() int {
	lo := st.head - st.w
	if lo < 0 {
		lo = 0
	}
	return lo
}

// tailResiduals copies the tail residual ring into a contiguous scratch
// slice ordered by tick.
func (st *incState) tailResiduals() []float64 {
	lo := st.tailLo()
	st.scratch = st.scratch[:0]
	for t := lo; t < st.head; t++ {
		st.scratch = append(st.scratch, st.resid[t%st.w])
	}
	return st.scratch
}

// tailSeedLevel mirrors shockSeedLevel for the tail window: well above the
// tail noise floor and a noticeable fraction of the (normalised) signal.
func tailSeedLevel(resid []float64, normMax float64) float64 {
	_, sigma2 := mdl.ResidualNoise(resid)
	noise := 2 * math.Sqrt(sigma2)
	signal := 0.08 * normMax
	if noise > signal {
		return noise
	}
	return signal
}

// scanTail is the incremental shock-discovery pass: examine the tail
// residuals for the dominant positive run and either (a) refit the strength
// of the known shock occurrence covering it, or (b) propose, fit, and
// MDL-gate a new one-shot shock. All work is O(TailWindow); each distinct
// peak is examined once (lastScan suppresses re-examination until the peak
// moves). Returns whether the shock set changed.
func (s *Stream) scanTail() bool {
	if s.opts.DisableShocks {
		return false
	}
	st := s.inc
	n := st.head
	lo := st.tailLo()
	if n-lo < 16 {
		return false // not enough tail context to judge a run
	}
	resid := st.tailResiduals()
	level := tailSeedLevel(resid, st.normMax)
	peaks := stats.FindPeaks(resid, level)
	if len(peaks) == 0 {
		return false
	}
	peak := peaks[0]
	t0 := lo + peak.Start
	if t0 == s.lastScan {
		return false
	}
	apex := lo + peak.Apex

	// A known shock already covers the apex (with a two-tick lag allowance —
	// the output response trails the ε window): the event recurred at a
	// different magnitude than projected — refit that occurrence's strength
	// in place instead of stacking a new shock on top of it.
	for lag := 0; lag <= 2; lag++ {
		for si := range s.result.Shocks {
			sh := &s.result.Shocks[si]
			if m := sh.OccurrenceAt(apex - lag); m >= 0 {
				s.refineOccurrence(si, m)
				s.lastScan = t0
				return true
			}
		}
	}

	if len(s.result.Shocks) >= s.opts.withDefaults().MaxShocks {
		s.lastScan = t0
		s.debt += debtRejectedPeak
		return false
	}

	width := peak.Width
	if width < 1 {
		width = 1
	}
	if maxW := st.w/8 + 1; width > maxW {
		width = maxW
	}
	// The SIV response trails the ε onset (a shock at tick t first moves the
	// output at t+1), so try a few anchors just before the residual run and
	// keep the best windowed fit — the same anchor jitter the batch fitter
	// applies to its candidates.
	var cand Shock
	bestSSE := math.Inf(1)
	for _, jit := range []int{-2, -1, 0} {
		a := t0 + jit
		if a < st.tailLo() || a < 0 {
			continue
		}
		w := width - jit
		if maxW := st.w/4 + 1; w > maxW {
			w = maxW
		}
		c := Shock{Keyword: 0, Period: NonCyclic, Start: a, Width: w}
		str, sse := s.fitTailStrength(&c, a)
		if str > 0 && sse < bestSSE {
			c.Strength = []float64{str}
			cand, bestSSE = c, sse
		}
	}
	accepted := false
	if !math.IsInf(bestSSE, 1) {
		// Judge the candidate at the QUIET noise level — the peak's own ticks
		// are masked out of the estimate. Letting the burst inflate σ² would
		// make it look like cheap noise over a 52-tick window (the batch gate
		// escapes this only because inflation penalises all n residuals).
		quiet := make([]float64, len(resid))
		copy(quiet, resid)
		for i := peak.Start; i < peak.Start+peak.Width && i < len(quiet); i++ {
			quiet[i] = math.NaN()
		}
		muQ, sigma2Q := mdl.ResidualNoise(quiet)
		accepted = s.acceptTailShock(cand, cand.Start, resid, muQ, sigma2Q)
	}
	s.lastScan = t0
	if !accepted {
		s.debt += debtRejectedPeak
		return false
	}
	s.result.Shocks = append(s.result.Shocks, cand)
	s.inc.future = append(s.inc.future, futureStrength(&cand))
	st.rebuildFrom(s.seq, s.result.Shocks, cand.Start)
	s.debt += debtTailShock
	return true
}

// refineOccurrence golden-refits one occurrence strength of a known shock
// against the tail residuals, committing the result into the shock's
// strength row (and the persisted snapshot with it). Occurrences whose
// window starts before the state ring cannot be re-simulated incrementally
// and are left to the next full refit.
func (s *Stream) refineOccurrence(si, m int) {
	st := s.inc
	sh := &s.result.Shocks[si]
	ostart := sh.OccurrenceStart(m)
	if ostart < st.tailLo() || m >= len(sh.Strength) {
		s.debt += debtRejectedPeak
		return
	}
	save := sh.Strength[m]
	obj := func(str float64) float64 {
		sh.Strength[m] = str
		return s.tailSSEFrom(ostart)
	}
	best, _, _ := goldenStrength(obj)
	sh.Strength[m] = save
	if best < 1e-3 {
		best = 0
	}
	if math.Abs(best-save) < 1e-9 {
		return // already right; nothing to commit or rebuild
	}
	sh.Strength[m] = best
	st.future[si] = futureStrength(sh)
	st.rebuildFrom(s.seq, s.result.Shocks, ostart)
	s.debt += debtTailShock
}

// fitTailStrength golden-fits a candidate one-shot shock's strength over
// the tail window, returning the strength and its SSE. The candidate must
// start inside the state ring.
func (s *Stream) fitTailStrength(cand *Shock, t0 int) (float64, float64) {
	working := make([]Shock, len(s.result.Shocks)+1)
	copy(working, s.result.Shocks)
	cand.Strength = []float64{0}
	working[len(working)-1] = *cand
	self := &working[len(working)-1]
	obj := func(str float64) float64 {
		self.Strength[0] = str
		return s.tailSSEWith(working, t0)
	}
	best, sse, _ := goldenStrength(obj)
	if best < 1e-3 {
		return 0, sse
	}
	return best, sse
}

// goldenStrength is the shared bounded golden search over one strength.
// Incremental maintenance is bounded-time by construction, so it runs
// uncancellable (nil ctx): there is no long fit to interrupt.
func goldenStrength(obj func(float64) float64) (float64, float64, error) {
	return optimize.GoldenCtx(nil, obj, 0, maxShockStrength, 1e-3, 60)
}

// tailSSEFrom simulates [t0, head) with the current shock set from the ring
// checkpoint at t0 and returns the SSE against the observed tail. Used by
// the strength refiner; does not mutate the rings.
func (s *Stream) tailSSEFrom(t0 int) float64 {
	return s.tailSSEWith(s.result.Shocks, t0)
}

// tailSSEWith is tailSSEFrom under an alternative shock set.
func (s *Stream) tailSSEWith(shocks []Shock, t0 int) float64 {
	st := s.inc
	save := st.cur
	st.cur = st.states[t0%st.w]
	sse := 0.0
	for t := t0; t < st.head; t++ {
		eps := st.epsAt(shocks, t)
		out := st.stepScratch(t, eps)
		raw := s.seq[t]
		if tensor.IsMissing(raw) || math.IsInf(raw, 0) || raw < 0 {
			continue
		}
		norm := raw
		if st.scale > 0 {
			norm = raw / st.scale
		}
		d := norm - out
		sse += d * d
	}
	st.cur = save
	return sse
}

// stepScratch is step without recording rings (the caller restores cur).
func (st *incState) stepScratch(t int, eps float64) float64 { return st.step(t, eps) }

// acceptTailShock applies the incremental MDL gate: the candidate is kept
// only when the Gaussian coding cost of the tail residuals — judged at the
// caller-supplied quiet noise level (μ, σ²), not one the burst itself
// inflates — drops by more than the added model description cost. The gate
// is a tail-window approximation of the batch fitter's full-window gate,
// with the debt-scheduled full refit as the authority that later re-judges
// everything it admits.
func (s *Stream) acceptTailShock(cand Shock, t0 int, tailResid []float64, muQ, sigma2Q float64) bool {
	st := s.inc
	lo := st.tailLo()
	n := st.head
	costWithout := mdl.GaussianCostFixed(tailResid, muQ, sigma2Q) + costShockTensor(s.result.Shocks, 1, 1, n)
	with := make([]Shock, len(s.result.Shocks)+1)
	copy(with, s.result.Shocks)
	with[len(with)-1] = cand

	// Residuals with the candidate applied: identical to the current tail
	// before t0, re-simulated after.
	residWith := append([]float64(nil), tailResid...)
	save := st.cur
	st.cur = st.states[t0%st.w]
	for t := t0; t < n; t++ {
		eps := st.epsAt(with, t)
		out := st.stepScratch(t, eps)
		raw := s.seq[t]
		norm := math.NaN()
		if !tensor.IsMissing(raw) && !math.IsInf(raw, 0) && raw >= 0 {
			norm = raw
			if st.scale > 0 {
				norm = raw / st.scale
			}
		}
		residWith[t-lo] = norm - out
	}
	st.cur = save
	costWith := mdl.GaussianCostFixed(residWith, muQ, sigma2Q) + costShockTensor(with, 1, 1, n)
	return costWith < costWithout-1e-9
}
