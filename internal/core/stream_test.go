package core

import (
	"math"
	"testing"

	"dspot/internal/stats"
	"dspot/internal/tensor"
)

// grammyLike synthesises an annual-spike series of length n.
func grammyLike(n int, seed int64) []float64 {
	occ := 0
	if n > 6 {
		occ = (n-1-6)/52 + 1
	}
	strengths := make([]float64, occ)
	for i := range strengths {
		strengths[i] = 9
	}
	shock := Shock{Keyword: 0, Period: 52, Start: 6, Width: 2, Strength: strengths}
	return synthGlobal(truthBase, []Shock{shock}, n, 0.01, seed)
}

func TestContinueGlobalSequenceExtendsShocks(t *testing.T) {
	full := grammyLike(460, 21)
	prev, err := FitGlobalSequence(full[:300], 0, FitOptions{DisableGrowth: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(prev.Shocks) == 0 {
		t.Fatal("prefix fit found no shocks")
	}
	cont, err := ContinueGlobalSequence(full, 0, prev, FitOptions{DisableGrowth: true})
	if err != nil {
		t.Fatal(err)
	}
	m := &Model{Keywords: []string{"k"}, Ticks: 460,
		Global: []KeywordParams{cont.Params}, Shocks: cont.Shocks}
	fit := m.SimulateGlobal(0, 460)
	if r := stats.RMSE(full, fit); r > 0.1*stats.Max(full) {
		t.Fatalf("continued fit RMSE %.3f of peak %.3f", r, stats.Max(full))
	}
	// The cyclic shock must now cover the longer window.
	found := false
	for _, s := range cont.Shocks {
		if s.Period > 0 && s.Occurrences(460) == len(s.Strength) && len(s.Strength) >= 8 {
			found = true
		}
	}
	if !found {
		t.Fatalf("cyclic shock not extended: %+v", cont.Shocks)
	}
}

func TestContinueGlobalSequenceComparableToFullRefit(t *testing.T) {
	full := grammyLike(420, 22)
	prev, err := FitGlobalSequence(full[:320], 0, FitOptions{DisableGrowth: true})
	if err != nil {
		t.Fatal(err)
	}
	cont, err := ContinueGlobalSequence(full, 0, prev, FitOptions{DisableGrowth: true})
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := FitGlobalSequence(full, 0, FitOptions{DisableGrowth: true})
	if err != nil {
		t.Fatal(err)
	}
	mc := &Model{Keywords: []string{"k"}, Ticks: 420,
		Global: []KeywordParams{cont.Params}, Shocks: cont.Shocks}
	mf := &Model{Keywords: []string{"k"}, Ticks: 420,
		Global: []KeywordParams{fresh.Params}, Shocks: fresh.Shocks}
	rc := stats.RMSE(full, mc.SimulateGlobal(0, 420))
	rf := stats.RMSE(full, mf.SimulateGlobal(0, 420))
	if rc > 2*rf+0.05*stats.Max(full) {
		t.Fatalf("incremental fit much worse than fresh: %.3f vs %.3f", rc, rf)
	}
}

func TestContinueGlobalSequenceTooShort(t *testing.T) {
	if _, err := ContinueGlobalSequence([]float64{1, 2}, 0, GlobalFitResult{}, FitOptions{}); err == nil {
		t.Fatal("short sequence accepted")
	}
}

func TestStreamLifecycle(t *testing.T) {
	full := grammyLike(400, 23)
	s := NewStream(FitOptions{DisableGrowth: true}, 52)

	if s.Ready() {
		t.Fatal("stream ready before any data")
	}
	if s.Forecast(10) != nil || s.Model() != nil {
		t.Fatal("unfitted stream should return nil model/forecast")
	}

	// First batch triggers the initial full fit.
	refit, err := s.Append(full[:300]...)
	if err != nil {
		t.Fatal(err)
	}
	if !refit || !s.Ready() {
		t.Fatal("first batch should fit")
	}
	if s.Len() != 300 {
		t.Fatalf("Len = %d", s.Len())
	}

	// Appending fewer than refitEvery ticks does not refit.
	refit, err = s.Append(full[300:310]...)
	if err != nil {
		t.Fatal(err)
	}
	if refit {
		t.Fatal("refit too eager")
	}

	// Crossing the threshold refits incrementally.
	refit, err = s.Append(full[310:370]...)
	if err != nil {
		t.Fatal(err)
	}
	if !refit {
		t.Fatal("refit did not trigger after refitEvery ticks")
	}

	m := s.Model()
	if m == nil || m.Ticks != 370 {
		t.Fatalf("model ticks = %v", m)
	}
	fc := s.Forecast(30)
	if len(fc) != 30 {
		t.Fatalf("forecast length %d", len(fc))
	}
	// Forecast must beat flat-mean on the remaining truth.
	flat := make([]float64, 30)
	mean := stats.Mean(full[:370])
	for i := range flat {
		flat[i] = mean
	}
	if stats.RMSE(full[370:400], fc) >= stats.RMSE(full[370:400], flat) {
		t.Fatal("stream forecast no better than flat mean")
	}
}

func TestStreamDefaultRefitEvery(t *testing.T) {
	s := NewStream(FitOptions{}, 0)
	if s.refitEvery != 26 {
		t.Fatalf("default refitEvery = %d", s.refitEvery)
	}
}

// ContinueGlobalSequence promises to tolerate *revised* recent values, not
// just appended ones — the doc comment says so but nothing exercised it.
func TestContinueGlobalSequenceRevisedValues(t *testing.T) {
	full := grammyLike(420, 24)
	prev, err := FitGlobalSequence(full[:320], 0, FitOptions{DisableGrowth: true})
	if err != nil {
		t.Fatal(err)
	}
	// Revise the tail of the already-fitted prefix — the shape late data
	// corrections take in practice — and extend the window.
	revised := append([]float64(nil), full...)
	for t := 300; t < 320; t++ {
		revised[t] *= 1.3
	}
	cont, err := ContinueGlobalSequence(revised, 0, prev, FitOptions{DisableGrowth: true})
	if err != nil {
		t.Fatal(err)
	}
	m := &Model{Keywords: []string{"k"}, Ticks: 420,
		Global: []KeywordParams{cont.Params}, Shocks: cont.Shocks}
	fit := m.SimulateGlobal(0, 420)
	if r := stats.RMSE(revised, fit); r > 0.12*stats.Max(revised) {
		t.Fatalf("refit on revised data RMSE %.3f of peak %.3f", r, stats.Max(revised))
	}
}

// Stream.Append must not fit (and must not error) while fewer than eight
// observed ticks exist, however many missing ticks pad the sequence.
func TestStreamAppendMostlyMissing(t *testing.T) {
	s := NewStream(FitOptions{DisableGrowth: true}, 4)
	vals := make([]float64, 30)
	for i := range vals {
		vals[i] = tensor.Missing
	}
	vals[3], vals[9], vals[15], vals[21], vals[27] = 1, 2, 1, 2, 1
	refit, err := s.Append(vals...)
	if err != nil {
		t.Fatalf("append of sparse data errored: %v", err)
	}
	if refit || s.Ready() {
		t.Fatal("stream fitted with fewer than 8 observed ticks")
	}
	if s.Len() != 30 {
		t.Fatalf("Len = %d, want 30 (missing ticks still count)", s.Len())
	}
	if s.Model() != nil || s.Forecast(5) != nil {
		t.Fatal("unready stream must return nil model and forecast")
	}
	// Crossing eight observed ticks fits despite the gaps.
	more := grammyLike(120, 25)
	refit, err = s.Append(more...)
	if err != nil {
		t.Fatal(err)
	}
	if !refit || !s.Ready() {
		t.Fatal("stream did not fit once enough ticks were observed")
	}
}

// Regression: Stream.Model used to shallow-copy shocks, so a caller
// mutating the returned model corrupted the stream's warm-start state.
func TestStreamModelNoAliasing(t *testing.T) {
	full := grammyLike(340, 26)
	s := NewStream(FitOptions{DisableGrowth: true}, 52)
	if _, err := s.Append(full...); err != nil {
		t.Fatal(err)
	}
	m1 := s.Model()
	if m1 == nil || len(m1.Shocks) == 0 {
		t.Fatal("fitted stream produced no shocks; cannot test aliasing")
	}
	want := m1.Shocks[0].Strength[0]
	m1.Shocks[0].Strength[0] = math.Inf(1) // vandalise the returned copy
	m1.Shocks[0].Local = [][]float64{{-1}}
	m2 := s.Model()
	if got := m2.Shocks[0].Strength[0]; got != want {
		t.Fatalf("mutating a returned model leaked into the stream: %g != %g", got, want)
	}
	if m2.Shocks[0].Local != nil {
		t.Fatal("mutating returned Local leaked into the stream")
	}
	// The next incremental refit must still see finite state.
	if _, err := s.Append(grammyLike(60, 27)...); err != nil {
		t.Fatalf("refit after external mutation: %v", err)
	}
}

func TestStreamStateRoundTrip(t *testing.T) {
	full := grammyLike(340, 28)
	s := NewStream(FitOptions{DisableGrowth: true}, 52)
	if _, err := s.Append(full[:320]...); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append(full[320:330]...); err != nil { // leave sinceRefit > 0
		t.Fatal(err)
	}
	st := s.State()
	r := RestoreStream(FitOptions{DisableGrowth: true}, st)
	if r.Len() != s.Len() || r.Ready() != s.Ready() {
		t.Fatalf("restored stream Len/Ready = %d/%v, want %d/%v",
			r.Len(), r.Ready(), s.Len(), s.Ready())
	}
	want, got := s.Forecast(20), r.Forecast(20)
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("restored forecast diverges at %d: %g != %g", i, got[i], want[i])
		}
	}
	// The snapshot is isolated from the restored stream.
	if len(st.Result.Shocks) > 0 && len(st.Result.Shocks[0].Strength) > 0 {
		st.Result.Shocks[0].Strength[0] = -42
		if r.result.Shocks[0].Strength[0] == -42 {
			t.Fatal("RestoreStream aliases the snapshot's shock slices")
		}
	}
	// Both continue identically after the same appends.
	tail := full[330:]
	refA, errA := s.Append(tail...)
	refB, errB := r.Append(tail...)
	if refA != refB || (errA == nil) != (errB == nil) {
		t.Fatalf("restored stream diverged on append: (%v,%v) vs (%v,%v)",
			refA, errA, refB, errB)
	}
}
