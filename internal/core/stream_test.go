package core

import (
	"testing"

	"dspot/internal/stats"
)

// grammyLike synthesises an annual-spike series of length n.
func grammyLike(n int, seed int64) []float64 {
	occ := 0
	if n > 6 {
		occ = (n-1-6)/52 + 1
	}
	strengths := make([]float64, occ)
	for i := range strengths {
		strengths[i] = 9
	}
	shock := Shock{Keyword: 0, Period: 52, Start: 6, Width: 2, Strength: strengths}
	return synthGlobal(truthBase, []Shock{shock}, n, 0.01, seed)
}

func TestContinueGlobalSequenceExtendsShocks(t *testing.T) {
	full := grammyLike(460, 21)
	prev, err := FitGlobalSequence(full[:300], 0, FitOptions{DisableGrowth: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(prev.Shocks) == 0 {
		t.Fatal("prefix fit found no shocks")
	}
	cont, err := ContinueGlobalSequence(full, 0, prev, FitOptions{DisableGrowth: true})
	if err != nil {
		t.Fatal(err)
	}
	m := &Model{Keywords: []string{"k"}, Ticks: 460,
		Global: []KeywordParams{cont.Params}, Shocks: cont.Shocks}
	fit := m.SimulateGlobal(0, 460)
	if r := stats.RMSE(full, fit); r > 0.1*stats.Max(full) {
		t.Fatalf("continued fit RMSE %.3f of peak %.3f", r, stats.Max(full))
	}
	// The cyclic shock must now cover the longer window.
	found := false
	for _, s := range cont.Shocks {
		if s.Period > 0 && s.Occurrences(460) == len(s.Strength) && len(s.Strength) >= 8 {
			found = true
		}
	}
	if !found {
		t.Fatalf("cyclic shock not extended: %+v", cont.Shocks)
	}
}

func TestContinueGlobalSequenceComparableToFullRefit(t *testing.T) {
	full := grammyLike(420, 22)
	prev, err := FitGlobalSequence(full[:320], 0, FitOptions{DisableGrowth: true})
	if err != nil {
		t.Fatal(err)
	}
	cont, err := ContinueGlobalSequence(full, 0, prev, FitOptions{DisableGrowth: true})
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := FitGlobalSequence(full, 0, FitOptions{DisableGrowth: true})
	if err != nil {
		t.Fatal(err)
	}
	mc := &Model{Keywords: []string{"k"}, Ticks: 420,
		Global: []KeywordParams{cont.Params}, Shocks: cont.Shocks}
	mf := &Model{Keywords: []string{"k"}, Ticks: 420,
		Global: []KeywordParams{fresh.Params}, Shocks: fresh.Shocks}
	rc := stats.RMSE(full, mc.SimulateGlobal(0, 420))
	rf := stats.RMSE(full, mf.SimulateGlobal(0, 420))
	if rc > 2*rf+0.05*stats.Max(full) {
		t.Fatalf("incremental fit much worse than fresh: %.3f vs %.3f", rc, rf)
	}
}

func TestContinueGlobalSequenceTooShort(t *testing.T) {
	if _, err := ContinueGlobalSequence([]float64{1, 2}, 0, GlobalFitResult{}, FitOptions{}); err == nil {
		t.Fatal("short sequence accepted")
	}
}

func TestStreamLifecycle(t *testing.T) {
	full := grammyLike(400, 23)
	s := NewStream(FitOptions{DisableGrowth: true}, 52)

	if s.Ready() {
		t.Fatal("stream ready before any data")
	}
	if s.Forecast(10) != nil || s.Model() != nil {
		t.Fatal("unfitted stream should return nil model/forecast")
	}

	// First batch triggers the initial full fit.
	refit, err := s.Append(full[:300]...)
	if err != nil {
		t.Fatal(err)
	}
	if !refit || !s.Ready() {
		t.Fatal("first batch should fit")
	}
	if s.Len() != 300 {
		t.Fatalf("Len = %d", s.Len())
	}

	// Appending fewer than refitEvery ticks does not refit.
	refit, err = s.Append(full[300:310]...)
	if err != nil {
		t.Fatal(err)
	}
	if refit {
		t.Fatal("refit too eager")
	}

	// Crossing the threshold refits incrementally.
	refit, err = s.Append(full[310:370]...)
	if err != nil {
		t.Fatal(err)
	}
	if !refit {
		t.Fatal("refit did not trigger after refitEvery ticks")
	}

	m := s.Model()
	if m == nil || m.Ticks != 370 {
		t.Fatalf("model ticks = %v", m)
	}
	fc := s.Forecast(30)
	if len(fc) != 30 {
		t.Fatalf("forecast length %d", len(fc))
	}
	// Forecast must beat flat-mean on the remaining truth.
	flat := make([]float64, 30)
	mean := stats.Mean(full[:370])
	for i := range flat {
		flat[i] = mean
	}
	if stats.RMSE(full[370:400], fc) >= stats.RMSE(full[370:400], flat) {
		t.Fatal("stream forecast no better than flat mean")
	}
}

func TestStreamDefaultRefitEvery(t *testing.T) {
	s := NewStream(FitOptions{}, 0)
	if s.refitEvery != 26 {
		t.Fatalf("default refitEvery = %d", s.refitEvery)
	}
}
