package core

import (
	"math"
	"testing"

	"dspot/internal/stats"
)

func decomposeModel() *Model {
	return &Model{
		Keywords: []string{"k"}, Locations: []string{"WW"}, Ticks: 300,
		Global: []KeywordParams{{N: 100, Beta: 0.5, Delta: 0.45, Gamma: 0.5,
			I0: 0.02, Eta0: 0.3, TEta: 200}},
		Shocks: []Shock{
			{Keyword: 0, Period: 52, Start: 20, Width: 2,
				Strength: []float64{8, 8, 8, 8, 8, 8}},
			{Keyword: 0, Period: NonCyclic, Start: 120, Width: 2,
				Strength: []float64{12}},
		},
	}
}

func TestDecomposeSumsToFitted(t *testing.T) {
	m := decomposeModel()
	c := m.Decompose(0, 300)
	for tt := 0; tt < 300; tt++ {
		sum := c.Base[tt] + c.Growth[tt] + c.Shocks[tt]
		if math.Abs(sum-c.Fitted[tt]) > 1e-9 {
			t.Fatalf("components do not sum at %d: %g vs %g", tt, sum, c.Fitted[tt])
		}
	}
}

func TestDecomposeMatchesSimulateGlobal(t *testing.T) {
	m := decomposeModel()
	c := m.Decompose(0, 300)
	direct := m.SimulateGlobal(0, 300)
	if r := stats.RMSE(direct, c.Fitted); r > 1e-12 {
		t.Fatalf("fitted curve mismatch: %g", r)
	}
}

func TestDecomposeGrowthZeroBeforeOnset(t *testing.T) {
	m := decomposeModel()
	c := m.Decompose(0, 300)
	for tt := 0; tt < 200; tt++ {
		if math.Abs(c.Growth[tt]) > 1e-12 {
			t.Fatalf("growth lift %g before onset at %d", c.Growth[tt], tt)
		}
	}
	late := stats.Mean(c.Growth[250:])
	if late <= 0 {
		t.Fatalf("growth lift after onset = %g, want positive", late)
	}
}

func TestDecomposeShocksZeroBeforeFirstShock(t *testing.T) {
	m := decomposeModel()
	c := m.Decompose(0, 300)
	for tt := 0; tt < 20; tt++ {
		if math.Abs(c.Shocks[tt]) > 1e-12 {
			t.Fatalf("shock lift %g before first occurrence at %d", c.Shocks[tt], tt)
		}
	}
	if stats.Max(c.Shocks) <= 0 {
		t.Fatal("no positive shock lift anywhere")
	}
}

func TestDecomposePerShockAttribution(t *testing.T) {
	m := decomposeModel()
	c := m.Decompose(0, 300)
	if len(c.PerShock) != 2 {
		t.Fatalf("per-shock components = %d", len(c.PerShock))
	}
	// The one-shot at 120 contributes nothing before 120.
	oneShot := c.PerShock[1] // ShocksFor order: sorted by start (20 first)
	for tt := 0; tt < 120; tt++ {
		if math.Abs(oneShot[tt]) > 1e-12 {
			t.Fatalf("one-shot lift %g before its start at %d", oneShot[tt], tt)
		}
	}
	if stats.Max(oneShot[120:130]) <= 0 {
		t.Fatal("one-shot contributes nothing in its window")
	}
}

func TestDecomposeNoStructure(t *testing.T) {
	m := &Model{Keywords: []string{"k"}, Ticks: 100,
		Global: []KeywordParams{{N: 10, Beta: 0.5, Delta: 0.4, Gamma: 0.3,
			I0: 0.01, TEta: NoGrowth}}}
	c := m.Decompose(0, 100)
	for tt := range c.Fitted {
		if c.Growth[tt] != 0 || c.Shocks[tt] != 0 {
			t.Fatal("structureless model has non-zero lifts")
		}
		if c.Base[tt] != c.Fitted[tt] {
			t.Fatal("base should equal fitted")
		}
	}
	if len(c.PerShock) != 0 {
		t.Fatal("unexpected per-shock components")
	}
}
