package core

// Bounded stream memory: without a retention horizon a long-lived stream's
// sequence grows without bound, and so does the cost of every full refit
// over it. SetRetention puts the stream under a sliding window — the oldest
// ticks are evicted in amortised chunks and every tick-indexed piece of fit
// state (shock starts, growth onset, scan positions, the incremental
// simulation rings) is rebased onto the retained suffix. After an eviction
// the stream behaves exactly as if it had been created from the retained
// window: the simulation restarts from i0 at the window head and the next
// consolidating refit re-judges the carried structure against the window it
// can actually see. The absolute tick index keeps counting across
// evictions (Head = EvictedTicks + Len), so positioned appends and
// duplicate detection stay correct forever.
//
// This file owns every growth path of s.seq — appendTick/appendBulk are the
// only places allowed to call append(s.seq, ...), so no code path can grow
// the sequence behind the retention horizon's back. CI greps for stray
// append sites outside this file.

// minRetention is the smallest accepted retention horizon: below it there
// is not enough context to fit at all (the fitters need 8 observed ticks
// and the tail scanner 16 of context), so tighter bounds are clamped up.
const minRetention = 32

// SetRetention bounds the stream to the newest n ticks (0 disables the
// bound; values in (0, minRetention) clamp up). Eviction is chunked —
// amortised over ~n/8 appends — so the live length stays within n plus one
// chunk. Shrinking the horizon takes effect on the next append.
func (s *Stream) SetRetention(n int) {
	if n <= 0 {
		s.retention = 0
		return
	}
	if n < minRetention {
		n = minRetention
	}
	s.retention = n
}

// Retention returns the configured horizon (0 = unbounded).
func (s *Stream) Retention() int { return s.retention }

// EvictedTicks returns how many ticks have been evicted off the front so
// far; Head() = EvictedTicks() + Len() is the absolute index of the next
// tick to append.
func (s *Stream) EvictedTicks() int64 { return s.evicted }

// Head returns the absolute tick index the next head-append lands on.
// Unlike Len it never decreases, eviction or not.
func (s *Stream) Head() int64 { return s.evicted + int64(len(s.seq)) }

// appendTick and appendBulk are the only sequence growth paths (see the
// file comment).
func (s *Stream) appendTick(v float64)        { s.seq = append(s.seq, v) }
func (s *Stream) appendBulk(values []float64) { s.seq = append(s.seq, values...) }

// maybeEvict enforces the retention horizon, returning how many ticks it
// evicted. Chunked: it waits for retention/8 ticks of overshoot so the
// O(retention) rebase cost is amortised to O(1) per append.
func (s *Stream) maybeEvict() int {
	r := s.retention
	if r <= 0 {
		return 0
	}
	chunk := r / 8
	if chunk < 1 {
		chunk = 1
	}
	if len(s.seq) < r+chunk {
		return 0
	}
	k := len(s.seq) - r
	s.evictFront(k)
	return k
}

// evictFront drops the oldest k ticks and rebases the fit state onto the
// retained suffix.
func (s *Stream) evictFront(k int) {
	if k <= 0 {
		return
	}
	if k >= len(s.seq) {
		k = len(s.seq)
	}
	// Copy into a fresh backing array: re-slicing would keep the evicted
	// prefix reachable and make the memory bound nominal only.
	rest := make([]float64, len(s.seq)-k)
	copy(rest, s.seq[k:])
	s.seq = rest
	s.evicted += int64(k)

	if s.fitted {
		s.rebaseResult(k)
	}
	if s.lastScan >= 0 {
		s.lastScan -= k
		if s.lastScan < 0 {
			s.lastScan = -1 // the examined peak slid out of the window
		}
	}
	if s.inc != nil {
		// The simulation rings index ticks absolutely; rebuild them on the
		// shifted sequence exactly the way RestoreStream would, so a snapshot
		// taken after an eviction restores bit-identically to the live stream.
		s.inc = newIncState(s.seq, &s.result, s.inc.future, s.cfg.TailWindow)
	}
}

// rebaseResult shifts every tick-indexed fit quantity k ticks left:
// shocks are rebased (dropping ones that slid out entirely, and their
// projected-strength entries with them) and the growth onset clamps to the
// window head once the growth phase is already active.
func (s *Stream) rebaseResult(k int) {
	var origFuture []float64
	if s.inc != nil {
		origFuture = s.inc.future
	}
	kept := make([]Shock, 0, len(s.result.Shocks))
	var keptFuture []float64
	if origFuture != nil {
		keptFuture = make([]float64, 0, len(origFuture))
	}
	for i := range s.result.Shocks {
		sh := s.result.Shocks[i]
		if !rebaseShock(&sh, k, len(s.seq)) {
			continue
		}
		kept = append(kept, sh)
		if origFuture != nil && i < len(origFuture) {
			keptFuture = append(keptFuture, origFuture[i])
		}
	}
	s.result.Shocks = kept
	if s.inc != nil {
		s.inc.future = keptFuture
	}
	p := &s.result.Params
	if p.TEta != NoGrowth {
		p.TEta -= k
		if p.TEta < 0 {
			p.TEta = 0 // growth already active over the whole retained window
		}
	}
}

// rebaseShock shifts one shock k ticks left, reporting whether it still
// matters inside the retained window of n ticks.
//
// A one-shot whose window slid out entirely is dropped; one straddling the
// boundary is clipped to its retained part (same strength over the same
// retained ticks, so ε(t) is unchanged where it is still computed). A
// cyclic shock advances whole periods until its Start is back inside the
// window, dropping the strength of each evicted occurrence; an occurrence
// straddling the boundary loses its head ticks (a ≤Width-1-tick ε
// discrepancy at the very window edge — ancient ticks one chunk away from
// eviction themselves, re-judged at the next consolidating refit). A
// cyclic whose next occurrence lands past the window head cannot satisfy
// the Start∈[0,n) model invariant and is dropped with its history.
func rebaseShock(sh *Shock, k, n int) bool {
	sh.Start -= k
	if sh.Period <= 0 {
		if sh.Start+sh.Width <= 0 {
			return false
		}
		if sh.Start < 0 {
			sh.Width += sh.Start
			sh.Start = 0
		}
		return sh.Width >= 1
	}
	for sh.Start < 0 {
		sh.Start += sh.Period
		if len(sh.Strength) > 0 {
			sh.Strength = sh.Strength[1:]
			if len(sh.Local) > 0 {
				sh.Local = sh.Local[1:]
			}
		}
	}
	return sh.Start < n
}
