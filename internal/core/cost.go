package core

import (
	"dspot/internal/mdl"
	"dspot/internal/tensor"
)

// Model description costs, following §4.1 of the paper. The universal header
// log*(d)+log*(l)+log*(n) is shared by every candidate model for the same
// tensor, so comparisons may omit it; TotalCost includes it for completeness.

// baseParamCount is the number of floats in one B_G row. The paper lists
// {N, β, δ, γ}; our implementation also encodes the initial infective
// fraction, so a row costs five floats. This only shifts every candidate's
// cost by a constant and cannot change any MDL decision.
const baseParamCount = 5

// costBaseGlobal returns Cost_M(B_G) for d keywords.
func costBaseGlobal(d int) float64 { return mdl.FloatsCost(baseParamCount * d) }

// costGrowthGlobal returns Cost_M(R_G): each keyword with an active growth
// effect pays {η₀, t_η} = 2 floats, plus one indicator bit per keyword.
func costGrowthGlobal(params []KeywordParams) float64 {
	cost := float64(len(params)) // 1 bit each for "has growth?"
	for i := range params {
		if params[i].HasGrowth() {
			cost += mdl.FloatsCost(2)
		}
	}
	return cost
}

// costShock returns Cost_M(s) for a single shock: the keyword pointer
// (log d), the shock-time vector {t_p, t_s, t_w} (3·log n), the global
// occurrence strengths (one presence bit per occurrence plus a float per
// active occurrence — cyclic events may skip cycles), and the non-zero
// entries of s^(L).
func costShock(s *Shock, d, l, n int) float64 {
	cost := mdl.IntCost(d) + 3*mdl.IntCost(n)
	cost += float64(len(s.Strength)) // presence bits
	for _, v := range s.Strength {
		if v != 0 {
			cost += mdl.FloatCost
		}
	}
	if s.Local != nil {
		entry := mdl.IntCost(d) + mdl.IntCost(l) + mdl.IntCost(n) + mdl.FloatCost
		for _, row := range s.Local {
			for _, v := range row {
				if v != 0 {
					cost += entry
				}
			}
		}
	}
	return cost
}

// costShockTensor returns Cost_M(S) = log*(k) + Σ Cost_M(s_i).
func costShockTensor(shocks []Shock, d, l, n int) float64 {
	cost := mdl.LogStar(len(shocks))
	for i := range shocks {
		cost += costShock(&shocks[i], d, l, n)
	}
	return cost
}

// costLocalMatrices returns Cost_M(B_L) + Cost_M(R_L): d×l floats each when
// present.
func costLocalMatrices(m *Model) float64 {
	cost := 0.0
	if m.LocalN != nil {
		cost += mdl.FloatsCost(len(m.Keywords) * len(m.Locations))
	}
	if m.LocalR != nil {
		cost += mdl.FloatsCost(len(m.Keywords) * len(m.Locations))
	}
	return cost
}

// GlobalCodingCost returns Cost_C of the global sequences: the Gaussian
// coding cost of x̄_i − Î_i summed over keywords.
func (m *Model) GlobalCodingCost(globals [][]float64) float64 {
	cost := 0.0
	for i := range m.Global {
		est := m.SimulateGlobal(i, m.Ticks)
		cost += mdl.GaussianCost(residuals(globals[i], est))
	}
	return cost
}

// LocalCodingCost returns Cost_C of every local sequence under the local
// model.
func (m *Model) LocalCodingCost(x *tensor.Tensor) float64 {
	cost := 0.0
	for i := 0; i < x.D(); i++ {
		for j := 0; j < x.L(); j++ {
			est := m.SimulateLocal(i, j, m.Ticks)
			cost += mdl.GaussianCost(residuals(x.Local(i, j), est))
		}
	}
	return cost
}

// TotalCost returns Cost_T(X; F) — Eq. (2) of the paper — for the model
// against the full tensor: universal header, all model description costs,
// and the data coding cost of the local sequences (the global sequences are
// derived from the locals, so they are not coded twice).
func (m *Model) TotalCost(x *tensor.Tensor) float64 {
	d, l, n := x.D(), x.L(), x.N()
	cost := mdl.LogStar(d) + mdl.LogStar(l) + mdl.LogStar(n)
	cost += costBaseGlobal(d)
	cost += costGrowthGlobal(m.Global)
	cost += costLocalMatrices(m)
	cost += costShockTensor(m.Shocks, d, l, n)
	if m.LocalN != nil {
		cost += m.LocalCodingCost(x)
	} else {
		cost += m.GlobalCodingCost(x.GlobalAll())
	}
	return cost
}

// CostBreakdown itemises Cost_T(X; F) by component, so users can see where
// the description length goes — the MDL analogue of a model summary table.
type CostBreakdown struct {
	Header float64 // log*(d)+log*(l)+log*(n)
	Base   float64 // Cost_M(B_G)
	Growth float64 // Cost_M(R_G)
	Locals float64 // Cost_M(B_L)+Cost_M(R_L)
	Shocks float64 // Cost_M(S)
	Coding float64 // Cost_C(X|F)
	Total  float64
}

// CostBreakdown computes the itemised total cost against the tensor.
func (m *Model) CostBreakdown(x *tensor.Tensor) CostBreakdown {
	d, l, n := x.D(), x.L(), x.N()
	b := CostBreakdown{
		Header: mdl.LogStar(d) + mdl.LogStar(l) + mdl.LogStar(n),
		Base:   costBaseGlobal(d),
		Growth: costGrowthGlobal(m.Global),
		Locals: costLocalMatrices(m),
		Shocks: costShockTensor(m.Shocks, d, l, n),
	}
	if m.LocalN != nil {
		b.Coding = m.LocalCodingCost(x)
	} else {
		b.Coding = m.GlobalCodingCost(x.GlobalAll())
	}
	b.Total = b.Header + b.Base + b.Growth + b.Locals + b.Shocks + b.Coding
	return b
}

// GlobalCost returns the global-level MDL total — universal header, global
// model description (base rows, growth effects, the shock tensor without its
// local participation entries), and the Gaussian coding cost of the global
// sequences. This is the cross-engine comparison currency of the engine
// registry: every ModelEngine.CodingCost prices the same global sequences
// under the same header, so `engine=auto` can rank families by it.
func (m *Model) GlobalCost(globals [][]float64) float64 {
	d, n := len(m.Keywords), m.Ticks
	cost := mdl.LogStar(d) + mdl.LogStar(n)
	cost += costBaseGlobal(d)
	cost += costGrowthGlobal(m.Global)
	cost += mdl.LogStar(len(m.Shocks))
	for i := range m.Shocks {
		s := m.Shocks[i] // copy: price the shock without its local entries
		s.Local = nil
		cost += costShock(&s, d, 1, n)
	}
	return cost + m.GlobalCodingCost(globals)
}

// residuals returns obs−est with missing observations mapped to NaN.
func residuals(obs, est []float64) []float64 {
	return residualsInto(nil, obs, est)
}

// residualsInto is residuals writing into a caller-provided buffer (reused
// when its capacity suffices, freshly allocated otherwise). It exists for
// the fitters' objective closures, which are called tens of thousands of
// times per fit; see DESIGN.md, "Hot path & memory discipline".
func residualsInto(dst, obs, est []float64) []float64 {
	n := len(obs)
	if len(est) < n {
		n = len(est)
	}
	if cap(dst) < n {
		dst = make([]float64, n)
	}
	r := dst[:n]
	for t := 0; t < n; t++ {
		if tensor.IsMissing(obs[t]) {
			r[t] = tensor.Missing
			continue
		}
		r[t] = obs[t] - est[t]
	}
	return r
}
