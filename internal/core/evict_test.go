package core

import (
	"errors"
	"reflect"
	"testing"

	"dspot/internal/tensor"
)

// TestStreamRetentionBoundsMemory drives 10 retention windows of data
// through a bounded stream in both modes and pins the memory contract: the
// live length never exceeds the horizon plus one eviction chunk, while the
// absolute head keeps counting and the model stays valid.
func TestStreamRetentionBoundsMemory(t *testing.T) {
	const retention = 128
	full := grammyLike(10*retention, 33)
	mk := map[string]func() *Stream{
		"batch": func() *Stream {
			return NewStream(FitOptions{DisableGrowth: true}, 26)
		},
		"incremental": func() *Stream {
			return NewIncrementalStream(FitOptions{DisableGrowth: true}, 26,
				IncrementalConfig{TailWindow: 52})
		},
	}
	for name, newStream := range mk {
		t.Run(name, func(t *testing.T) {
			s := newStream()
			s.SetRetention(retention)
			chunk := retention / 8
			evicted := 0
			for i, v := range full {
				rec, err := s.AppendAtCtx(nil, -1, v)
				if err != nil {
					t.Fatal(err)
				}
				evicted += rec.EvictedTicks
				if s.Len() > retention+chunk {
					t.Fatalf("tick %d: live length %d exceeds horizon %d + chunk %d",
						i, s.Len(), retention, chunk)
				}
				if got := s.Head(); got != int64(i+1) {
					t.Fatalf("tick %d: Head = %d, want %d", i, got, i+1)
				}
			}
			if s.EvictedTicks() == 0 || int64(evicted) != s.EvictedTicks() {
				t.Fatalf("receipts count %d evicted ticks, stream reports %d",
					evicted, s.EvictedTicks())
			}
			if s.EvictedTicks()+int64(s.Len()) != int64(len(full)) {
				t.Fatalf("evicted %d + live %d != appended %d",
					s.EvictedTicks(), s.Len(), len(full))
			}
			if !s.Ready() {
				t.Fatal("bounded stream never fitted")
			}
			if err := s.Model().Validate(); err != nil {
				t.Fatalf("model invalid after evictions: %v", err)
			}
			if fc := s.Forecast(26); len(fc) < 26 {
				t.Fatalf("short forecast after evictions: %d", len(fc))
			}
		})
	}
}

// TestStreamRestoreBitIdenticalAcrossEviction is the eviction-boundary
// variant of the snapshot equivalence contract: a snapshot taken after the
// retention horizon has already folded ticks away must restore to a stream
// that continues bit-identically — evictions, refits and debt included.
func TestStreamRestoreBitIdenticalAcrossEviction(t *testing.T) {
	opts := FitOptions{DisableGrowth: true}
	full := grammyLike(700, 91)
	mkStream := func() *Stream {
		s := NewIncrementalStream(opts, 26, IncrementalConfig{TailWindow: 52, DebtLimit: 120})
		s.SetRetention(160)
		return s
	}
	s1 := mkStream()
	if _, err := s1.Append(full[:400]...); err != nil {
		t.Fatal(err)
	}
	if s1.EvictedTicks() == 0 {
		t.Fatal("scenario should have evicted before the snapshot")
	}
	if !s1.Ready() {
		t.Fatal("stream not fitted after seed")
	}
	snap := s1.State()
	if snap.Evicted == 0 || snap.Retention != 160 {
		t.Fatalf("snapshot missing eviction state: %+v", snap)
	}
	s2 := RestoreStream(opts, snap)

	for _, v := range full[400:] {
		r1, err1 := s1.Append(v)
		r2, err2 := s2.Append(v)
		if r1 != r2 || (err1 == nil) != (err2 == nil) {
			t.Fatalf("divergent append outcome: live (%v,%v) restored (%v,%v)", r1, err1, r2, err2)
		}
	}
	st1, st2 := s1.State(), s2.State()
	if !reflect.DeepEqual(st1, st2) {
		t.Fatalf("states diverged after identical appends:\nlive:     %+v\nrestored: %+v", st1, st2)
	}
	if !reflect.DeepEqual(s1.Forecast(52), s2.Forecast(52)) {
		t.Fatal("forecasts diverged after identical appends")
	}
}

// TestAppendAtDuplicateAndGap pins the positioned-append semantics:
// replays drop idempotently, partial overlaps keep only the novel suffix,
// forward gaps fill with missing ticks, and an oversized gap is rejected
// whole with ErrGapTooLarge.
func TestAppendAtDuplicateAndGap(t *testing.T) {
	s := NewStream(FitOptions{DisableGrowth: true}, 1000)
	if _, err := s.AppendAtCtx(nil, -1, 1, 2, 3); err != nil {
		t.Fatal(err)
	}

	// Full replay: pure no-op success.
	rec, err := s.AppendAtCtx(nil, 0, 1, 2, 3)
	if err != nil || rec.DroppedTicks != 3 || s.Len() != 3 {
		t.Fatalf("replay: rec=%+v err=%v len=%d", rec, err, s.Len())
	}
	// Partial overlap: the covered prefix drops, the novel suffix lands.
	rec, err = s.AppendAtCtx(nil, 2, 9, 4)
	if err != nil || rec.DroppedTicks != 1 || s.Len() != 4 {
		t.Fatalf("partial overlap: rec=%+v err=%v len=%d", rec, err, s.Len())
	}
	if s.seq[2] != 3 || s.seq[3] != 4 {
		t.Fatalf("late tick rewrote history: %v", s.seq)
	}
	if s.DroppedTicks() != 4 {
		t.Fatalf("DroppedTicks = %d, want 4", s.DroppedTicks())
	}

	// Forward gap: bridged with missing ticks.
	rec, err = s.AppendAtCtx(nil, 6, 5)
	if err != nil || rec.GapTicks != 2 || s.Len() != 7 {
		t.Fatalf("gap fill: rec=%+v err=%v len=%d", rec, err, s.Len())
	}
	if !tensor.IsMissing(s.seq[4]) || !tensor.IsMissing(s.seq[5]) || s.seq[6] != 5 {
		t.Fatalf("gap not bridged with missing ticks: %v", s.seq)
	}
	if s.GapTicks() != 2 || s.Head() != 7 {
		t.Fatalf("GapTicks=%d Head=%d", s.GapTicks(), s.Head())
	}

	// A gap past the limit is rejected whole: no filler, no values, no error
	// besides the typed one.
	s.SetRetention(64)
	if _, err := s.AppendAtCtx(nil, s.Head()+int64(4*64)+1, 8); !errors.Is(err, ErrGapTooLarge) {
		t.Fatalf("oversized gap: err=%v, want ErrGapTooLarge", err)
	}
	if s.Len() != 7 || s.Head() != 7 {
		t.Fatalf("rejected append mutated the stream: len=%d head=%d", s.Len(), s.Head())
	}
	// Exactly at the limit is accepted.
	if _, err := s.AppendAtCtx(nil, s.Head()+int64(4*64), 8); err != nil {
		t.Fatalf("gap at the limit rejected: %v", err)
	}
}

// countingGate is a RefitGate stub tracking attempts and admitting only
// when open.
type countingGate struct {
	open     bool
	attempts int
	admitted int
}

func (g *countingGate) TryAcquire() (func(), bool) {
	g.attempts++
	if !g.open {
		return nil, false
	}
	g.admitted++
	return func() {}, true
}

// TestRefitGateDefersConsolidation pins the desynchronisation contract: a
// refused gate defers the due refit without losing the trigger state, the
// receipt reports the deferral, and the refit fires as soon as the gate
// admits. RefitNow stays exempt — operator intent bypasses the gate.
func TestRefitGateDefersConsolidation(t *testing.T) {
	opts := FitOptions{DisableGrowth: true}
	full := grammyLike(300, 12)
	s := NewStream(opts, 8)
	if _, err := s.Append(full[:200]...); err != nil {
		t.Fatal(err)
	}
	if !s.Ready() {
		t.Fatal("seed fit missing")
	}
	gate := &countingGate{}
	s.SetRefitGate(gate)

	deferred := 0
	for _, v := range full[200:216] {
		rec, err := s.AppendAtCtx(nil, -1, v)
		if err != nil {
			t.Fatal(err)
		}
		if rec.Refitted {
			t.Fatal("closed gate admitted a refit")
		}
		if rec.Deferred {
			deferred++
		}
	}
	// 16 ticks past a cadence of 8: every tick from the 8th on is due.
	if deferred != 9 || s.DeferredRefits() != 9 || gate.attempts != 9 {
		t.Fatalf("deferred=%d DeferredRefits=%d attempts=%d, want 9 each",
			deferred, s.DeferredRefits(), gate.attempts)
	}

	gate.open = true
	rec, err := s.AppendAtCtx(nil, -1, full[216])
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Refitted || gate.admitted != 1 {
		t.Fatalf("open gate should admit the overdue refit: rec=%+v admitted=%d", rec, gate.admitted)
	}

	// RefitNow bypasses a closed gate.
	gate.open = false
	attempts := gate.attempts
	if err := s.RefitNow(nil); err != nil {
		t.Fatal(err)
	}
	if gate.attempts != attempts {
		t.Fatal("RefitNow consulted the gate")
	}
}

// TestRefitJitterStaggersCadence pins the jittered batch trigger: with
// frac=0.8 and cadence 10 the refit lands on the 14th tick after the last
// one, not the 10th.
func TestRefitJitterStaggersCadence(t *testing.T) {
	opts := FitOptions{DisableGrowth: true}
	full := grammyLike(300, 12)
	s := NewStream(opts, 10)
	if _, err := s.Append(full[:200]...); err != nil {
		t.Fatal(err)
	}
	s.SetRefitJitter(0.8)
	if s.cadenceJitter() != 4 {
		t.Fatalf("cadenceJitter = %d, want 4", s.cadenceJitter())
	}
	refitAt := -1
	for i, v := range full[200:220] {
		refitted, err := s.Append(v)
		if err != nil {
			t.Fatal(err)
		}
		if refitted {
			refitAt = i + 1
			break
		}
	}
	if refitAt != 14 {
		t.Fatalf("jittered refit fired after %d ticks, want 14", refitAt)
	}

	s.SetRefitJitter(1.5) // out of range: resets to exact cadence
	if s.jitterFrac != 0 || s.cadenceJitter() != 0 {
		t.Fatal("out-of-range jitter not reset")
	}
}

// TestSetRetentionClamps pins the horizon bounds: tiny horizons clamp up to
// minRetention, non-positive disables.
func TestSetRetentionClamps(t *testing.T) {
	s := NewStream(FitOptions{}, 26)
	s.SetRetention(1)
	if s.Retention() != minRetention {
		t.Fatalf("Retention = %d, want clamp to %d", s.Retention(), minRetention)
	}
	s.SetRetention(0)
	if s.Retention() != 0 {
		t.Fatal("SetRetention(0) should disable the bound")
	}
}
