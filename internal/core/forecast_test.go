package core

import (
	"math"
	"testing"

	"dspot/internal/stats"
)

// grammyModel builds a fitted-looking model with one annual shock, as in the
// paper's Fig. 11 scenario.
func grammyModel(nTrain int) *Model {
	occ := (nTrain - 1 - 6) / 52
	strengths := make([]float64, occ+1)
	for i := range strengths {
		strengths[i] = 9
	}
	return &Model{
		Keywords: []string{"grammy"}, Locations: []string{"WW"}, Ticks: nTrain,
		Global: []KeywordParams{{N: 100, Beta: 0.5, Delta: 0.45, Gamma: 0.5,
			I0: 0.02, TEta: NoGrowth}},
		Shocks: []Shock{{Keyword: 0, Period: 52, Start: 6, Width: 2, Strength: strengths}},
	}
}

func TestFutureStrengthIgnoresZeros(t *testing.T) {
	s := Shock{Strength: []float64{4, 0, 8}}
	if got := futureStrength(&s); math.Abs(got-6) > 1e-12 {
		t.Fatalf("futureStrength = %g, want 6", got)
	}
	empty := Shock{Strength: []float64{0, 0}}
	if futureStrength(&empty) != 0 {
		t.Fatal("all-zero strengths should project 0")
	}
}

func TestFutureStrengthEndedEvent(t *testing.T) {
	// Two trailing zeros: the event ended; it must not recur.
	ended := Shock{Strength: []float64{8, 9, 8, 0, 0}}
	if got := futureStrength(&ended); got != 0 {
		t.Fatalf("ended event projects %g, want 0", got)
	}
	// A single trailing zero is inconclusive (window edge): still projects.
	edge := Shock{Strength: []float64{8, 9, 8, 0}}
	if got := futureStrength(&edge); got <= 0 {
		t.Fatalf("edge-cut event projects %g, want positive", got)
	}
}

func TestForecastEndedFranchiseDoesNotRecur(t *testing.T) {
	m := &Model{
		Keywords: []string{"franchise"}, Locations: []string{"WW"}, Ticks: 400,
		Global: []KeywordParams{{N: 100, Beta: 0.5, Delta: 0.45, Gamma: 0.5,
			I0: 0.02, TEta: NoGrowth}},
		Shocks: []Shock{{Keyword: 0, Period: 52, Start: 6, Width: 2,
			Strength: []float64{9, 9, 9, 9, 9, 0, 0, 0}}},
	}
	fc := m.ForecastGlobal(0, 156)
	base := stats.Quantile(fc, 0.5)
	if stats.Max(fc) > base*1.4 {
		t.Fatalf("ended franchise recurred in forecast: max %g base %g",
			stats.Max(fc), base)
	}
	if events := m.PredictedEvents(0, 156); len(events) != 0 {
		t.Fatalf("ended franchise predicted events: %+v", events)
	}
}

func TestForecastGlobalPredictsFutureSpikes(t *testing.T) {
	m := grammyModel(400)
	h := 156 // three more years
	fc := m.ForecastGlobal(0, h)
	if len(fc) != h {
		t.Fatalf("forecast length %d, want %d", len(fc), h)
	}
	// Expected future occurrences at ticks 422, 474, 526 (start 6 + 52k,
	// first k with 6+52k >= 400 is k=8).
	base := stats.Quantile(fc, 0.5)
	for _, abs := range []int{422, 474, 526} {
		rel := abs - 400
		window := fc[rel : rel+6]
		if stats.Max(window) < base*1.5 {
			t.Fatalf("no predicted spike near tick %d: window %v base %g", abs, window, base)
		}
	}
}

func TestForecastGlobalFullIncludesTraining(t *testing.T) {
	m := grammyModel(400)
	full := m.ForecastGlobalFull(0, 52)
	if len(full) != 452 {
		t.Fatalf("full length %d, want 452", len(full))
	}
	fit := m.SimulateGlobal(0, 400)
	for i := range fit {
		if math.Abs(full[i]-fit[i]) > 1e-9 {
			t.Fatalf("training prefix differs at %d", i)
		}
	}
}

func TestForecastNonCyclicShockDoesNotRecur(t *testing.T) {
	m := &Model{
		Keywords: []string{"k"}, Locations: []string{"WW"}, Ticks: 200,
		Global: []KeywordParams{{N: 100, Beta: 0.5, Delta: 0.45, Gamma: 0.5,
			I0: 0.02, TEta: NoGrowth}},
		Shocks: []Shock{{Keyword: 0, Period: NonCyclic, Start: 100, Width: 2,
			Strength: []float64{10}}},
	}
	fc := m.ForecastGlobal(0, 200)
	base := stats.Quantile(fc, 0.5)
	if stats.Max(fc) > base*1.4 {
		t.Fatalf("non-cyclic shock recurred in forecast: max %g base %g", stats.Max(fc), base)
	}
}

func TestForecastZeroAndNegativeHorizon(t *testing.T) {
	m := grammyModel(100)
	if m.ForecastGlobal(0, 0) != nil || m.ForecastGlobal(0, -5) != nil {
		t.Fatal("non-positive horizon should return nil")
	}
}

func TestForecastLocalUsesLocalScale(t *testing.T) {
	m := grammyModel(200)
	m.Locations = []string{"US", "NP"}
	m.LocalN = [][]float64{{80, 2}}
	m.LocalR = [][]float64{{0, 0}}
	m.Shocks[0].Local = make([][]float64, len(m.Shocks[0].Strength))
	for occ := range m.Shocks[0].Local {
		m.Shocks[0].Local[occ] = []float64{9, 0}
	}
	us := m.ForecastLocal(0, 0, 104)
	np := m.ForecastLocal(0, 1, 104)
	if stats.Max(us) <= stats.Max(np) {
		t.Fatalf("US forecast should dominate NP: %g vs %g", stats.Max(us), stats.Max(np))
	}
	// US participates in the annual shock; NP does not.
	usBase, npBase := stats.Quantile(us, 0.5), stats.Quantile(np, 0.5)
	if stats.Max(us) < usBase*1.5 {
		t.Fatal("US forecast lost the cyclic spike")
	}
	if npBase > 0 && stats.Max(np) > npBase*1.5 {
		t.Fatal("NP forecast has a spike it should not participate in")
	}
}

func TestPredictedEvents(t *testing.T) {
	m := grammyModel(400)
	events := m.PredictedEvents(0, 156)
	if len(events) != 3 {
		t.Fatalf("predicted %d events, want 3", len(events))
	}
	want := []int{422, 474, 526}
	for i, e := range events {
		if e.Start != want[i] {
			t.Fatalf("event %d at %d, want %d", i, e.Start, want[i])
		}
		if e.Width != 2 || e.Period != 52 {
			t.Fatalf("event geometry %+v", e)
		}
		if math.Abs(e.Strength-9) > 1e-12 {
			t.Fatalf("event strength %g, want 9", e.Strength)
		}
	}
}

func TestPredictedEventsNoCyclicShocks(t *testing.T) {
	m := &Model{
		Keywords: []string{"k"}, Ticks: 100,
		Global: []KeywordParams{{N: 1}},
		Shocks: []Shock{{Keyword: 0, Period: NonCyclic, Start: 50, Width: 1,
			Strength: []float64{5}}},
	}
	if events := m.PredictedEvents(0, 100); len(events) != 0 {
		t.Fatalf("non-cyclic shock predicted events: %v", events)
	}
}

func TestForecastEndToEndGrammy(t *testing.T) {
	// Full pipeline: synthesize 8 years of annual spikes, train on 400
	// ticks, verify the next spikes are forecast (the paper's Fig. 11).
	truth := KeywordParams{N: 100, Beta: 0.5, Delta: 0.45, Gamma: 0.5, I0: 0.02, TEta: NoGrowth}
	nAll := 560
	occAll := (nAll - 1 - 6) / 52
	strengths := make([]float64, occAll+1)
	for i := range strengths {
		strengths[i] = 9
	}
	shock := Shock{Keyword: 0, Period: 52, Start: 6, Width: 2, Strength: strengths}
	obs := synthGlobal(truth, []Shock{shock}, nAll, 0.01, 11)

	nTrain := 400
	res, err := FitGlobalSequence(obs[:nTrain], 0, FitOptions{DisableGrowth: true})
	if err != nil {
		t.Fatal(err)
	}
	m := &Model{Keywords: []string{"grammy"}, Locations: []string{"WW"},
		Ticks: nTrain, Global: []KeywordParams{res.Params}, Shocks: res.Shocks}
	fc := m.ForecastGlobal(0, nAll-nTrain)

	// The forecast must beat a flat-mean forecast by a wide margin.
	futureObs := obs[nTrain:]
	flat := make([]float64, len(futureObs))
	trainMean := stats.Mean(obs[:nTrain])
	for i := range flat {
		flat[i] = trainMean
	}
	fcRMSE := stats.RMSE(futureObs, fc)
	flatRMSE := stats.RMSE(futureObs, flat)
	if fcRMSE >= flatRMSE*0.8 {
		t.Fatalf("forecast RMSE %g not clearly better than flat %g", fcRMSE, flatRMSE)
	}
	// And it must place spikes: correlation with the truth should be strong.
	if r := stats.Pearson(futureObs, fc); r < 0.7 {
		t.Fatalf("forecast correlation %g too weak", r)
	}
}
