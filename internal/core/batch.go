package core

import "math"

// Batched and incremental forms of the SIV simulation. Both share one
// per-tick body (simState.tick) that is bit-identical to SimulateInto over
// every input — the fast path's skipped ×1.0 growth factor and skipped ÷1.0
// renormalisation are exact, and the per-tick ε sanitisation is a no-op on
// clean profiles — so callers may mix SimulateInto, windowed advances, and
// batched lanes freely without perturbing results (pinned by batch_test.go).
//
// The fitters use them in two ways:
//
//   - simState checkpoints: fitShockStrengths advances the state to an
//     occurrence's window start once, then re-simulates only the window per
//     golden-section evaluation (the state entering the window does not
//     depend on the strength being searched, so the windowed SSE is
//     bit-identical to a full re-simulation at a fraction of the cost).
//   - SimulateBatchInto: multi-start LM candidates are scored by one batched
//     forward pass — every parameter vector advanced per tick in one loop —
//     so the fitters can prune hopeless starts before paying for full LM
//     runs (fitBaseIter, evaluateCandidate).

// simState is the running state of an incremental SIV simulation: the
// sanitised parameters plus (s, i, v) at tick t. Copying the struct
// checkpoints the simulation; advancing a copy never perturbs the original.
type simState struct {
	beta, delta, gamma float64
	N                  float64
	onePlusEta         float64
	gStart             int // first tick with the growth factor active
	s, i, v            float64
	t                  int
}

// newSimState sanitises the inputs exactly as SimulateInto does and returns
// the state at tick 0. growthRate overrides p's own η₀ when >= 0.
func newSimState(p *KeywordParams, n int, growthRate float64) simState {
	i := clamp01(p.I0)
	eta := p.Eta0
	if growthRate >= 0 {
		eta = growthRate
	}
	N := p.N
	if math.IsNaN(N) || math.IsInf(N, 0) || N < 0 {
		N = 0
	}
	if math.IsNaN(eta) || math.IsInf(eta, 0) {
		eta = 0
	}
	gStart := n
	if p.TEta != NoGrowth {
		gStart = p.TEta
		if gStart < 0 {
			gStart = 0
		}
		if gStart > n {
			gStart = n
		}
	}
	return simState{beta: p.Beta, delta: p.Delta, gamma: p.Gamma, N: N,
		onePlusEta: 1 + eta, gStart: gStart, s: 1 - i, i: i, v: 0}
}

// tick advances the state one step under susceptible rate e and returns the
// observation N·i(t) of the tick being left. The op sequence mirrors
// SimulateInto's general loop; ×1.0 and ÷1.0 are bit-exact, so the result
// matches the split fast path too.
func (st *simState) tick(e float64) float64 {
	if math.IsNaN(e) || math.IsInf(e, 0) {
		e = 1
	}
	factor := 1.0
	if st.t >= st.gStart {
		factor = st.onePlusEta
	}
	out := st.N * st.i
	infect := st.beta * st.s * e * st.i * factor
	lose := st.delta * st.i
	wake := st.gamma * st.v
	s := clamp01(st.s - infect + wake)
	i := clamp01(st.i + infect - lose)
	v := clamp01(st.v + lose - wake)
	if tot := s + i + v; tot > 0 && tot != 1 {
		s, i, v = s/tot, i/tot, v/tot
	}
	st.s, st.i, st.v = s, i, v
	st.t++
	return out
}

// advance simulates ticks [st.t, t1), writing the observations into the
// corresponding dst entries (dst indexes absolute ticks; entries outside the
// window are untouched). eps may be nil for ε ≡ 1.
func (st *simState) advance(dst, eps []float64, t1 int) {
	for st.t < t1 {
		t := st.t // tick advances st.t; index the entered tick
		e := 1.0
		if eps != nil {
			e = eps[t]
		}
		dst[t] = st.tick(e)
	}
}

// SimulateBatchInto advances k parameter vectors through the SIV recurrence
// together, one tick-major loop over all lanes, and returns the k
// simulations packed lane-major: lane j occupies out[j*n : (j+1)*n]. Each
// lane's values are bit-identical to Simulate(&params[j], n, eps[j],
// growthRate). eps must either be nil (ε ≡ 1 for every lane) or hold one
// profile per lane; lanes may share a profile slice, and individual entries
// may be nil. dst is reused when it has capacity for k*n values.
//
// The batch form exists for probe workloads — scoring many candidate
// parameter vectors against the same window — where the per-call overhead
// and cache churn of k separate simulations dominates: the fitters use it to
// rank multi-start LM candidates by one forward pass (see fitBaseIter).
func SimulateBatchInto(dst []float64, params []KeywordParams, n int,
	eps [][]float64, growthRate float64) []float64 {
	k := len(params)
	if cap(dst) < k*n {
		dst = make([]float64, k*n)
	}
	out := dst[:k*n]
	states := make([]simState, k)
	for j := range states {
		states[j] = newSimState(&params[j], n, growthRate)
	}
	for t := 0; t < n; t++ {
		for j := range states {
			e := 1.0
			if eps != nil && eps[j] != nil {
				e = eps[j][t]
			}
			out[j*n+t] = states[j].tick(e)
		}
	}
	return out
}
