package core

import (
	"math"
	"testing"

	"dspot/internal/mdl"
	"dspot/internal/tensor"
)

func TestCostShockChargesNonZeroStrengths(t *testing.T) {
	s := Shock{Keyword: 0, Period: 52, Start: 0, Width: 1,
		Strength: []float64{1, 0, 2}}
	full := costShock(&s, 4, 10, 200)
	s2 := s
	s2.Strength = []float64{1, 0, 0}
	fewer := costShock(&s2, 4, 10, 200)
	if full-fewer != mdl.FloatCost {
		t.Fatalf("one extra non-zero strength should cost exactly one float: %g vs %g",
			full, fewer)
	}
}

func TestCostShockChargesLocalEntries(t *testing.T) {
	s := Shock{Keyword: 0, Period: 0, Start: 0, Width: 1, Strength: []float64{1}}
	bare := costShock(&s, 4, 10, 200)
	s.Local = [][]float64{{0, 0, 3, 0, 0, 7, 0, 0, 0, 0}}
	withLocal := costShock(&s, 4, 10, 200)
	entry := mdl.IntCost(4) + mdl.IntCost(10) + mdl.IntCost(200) + mdl.FloatCost
	if math.Abs(withLocal-bare-2*entry) > 1e-9 {
		t.Fatalf("two local entries should cost 2×entry: got %g", withLocal-bare)
	}
}

func TestCostShockTensorIncludesLogStar(t *testing.T) {
	if got := costShockTensor(nil, 1, 1, 100); got != mdl.LogStar(0) {
		t.Fatalf("empty tensor cost = %g", got)
	}
	shocks := []Shock{
		{Keyword: 0, Period: 0, Start: 0, Width: 1, Strength: []float64{1}},
		{Keyword: 0, Period: 0, Start: 5, Width: 1, Strength: []float64{1}},
	}
	want := mdl.LogStar(2) + costShock(&shocks[0], 1, 1, 100) + costShock(&shocks[1], 1, 1, 100)
	if got := costShockTensor(shocks, 1, 1, 100); math.Abs(got-want) > 1e-9 {
		t.Fatalf("tensor cost = %g, want %g", got, want)
	}
}

func TestCostGrowthGlobal(t *testing.T) {
	none := []KeywordParams{{TEta: NoGrowth}, {TEta: NoGrowth}}
	if got := costGrowthGlobal(none); got != 2 { // just the indicator bits
		t.Fatalf("no-growth cost = %g, want 2", got)
	}
	one := []KeywordParams{{TEta: 50, Eta0: 0.3}, {TEta: NoGrowth}}
	if got := costGrowthGlobal(one); got != 2+mdl.FloatsCost(2) {
		t.Fatalf("one-growth cost = %g", got)
	}
}

func TestCostLocalMatrices(t *testing.T) {
	m := &Model{Keywords: []string{"a", "b"}, Locations: []string{"X", "Y", "Z"}}
	if got := costLocalMatrices(m); got != 0 {
		t.Fatalf("nil local matrices cost %g", got)
	}
	m.LocalN = newMatrix(2, 3)
	if got := costLocalMatrices(m); got != mdl.FloatsCost(6) {
		t.Fatalf("B_L cost = %g", got)
	}
	m.LocalR = newMatrix(2, 3)
	if got := costLocalMatrices(m); got != mdl.FloatsCost(12) {
		t.Fatalf("B_L+R_L cost = %g", got)
	}
}

func TestResidualsMissingPropagation(t *testing.T) {
	obs := []float64{1, tensor.Missing, 3}
	est := []float64{0.5, 2, 2}
	r := residuals(obs, est)
	if r[0] != 0.5 || !math.IsNaN(r[1]) || r[2] != 1 {
		t.Fatalf("residuals = %v", r)
	}
	// est shorter than obs: compare over common prefix.
	r = residuals(obs, est[:2])
	if len(r) != 2 {
		t.Fatalf("short-est residuals length %d", len(r))
	}
}

func TestTotalCostComponentsFinite(t *testing.T) {
	n := 60
	x := tensor.New([]string{"a"}, []string{"X", "Y"}, n)
	p := KeywordParams{N: 10, Beta: 0.5, Delta: 0.45, Gamma: 0.5, I0: 0.02, TEta: NoGrowth}
	sim := Simulate(&p, n, nil, -1)
	for j := 0; j < 2; j++ {
		for t1 := 0; t1 < n; t1++ {
			x.Set(0, j, t1, sim[t1]*(0.4+0.2*float64(j)))
		}
	}
	m := &Model{Keywords: x.Keywords, Locations: x.Locations, Ticks: n,
		Global: []KeywordParams{p}}
	c1 := m.TotalCost(x) // global coding path (no local matrices)
	if math.IsNaN(c1) || math.IsInf(c1, 0) {
		t.Fatalf("global-path cost %g", c1)
	}
	m.LocalN = [][]float64{{4, 6}}
	m.LocalR = [][]float64{{0, 0}}
	c2 := m.TotalCost(x) // local coding path
	if math.IsNaN(c2) || math.IsInf(c2, 0) {
		t.Fatalf("local-path cost %g", c2)
	}
	if c1 == c2 {
		t.Fatal("local and global coding paths should differ")
	}
}

func TestCostBreakdownSumsToTotal(t *testing.T) {
	n := 80
	x := tensor.New([]string{"a"}, []string{"X", "Y"}, n)
	p := KeywordParams{N: 10, Beta: 0.5, Delta: 0.45, Gamma: 0.5, I0: 0.02, TEta: NoGrowth}
	sim := Simulate(&p, n, nil, -1)
	for j := 0; j < 2; j++ {
		for t1 := range sim {
			x.Set(0, j, t1, sim[t1]*0.5)
		}
	}
	m := &Model{Keywords: x.Keywords, Locations: x.Locations, Ticks: n,
		Global: []KeywordParams{p},
		Shocks: []Shock{{Keyword: 0, Period: 0, Start: 10, Width: 1, Strength: []float64{2}}}}
	b := m.CostBreakdown(x)
	sum := b.Header + b.Base + b.Growth + b.Locals + b.Shocks + b.Coding
	if math.Abs(sum-b.Total) > 1e-9 {
		t.Fatalf("breakdown parts %g != total %g", sum, b.Total)
	}
	if math.Abs(b.Total-m.TotalCost(x)) > 1e-9 {
		t.Fatalf("breakdown total %g != TotalCost %g", b.Total, m.TotalCost(x))
	}
	if b.Shocks <= 0 || b.Header <= 0 || b.Base <= 0 {
		t.Fatalf("component missing: %+v", b)
	}
	// Local matrices present → Locals component counted.
	m.LocalN = [][]float64{{5, 5}}
	m.LocalR = [][]float64{{0, 0}}
	b2 := m.CostBreakdown(x)
	if b2.Locals <= 0 {
		t.Fatal("Locals component missing with local matrices present")
	}
}

func TestGlobalCodingCostRewardsBetterFit(t *testing.T) {
	n := 80
	p := KeywordParams{N: 10, Beta: 0.5, Delta: 0.45, Gamma: 0.5, I0: 0.02, TEta: NoGrowth}
	obs := Simulate(&p, n, nil, -1)
	good := &Model{Keywords: []string{"a"}, Ticks: n, Global: []KeywordParams{p}}
	bad := &Model{Keywords: []string{"a"}, Ticks: n,
		Global: []KeywordParams{{N: 1, Beta: 0.1, Delta: 0.9, Gamma: 0.1, I0: 0.5, TEta: NoGrowth}}}
	if good.GlobalCodingCost([][]float64{obs}) >= bad.GlobalCodingCost([][]float64{obs}) {
		t.Fatal("exact model should code the data more cheaply")
	}
}

func TestEpsilonFromShocksMatchesModelEpsilon(t *testing.T) {
	shocks := []Shock{
		{Keyword: 0, Period: 10, Start: 1, Width: 2, Strength: []float64{2, 3}},
		{Keyword: 0, Period: 0, Start: 5, Width: 1, Strength: []float64{7}},
	}
	m := &Model{Keywords: []string{"a"}, Ticks: 20, Global: make([]KeywordParams, 1),
		Shocks: shocks}
	a := epsilonFromShocks(shocks, 20)
	b := m.EpsilonGlobal(0, 20)
	for t1 := range a {
		if a[t1] != b[t1] {
			t.Fatalf("mismatch at %d: %g vs %g", t1, a[t1], b[t1])
		}
	}
}
