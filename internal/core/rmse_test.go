package core

import (
	"math"
	"testing"

	"dspot/internal/tensor"
)

// Regression: rmse used to answer 0 — a claimed *perfect* fit — when no
// tick had both observation and estimate present. It must answer NaN so
// callers cannot mistake "nothing to compare" for "fits exactly".
func TestRMSEZeroOverlapIsNaN(t *testing.T) {
	missing := []float64{tensor.Missing, tensor.Missing, tensor.Missing}
	est := []float64{1, 2, 3}
	if got := rmse(missing, est); !math.IsNaN(got) {
		t.Fatalf("rmse(all-missing, est) = %g, want NaN", got)
	}
	if got := rmse(nil, nil); !math.IsNaN(got) {
		t.Fatalf("rmse(empty) = %g, want NaN", got)
	}
	// Sanity: overlapping ticks still produce the usual value.
	obs := []float64{1, tensor.Missing, 3}
	if got := rmse(obs, est); got != 0 {
		t.Fatalf("rmse over observed ticks = %g, want 0", got)
	}
}

// RMSEGlobal inherits the NaN semantics through rmse.
func TestRMSEGlobalAllMissing(t *testing.T) {
	m := &Model{
		Keywords:  []string{"k"},
		Locations: []string{"all"},
		Ticks:     8,
		Global:    []KeywordParams{{N: 1, Beta: 0.5, Delta: 0.4, Gamma: 0.3, I0: 0.1, TEta: NoGrowth}},
	}
	obs := make([]float64, 8)
	for i := range obs {
		obs[i] = tensor.Missing
	}
	if got := m.RMSEGlobal(0, obs); !math.IsNaN(got) {
		t.Fatalf("RMSEGlobal on all-missing obs = %g, want NaN", got)
	}
}
