package core

import (
	"context"
	"encoding/binary"
	"math"
	"testing"
	"time"
)

// FuzzFitSequence drives arbitrary float series — including NaN, Inf,
// negatives, denormals and adversarial bit patterns — through the full
// single-sequence GlobalFit. The contract under fuzzing is narrow but
// absolute: the fit returns an error or a model, it never panics, and a
// returned model carries only finite parameters.
func FuzzFitSequence(f *testing.F) {
	mk := func(vals ...float64) []byte {
		b := make([]byte, 8*len(vals))
		for i, v := range vals {
			binary.LittleEndian.PutUint64(b[8*i:], math.Float64bits(v))
		}
		return b
	}
	// Seeds: a fittable bumpy series, degenerate values, and boundary sizes.
	bumpy := make([]float64, 24)
	for i := range bumpy {
		bumpy[i] = 2 + math.Sin(float64(i)/3)
	}
	bumpy[12] += 9
	f.Add(mk(bumpy...))
	f.Add(mk(1, 2, 3, 4, 5, 6, 7, 8))
	f.Add(mk(math.Inf(1), 1, 2, 3, 4, 5, 6, 7))
	f.Add(mk(math.NaN(), math.NaN(), math.NaN(), 1, 2, 3, 4, 5, 6, 7, 8))
	f.Add(mk(-1, 1, 2, 3, 4, 5, 6, 7, 8))
	f.Add(mk(0, 0, 0, 0, 0, 0, 0, 0, 0))
	f.Add(mk(1e308, 1e308, 1, 2, 3, 4, 5, 6))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 8*48 {
			data = data[:8*48] // bound fit cost, not coverage
		}
		seq := make([]float64, len(data)/8)
		for i := range seq {
			seq[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[8*i:]))
		}
		// Adversarial series can make the optimisers grind (legitimately —
		// more starts, more shock candidates); the cooperative-cancellation
		// deadline keeps fuzz throughput up without masking panics. It also
		// bounds input-minimisation cost, which reruns candidates serially.
		ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
		defer cancel()
		opts := FitOptions{Workers: 1, MaxOuterIter: 1, MaxShocks: 1, Context: ctx}
		res, err := FitGlobalSequence(seq, 0, opts)
		if err != nil {
			return
		}
		for _, v := range []float64{res.Params.N, res.Params.Beta, res.Params.Delta,
			res.Params.Gamma, res.Params.I0, res.Params.Eta0, res.Scale} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("fit accepted degenerate input and produced non-finite params %+v", res.Params)
			}
		}
	})
}
