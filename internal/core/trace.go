package core

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Fit-progress tracing: the fitting pipeline is a multi-layer optimisation
// (per-keyword LM base/growth alternation, greedy MDL-gated shock discovery,
// then d×l LocalFit) and runs as a black box without it. A ProgressFunc set
// on FitOptions receives a FitEvent at every stage boundary; FitTrace is the
// canonical consumer, aggregating events into a FitReport. The hook is
// strictly zero-cost when nil: no timestamps are taken and no events are
// built unless FitOptions.Progress is set.

// Stage names carried by FitEvent.Stage.
const (
	StageBase      = "base"       // LM base-parameter fit {N, β, δ, γ, i0}
	StageGrowth    = "growth"     // growth-effect search + MDL verdict
	StageShock     = "shock"      // one shock candidate + MDL verdict
	StageKeyword   = "keyword"    // one keyword's global fit, complete
	StageGlobal    = "global"     // the whole GlobalFit phase
	StageLocal     = "local"      // the whole LocalFit phase
	StageLocalCell = "local_cell" // one (keyword, location) local fit
	StagePanic     = "panic"      // a contained worker panic (see FitReport.Panics)
)

// FitEvent is one fit-progress observation emitted at a stage boundary.
type FitEvent struct {
	Stage     string        // one of the Stage* constants
	Keyword   int           // keyword index; -1 for phase-level events
	Location  int           // location index; -1 unless Stage == StageLocalCell
	Round     int           // outer alternation round (keyword events)
	LMIters   int           // LM iterations spent (base and keyword events)
	LMStalls  int           // LM runs that stalled at MaxLambda (base and keyword events)
	Residual  float64       // objective after the stage (SSE or MDL cost)
	CostDelta float64       // candidate MDL cost − incumbent cost (shock/growth)
	Accepted  bool          // MDL verdict (shock/growth events)
	Shock     *Shock        // the candidate (shock events; nil otherwise)
	Duration  time.Duration // wall-clock spent in the stage
}

// ProgressFunc receives fit-progress events. It may be called concurrently
// from fitting workers and must be safe for parallel use.
type ProgressFunc func(FitEvent)

// chainProgress composes two hooks (either may be nil).
func chainProgress(a, b ProgressFunc) ProgressFunc {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	return func(ev FitEvent) { a(ev); b(ev) }
}

// emit sends an event when tracing is enabled.
func (g *gfit) emit(ev FitEvent) {
	if g.opts.Progress != nil {
		g.opts.Progress(ev)
	}
}

// traceNow returns a timestamp only when tracing is enabled, so disabled
// runs never touch the clock.
func (g *gfit) traceNow() time.Time {
	if g.opts.Progress == nil {
		return time.Time{}
	}
	return time.Now()
}

// KeywordFitStats summarises one keyword's global fit inside a FitReport.
type KeywordFitStats struct {
	Keyword      int `json:"keyword"`
	Rounds       int `json:"rounds"`
	LMIterations int `json:"lm_iterations"`
	// LMStalls counts LM sub-problems that ended stalled (damping hit
	// MaxLambda without an improving step — lm.Result.Stalled) rather than
	// converged or out of budget. A healthy analytic-Jacobian fit stalls
	// only on starts parked in hopeless basins; a climbing stall rate is
	// the early symptom of a wrong Jacobian, which LM experiences as an
	// objective that refuses to descend along the predicted direction.
	LMStalls       int           `json:"lm_stalls"`
	Cost           float64       `json:"cost"` // final MDL cost (normalised data)
	ShocksTried    int           `json:"shocks_tried"`
	ShocksAccepted int           `json:"shocks_accepted"`
	Duration       time.Duration `json:"duration_ns"`
}

// FitReport aggregates a fit run's trace events: where the wall-clock went,
// how hard LM worked, and what the MDL gates decided. Stage durations for
// per-keyword and per-cell stages sum across parallel workers, so they can
// exceed the phase wall-clock; the Global/Local durations are true
// wall-clock for each phase.
type FitReport struct {
	Keywords       int                      `json:"keywords"`
	LMIterations   int                      `json:"lm_iterations"`
	LMStalls       int                      `json:"lm_stalls"`
	ShocksTried    int                      `json:"shocks_tried"`
	ShocksAccepted int                      `json:"shocks_accepted"`
	GrowthTried    int                      `json:"growth_tried"`
	GrowthAccepted int                      `json:"growth_accepted"`
	LocalCells     int                      `json:"local_cells"`
	Panics         int                      `json:"panics"` // contained worker panics
	GlobalDuration time.Duration            `json:"global_duration_ns"`
	LocalDuration  time.Duration            `json:"local_duration_ns"`
	StageDurations map[string]time.Duration `json:"stage_durations_ns"`
	PerKeyword     []KeywordFitStats        `json:"per_keyword"`
}

// TotalDuration is the wall-clock of the traced phases.
func (r *FitReport) TotalDuration() time.Duration {
	return r.GlobalDuration + r.LocalDuration
}

// String renders the report as the human-readable block printed by the
// -stats CLI flags.
func (r *FitReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fit report: %d keywords, %d LM iterations (%d stalled runs), shocks %d tried / %d accepted",
		r.Keywords, r.LMIterations, r.LMStalls, r.ShocksTried, r.ShocksAccepted)
	if r.GrowthTried > 0 {
		fmt.Fprintf(&b, ", growth %d tried / %d accepted", r.GrowthTried, r.GrowthAccepted)
	}
	if r.Panics > 0 {
		fmt.Fprintf(&b, ", %d PANICS CONTAINED", r.Panics)
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "  phases: global %v", r.GlobalDuration.Round(time.Millisecond))
	if r.LocalCells > 0 {
		fmt.Fprintf(&b, ", local %v (%d cells)",
			r.LocalDuration.Round(time.Millisecond), r.LocalCells)
	}
	b.WriteByte('\n')
	if len(r.StageDurations) > 0 {
		stages := make([]string, 0, len(r.StageDurations))
		for s := range r.StageDurations {
			stages = append(stages, s)
		}
		sort.Strings(stages)
		b.WriteString("  stages (worker time):")
		for _, s := range stages {
			fmt.Fprintf(&b, " %s=%v", s, r.StageDurations[s].Round(time.Millisecond))
		}
		b.WriteByte('\n')
	}
	for _, k := range r.PerKeyword {
		fmt.Fprintf(&b, "  keyword %-3d rounds=%d lm_iters=%-5d cost=%-10.1f shocks=%d/%d  %v\n",
			k.Keyword, k.Rounds, k.LMIterations, k.Cost,
			k.ShocksAccepted, k.ShocksTried, k.Duration.Round(time.Millisecond))
	}
	return b.String()
}

// FitTrace aggregates FitEvents into a FitReport. Safe for concurrent use;
// one FitTrace should observe one fit run (or one run series whose events
// you want summed, e.g. a whole experiment sweep).
type FitTrace struct {
	mu     sync.Mutex
	report FitReport
	perKw  map[int]*KeywordFitStats
}

// NewFitTrace returns an empty collector.
func NewFitTrace() *FitTrace {
	return &FitTrace{
		report: FitReport{StageDurations: make(map[string]time.Duration)},
		perKw:  make(map[int]*KeywordFitStats),
	}
}

// Hook returns the ProgressFunc to set on FitOptions.Progress.
func (t *FitTrace) Hook() ProgressFunc { return t.observe }

func (t *FitTrace) kw(i int) *KeywordFitStats {
	s, ok := t.perKw[i]
	if !ok {
		s = &KeywordFitStats{Keyword: i}
		t.perKw[i] = s
	}
	return s
}

func (t *FitTrace) observe(ev FitEvent) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.report.StageDurations[ev.Stage] += ev.Duration
	switch ev.Stage {
	case StageShock:
		t.report.ShocksTried++
		k := t.kw(ev.Keyword)
		k.ShocksTried++
		if ev.Accepted {
			t.report.ShocksAccepted++
			k.ShocksAccepted++
		}
	case StageGrowth:
		t.report.GrowthTried++
		if ev.Accepted {
			t.report.GrowthAccepted++
		}
	case StageKeyword:
		t.report.Keywords++
		t.report.LMIterations += ev.LMIters
		t.report.LMStalls += ev.LMStalls
		k := t.kw(ev.Keyword)
		k.Rounds = ev.Round
		k.LMIterations += ev.LMIters
		k.LMStalls += ev.LMStalls
		k.Cost = ev.Residual
		k.Duration += ev.Duration
	case StageGlobal:
		t.report.GlobalDuration += ev.Duration
	case StageLocal:
		t.report.LocalDuration += ev.Duration
	case StageLocalCell:
		t.report.LocalCells++
	case StagePanic:
		t.report.Panics++
	}
}

// Report returns a copy of the aggregated report.
func (t *FitTrace) Report() *FitReport {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := t.report
	out.StageDurations = make(map[string]time.Duration, len(t.report.StageDurations))
	for k, v := range t.report.StageDurations {
		out.StageDurations[k] = v
	}
	kws := make([]int, 0, len(t.perKw))
	for i := range t.perKw {
		kws = append(kws, i)
	}
	sort.Ints(kws)
	out.PerKeyword = make([]KeywordFitStats, 0, len(kws))
	for _, i := range kws {
		out.PerKeyword = append(out.PerKeyword, *t.perKw[i])
	}
	return &out
}
