package core

import "sort"

// Shock consolidation: incremental refits discover events one window at a
// time, so a cyclic real-world event first enters the model as a series of
// one-shot shocks — each learned when its occurrence arrived. Once several
// phase-aligned one-shots exist, a single cyclic shock describes them more
// cheaply (one header, one strength per occurrence, and the ability to
// forecast the next occurrence). consolidateShocks proposes such merges and
// accepts them under the usual MDL gate.

// consolidateShocks merges groups of same-phase one-shot shocks of the
// current keyword into cyclic shocks while the cost improves.
func (g *gfit) consolidateShocks() {
	for {
		if !g.tryConsolidateOnce() {
			return
		}
	}
}

// tryConsolidateOnce attempts the single best merge; it reports whether a
// merge was accepted.
func (g *gfit) tryConsolidateOnce() bool {
	// One-shot shocks, sorted by start.
	var oneShots []int
	for si, s := range g.shocks {
		if s.Period == NonCyclic {
			oneShots = append(oneShots, si)
		}
	}
	if len(oneShots) < 2 {
		return false
	}
	sort.Slice(oneShots, func(a, b int) bool {
		return g.shocks[oneShots[a]].Start < g.shocks[oneShots[b]].Start
	})

	// Candidate periods: pairwise start differences plus the calendar set.
	periodSet := map[int]bool{}
	for i := 0; i < len(oneShots); i++ {
		for j := i + 1; j < len(oneShots); j++ {
			d := g.shocks[oneShots[j]].Start - g.shocks[oneShots[i]].Start
			if d >= 4 && d <= g.n/2 {
				periodSet[d] = true
			}
		}
	}
	for _, p := range g.opts.CalendarPeriods {
		if p >= 4 && p <= g.n/2 {
			periodSet[p] = true
		}
	}
	var periods []int
	for p := range periodSet {
		periods = append(periods, p)
	}
	sort.Ints(periods)

	curCost := g.cost()
	const phaseTol = 2

	type proposal struct {
		group  []int // indices into g.shocks
		merged Shock
		params KeywordParams
		cost   float64
	}
	var best *proposal
	for _, p := range periods {
		// Greedy grouping by phase.
		used := map[int]bool{}
		for _, anchorIdx := range oneShots {
			if used[anchorIdx] {
				continue
			}
			anchor := g.shocks[anchorIdx]
			group := []int{anchorIdx}
			width := anchor.Width
			for _, si := range oneShots {
				if si == anchorIdx || used[si] {
					continue
				}
				s := g.shocks[si]
				diff := s.Start - anchor.Start
				if diff <= 0 {
					continue
				}
				phase := diff % p
				if phase > p-phaseTol {
					phase -= p // wrap-around closeness
				}
				if phase >= -phaseTol && phase <= phaseTol {
					group = append(group, si)
					if s.Width > width {
						width = s.Width
					}
				}
			}
			if len(group) < 2 {
				continue
			}
			for _, si := range group {
				used[si] = true
			}
			if width >= p {
				continue
			}
			merged := Shock{Keyword: g.keyword, Period: p, Start: anchor.Start, Width: width}
			merged.Strength = make([]float64, merged.Occurrences(g.n))
			if err := merged.Validate(g.n, 0); err != nil {
				continue
			}
			// Evaluate the merge: remove the group, joint-fit the merged
			// candidate, MDL-compare.
			saved := g.shocks
			savedParams := g.params
			g.shocks = withoutIndices(g.shocks, group)
			cand, params, cost := g.evaluateCandidate(merged)
			g.shocks = saved
			g.params = savedParams
			if cost < curCost-1e-9 && (best == nil || cost < best.cost) {
				best = &proposal{group: group, merged: cand, params: params, cost: cost}
			}
		}
	}
	if best == nil {
		return false
	}
	g.shocks = append(withoutIndices(g.shocks, best.group), best.merged)
	g.params = best.params
	sortShocks(g.shocks)
	return true
}

// withoutIndices returns a copy of shocks with the given indices removed.
func withoutIndices(shocks []Shock, drop []int) []Shock {
	dropSet := map[int]bool{}
	for _, i := range drop {
		dropSet[i] = true
	}
	out := make([]Shock, 0, len(shocks))
	for i, s := range shocks {
		if !dropSet[i] {
			out = append(out, s)
		}
	}
	return out
}

// pruneZeroShocks drops shocks whose every occurrence strength fitted to
// zero — they describe nothing and cost header bits.
func (g *gfit) pruneZeroShocks() {
	kept := g.shocks[:0]
	for _, s := range g.shocks {
		if s.MeanStrength() > 0 {
			kept = append(kept, s)
		}
	}
	g.shocks = kept
}
