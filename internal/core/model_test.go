package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestShockOccurrences(t *testing.T) {
	s := Shock{Period: NonCyclic, Start: 10, Width: 2}
	if got := s.Occurrences(100); got != 1 {
		t.Fatalf("non-cyclic occurrences = %d, want 1", got)
	}
	s = Shock{Period: 52, Start: 10, Width: 2}
	if got := s.Occurrences(100); got != 2 { // ticks 10 and 62
		t.Fatalf("cyclic occurrences = %d, want 2", got)
	}
	if got := s.Occurrences(10); got != 0 { // starts at the window edge
		t.Fatalf("occurrences beyond window = %d, want 0", got)
	}
	s = Shock{Period: 52, Start: 0, Width: 1}
	if got := s.Occurrences(105); got != 3 { // 0, 52, 104
		t.Fatalf("occurrences = %d, want 3", got)
	}
}

func TestShockOccurrenceStartAndAt(t *testing.T) {
	s := Shock{Period: 52, Start: 10, Width: 3}
	if got := s.OccurrenceStart(2); got != 114 {
		t.Fatalf("OccurrenceStart(2) = %d, want 114", got)
	}
	cases := []struct{ t, want int }{
		{9, -1}, {10, 0}, {12, 0}, {13, -1}, {62, 1}, {64, 1}, {65, -1}, {114, 2},
	}
	for _, c := range cases {
		if got := s.OccurrenceAt(c.t); got != c.want {
			t.Fatalf("OccurrenceAt(%d) = %d, want %d", c.t, got, c.want)
		}
	}
	nc := Shock{Period: NonCyclic, Start: 5, Width: 2}
	if nc.OccurrenceAt(5) != 0 || nc.OccurrenceAt(6) != 0 || nc.OccurrenceAt(7) != -1 {
		t.Fatal("non-cyclic OccurrenceAt wrong")
	}
}

func TestShockMeanStrength(t *testing.T) {
	s := Shock{Strength: []float64{2, 4, 0}}
	if got := s.MeanStrength(); math.Abs(got-2) > 1e-12 {
		t.Fatalf("MeanStrength = %g, want 2", got)
	}
	empty := Shock{}
	if empty.MeanStrength() != 0 {
		t.Fatal("empty MeanStrength should be 0")
	}
}

func TestShockValidate(t *testing.T) {
	good := Shock{Period: 52, Start: 10, Width: 3, Strength: []float64{1, 1}}
	if err := good.Validate(100, 0); err != nil {
		t.Fatalf("valid shock rejected: %v", err)
	}
	bad := []Shock{
		{Period: 52, Start: 10, Width: 0, Strength: []float64{1}},
		{Period: 52, Start: -1, Width: 2, Strength: []float64{1}},
		{Period: 52, Start: 200, Width: 2, Strength: []float64{1}},
		{Period: -3, Start: 10, Width: 2, Strength: []float64{1}},
		{Period: 4, Start: 10, Width: 9, Strength: []float64{1}},
		{Period: 52, Start: 10, Width: 3, Strength: []float64{1}},            // wrong count
		{Period: 52, Start: 10, Width: 3, Strength: []float64{-1, 1}},        // negative
		{Period: 52, Start: 10, Width: 3, Strength: []float64{math.NaN(), 1}} /* NaN */}
	for i, s := range bad {
		if err := s.Validate(100, 0); err == nil {
			t.Fatalf("bad shock %d accepted: %+v", i, s)
		}
	}
	withLocal := good
	withLocal.Local = [][]float64{{1, 2}, {0, 1}}
	if err := withLocal.Validate(100, 2); err != nil {
		t.Fatalf("valid local matrix rejected: %v", err)
	}
	withLocal.Local = [][]float64{{1, 2}}
	if err := withLocal.Validate(100, 2); err == nil {
		t.Fatal("row-count mismatch accepted")
	}
	withLocal.Local = [][]float64{{1}, {0}}
	if err := withLocal.Validate(100, 2); err == nil {
		t.Fatal("column-count mismatch accepted")
	}
}

func TestEpsilonGlobalProfile(t *testing.T) {
	m := &Model{
		Keywords: []string{"k"}, Ticks: 20,
		Global: []KeywordParams{{}},
		Shocks: []Shock{{Keyword: 0, Period: 10, Start: 2, Width: 2, Strength: []float64{3, 5}}},
	}
	eps := m.EpsilonGlobal(0, 20)
	want := make([]float64, 20)
	for i := range want {
		want[i] = 1
	}
	want[2], want[3] = 4, 4
	want[12], want[13] = 6, 6
	for i := range want {
		if math.Abs(eps[i]-want[i]) > 1e-12 {
			t.Fatalf("eps[%d] = %g, want %g", i, eps[i], want[i])
		}
	}
}

func TestEpsilonOverlappingShocksAdd(t *testing.T) {
	m := &Model{
		Keywords: []string{"k"}, Ticks: 10,
		Global: []KeywordParams{{}},
		Shocks: []Shock{
			{Keyword: 0, Start: 2, Width: 3, Strength: []float64{2}},
			{Keyword: 0, Start: 3, Width: 2, Strength: []float64{5}},
		},
	}
	eps := m.EpsilonGlobal(0, 10)
	if eps[2] != 3 || eps[3] != 8 || eps[4] != 8 || eps[5] != 1 {
		t.Fatalf("overlap eps = %v", eps)
	}
}

func TestEpsilonLocalFallsBackToGlobal(t *testing.T) {
	m := &Model{
		Keywords: []string{"k"}, Locations: []string{"A", "B"}, Ticks: 10,
		Global: []KeywordParams{{}},
		Shocks: []Shock{{Keyword: 0, Start: 2, Width: 1, Strength: []float64{4}}},
	}
	eps := m.EpsilonLocal(0, 1, 10)
	if eps[2] != 5 {
		t.Fatalf("fallback eps[2] = %g, want 5", eps[2])
	}
	m.Shocks[0].Local = [][]float64{{0, 9}}
	epsA := m.EpsilonLocal(0, 0, 10)
	epsB := m.EpsilonLocal(0, 1, 10)
	if epsA[2] != 1 || epsB[2] != 10 {
		t.Fatalf("local eps = %g / %g, want 1 / 10", epsA[2], epsB[2])
	}
}

func TestSimulateConservesPopulation(t *testing.T) {
	p := KeywordParams{N: 100, Beta: 0.8, Delta: 0.4, Gamma: 0.3, I0: 0.01, TEta: NoGrowth}
	out := Simulate(&p, 200, nil, -1)
	for i, v := range out {
		if v < 0 || v > p.N+1e-9 || math.IsNaN(v) {
			t.Fatalf("out[%d] = %g escapes [0,N]", i, v)
		}
	}
}

func TestSimulateShockCausesSpike(t *testing.T) {
	p := KeywordParams{N: 100, Beta: 0.5, Delta: 0.45, Gamma: 0.5, I0: 0.01, TEta: NoGrowth}
	base := Simulate(&p, 100, nil, -1)
	eps := make([]float64, 100)
	for i := range eps {
		eps[i] = 1
	}
	for t1 := 50; t1 < 53; t1++ {
		eps[t1] = 11
	}
	shocked := Simulate(&p, 100, eps, -1)
	for t1 := 0; t1 < 50; t1++ {
		if math.Abs(shocked[t1]-base[t1]) > 1e-9 {
			t.Fatalf("pre-shock divergence at %d", t1)
		}
	}
	if shocked[54] <= base[54]*1.5 {
		t.Fatalf("shock did not spike: %g vs %g", shocked[54], base[54])
	}
}

func TestSimulateGrowthRaisesBase(t *testing.T) {
	p := KeywordParams{N: 100, Beta: 0.6, Delta: 0.5, Gamma: 0.3, I0: 0.01, TEta: NoGrowth}
	base := Simulate(&p, 300, nil, -1)
	p.TEta, p.Eta0 = 150, 0.5
	grown := Simulate(&p, 300, nil, -1)
	for t1 := 0; t1 < 150; t1++ {
		if math.Abs(grown[t1]-base[t1]) > 1e-9 {
			t.Fatalf("pre-growth divergence at %d", t1)
		}
	}
	if grown[299] <= base[299]*1.1 {
		t.Fatalf("growth did not raise base: %g vs %g", grown[299], base[299])
	}
}

func TestSimulateGrowthRateOverride(t *testing.T) {
	p := KeywordParams{N: 100, Beta: 0.6, Delta: 0.5, Gamma: 0.3, I0: 0.01, TEta: 50, Eta0: 0.2}
	own := Simulate(&p, 200, nil, -1)
	stronger := Simulate(&p, 200, nil, 1.0)
	weaker := Simulate(&p, 200, nil, 0)
	if stronger[199] <= own[199] || weaker[199] >= own[199] {
		t.Fatalf("override ordering wrong: weak %g own %g strong %g",
			weaker[199], own[199], stronger[199])
	}
}

func TestHasGrowth(t *testing.T) {
	p := KeywordParams{TEta: NoGrowth, Eta0: 0.5}
	if p.HasGrowth() {
		t.Fatal("NoGrowth with eta0 should be inactive")
	}
	p = KeywordParams{TEta: 10, Eta0: 0}
	if p.HasGrowth() {
		t.Fatal("zero eta0 should be inactive")
	}
	p = KeywordParams{TEta: 10, Eta0: 0.5}
	if !p.HasGrowth() {
		t.Fatal("growth should be active")
	}
}

func TestShocksFor(t *testing.T) {
	m := &Model{Shocks: []Shock{{Keyword: 0}, {Keyword: 1}, {Keyword: 0}}}
	if got := len(m.ShocksFor(0)); got != 2 {
		t.Fatalf("ShocksFor(0) = %d, want 2", got)
	}
	if got := len(m.ShocksFor(2)); got != 0 {
		t.Fatalf("ShocksFor(2) = %d, want 0", got)
	}
}

// Property: simulation stays within [0, N] and is deterministic for random
// parameter vectors and random shock profiles.
func TestSimulateBoundedDeterministicQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := KeywordParams{
			N:    rng.Float64() * 1000,
			Beta: rng.Float64() * 3, Delta: rng.Float64() * 2,
			Gamma: rng.Float64() * 2, I0: rng.Float64(),
			TEta: rng.Intn(100) - 1, Eta0: rng.Float64() * 2,
		}
		n := 50 + rng.Intn(100)
		eps := make([]float64, n)
		for i := range eps {
			eps[i] = 1
			if rng.Float64() < 0.1 {
				eps[i] += rng.Float64() * 30
			}
		}
		a := Simulate(&p, n, eps, -1)
		b := Simulate(&p, n, eps, -1)
		for i := range a {
			if a[i] != b[i] || a[i] < 0 || a[i] > p.N+1e-9 || math.IsNaN(a[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Property: occurrence bookkeeping is self-consistent — OccurrenceAt inverts
// OccurrenceStart for ticks inside windows.
func TestOccurrenceConsistencyQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 50 + rng.Intn(500)
		width := 1 + rng.Intn(5)
		period := 0
		if rng.Float64() < 0.7 {
			period = width + 1 + rng.Intn(60)
		}
		s := Shock{Period: period, Start: rng.Intn(n), Width: width}
		occ := s.Occurrences(n)
		for m := 0; m < occ; m++ {
			start := s.OccurrenceStart(m)
			for t1 := start; t1 < start+width && t1 < n; t1++ {
				if got := s.OccurrenceAt(t1); got != m {
					return false
				}
			}
			if start-1 >= 0 && s.OccurrenceAt(start-1) == m {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestKeywordIndexFirstMatch(t *testing.T) {
	m := &Model{Keywords: []string{"a", "b", "b", "c"}}
	if i, ok := m.KeywordIndex("a"); !ok || i != 0 {
		t.Fatalf("KeywordIndex(a) = %d,%v", i, ok)
	}
	// Duplicate axes are malformed, but lookups must still deterministically
	// pick the first occurrence (the old handler scan kept the last).
	if i, ok := m.KeywordIndex("b"); !ok || i != 1 {
		t.Fatalf("KeywordIndex(b) = %d,%v, want first match 1", i, ok)
	}
	if i, ok := m.KeywordIndex("zzz"); ok || i != -1 {
		t.Fatalf("KeywordIndex(zzz) = %d,%v", i, ok)
	}
}
