package core

import (
	"context"
	"fmt"
	"sync"
	"time"

	"dspot/internal/tensor"
)

// Fit runs the full Δ-SPOT algorithm (Algorithm 1): GlobalFit over the d
// global sequences, then LocalFit over the d×l local sequences, returning
// the complete parameter set F = {B_G, B_L, R_G, R_L, S}. Fitting is
// parallel across keywords and locations but fully deterministic: every
// worker writes only its own slots.
func Fit(x *tensor.Tensor, opts FitOptions) (*Model, error) {
	if !opts.Prevalidated {
		if err := x.Validate(); err != nil {
			return nil, err
		}
		opts.Prevalidated = true
	}
	opts = opts.withDefaults()
	m, err := FitGlobal(x, opts)
	if err != nil {
		return nil, err
	}
	if err := FitLocal(x, m, opts); err != nil {
		return nil, err
	}
	return m, nil
}

// FitCtx is Fit under a cancellation context: once ctx ends, every fitting
// layer stops cooperatively and the call returns an error wrapping
// context.Canceled or context.DeadlineExceeded within about one LM
// iteration. It is shorthand for setting FitOptions.Context.
func FitCtx(ctx context.Context, x *tensor.Tensor, opts FitOptions) (*Model, error) {
	opts.Context = ctx
	return Fit(x, opts)
}

// FitGlobalCtx is FitGlobal under a cancellation context (see FitCtx).
func FitGlobalCtx(ctx context.Context, x *tensor.Tensor, opts FitOptions) (*Model, error) {
	opts.Context = ctx
	return FitGlobal(x, opts)
}

// FitLocalCtx is FitLocal under a cancellation context (see FitCtx).
func FitLocalCtx(ctx context.Context, x *tensor.Tensor, m *Model, opts FitOptions) error {
	opts.Context = ctx
	return FitLocal(x, m, opts)
}

// ctxErr surfaces the configured fit context's error, if any.
func (o FitOptions) ctxErr() error {
	if o.Context == nil {
		return nil
	}
	return o.Context.Err()
}

// FitWithReport runs Fit with tracing enabled and returns the aggregated
// FitReport alongside the model: per-stage wall-clock, LM iteration totals,
// and shock candidates tried vs accepted. Any Progress hook already set on
// opts keeps receiving events too.
func FitWithReport(x *tensor.Tensor, opts FitOptions) (*Model, *FitReport, error) {
	tr := NewFitTrace()
	opts.Progress = chainProgress(opts.Progress, tr.Hook())
	m, err := Fit(x, opts)
	if err != nil {
		return nil, nil, err
	}
	return m, tr.Report(), nil
}

// FitGlobalWithReport is FitWithReport for the global phase only.
func FitGlobalWithReport(x *tensor.Tensor, opts FitOptions) (*Model, *FitReport, error) {
	tr := NewFitTrace()
	opts.Progress = chainProgress(opts.Progress, tr.Hook())
	m, err := FitGlobal(x, opts)
	if err != nil {
		return nil, nil, err
	}
	return m, tr.Report(), nil
}

// recoverFitPanic is the deferred panic boundary of every fitting worker.
// A panic inside one keyword's (or one cell's) fit must not take down the
// process — jobs already recovers, but the sync HTTP path, the CLI, and
// Stream.Append call the fitters on their own goroutines where an escaped
// panic is fatal. The panic becomes an error in *dst (kept only when the
// slot has no earlier error) and a StagePanic event so FitReport.Panics
// surfaces the containment.
func recoverFitPanic(opts FitOptions, keyword, location int, dst *error) {
	rec := recover()
	if rec == nil {
		return
	}
	if *dst == nil {
		*dst = fmt.Errorf("core: fit panicked: %v", rec)
	}
	emitPanic(opts, keyword, location)
}

// emitPanic reports a contained panic through the Progress hook. The hook
// itself may be the panicker (it runs inside the fitters), so the emit is
// guarded by its own recover rather than re-entering recoverFitPanic.
func emitPanic(opts FitOptions, keyword, location int) {
	if opts.Progress == nil {
		return
	}
	defer func() { _ = recover() }()
	opts.Progress(FitEvent{Stage: StagePanic, Keyword: keyword, Location: location})
}

// emitPhase reports a whole-phase boundary (StageGlobal/StageLocal).
func emitPhase(opts FitOptions, stage string, start time.Time) {
	if opts.Progress == nil {
		return
	}
	opts.Progress(FitEvent{Stage: stage, Keyword: -1, Location: -1,
		Duration: time.Since(start)})
}

// phaseStart timestamps a phase only when tracing is enabled.
func phaseStart(opts FitOptions) time.Time {
	if opts.Progress == nil {
		return time.Time{}
	}
	return time.Now()
}

// FitGlobal runs only the global phase (Algorithm 2) and returns a model
// whose local matrices are nil. Useful when only world-level analysis or
// forecasting is needed — it is l times cheaper than the full fit.
func FitGlobal(x *tensor.Tensor, opts FitOptions) (*Model, error) {
	// Validate here, not only in Fit: FitGlobal is itself a public entry
	// point, and an Inf count that slips into a worker costs a whole
	// keyword fit before the optimiser guards reject every candidate.
	// Prevalidated callers (Fit, the HTTP handlers) already paid for the
	// scan once.
	if !opts.Prevalidated {
		if err := x.Validate(); err != nil {
			return nil, err
		}
	}
	opts = opts.withDefaults()
	start := phaseStart(opts)
	d := x.D()
	m := &Model{
		Keywords:  append([]string(nil), x.Keywords...),
		Locations: append([]string(nil), x.Locations...),
		Ticks:     x.N(),
		Global:    make([]KeywordParams, d),
		Scale:     make([]float64, d),
	}

	results := make([]GlobalFitResult, d)
	errs := make([]error, d)
	// Fixed worker pool: exactly min(Workers, d) goroutines exist at any
	// moment, each draining keyword indices from a channel. Workers observe
	// the fit context between keywords (and FitGlobalSequence observes it
	// within each fit), so a cancel stops the whole phase promptly.
	workers := opts.Workers
	if workers > d {
		workers = d
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				if err := opts.ctxErr(); err != nil {
					errs[i] = err
					continue
				}
				func() {
					defer recoverFitPanic(opts, i, -1, &errs[i])
					results[i], errs[i] = FitGlobalSequence(x.Global(i), i, opts)
				}()
			}
		}()
	}
	for i := 0; i < d; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	if err := opts.ctxErr(); err != nil {
		return nil, fmt.Errorf("core: global fit cancelled: %w", err)
	}
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("core: keyword %q: %w", x.Keywords[i], err)
		}
	}
	for i, r := range results {
		m.Global[i] = r.Params
		m.Scale[i] = r.Scale
		m.Shocks = append(m.Shocks, r.Shocks...)
	}
	sortShocks(m.Shocks)
	emitPhase(opts, StageGlobal, start)
	return m, nil
}

// FitLocal runs the local phase (Algorithm 3) against a model produced by
// FitGlobal, filling B_L, R_L and the shock Local matrices in place.
func FitLocal(x *tensor.Tensor, m *Model, opts FitOptions) error {
	opts = opts.withDefaults()
	phase := phaseStart(opts)
	d, l, n := x.D(), x.L(), x.N()
	if n != m.Ticks || d != len(m.Global) {
		return fmt.Errorf("core: tensor (%d,%d,%d) does not match model (%d keywords, %d ticks)",
			d, l, n, len(m.Global), m.Ticks)
	}
	m.LocalN = newMatrix(d, l)
	m.LocalR = newMatrix(d, l)
	// Pre-allocate every shock's Local matrix; workers fill disjoint columns.
	for si := range m.Shocks {
		s := &m.Shocks[si]
		s.Local = make([][]float64, len(s.Strength))
		for occ := range s.Local {
			s.Local[occ] = make([]float64, l)
		}
	}
	// Group shock indices by keyword once.
	byKeyword := make([][]int, d)
	for si := range m.Shocks {
		k := m.Shocks[si].Keyword
		byKeyword[k] = append(byKeyword[k], si)
	}

	// Fixed worker pool over a cell channel: spawning all d×l goroutines up
	// front (even gated by a semaphore) allocates a goroutine per cell — a
	// 1000×100 tensor would create 100k goroutines with Workers=1. Exactly
	// min(Workers, d×l) goroutines exist here, draining cells as they go,
	// and each checks the fit context before starting a cell.
	type cell struct{ i, j int }
	workers := opts.Workers
	if total := d * l; workers > total {
		workers = total
	}
	cellErrs := make([]error, d*l) // each worker writes only its own slots
	cells := make(chan cell)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for c := range cells {
				if opts.ctxErr() != nil {
					continue // drain remaining cells without fitting
				}
				i, j := c.i, c.j
				func() {
					defer recoverFitPanic(opts, i, j, &cellErrs[i*l+j])
					var cellStart time.Time
					if opts.Progress != nil {
						cellStart = time.Now()
					}
					// Worker-local copies of the keyword's shocks.
					shocks := make([]Shock, len(byKeyword[i]))
					for p, si := range byKeyword[i] {
						shocks[p] = m.Shocks[si]
					}
					nij, rij, strengths := m.localFitKeywordLocation(i, j, x.Local(i, j), shocks, opts.Context)
					m.LocalN[i][j] = nij
					m.LocalR[i][j] = rij
					for p, si := range byKeyword[i] {
						for occ, v := range strengths[p] {
							m.Shocks[si].Local[occ][j] = v
						}
					}
					if opts.Progress != nil {
						opts.Progress(FitEvent{Stage: StageLocalCell, Keyword: i,
							Location: j, Duration: time.Since(cellStart)})
					}
				}()
			}
		}()
	}
	for i := 0; i < d; i++ {
		for j := 0; j < l; j++ {
			cells <- cell{i, j}
		}
	}
	close(cells)
	wg.Wait()
	if err := opts.ctxErr(); err != nil {
		return fmt.Errorf("core: local fit cancelled: %w", err)
	}
	for ci, err := range cellErrs {
		if err != nil {
			return fmt.Errorf("core: keyword %q location %q: %w",
				x.Keywords[ci/l], x.Locations[ci%l], err)
		}
	}
	emitPhase(opts, StageLocal, phase)
	return nil
}

func newMatrix(rows, cols int) [][]float64 {
	out := make([][]float64, rows)
	for i := range out {
		out[i] = make([]float64, cols)
	}
	return out
}
