// Package core implements Δ-SPOT, the paper's primary contribution: a
// non-linear SIV (Susceptible–Infective–Vigilant) model of online user
// activity with population growth effects and cyclic external shocks, an
// MDL-gated multi-layer fitting algorithm (GlobalFit + LocalFit), and a
// long-range forecaster.
//
// The observable for keyword i in location j is the infective count
// N_ij·i(t), where the fractions (s, i, v) evolve as
//
//	s(t+1) = s(t) − β·s(t)·ε(t)·i(t)·(1+η(t)) + γ·v(t)
//	i(t+1) = i(t) + β·s(t)·ε(t)·i(t)·(1+η(t)) − δ·i(t)
//	v(t+1) = v(t) + δ·i(t) − γ·v(t)
//
// with ε(t) the temporal susceptible rate assembled from the external shock
// tensor S and η(t) the growth step that switches from 0 to η₀ at t_η.
package core

import (
	"fmt"
	"math"
)

// NonCyclic is the Period value of a one-off shock (t_p = ∞ in the paper).
const NonCyclic = 0

// Shock is one external shock event s = {s^(D), s^(N), s^(L)}.
type Shock struct {
	Keyword int // s^(D): which keyword the shock applies to
	Period  int // t_p; NonCyclic (0) for a one-off event
	Start   int // t_s: first tick of the first occurrence
	Width   int // t_w: duration of each occurrence, >= 1

	// Strength holds the global shock strength ε₀ of each occurrence, one
	// entry per occurrence inside the training window (a single entry for a
	// non-cyclic shock).
	Strength []float64

	// Local is the s^(L) matrix: per-occurrence, per-location strengths.
	// nil until LocalFit runs. A zero entry means the location does not
	// participate in that occurrence (the matrix is semantically sparse and
	// the MDL cost charges only non-zero entries).
	Local [][]float64
}

// Occurrences returns the number of occurrences of the shock inside a
// window of n ticks.
func (s *Shock) Occurrences(n int) int {
	if s.Start >= n || s.Width <= 0 {
		return 0
	}
	if s.Period <= 0 {
		return 1
	}
	return (n-1-s.Start)/s.Period + 1
}

// OccurrenceStart returns the starting tick of occurrence m (m >= 0).
func (s *Shock) OccurrenceStart(m int) int {
	if s.Period <= 0 {
		return s.Start
	}
	return s.Start + m*s.Period
}

// OccurrenceAt returns the occurrence index covering tick t, or -1.
func (s *Shock) OccurrenceAt(t int) int {
	if t < s.Start || s.Width <= 0 {
		return -1
	}
	if s.Period <= 0 {
		if t < s.Start+s.Width {
			return 0
		}
		return -1
	}
	m := (t - s.Start) / s.Period
	if t < s.Start+m*s.Period+s.Width {
		return m
	}
	return -1
}

// MeanStrength returns the mean of the occurrence strengths (0 if none).
func (s *Shock) MeanStrength() float64 {
	if len(s.Strength) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range s.Strength {
		sum += v
	}
	return sum / float64(len(s.Strength))
}

// Validate checks structural invariants of the shock against a window of n
// ticks and l locations (l <= 0 skips the Local checks).
func (s *Shock) Validate(n, l int) error {
	if s.Width < 1 {
		return fmt.Errorf("core: shock width %d < 1", s.Width)
	}
	if s.Start < 0 || s.Start >= n {
		return fmt.Errorf("core: shock start %d outside [0,%d)", s.Start, n)
	}
	if s.Period < 0 {
		return fmt.Errorf("core: negative shock period %d", s.Period)
	}
	if s.Period > 0 && s.Width > s.Period {
		return fmt.Errorf("core: shock width %d exceeds period %d", s.Width, s.Period)
	}
	if occ := s.Occurrences(n); len(s.Strength) != occ {
		return fmt.Errorf("core: %d strengths for %d occurrences", len(s.Strength), occ)
	}
	for m, v := range s.Strength {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("core: bad strength %g at occurrence %d", v, m)
		}
	}
	if s.Local != nil {
		if len(s.Local) != len(s.Strength) {
			return fmt.Errorf("core: local matrix has %d rows for %d occurrences",
				len(s.Local), len(s.Strength))
		}
		if l > 0 {
			for m, row := range s.Local {
				if len(row) != l {
					return fmt.Errorf("core: local row %d has %d entries for %d locations",
						m, len(row), l)
				}
			}
		}
	}
	return nil
}

// KeywordParams are the global-level parameters of one keyword: the B_G row
// {N, β, δ, γ} (plus the initial infective fraction, which the paper folds
// into model initialisation) and the R_G row {η₀, t_η}.
type KeywordParams struct {
	N     float64 // potential population (output scale)
	Beta  float64 // effective contact rate
	Delta float64 // interest-loss rate
	Gamma float64 // immunisation-loss rate
	I0    float64 // initial infective fraction

	Eta0 float64 // growth-effect magnitude η₀ (0 when no growth effect)
	TEta int     // growth onset t_η; NoGrowth when absent
}

// NoGrowth is the TEta value of a keyword without a population growth effect.
const NoGrowth = -1

// HasGrowth reports whether the growth effect is active.
func (p *KeywordParams) HasGrowth() bool { return p.TEta != NoGrowth && p.Eta0 > 0 }

// Model is the complete set F = {B_G, B_L, R_G, R_L, S} fitted to a tensor.
type Model struct {
	Keywords  []string
	Locations []string
	Ticks     int // training duration n

	Global []KeywordParams // B_G and R_G rows, one per keyword
	LocalN [][]float64     // B_L: potential population per (keyword, location)
	LocalR [][]float64     // R_L: growth rate per (keyword, location)
	Shocks []Shock         // the external shock tensor S

	// Scale records the per-keyword normalisation applied during fitting
	// (global sequences are fitted on [0,1] data); it is already folded into
	// N and LocalN and retained for diagnostics only.
	Scale []float64
}

// Validate checks the model's structural invariants: axis/parameter
// agreement, finite parameters, well-formed shocks with in-range keyword
// references, and local matrices (when present) shaped d×l. It returns a
// descriptive error for the first violation.
func (m *Model) Validate() error {
	d, l := len(m.Keywords), len(m.Locations)
	if d == 0 {
		return fmt.Errorf("core: model has no keywords")
	}
	if m.Ticks <= 0 {
		return fmt.Errorf("core: non-positive duration %d", m.Ticks)
	}
	if len(m.Global) != d {
		return fmt.Errorf("core: %d keyword params for %d keywords", len(m.Global), d)
	}
	for i, p := range m.Global {
		for name, v := range map[string]float64{
			"N": p.N, "beta": p.Beta, "delta": p.Delta, "gamma": p.Gamma,
			"i0": p.I0, "eta0": p.Eta0,
		} {
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
				return fmt.Errorf("core: keyword %d: bad %s %g", i, name, v)
			}
		}
		if p.TEta != NoGrowth && (p.TEta < 0 || p.TEta >= m.Ticks) {
			return fmt.Errorf("core: keyword %d: growth onset %d outside window", i, p.TEta)
		}
	}
	checkMatrix := func(name string, mat [][]float64) error {
		if mat == nil {
			return nil
		}
		if len(mat) != d {
			return fmt.Errorf("core: %s has %d rows for %d keywords", name, len(mat), d)
		}
		for i, row := range mat {
			if len(row) != l {
				return fmt.Errorf("core: %s row %d has %d entries for %d locations",
					name, i, len(row), l)
			}
			for j, v := range row {
				if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
					return fmt.Errorf("core: %s[%d][%d] = %g", name, i, j, v)
				}
			}
		}
		return nil
	}
	if err := checkMatrix("B_L", m.LocalN); err != nil {
		return err
	}
	if err := checkMatrix("R_L", m.LocalR); err != nil {
		return err
	}
	for si := range m.Shocks {
		s := &m.Shocks[si]
		if s.Keyword < 0 || s.Keyword >= d {
			return fmt.Errorf("core: shock %d references keyword %d of %d", si, s.Keyword, d)
		}
		if err := s.Validate(m.Ticks, l); err != nil {
			return fmt.Errorf("core: shock %d: %w", si, err)
		}
	}
	return nil
}

// KeywordIndex returns the index of the first keyword named name and
// whether it exists. Keyword axes should not contain duplicates, but when
// they do the first occurrence wins — every lookup in the codebase goes
// through here so the choice is consistent.
func (m *Model) KeywordIndex(name string) (int, bool) {
	for i, kw := range m.Keywords {
		if kw == name {
			return i, true
		}
	}
	return -1, false
}

// ShocksFor returns the shocks attached to keyword i, in discovery order.
func (m *Model) ShocksFor(i int) []Shock {
	var out []Shock
	for _, s := range m.Shocks {
		if s.Keyword == i {
			out = append(out, s)
		}
	}
	return out
}

// EpsilonGlobal builds the temporal susceptible rate ε(t) for keyword i over
// n ticks from the global occurrence strengths: ε(t) = 1 + Σ_s f(t; s).
func (m *Model) EpsilonGlobal(i, n int) []float64 {
	eps := make([]float64, n)
	for t := range eps {
		eps[t] = 1
	}
	for _, s := range m.Shocks {
		if s.Keyword != i {
			continue
		}
		addShockProfile(eps, &s, s.Strength)
	}
	return eps
}

// EpsilonLocal builds ε_ij(t) for keyword i in location j. Occurrences
// without a fitted local strength row fall back to the global strength.
func (m *Model) EpsilonLocal(i, j, n int) []float64 {
	eps := make([]float64, n)
	for t := range eps {
		eps[t] = 1
	}
	for _, s := range m.Shocks {
		if s.Keyword != i {
			continue
		}
		strengths := s.Strength
		if s.Local != nil {
			strengths = make([]float64, len(s.Strength))
			for mIdx := range strengths {
				if j < len(s.Local[mIdx]) {
					strengths[mIdx] = s.Local[mIdx][j]
				}
			}
		}
		addShockProfile(eps, &s, strengths)
	}
	return eps
}

// addShockProfile accumulates the shock's strength into eps for each
// occurrence, using the provided per-occurrence strengths.
func addShockProfile(eps []float64, s *Shock, strengths []float64) {
	n := len(eps)
	occ := s.Occurrences(n)
	if occ > len(strengths) {
		occ = len(strengths)
	}
	for m := 0; m < occ; m++ {
		start := s.OccurrenceStart(m)
		for t := start; t < start+s.Width && t < n; t++ {
			if t < 0 {
				continue
			}
			eps[t] += strengths[m]
		}
	}
}

// addShockProfileWindow is addShockProfile restricted to ticks in [lo, hi):
// additions outside the window are skipped, and the within-window additions
// happen in exactly the same (occurrence, tick) order as the unrestricted
// version, so rebuilding a window slice-by-slice stays bit-identical to a
// full rebuild (float addition is not associative, so the order matters).
func addShockProfileWindow(eps []float64, s *Shock, strengths []float64, lo, hi int) {
	n := len(eps)
	if hi > n {
		hi = n
	}
	if lo < 0 {
		lo = 0
	}
	occ := s.Occurrences(n)
	if occ > len(strengths) {
		occ = len(strengths)
	}
	for m := 0; m < occ; m++ {
		start := s.OccurrenceStart(m)
		if start >= hi {
			break
		}
		for t := start; t < start+s.Width && t < hi; t++ {
			if t < lo {
				continue
			}
			eps[t] += strengths[m]
		}
	}
}

// Simulate runs the SIV difference system for n ticks with the given
// susceptible-rate profile eps (nil means ε≡1) and returns the infective
// counts N·i(t). growthRate overrides the keyword's η₀ when >= 0 (used by
// the local model, where R_L replaces the global rate); pass -1 to use p's
// own rate. Fractions are clamped and renormalised each step so that any
// explored parameter vector yields finite output.
func Simulate(p *KeywordParams, n int, eps []float64, growthRate float64) []float64 {
	return SimulateInto(nil, p, n, eps, growthRate)
}

// SimulateInto is Simulate writing into a caller-provided buffer: when dst
// has capacity for n ticks it is reused (and the returned slice aliases it),
// otherwise a fresh slice is allocated. The computed values are identical to
// Simulate's — the fitters lean on that to reuse scratch buffers in their
// objective closures without perturbing results.
func SimulateInto(dst []float64, p *KeywordParams, n int, eps []float64, growthRate float64) []float64 {
	if cap(dst) < n {
		dst = make([]float64, n)
	}
	out := dst[:n]
	i := clamp01(p.I0)
	s := 1 - i
	v := 0.0
	eta := p.Eta0
	if growthRate >= 0 {
		eta = growthRate
	}
	// The fractions are self-containing (clamp01 + renormalisation), so the
	// only values that can leak a non-finite or negative count into the
	// output are the population scale, the growth rate, and the shock
	// profile. Sanitise them here so an optimiser probing a degenerate
	// parameter vector gets a finite (merely terrible) cost back.
	N := p.N
	if math.IsNaN(N) || math.IsInf(N, 0) || N < 0 {
		N = 0
	}
	if math.IsNaN(eta) || math.IsInf(eta, 0) {
		eta = 0
	}
	// The per-tick body is the hottest loop in the repository (every LM
	// residual evaluation runs it n times), so the sanitisation branches
	// are hoisted out of it: ε is scanned once up front, and the growth
	// factor — constant on either side of the onset tick — is applied by
	// splitting the loop at t_η instead of re-testing per tick. Multiplying
	// by (1+0) == 1.0 is exact, so the no-growth phase may drop the factor
	// entirely; the fast path is bit-identical to the general loop below,
	// which remains for nil or non-finite ε (hotpath_test.go pins this).
	epsClean := eps != nil
	for t := 0; epsClean && t < n; t++ {
		if e := eps[t]; math.IsNaN(e) || math.IsInf(e, 0) {
			epsClean = false
		}
	}
	if epsClean {
		gStart := n // first tick with the growth factor active
		if p.TEta != NoGrowth {
			gStart = p.TEta
			if gStart < 0 {
				gStart = 0
			}
			if gStart > n {
				gStart = n
			}
		}
		for t := 0; t < gStart; t++ {
			out[t] = N * i
			infect := p.Beta * s * eps[t] * i
			lose := p.Delta * i
			wake := p.Gamma * v
			s = clamp01(s - infect + wake)
			i = clamp01(i + infect - lose)
			v = clamp01(v + lose - wake)
			// tot == 1 exactly is common once the dynamics settle, and
			// x/1.0 == x bitwise, so the three divisions are skippable.
			if tot := s + i + v; tot > 0 && tot != 1 {
				s, i, v = s/tot, i/tot, v/tot
			}
		}
		onePlusEta := 1 + eta
		for t := gStart; t < n; t++ {
			out[t] = N * i
			infect := p.Beta * s * eps[t] * i * onePlusEta
			lose := p.Delta * i
			wake := p.Gamma * v
			s = clamp01(s - infect + wake)
			i = clamp01(i + infect - lose)
			v = clamp01(v + lose - wake)
			// tot == 1 exactly is common once the dynamics settle, and
			// x/1.0 == x bitwise, so the three divisions are skippable.
			if tot := s + i + v; tot > 0 && tot != 1 {
				s, i, v = s/tot, i/tot, v/tot
			}
		}
		return out
	}
	for t := 0; t < n; t++ {
		out[t] = N * i
		e := 1.0
		if eps != nil {
			e = eps[t]
			if math.IsNaN(e) || math.IsInf(e, 0) {
				e = 1
			}
		}
		g := 0.0
		if p.TEta != NoGrowth && t >= p.TEta {
			g = eta
		}
		infect := p.Beta * s * e * i * (1 + g)
		lose := p.Delta * i
		wake := p.Gamma * v
		s = clamp01(s - infect + wake)
		i = clamp01(i + infect - lose)
		v = clamp01(v + lose - wake)
		tot := s + i + v
		if tot > 0 {
			s, i, v = s/tot, i/tot, v/tot
		}
	}
	return out
}

// SimulateGlobal returns the fitted global curve Î(t) for keyword i over n
// ticks (n may exceed the training window; ε is extended by Epsilon* which
// only covers known occurrences — use Forecast for proper extrapolation).
func (m *Model) SimulateGlobal(i, n int) []float64 {
	eps := m.EpsilonGlobal(i, n)
	return Simulate(&m.Global[i], n, eps, -1)
}

// SimulateLocal returns the fitted local curve for keyword i in location j.
func (m *Model) SimulateLocal(i, j, n int) []float64 {
	eps := m.EpsilonLocal(i, j, n)
	p := m.Global[i] // copy: local overrides scale
	if m.LocalN != nil {
		p.N = m.LocalN[i][j]
	}
	rate := -1.0
	if m.LocalR != nil {
		rate = m.LocalR[i][j]
	}
	return Simulate(&p, n, eps, rate)
}

func clamp01(v float64) float64 {
	if v < 0 || math.IsNaN(v) {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
