package core

import (
	"encoding/binary"
	"math"
	"testing"
)

// The analytic sensitivity kernel makes two promises, each pinned here:
//
//  1. Its simulated values are bit-identical to SimulateInto — switching a
//     fitter from FD probes to analytic Jacobians must not move the model
//     by even one ulp through the residual path.
//  2. Its Jacobian agrees with central finite differences to < 1e-5
//     relative error wherever FD itself is trustworthy (checked by
//     Richardson self-consistency: FD at h and h/2 must agree, otherwise
//     the point sits on a clamp/renorm kink and the documented subgradient
//     convention governs instead).

// sensCase is one (params, shocks, growthRate) point of the agreement table.
type sensCase struct {
	name string
	p    KeywordParams
	rate float64
	// shocks build ε(t); nil means eps == nil (constant 1).
	shocks []Shock
}

func sensCases() []sensCase {
	shocks := hotpathShocks()
	return []sensCase{
		{"plain", hotpathParams(), -1, shocks},
		{"no-eps", hotpathParams(), -1, nil},
		{"growth", KeywordParams{N: 120, Beta: 0.6, Delta: 0.35, Gamma: 0.9,
			I0: 0.01, Eta0: 0.4, TEta: 30}, -1, shocks},
		{"growth-at-zero", KeywordParams{N: 80, Beta: 0.5, Delta: 0.3, Gamma: 0.7,
			I0: 0.02, Eta0: 0.15, TEta: 0}, -1, shocks},
		{"local-rate", hotpathParams(), 0.015, shocks},
		// Epidemic-style point: slow logistic rise, no shocks, no growth —
		// the EpidemicScenario regime (β small, γ ≈ 0 keeps v absorbing).
		{"epidemic", KeywordParams{N: 100, Beta: 0.08, Delta: 0.01,
			Gamma: 1e-6, I0: 0.01, TEta: NoGrowth}, -1, nil},
		// Spiky Hawkes-like point: strong narrow shocks over fast decay.
		{"spiky", KeywordParams{N: 200, Beta: 0.9, Delta: 0.8, Gamma: 0.3,
			I0: 0.005, TEta: NoGrowth}, -1, []Shock{
			{Keyword: 0, Period: 30, Start: 12, Width: 2, Strength: []float64{9, 11, 8}},
		}},
	}
}

func sensSpecsFor(shocks []Shock, withEta bool, n int) []SensSpec {
	specs := BaseSensSpecs()
	if withEta {
		specs = append(specs, SensSpec{Param: SensEta0})
	}
	for si := range shocks {
		s := &shocks[si]
		for m := 0; m < s.Occurrences(n); m++ {
			specs = append(specs, StrengthSpec(s, m, n))
		}
	}
	return specs
}

func TestSensitivityValuesMatchSimulate(t *testing.T) {
	n := 96
	dirty := epsilonFromShocks(hotpathShocks(), n)
	dirty[17] = math.NaN()
	dirty[40] = math.Inf(1)
	cases := append(sensCases(),
		sensCase{"degenerate-N", KeywordParams{N: -5, Beta: 0.6, Delta: 0.35,
			Gamma: 0.9, I0: 0.01, TEta: NoGrowth}, -1, hotpathShocks()},
		sensCase{"degenerate-eta", KeywordParams{N: 120, Beta: 0.6, Delta: 0.35,
			Gamma: 0.9, I0: 0.01, Eta0: math.NaN(), TEta: 20}, -1, hotpathShocks()},
		sensCase{"degenerate-i0", KeywordParams{N: 120, Beta: 0.6, Delta: 0.35,
			Gamma: 0.9, I0: 1.5, TEta: NoGrowth}, -1, hotpathShocks()},
		sensCase{"clamping", KeywordParams{N: 50, Beta: 40, Delta: 0.2,
			Gamma: 0.9, I0: 0.3, TEta: NoGrowth}, -1, hotpathShocks()},
	)
	for _, tc := range cases {
		var eps []float64
		if tc.shocks != nil {
			eps = epsilonFromShocks(tc.shocks, n)
		}
		specs := sensSpecsFor(tc.shocks, true, n)
		want := SimulateInto(nil, &tc.p, n, eps, tc.rate)
		got, jac := SimulateWithSensitivities(nil, nil, &tc.p, n, eps, tc.rate, specs)
		assertBitEqual(t, tc.name, want, got)
		for k, v := range jac {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("%s: non-finite jacobian entry %d: %v", tc.name, k, v)
			}
		}

		// The dirty-ε general path must stay bit-identical too.
		want = SimulateInto(nil, &tc.p, n, dirty, tc.rate)
		got, _ = SimulateWithSensitivities(nil, nil, &tc.p, n, dirty, tc.rate, specs)
		assertBitEqual(t, tc.name+"/dirty-eps", want, got)
	}
}

// perturb returns a copy of (p, eps) with spec j moved by h. eps is copied
// only when the spec is a strength lane.
func perturb(p KeywordParams, eps []float64, sp SensSpec, h float64) (KeywordParams, []float64) {
	switch sp.Param {
	case SensN:
		p.N += h
	case SensBeta:
		p.Beta += h
	case SensDelta:
		p.Delta += h
	case SensGamma:
		p.Gamma += h
	case SensI0:
		p.I0 += h
	case SensEta0:
		p.Eta0 += h
	case SensStrength:
		e := append([]float64(nil), eps...)
		for t := sp.Lo; t < sp.Hi; t++ {
			e[t] += h
		}
		eps = e
	}
	return p, eps
}

// fdProbe simulates at the point perturbed by h along spec sp.
func fdProbe(p *KeywordParams, n int, eps []float64, rate float64,
	sp SensSpec, h float64) []float64 {
	pp, ep := perturb(*p, eps, sp, h)
	return SimulateInto(nil, &pp, n, ep, rate)
}

// fdColumn writes the central finite difference ∂out/∂spec at step h into dst.
func fdColumn(dst []float64, p *KeywordParams, n int, eps []float64,
	rate float64, sp SensSpec, h float64) {
	up := fdProbe(p, n, eps, rate, sp, h)
	dn := fdProbe(p, n, eps, rate, sp, -h)
	for t := 0; t < n; t++ {
		dst[t] = (up[t] - dn[t]) / (2 * h)
	}
}

// fdStep picks the central-difference step for one lane: relative to the
// parameter's magnitude, with a floor for near-zero parameters.
func fdStep(p *KeywordParams, sp SensSpec) float64 {
	base := 1.0
	switch sp.Param {
	case SensN:
		base = math.Abs(p.N)
	case SensBeta:
		base = math.Abs(p.Beta)
	case SensDelta:
		base = math.Abs(p.Delta)
	case SensGamma:
		base = math.Abs(p.Gamma)
	case SensI0:
		base = math.Abs(p.I0)
	case SensEta0:
		base = math.Abs(p.Eta0)
	}
	if base < 1e-2 {
		base = 1e-2
	}
	return 1e-4 * base
}

// fdProbesSmooth reports whether the ±h central-difference probes of one
// lane stay on a single side of the parameter-sanitisation boundaries
// (I0 ∈ [0,1], N ≥ 0) and of zero for the flow rates. A straddling probe
// pair averages two different one-sided slopes — exactly-linear on each
// side, so the Richardson gate cannot see the kink — and the documented
// subgradient convention governs instead of FD.
//
// The flow-rate zero crossings matter because a negative rate reverses its
// flow and lands a compartment on a different clamp: the fuzzer found
// δ ≈ 1e-76, where the −h probe makes lose = δ·i negative, v clamps at 0
// instead of carrying δ·i, the renormalisation activates on that side
// only, and the central difference reports a slope −i0·(1 − i0/2) that is
// an average of the two regimes rather than the true derivative −i0. The
// sidedness gate inside checkJacobianAgainstFD is calibrated for kinks
// large relative to the slope and cannot catch a jump of order i0·|f'|, so
// the probe has to be refused up front. The same applies to the sign of
// the whole infection flow, which flips at 1+η₀ = 0 and at ε(t) = 0 (the
// fuzzer found η₀ = −1.00005, where the dynamics are dead but the +h probe
// revives them).
func fdProbesSmooth(p *KeywordParams, sp SensSpec, h float64, eps []float64) bool {
	oneSided := func(x float64) bool { return (x-h < 0) == (x+h < 0) }
	switch sp.Param {
	case SensN:
		return oneSided(p.N)
	case SensI0:
		return oneSided(p.I0) && (p.I0-h > 1) == (p.I0+h > 1)
	case SensBeta:
		return oneSided(p.Beta)
	case SensDelta:
		return oneSided(p.Delta)
	case SensGamma:
		return oneSided(p.Gamma)
	case SensEta0:
		return oneSided(p.Eta0) && oneSided(1+p.Eta0)
	case SensStrength:
		for t := sp.Lo; t < sp.Hi && t < len(eps); t++ {
			if !oneSided(eps[t]) {
				return false
			}
		}
	}
	return true
}

// checkJacobianAgainstFD compares the analytic Jacobian with Richardson-gated
// central differences. Entries where FD at h and h/2 disagree sit on a
// clamp/renorm kink (or are drowned in roundoff); there the subgradient
// convention governs and FD is not an oracle, so the strict check is skipped.
// The gate must not skip everything: the caller gets the checked-entry count.
func checkJacobianAgainstFD(t *testing.T, name string, p *KeywordParams, n int,
	eps []float64, rate float64, specs []SensSpec) (checked int) {
	t.Helper()
	np := len(specs)
	out, jac := SimulateWithSensitivities(nil, nil, p, n, eps, rate, specs)
	outMax := 0.0
	for _, v := range out {
		if a := math.Abs(v); a > outMax {
			outMax = a
		}
	}
	fd2 := make([]float64, n)
	for j, sp := range specs {
		h := fdStep(p, sp)
		if !fdProbesSmooth(p, sp, h, eps) {
			continue
		}
		// A central difference cannot resolve derivatives below the
		// cancellation floor ~ulp(out)/h: on a near-zero column (γ with v
		// pinned at 0, say) FD reports pure rounding noise while the
		// analytic lane is exactly (or denormally) zero. Entries where both
		// sides sit under the floor agree as well as FD can measure.
		noise := 1e-12 * (outMax + 1) / h
		// Hard resolution limit of the central difference itself: each
		// probe output is rounded to ~0.5 ulp(out), so u−d carries up to a
		// few ulp(outMax) of bias that survives step-halving bit-for-bit
		// (the same rounding pattern at h and h/2 — Richardson cannot see
		// it). A derivative of O(1) on outputs of O(1e6) with h = 1e-6 can
		// only be measured to ~1e-4 absolute; demand no more than that.
		fdres := 4 * 0x1p-52 * (outMax + 1) / (2 * h)
		up := fdProbe(p, n, eps, rate, sp, h)
		dn := fdProbe(p, n, eps, rate, sp, -h)
		fdColumn(fd2, p, n, eps, rate, sp, h/2)
		colMax := 0.0
		for t := 0; t < n; t++ {
			if a := math.Abs(jac[t*np+j]); a > colMax {
				colMax = a
			}
			if a := math.Abs(fd2[t]); a > colMax {
				colMax = a
			}
		}
		gate := 1e-5 * (colMax + 1)
		for ti := 0; ti < n; ti++ {
			fd1 := (up[ti] - dn[ti]) / (2 * h)
			if ref := math.Max(math.Abs(fd1), math.Abs(fd2[ti])); ref < noise {
				// FD's estimate is below its own resolution: either the
				// derivative is zero as far as FD can measure (agree if the
				// analytic lane is under the floor too), or the smooth
				// regime is narrower than any practical step — the fuzzer's
				// η₀ = −1 with β ~ 1e116 has a true slope N·β·s·i that holds
				// only for |dη| < 1e-75 before i clamps at 1, so every probe
				// lands on the clamp and FD is blind, not authoritative.
				if math.Abs(jac[ti*np+j]) < noise {
					checked++
				}
				continue
			}
			if math.Abs(fd1-fd2[ti]) > gate {
				continue // FD not self-consistent across steps: kink or roundoff
			}
			// Richardson's h² cancellation is only as good as the next term
			// is small: when the step-halving spread is already more than a
			// few 1e-6 of the derivative itself (stiff dynamics — the fuzzer
			// reaches β ~ 1e6, where the per-tick gain makes the h⁴ residue
			// visible), the extrapolated reference cannot deliver the 1e-5
			// tolerance and FD stops being an oracle for the entry.
			if math.Abs(fd1-fd2[ti]) > 5e-6*math.Max(math.Abs(fd1), math.Abs(fd2[ti])) {
				continue
			}
			// Sidedness check: a clamp boundary crossed by exactly one
			// probe leaves both half-steps linear — invisible to the
			// step-halving gate above — but the forward and backward
			// one-sided slopes disagree by the full subgradient jump.
			fdF := (up[ti] - out[ti]) / h
			fdB := (out[ti] - dn[ti]) / h
			if math.Abs(fdF-fdB) > 1e-2*(math.Abs(fd1)+1e-3*(colMax+1)) {
				continue // one-sided kink: the subgradient convention governs
			}
			// Richardson extrapolation cancels the O(h²) truncation term,
			// so the reference is accurate wherever the gates passed.
			a, f := jac[ti*np+j], (4*fd2[ti]-fd1)/3
			denom := math.Max(math.Max(math.Abs(a), math.Abs(f)), 1e-4*(colMax+1))
			if rel := math.Abs(a-f) / denom; rel > 1e-5 && math.Abs(a-f) > fdres {
				// Before declaring the analytic lane wrong, re-measure with a
				// 1024× smaller step. Stiff dynamics fold branch flips (the
				// renormalisation toggling on exact tot==1, clamp boundaries)
				// into facets narrower than the canonical step; a central
				// difference spanning a facet boundary reports the average of
				// two nearby slopes — stable under step-halving and two-sided,
				// so every gate above passes — yet it is not the derivative AT
				// the point. Fuzz find: β ~ 1e6 with γ ~ 5e15 has facet width
				// ~1 in β; fd at h=106 sits 2.3e-5 relative from the true
				// slope while fd at h≈0.1 matches the analytic lane to 5e-10
				// (confirmed against a 200-bit dual-number sweep).
				ht := h / 1024
				upT := fdProbe(p, n, eps, rate, sp, ht)
				dnT := fdProbe(p, n, eps, rate, sp, -ht)
				up2T := fdProbe(p, n, eps, rate, sp, ht/2)
				dn2T := fdProbe(p, n, eps, rate, sp, -ht/2)
				fd1t := (upT[ti] - dnT[ti]) / (2 * ht)
				fd2t := (up2T[ti] - dn2T[ti]) / ht
				noiseT := 1e-12 * (outMax + 1) / ht
				refT := math.Max(math.Abs(fd1t), math.Abs(fd2t))
				if refT < noiseT || math.Abs(fd1t-fd2t) > 5e-6*refT+noiseT {
					continue // no step size resolves this entry: FD is not authoritative
				}
				ft := (4*fd2t - fd1t) / 3
				denomT := math.Max(math.Max(math.Abs(a), math.Abs(ft)), 1e-4*(colMax+1))
				// The small step buys facet resolution at the price of noise:
				// the float64 trajectory itself is only accurate to ~1e-12
				// relative, so ft carries ~noiseT of scatter even when the
				// step-halving pair happens to agree (the allowance in the
				// gate above includes noiseT). It can therefore only confirm
				// a disagreement bigger than its own credibility floor.
				if relT := math.Abs(a-ft) / denomT; relT > 1e-5 && math.Abs(a-ft) > 1024*fdres+4*noiseT {
					// Last resort: is the pointwise derivative even stable at
					// this scale? Sample the analytic lane at ±ht and ±ht/2
					// nudges of the same parameter. When the samples jitter by
					// the order of the disagreement, the facets are narrower
					// than ht too (the fuzzer found widths near 1e-10 relative
					// — an ulp-scale γ change moved the true slope by 5e-5
					// relative, verified against the 200-bit sweep) and FD at
					// every practical step reads a cross-facet average: no
					// oracle. Only a locally-stable analytic lane that still
					// disagrees with a self-consistent FD is a real bug.
					spread := 0.0
					for _, hn := range []float64{ht, -ht, ht / 2, -ht / 2} {
						pp, ep := perturb(*p, eps, sp, hn)
						_, jacN := SimulateWithSensitivities(nil, nil, &pp, n, ep, rate, specs)
						if d := math.Abs(jacN[ti*np+j] - a); d > spread {
							spread = d
						}
					}
					if spread > math.Max(1e-5*denomT, 0.25*math.Abs(a-ft)) {
						continue // derivative chaotic at micro-scale: FD cannot arbitrate
					}
					t.Errorf("%s: lane %d (%v) tick %d: analytic %.12g vs FD %.12g (rel %.3g; small-step FD %.12g, rel %.3g, analytic spread %.3g)",
						name, j, sp.Param, ti, a, f, rel, ft, relT, spread)
					return checked
				}
			}
			checked++
		}
	}
	return checked
}

func TestJacobianMatchesFiniteDifference(t *testing.T) {
	n := 96
	for _, tc := range sensCases() {
		var eps []float64
		if tc.shocks != nil {
			eps = epsilonFromShocks(tc.shocks, n)
		}
		specs := sensSpecsFor(tc.shocks, true, n)
		checked := checkJacobianAgainstFD(t, tc.name, &tc.p, n, eps, tc.rate, specs)
		if min := n * len(specs) / 2; checked < min {
			t.Errorf("%s: Richardson gate skipped too much: %d of %d entries checked",
				tc.name, checked, n*len(specs))
		}
	}
}

// TestSensitivitySubgradientConventions pins the documented derivative
// choices at the non-smooth points, where FD cannot arbitrate.
func TestSensitivitySubgradientConventions(t *testing.T) {
	n := 24
	specs := sensSpecsFor(nil, true, n)
	np := len(specs)
	zeroLane := func(name string, jac []float64, lane int) {
		t.Helper()
		for ti := 0; ti < n; ti++ {
			if v := jac[ti*np+lane]; v != 0 {
				t.Fatalf("%s: lane %d tick %d: got %v, want exactly 0", name, lane, ti, v)
			}
		}
	}

	// Sanitised inputs are locally constant: derivative exactly 0.
	p := KeywordParams{N: -3, Beta: 0.5, Delta: 0.3, Gamma: 0.6, I0: 0.01, TEta: NoGrowth}
	_, jac := SimulateWithSensitivities(nil, nil, &p, n, nil, -1, specs)
	zeroLane("negative-N", jac, 0)

	p = KeywordParams{N: 100, Beta: 0.5, Delta: 0.3, Gamma: 0.6, I0: 1.25, TEta: NoGrowth}
	_, jac = SimulateWithSensitivities(nil, nil, &p, n, nil, -1, specs)
	zeroLane("clamped-I0", jac, 4)

	p = KeywordParams{N: 100, Beta: 0.5, Delta: 0.3, Gamma: 0.6, I0: 0.01,
		Eta0: math.Inf(1), TEta: 5}
	_, jac = SimulateWithSensitivities(nil, nil, &p, n, nil, -1, specs)
	zeroLane("non-finite-eta", jac, 5)

	// A growthRate override sidelines the keyword's own η₀ entirely.
	p = KeywordParams{N: 100, Beta: 0.5, Delta: 0.3, Gamma: 0.6, I0: 0.01,
		Eta0: 0.2, TEta: 5}
	_, jac = SimulateWithSensitivities(nil, nil, &p, n, nil, 0.1, specs)
	zeroLane("rate-override", jac, 5)

	// Active clamp01 kills the flow through the clamped component: with β
	// large enough that i(1) clamps to 1 and s(1) to 0 at the first step
	// (δ = γ = 0 so v stays exactly 0 and tot stays exactly 1), the lanes
	// that act only through infect — β, γ, i0 — have ∂out/∂θ = 0 at t=1:
	// the clamped state is locally constant in them.
	p = KeywordParams{N: 100, Beta: 500, Delta: 0, Gamma: 0, I0: 0.5, TEta: NoGrowth}
	out, jac := SimulateWithSensitivities(nil, nil, &p, n, nil, -1, specs)
	if out[1] != p.N {
		t.Fatalf("clamp case did not saturate: out[1] = %v, want N = %v", out[1], p.N)
	}
	for _, lane := range []int{1, 3, 4} { // β, γ, i0
		if v := jac[1*np+lane]; v != 0 {
			t.Fatalf("saturated-clamp: lane %d at t=1: got %v, want 0 (clamp subgradient)", lane, v)
		}
	}
	// The N lane keeps its direct term: ∂out[1]/∂N = i(1) = 1.
	if v := jac[1*np+0]; v != 1 {
		t.Fatalf("saturated-clamp: N lane at t=1: got %v, want 1", v)
	}
	// The δ lane pins the renormalisation convention at tot == 1 exactly:
	// v(1) = δ·i(0) escapes the clamps, so tot = 1 + δ·i(0) and the
	// quotient rule gives ∂i(1)/∂δ = −i(0) = −1/2 even though the value
	// path skipped the ÷1.0. ∂out[1]/∂δ = −N/2, exactly.
	if v := jac[1*np+2]; v != -p.N/2 {
		t.Fatalf("saturated-clamp: δ lane at t=1: got %v, want %v (quotient rule at tot==1)", v, -p.N/2)
	}
}

// TestSensitivityScratchAllocs pins the fitter-facing contract: with
// caller-owned buffers, a sensitivity pass allocates nothing.
func TestSensitivityScratchAllocs(t *testing.T) {
	n := 96
	shocks := hotpathShocks()
	eps := epsilonFromShocks(shocks, n)
	specs := sensSpecsFor(shocks, true, n)
	p := hotpathParams()
	out := make([]float64, n)
	jac := make([]float64, n*len(specs))
	scratch := make([]float64, 3*len(specs))
	allocs := testing.AllocsPerRun(20, func() {
		simulateSens(out, jac, scratch, &p, n, eps, -1, specs)
	})
	if allocs != 0 {
		t.Fatalf("simulateSens with caller buffers: %v allocs/op, want 0", allocs)
	}
}

// FuzzJacobianConsistency drives arbitrary parameter vectors through the
// sensitivity kernel. The absolute contract: values bit-identical to
// SimulateInto, Jacobian always finite, and FD agreement wherever the
// Richardson gate certifies FD itself.
func FuzzJacobianConsistency(f *testing.F) {
	mk := func(vals ...float64) []byte {
		b := make([]byte, 8*len(vals))
		for i, v := range vals {
			binary.LittleEndian.PutUint64(b[8*i:], math.Float64bits(v))
		}
		return b
	}
	// Seeds: (N, β, δ, γ, i0, η₀, tEta, strength) tuples.
	f.Add(mk(120, 0.6, 0.35, 0.9, 0.01, 0, -1, 3.5))
	f.Add(mk(120, 0.6, 0.35, 0.9, 0.01, 0.4, 30, 3.5))
	f.Add(mk(50, 40, 0.2, 0.9, 0.3, 0, -1, 10))
	f.Add(mk(math.NaN(), 0.6, 0.35, 0.9, 1.5, math.Inf(1), 3, -2))
	f.Add(mk(1e300, 1e-9, 0, 2, 0, 0, 0, 80))

	f.Fuzz(func(t *testing.T, data []byte) {
		vals := make([]float64, 8)
		for i := range vals {
			if 8*i+8 <= len(data) {
				vals[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[8*i:]))
			}
		}
		tEta := NoGrowth
		if v := vals[6]; v == v && v >= 0 && v < 1e6 {
			tEta = int(v)
		}
		p := KeywordParams{N: vals[0], Beta: vals[1], Delta: vals[2],
			Gamma: vals[3], I0: vals[4], Eta0: vals[5], TEta: tEta}
		n := 48
		shocks := []Shock{{Keyword: 0, Period: 16, Start: 5, Width: 3,
			Strength: []float64{vals[7], vals[7] / 2, vals[7]}}}
		eps := epsilonFromShocks(shocks, n)
		specs := sensSpecsFor(shocks, true, n)
		np := len(specs)

		want := SimulateInto(nil, &p, n, eps, -1)
		got, jac := SimulateWithSensitivities(nil, nil, &p, n, eps, -1, specs)
		for i := range want {
			if want[i] != got[i] && !(want[i] != want[i] && got[i] != got[i]) {
				t.Fatalf("value drift at tick %d: %x vs %x", i, got[i], want[i])
			}
		}
		// Explosive dynamics (huge β) can legitimately overflow a true
		// sensitivity — ∂i/∂i0 grows like (1+β)^t — so non-finite Jacobian
		// entries are allowed here; the LM layer zeroes them (pinned by
		// TestFitSanitisesNonFiniteJacobian in internal/lm). FD agreement
		// is only meaningful where the Jacobian is finite.
		_ = np
		finite := true
		for _, v := range jac {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				finite = false
				break
			}
		}
		for _, v := range []float64{p.N, p.Beta, p.Delta, p.Gamma, p.I0, p.Eta0, vals[7]} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				finite = false
			}
		}
		if finite {
			checkJacobianAgainstFD(t, "fuzz", &p, n, eps, -1, specs)
		}
	})
}

// The kernel runs the canonical {N, β, δ, γ, i0} lane prefix unrolled with
// scalar state and everything else through the generic per-lane loop. Both
// paths must produce the same bits: swapping the first two specs defeats the
// prefix detection, so the same lanes run through the generic loop, and each
// column must match its specialised counterpart exactly.
func TestSensitivitySpecializedMatchesGeneric(t *testing.T) {
	n := 96
	for _, tc := range sensCases() {
		var eps []float64
		if tc.shocks != nil {
			eps = epsilonFromShocks(tc.shocks, n)
		}
		specs := sensSpecsFor(tc.shocks, tc.p.TEta != NoGrowth, n)
		np := len(specs)
		outS, jacS := SimulateWithSensitivities(nil, nil, &tc.p, n, eps, tc.rate, specs)

		perm := append([]SensSpec(nil), specs...)
		perm[0], perm[1] = perm[1], perm[0] // β first: generic path for all lanes
		outG, jacG := SimulateWithSensitivities(nil, nil, &tc.p, n, eps, tc.rate, perm)

		assertBitEqual(t, tc.name+"/out", outS, outG)
		colS := make([]float64, n)
		colG := make([]float64, n)
		for j := 0; j < np; j++ {
			pj := j // column of lane j in the permuted layout
			if j == 0 {
				pj = 1
			} else if j == 1 {
				pj = 0
			}
			for i := 0; i < n; i++ {
				colS[i] = jacS[i*np+j]
				colG[i] = jacG[i*np+pj]
			}
			assertBitEqual(t, tc.name+"/lane", colS, colG)
		}
	}
}
