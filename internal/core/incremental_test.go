package core

import (
	"math"
	"reflect"
	"sort"
	"testing"
	"time"
)

// fullStrengths materialises one strength per occurrence over n ticks so a
// test shock needs no future-padding anywhere.
func fullStrengths(s Shock, n int, val float64) Shock {
	occ := s.Occurrences(n)
	s.Strength = make([]float64, occ)
	for m := range s.Strength {
		s.Strength[m] = val * (1 + 0.1*float64(m%3))
	}
	return s
}

// TestIncrementalStepMatchesSimulate pins the bit-identity contract of the
// incremental stepper: replaying a sequence tick-by-tick through incState
// must produce exactly the bits SimulateInto's clean-ε fast path produces
// for the same parameters and shock set — growth split, renormalisation
// skip and ε accumulation order included.
func TestIncrementalStepMatchesSimulate(t *testing.T) {
	const n, w = 300, 64
	cases := []struct {
		name   string
		params KeywordParams
		shocks []Shock
	}{
		{"base-only", KeywordParams{N: 100, Beta: 0.5, Delta: 0.45, Gamma: 0.5, I0: 0.02, TEta: NoGrowth}, nil},
		{"cyclic-shock", truthBase, []Shock{
			fullStrengths(Shock{Period: 52, Start: 6, Width: 2}, n, 9),
		}},
		{"growth-and-mixed-shocks", KeywordParams{N: 80, Beta: 0.55, Delta: 0.4, Gamma: 0.3, I0: 0.03, Eta0: 0.4, TEta: 120}, []Shock{
			fullStrengths(Shock{Period: 52, Start: 10, Width: 3}, n, 7),
			fullStrengths(Shock{Period: NonCyclic, Start: 200, Width: 4}, n, 12),
		}},
		{"growth-from-zero", KeywordParams{N: 120, Beta: 0.6, Delta: 0.5, Gamma: 0.45, I0: 0.05, Eta0: 0.2, TEta: 0}, []Shock{
			fullStrengths(Shock{Period: 26, Start: 0, Width: 1}, n, 5),
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			const scale = 137.25
			raw := tc.params
			raw.N *= scale
			seq := synthGlobal(tc.params, tc.shocks, n, 0.01, 7)
			res := GlobalFitResult{Params: raw, Shocks: CopyShocks(tc.shocks), Scale: scale}

			// Build over a prefix, then advance the rest one tick at a time —
			// exercising both the replay and the live-append paths.
			st := newIncState(seq[:n/2], &res, nil, w)
			for _, v := range seq[n/2:] {
				st.advance(res.Shocks, v)
			}

			pnorm := raw
			pnorm.N = raw.N / scale
			eps := epsilonFromShocks(tc.shocks, n)
			want := SimulateInto(nil, &pnorm, n, eps, -1)
			for tt := n - w; tt < n; tt++ {
				if got := st.sim[tt%w]; got != want[tt] {
					t.Fatalf("tick %d: incremental %v != batch %v", tt, got, want[tt])
				}
			}
		})
	}
}

// spikedSeries is grammyLike with an off-cycle burst multiplied in, so the
// incremental tail scan has genuine new structure to discover.
func spikedSeries(n int, lo, hi int, gain float64, seed int64) []float64 {
	full := grammyLike(n, seed)
	for t := lo; t < hi && t < n; t++ {
		full[t] *= gain
	}
	return full
}

// TestIncrementalRestoreBitIdentical is the mid-window snapshot/restore
// equivalence test: RestoreStream(State()) taken mid-window — with pending
// refit debt and a tail-discovered shock in play — must continue
// bit-identically to the uninterrupted stream under identical appends.
func TestIncrementalRestoreBitIdentical(t *testing.T) {
	opts := FitOptions{DisableGrowth: true}
	full := spikedSeries(420, 320, 327, 3.5, 91)
	cfg := IncrementalConfig{TailWindow: 52, DebtLimit: 120}

	s1 := NewIncrementalStream(opts, 26, cfg)
	if _, err := s1.Append(full[:300]...); err != nil {
		t.Fatal(err)
	}
	if !s1.Ready() {
		t.Fatal("stream not fitted after seed")
	}
	for _, v := range full[300:350] {
		if _, err := s1.Append(v); err != nil {
			t.Fatal(err)
		}
	}
	snap := s1.State()
	if snap.Debt <= 0 {
		t.Fatalf("scenario should have pending refit debt at the snapshot, got %v", snap.Debt)
	}
	if snap.Mode != RefitIncremental {
		t.Fatalf("snapshot mode = %v", snap.Mode)
	}
	s2 := RestoreStream(opts, snap)

	for _, v := range full[350:] {
		r1, err1 := s1.Append(v)
		r2, err2 := s2.Append(v)
		if r1 != r2 || (err1 == nil) != (err2 == nil) {
			t.Fatalf("divergent append outcome: live (%v,%v) restored (%v,%v)", r1, err1, r2, err2)
		}
	}
	st1, st2 := s1.State(), s2.State()
	if !reflect.DeepEqual(st1, st2) {
		t.Fatalf("states diverged after identical appends:\nlive:     %+v\nrestored: %+v", st1, st2)
	}
	f1, f2 := s1.Forecast(52), s2.Forecast(52)
	if !reflect.DeepEqual(f1, f2) {
		t.Fatal("forecasts diverged after identical appends")
	}
}

// headroomSeries is a synthetic stream built so that bursts appended after
// the fit stay inside the model's amplitude headroom: a large one-shot early
// on sets the normalisation scale (~78), while the steady state between
// annual spikes sits near 0.16 of it — so a 3× burst is still well below the
// out = N·i(t) ≤ N ceiling and the tail scan can actually model it. (A burst
// past the ceiling is the stale-scale case, covered separately below.)
func headroomSeries(n int, seed int64) []float64 {
	occ := 0
	if n > 30 {
		occ = (n-1-30)/52 + 1
	}
	str := make([]float64, occ)
	for i := range str {
		str[i] = 4.5
	}
	shocks := []Shock{
		{Period: NonCyclic, Start: 15, Width: 3, Strength: []float64{40}},
		{Period: 52, Start: 30, Width: 2, Strength: str},
	}
	return synthGlobal(truthBase, shocks, n, 0.005, seed)
}

// TestIncrementalTailShockDiscovered: a burst appended after the fit must be
// picked up by the O(tail) scan — a new shock appears and the spike residual
// shrinks — without any full batch refit happening.
func TestIncrementalTailShockDiscovered(t *testing.T) {
	opts := FitOptions{DisableGrowth: true}
	base := headroomSeries(400, 17)
	s := NewIncrementalStream(opts, 26, IncrementalConfig{TailWindow: 52, DebtLimit: 1e12})
	if _, err := s.Append(base[:340]...); err != nil {
		t.Fatal(err)
	}
	before := len(s.Model().Shocks)
	debtBefore := s.Debt()

	// Off-cycle burst at ticks 350-356: 3× the quiet level is ~0.5 of the
	// series max — visible above the seed level, within model headroom.
	burst := append([]float64(nil), base[340:]...)
	for i := 10; i < 17; i++ {
		burst[i] *= 3
	}
	refitted, err := s.Append(burst...)
	if err != nil {
		t.Fatal(err)
	}
	if refitted {
		t.Fatal("tail discovery must not trigger a full refit")
	}
	shocks := s.Model().Shocks
	if len(shocks) <= before {
		t.Fatalf("no tail shock discovered: %d shocks before, %d after", before, len(shocks))
	}
	found := false
	for _, sh := range shocks {
		if sh.Period == NonCyclic && sh.Start >= 344 && sh.Start <= 360 {
			found = true
		}
	}
	if !found {
		t.Fatalf("discovered shock not at the burst: %+v", shocks)
	}
	if s.Debt() < debtBefore+debtTailShock {
		t.Fatalf("structural change should accrue extra debt: %v -> %v", debtBefore, s.Debt())
	}
}

// TestIncrementalStaleScaleAcceleratesRefit: a burst past the fitted scale
// cannot be modelled incrementally (out = N·i ≤ N), so each over-scale tick
// accrues the stale-scale debt surcharge and the full refit — which
// re-normalises — fires much sooner than quiet ticks alone would schedule.
func TestIncrementalStaleScaleAcceleratesRefit(t *testing.T) {
	opts := FitOptions{DisableGrowth: true}
	base := headroomSeries(400, 17)
	s := NewIncrementalStream(opts, 1000, IncrementalConfig{TailWindow: 52, DebtLimit: 100})
	if _, err := s.Append(base[:340]...); err != nil {
		t.Fatal(err)
	}
	oldScale := s.result.Scale
	if _, err := s.Append(base[340:350]...); err != nil {
		t.Fatal(err)
	}

	refitAfter := -1
	for i := 0; i < 40; i++ {
		refitted, err := s.Append(3 * oldScale)
		if err != nil {
			t.Fatal(err)
		}
		if refitted {
			refitAfter = i + 1
			break
		}
	}
	if refitAfter < 0 {
		t.Fatal("over-scale burst never accelerated a full refit")
	}
	// Quiet ticks accrue 1 debt/tick: from ~10 pending it would take ~90
	// quiet ticks to hit the limit of 100 — the surcharge must beat that.
	if refitAfter > 30 {
		t.Fatalf("stale-scale refit fired only after %d over-scale ticks", refitAfter)
	}
	if s.result.Scale < 2*oldScale {
		t.Fatalf("full refit should re-normalise to the burst amplitude: scale %.1f -> %.1f", oldScale, s.result.Scale)
	}
	if s.Debt() != 0 {
		t.Fatalf("debt not reset by the stale-scale refit: %v", s.Debt())
	}
}

// TestIncrementalDebtTriggersFullRefit: quiet ticks accrue one debt unit
// each, and the full batch refit fires exactly when the configured limit is
// crossed, resetting the debt.
func TestIncrementalDebtTriggersFullRefit(t *testing.T) {
	opts := FitOptions{DisableGrowth: true}
	full := grammyLike(600, 19)
	s := NewIncrementalStream(opts, 1000, IncrementalConfig{TailWindow: 26, DebtLimit: 40})
	if _, err := s.Append(full[:300]...); err != nil {
		t.Fatal(err)
	}
	refits := 0
	for _, v := range full[300:550] {
		refitted, err := s.Append(v)
		if err != nil {
			t.Fatal(err)
		}
		if refitted {
			refits++
			if s.Debt() != 0 {
				t.Fatalf("debt not reset by full refit: %v", s.Debt())
			}
		} else if s.Debt() >= s.DebtLimit() {
			t.Fatalf("debt %v at/over limit %v without a refit", s.Debt(), s.DebtLimit())
		}
	}
	if refits < 2 {
		t.Fatalf("expected at least 2 debt-scheduled refits over 250 quiet ticks, got %d", refits)
	}
}

// TestStreamRefitBackoffSpacing pins the exponential retry schedule: a
// persistently failing refit is retried after RefitEvery ticks, then 2×,
// 4×, … — not on every append — and a subsequent successful refit clears
// the backoff.
func TestStreamRefitBackoffSpacing(t *testing.T) {
	poisoned := true
	opts := FitOptions{DisableGrowth: true, Progress: func(FitEvent) {
		if poisoned {
			panic("injected refit fault")
		}
	}}
	s := NewStream(opts, 4)
	full := grammyLike(200, 99)

	if _, err := s.Append(full[:10]...); err == nil {
		t.Fatal("poisoned first fit should fail")
	}
	var errTicks []int
	for i, v := range full[10:74] {
		_, err := s.Append(v)
		if err != nil {
			errTicks = append(errTicks, i+1)
		}
	}
	want := []int{4, 12, 28, 60} // gaps 4, 8, 16, 32 = RefitEvery × 2^k
	if !reflect.DeepEqual(errTicks, want) {
		t.Fatalf("retry attempts at ticks %v, want %v", errTicks, want)
	}
	if s.Ready() {
		t.Fatal("stream should not be fitted under persistent faults")
	}

	poisoned = false
	var refitted bool
	for _, v := range full[74:] {
		var err error
		refitted, err = s.Append(v)
		if err != nil {
			t.Fatal(err)
		}
		if refitted {
			break
		}
	}
	if !refitted || !s.Ready() {
		t.Fatal("healed stream should fit on the next scheduled retry")
	}
	if s.RetryIn() != 0 {
		t.Fatalf("successful refit should clear the backoff, RetryIn=%d", s.RetryIn())
	}
}

// TestStreamRefitBackoffPreservesLastGoodFit: a fitted stream whose refits
// start failing keeps serving the last good model, and appends inside the
// backoff window are cheap successes rather than repeated fit errors.
func TestStreamRefitBackoffPreservesLastGoodFit(t *testing.T) {
	poisoned := false
	opts := FitOptions{DisableGrowth: true, Progress: func(FitEvent) {
		if poisoned {
			panic("injected refit fault")
		}
	}}
	s := NewStream(opts, 8)
	full := grammyLike(200, 98)
	if _, err := s.Append(full[:120]...); err != nil {
		t.Fatal(err)
	}
	modelBefore := s.Model()

	poisoned = true
	errs := 0
	for _, v := range full[120:160] {
		if _, err := s.Append(v); err != nil {
			errs++
		}
	}
	if errs == 0 || errs > 3 {
		t.Fatalf("expected 1-3 spaced refit errors over 40 ticks (backoff), got %d", errs)
	}
	if !reflect.DeepEqual(modelBefore.Shocks, s.Model().Shocks) {
		t.Fatal("failed refits must preserve the last good fit")
	}
}

// TestIncrementalForecastComparableToBatch: the incremental path is judged
// against the batch ground truth by forecast quality — its holdout NRMSE
// must stay within a tolerance band of the batch stream fed identically.
func TestIncrementalForecastComparableToBatch(t *testing.T) {
	opts := FitOptions{DisableGrowth: true}
	full := grammyLike(460, 44)
	train, hold := full[:408], full[408:]

	feed := func(s *Stream) {
		for i := 0; i < len(train); i += 8 {
			hi := i + 8
			if hi > len(train) {
				hi = len(train)
			}
			if _, err := s.Append(train[i:hi]...); err != nil {
				t.Fatal(err)
			}
		}
	}
	batch := NewStream(opts, 26)
	feed(batch)
	inc := NewIncrementalStream(opts, 26, IncrementalConfig{TailWindow: 104})
	feed(inc)

	nrmse := func(fc []float64) float64 {
		if len(fc) < len(hold) {
			t.Fatalf("short forecast: %d < %d", len(fc), len(hold))
		}
		sse, mean := 0.0, 0.0
		for i, v := range hold {
			d := fc[i] - v
			sse += d * d
			mean += v
		}
		mean /= float64(len(hold))
		return math.Sqrt(sse/float64(len(hold))) / mean
	}
	bn := nrmse(batch.Forecast(len(hold)))
	in := nrmse(inc.Forecast(len(hold)))
	t.Logf("holdout NRMSE: batch %.4f incremental %.4f", bn, in)
	if in > bn*1.5+0.05 {
		t.Fatalf("incremental forecast NRMSE %.4f outside equivalence bound of batch %.4f", in, bn)
	}
}

// TestStreamModeAndCadenceSetters covers the mode/cadence surface the
// registry drives: SetRefitEvery on a live stream, SetMode round-trips, and
// RefitNow forcing a consolidation regardless of pending debt.
func TestStreamModeAndCadenceSetters(t *testing.T) {
	opts := FitOptions{DisableGrowth: true}
	s := NewStream(opts, 50)
	if s.Mode() != RefitBatch || s.RefitEvery() != 50 {
		t.Fatalf("defaults: mode %v refitEvery %d", s.Mode(), s.RefitEvery())
	}
	s.SetRefitEvery(-3)
	if s.RefitEvery() != 50 {
		t.Fatal("non-positive SetRefitEvery must be ignored")
	}
	s.SetRefitEvery(10)
	if s.RefitEvery() != 10 {
		t.Fatal("SetRefitEvery(10) not honored")
	}

	full := grammyLike(200, 12)
	if _, err := s.Append(full[:100]...); err != nil {
		t.Fatal(err)
	}
	s.SetMode(RefitIncremental)
	if s.Mode() != RefitIncremental || s.inc == nil {
		t.Fatal("SetMode(RefitIncremental) on a fitted stream must build the incremental state")
	}
	if _, err := s.Append(full[100:150]...); err != nil {
		t.Fatal(err)
	}
	if s.Debt() <= 0 {
		t.Fatal("incremental appends must accrue debt")
	}
	if err := s.RefitNow(nil); err != nil {
		t.Fatal(err)
	}
	if s.Debt() != 0 {
		t.Fatal("RefitNow must clear pending debt")
	}
	s.SetMode(RefitBatch)
	if s.inc != nil || s.Debt() != 0 {
		t.Fatal("SetMode(RefitBatch) must drop the incremental state")
	}

	if _, ok := ParseRefitMode("incremental"); !ok {
		t.Fatal("ParseRefitMode(incremental)")
	}
	if _, ok := ParseRefitMode("nope"); ok {
		t.Fatal("ParseRefitMode should reject unknown names")
	}
	if RefitIncremental.String() != "incremental" || RefitBatch.String() != "batch" {
		t.Fatal("RefitMode.String wire names")
	}
}

// TestStreamAppendLatencySLO enforces the tentpole's bounded-time contract:
// p99 per-append latency below 10ms with 10k ticks already in the stream.
// The debt limit is set out of reach so the measurement isolates the
// incremental path — the amortised full refit is a scheduled O(n) event the
// debt model accounts for separately (benchmarked in BenchmarkStreamAppend).
func TestStreamAppendLatencySLO(t *testing.T) {
	if testing.Short() {
		t.Skip("latency SLO test skipped in -short")
	}
	opts := FitOptions{DisableGrowth: true}
	full := grammyLike(10300, 77)
	s := NewIncrementalStream(opts, 26, IncrementalConfig{TailWindow: 104, DebtLimit: 1e12})
	if _, err := s.Append(full[:300]...); err != nil {
		t.Fatal(err)
	}
	lat := make([]float64, 0, 10000)
	for _, v := range full[300:] {
		t0 := time.Now()
		if _, err := s.Append(v); err != nil {
			t.Fatal(err)
		}
		lat = append(lat, time.Since(t0).Seconds())
	}
	sort.Float64s(lat)
	p99 := lat[len(lat)*99/100]
	t.Logf("append p99 = %.3fms over %d appends at n=10k", p99*1e3, len(lat))
	if p99 > 0.010 {
		t.Fatalf("append p99 %.3fms exceeds the 10ms SLO", p99*1e3)
	}
}

// TestStreamAppendAllocsBounded keeps the incremental append path from
// growing per-tick allocations: quiet single-tick appends must stay within
// a small constant allocation budget.
func TestStreamAppendAllocsBounded(t *testing.T) {
	opts := FitOptions{DisableGrowth: true}
	full := grammyLike(2000, 55)
	s := NewIncrementalStream(opts, 26, IncrementalConfig{TailWindow: 104, DebtLimit: 1e12})
	if _, err := s.Append(full[:600]...); err != nil {
		t.Fatal(err)
	}
	next := 600
	avg := testing.AllocsPerRun(1000, func() {
		if _, err := s.Append(full[next%len(full)]); err != nil {
			t.Fatal(err)
		}
		next++
	})
	if avg > 8 {
		t.Fatalf("incremental append allocates %.1f objects per tick; budget is 8", avg)
	}
}

// TestIncrementalKnownShockRefined: when a known cyclic shock recurs at a
// very different magnitude, the tail scan refits that occurrence's strength
// in place instead of stacking a new shock.
func TestIncrementalKnownShockRefined(t *testing.T) {
	opts := FitOptions{DisableGrowth: true}
	full := headroomSeries(400, 17)
	s := NewIncrementalStream(opts, 26, IncrementalConfig{TailWindow: 52, DebtLimit: 1e12})
	if _, err := s.Append(full[:340]...); err != nil {
		t.Fatal(err)
	}
	si := -1
	for i := range s.result.Shocks {
		if s.result.Shocks[i].Period > 0 {
			si = i
		}
	}
	if si < 0 {
		t.Fatal("seed fit found no cyclic shock; scenario broken")
	}
	annual := s.result.Shocks[si]
	projected := annual.MeanStrength()
	// Locate the first occurrence window starting after the seed and amplify
	// exactly those ticks — the residual apex then falls inside the window,
	// which is the contract for in-place refinement over new-shock stacking.
	o := -1
	for m := 0; ; m++ {
		if st := annual.OccurrenceStart(m); st >= 340 {
			o = st
			break
		} else if st < 0 || st > 400 {
			break
		}
	}
	if o < 0 || o+annual.Width+8 > 400 {
		t.Fatalf("no refittable occurrence after the seed (o=%d)", o)
	}
	for tt := o; tt < o+annual.Width; tt++ {
		full[tt] *= 2.5
	}
	nshocks := len(s.result.Shocks)
	refitted, err := s.Append(full[340 : o+annual.Width+8]...)
	if err != nil {
		t.Fatal(err)
	}
	if refitted {
		t.Fatal("occurrence refinement must not trigger a full refit")
	}
	got := s.result.Shocks[si]
	m := got.OccurrenceAt(o)
	if m < 0 || m >= len(got.Strength) {
		t.Fatalf("occurrence at %d not materialised (m=%d, strengths=%d)", o, m, len(got.Strength))
	}
	if got.Strength[m] <= 1.2*projected {
		t.Fatalf("amplified occurrence strength %.2f not refined above the projection %.2f", got.Strength[m], projected)
	}
	if len(s.result.Shocks) != nshocks {
		t.Fatalf("refinement should not add shocks: %d -> %d", nshocks, len(s.result.Shocks))
	}
}
