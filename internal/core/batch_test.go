package core

import (
	"math"
	"testing"
)

// The batch/incremental simulator promises bit-identity with SimulateInto —
// the fitters interleave full, windowed, and batched simulations of the same
// model and rely on every path producing the same bits.

func TestSimStateAdvanceMatchesSimulate(t *testing.T) {
	n := 96
	dirty := epsilonFromShocks(hotpathShocks(), n)
	dirty[17] = math.NaN()
	dirty[40] = math.Inf(1)
	cases := append(sensCases(),
		sensCase{"degenerate-N", KeywordParams{N: -5, Beta: 0.6, Delta: 0.35,
			Gamma: 0.9, I0: 0.01, TEta: NoGrowth}, -1, hotpathShocks()},
		sensCase{"clamping", KeywordParams{N: 50, Beta: 40, Delta: 0.2,
			Gamma: 0.9, I0: 0.3, TEta: NoGrowth}, -1, hotpathShocks()},
	)
	for _, tc := range cases {
		var eps []float64
		if tc.shocks != nil {
			eps = epsilonFromShocks(tc.shocks, n)
		}
		for _, ep := range [][]float64{eps, dirty} {
			want := SimulateInto(nil, &tc.p, n, ep, tc.rate)
			// Advance in irregular chunks: checkpoint/resume across window
			// boundaries must not perturb a single bit.
			got := make([]float64, n)
			st := newSimState(&tc.p, n, tc.rate)
			for _, stop := range []int{1, 7, 30, 31, 64, n} {
				st.advance(got, ep, stop)
			}
			assertBitEqual(t, tc.name, want, got)
			// A copied checkpoint must advance independently: re-running the
			// tail from a mid-sequence copy reproduces the same bits.
			st2 := newSimState(&tc.p, n, tc.rate)
			st2.advance(got, ep, 40)
			saved := st2
			tail := make([]float64, n)
			st2.advance(tail, ep, n)
			st3 := saved
			tail2 := make([]float64, n)
			st3.advance(tail2, ep, n)
			assertBitEqual(t, tc.name+"/checkpoint", tail[40:], tail2[40:])
		}
	}
}

func TestSimulateBatchMatchesSimulate(t *testing.T) {
	n := 96
	cases := sensCases()
	params := make([]KeywordParams, 0, len(cases))
	eps := make([][]float64, 0, len(cases))
	for _, tc := range cases {
		if tc.rate >= 0 {
			continue // batch lanes share one growthRate; override tested below
		}
		params = append(params, tc.p)
		if tc.shocks != nil {
			eps = append(eps, epsilonFromShocks(tc.shocks, n))
		} else {
			eps = append(eps, nil)
		}
	}
	out := SimulateBatchInto(nil, params, n, eps, -1)
	if len(out) != len(params)*n {
		t.Fatalf("batch output length %d, want %d", len(out), len(params)*n)
	}
	for j := range params {
		want := SimulateInto(nil, &params[j], n, eps[j], -1)
		assertBitEqual(t, cases[j].name, want, out[j*n:(j+1)*n])
	}

	// nil eps table (ε ≡ 1 everywhere) and a growthRate override.
	out = SimulateBatchInto(out, params, n, nil, 0.02)
	for j := range params {
		want := SimulateInto(nil, &params[j], n, nil, 0.02)
		assertBitEqual(t, cases[j].name+"/rate", want, out[j*n:(j+1)*n])
	}
}

// One states slice is the only allocation of a batched pass with a
// caller-provided dst — the probe-pruning hot path depends on that.
func TestSimulateBatchAllocs(t *testing.T) {
	n := 96
	shocks := hotpathShocks()
	ep := epsilonFromShocks(shocks, n)
	params := []KeywordParams{hotpathParams(), hotpathParams(), hotpathParams()}
	params[1].Beta = 1.2
	params[2].N = 4
	eps := [][]float64{ep, ep, ep}
	dst := make([]float64, len(params)*n)
	allocs := testing.AllocsPerRun(20, func() {
		SimulateBatchInto(dst, params, n, eps, -1)
	})
	if allocs > 1 {
		t.Fatalf("SimulateBatchInto with caller dst: %v allocs/op, want <= 1", allocs)
	}
}
