package core

import (
	"context"
	"math"

	"dspot/internal/mdl"
	"dspot/internal/optimize"
	"dspot/internal/stats"
	"dspot/internal/tensor"
)

// localFitKeywordLocation fits the local-level parameters of keyword i in
// location j (Algorithm 3 body): the potential population b^(L)_ij, the
// growth rate r^(L)_ij, and the per-occurrence shock participation
// strengths s^(L)[·][j]. The global shape parameters stay fixed.
//
// strengths is the worker-local scratch: strengths[si][m] is the strength of
// occurrence m of shock si as seen in this location; it starts at the global
// values and is refined here. The accepted values are written into the
// model's shock Local matrices (column j) by the caller.
//
// The cell owns a small set of scratch buffers (ε profile, simulation
// output, residuals) that every objective closure below reuses — a cell
// runs thousands of golden-section evaluations, and each used to allocate
// an ε rebuild plus a simulation per step. The ε buffer is kept current
// with the strengths at all times; a perturbed strength re-derives only its
// occurrence's window (bit-identical to a full rebuild, see
// rebuildEpsilonWindow).
//
// ctx (which may be nil) cancels the cell cooperatively: each golden-section
// search observes it, so a cancel stops the cell within one objective
// evaluation. A cancelled cell returns whatever it had refined so far — the
// caller discards the whole fit on cancellation.
func (m *Model) localFitKeywordLocation(i, j int, seq []float64, shocks []Shock, ctx context.Context) (nij, rij float64, strengths [][]float64) {
	n := m.Ticks
	p := m.Global[i]

	// Worker-local strengths initialised from the global fit.
	strengths = make([][]float64, len(shocks))
	for si := range shocks {
		strengths[si] = append([]float64(nil), shocks[si].Strength...)
	}

	epsBuf := make([]float64, n)
	var simBuf, residBuf []float64
	rebuildEps := func(lo, hi int) {
		if lo < 0 {
			lo = 0
		}
		if hi > n {
			hi = n
		}
		for t := lo; t < hi; t++ {
			epsBuf[t] = 1
		}
		for si := range shocks {
			addShockProfileWindow(epsBuf, &shocks[si], strengths[si], lo, hi)
		}
	}
	rebuildEps(0, n)

	// Initial population share: proportion of the keyword's global volume
	// observed in this location.
	localVolume := tensor.SumSeq(seq)
	simBuf = SimulateInto(simBuf, &p, n, epsBuf, -1)
	simVolume := tensor.SumSeq(simBuf)
	if simVolume > 0 {
		nij = p.N * localVolume / (simVolume)
	} else {
		nij = p.N / 100
	}
	if nij <= 0 {
		nij = 1e-9
	}
	rij = p.Eta0

	localSim := func() []float64 {
		q := p
		q.N = nij
		simBuf = SimulateInto(simBuf, &q, n, epsBuf, rij)
		return simBuf
	}

	maxN := 4 * nij
	if upper := 2 * stats.Max(seq); upper > maxN {
		maxN = upper
	}
	if maxN <= 0 {
		maxN = 1
	}

	cancelled := func() bool { return ctx != nil && ctx.Err() != nil }

	// Residual noise for the MDL gate in stage (c): the full-length
	// residual vector only changes when nij, rij, or an accepted strength
	// changes, so the estimate is cached and recomputed lazily instead of
	// once per occurrence.
	sigma2 := 0.0
	sigmaValid := false

	for round := 0; round < 2 && !cancelled(); round++ {
		// (a) Potential population b^(L)_ij. ε does not depend on nij, so
		// the profile stays valid across evaluations.
		nij, _, _ = optimize.GoldenCtx(ctx, func(v float64) float64 {
			save := nij
			nij = v
			sse := stats.SSE(seq, localSim())
			nij = save
			return sse
		}, 0, maxN, maxN*1e-5, 80)

		// (b) Growth rate r^(L)_ij (ε-independent as well).
		if p.HasGrowth() {
			rij, _, _ = optimize.GoldenCtx(ctx, func(v float64) float64 {
				save := rij
				rij = v
				sse := stats.SSE(seq, localSim())
				rij = save
				return sse
			}, 0, 10, 1e-4, 60)
		}
		sigmaValid = false // stages (a)/(b) moved the baseline fit

		// (c) Local shock participation, MDL-gated per occurrence.
		entryCost := mdl.IntCost(len(m.Keywords)) + mdl.IntCost(len(m.Locations)) +
			mdl.IntCost(n) + mdl.FloatCost
		for si := range shocks {
			if cancelled() {
				break
			}
			s := &shocks[si]
			for occ := range strengths[si] {
				if cancelled() {
					break
				}
				wstart := s.OccurrenceStart(occ)
				if wstart >= n {
					continue
				}
				wend := n
				if s.Period > 0 && wstart+s.Period < n {
					wend = wstart + s.Period
				} else if wstart+4*s.Width+16 < n {
					wend = wstart + 4*s.Width + 16
				}
				if tensor.ObservedCount(seq[wstart:wend]) == 0 {
					continue
				}
				save := strengths[si][occ]
				ohi := wstart + s.Width
				// window evaluates the trial strength and leaves it (and the
				// ε window) in place; callers restore via setStrength.
				window := func(str float64) []float64 {
					strengths[si][occ] = str
					rebuildEps(wstart, ohi)
					sim := localSim()
					residBuf = residualsInto(residBuf, seq[wstart:wend], sim[wstart:wend])
					return residBuf
				}
				setStrength := func(str float64) {
					strengths[si][occ] = str
					rebuildEps(wstart, ohi)
				}
				fit := func(str float64) float64 {
					return sseVsZero(window(str))
				}
				best, _, _ := optimize.GoldenCtx(ctx, fit, 0, maxShockStrength, 1e-3, 60)
				setStrength(save)
				// MDL gate: a non-zero entry must repay its description cost
				// relative to not participating at all.
				if !sigmaValid {
					residBuf = residualsInto(residBuf, seq, localSim())
					_, sigma2 = mdl.ResidualNoise(residBuf)
					sigmaValid = true
				}
				costZero := mdl.GaussianCostFixed(window(0), 0, sigma2)
				costBest := mdl.GaussianCostFixed(window(best), 0, sigma2) + entryCost
				if best < 1e-3 || costBest >= costZero {
					setStrength(0)
				} else {
					setStrength(best)
				}
				if strengths[si][occ] != save {
					sigmaValid = false
				}
			}
		}
	}
	return nij, rij, strengths
}

// sseVsZero is stats.SSE(r, zeros) without materialising the zero vector:
// the sum of squared non-NaN residuals.
func sseVsZero(r []float64) float64 {
	s := 0.0
	for _, v := range r {
		if math.IsNaN(v) {
			continue
		}
		s += v * v
	}
	return s
}
