package core

import (
	"context"

	"dspot/internal/mdl"
	"dspot/internal/optimize"
	"dspot/internal/stats"
	"dspot/internal/tensor"
)

// localFitKeywordLocation fits the local-level parameters of keyword i in
// location j (Algorithm 3 body): the potential population b^(L)_ij, the
// growth rate r^(L)_ij, and the per-occurrence shock participation
// strengths s^(L)[·][j]. The global shape parameters stay fixed.
//
// strengths is the worker-local scratch: strengths[si][m] is the strength of
// occurrence m of shock si as seen in this location; it starts at the global
// values and is refined here. The accepted values are written into the
// model's shock Local matrices (column j) by the caller.
//
// ctx (which may be nil) cancels the cell cooperatively: each golden-section
// search observes it, so a cancel stops the cell within one objective
// evaluation. A cancelled cell returns whatever it had refined so far — the
// caller discards the whole fit on cancellation.
func (m *Model) localFitKeywordLocation(i, j int, seq []float64, shocks []Shock, ctx context.Context) (nij, rij float64, strengths [][]float64) {
	n := m.Ticks
	p := m.Global[i]

	// Worker-local strengths initialised from the global fit.
	strengths = make([][]float64, len(shocks))
	for si := range shocks {
		strengths[si] = append([]float64(nil), shocks[si].Strength...)
	}

	buildEps := func() []float64 {
		eps := make([]float64, n)
		for t := range eps {
			eps[t] = 1
		}
		for si := range shocks {
			addShockProfile(eps, &shocks[si], strengths[si])
		}
		return eps
	}

	// Initial population share: proportion of the keyword's global volume
	// observed in this location.
	localVolume := tensor.SumSeq(seq)
	globalSim := Simulate(&p, n, buildEps(), -1)
	simVolume := tensor.SumSeq(globalSim)
	if simVolume > 0 {
		nij = p.N * localVolume / (simVolume)
	} else {
		nij = p.N / 100
	}
	if nij <= 0 {
		nij = 1e-9
	}
	rij = p.Eta0

	localSim := func() []float64 {
		q := p
		q.N = nij
		return Simulate(&q, n, buildEps(), rij)
	}

	maxN := 4 * nij
	if upper := 2 * stats.Max(seq); upper > maxN {
		maxN = upper
	}
	if maxN <= 0 {
		maxN = 1
	}

	cancelled := func() bool { return ctx != nil && ctx.Err() != nil }

	for round := 0; round < 2 && !cancelled(); round++ {
		// (a) Potential population b^(L)_ij.
		nij, _, _ = optimize.GoldenCtx(ctx, func(v float64) float64 {
			save := nij
			nij = v
			sse := stats.SSE(seq, localSim())
			nij = save
			return sse
		}, 0, maxN, maxN*1e-5, 80)

		// (b) Growth rate r^(L)_ij.
		if p.HasGrowth() {
			rij, _, _ = optimize.GoldenCtx(ctx, func(v float64) float64 {
				save := rij
				rij = v
				sse := stats.SSE(seq, localSim())
				rij = save
				return sse
			}, 0, 10, 1e-4, 60)
		}

		// (c) Local shock participation, MDL-gated per occurrence.
		entryCost := mdl.IntCost(len(m.Keywords)) + mdl.IntCost(len(m.Locations)) +
			mdl.IntCost(n) + mdl.FloatCost
		for si := range shocks {
			if cancelled() {
				break
			}
			s := &shocks[si]
			for occ := range strengths[si] {
				if cancelled() {
					break
				}
				wstart := s.OccurrenceStart(occ)
				if wstart >= n {
					continue
				}
				wend := n
				if s.Period > 0 && wstart+s.Period < n {
					wend = wstart + s.Period
				} else if wstart+4*s.Width+16 < n {
					wend = wstart + 4*s.Width + 16
				}
				if tensor.ObservedCount(seq[wstart:wend]) == 0 {
					continue
				}
				window := func(str float64) []float64 {
					save := strengths[si][occ]
					strengths[si][occ] = str
					sim := localSim()
					strengths[si][occ] = save
					return residuals(seq[wstart:wend], sim[wstart:wend])
				}
				fit := func(str float64) float64 {
					r := window(str)
					return stats.SSE(r, make([]float64, len(r)))
				}
				best, _, _ := optimize.GoldenCtx(ctx, fit, 0, 80, 1e-3, 60)
				// MDL gate: a non-zero entry must repay its description cost
				// relative to not participating at all.
				_, sigma2 := mdl.ResidualNoise(residuals(seq, localSim()))
				costZero := mdl.GaussianCostFixed(window(0), 0, sigma2)
				costBest := mdl.GaussianCostFixed(window(best), 0, sigma2) + entryCost
				if best < 1e-3 || costBest >= costZero {
					strengths[si][occ] = 0
				} else {
					strengths[si][occ] = best
				}
			}
		}
	}
	return nij, rij, strengths
}
