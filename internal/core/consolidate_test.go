package core

import (
	"testing"

	"dspot/internal/tensor"
)

// fragmentedFit builds a gfit whose shocks are phase-aligned one-shots on a
// truly cyclic series.
func fragmentedFit(t *testing.T) *gfit {
	t.Helper()
	truth := truthBase
	occ := []float64{8, 8, 8, 8, 8}
	cyc := Shock{Keyword: 0, Period: 52, Start: 20, Width: 2, Strength: occ}
	n := 52*5 + 30
	obs := synthGlobal(truth, []Shock{cyc}, n, 0.01, 51)
	norm, _ := tensor.Normalize(obs)

	g := &gfit{seq: norm, n: n, keyword: 0, opts: FitOptions{DisableGrowth: true}.withDefaults()}
	g.params = KeywordParams{TEta: NoGrowth}
	// Fragmented description: five aligned one-shots.
	for m := 0; m < 5; m++ {
		g.shocks = append(g.shocks, Shock{Keyword: 0, Period: NonCyclic,
			Start: 20 + 52*m, Width: 2, Strength: []float64{8}})
	}
	g.fitBase(true)
	return g
}

func TestConsolidateMergesAlignedOneShots(t *testing.T) {
	g := fragmentedFit(t)
	before := g.cost()
	g.consolidateShocks()
	after := g.cost()
	if after >= before {
		t.Fatalf("consolidation did not reduce cost: %g -> %g", before, after)
	}
	cyclic := 0
	for _, s := range g.shocks {
		if s.Period > 0 {
			cyclic++
			if s.Period%52 > 4 && s.Period%52 < 48 {
				t.Fatalf("merged period %d not ≈52-multiple", s.Period)
			}
		}
	}
	if cyclic == 0 {
		t.Fatalf("no cyclic shock after consolidation: %+v", g.shocks)
	}
	if len(g.shocks) >= 5 {
		t.Fatalf("shock count not reduced: %d", len(g.shocks))
	}
}

func TestConsolidateLeavesUnrelatedOneShotsAlone(t *testing.T) {
	truth := truthBase
	shocks := []Shock{
		{Keyword: 0, Period: NonCyclic, Start: 60, Width: 2, Strength: []float64{10}},
		{Keyword: 0, Period: NonCyclic, Start: 137, Width: 2, Strength: []float64{7}},
	}
	n := 220
	obs := synthGlobal(truth, shocks, n, 0.01, 52)
	norm, _ := tensor.Normalize(obs)
	g := &gfit{seq: norm, n: n, keyword: 0, opts: FitOptions{DisableGrowth: true}.withDefaults()}
	g.params = KeywordParams{TEta: NoGrowth}
	g.shocks = append([]Shock(nil), shocks...)
	g.fitBase(true)

	g.consolidateShocks()
	// Two spikes 77 apart with no recurrence: merging them as period-77
	// would predict phantom occurrences and must not pay off... unless the
	// window ends before a third occurrence, in which case the merged form
	// describes the same data. Accept either as long as nothing is lost.
	if len(g.shocks) == 0 {
		t.Fatal("consolidation deleted shocks")
	}
	covered60, covered137 := false, false
	for _, s := range g.shocks {
		if s.OccurrenceAt(60) >= 0 || s.OccurrenceAt(61) >= 0 {
			covered60 = true
		}
		if s.OccurrenceAt(137) >= 0 || s.OccurrenceAt(138) >= 0 {
			covered137 = true
		}
	}
	if !covered60 || !covered137 {
		t.Fatalf("consolidation lost event coverage: %+v", g.shocks)
	}
}

func TestPruneZeroShocks(t *testing.T) {
	g := &gfit{n: 100, opts: FitOptions{}.withDefaults()}
	g.shocks = []Shock{
		{Keyword: 0, Period: NonCyclic, Start: 10, Width: 1, Strength: []float64{5}},
		{Keyword: 0, Period: NonCyclic, Start: 20, Width: 1, Strength: []float64{0}},
		{Keyword: 0, Period: 30, Start: 5, Width: 1, Strength: []float64{0, 0, 0, 0}},
	}
	g.pruneZeroShocks()
	if len(g.shocks) != 1 || g.shocks[0].Start != 10 {
		t.Fatalf("prune result: %+v", g.shocks)
	}
}

func TestWithoutIndices(t *testing.T) {
	shocks := []Shock{{Start: 1}, {Start: 2}, {Start: 3}}
	out := withoutIndices(shocks, []int{0, 2})
	if len(out) != 1 || out[0].Start != 2 {
		t.Fatalf("withoutIndices = %+v", out)
	}
	if got := withoutIndices(shocks, nil); len(got) != 3 {
		t.Fatal("no-drop case wrong")
	}
}

func TestStreamConsolidatesOverTime(t *testing.T) {
	// Feed an annual series in batches; by the end the stream should
	// describe it with at least one cyclic shock and predict future events.
	full := grammyLike(500, 53)
	s := NewStream(FitOptions{DisableGrowth: true}, 52)
	for start := 0; start < len(full); start += 52 {
		end := start + 52
		if end > len(full) {
			end = len(full)
		}
		if _, err := s.Append(full[start:end]...); err != nil {
			t.Fatal(err)
		}
	}
	m := s.Model()
	if m == nil {
		t.Fatal("stream never fitted")
	}
	events := m.PredictedEvents(0, 52)
	if len(events) == 0 {
		t.Fatalf("stream model predicts no future events; shocks: %+v", m.Shocks)
	}
}
