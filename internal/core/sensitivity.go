package core

import "math"

// Analytic forward-mode sensitivities of the SIV difference system. The
// per-tick recurrence in SimulateInto is smooth almost everywhere in the
// parameters, so ∂(s,i,v)/∂θ can be propagated alongside the state in one
// pass — one augmented simulation replaces the p+1 full re-simulations per
// Levenberg–Marquardt iteration that forward finite differences cost. The
// FD path stays available (lm.Options without a Jacobian, or
// FitOptions.FDJacobian) as the cross-check oracle; the agreement suite in
// sensitivity_test.go pins the two against each other.
//
// Subgradient conventions at the non-smooth points (documented in DESIGN.md
// §11 and pinned by TestSensitivitySubgradientConventions):
//
//   - clamp01: derivative 1 where the input passes through unchanged
//     (0 ≤ x ≤ 1), 0 where the clamp is active (x < 0, x > 1, or NaN).
//   - renormalisation: the value path skips the division when s+i+v == 1
//     exactly (x/1.0 is bit-exact), but the derivative path always applies
//     the quotient rule when the total is positive — the renormalised map is
//     what finite differences observe at neighbouring parameters, so the
//     quotient rule is the convention that keeps FD and analytic consistent
//     across the measure-zero tot == 1 branch.
//   - input sanitisation (non-finite or negative N, non-finite η₀ or ε(t)
//     replaced by safe constants): derivative 0 — the replacement is locally
//     constant.

// SensParam identifies which input of the SIV simulation a sensitivity lane
// differentiates with respect to.
type SensParam int

const (
	// SensN differentiates with respect to the population scale N.
	SensN SensParam = iota
	// SensBeta differentiates with respect to the contact rate β.
	SensBeta
	// SensDelta differentiates with respect to the interest-loss rate δ.
	SensDelta
	// SensGamma differentiates with respect to the immunisation-loss rate γ.
	SensGamma
	// SensI0 differentiates with respect to the initial infective fraction.
	SensI0
	// SensEta0 differentiates with respect to the growth magnitude η₀. The
	// lane is identically zero when a growthRate override is in effect (the
	// keyword's own η₀ is then unused).
	SensEta0
	// SensStrength differentiates with respect to one shock-occurrence
	// strength: ∂ε(t)/∂θ = 1 on the occurrence window [Lo, Hi) and 0
	// elsewhere (the profile ε(t) = 1 + Σ strengths is linear in each
	// strength, see addShockProfile).
	SensStrength
)

// SensSpec selects one differentiated parameter of a sensitivity run. Lo/Hi
// are only meaningful for SensStrength: the half-open tick window the
// strength is added to (already clipped to [0, n)).
type SensSpec struct {
	Param  SensParam
	Lo, Hi int
}

// StrengthSpec builds the SensSpec of occurrence m of shock s in an n-tick
// window — exactly the ticks addShockProfile adds Strength[m] to.
func StrengthSpec(s *Shock, m, n int) SensSpec {
	lo := s.OccurrenceStart(m)
	hi := lo + s.Width
	if lo < 0 {
		lo = 0
	}
	if hi > n {
		hi = n
	}
	if hi < lo {
		hi = lo
	}
	return SensSpec{Param: SensStrength, Lo: lo, Hi: hi}
}

// BaseSensSpecs is the lane layout of the base-parameter fits: {N, β, δ, γ,
// i0}, matching the parameter order every LM base objective uses.
func BaseSensSpecs() []SensSpec {
	return []SensSpec{{Param: SensN}, {Param: SensBeta}, {Param: SensDelta},
		{Param: SensGamma}, {Param: SensI0}}
}

// SimulateWithSensitivities runs the SIV simulation and simultaneously
// propagates the forward-mode sensitivities ∂out[t]/∂θ for each requested
// parameter. The simulated values are bit-identical to SimulateInto over the
// same inputs (pinned by TestSensitivityValuesMatchSimulate); the Jacobian
// is returned row-major with jac[t*len(specs)+j] = ∂out[t]/∂θ_j.
//
// dst and jacDst are reused when their capacity suffices (n and
// n*len(specs) respectively), matching the SimulateInto buffer contract.
// One call allocates a small lane-state scratch; the fitters hold a
// reusable scratch and go through simulateSens directly.
func SimulateWithSensitivities(dst, jacDst []float64, p *KeywordParams, n int,
	eps []float64, growthRate float64, specs []SensSpec) (out, jac []float64) {
	scratch := make([]float64, 3*len(specs))
	return simulateSens(dst, jacDst, scratch, p, n, eps, growthRate, specs)
}

// simulateSens is SimulateWithSensitivities with a caller-owned lane-state
// scratch (capacity ≥ 3*len(specs)), so per-iteration Jacobian evaluations
// inside LM allocate nothing.
//
// The kernel special-cases the {N, β, δ, γ, i0} lane prefix that every base
// and candidate fit uses (BaseSensSpecs order): those five lanes run
// unrolled with their state in scalars, and only the remaining lanes (η₀,
// strengths) go through the generic per-lane loop. The unrolled blocks
// repeat the generic loop's statements verbatim, so both paths produce
// bit-identical Jacobians (pinned by TestSensitivitySpecializedMatchesGeneric,
// which permutes the prefix to force the generic path).
func simulateSens(dst, jacDst, scratch []float64, p *KeywordParams, n int,
	eps []float64, growthRate float64, specs []SensSpec) (out, jac []float64) {
	np := len(specs)
	if cap(dst) < n {
		dst = make([]float64, n)
	}
	out = dst[:n]
	if cap(jacDst) < n*np {
		jacDst = make([]float64, n*np)
	}
	jac = jacDst[:n*np]
	if cap(scratch) < 3*np {
		scratch = make([]float64, 3*np)
	}
	dS := scratch[0:np]
	dI := scratch[np : 2*np]
	dV := scratch[2*np : 3*np]

	// Input sanitisation mirrors SimulateInto exactly; the *Valid flags
	// record whether the parameter passed through unchanged (subgradient 1)
	// or was replaced (subgradient 0).
	i := clamp01(p.I0)
	s := 1 - i
	v := 0.0
	i0Valid := p.I0 >= 0 && p.I0 <= 1
	eta := p.Eta0
	etaOwn := growthRate < 0 // η₀ lane live only when p's own rate is in use
	if growthRate >= 0 {
		eta = growthRate
	}
	N := p.N
	nValid := !(math.IsNaN(N) || math.IsInf(N, 0) || N < 0)
	if !nValid {
		N = 0
	}
	etaValid := !(math.IsNaN(eta) || math.IsInf(eta, 0))
	if !etaValid {
		eta = 0
	}
	onePlusEta := 1 + eta
	gStart := n
	if p.TEta != NoGrowth {
		gStart = p.TEta
		if gStart < 0 {
			gStart = 0
		}
		if gStart > n {
			gStart = n
		}
	}
	epsClean := eps != nil
	for t := 0; epsClean && t < n; t++ {
		if e := eps[t]; math.IsNaN(e) || math.IsInf(e, 0) {
			epsClean = false
		}
	}

	// Lane initial state: only the i0 lane starts non-zero.
	for j := range dS {
		dS[j], dI[j], dV[j] = 0, 0, 0
	}
	for j, sp := range specs {
		if sp.Param == SensI0 && i0Valid {
			dI[j] = 1
			dS[j] = -1
		}
	}

	// Base-prefix specialisation: lanes [0,tail) are the canonical
	// {N, β, δ, γ, i0} and run unrolled below with scalar state.
	tail := 0
	if np >= 5 && specs[0].Param == SensN && specs[1].Param == SensBeta &&
		specs[2].Param == SensDelta && specs[3].Param == SensGamma &&
		specs[4].Param == SensI0 {
		tail = 5
	}
	var dS0, dI0, dV0, dS1, dI1, dV1, dS2, dI2, dV2 float64
	var dS3, dI3, dV3, dS4, dI4, dV4 float64
	if tail == 5 {
		dS4, dI4 = dS[4], dI[4]
	}
	beta, delta, gamma := p.Beta, p.Delta, p.Gamma

	for t := 0; t < n; t++ {
		e := 1.0
		eValid := true // ε(t) passed through unsanitised (strength lanes live)
		if eps != nil {
			e = eps[t]
			if !epsClean && (math.IsNaN(e) || math.IsInf(e, 0)) {
				e = 1
				eValid = false
			}
		}
		growth := t >= gStart

		out[t] = N * i

		// Value step — the exact op sequence of SimulateInto's general loop
		// (the fast path's skipped ×1.0 growth factor and skipped ÷1.0
		// renormalisation are bit-identical, see hotpath_test.go).
		factor := 1.0
		if growth {
			factor = onePlusEta
		}
		infect := beta * s * e * i * factor
		lose := delta * i
		wake := gamma * v
		s1 := s - infect + wake
		i1 := i + infect - lose
		v1 := v + lose - wake
		sc, mS := clampGrad(s1)
		ic, mI := clampGrad(i1)
		vc, mV := clampGrad(v1)
		tot := sc + ic + vc
		sN, iN, vN := sc, ic, vc
		if tot > 0 && tot != 1 {
			sN, iN, vN = sc/tot, ic/tot, vc/tot
		}

		// Shared per-tick coefficients of the lane recurrence:
		//   ∂infect = ci·∂s + cs·∂i + (lane-specific bonus)
		// itot hoists the renormalisation division out of the lane loop;
		// only the value path owes bit-exactness, the derivative path may
		// multiply by the reciprocal.
		itot := 0.0
		if tot > 0 {
			itot = 1 / tot
		}
		ci := beta * e * factor * i
		cs := beta * e * factor * s
		seiF := s * e * i * factor // ∂infect/∂β
		bsiF := beta * s * i * factor
		var etaBonus float64
		if growth && etaOwn && etaValid {
			etaBonus = beta * s * e * i // ∂infect/∂η₀ = β·s·ε·i
		}
		row := t * np

		// Unrolled {N, β, δ, γ, i0} prefix — each block repeats the generic
		// loop's statements with the lane state held in scalars.
		if tail == 5 {
			{ // N lane
				d := N * dI0
				if nValid {
					d += i
				}
				jac[row] = d
				dinf := ci*dS0 + cs*dI0
				dlose := delta * dI0
				dwake := gamma * dV0
				ds1 := dS0 - dinf + dwake
				di1 := dI0 + dinf - dlose
				dv1 := dV0 + dlose - dwake
				ds1 *= mS
				di1 *= mI
				dv1 *= mV
				if tot > 0 {
					dtot := ds1 + di1 + dv1
					ds1 = (ds1 - sN*dtot) * itot
					di1 = (di1 - iN*dtot) * itot
					dv1 = (dv1 - vN*dtot) * itot
				}
				dS0, dI0, dV0 = ds1, di1, dv1
			}
			{ // β lane
				jac[row+1] = N * dI1
				dinf := ci*dS1 + cs*dI1
				dinf += seiF
				dlose := delta * dI1
				dwake := gamma * dV1
				ds1 := dS1 - dinf + dwake
				di1 := dI1 + dinf - dlose
				dv1 := dV1 + dlose - dwake
				ds1 *= mS
				di1 *= mI
				dv1 *= mV
				if tot > 0 {
					dtot := ds1 + di1 + dv1
					ds1 = (ds1 - sN*dtot) * itot
					di1 = (di1 - iN*dtot) * itot
					dv1 = (dv1 - vN*dtot) * itot
				}
				dS1, dI1, dV1 = ds1, di1, dv1
			}
			{ // δ lane
				jac[row+2] = N * dI2
				dinf := ci*dS2 + cs*dI2
				dlose := delta * dI2
				dlose += i
				dwake := gamma * dV2
				ds1 := dS2 - dinf + dwake
				di1 := dI2 + dinf - dlose
				dv1 := dV2 + dlose - dwake
				ds1 *= mS
				di1 *= mI
				dv1 *= mV
				if tot > 0 {
					dtot := ds1 + di1 + dv1
					ds1 = (ds1 - sN*dtot) * itot
					di1 = (di1 - iN*dtot) * itot
					dv1 = (dv1 - vN*dtot) * itot
				}
				dS2, dI2, dV2 = ds1, di1, dv1
			}
			{ // γ lane
				jac[row+3] = N * dI3
				dinf := ci*dS3 + cs*dI3
				dlose := delta * dI3
				dwake := gamma * dV3
				dwake += v
				ds1 := dS3 - dinf + dwake
				di1 := dI3 + dinf - dlose
				dv1 := dV3 + dlose - dwake
				ds1 *= mS
				di1 *= mI
				dv1 *= mV
				if tot > 0 {
					dtot := ds1 + di1 + dv1
					ds1 = (ds1 - sN*dtot) * itot
					di1 = (di1 - iN*dtot) * itot
					dv1 = (dv1 - vN*dtot) * itot
				}
				dS3, dI3, dV3 = ds1, di1, dv1
			}
			{ // i0 lane
				jac[row+4] = N * dI4
				dinf := ci*dS4 + cs*dI4
				dlose := delta * dI4
				dwake := gamma * dV4
				ds1 := dS4 - dinf + dwake
				di1 := dI4 + dinf - dlose
				dv1 := dV4 + dlose - dwake
				ds1 *= mS
				di1 *= mI
				dv1 *= mV
				if tot > 0 {
					dtot := ds1 + di1 + dv1
					ds1 = (ds1 - sN*dtot) * itot
					di1 = (di1 - iN*dtot) * itot
					dv1 = (dv1 - vN*dtot) * itot
				}
				dS4, dI4, dV4 = ds1, di1, dv1
			}
		}

		for j := tail; j < np; j++ {
			// ∂out[t]/∂θ_j = N·∂i/∂θ_j with the lane state *entering* the
			// tick (out[t] was computed from that same state above), plus
			// the direct i(t) term on the N lane.
			jj := row + j
			jac[jj] = N * dI[j]
			dinf := ci*dS[j] + cs*dI[j]
			dlose := delta * dI[j]
			dwake := gamma * dV[j]
			switch sp := &specs[j]; sp.Param {
			case SensN:
				if nValid {
					jac[jj] += i
				}
			case SensBeta:
				dinf += seiF
			case SensDelta:
				dlose += i
			case SensGamma:
				dwake += v
			case SensEta0:
				dinf += etaBonus
			case SensStrength:
				if eValid && t >= sp.Lo && t < sp.Hi {
					dinf += bsiF
				}
			}
			ds1 := dS[j] - dinf + dwake
			di1 := dI[j] + dinf - dlose
			dv1 := dV[j] + dlose - dwake
			ds1 *= mS
			di1 *= mI
			dv1 *= mV
			if tot > 0 {
				dtot := ds1 + di1 + dv1
				ds1 = (ds1 - sN*dtot) * itot
				di1 = (di1 - iN*dtot) * itot
				dv1 = (dv1 - vN*dtot) * itot
			}
			dS[j], dI[j], dV[j] = ds1, di1, dv1
		}

		s, i, v = sN, iN, vN
	}

	if tail == 5 {
		dS[0], dI[0], dV[0] = dS0, dI0, dV0
		dS[1], dI[1], dV[1] = dS1, dI1, dV1
		dS[2], dI[2], dV[2] = dS2, dI2, dV2
		dS[3], dI[3], dV[3] = dS3, dI3, dV3
		dS[4], dI[4], dV[4] = dS4, dI4, dV4
	}
	return out, jac
}

// clampGrad is clamp01 returning the value and the subgradient (1 where the
// input passes through unchanged, 0 where the clamp is active).
func clampGrad(x float64) (float64, float64) {
	if x < 0 || math.IsNaN(x) {
		return 0, 0
	}
	if x > 1 {
		return 1, 0
	}
	return x, 1
}
