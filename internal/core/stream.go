package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"dspot/internal/numcheck"
	"dspot/internal/optimize"
	"dspot/internal/tensor"
)

// Incremental fitting: online activity streams grow one tick at a time, and
// refitting from scratch on every arrival wastes the work already done.
// ContinueGlobalSequence warm-starts from a previous fit — base parameters
// seed the LM search, previously discovered shocks are kept (their
// occurrence lists extended into the new window) and only *new* shocks are
// searched for — and Stream wraps this into an append-and-refit API.

// ContinueGlobalSequence refits keyword's single-sequence model on an
// extended sequence, warm-starting from prev (typically the result of
// FitGlobalSequence on a prefix). The sequence may have grown and may have
// revised recent values; it must be at least as long as it was when prev
// was fitted.
func ContinueGlobalSequence(seq []float64, keyword int, prev GlobalFitResult, opts FitOptions) (res GlobalFitResult, err error) {
	opts = opts.withDefaults()
	defer recoverFitPanic(opts, keyword, -1, &err)
	if verr := numcheck.Sequence("core: sequence", seq); verr != nil {
		return GlobalFitResult{}, verr
	}
	if tensor.ObservedCount(seq) < 8 {
		return GlobalFitResult{}, errors.New("core: sequence too short to fit")
	}
	norm, scale := tensor.Normalize(seq)
	n := len(norm)

	st := &gfit{seq: norm, n: n, keyword: keyword, opts: opts, ctx: opts.Context}
	start := st.traceNow()
	st.params = prev.Params
	if scale > 0 {
		st.params.N = prev.Params.N / scale // back into normalised space
	}
	// Carry the previous shocks into the longer window: each cyclic shock
	// gains occurrences, seeded with its historical mean strength.
	for _, s := range prev.Shocks {
		if s.Start >= n || s.Width <= 0 {
			continue
		}
		occ := s.Occurrences(n)
		strengths := make([]float64, occ)
		mean := s.MeanStrength()
		for m := range strengths {
			if m < len(s.Strength) {
				strengths[m] = s.Strength[m]
			} else {
				strengths[m] = mean
			}
		}
		s.Strength = strengths
		s.Local = nil
		st.shocks = append(st.shocks, s)
	}

	best := st.snapshot()
	bestCost := st.cost()
	rounds := 0
	for iter := 0; iter < opts.MaxOuterIter && !st.cancelled(); iter++ {
		rounds = iter + 1
		st.fitBase(iter == 0)
		if !opts.DisableGrowth {
			st.fitGrowth()
		}
		if !opts.DisableShocks {
			st.refineStrengthsAll()
			st.growShocks() // keep existing shocks, look for new ones only
			st.pruneZeroShocks()
			st.consolidateShocks() // merge phase-aligned one-shots into cycles
			st.refineStrengths()
		}
		if st.cancelled() {
			break
		}
		c := st.cost()
		if c < bestCost-1e-9 {
			bestCost = c
			best = st.snapshot()
		} else {
			break
		}
	}
	if err := st.cancelErr(); err != nil {
		return GlobalFitResult{}, fmt.Errorf("core: refit cancelled: %w", err)
	}

	params, shocks := best.params, best.shocks
	params.N *= scale
	if opts.Progress != nil {
		opts.Progress(FitEvent{Stage: StageKeyword, Keyword: keyword, Location: -1,
			Round: rounds, LMIters: st.lmIters, Residual: bestCost,
			Duration: time.Since(start)})
	}
	return GlobalFitResult{Params: params, Shocks: shocks, Scale: scale, Cost: bestCost}, nil
}

// refineStrengthsAll re-fits every occurrence strength by windowed golden
// search — cheap polish for strengths seeded from historical means.
func (g *gfit) refineStrengthsAll() {
	for si := range g.shocks {
		if g.cancelled() {
			return
		}
		s := &g.shocks[si]
		for m := range s.Strength {
			if g.cancelled() {
				return
			}
			wstart := s.OccurrenceStart(m)
			if wstart >= g.n {
				continue
			}
			wend := g.n
			if s.Period > 0 && wstart+s.Period < g.n {
				wend = wstart + s.Period
			} else if wstart+4*s.Width+16 < g.n {
				wend = wstart + 4*s.Width + 16
			}
			best := fitOneStrength(g, s, m, wstart, wend)
			s.Strength[m] = best
		}
	}
}

// Stream maintains a Δ-SPOT single-sequence model over an append-only
// series, refitting incrementally every RefitEvery appended ticks.
type Stream struct {
	opts       FitOptions
	refitEvery int

	seq        []float64
	fitted     bool
	result     GlobalFitResult
	sinceRefit int
}

// NewStream returns a stream that refits after every refitEvery appended
// ticks (default 26). The fitting options apply to every (re)fit.
func NewStream(opts FitOptions, refitEvery int) *Stream {
	if refitEvery <= 0 {
		refitEvery = 26
	}
	return &Stream{opts: opts, refitEvery: refitEvery}
}

// Append adds observations; pass tensor.Missing for gaps. It refits (fully
// the first time, incrementally afterwards) once enough ticks accumulated,
// and reports whether a refit happened.
func (s *Stream) Append(values ...float64) (refitted bool, err error) {
	return s.AppendCtx(nil, values...)
}

// AppendCtx is Append under a cancellation context covering any refit the
// append triggers (nil behaves like Append; a non-nil ctx overrides the
// stream options' Context for this call). The appended ticks are always
// kept. When the refit fails — including a cancelled or timed-out refit —
// the last good fit is preserved: Model, Forecast and the next incremental
// warm start all keep using it, and the refit is retried on the next
// trigger.
func (s *Stream) AppendCtx(ctx context.Context, values ...float64) (refitted bool, err error) {
	s.seq = append(s.seq, values...)
	s.sinceRefit += len(values)
	if tensor.ObservedCount(s.seq) < 8 {
		return false, nil
	}
	if s.fitted && s.sinceRefit < s.refitEvery {
		return false, nil
	}
	opts := s.opts
	if ctx != nil {
		opts.Context = ctx
	}
	// Fit into a temporary: assigning s.result directly would clobber the
	// warm-start state with the zero GlobalFitResult on error while fitted
	// stayed true, leaving Model()/Forecast() serving a zero-params model.
	var res GlobalFitResult
	if !s.fitted {
		res, err = FitGlobalSequence(s.seq, 0, opts)
	} else {
		res, err = ContinueGlobalSequence(s.seq, 0, s.result, opts)
	}
	if err != nil {
		return false, err
	}
	s.result = res
	s.fitted = true
	s.sinceRefit = 0
	return true, nil
}

// Len returns the number of ticks appended so far.
func (s *Stream) Len() int { return len(s.seq) }

// Ready reports whether a model has been fitted yet.
func (s *Stream) Ready() bool { return s.fitted }

// Model materialises the current fit as a single-keyword Model (nil when
// not Ready). The shocks are deep-copied: callers may mutate the returned
// model freely without corrupting the warm-start state the next incremental
// refit builds on.
func (s *Stream) Model() *Model {
	if !s.fitted {
		return nil
	}
	shocks := CopyShocks(s.result.Shocks)
	// Ticks spans the whole appended sequence, which can run past the last
	// (re)fit window: a cyclic shock may owe more occurrences than the fit
	// observed strengths for, and such a model fails Validate — which is
	// how persisted stream snapshots taken mid-window used to be rejected
	// on reload. Pad with the projected future strength, the same estimate
	// the forecaster applies to unseen occurrences.
	for i := range shocks {
		sh := &shocks[i]
		if occ := sh.Occurrences(len(s.seq)); occ > len(sh.Strength) {
			future := futureStrength(sh)
			for len(sh.Strength) < occ {
				sh.Strength = append(sh.Strength, future)
			}
		}
	}
	return &Model{
		Keywords:  []string{"stream"},
		Locations: []string{"all"},
		Ticks:     len(s.seq),
		Global:    []KeywordParams{s.result.Params},
		Shocks:    shocks,
		Scale:     []float64{s.result.Scale},
	}
}

// CopyShocks deep-copies a shock slice, including the Strength and Local
// slices that a shallow copy would share.
func CopyShocks(shocks []Shock) []Shock {
	if shocks == nil {
		return nil
	}
	out := make([]Shock, len(shocks))
	for i, s := range shocks {
		s.Strength = append([]float64(nil), s.Strength...)
		if s.Local != nil {
			local := make([][]float64, len(s.Local))
			for m, row := range s.Local {
				local[m] = append([]float64(nil), row...)
			}
			s.Local = local
		}
		out[i] = s
	}
	return out
}

// StreamState is the serialisable snapshot of a Stream: everything needed
// to reconstruct it elsewhere (or after a restart) via RestoreStream. All
// slices are deep copies — mutating a state does not touch the stream.
type StreamState struct {
	RefitEvery int
	Seq        []float64 // appended ticks; tensor.Missing marks gaps
	Fitted     bool
	Result     GlobalFitResult
	SinceRefit int
}

// State snapshots the stream for persistence.
func (s *Stream) State() StreamState {
	res := s.result
	res.Shocks = CopyShocks(res.Shocks)
	return StreamState{
		RefitEvery: s.refitEvery,
		Seq:        append([]float64(nil), s.seq...),
		Fitted:     s.fitted,
		Result:     res,
		SinceRefit: s.sinceRefit,
	}
}

// RestoreStream reconstructs a stream from a snapshot taken with State.
// The fitting options are supplied by the caller (they hold a func hook and
// are not part of the serialisable state).
func RestoreStream(opts FitOptions, st StreamState) *Stream {
	s := NewStream(opts, st.RefitEvery)
	s.seq = append([]float64(nil), st.Seq...)
	s.fitted = st.Fitted
	s.result = st.Result
	s.result.Shocks = CopyShocks(st.Result.Shocks)
	s.sinceRefit = st.SinceRefit
	return s
}

// Forecast extrapolates h ticks past the stream head (nil when not Ready).
func (s *Stream) Forecast(h int) []float64 {
	m := s.Model()
	if m == nil {
		return nil
	}
	return m.ForecastGlobal(0, h)
}

// fitOneStrength is the shared windowed golden fit for one occurrence. The
// search runs up to maxShockStrength — it used to stop at 60, silently
// clipping strengths the local fit (bounded by 80) had legitimately
// accepted. Only occurrence m's strength varies across evaluations, so the
// ε(t) profile is built once and just that occurrence's window is
// re-derived per step.
func fitOneStrength(g *gfit, s *Shock, m, wstart, wend int) float64 {
	g.epsBuf = epsilonFromShocksInto(g.epsBuf, g.shocks, g.n)
	olo := s.OccurrenceStart(m)
	ohi := olo + s.Width
	save := s.Strength[m]
	obj := func(str float64) float64 {
		s.Strength[m] = str
		rebuildEpsilonWindow(g.epsBuf, g.shocks, olo, ohi)
		g.simBuf = SimulateInto(g.simBuf, &g.params, g.n, g.epsBuf, -1)
		sse := 0.0
		for t := wstart; t < wend; t++ {
			if tensor.IsMissing(g.seq[t]) {
				continue
			}
			d := g.seq[t] - g.simBuf[t]
			sse += d * d
		}
		return sse
	}
	best, _, _ := optimize.GoldenCtx(g.ctx, obj, 0, maxShockStrength, 1e-3, 60)
	s.Strength[m] = save
	if best < 1e-3 {
		return 0
	}
	return best
}
