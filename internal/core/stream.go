package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"dspot/internal/numcheck"
	"dspot/internal/optimize"
	"dspot/internal/tensor"
)

// Incremental fitting: online activity streams grow one tick at a time, and
// refitting from scratch on every arrival wastes the work already done.
// ContinueGlobalSequence warm-starts from a previous fit — base parameters
// seed the LM search, previously discovered shocks are kept (their
// occurrence lists extended into the new window) and only *new* shocks are
// searched for — and Stream wraps this into an append-and-refit API.

// scaleDriftLimit is the normalisation-scale ratio (either direction)
// beyond which a warm-started refit cross-checks itself against a cold fit:
// past it, the carried shock set was judged under a materially different
// residual normalisation and the warm basin may no longer be the best one.
const scaleDriftLimit = 1.25

// ContinueGlobalSequence refits keyword's single-sequence model on an
// extended sequence, warm-starting from prev (typically the result of
// FitGlobalSequence on a prefix). The sequence may have grown and may have
// revised recent values; it must be at least as long as it was when prev
// was fitted.
func ContinueGlobalSequence(seq []float64, keyword int, prev GlobalFitResult, opts FitOptions) (res GlobalFitResult, err error) {
	opts = opts.withDefaults()
	defer recoverFitPanic(opts, keyword, -1, &err)
	if verr := numcheck.Sequence("core: sequence", seq); verr != nil {
		return GlobalFitResult{}, verr
	}
	if tensor.ObservedCount(seq) < 8 {
		return GlobalFitResult{}, errors.New("core: sequence too short to fit")
	}
	norm, scale := tensor.Normalize(seq)
	n := len(norm)

	st := &gfit{seq: norm, n: n, keyword: keyword, opts: opts, ctx: opts.Context}
	start := st.traceNow()
	st.params = prev.Params
	if scale > 0 {
		st.params.N = prev.Params.N / scale // back into normalised space
	}
	// Carry the previous shocks into the longer window: each cyclic shock
	// gains occurrences, seeded with its historical mean strength. The
	// strengths transfer *verbatim* even when the normalisation scale
	// changed: output = N·i(t) and the s/i/v fraction dynamics never see N,
	// so a rescaled window is absorbed entirely by N (divided below) while
	// β, δ, γ, i0, η and the shock strengths are dimensionless
	// (TestWarmStartStrengthsScaleInvariant pins this — rescaling them by
	// prev.Scale/scale demonstrably worsens the warm start).
	for _, s := range prev.Shocks {
		if s.Start >= n || s.Width <= 0 {
			continue
		}
		occ := s.Occurrences(n)
		strengths := make([]float64, occ)
		mean := s.MeanStrength()
		for m := range strengths {
			if m < len(s.Strength) {
				strengths[m] = s.Strength[m]
			} else {
				strengths[m] = mean
			}
		}
		s.Strength = strengths
		s.Local = nil
		st.shocks = append(st.shocks, s)
	}

	best := st.snapshot()
	bestCost := st.cost()
	rounds := 0
	for iter := 0; iter < opts.MaxOuterIter && !st.cancelled(); iter++ {
		rounds = iter + 1
		st.fitBase(iter == 0)
		if !opts.DisableGrowth {
			st.fitGrowth()
		}
		if !opts.DisableShocks {
			st.refineStrengthsAll()
			st.growShocks() // keep existing shocks, look for new ones only
			st.pruneZeroShocks()
			st.consolidateShocks() // merge phase-aligned one-shots into cycles
			st.refineStrengths()
		}
		if st.cancelled() {
			break
		}
		c := st.cost()
		if c < bestCost-1e-9 {
			bestCost = c
			best = st.snapshot()
		} else {
			break
		}
	}
	if err := st.cancelErr(); err != nil {
		return GlobalFitResult{}, fmt.Errorf("core: refit cancelled: %w", err)
	}

	// Scale-drift guard. What does NOT transfer across a rescaled window is
	// the MDL balance: residual coding cost is computed on [0,1]-normalised
	// residuals, so when the window max grows (or shrinks) materially, the
	// residual landscape the previous shocks were judged under shifts — and
	// the warm search, which only ever adds shocks to the carried set, can
	// stay stuck in the stale basin at a worse cost than a cold fit finds.
	// When the scale drifted past scaleDriftLimit, run the cold fit too and
	// keep whichever explains the data more cheaply; the costs are directly
	// comparable (same normalised sequence, same coding scheme).
	if prev.Scale > 0 && scale > 0 {
		drift := scale / prev.Scale
		if drift < 1 {
			drift = 1 / drift
		}
		if drift > scaleDriftLimit {
			if cold, cerr := FitGlobalSequence(seq, keyword, opts); cerr == nil && cold.Cost < bestCost-1e-9 {
				return cold, nil
			}
		}
	}

	params, shocks := best.params, best.shocks
	params.N *= scale
	if opts.Progress != nil {
		opts.Progress(FitEvent{Stage: StageKeyword, Keyword: keyword, Location: -1,
			Round: rounds, LMIters: st.lmIters, LMStalls: st.lmStalls,
			Residual: bestCost, Duration: time.Since(start)})
	}
	return GlobalFitResult{Params: params, Shocks: shocks, Scale: scale, Cost: bestCost}, nil
}

// refineStrengthsAll re-fits every occurrence strength by windowed golden
// search — cheap polish for strengths seeded from historical means.
func (g *gfit) refineStrengthsAll() {
	for si := range g.shocks {
		if g.cancelled() {
			return
		}
		s := &g.shocks[si]
		for m := range s.Strength {
			if g.cancelled() {
				return
			}
			wstart := s.OccurrenceStart(m)
			if wstart >= g.n {
				continue
			}
			wend := g.n
			if s.Period > 0 && wstart+s.Period < g.n {
				wend = wstart + s.Period
			} else if wstart+4*s.Width+16 < g.n {
				wend = wstart + 4*s.Width + 16
			}
			best := fitOneStrength(g, s, m, wstart, wend)
			s.Strength[m] = best
		}
	}
}

// Stream maintains a Δ-SPOT single-sequence model over an append-only
// series. In RefitBatch mode it re-enters the warm-start batch fitter every
// RefitEvery appended ticks; in RefitIncremental mode it maintains the
// model in O(TailWindow) per tick and amortises batch refits behind a
// refit-debt counter (see incremental.go).
type Stream struct {
	opts       FitOptions
	refitEvery int
	mode       RefitMode
	cfg        IncrementalConfig

	seq        []float64
	fitted     bool
	result     GlobalFitResult
	sinceRefit int

	// Incremental-maintenance state (RefitIncremental only). inc is derived
	// — rebuilt from seq+result on restore — while debt and lastScan are
	// decision state that must persist for bit-identical continuation.
	debt     float64
	lastScan int
	inc      *incState

	// Refit retry backoff (both modes): failures counts consecutive refit
	// errors, coolOff is how many more appended ticks to wait before the
	// next attempt. Cancelled refits are exempt (retried on next trigger).
	failures int
	coolOff  int

	// Bounded-memory state (evict.go): retention is the sliding-window
	// horizon in ticks (0 = unbounded) and evicted counts ticks dropped off
	// the front, so Head() = evicted + len(seq) is the absolute tick index
	// appends continue at.
	retention int
	evicted   int64

	// Hostile-input accounting (AppendAtCtx): duplicate ticks idempotently
	// dropped and missing ticks synthesised to bridge forward gaps.
	dropped   int64
	gapFilled int64

	// Refit desynchronisation (see RefitGate): jitterFrac deterministically
	// staggers this stream's refit trigger, gate rate-limits consolidations
	// across a fleet, deferred counts refits the gate pushed back.
	jitterFrac float64
	gate       RefitGate
	deferred   int64
}

// RefitGate rate-limits full consolidating refits across a fleet of
// streams. TryAcquire reserves a refit slot: ok=false defers the refit —
// the stream keeps its accrued debt/cadence overshoot and tries again on
// the next append — and ok=true obliges the caller to invoke release once
// the refit returns. Implementations must be safe for concurrent use.
// RefitNow bypasses the gate: a forced refit is explicit operator intent.
type RefitGate interface {
	TryAcquire() (release func(), ok bool)
}

// SetRefitGate installs the cross-stream refit rate limiter (nil removes
// it). Runtime wiring, not part of the serialisable state.
func (s *Stream) SetRefitGate(g RefitGate) { s.gate = g }

// SetRefitJitter sets the deterministic trigger-jitter fraction in [0,1):
// batch-mode refits trigger at RefitEvery + frac·RefitEvery/2 ticks and
// debt-mode refits at DebtLimit·(1 + frac/4), so a fleet of streams created
// (or restored) together consolidates staggered instead of in lockstep.
// Out-of-range values reset to 0 (exact cadence, the historical behaviour).
func (s *Stream) SetRefitJitter(frac float64) {
	if frac < 0 || frac >= 1 || math.IsNaN(frac) {
		frac = 0
	}
	s.jitterFrac = frac
}

// cadenceJitter is the batch-mode trigger offset in ticks.
func (s *Stream) cadenceJitter() int {
	return int(s.jitterFrac * float64(s.refitEvery) / 2)
}

// debtJitter is the incremental-mode trigger offset in debt units.
func (s *Stream) debtJitter() float64 {
	return s.jitterFrac * s.DebtLimit() / 4
}

// DroppedTicks returns how many duplicate/late ticks AppendAtCtx has
// idempotently dropped so far.
func (s *Stream) DroppedTicks() int64 { return s.dropped }

// GapTicks returns how many missing ticks AppendAtCtx has synthesised to
// bridge forward gaps.
func (s *Stream) GapTicks() int64 { return s.gapFilled }

// DeferredRefits returns how many due refits the gate pushed back.
func (s *Stream) DeferredRefits() int64 { return s.deferred }

// NewStream returns a batch-mode stream that refits after every refitEvery
// appended ticks (default 26). The fitting options apply to every (re)fit.
func NewStream(opts FitOptions, refitEvery int) *Stream {
	if refitEvery <= 0 {
		refitEvery = 26
	}
	return &Stream{
		opts:       opts,
		refitEvery: refitEvery,
		cfg:        IncrementalConfig{}.withDefaults(),
		lastScan:   -1,
	}
}

// NewIncrementalStream returns a stream in RefitIncremental mode: appends do
// O(cfg.TailWindow) work per tick and a full batch refit fires only when
// the accumulated refit debt crosses the limit (or via RefitNow). refitEvery
// keeps its batch meaning as the debt unit (default 26); the zero cfg
// selects defaults.
func NewIncrementalStream(opts FitOptions, refitEvery int, cfg IncrementalConfig) *Stream {
	s := NewStream(opts, refitEvery)
	s.mode = RefitIncremental
	s.cfg = cfg.withDefaults()
	return s
}

// Mode returns the stream's maintenance mode.
func (s *Stream) Mode() RefitMode { return s.mode }

// RefitEvery returns the effective refit cadence (batch mode) / debt unit
// (incremental mode).
func (s *Stream) RefitEvery() int { return s.refitEvery }

// SetRefitEvery changes the refit cadence; non-positive values are ignored.
func (s *Stream) SetRefitEvery(v int) {
	if v > 0 {
		s.refitEvery = v
	}
}

// SetMode switches the maintenance mode in place. Switching to
// RefitIncremental on a fitted stream pays one O(n) replay to build the
// incremental state; switching back to RefitBatch drops it. Pending refit
// debt is cleared either way — the new mode starts from a clean slate.
func (s *Stream) SetMode(m RefitMode) {
	if m == s.mode {
		return
	}
	s.mode = m
	s.debt = 0
	s.lastScan = -1
	if m == RefitIncremental && s.fitted {
		s.inc = newIncState(s.seq, &s.result, nil, s.cfg.TailWindow)
	} else {
		s.inc = nil
	}
}

// Debt returns the accumulated refit debt (always 0 in batch mode).
func (s *Stream) Debt() float64 { return s.debt }

// DebtLimit returns the effective debt threshold at which a full batch
// refit fires: the configured limit, or 8×RefitEvery (at least
// 2×TailWindow) when unset.
func (s *Stream) DebtLimit() float64 {
	if s.cfg.DebtLimit > 0 {
		return s.cfg.DebtLimit
	}
	lim := 8 * float64(s.refitEvery)
	if m := 2 * float64(s.cfg.TailWindow); lim < m {
		lim = m
	}
	return lim
}

// RetryIn returns how many more appended ticks a failed refit backs off
// for (0 when no backoff is pending).
func (s *Stream) RetryIn() int { return s.coolOff }

// Append adds observations; pass tensor.Missing for gaps. It reports
// whether a *full* batch (re)fit happened.
//
// The maintenance contract depends on the mode. In RefitBatch mode the
// first fit happens once 8 observed ticks accumulated and the warm-start
// batch fitter re-runs every RefitEvery ticks — O(n) per refit. In
// RefitIncremental mode every appended tick is folded into the model in
// O(TailWindow): the ε(t) profile and the SIV simulation are extended one
// tick from a checkpointed state, the trailing TailWindow residuals are
// re-scanned for new shocks (discovered one-shots are strength-fitted and
// MDL-gated in the tail window; recurring occurrences of known shocks get
// their strength refitted in place), and each tick accrues refit debt —
// more for structural events — until the debt crosses DebtLimit and one
// consolidating batch refit runs (Append then returns true). RefitNow
// forces that consolidation on demand.
func (s *Stream) Append(values ...float64) (refitted bool, err error) {
	return s.AppendCtx(nil, values...)
}

// AppendReceipt reports what one positioned append actually did — the
// serving layer turns these into per-stream metrics.
type AppendReceipt struct {
	// Refitted reports whether a full batch (re)fit ran (Append's bool).
	Refitted bool
	// Deferred reports that a refit was due but the RefitGate pushed it
	// back; the accrued debt/cadence overshoot is kept.
	Deferred bool
	// DroppedTicks counts duplicate/late ticks idempotently dropped.
	DroppedTicks int
	// GapTicks counts missing ticks synthesised to bridge a forward gap.
	GapTicks int
	// EvictedTicks counts ticks evicted off the front by the retention
	// horizon during this append.
	EvictedTicks int
}

// ErrGapTooLarge rejects a positioned append whose forward gap would force
// the stream to synthesise more missing ticks than its gap limit allows.
var ErrGapTooLarge = errors.New("core: gap exceeds the stream's gap limit")

// gapLimit bounds how many missing ticks a single positioned append may
// synthesise: a bounded stream accepts up to 4 retention windows (anything
// further means every real tick has already slid out), an unbounded one
// caps at 64Ki so a hostile timestamp cannot allocate without limit.
func (s *Stream) gapLimit() int64 {
	if s.retention > 0 {
		return int64(4 * s.retention)
	}
	return 1 << 16
}

// AppendCtx is Append under a cancellation context covering any full refit
// the append triggers (nil behaves like Append; a non-nil ctx overrides the
// stream options' Context for this call). The appended ticks are always
// kept. When a refit fails — including a cancelled or timed-out refit —
// the last good fit is preserved: Model, Forecast and the next warm start
// all keep using it. A failed (non-cancelled) refit backs off
// exponentially: the retry waits RefitEvery ticks, then 2×, 4×, … (capped
// at 64×), so a stream with poisoned data degrades to cheap appends
// instead of paying a doomed full fit per tick; appends during the
// back-off window return (false, nil). Cancelled refits retry on the next
// trigger as before.
func (s *Stream) AppendCtx(ctx context.Context, values ...float64) (refitted bool, err error) {
	rec, err := s.AppendAtCtx(ctx, -1, values...)
	return rec.Refitted, err
}

// AppendAtCtx appends values positioned at absolute tick index at (at < 0
// means "at the head", i.e. plain AppendCtx). Positioned appends make
// replayed, late and gapped feeds safe to ingest idempotently:
//
//   - at < Head(): the overlap with already-ingested ticks is dropped — a
//     full replay is a no-op success, a partial one appends only the novel
//     suffix. Late data never rewrites history.
//   - at > Head(): the gap is bridged with tensor.Missing ticks, up to the
//     gap limit (4 retention windows, or 64Ki when unbounded); a larger gap
//     fails with ErrGapTooLarge and ingests nothing.
//
// After ingestion the retention horizon is enforced (see SetRetention) and
// the usual refit triggers run, offset by the configured jitter and subject
// to the RefitGate; the receipt reports each of these outcomes.
func (s *Stream) AppendAtCtx(ctx context.Context, at int64, values ...float64) (AppendReceipt, error) {
	var rec AppendReceipt
	if at >= 0 {
		head := s.Head()
		if overlap := head - at; overlap > 0 {
			if overlap >= int64(len(values)) {
				s.dropped += int64(len(values))
				rec.DroppedTicks = len(values)
				return rec, nil
			}
			s.dropped += overlap
			rec.DroppedTicks = int(overlap)
			values = values[overlap:]
		} else if gap := at - head; gap > 0 {
			if lim := s.gapLimit(); gap > lim {
				return rec, fmt.Errorf("%w: append at tick %d with head %d needs %d filler ticks (limit %d)",
					ErrGapTooLarge, at, head, gap, lim)
			}
			fill := make([]float64, gap+int64(len(values)))
			for i := int64(0); i < gap; i++ {
				fill[i] = tensor.Missing
			}
			copy(fill[gap:], values)
			values = fill
			s.gapFilled += gap
			rec.GapTicks = int(gap)
		}
	}
	if len(values) == 0 {
		return rec, nil
	}
	if s.fitted && s.mode == RefitIncremental && s.inc != nil {
		s.appendIncremental(values)
	} else {
		s.appendBulk(values)
	}
	s.sinceRefit += len(values)
	rec.EvictedTicks = s.maybeEvict()
	if s.coolOff > 0 {
		s.coolOff -= len(values)
		if s.coolOff > 0 {
			return rec, nil
		}
		s.coolOff = 0
	}
	switch {
	case !s.fitted:
		if tensor.ObservedCount(s.seq) < 8 {
			return rec, nil
		}
	case s.mode == RefitIncremental:
		if s.debt < s.DebtLimit()+s.debtJitter() {
			return rec, nil
		}
	default:
		if s.sinceRefit < s.refitEvery+s.cadenceJitter() {
			return rec, nil
		}
	}
	if s.gate != nil {
		release, ok := s.gate.TryAcquire()
		if !ok {
			s.deferred++
			rec.Deferred = true
			return rec, nil
		}
		defer release()
	}
	var err error
	rec.Refitted, err = s.refitFull(ctx)
	return rec, err
}

// appendIncremental folds new ticks into the incremental state: extend the
// simulation per tick, accrue debt, then re-scan the tail once for new
// structure. Invalid observations (negative / ±Inf) are treated as missing
// here and left for the next full refit's validator to report, mirroring
// the batch path's defer-to-refit behaviour.
func (s *Stream) appendIncremental(values []float64) {
	st := s.inc
	for _, v := range values {
		s.appendTick(v)
		st.advance(s.result.Shocks, v)
		s.debt++
		if !tensor.IsMissing(v) && !math.IsInf(v, 0) && v >= 0 && st.scale > 0 && v/st.scale > 1 {
			// Observation beyond the fitted normalisation scale: the [0,1]
			// normalisation no longer covers the data, pull the refit closer.
			s.debt += debtStaleScale
		}
	}
	s.scanTail()
}

// refitFull runs the batch fitter (cold the first time, warm-started
// afterwards) and commits the result. Fit into a temporary: assigning
// s.result directly would clobber the warm-start state with the zero
// GlobalFitResult on error while fitted stayed true, leaving
// Model()/Forecast() serving a zero-params model.
func (s *Stream) refitFull(ctx context.Context) (bool, error) {
	opts := s.opts
	if ctx != nil {
		opts.Context = ctx
	}
	var res GlobalFitResult
	var err error
	if !s.fitted {
		res, err = FitGlobalSequence(s.seq, 0, opts)
	} else {
		res, err = ContinueGlobalSequence(s.seq, 0, s.result, opts)
	}
	if err != nil {
		s.noteRefitError(err)
		return false, err
	}
	s.commitFit(res)
	return true, nil
}

// commitFit installs a fresh batch fit and resets all maintenance state;
// in incremental mode it rebuilds the derived simulation state (O(n), the
// amortised cost the debt counter paid for).
func (s *Stream) commitFit(res GlobalFitResult) {
	s.result = res
	s.fitted = true
	s.sinceRefit = 0
	s.debt = 0
	s.failures = 0
	s.coolOff = 0
	s.lastScan = -1
	if s.mode == RefitIncremental {
		s.inc = newIncState(s.seq, &s.result, nil, s.cfg.TailWindow)
	} else {
		s.inc = nil
	}
}

// noteRefitError applies the exponential retry backoff after a failed
// refit. Cooperative cancellation is not a model failure — the caller chose
// to stop — so it keeps the historical retry-on-next-trigger behaviour.
func (s *Stream) noteRefitError(err error) {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return
	}
	s.failures++
	shift := s.failures - 1
	if shift > 6 {
		shift = 6 // cap the spacing at 64×RefitEvery ticks
	}
	unit := s.refitEvery
	if unit < 1 {
		unit = 1
	}
	s.coolOff = unit << shift
}

// RefitNow forces a full batch refit immediately, regardless of cadence,
// pending debt or retry backoff. The stream must have at least 8 observed
// ticks.
func (s *Stream) RefitNow(ctx context.Context) error {
	if tensor.ObservedCount(s.seq) < 8 {
		return errors.New("core: sequence too short to fit")
	}
	_, err := s.refitFull(ctx)
	return err
}

// Len returns the number of ticks appended so far.
func (s *Stream) Len() int { return len(s.seq) }

// Ready reports whether a model has been fitted yet.
func (s *Stream) Ready() bool { return s.fitted }

// Model materialises the current fit as a single-keyword Model (nil when
// not Ready). The shocks are deep-copied: callers may mutate the returned
// model freely without corrupting the warm-start state the next incremental
// refit builds on.
func (s *Stream) Model() *Model {
	if !s.fitted {
		return nil
	}
	shocks := CopyShocks(s.result.Shocks)
	// Ticks spans the whole appended sequence, which can run past the last
	// (re)fit window: a cyclic shock may owe more occurrences than the fit
	// observed strengths for, and such a model fails Validate — which is
	// how persisted stream snapshots taken mid-window used to be rejected
	// on reload. Pad with the projected future strength, the same estimate
	// the forecaster applies to unseen occurrences.
	for i := range shocks {
		sh := &shocks[i]
		if occ := sh.Occurrences(len(s.seq)); occ > len(sh.Strength) {
			future := futureStrength(sh)
			for len(sh.Strength) < occ {
				sh.Strength = append(sh.Strength, future)
			}
		}
	}
	return &Model{
		Keywords:  []string{"stream"},
		Locations: []string{"all"},
		Ticks:     len(s.seq),
		Global:    []KeywordParams{s.result.Params},
		Shocks:    shocks,
		Scale:     []float64{s.result.Scale},
	}
}

// CopyShocks deep-copies a shock slice, including the Strength and Local
// slices that a shallow copy would share.
func CopyShocks(shocks []Shock) []Shock {
	if shocks == nil {
		return nil
	}
	out := make([]Shock, len(shocks))
	for i, s := range shocks {
		s.Strength = append([]float64(nil), s.Strength...)
		if s.Local != nil {
			local := make([][]float64, len(s.Local))
			for m, row := range s.Local {
				local[m] = append([]float64(nil), row...)
			}
			s.Local = local
		}
		out[i] = s
	}
	return out
}

// StreamState is the serialisable snapshot of a Stream: everything needed
// to reconstruct it elsewhere (or after a restart) via RestoreStream. All
// slices are deep copies — mutating a state does not touch the stream.
type StreamState struct {
	RefitEvery int
	Seq        []float64 // appended ticks; tensor.Missing marks gaps
	Fitted     bool
	Result     GlobalFitResult
	SinceRefit int

	// Incremental-maintenance state. Zero values are exactly what a legacy
	// batch snapshot decodes to: RefitBatch mode with no pending debt, so
	// old snapshots restore with their historical behaviour. The simulation
	// rings themselves are NOT serialised — RestoreStream rebuilds them
	// deterministically from Seq+Result, and Future pins the projected
	// per-shock strengths so the rebuild is bit-identical to the live
	// stream.
	Mode       RefitMode
	TailWindow int
	DebtLimit  float64
	Debt       float64
	Failures   int
	CoolOff    int
	LastScan   int       // tail tick of the last examined residual peak; -1 = none
	Future     []float64 // per shock: projected strength for unseen occurrences

	// Bounded-memory and hostile-input bookkeeping. Zero values are again
	// the legacy decoding: an unbounded stream that never dropped or
	// synthesised a tick. The refit gate and jitter fraction are runtime
	// wiring, re-derived by the owner on restore, and not serialised.
	Retention int
	Evicted   int64
	Dropped   int64
	GapFilled int64
	Deferred  int64
}

// State snapshots the stream for persistence.
func (s *Stream) State() StreamState {
	res := s.result
	res.Shocks = CopyShocks(res.Shocks)
	st := StreamState{
		RefitEvery: s.refitEvery,
		Seq:        append([]float64(nil), s.seq...),
		Fitted:     s.fitted,
		Result:     res,
		SinceRefit: s.sinceRefit,
		Mode:       s.mode,
		TailWindow: s.cfg.TailWindow,
		DebtLimit:  s.cfg.DebtLimit,
		Debt:       s.debt,
		Failures:   s.failures,
		CoolOff:    s.coolOff,
		LastScan:   s.lastScan,
		Retention:  s.retention,
		Evicted:    s.evicted,
		Dropped:    s.dropped,
		GapFilled:  s.gapFilled,
		Deferred:   s.deferred,
	}
	if s.inc != nil {
		st.Future = append([]float64(nil), s.inc.future...)
	}
	return st
}

// RestoreStream reconstructs a stream from a snapshot taken with State.
// The fitting options are supplied by the caller (they hold a func hook and
// are not part of the serialisable state). An incremental stream replays
// its sequence once (O(n)) to rebuild the simulation state and then
// continues bit-identically to the stream the snapshot was taken from,
// pending refit debt included.
func RestoreStream(opts FitOptions, st StreamState) *Stream {
	s := NewStream(opts, st.RefitEvery)
	s.mode = st.Mode
	s.cfg = IncrementalConfig{TailWindow: st.TailWindow, DebtLimit: st.DebtLimit}.withDefaults()
	s.seq = append([]float64(nil), st.Seq...)
	s.fitted = st.Fitted
	s.result = st.Result
	s.result.Shocks = CopyShocks(st.Result.Shocks)
	s.sinceRefit = st.SinceRefit
	s.debt = st.Debt
	s.failures = st.Failures
	s.coolOff = st.CoolOff
	s.lastScan = st.LastScan
	s.SetRetention(st.Retention)
	s.evicted = st.Evicted
	s.dropped = st.Dropped
	s.gapFilled = st.GapFilled
	s.deferred = st.Deferred
	if s.mode == RefitIncremental && s.fitted {
		s.inc = newIncState(s.seq, &s.result, st.Future, s.cfg.TailWindow)
	} else if s.mode != RefitIncremental {
		s.lastScan = -1
	}
	return s
}

// Forecast extrapolates h ticks past the stream head (nil when not Ready).
func (s *Stream) Forecast(h int) []float64 {
	m := s.Model()
	if m == nil {
		return nil
	}
	return m.ForecastGlobal(0, h)
}

// fitOneStrength is the shared windowed golden fit for one occurrence. The
// search runs up to maxShockStrength — it used to stop at 60, silently
// clipping strengths the local fit (bounded by 80) had legitimately
// accepted. Only occurrence m's strength varies across evaluations, so the
// ε(t) profile is built once and just that occurrence's window is
// re-derived per step.
func fitOneStrength(g *gfit, s *Shock, m, wstart, wend int) float64 {
	g.epsBuf = epsilonFromShocksInto(g.epsBuf, g.shocks, g.n)
	olo := s.OccurrenceStart(m)
	ohi := olo + s.Width
	save := s.Strength[m]
	obj := func(str float64) float64 {
		s.Strength[m] = str
		rebuildEpsilonWindow(g.epsBuf, g.shocks, olo, ohi)
		g.simBuf = SimulateInto(g.simBuf, &g.params, g.n, g.epsBuf, -1)
		sse := 0.0
		for t := wstart; t < wend; t++ {
			if tensor.IsMissing(g.seq[t]) {
				continue
			}
			d := g.seq[t] - g.simBuf[t]
			sse += d * d
		}
		return sse
	}
	best, _, _ := optimize.GoldenCtx(g.ctx, obj, 0, maxShockStrength, 1e-3, 60)
	s.Strength[m] = save
	if best < 1e-3 {
		return 0
	}
	return best
}
