package core_test

import (
	"fmt"

	"dspot/internal/core"
)

// Simulate the SIV dynamics with an external shock profile.
func ExampleSimulate() {
	p := core.KeywordParams{N: 100, Beta: 0.5, Delta: 0.45, Gamma: 0.5,
		I0: 0.02, TEta: core.NoGrowth}
	// ε(t) = 1 everywhere except a strong event at ticks 50–51.
	eps := make([]float64, 100)
	for t := range eps {
		eps[t] = 1
	}
	eps[50], eps[51] = 11, 11

	out := core.Simulate(&p, 100, eps, -1)
	peak, at := 0.0, 0
	for t, v := range out {
		if v > peak {
			peak, at = v, t
		}
	}
	fmt.Printf("spike follows the event: %v\n", at >= 50 && at <= 55)
	fmt.Printf("spike dwarfs baseline: %v\n", peak > 4*out[49])
	// Output:
	// spike follows the event: true
	// spike dwarfs baseline: true
}

// Shock occurrence bookkeeping.
func ExampleShock_Occurrences() {
	annual := core.Shock{Period: 52, Start: 6, Width: 2}
	fmt.Println(annual.Occurrences(160), annual.OccurrenceStart(2), annual.OccurrenceAt(59))
	// Output:
	// 3 110 1
}

// Decompose a fitted curve into explanatory components.
func ExampleModel_Decompose() {
	m := &core.Model{
		Keywords: []string{"k"}, Locations: []string{"WW"}, Ticks: 200,
		Global: []core.KeywordParams{{N: 100, Beta: 0.5, Delta: 0.45,
			Gamma: 0.5, I0: 0.02, Eta0: 0.4, TEta: 120}},
		Shocks: []core.Shock{{Keyword: 0, Period: 0, Start: 60, Width: 2,
			Strength: []float64{10}}},
	}
	c := m.Decompose(0, 200)
	sum := c.Base[150] + c.Growth[150] + c.Shocks[150]
	fmt.Printf("components sum to fit: %v\n", diffSmall(sum, c.Fitted[150]))
	fmt.Printf("growth active late: %v\n", c.Growth[150] > 0)
	fmt.Printf("shock inactive late: %v\n", diffSmall(c.Shocks[199], 0))
	// Output:
	// components sum to fit: true
	// growth active late: true
	// shock inactive late: true
}

func diffSmall(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < 1e-6
}
