package core

import "math"

// Forecasting: Δ-SPOT extrapolates by running the fitted dynamics past the
// training window with ε(t) extended by each cyclic shock's periodicity —
// so the model predicts the time-tick, the duration, and the relative
// strength of incoming external events (§6 of the paper). Non-cyclic shocks
// do not recur.

// futureStrength is the strength assumed for occurrences beyond the
// training window: the mean of the observed non-zero occurrence strengths.
// An event whose last two observed occurrences were both zero is treated as
// ended and does not recur (e.g., a film franchise after its finale) — one
// trailing zero alone is not conclusive, since the final cycle may simply
// have been cut off by the training window.
func futureStrength(s *Shock) float64 {
	if k := len(s.Strength); k >= 2 && s.Strength[k-1] == 0 && s.Strength[k-2] == 0 {
		return 0
	}
	sum, cnt := 0.0, 0
	for _, v := range s.Strength {
		if v > 0 {
			sum += v
			cnt++
		}
	}
	if cnt == 0 {
		return 0
	}
	return sum / float64(cnt)
}

// extendEpsilon builds ε(t) over total ticks: observed occurrence strengths
// inside the training window, the projected strength beyond it.
func extendEpsilon(shocks []Shock, strengths [][]float64, total int) []float64 {
	eps := make([]float64, total)
	for t := range eps {
		eps[t] = 1
	}
	for si := range shocks {
		s := &shocks[si]
		str := strengths[si]
		addShockProfile(eps, s, str)
		if s.Period <= 0 {
			continue
		}
		future := futureStrengthOf(str, s)
		if future <= 0 {
			continue
		}
		for m := len(str); ; m++ {
			start := s.OccurrenceStart(m)
			if start >= total {
				break
			}
			for t := start; t < start+s.Width && t < total; t++ {
				eps[t] += future
			}
		}
	}
	return eps
}

func futureStrengthOf(str []float64, s *Shock) float64 {
	tmp := *s
	tmp.Strength = str
	return futureStrength(&tmp)
}

// ForecastGlobal simulates keyword i for h ticks beyond the training window
// and returns only the forecast horizon (length h).
func (m *Model) ForecastGlobal(i, h int) []float64 {
	if h <= 0 {
		return nil
	}
	full := m.ForecastGlobalFull(i, h)
	return full[m.Ticks:]
}

// ForecastGlobalFull returns the fitted curve over the training window
// followed by the h-step forecast (length Ticks+h), which is the convenient
// shape for plotting Fig. 11-style panels.
func (m *Model) ForecastGlobalFull(i, h int) []float64 {
	if h < 0 {
		h = 0
	}
	total := m.Ticks + h
	var shocks []Shock
	var strengths [][]float64
	for _, s := range m.Shocks {
		if s.Keyword != i {
			continue
		}
		shocks = append(shocks, s)
		strengths = append(strengths, s.Strength)
	}
	eps := extendEpsilon(shocks, strengths, total)
	return Simulate(&m.Global[i], total, eps, -1)
}

// ForecastLocal simulates keyword i in location j for h ticks beyond the
// training window using the local parameters, returning the horizon only.
func (m *Model) ForecastLocal(i, j, h int) []float64 {
	if h <= 0 {
		return nil
	}
	total := m.Ticks + h
	var shocks []Shock
	var strengths [][]float64
	for _, s := range m.Shocks {
		if s.Keyword != i {
			continue
		}
		shocks = append(shocks, s)
		str := s.Strength
		if s.Local != nil {
			str = make([]float64, len(s.Strength))
			for occ := range str {
				if j < len(s.Local[occ]) {
					str[occ] = s.Local[occ][j]
				}
			}
		}
		strengths = append(strengths, str)
	}
	eps := extendEpsilon(shocks, strengths, total)
	p := m.Global[i]
	rate := -1.0
	if m.LocalN != nil {
		p.N = m.LocalN[i][j]
	}
	if m.LocalR != nil {
		rate = m.LocalR[i][j]
	}
	sim := Simulate(&p, total, eps, rate)
	return sim[m.Ticks:]
}

// PredictedEvents lists the future shock occurrences of keyword i within the
// next h ticks: (start tick, width, projected strength). This is the
// "predict the time-tick, the duration and the relative strength of
// incoming external events" capability showcased in Fig. 11(b).
type PredictedEvent struct {
	Start    int
	Width    int
	Strength float64
	Period   int
}

// PredictedEvents returns the projected occurrences, ordered by start tick.
func (m *Model) PredictedEvents(i, h int) []PredictedEvent {
	var out []PredictedEvent
	total := m.Ticks + h
	for _, s := range m.Shocks {
		if s.Keyword != i || s.Period <= 0 {
			continue
		}
		future := futureStrength(&s)
		if future <= 0 {
			continue
		}
		for occ := len(s.Strength); ; occ++ {
			start := s.OccurrenceStart(occ)
			if start >= total {
				break
			}
			out = append(out, PredictedEvent{Start: start, Width: s.Width,
				Strength: future, Period: s.Period})
		}
	}
	sortPredicted(out)
	return out
}

func sortPredicted(events []PredictedEvent) {
	for i := 1; i < len(events); i++ {
		for j := i; j > 0 && less(events[j], events[j-1]); j-- {
			events[j], events[j-1] = events[j-1], events[j]
		}
	}
}

func less(a, b PredictedEvent) bool {
	if a.Start != b.Start {
		return a.Start < b.Start
	}
	return a.Strength > b.Strength
}

// RMSEGlobal returns the fitting RMSE of keyword i against obs.
func (m *Model) RMSEGlobal(i int, obs []float64) float64 {
	est := m.SimulateGlobal(i, m.Ticks)
	return rmse(obs, est)
}

func rmse(obs, est []float64) float64 {
	n := len(obs)
	if len(est) < n {
		n = len(est)
	}
	sum, cnt := 0.0, 0
	for t := 0; t < n; t++ {
		if math.IsNaN(obs[t]) || math.IsNaN(est[t]) {
			continue
		}
		d := obs[t] - est[t]
		sum += d * d
		cnt++
	}
	if cnt == 0 {
		// No tick has both sides observed: there is no error to report, and
		// 0 would claim a perfect fit for an all-missing series. NaN makes
		// the degenerate comparison explicit; aggregating callers skip it.
		return math.NaN()
	}
	return math.Sqrt(sum / float64(cnt))
}
