package core

import (
	"math"
	"testing"
)

// The refiners' shared strength ceiling. evaluateCandidate and
// refineStrengths already searched up to 80 while the incremental
// warm-start path (fitOneStrength) silently clipped at 60 — a strength the
// batch fitter happily assigned would be truncated on the very next
// streaming refit. The constant pins the unified cap.
func TestMaxShockStrengthCap(t *testing.T) {
	if maxShockStrength != 80 {
		t.Fatalf("maxShockStrength = %v, want 80 (keep the refiners' caps unified)", float64(maxShockStrength))
	}
}

// Regression for the 60-vs-80 clipping bug: fitOneStrength must recover a
// true strength of 70, which the old [0, 60] golden bracket could never
// reach.
func TestFitOneStrengthRecoversAboveOldCap(t *testing.T) {
	const n = 120
	const trueStrength = 70.0
	// Gentle β keeps β·ε(t) ≈ 1.5 at the true strength, so the outbreak
	// grows without clamping at N — a saturated plateau would make every
	// strength above ~65 fit equally well and the recovered value
	// unidentifiable.
	p := KeywordParams{N: 100, Beta: 0.022, Delta: 0.25, Gamma: 0.05, I0: 0.005, TEta: NoGrowth}
	shock := Shock{Keyword: 0, Period: NonCyclic, Start: 10, Width: 5, Strength: []float64{trueStrength}}

	truthShocks := []Shock{shock}
	seq := Simulate(&p, n, epsilonFromShocks(truthShocks, n), -1)

	// Warm-start state: right shock shape, strength unknown (zero).
	g := &gfit{seq: seq, n: n, params: p,
		shocks: []Shock{{Keyword: 0, Period: NonCyclic, Start: 10, Width: 5, Strength: []float64{0}}}}
	s := &g.shocks[0]
	got := fitOneStrength(g, s, 0, s.Start, n)

	if got <= 60 {
		t.Fatalf("fitOneStrength = %g, want ≈%g — a value above the old cap of 60", got, trueStrength)
	}
	if math.Abs(got-trueStrength) > 1 {
		t.Fatalf("fitOneStrength = %g, want within 1 of %g", got, trueStrength)
	}
	if s.Strength[0] != 0 {
		t.Fatalf("fitOneStrength must restore the saved strength; got %g", s.Strength[0])
	}
}
