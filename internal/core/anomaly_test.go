package core

import (
	"math"
	"testing"

	"dspot/internal/tensor"
)

func anomalyModel(n int) (*Model, []float64) {
	p := KeywordParams{N: 100, Beta: 0.5, Delta: 0.45, Gamma: 0.5, I0: 0.02, TEta: NoGrowth}
	m := &Model{Keywords: []string{"k"}, Locations: []string{"WW"}, Ticks: n,
		Global: []KeywordParams{p}}
	obs := synthGlobal(p, nil, n, 0.01, 41)
	return m, obs
}

func TestAnomaliesGlobalFlagsInjectedSpike(t *testing.T) {
	m, obs := anomalyModel(300)
	obs[150] += 20 // corrupt one tick hard
	got := m.AnomaliesGlobal(0, obs, 3)
	if len(got) == 0 {
		t.Fatal("injected spike not flagged")
	}
	if got[0].Tick != 150 {
		t.Fatalf("top anomaly at %d, want 150 (%+v)", got[0].Tick, got[0])
	}
	if got[0].Score < 3 {
		t.Fatalf("spike score %g too low", got[0].Score)
	}
}

func TestAnomaliesCleanSeriesQuiet(t *testing.T) {
	m, obs := anomalyModel(300)
	got := m.AnomaliesGlobal(0, obs, 4)
	if len(got) > 2 {
		t.Fatalf("clean series flagged %d anomalies at 4σ", len(got))
	}
}

func TestAnomaliesNegativeDirection(t *testing.T) {
	m, obs := anomalyModel(300)
	obs[200] = 0 // censor a tick well below the model level
	got := m.AnomaliesGlobal(0, obs, 3)
	found := false
	for _, a := range got {
		if a.Tick == 200 && a.Score < 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("censored tick not flagged negatively: %+v", got)
	}
}

func TestAnomaliesSkipMissing(t *testing.T) {
	m, obs := anomalyModel(300)
	obs[100] = tensor.Missing
	for _, a := range m.AnomaliesGlobal(0, obs, 2) {
		if a.Tick == 100 {
			t.Fatal("missing tick flagged")
		}
	}
}

func TestAnomaliesDefaultThreshold(t *testing.T) {
	m, obs := anomalyModel(200)
	obs[50] += 50
	got := m.AnomaliesGlobal(0, obs, 0) // 0 → default 3σ
	if len(got) == 0 || got[0].Tick != 50 {
		t.Fatalf("default threshold missed the spike: %+v", got)
	}
}

func TestAnomaliesLocal(t *testing.T) {
	p := KeywordParams{N: 100, Beta: 0.5, Delta: 0.45, Gamma: 0.5, I0: 0.02, TEta: NoGrowth}
	m := &Model{Keywords: []string{"k"}, Locations: []string{"US", "JP"}, Ticks: 200,
		Global: []KeywordParams{p},
		LocalN: [][]float64{{60, 40}},
		LocalR: [][]float64{{0, 0}},
	}
	pl := p
	pl.N = 40
	obs := Simulate(&pl, 200, nil, -1)
	obs[120] += 15
	got := m.AnomaliesLocal(0, 1, obs, 3)
	if len(got) == 0 || got[0].Tick != 120 {
		t.Fatalf("local anomaly missed: %+v", got)
	}
}

func TestCompressionRatioAboveOneForStructuredData(t *testing.T) {
	n := 200
	p := KeywordParams{N: 100, Beta: 0.5, Delta: 0.45, Gamma: 0.5, I0: 0.02, TEta: NoGrowth}
	shock := Shock{Keyword: 0, Period: 52, Start: 10, Width: 2, Strength: []float64{9, 9, 9, 9}}
	x := tensor.New([]string{"k"}, []string{"WW"}, n)
	eps := epsilonFromShocks([]Shock{shock}, n)
	sim := Simulate(&p, n, eps, -1)
	for t1, v := range sim {
		x.Set(0, 0, t1, v)
	}
	m := &Model{Keywords: x.Keywords, Locations: x.Locations, Ticks: n,
		Global: []KeywordParams{p}, Shocks: []Shock{shock}}
	ratio := m.CompressionRatio(x)
	if math.IsNaN(ratio) || ratio <= 1 {
		t.Fatalf("structured data should compress: ratio %g", ratio)
	}
}
