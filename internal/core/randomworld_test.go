package core

import (
	"math/rand"
	"testing"

	"dspot/internal/stats"
)

// TestFitRandomScriptedWorlds runs the full single-sequence pipeline on a
// handful of randomly scripted (but seeded and reproducible) worlds and
// checks the universal contracts: the fit must beat a flat-mean model, the
// output must validate, and detected cyclic structure must correspond to a
// scripted cycle when one dominates the series.
func TestFitRandomScriptedWorlds(t *testing.T) {
	for _, seed := range []int64{101, 202, 303, 404} {
		seed := seed
		t.Run(string(rune('a'+seed%26)), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			n := 250 + rng.Intn(150)
			truth := KeywordParams{
				N: 50 + rng.Float64()*100, Beta: 0.45 + rng.Float64()*0.15,
				Delta: 0.4 + rng.Float64()*0.1, Gamma: 0.35 + rng.Float64()*0.25,
				I0: 0.005 + rng.Float64()*0.02, TEta: NoGrowth,
			}
			var shocks []Shock
			if rng.Float64() < 0.7 { // a dominant cyclic event
				period := 40 + rng.Intn(40)
				start := rng.Intn(period)
				s := Shock{Keyword: 0, Period: period, Start: start,
					Width: 1 + rng.Intn(3)}
				occ := s.Occurrences(n)
				s.Strength = make([]float64, occ)
				for m := range s.Strength {
					s.Strength[m] = 6 + rng.Float64()*6
				}
				shocks = append(shocks, s)
			}
			if rng.Float64() < 0.5 { // an extra one-shot
				shocks = append(shocks, Shock{Keyword: 0, Period: NonCyclic,
					Start: 30 + rng.Intn(n-60), Width: 1 + rng.Intn(2),
					Strength: []float64{8 + rng.Float64()*8}})
			}
			obs := synthGlobal(truth, shocks, n, 0.01+rng.Float64()*0.02, seed)

			res, err := FitGlobalSequence(obs, 0, FitOptions{DisableGrowth: true})
			if err != nil {
				t.Fatal(err)
			}
			m := &Model{Keywords: []string{"w"}, Locations: []string{"all"},
				Ticks: n, Global: []KeywordParams{res.Params}, Shocks: res.Shocks}
			if err := m.Validate(); err != nil {
				t.Fatalf("fitted model invalid: %v", err)
			}
			fitRMSE := stats.RMSE(obs, m.SimulateGlobal(0, n))
			if flat := stats.Std(obs); fitRMSE >= flat {
				t.Fatalf("fit (%.3f) no better than flat (%.3f)", fitRMSE, flat)
			}
		})
	}
}
