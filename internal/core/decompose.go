package core

// Decomposition: users asking "why does the fit look like this?" need the
// model's explanation split into its mechanisms. Decompose re-simulates the
// keyword with components switched off and reports the marginal
// contribution of each: base dynamics, the growth effect, and each shock's
// incremental lift. Contributions are defined counterfactually (curve with
// the component minus curve without it, all else equal), so they sum to the
// full fitted curve exactly.

// Components is the decomposition of one keyword's fitted curve.
type Components struct {
	Fitted []float64 // the full fitted curve Î(t)
	Base   []float64 // base SIV dynamics alone (no growth, no shocks)
	Growth []float64 // marginal lift from the growth effect
	Shocks []float64 // marginal lift from all external shocks together

	// PerShock holds each shock's marginal lift, ordered as ShocksFor(i).
	PerShock [][]float64
}

// Decompose splits keyword i's fitted curve into explanatory components
// over n ticks.
func (m *Model) Decompose(i, n int) Components {
	shocks := m.ShocksFor(i)

	simWith := func(withGrowth bool, shockSubset []Shock) []float64 {
		p := m.Global[i]
		if !withGrowth {
			p.Eta0, p.TEta = 0, NoGrowth
		}
		eps := make([]float64, n)
		for t := range eps {
			eps[t] = 1
		}
		for si := range shockSubset {
			addShockProfile(eps, &shockSubset[si], shockSubset[si].Strength)
		}
		return Simulate(&p, n, eps, -1)
	}

	c := Components{
		Fitted: simWith(true, shocks),
		Base:   simWith(false, nil),
	}
	// Growth lift: with growth minus without, both shock-free.
	withGrowthNoShocks := simWith(true, nil)
	c.Growth = diff(withGrowthNoShocks, c.Base)
	// Total shock lift: full minus growth-only.
	c.Shocks = diff(c.Fitted, withGrowthNoShocks)
	// Per-shock marginal lift: full minus full-without-that-shock.
	c.PerShock = make([][]float64, len(shocks))
	for k := range shocks {
		subset := make([]Shock, 0, len(shocks)-1)
		subset = append(subset, shocks[:k]...)
		subset = append(subset, shocks[k+1:]...)
		c.PerShock[k] = diff(c.Fitted, simWith(true, subset))
	}
	return c
}

func diff(a, b []float64) []float64 {
	out := make([]float64, len(a))
	for t := range a {
		out[t] = a[t] - b[t]
	}
	return out
}
