package core

import (
	"math"
	"testing"

	"dspot/internal/stats"
	"dspot/internal/tensor"
)

// driftSeries synthesises the warm-start scale-drift scenario: a quiet
// annual-spike prefix, then an extension whose last annual occurrence blows
// up to roughly double the series maximum (the event went viral) — so the
// refit's normalisation scale drifts far past scaleDriftLimit.
func driftSeries(n int, burstLo, burstHi int, burstGain float64, seed int64) []float64 {
	full := grammyLike(n, seed)
	for t := burstLo; t < burstHi && t < n; t++ {
		full[t] *= burstGain
	}
	return full
}

// TestContinueScaleDriftConvergesToColdFit is the regression test for the
// warm-start scale-drift bug: fit a prefix, then refit after appending
// ticks that double the series max. The warm-started search used to stay in
// the stale shock basin judged under the old normalisation and return a
// materially worse MDL cost than a cold fit of the same data; with the
// scale-drift guard the continuation must match (or beat) the cold fit.
func TestContinueScaleDriftConvergesToColdFit(t *testing.T) {
	const prefix = 280
	full := driftSeries(360, 316, 324, 3.0, 29)

	preMax := stats.Max(full[:prefix])
	fullMax := stats.Max(full)
	if ratio := fullMax / preMax; ratio < 1.8 {
		t.Fatalf("scenario precondition: extension should double the max, got ratio %.3f", ratio)
	}

	opts := FitOptions{DisableGrowth: true}
	prev, err := FitGlobalSequence(full[:prefix], 0, opts)
	if err != nil {
		t.Fatal(err)
	}
	cont, err := ContinueGlobalSequence(full, 0, prev, opts)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := FitGlobalSequence(full, 0, opts)
	if err != nil {
		t.Fatal(err)
	}

	if drift := cont.Scale / prev.Scale; drift < scaleDriftLimit {
		t.Fatalf("scenario precondition: scale drift %.3f should exceed the guard limit %v", drift, scaleDriftLimit)
	}
	// The continuation must be at least as good as the cold fit (same
	// normalised data, same coding scheme — costs are directly comparable).
	if cont.Cost > cold.Cost+1e-6 {
		t.Fatalf("warm continuation stuck in stale basin: cost %.4f vs cold %.4f", cont.Cost, cold.Cost)
	}
	// And it must actually model the new burst: the continued model's
	// simulation has to reach the doubled amplitude, not the pre-drift one.
	m := &Model{Keywords: []string{"k"}, Ticks: len(full),
		Global: []KeywordParams{cont.Params}, Shocks: cont.Shocks}
	sim := m.SimulateGlobal(0, len(full))
	simMax := stats.Max(sim)
	if simMax < 0.6*fullMax {
		t.Fatalf("continued model never reaches the burst amplitude: sim max %.2f vs observed max %.2f", simMax, fullMax)
	}
}

// warmStartCost evaluates the MDL cost of the warm-start state
// ContinueGlobalSequence would begin from, with the carried strengths
// either verbatim or rescaled by prev.Scale/scale (the fix a naive reading
// of the normalisation suggests).
func warmStartCost(full []float64, prev GlobalFitResult, rescale bool) float64 {
	norm, scale := tensor.Normalize(full)
	n := len(norm)
	st := &gfit{seq: norm, n: n, keyword: 0, opts: FitOptions{}.withDefaults()}
	st.params = prev.Params
	if scale > 0 {
		st.params.N = prev.Params.N / scale
	}
	ratio := 1.0
	if rescale && scale > 0 && prev.Scale > 0 {
		ratio = prev.Scale / scale
	}
	for _, s := range prev.Shocks {
		if s.Start >= n || s.Width <= 0 {
			continue
		}
		occ := s.Occurrences(n)
		strengths := make([]float64, occ)
		mean := s.MeanStrength()
		for m := range strengths {
			if m < len(s.Strength) {
				strengths[m] = s.Strength[m] * ratio
			} else {
				strengths[m] = mean * ratio
			}
		}
		s.Strength = strengths
		s.Local = nil
		st.shocks = append(st.shocks, s)
	}
	return st.cost()
}

// TestWarmStartStrengthsScaleInvariant pins the analysis behind the
// scale-drift fix: shock strengths are dimensionless — the normalisation
// scale is absorbed entirely by N (output = N·i(t); the s/i/v fraction
// dynamics never see N) — so carrying them verbatim across a scale change
// is correct, and "rescaling strengths by prev.Scale/scale" (the obvious
// but wrong fix) must produce a strictly worse warm start.
func TestWarmStartStrengthsScaleInvariant(t *testing.T) {
	const prefix = 280
	full := driftSeries(360, 316, 324, 2.2, 71)
	prev, err := FitGlobalSequence(full[:prefix], 0, FitOptions{DisableGrowth: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(prev.Shocks) == 0 {
		t.Fatal("prefix fit found no shocks; scenario broken")
	}
	verbatim := warmStartCost(full, prev, false)
	rescaled := warmStartCost(full, prev, true)
	if math.IsNaN(verbatim) || math.IsNaN(rescaled) {
		t.Fatalf("non-finite warm costs: verbatim %v rescaled %v", verbatim, rescaled)
	}
	if verbatim >= rescaled {
		t.Fatalf("verbatim carry should beat rescaled carry: verbatim %.4f rescaled %.4f", verbatim, rescaled)
	}
}
