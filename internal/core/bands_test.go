package core

import (
	"math"
	"testing"
)

func bandModel() (*Model, []float64) {
	occ := make([]float64, 8)
	for i := range occ {
		occ[i] = 8 + float64(i%3) // mild occurrence variability
	}
	m := &Model{
		Keywords: []string{"k"}, Locations: []string{"WW"}, Ticks: 420,
		Global: []KeywordParams{{N: 100, Beta: 0.5, Delta: 0.45, Gamma: 0.5,
			I0: 0.02, TEta: NoGrowth}},
		Shocks: []Shock{{Keyword: 0, Period: 52, Start: 6, Width: 2, Strength: occ}},
	}
	obs := synthGlobal(m.Global[0], m.Shocks, 420, 0.02, 31)
	return m, obs
}

func TestForecastBandsShape(t *testing.T) {
	m, obs := bandModel()
	band := m.ForecastBands(0, 104, obs, 100, 0.8, 7)
	if len(band.Lower) != 104 || len(band.Median) != 104 || len(band.Upper) != 104 {
		t.Fatalf("band lengths %d/%d/%d", len(band.Lower), len(band.Median), len(band.Upper))
	}
	for t1 := range band.Median {
		if band.Lower[t1] > band.Median[t1]+1e-9 || band.Median[t1] > band.Upper[t1]+1e-9 {
			t.Fatalf("quantile ordering violated at %d: %g %g %g",
				t1, band.Lower[t1], band.Median[t1], band.Upper[t1])
		}
		if band.Lower[t1] < 0 || math.IsNaN(band.Upper[t1]) {
			t.Fatalf("band values invalid at %d", t1)
		}
	}
}

func TestForecastBandsCoverMedianForecast(t *testing.T) {
	m, obs := bandModel()
	band := m.ForecastBands(0, 60, obs, 200, 0.9, 7)
	point := m.ForecastGlobal(0, 60)
	inside := 0
	for t1 := range point {
		if point[t1] >= band.Lower[t1]-1e-6 && point[t1] <= band.Upper[t1]+1e-6 {
			inside++
		}
	}
	if float64(inside) < 0.8*float64(len(point)) {
		t.Fatalf("point forecast outside 90%% band too often: %d/%d", inside, len(point))
	}
}

func TestForecastBandsWidthGrowsWithNoise(t *testing.T) {
	m, _ := bandModel()
	quiet := synthGlobal(m.Global[0], m.Shocks, 420, 0.005, 33)
	loud := synthGlobal(m.Global[0], m.Shocks, 420, 0.1, 33)
	bq := m.ForecastBands(0, 40, quiet, 150, 0.8, 9)
	bl := m.ForecastBands(0, 40, loud, 150, 0.8, 9)
	wq, wl := 0.0, 0.0
	for t1 := 0; t1 < 40; t1++ {
		wq += bq.Upper[t1] - bq.Lower[t1]
		wl += bl.Upper[t1] - bl.Lower[t1]
	}
	if wl <= wq {
		t.Fatalf("noisier training data should widen bands: %g vs %g", wl, wq)
	}
}

func TestForecastBandsReproducible(t *testing.T) {
	m, obs := bandModel()
	a := m.ForecastBands(0, 30, obs, 50, 0.8, 11)
	b := m.ForecastBands(0, 30, obs, 50, 0.8, 11)
	for t1 := range a.Median {
		if a.Median[t1] != b.Median[t1] || a.Lower[t1] != b.Lower[t1] {
			t.Fatal("bands not reproducible for the same seed")
		}
	}
}

func TestForecastBandsDegenerate(t *testing.T) {
	m, obs := bandModel()
	if band := m.ForecastBands(0, 0, obs, 50, 0.8, 1); band.Median != nil {
		t.Fatal("zero horizon should return empty band")
	}
	if band := m.ForecastBands(0, 10, obs, 0, 0.8, 1); band.Median != nil {
		t.Fatal("zero simulations should return empty band")
	}
	// Bad coverage silently falls back to 0.8.
	band := m.ForecastBands(0, 10, obs, 20, 1.5, 1)
	if len(band.Median) != 10 {
		t.Fatal("fallback coverage failed")
	}
}

func TestQuantileSorted(t *testing.T) {
	s := []float64{1, 2, 3, 4, 5}
	if quantileSorted(s, 0) != 1 || quantileSorted(s, 1) != 5 {
		t.Fatal("extremes wrong")
	}
	if got := quantileSorted(s, 0.5); got != 3 {
		t.Fatalf("median = %g", got)
	}
	if quantileSorted(nil, 0.5) != 0 {
		t.Fatal("empty quantile")
	}
}
