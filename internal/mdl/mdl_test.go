package mdl

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLogStarKnownValues(t *testing.T) {
	// log*(1) = log2(c0) since log2(1)=0 terminates immediately.
	c0 := math.Log2(2.865064)
	if got := LogStar(1); math.Abs(got-c0) > 1e-12 {
		t.Fatalf("LogStar(1) = %g, want %g", got, c0)
	}
	// log*(16) = c0 + 4 + 2 + 1 = c0 + 7.
	if got := LogStar(16); math.Abs(got-(c0+7)) > 1e-12 {
		t.Fatalf("LogStar(16) = %g, want %g", got, c0+7)
	}
	if got := LogStar(0); math.Abs(got-c0) > 1e-12 {
		t.Fatalf("LogStar(0) = %g, want constant %g", got, c0)
	}
}

func TestLogStarMonotoneQuick(t *testing.T) {
	f := func(a uint16) bool {
		n := int(a) + 1
		return LogStar(n+1) >= LogStar(n) && LogStar(n) > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestIntCost(t *testing.T) {
	if got := IntCost(8); got != 3 {
		t.Fatalf("IntCost(8) = %g, want 3", got)
	}
	if got := IntCost(1); got != 1 {
		t.Fatalf("IntCost(1) = %g, want 1 (floor)", got)
	}
	if got := IntCost(0); got != 1 {
		t.Fatalf("IntCost(0) = %g, want 1 (floor)", got)
	}
}

func TestFloatsCost(t *testing.T) {
	if got := FloatsCost(3); got != 96 {
		t.Fatalf("FloatsCost(3) = %g, want 96", got)
	}
}

func TestGaussianCostEmpty(t *testing.T) {
	if got := GaussianCost(nil); got != 0 {
		t.Fatalf("GaussianCost(nil) = %g, want 0", got)
	}
	if got := GaussianCost([]float64{math.NaN()}); got != 0 {
		t.Fatalf("GaussianCost(all NaN) = %g, want 0", got)
	}
}

func TestGaussianCostPrefersSmallResiduals(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	small := make([]float64, 200)
	big := make([]float64, 200)
	for i := range small {
		small[i] = rng.NormFloat64() * 0.1
		big[i] = rng.NormFloat64() * 10
	}
	if GaussianCost(small) >= GaussianCost(big) {
		t.Fatal("smaller residuals should cost fewer bits")
	}
}

func TestGaussianCostSkipsNaN(t *testing.T) {
	clean := []float64{1, -1, 2, -2}
	withNaN := []float64{1, math.NaN(), -1, 2, math.NaN(), -2}
	if math.Abs(GaussianCost(clean)-GaussianCost(withNaN)) > 1e-9 {
		t.Fatal("NaN entries should be skipped")
	}
}

func TestGaussianCostFixedMatchesSelfEstimate(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	res := make([]float64, 300)
	for i := range res {
		res[i] = rng.NormFloat64() * 3
	}
	mu, sigma2 := ResidualNoise(res)
	// GaussianCost = GaussianCostFixed at the ML estimate + 2 float costs.
	got := GaussianCostFixed(res, mu, sigma2) + FloatsCost(2)
	want := GaussianCost(res)
	if math.Abs(got-want) > 1e-6 {
		t.Fatalf("fixed-vs-self mismatch: %g vs %g", got, want)
	}
}

func TestResidualNoiseFloor(t *testing.T) {
	_, sigma2 := ResidualNoise([]float64{5, 5, 5})
	if sigma2 != 1e-6 {
		t.Fatalf("variance floor = %g, want 1e-6", sigma2)
	}
	mu, sigma2 := ResidualNoise(nil)
	if mu != 0 || sigma2 != 1e-6 {
		t.Fatalf("empty noise = (%g,%g)", mu, sigma2)
	}
}

// Property: Gaussian cost is finite and the ML-estimate cost is minimal over
// perturbed variance choices.
func TestGaussianCostMLOptimalQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(100)
		res := make([]float64, n)
		for i := range res {
			res[i] = rng.NormFloat64() * (0.5 + rng.Float64()*5)
		}
		mu, sigma2 := ResidualNoise(res)
		best := GaussianCostFixed(res, mu, sigma2)
		if math.IsInf(best, 0) || math.IsNaN(best) {
			return false
		}
		for _, f := range []float64{0.5, 2.0} {
			if GaussianCostFixed(res, mu, sigma2*f) < best-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
