// Package mdl implements the minimum-description-length coding scheme that
// Δ-SPOT uses for model selection. The total cost of a model F on data X is
//
//	Cost_T(X; F) = log*(d) + log*(l) + log*(n)
//	             + Cost_M(B_G) + Cost_M(B_L) + Cost_M(R_G) + Cost_M(R_L)
//	             + Cost_M(S) + Cost_C(X | F)
//
// where Cost_M terms are parameter description costs (universal integer codes
// plus a fixed floating-point cost) and Cost_C is the Gaussian coding cost of
// the residuals. The fitter accepts a refinement (an extra shock, a growth
// term, a local participation entry) only when it lowers Cost_T — this is
// what makes Δ-SPOT parameter-free.
package mdl

import "math"

// FloatCost is the description cost of one floating-point parameter in bits.
// The paper uses 4×8 bits (footnote *3).
const FloatCost = 32.0

// LogStar returns the universal code length log*(n) for a positive integer:
// log*(n) = log2(c0) + log2(n) + log2 log2(n) + ... over the positive terms,
// with the customary constant c0 ≈ 2.865064.
func LogStar(n int) float64 {
	if n <= 0 {
		// Encoding "zero or absent" still takes the constant term; callers
		// pass n >= 1 in normal operation.
		return math.Log2(2.865064)
	}
	cost := math.Log2(2.865064)
	v := float64(n)
	for {
		v = math.Log2(v)
		if v <= 0 {
			break
		}
		cost += v
	}
	return cost
}

// IntCost returns log2(n) bits for indexing one of n alternatives (at least
// one bit, so that degenerate axes still cost something).
func IntCost(n int) float64 {
	if n < 2 {
		return 1
	}
	return math.Log2(float64(n))
}

// FloatsCost returns the cost of k floating-point parameters.
func FloatsCost(k int) float64 { return FloatCost * float64(k) }

// GaussianCost returns the coding cost of residuals under a Gaussian with
// the residuals' own mean and variance:
//
//	Cost_C = Σ_t log2 p^{-1}_{Gauss(μ,σ²)}(e_t)
//
// NaN residuals (missing observations) are skipped. A tiny variance floor
// keeps the cost finite for perfect fits; the floor also charges long
// sequences more than short ones, preserving MDL monotonicity.
func GaussianCost(residuals []float64) float64 {
	var sum, sumsq float64
	cnt := 0
	for _, e := range residuals {
		if math.IsNaN(e) {
			continue
		}
		sum += e
		sumsq += e * e
		cnt++
	}
	if cnt == 0 {
		return 0
	}
	mu := sum / float64(cnt)
	sigma2 := sumsq/float64(cnt) - mu*mu
	const floor = 1e-6
	if sigma2 < floor {
		sigma2 = floor
	}
	// Σ log2(1/p(e)) = n/2·log2(2πσ²) + Σ (e-μ)²/(2σ² ln2)
	cost := 0.5 * float64(cnt) * math.Log2(2*math.Pi*sigma2)
	inv := 1 / (2 * sigma2 * math.Ln2)
	for _, e := range residuals {
		if math.IsNaN(e) {
			continue
		}
		d := e - mu
		cost += d * d * inv
	}
	// The decoder additionally needs μ and σ².
	return cost + FloatsCost(2)
}

// GaussianCostFixed is GaussianCost with a caller-supplied (μ, σ²); used when
// several residual blocks must share one noise model (e.g., local sequences
// coded against the global noise estimate).
func GaussianCostFixed(residuals []float64, mu, sigma2 float64) float64 {
	const floor = 1e-6
	if sigma2 < floor {
		sigma2 = floor
	}
	cnt := 0
	cost := 0.0
	inv := 1 / (2 * sigma2 * math.Ln2)
	for _, e := range residuals {
		if math.IsNaN(e) {
			continue
		}
		d := e - mu
		cost += d * d * inv
		cnt++
	}
	return cost + 0.5*float64(cnt)*math.Log2(2*math.Pi*sigma2)
}

// ResidualNoise estimates the (μ, σ²) of residuals, applying the same
// variance floor as GaussianCost so the two agree.
func ResidualNoise(residuals []float64) (mu, sigma2 float64) {
	var sum, sumsq float64
	cnt := 0
	for _, e := range residuals {
		if math.IsNaN(e) {
			continue
		}
		sum += e
		sumsq += e * e
		cnt++
	}
	if cnt == 0 {
		return 0, 1e-6
	}
	mu = sum / float64(cnt)
	sigma2 = sumsq/float64(cnt) - mu*mu
	if sigma2 < 1e-6 {
		sigma2 = 1e-6
	}
	return mu, sigma2
}
