package mdl_test

import (
	"fmt"

	"dspot/internal/mdl"
)

// Universal integer code lengths grow slowly.
func ExampleLogStar() {
	fmt.Printf("%.1f %.1f %.1f\n",
		mdl.LogStar(1), mdl.LogStar(16), mdl.LogStar(1024))
	// Output:
	// 1.5 8.5 17.4
}

// Smaller residuals cost fewer bits under the Gaussian code.
func ExampleGaussianCost() {
	tight := []float64{0.1, -0.1, 0.05, -0.05}
	loose := []float64{10, -10, 5, -5}
	fmt.Println(mdl.GaussianCost(tight) < mdl.GaussianCost(loose))
	// Output:
	// true
}
