package tbats_test

import (
	"fmt"
	"math"

	"dspot/internal/tbats"
)

// Fit a seasonal series and forecast one full period.
func ExampleFit() {
	period := 12
	seq := make([]float64, 10*period)
	for i := range seq {
		seq[i] = 50 + 30*math.Sin(2*math.Pi*float64(i)/float64(period))
	}
	m, err := tbats.Fit(seq)
	if err != nil {
		panic(err)
	}
	fc := m.Forecast(period)
	fmt.Printf("seasonal=%v horizon=%d\n", m.Period > 0, len(fc))
	// Output:
	// seasonal=true horizon=12
}
