package tbats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dspot/internal/stats"
)

func TestBoxCoxRoundTrip(t *testing.T) {
	for _, omega := range []float64{0, 0.5, 1} {
		for _, y := range []float64{0, 0.5, 1, 10, 1234.5} {
			z := boxCox(y, omega)
			back := invBoxCox(z, omega)
			if math.Abs(back-y) > 1e-9*(1+y) {
				t.Fatalf("omega=%g y=%g round-trip %g", omega, y, back)
			}
		}
	}
}

func TestInvBoxCoxClampsToZero(t *testing.T) {
	if got := invBoxCox(-100, 0.5); got != 0 {
		t.Fatalf("invBoxCox underflow = %g, want 0", got)
	}
	if got := invBoxCox(-100, 0); got != 0 {
		t.Fatalf("invBoxCox log-underflow = %g, want 0", got)
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit([]float64{1, 2, 3}); err == nil {
		t.Fatal("short sequence accepted")
	}
	if _, err := Fit([]float64{1, 2, 3, -4, 5, 6, 7, 8, 9}); err == nil {
		t.Fatal("negative observations accepted")
	}
}

func TestFitLevelSeries(t *testing.T) {
	seq := make([]float64, 60)
	for i := range seq {
		seq[i] = 100
	}
	m, err := Fit(seq)
	if err != nil {
		t.Fatal(err)
	}
	fc := m.Forecast(10)
	for _, v := range fc {
		if math.Abs(v-100) > 2 {
			t.Fatalf("level forecast = %v", fc)
		}
	}
}

func TestFitTrendSeries(t *testing.T) {
	seq := make([]float64, 80)
	for i := range seq {
		seq[i] = 10 + 2*float64(i)
	}
	m, err := Fit(seq)
	if err != nil {
		t.Fatal(err)
	}
	fc := m.Forecast(5)
	// Damped trend: expect continued growth, direction matters more than
	// exact slope.
	if fc[4] <= seq[len(seq)-1] {
		t.Fatalf("trend forecast did not grow: last obs %g, fc %v", seq[len(seq)-1], fc)
	}
}

func TestFitSeasonalSeries(t *testing.T) {
	period := 12
	n := 10 * period
	seq := make([]float64, n)
	for i := range seq {
		seq[i] = 50 + 30*math.Sin(2*math.Pi*float64(i)/float64(period))
	}
	m, err := Fit(seq)
	if err != nil {
		t.Fatal(err)
	}
	if m.Period == 0 {
		t.Fatalf("seasonal series fitted with non-seasonal model (AIC %g)", m.AIC())
	}
	fc := m.Forecast(period)
	truth := make([]float64, period)
	for i := range truth {
		truth[i] = 50 + 30*math.Sin(2*math.Pi*float64(n+i)/float64(period))
	}
	if rmse := stats.RMSE(truth, fc); rmse > 15 {
		t.Fatalf("seasonal forecast RMSE %g: fc %v", rmse, fc)
	}
}

func TestFittedAlignsAndImprovesOnMean(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	period := 12
	n := 8 * period
	seq := make([]float64, n)
	for i := range seq {
		seq[i] = 50 + 30*math.Sin(2*math.Pi*float64(i)/float64(period)) + rng.NormFloat64()*2
	}
	m, err := Fit(seq)
	if err != nil {
		t.Fatal(err)
	}
	fit := m.Fitted(seq)
	if len(fit) != n {
		t.Fatalf("Fitted length %d != %d", len(fit), n)
	}
	if rmse := stats.RMSE(seq[period:], fit[period:]); rmse >= stats.Std(seq) {
		t.Fatalf("fitted RMSE %g not better than flat-mean %g", rmse, stats.Std(seq))
	}
}

func TestFitWithMissingValues(t *testing.T) {
	seq := make([]float64, 60)
	for i := range seq {
		seq[i] = 20 + float64(i%6)
	}
	seq[10], seq[30] = math.NaN(), math.NaN()
	m, err := Fit(seq)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range m.Forecast(6) {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("forecast corrupted by missing values: %g", v)
		}
	}
}

func TestForecastZeroHorizon(t *testing.T) {
	m := &Model{Omega: 1, Phi: 1}
	if m.Forecast(0) != nil {
		t.Fatal("Forecast(0) should be nil")
	}
}

// Property: forecasts are finite and non-negative for any non-negative series.
func TestForecastSaneQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 30 + rng.Intn(60)
		seq := make([]float64, n)
		for i := range seq {
			seq[i] = rng.Float64() * 100
		}
		m, err := Fit(seq)
		if err != nil {
			return false
		}
		for _, v := range m.Forecast(20) {
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
