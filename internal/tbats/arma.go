package tbats

// ARMA(p, q) error correction — the final component of the full TBATS
// specification (the "A" in the acronym). The state-space filter leaves
// one-step-ahead residuals; when they are autocorrelated, an ARMA model of
// the residual process sharpens both the in-sample fit and the forecast.
// Orders are selected from {0,1,2}×{0,1} by AIC on the residual series,
// with (0,0) meaning "no correction" (the default when residuals are
// already white).

import (
	"math"

	"dspot/internal/optimize"
	"dspot/internal/stats"
)

// armaModel is a fitted ARMA(p, q) on the filter residuals.
type armaModel struct {
	p, q int
	phi  []float64 // AR coefficients, length p
	teta []float64 // MA coefficients, length q
	aic  float64

	// Tail state for forecasting: the last p residual-process values and
	// the last q innovations.
	lastE []float64
	lastA []float64
}

// armaSSE runs the innovations recursion and returns the SSE of the
// one-step predictions plus the innovation sequence.
func armaSSE(e []float64, phi, teta []float64) (float64, []float64) {
	p, q := len(phi), len(teta)
	a := make([]float64, len(e)) // innovations
	sse := 0.0
	for t := range e {
		pred := 0.0
		for k := 1; k <= p; k++ {
			if t-k >= 0 {
				pred += phi[k-1] * e[t-k]
			}
		}
		for k := 1; k <= q; k++ {
			if t-k >= 0 {
				pred += teta[k-1] * a[t-k]
			}
		}
		a[t] = e[t] - pred
		sse += a[t] * a[t]
	}
	return sse, a
}

// fitARMA selects and fits the residual ARMA by AIC. Residual series
// shorter than 16 observations skip correction entirely.
func fitARMA(resid []float64) *armaModel {
	n := len(resid)
	none := &armaModel{}
	none.aic = armaAIC(stats.SSE(resid, make([]float64, n)), n, 0)
	if n < 16 {
		return none
	}
	best := none
	for p := 0; p <= 2; p++ {
		for q := 0; q <= 1; q++ {
			if p == 0 && q == 0 {
				continue
			}
			dim := p + q
			obj := func(v []float64) float64 {
				phi := v[:p]
				teta := v[p:]
				for _, c := range v {
					if math.Abs(c) > 1.2 { // keep the recursion stable
						return math.Inf(1)
					}
				}
				sse, _ := armaSSE(resid, phi, teta)
				return sse
			}
			x0 := make([]float64, dim)
			if p > 0 {
				x0[0] = stats.Autocorrelation(resid, 1) // moment start
			}
			xb, sse := optimize.NelderMead(obj, x0, optimize.NelderMeadOptions{MaxIter: 800})
			if math.IsInf(sse, 1) {
				continue
			}
			aic := armaAIC(sse, n, dim)
			if aic < best.aic-1e-9 {
				m := &armaModel{p: p, q: q,
					phi:  append([]float64(nil), xb[:p]...),
					teta: append([]float64(nil), xb[p:]...),
					aic:  aic}
				_, innov := armaSSE(resid, m.phi, m.teta)
				m.captureTail(resid, innov)
				best = m
			}
		}
	}
	return best
}

func armaAIC(sse float64, n, params int) float64 {
	variance := sse / float64(n)
	if variance < 1e-12 {
		variance = 1e-12
	}
	return float64(n)*math.Log(variance) + 2*float64(params)
}

// captureTail records the state needed to extrapolate the residual process.
func (m *armaModel) captureTail(e, a []float64) {
	take := func(s []float64, k int) []float64 {
		if k == 0 {
			return nil
		}
		out := make([]float64, k)
		for i := 0; i < k; i++ {
			idx := len(s) - k + i
			if idx >= 0 {
				out[i] = s[idx]
			}
		}
		return out
	}
	m.lastE = take(e, m.p)
	m.lastA = take(a, m.q)
}

// active reports whether the model applies any correction.
func (m *armaModel) active() bool { return m != nil && (m.p > 0 || m.q > 0) }

// predictInSample returns the ARMA's one-step prediction of each residual
// (aligned with resid).
func (m *armaModel) predictInSample(resid []float64) []float64 {
	out := make([]float64, len(resid))
	if !m.active() {
		return out
	}
	_, innov := armaSSE(resid, m.phi, m.teta)
	for t := range resid {
		out[t] = resid[t] - innov[t]
	}
	return out
}

// forecast extrapolates the residual process h steps (innovations 0).
func (m *armaModel) forecast(h int) []float64 {
	out := make([]float64, h)
	if !m.active() {
		return out
	}
	e := append([]float64(nil), m.lastE...)
	a := append([]float64(nil), m.lastA...)
	for t := 0; t < h; t++ {
		pred := 0.0
		for k := 1; k <= m.p; k++ {
			idx := len(e) - k
			if idx >= 0 {
				pred += m.phi[k-1] * e[idx]
			}
		}
		for k := 1; k <= m.q; k++ {
			idx := len(a) - k
			if idx >= 0 {
				pred += m.teta[k-1] * a[idx]
			}
		}
		out[t] = pred
		e = append(e, pred)
		a = append(a, 0)
	}
	return out
}
