package tbats

import (
	"math"
	"math/rand"
	"testing"

	"dspot/internal/stats"
)

// genARProcess synthesises a stationary AR(1) residual process.
func genARProcess(phi float64, n int, noise float64, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	for t := 1; t < n; t++ {
		out[t] = phi*out[t-1] + rng.NormFloat64()*noise
	}
	return out
}

func TestArmaSSEWhiteNoiseZeroModel(t *testing.T) {
	e := []float64{1, -2, 3}
	sse, innov := armaSSE(e, nil, nil)
	if math.Abs(sse-14) > 1e-12 {
		t.Fatalf("no-model SSE = %g, want 14", sse)
	}
	for i := range e {
		if innov[i] != e[i] {
			t.Fatal("no-model innovations should equal residuals")
		}
	}
}

func TestArmaSSEExactAR1(t *testing.T) {
	// e(t) = 0.7·e(t-1) exactly: AR(1) with phi=0.7 leaves zero innovations
	// after the first step.
	e := []float64{1}
	for i := 1; i < 20; i++ {
		e = append(e, 0.7*e[i-1])
	}
	sse, _ := armaSSE(e, []float64{0.7}, nil)
	if sse-1 > 1e-12 { // only e(0) is unpredictable
		t.Fatalf("exact AR(1) SSE = %g, want 1", sse)
	}
}

func TestFitARMARecoversAR1(t *testing.T) {
	resid := genARProcess(0.6, 600, 0.5, 1)
	m := fitARMA(resid)
	if !m.active() {
		t.Fatal("strongly autocorrelated residuals left uncorrected")
	}
	if m.p < 1 {
		t.Fatalf("AR order %d, want >= 1", m.p)
	}
	if math.Abs(m.phi[0]-0.6) > 0.15 {
		t.Fatalf("phi = %v, want ≈0.6", m.phi)
	}
}

func TestFitARMAWhiteNoiseStaysInactive(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	resid := make([]float64, 400)
	for i := range resid {
		resid[i] = rng.NormFloat64()
	}
	m := fitARMA(resid)
	if m.active() {
		// AIC may very occasionally keep a tiny coefficient; it must at
		// least be small.
		for _, c := range append(m.phi, m.teta...) {
			if math.Abs(c) > 0.2 {
				t.Fatalf("white noise got large ARMA coefficient: %+v", m)
			}
		}
	}
}

func TestFitARMAShortSeriesInactive(t *testing.T) {
	if m := fitARMA(genARProcess(0.8, 10, 0.5, 3)); m.active() {
		t.Fatal("short residual series should skip correction")
	}
}

func TestArmaForecastDecays(t *testing.T) {
	resid := genARProcess(0.7, 600, 0.5, 4)
	m := fitARMA(resid)
	if !m.active() {
		t.Skip("correction not kept on this seed")
	}
	fc := m.forecast(50)
	if math.Abs(fc[49]) > math.Abs(fc[0]) {
		t.Fatalf("stationary ARMA forecast should decay: %g -> %g", fc[0], fc[49])
	}
	for _, v := range fc {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatal("forecast not finite")
		}
	}
}

func TestArmaInactiveHelpers(t *testing.T) {
	var nilModel *armaModel
	if nilModel.active() {
		t.Fatal("nil model active")
	}
	none := &armaModel{}
	if got := none.forecast(5); len(got) != 5 {
		t.Fatal("inactive forecast length")
	}
	for _, v := range none.forecast(5) {
		if v != 0 {
			t.Fatal("inactive forecast should be zero")
		}
	}
	pred := none.predictInSample([]float64{1, 2})
	if pred[0] != 0 || pred[1] != 0 {
		t.Fatal("inactive in-sample prediction should be zero")
	}
}

func TestARMACorrectionWhitensResiduals(t *testing.T) {
	// The correction must leave residual innovations much whiter (by
	// Ljung–Box) than the raw filter residuals it was fitted on.
	resid := genARProcess(0.7, 800, 1, 21)
	_, pBefore := stats.LjungBox(resid, 10)
	m := fitARMA(resid)
	if !m.active() {
		t.Fatal("correction not kept on strongly autocorrelated input")
	}
	_, innov := armaSSE(resid, m.phi, m.teta)
	_, pAfter := stats.LjungBox(innov[5:], 10)
	if pAfter <= pBefore {
		t.Fatalf("innovations not whiter: p %g -> %g", pBefore, pAfter)
	}
	if pAfter < 0.001 {
		t.Fatalf("innovations still strongly autocorrelated: p = %g", pAfter)
	}
}

func TestTBATSWithARMAImprovesAutocorrelatedSeries(t *testing.T) {
	// Level + strongly autocorrelated disturbance: the plain filter leaves
	// AR structure in its residuals which the ARMA stage should absorb.
	n := 300
	ar := genARProcess(0.8, n, 2, 5)
	seq := make([]float64, n)
	for i := range seq {
		seq[i] = 50 + ar[i]
		if seq[i] < 0 {
			seq[i] = 0
		}
	}
	m, err := Fit(seq)
	if err != nil {
		t.Fatal(err)
	}
	fit := m.Fitted(seq)
	if rmse := stats.RMSE(seq[10:], fit[10:]); rmse >= stats.Std(seq) {
		t.Fatalf("ARMA-corrected fit RMSE %g not better than flat %g",
			rmse, stats.Std(seq))
	}
	for _, v := range m.Forecast(20) {
		if math.IsNaN(v) || v < 0 {
			t.Fatalf("forecast invalid: %g", v)
		}
	}
}
