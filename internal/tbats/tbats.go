// Package tbats implements a TBATS-style exponential-smoothing forecaster
// (De Livera, Hyndman & Snyder 2011 — the paper's reference [8]): Box–Cox
// transformation, damped linear trend, and trigonometric seasonality, with
// smoothing constants estimated by Nelder–Mead on the one-step-ahead SSE and
// the Box–Cox exponent, seasonal period, and number of harmonics selected by
// AIC. This is the forecasting baseline of Fig. 11. ARMA error correction —
// a refinement of the full TBATS — is intentionally omitted; on the bursty
// activity series studied here it changes nothing about the qualitative
// comparison (documented in DESIGN.md).
package tbats

import (
	"errors"
	"math"

	"dspot/internal/optimize"
	"dspot/internal/stats"
)

// Model is a fitted TBATS-style model.
type Model struct {
	Omega     float64 // Box–Cox exponent (0 = log)
	Period    int     // seasonal period (0 = non-seasonal)
	Harmonics int     // number of trigonometric harmonic pairs

	Alpha float64 // level smoothing
	Beta  float64 // trend smoothing
	Phi   float64 // trend damping
	Gamma float64 // seasonal smoothing

	// Final state after the training pass, used by Forecast.
	level float64
	trend float64
	sj    []float64 // seasonal states
	sjs   []float64 // conjugate seasonal states

	arma *armaModel // residual ARMA correction (nil or inactive = none)

	aic float64
	n   int
}

// boxCox transforms y (shifted by 1 so zero counts are representable).
func boxCox(y, omega float64) float64 {
	y += 1
	if omega == 0 {
		return math.Log(y)
	}
	return (math.Pow(y, omega) - 1) / omega
}

// invBoxCox inverts boxCox; values below the transform's range floor clamp
// to zero in the original scale.
func invBoxCox(z, omega float64) float64 {
	var y float64
	if omega == 0 {
		y = math.Exp(z)
	} else {
		base := omega*z + 1
		if base <= 0 {
			return 0
		}
		y = math.Pow(base, 1/omega)
	}
	if y < 1 {
		return 0
	}
	return y - 1
}

// filterState holds the running smoothing state.
type filterState struct {
	level, trend float64
	sj, sjs      []float64
}

// step advances the state one tick given the transformed observation (or
// NaN to run prediction-only) and returns the one-step prediction.
func (m *Model) step(st *filterState, z float64) float64 {
	seas := 0.0
	for j := range st.sj {
		seas += st.sj[j]
	}
	pred := st.level + m.Phi*st.trend + seas
	d := 0.0
	if !math.IsNaN(z) {
		d = z - pred
	}
	newLevel := st.level + m.Phi*st.trend + m.Alpha*d
	newTrend := m.Phi*st.trend + m.Beta*d
	if m.Period > 1 && len(st.sj) > 0 {
		k := len(st.sj)
		share := m.Gamma * d / float64(k)
		for j := 0; j < k; j++ {
			lam := 2 * math.Pi * float64(j+1) / float64(m.Period)
			c, s := math.Cos(lam), math.Sin(lam)
			sj, sjs := st.sj[j], st.sjs[j]
			st.sj[j] = sj*c + sjs*s + share
			st.sjs[j] = -sj*s + sjs*c + share
		}
	}
	st.level, st.trend = newLevel, newTrend
	return pred
}

// initState seeds level/trend/seasonal states from the first stretch of the
// transformed series.
func (m *Model) initState(z []float64) filterState {
	st := filterState{
		sj:  make([]float64, m.Harmonics),
		sjs: make([]float64, m.Harmonics),
	}
	warm := m.Period
	if warm < 2 || warm > len(z) {
		warm = len(z)
		if warm > 10 {
			warm = 10
		}
	}
	st.level = stats.Mean(z[:warm])
	if len(z) >= 2*warm && warm > 0 {
		st.trend = (stats.Mean(z[warm:2*warm]) - st.level) / float64(warm)
	}
	return st
}

// sse runs the filter over z and returns the one-step-ahead SSE.
func (m *Model) sse(z []float64) float64 {
	st := m.initState(z)
	sum := 0.0
	for _, v := range z {
		pred := m.step(&st, v)
		if math.IsNaN(v) {
			continue
		}
		d := v - pred
		sum += d * d
	}
	return sum
}

// Fit selects Box–Cox exponent, seasonal period, and harmonic count by AIC
// and estimates smoothing constants by Nelder–Mead. Candidate periods come
// from the series autocorrelation plus common calendar periods.
func Fit(seq []float64) (*Model, error) {
	if len(seq) < 8 {
		return nil, errors.New("tbats: sequence too short")
	}
	for _, v := range seq {
		if !math.IsNaN(v) && v < 0 {
			return nil, errors.New("tbats: negative observations not supported")
		}
	}

	periods := stats.DominantPeriods(seq, 3, 4, 0.1)
	periods = append(periods, 0, 52, 26, 7, 12)
	seen := map[int]bool{}

	var best *Model
	for _, omega := range []float64{0, 0.5, 1} {
		z := make([]float64, len(seq))
		for i, v := range seq {
			if math.IsNaN(v) {
				z[i] = math.NaN()
				continue
			}
			z[i] = boxCox(v, omega)
		}
		for _, period := range periods {
			key := period + int(omega*1000)*100000
			if period < 0 || period > len(seq)/2 || seen[key] {
				continue
			}
			seen[key] = true
			maxK := 3
			if period == 0 {
				maxK = 0
			} else if period/2 < maxK {
				maxK = period / 2
			}
			for k := 0; k <= maxK; k++ {
				if (period == 0) != (k == 0) {
					continue // seasonal model needs harmonics and vice versa
				}
				m := &Model{Omega: omega, Period: period, Harmonics: k, n: len(seq)}
				obj := func(p []float64) float64 {
					m.Alpha = optimize.Clamp(p[0], 0, 1)
					m.Beta = optimize.Clamp(p[1], 0, 1)
					m.Phi = optimize.Clamp(p[2], 0.6, 1)
					if k > 0 {
						m.Gamma = optimize.Clamp(p[3], 0, 1)
					}
					return m.sse(z)
				}
				x0 := []float64{0.3, 0.05, 0.97}
				if k > 0 {
					x0 = append(x0, 0.2)
				}
				xbest, fbest := optimize.NelderMead(obj, x0, optimize.NelderMeadOptions{MaxIter: 600})
				obj(xbest) // restore best params into m
				nobs := float64(len(seq))
				params := float64(len(x0) + 2*k + 2) // smoothers + seasonal & level/trend states
				variance := fbest / nobs
				if variance < 1e-12 {
					variance = 1e-12
				}
				m.aic = nobs*math.Log(variance) + 2*params
				if best == nil || m.aic < best.aic {
					// Re-run the filter to capture the final state.
					st := m.initState(z)
					for _, v := range z {
						m.step(&st, v)
					}
					m.level, m.trend, m.sj, m.sjs = st.level, st.trend, st.sj, st.sjs
					best = m
				}
			}
		}
	}
	if best == nil {
		return nil, errors.New("tbats: no candidate model could be fitted")
	}
	// Residual ARMA correction (the "A" of TBATS): fit on the selected
	// model's one-step residuals in transformed space; AIC keeps it only
	// when the residuals are genuinely autocorrelated.
	z := make([]float64, len(seq))
	for i, v := range seq {
		if math.IsNaN(v) {
			z[i] = math.NaN()
			continue
		}
		z[i] = boxCox(v, best.Omega)
	}
	best.arma = fitARMA(best.residualsOf(z))
	return best, nil
}

// residualsOf runs the filter over z and collects the one-step residuals
// (0 at missing observations, so the ARMA recursion stays defined).
func (m *Model) residualsOf(z []float64) []float64 {
	st := m.initState(z)
	out := make([]float64, len(z))
	for i, v := range z {
		pred := m.step(&st, v)
		if math.IsNaN(v) {
			out[i] = 0
			continue
		}
		out[i] = v - pred
	}
	return out
}

// Fitted returns the in-sample one-step-ahead predictions in the original
// scale, aligned with seq.
func (m *Model) Fitted(seq []float64) []float64 {
	z := make([]float64, len(seq))
	for i, v := range seq {
		if math.IsNaN(v) {
			z[i] = math.NaN()
			continue
		}
		z[i] = boxCox(v, m.Omega)
	}
	st := m.initState(z)
	out := make([]float64, len(seq))
	var armaAdj []float64
	if m.arma.active() {
		armaAdj = m.arma.predictInSample(m.residualsOf(z))
	}
	for i, v := range z {
		pred := m.step(&st, v)
		if armaAdj != nil {
			pred += armaAdj[i]
		}
		out[i] = invBoxCox(pred, m.Omega)
	}
	return out
}

// Forecast extrapolates h steps past the training data.
func (m *Model) Forecast(h int) []float64 {
	if h <= 0 {
		return nil
	}
	st := filterState{
		level: m.level, trend: m.trend,
		sj:  append([]float64(nil), m.sj...),
		sjs: append([]float64(nil), m.sjs...),
	}
	out := make([]float64, h)
	var armaFC []float64
	if m.arma.active() {
		armaFC = m.arma.forecast(h)
	}
	for t := 0; t < h; t++ {
		pred := m.step(&st, math.NaN())
		if armaFC != nil {
			pred += armaFC[t]
		}
		out[t] = invBoxCox(pred, m.Omega)
	}
	return out
}

// AIC exposes the selected model's Akaike information criterion.
func (m *Model) AIC() float64 { return m.aic }
