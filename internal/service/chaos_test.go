package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"dspot/internal/admit"
	"dspot/internal/core"
	"dspot/internal/datagen"
	"dspot/internal/engine"
	"dspot/internal/jobs"
	"dspot/internal/registry"
	"dspot/internal/tensor"
)

// faultyModel is the minimal fitted artefact of the fault-injection engine.
type faultyModel struct {
	Eng  string   `json:"engine"`
	Kws  []string `json:"keywords"`
	Locs []string `json:"locations"`
	N    int      `json:"ticks"`
}

func (m *faultyModel) EngineName() string  { return "faulty" }
func (m *faultyModel) Keywords() []string  { return m.Kws }
func (m *faultyModel) Locations() []string { return m.Locs }
func (m *faultyModel) Ticks() int          { return m.N }
func (m *faultyModel) Validate() error     { return nil }

// faultyEngine injects fit faults on demand: Fit fails while fail is set.
// It registers once for the test binary; auto never selects it because its
// coding cost always errors, so other tests are unaffected.
type faultyEngine struct{ fail atomic.Bool }

var faulty = func() *faultyEngine {
	e := &faultyEngine{}
	e.fail.Store(true)
	engine.Register(e)
	return e
}()

func (e *faultyEngine) Name() string { return "faulty" }

func (e *faultyEngine) Fit(x *tensor.Tensor, opts engine.FitOptions) (engine.Model, error) {
	if e.fail.Load() {
		return nil, errors.New("injected fit fault")
	}
	return &faultyModel{Eng: "faulty", Kws: x.Keywords, Locs: x.Locations, N: x.Ticks}, nil
}

func (e *faultyEngine) Simulate(m engine.Model, kw string, n int) ([]float64, error) {
	return make([]float64, n), nil
}

func (e *faultyEngine) Forecast(m engine.Model, kw string, horizon int) ([]float64, error) {
	return make([]float64, horizon), nil
}

func (e *faultyEngine) CodingCost(m engine.Model, x *tensor.Tensor) (float64, error) {
	return 0, errors.New("faulty engine prices nothing")
}

func (e *faultyEngine) EncodeModel(w io.Writer, m engine.Model) error {
	return json.NewEncoder(w).Encode(m)
}

func (e *faultyEngine) DecodeModel(r io.Reader) (engine.Model, error) {
	var m faultyModel
	if err := json.NewDecoder(r).Decode(&m); err != nil {
		return nil, err
	}
	return &m, nil
}

// shedBody decodes one structured rejection body.
func shedBody(t *testing.T, body string) shedResponse {
	t.Helper()
	var sr shedResponse
	if err := json.Unmarshal([]byte(body), &sr); err != nil {
		t.Fatalf("shed body not structured JSON: %v: %s", err, body)
	}
	return sr
}

// TestBreakerLifecycleOverHTTP drives the per-engine circuit breaker through
// open → half-open → closed using injected fit faults, entirely over HTTP:
// consecutive 422s trip it, the open breaker sheds with a structured 503 and
// surfaces on /readyz, and after the cool-off one healthy fit closes it.
func TestBreakerLifecycleOverHTTP(t *testing.T) {
	reg, err := registry.Open(registry.Options{})
	if err != nil {
		t.Fatal(err)
	}
	metrics := NewMetrics()
	s := &Server{
		Registry: reg,
		Metrics:  metrics,
		Breakers: NewBreakerSet(admit.BreakerOptions{
			FailureThreshold: 2, OpenFor: 100 * time.Millisecond,
		}, metrics),
	}
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	csv := smallTensorCSV(t)

	faulty.fail.Store(true)
	defer faulty.fail.Store(true)
	for i := 0; i < 2; i++ {
		resp, body := post(t, srv.URL+"/v1/fit?engine=faulty", "text/csv", csv)
		if resp.StatusCode != http.StatusUnprocessableEntity {
			t.Fatalf("faulty fit %d status %d: %s", i, resp.StatusCode, body)
		}
	}
	if st := s.Breakers.For("faulty").State(); st != admit.Open {
		t.Fatalf("breaker %v after %d consecutive faults, want open", st, 2)
	}

	// Open: fits shed fast with the structured body, and /readyz names the gate.
	resp, body := post(t, srv.URL+"/v1/fit?engine=faulty", "text/csv", csv)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("open-breaker fit status %d: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("breaker shed without Retry-After")
	}
	sr := shedBody(t, body)
	if sr.Reason != ShedBreakerOpen || sr.Engine != "faulty" || sr.RetryAfterSeconds < 1 {
		t.Fatalf("breaker shed body %+v", sr)
	}
	rresp, rbody := probeJSON(t, srv.URL+"/readyz")
	if rresp.StatusCode != http.StatusServiceUnavailable ||
		rbody["reason"] != "engine breaker open: faulty" {
		t.Fatalf("readyz with open breaker = %d %v", rresp.StatusCode, rbody)
	}

	// Past the cool-off with the fault cleared: the half-open probe succeeds
	// and the breaker closes.
	faulty.fail.Store(false)
	time.Sleep(150 * time.Millisecond)
	resp, body = post(t, srv.URL+"/v1/fit?engine=faulty", "text/csv", csv)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("recovered fit status %d: %s", resp.StatusCode, body)
	}
	if st := s.Breakers.For("faulty").State(); st != admit.Closed {
		t.Fatalf("breaker %v after successful probe, want closed", st)
	}
	if rresp, _ := probeJSON(t, srv.URL+"/readyz"); rresp.StatusCode != http.StatusOK {
		t.Fatalf("readyz %d after breaker closed, want 200", rresp.StatusCode)
	}

	// A fault while closed re-counts from zero: one failure does not re-trip.
	faulty.fail.Store(true)
	if resp, _ := post(t, srv.URL+"/v1/fit?engine=faulty", "text/csv", csv); resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("single post-recovery fault status %d", resp.StatusCode)
	}
	if st := s.Breakers.For("faulty").State(); st != admit.Closed {
		t.Fatalf("breaker %v after one post-recovery fault, want closed", st)
	}
}

// TestJobFitShedsOnOpenBreaker covers the async path: an open breaker
// rejects at submit time (no queue slot consumed), and the job-level
// Acquire re-checks at run time.
func TestJobFitShedsOnOpenBreaker(t *testing.T) {
	reg, err := registry.Open(registry.Options{})
	if err != nil {
		t.Fatal(err)
	}
	eng := jobs.New(jobs.Options{Workers: 1, QueueDepth: 4})
	t.Cleanup(eng.Close)
	s := &Server{
		Registry: reg,
		Jobs:     eng,
		Breakers: NewBreakerSet(admit.BreakerOptions{
			FailureThreshold: 1, OpenFor: time.Minute,
		}, nil),
	}
	srv2 := httptest.NewServer(s.Handler())
	defer srv2.Close()

	// Trip the faulty breaker directly (threshold 1).
	release, ok := s.Breakers.For("faulty").Acquire()
	if !ok {
		t.Fatal("closed breaker refused")
	}
	release(true)

	resp, body := post(t, srv2.URL+"/v1/jobs/fit?engine=faulty", "text/csv", smallTensorCSV(t))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("open-breaker job fit status %d: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("job shed without Retry-After")
	}
	sr := shedBody(t, body)
	if sr.Reason != ShedBreakerOpen || sr.Engine != "faulty" {
		t.Fatalf("job shed body %+v", sr)
	}
	if got := s.Jobs.QueueLen(); got != 0 {
		t.Fatalf("shed request consumed a queue slot: depth %d", got)
	}
}

// TestJobFitOverBudget429 covers deadline-aware admission over HTTP: with a
// queue wait estimated past the engine's admission budget, the fit answers
// a structured 429 instead of queueing work it cannot finish in time.
func TestJobFitOverBudget429(t *testing.T) {
	reg, err := registry.Open(registry.Options{})
	if err != nil {
		t.Fatal(err)
	}
	eng := jobs.New(jobs.Options{Workers: 1, QueueDepth: 4, AdmitBudget: time.Millisecond})
	t.Cleanup(eng.Close)
	s := &Server{Registry: reg, Jobs: eng}
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	// Seed the runtime estimate with a slow job, then pin the worker and
	// queue one more so the estimated wait dwarfs the 1ms budget.
	slowID, err := eng.Submit("slow", func(ctx context.Context) (any, error) {
		time.Sleep(50 * time.Millisecond)
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, srv.URL, slowID)
	block := make(chan struct{})
	started := make(chan struct{})
	defer close(block)
	if _, err := eng.Submit("blocker", func(ctx context.Context) (any, error) {
		close(started)
		select {
		case <-block:
		case <-ctx.Done():
		}
		return nil, nil
	}); err != nil {
		t.Fatal(err)
	}
	<-started
	if _, err := eng.Submit("queued", func(ctx context.Context) (any, error) {
		return nil, nil
	}); err != nil {
		t.Fatal(err)
	}

	resp, body := post(t, srv.URL+"/v1/jobs/fit", "text/csv", smallTensorCSV(t))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-budget fit status %d: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	sr := shedBody(t, body)
	if sr.Reason != ShedOverBudget || sr.QueueCap != 4 || sr.RetryAfterSeconds < 1 {
		t.Fatalf("over-budget body %+v", sr)
	}
}

// TestAppendLagSheds429 covers ingest admission: once the smoothed append
// latency exceeds the budget, appends shed with a structured 429 until the
// estimate decays.
func TestAppendLagSheds429(t *testing.T) {
	reg, err := registry.Open(registry.Options{
		StreamFit: core.FitOptions{Workers: 1, DisableGrowth: true, MaxShocks: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	s := &Server{Registry: reg, AppendBudget: 50 * time.Millisecond}
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	// Healthy first: no latency signal yet, appends admit.
	resp, body := post(t, srv.URL+"/v1/streams/lag/append?refit_every=1000",
		"application/json", `{"values":[1,2,3]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("baseline append status %d: %s", resp.StatusCode, body)
	}

	// Inject a lag estimate far past the budget.
	s.appendEWMA().Observe(2 * time.Second)
	resp, body = post(t, srv.URL+"/v1/streams/lag/append?refit_every=1000",
		"application/json", `{"values":[4]}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("lagging append status %d: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("append shed without Retry-After")
	}
	sr := shedBody(t, body)
	if sr.Reason != ShedAppendLag || sr.RetryAfterSeconds < 1 {
		t.Fatalf("append shed body %+v", sr)
	}

	// A server without a budget never sheds on lag.
	s2 := &Server{Registry: reg}
	srv2 := httptest.NewServer(s2.Handler())
	defer srv2.Close()
	s2.appendEWMA().Observe(2 * time.Second)
	if resp, body := post(t, srv2.URL+"/v1/streams/lag/append?refit_every=1000",
		"application/json", `{"values":[5]}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("unbudgeted append status %d: %s", resp.StatusCode, body)
	}
}

// TestReadyzEnumeratesReasons: with several gates tripped at once, /readyz
// lists all of them, keeping the first as the scalar "reason" older probes
// parse.
func TestReadyzEnumeratesReasons(t *testing.T) {
	bs := NewBreakerSet(admit.BreakerOptions{FailureThreshold: 1, OpenFor: time.Minute}, nil)
	release, ok := bs.For("dspot").Acquire()
	if !ok {
		t.Fatal("closed breaker refused")
	}
	release(true)
	srv := httptest.NewServer((&Server{
		Ready:    func() error { return errors.New("registry loading") },
		Breakers: bs,
	}).Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("unready without Retry-After")
	}
	var body struct {
		Status  string   `json:"status"`
		Reason  string   `json:"reason"`
		Reasons []string `json:"reasons"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Reason != "registry loading" {
		t.Fatalf("reason %q, want the first gate", body.Reason)
	}
	want := []string{"registry loading", "engine breaker open: dspot"}
	if len(body.Reasons) != 2 || body.Reasons[0] != want[0] || body.Reasons[1] != want[1] {
		t.Fatalf("reasons %v, want %v", body.Reasons, want)
	}
}

// TestHostileScenarioMatrix is the chaos acceptance gate: every hostile
// generator drives a bounded stream over HTTP and the server degrades
// gracefully — only 200/400 answers, memory bounded by the retention
// horizon, liveness green throughout, and forecasts either serve or answer
// a clean 409.
func TestHostileScenarioMatrix(t *testing.T) {
	const retention = 64
	for _, sc := range datagen.HostileScenarios(1, 150) {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			reg, err := registry.Open(registry.Options{
				StreamFit:       core.FitOptions{Workers: 1, DisableGrowth: true, MaxShocks: 2},
				StreamRetention: retention,
			})
			if err != nil {
				t.Fatal(err)
			}
			metrics := NewMetrics()
			s := &Server{
				Registry: reg,
				Metrics:  metrics,
				Breakers: NewBreakerSet(admit.BreakerOptions{}, metrics),
			}
			srv := httptest.NewServer(s.Handler())
			defer srv.Close()

			id := "hostile-" + sc.Name
			for i, op := range sc.Ops {
				resp, body := post(t, srv.URL+"/v1/streams/"+id+"/append",
					"application/json", appendBodyJSON(t, op))
				if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusBadRequest {
					t.Fatalf("%s op %d: status %d (graceful degradation is 200 or 400): %s",
						sc.Name, i, resp.StatusCode, body)
				}
			}

			var st registry.StreamStatus
			if resp := getJSON(t, srv.URL+"/v1/streams/"+id, &st); resp.StatusCode != http.StatusOK {
				t.Fatalf("stream status %d", resp.StatusCode)
			}
			if st.Len > retention+retention/8 {
				t.Fatalf("%s: stream grew to %d ticks, retention %d — memory unbounded",
					sc.Name, st.Len, retention)
			}
			if sc.Ticks() > 2*retention && st.Evicted == 0 {
				t.Fatalf("%s: %d ticks in, nothing evicted", sc.Name, sc.Ticks())
			}

			// Liveness stays green and the forecast path answers cleanly:
			// either a model is serving (last-good or current) or a 409.
			if resp, _ := doRequest(t, http.MethodGet, srv.URL+"/healthz"); resp.StatusCode != http.StatusOK {
				t.Fatalf("%s: liveness failed under hostile input", sc.Name)
			}
			resp, body := doRequest(t, http.MethodGet, srv.URL+"/v1/streams/"+id+"/forecast?horizon=8")
			if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusConflict {
				t.Fatalf("%s: forecast status %d: %s", sc.Name, resp.StatusCode, body)
			}
		})
	}
}

// appendBodyJSON renders one hostile StreamOp as the append wire body
// (Missing → null, positioned ops carry "at").
func appendBodyJSON(t *testing.T, op datagen.StreamOp) string {
	t.Helper()
	var sb strings.Builder
	sb.WriteString(`{"values":[`)
	for i, v := range op.Values {
		if i > 0 {
			sb.WriteByte(',')
		}
		if tensor.IsMissing(v) {
			sb.WriteString("null")
		} else {
			fmt.Fprintf(&sb, "%g", v)
		}
	}
	sb.WriteString(`]`)
	if op.At >= 0 {
		fmt.Fprintf(&sb, `,"at":%d`, op.At)
	}
	sb.WriteString(`}`)
	return sb.String()
}
