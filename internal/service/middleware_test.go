package service

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"dspot/internal/obs"
)

// instrumentedServer returns a test server with metrics (and optional
// logging) enabled, plus its Metrics handle.
func instrumentedServer(t *testing.T, logBuf *bytes.Buffer) (*httptest.Server, *Metrics) {
	t.Helper()
	m := NewMetrics()
	s := &Server{Workers: 2, Metrics: m}
	if logBuf != nil {
		s.Logger = obs.NewLogger(logBuf, slog.LevelInfo, false)
	}
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)
	return srv, m
}

func scrape(t *testing.T, srv *httptest.Server) string {
	t.Helper()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// TestMetricsAfterFit drives a fit through the instrumented handler and
// checks the Prometheus exposition carries request and fit-stage series.
func TestMetricsAfterFit(t *testing.T) {
	var logBuf bytes.Buffer
	srv, _ := instrumentedServer(t, &logBuf)
	csv := smallTensorCSV(t)

	resp, body := post(t, srv.URL+"/v1/fit?global_only=1&no_growth=1", "text/csv", csv)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fit status %d: %s", resp.StatusCode, body)
	}

	out := scrape(t, srv)
	for _, want := range []string{
		`http_requests_total{path="/v1/fit",method="POST",code="200"} 1`,
		`http_request_seconds_bucket{path="/v1/fit",le="+Inf"} 1`,
		`http_request_seconds_count{path="/v1/fit"} 1`,
		`http_response_bytes_total{path="/v1/fit"}`,
		`# TYPE fit_stage_seconds histogram`,
		`fit_stage_seconds_count{stage="base"}`,
		`fit_stage_seconds_count{stage="global"} 1`,
		`fit_keywords_total 1`,
		`# TYPE fit_lm_iterations_total counter`,
		`# TYPE fit_shocks_tried_total counter`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	// The fit did real LM work and tried at least one shock candidate.
	for _, counter := range []string{"fit_lm_iterations_total", "fit_shocks_tried_total"} {
		if strings.Contains(out, counter+" 0\n") {
			t.Errorf("%s stayed zero after a fit", counter)
		}
	}
	// Request logging emitted both the request line and the fit summary.
	logs := logBuf.String()
	for _, want := range []string{"msg=request", "path=/v1/fit", "msg=fit", "shocks_tried="} {
		if !strings.Contains(logs, want) {
			t.Errorf("log missing %q in:\n%s", want, logs)
		}
	}
}

// TestMiddlewareCountsErrors checks 4xx responses are labelled correctly
// and the in-flight gauge returns to zero.
func TestMiddlewareCountsErrors(t *testing.T) {
	srv, m := instrumentedServer(t, nil)

	resp, err := http.Get(srv.URL + "/v1/fit") // wrong method
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	post(t, srv.URL+"/v1/events", "application/json", "not json") // 400

	out := scrape(t, srv)
	for _, want := range []string{
		`http_requests_total{path="/v1/fit",method="GET",code="405"} 1`,
		`http_requests_total{path="/v1/events",method="POST",code="400"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q in:\n%s", want, out)
		}
	}
	if got := m.inflight.Value(); got != 0 {
		t.Fatalf("in-flight gauge %g after requests drained", got)
	}
}

// TestOversizedBody asserts the MaxBody limit answers 413 with the JSON
// error shape on every body-reading endpoint.
func TestOversizedBody(t *testing.T) {
	s := &Server{Workers: 1, MaxBody: 64}
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)

	// Leading whitespace is valid prefix for both CSV and JSON parsing, so
	// every decoder is forced to read past the byte limit.
	big := strings.Repeat(" ", 1024) + "{}"
	for _, path := range []string{"/v1/fit", "/v1/events", "/v1/forecast", "/v1/anomalies"} {
		resp, body := post(t, srv.URL+path, "application/octet-stream", big)
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Fatalf("%s oversized body: status %d (want 413): %s", path, resp.StatusCode, body)
		}
		var e struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal([]byte(body), &e); err != nil || e.Error == "" {
			t.Fatalf("%s: error payload not JSON {error}: %q", path, body)
		}
	}
}

// TestAllowHeaders asserts 405 responses carry the mandatory Allow header.
func TestAllowHeaders(t *testing.T) {
	srv := testServer(t)
	for _, path := range []string{"/v1/fit", "/v1/events", "/v1/forecast", "/v1/anomalies"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("GET %s status %d", path, resp.StatusCode)
		}
		if allow := resp.Header.Get("Allow"); allow != "POST" {
			t.Fatalf("GET %s Allow header %q, want POST", path, allow)
		}
	}
	resp, _ := post(t, srv.URL+"/healthz", "text/plain", "")
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /healthz status %d", resp.StatusCode)
	}
	if allow := resp.Header.Get("Allow"); allow != "GET" {
		t.Fatalf("POST /healthz Allow header %q, want GET", allow)
	}
}

// TestMalformedBodies covers the JSON error shape on parse failures.
func TestMalformedBodies(t *testing.T) {
	srv := testServer(t)
	cases := []struct{ path, body string }{
		{"/v1/fit", "keyword,location\nbroken,row"},
		{"/v1/events", `{"keywords": 42}`},
		{"/v1/anomalies", `[1,2,3]`},
	}
	for _, c := range cases {
		resp, body := post(t, srv.URL+c.path, "application/json", c.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400: %s", c.path, resp.StatusCode, body)
		}
		var e struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal([]byte(body), &e); err != nil || e.Error == "" {
			t.Fatalf("%s: error payload not JSON {error}: %q", c.path, body)
		}
	}
}

// TestMetricsRouteAbsentWithoutMetrics: a bare Server must not expose
// /metrics.
func TestMetricsRouteAbsentWithoutMetrics(t *testing.T) {
	srv := testServer(t)
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/metrics on bare server: status %d, want 404", resp.StatusCode)
	}
}
