package service

import (
	"dspot/internal/engine"
	"dspot/internal/obs/trace"
)

// Fit-span bridge. The fitters report progress through
// FitOptions.Progress as FitEvents carrying stage durations at stage
// boundaries — they never see a context or a tracer, which keeps the model
// families dependency-free and their Progress==nil fast path untouched.
// This file turns those events into retroactive child spans of whatever
// span is active where the fit runs (the request span for the sync
// endpoint, the job.run span for async fits).

// fitSpanHook returns a ProgressFunc mirroring fit stage completions as
// child spans of parent, or nil when tracing is off. Each span carries the
// engine the fit ran under. Only the coarse stages become spans —
// per-keyword global fits (with their LM iteration counts) and the
// global/local phases. The fine-grained stages (every shock candidate,
// every local cell) would mean thousands of spans per fit; those stay
// aggregated in FitTrace and the stage metrics.
func fitSpanHook(tr *trace.Tracer, parent trace.SpanContext, engName string) engine.ProgressFunc {
	if tr == nil || !parent.Valid() {
		return nil
	}
	return func(ev engine.FitEvent) {
		switch ev.Stage {
		case engine.StageKeyword:
			tr.RecordChild(parent, "fit.keyword", ev.Duration,
				trace.String("engine", engName),
				trace.Int("keyword", ev.Keyword),
				trace.Int("round", ev.Round),
				trace.Int("lm_iterations", ev.LMIters),
				trace.Int("lm_stalls", ev.LMStalls))
		case engine.StageGlobal:
			tr.RecordChild(parent, "fit.global", ev.Duration,
				trace.String("engine", engName))
		case engine.StageLocal:
			tr.RecordChild(parent, "fit.local", ev.Duration,
				trace.String("engine", engName))
		}
	}
}

// chainProgress composes two hooks, either of which may be nil.
func chainProgress(a, b engine.ProgressFunc) engine.ProgressFunc {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	return func(ev engine.FitEvent) { a(ev); b(ev) }
}
