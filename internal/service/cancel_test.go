package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"dspot/internal/datagen"
	"dspot/internal/dataset"
	"dspot/internal/jobs"
	"dspot/internal/obs"
)

// TestJobFitCancelIsCooperative cancels an in-flight fit job over HTTP and
// asserts it finishes as cancelled through the normal path: prompt stop
// (within the cooperative latency bound, not the job deadline) and no
// abandonment recorded in the jobs metrics.
func TestJobFitCancelIsCooperative(t *testing.T) {
	mreg := obs.NewRegistry()
	srv, _, _ := statefulServer(t, "", jobs.Options{
		Workers: 1,
		Metrics: jobs.NewMetricsOn(mreg),
	})

	// A deliberately heavy fit — full pipeline with growth and shock
	// discovery over the natural GoogleTrends length — so the cancel lands
	// mid-run with plenty of work still ahead.
	truth, err := datagen.GoogleTrendsKeyword("grammy",
		datagen.Config{Locations: 8, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := dataset.WriteCSV(&buf, truth.Tensor); err != nil {
		t.Fatal(err)
	}

	resp, body := post(t, srv.URL+"/v1/jobs/fit", "text/csv", buf.String())
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("jobs/fit status %d: %s", resp.StatusCode, body)
	}
	var acc struct {
		JobID string `json:"job_id"`
	}
	if err := json.Unmarshal([]byte(body), &acc); err != nil {
		t.Fatalf("unmarshal accept body: %v: %s", err, body)
	}

	// Wait until the fit is actually running, then give it a moment to get
	// into the optimisation loops before pulling the plug.
	deadline := time.Now().Add(10 * time.Second)
	for {
		var snap jobs.Snapshot
		getJSON(t, srv.URL+"/v1/jobs/"+acc.JobID, &snap)
		if snap.State == jobs.StateRunning {
			break
		}
		if snap.State.Terminal() {
			t.Fatalf("job finished before it could be cancelled: %+v", snap)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never started: %+v", snap)
		}
		time.Sleep(2 * time.Millisecond)
	}
	time.Sleep(50 * time.Millisecond)

	cancelAt := time.Now()
	cresp, cbody := doRequest(t, http.MethodDelete, srv.URL+"/v1/jobs/"+acc.JobID)
	if cresp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel status %d: %s", cresp.StatusCode, cbody)
	}
	snap := waitJob(t, srv.URL, acc.JobID)
	stopLag := time.Since(cancelAt)
	if snap.State != jobs.StateCancelled {
		t.Fatalf("state = %s, want cancelled (%+v)", snap.State, snap)
	}
	// Cooperative stop is bounded by one LM iteration — milliseconds. Allow
	// slack for slow machines but stay far below the 15m job timeout and
	// clearly under any free-running fit of this tensor.
	if stopLag > 10*time.Second {
		t.Fatalf("cancelled fit took %v to stop", stopLag)
	}

	// The fit returned on its own: nothing was abandoned.
	rec := httptest.NewRecorder()
	mreg.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	metrics := rec.Body.String()
	if !strings.Contains(metrics, "jobs_abandoned_total 0") {
		t.Fatalf("expected jobs_abandoned_total 0 after cooperative cancel; metrics:\n%s", metrics)
	}
}
