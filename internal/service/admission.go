// Admission control and load shedding: every rejection the serving layer
// makes under pressure goes through one structured path, so clients always
// get a machine-readable reason, a Retry-After, and operators get a
// http_sheds_total{reason} data point. The mechanisms live in
// internal/admit; this file is the HTTP policy around them.
package service

import (
	"encoding/json"
	"net/http"
	"strconv"
	"time"

	"dspot/internal/admit"
)

// Shed reasons carried in shedResponse.Reason and the
// http_sheds_total{reason} metric label.
const (
	// ShedBreakerOpen: the target engine's circuit breaker is open after
	// consecutive fit failures; the request failed fast.
	ShedBreakerOpen = "breaker_open"
	// ShedOverBudget: the estimated queue wait exceeds the request's
	// admission budget (server default or the request's own deadline).
	ShedOverBudget = "over_budget"
	// ShedQueueFull: the jobs queue has no free slot at all.
	ShedQueueFull = "queue_full"
	// ShedAppendLag: the smoothed stream-append latency exceeds the append
	// budget — ingest is backed up and more appends only deepen the lag.
	ShedAppendLag = "append_lag"
)

// shedResponse is the structured body of every load-shed rejection (429 or
// 503). Error keeps the {"error": …} shape existing clients parse; the rest
// tells a well-behaved client what tripped and when to come back.
type shedResponse struct {
	Error             string `json:"error"`
	Reason            string `json:"reason"`
	Engine            string `json:"engine,omitempty"`
	QueueDepth        int    `json:"queue_depth,omitempty"`
	QueueCap          int    `json:"queue_cap,omitempty"`
	RetryAfterSeconds int    `json:"retry_after_seconds"`
}

// shed writes one structured rejection: Retry-After header (at least 1s,
// default 5s), JSON body, and the shed counter.
func (s *Server) shed(w http.ResponseWriter, code int, resp shedResponse) {
	if resp.RetryAfterSeconds < 1 {
		resp.RetryAfterSeconds = 5
	}
	w.Header().Set("Retry-After", strconv.Itoa(resp.RetryAfterSeconds))
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(resp)
	s.Metrics.ObserveShed(resp.Reason)
}

// breakerFor returns the breaker guarding engName, or nil when breakers are
// not configured. Auto fits are guarded by a breaker named "auto": the
// candidate sweep is itself the operation that can stampede a sick fleet.
func (s *Server) breakerFor(engName string) *admit.Breaker {
	if s.Breakers == nil {
		return nil
	}
	return s.Breakers.For(engName)
}

// shedBreakerOpen answers one breaker rejection.
func (s *Server) shedBreakerOpen(w http.ResponseWriter, engName string, b *admit.Breaker) {
	s.shed(w, http.StatusServiceUnavailable, shedResponse{
		Error:             "engine " + strconv.Quote(engName) + " circuit breaker open",
		Reason:            ShedBreakerOpen,
		Engine:            engName,
		RetryAfterSeconds: admit.RetryAfterSeconds(b.RetryAfter()),
	})
}

// appendEWMA lazily builds the smoothed append-latency tracker feeding the
// append_lag admission gate.
func (s *Server) appendEWMA() *admit.EWMA {
	s.appendOnce.Do(func() { s.appendLat = admit.NewEWMA(0) })
	return s.appendLat
}

// appendBudget resolves the effective append admission budget: the server's
// AppendBudget, tightened by the request's own deadline when it has one.
// gated=false (no budget at all) admits unconditionally.
func (s *Server) appendBudget(r *http.Request) (budget time.Duration, gated bool) {
	budget = s.AppendBudget
	if dl, ok := r.Context().Deadline(); ok {
		if rem := time.Until(dl); budget <= 0 || rem < budget {
			budget = rem
		}
	}
	return budget, budget > 0
}

// NewBreakerSet builds the per-engine breaker set for a Server, mirroring
// every state transition into the engine_breaker_state metric (m may be
// nil for an unmetered server).
func NewBreakerSet(opts admit.BreakerOptions, m *Metrics) *admit.BreakerSet {
	return admit.NewBreakerSet(opts, func(name string, st admit.State) {
		m.SetBreakerState(name, st)
	})
}
