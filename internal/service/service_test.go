package service

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"dspot/internal/core"
	"dspot/internal/datagen"
	"dspot/internal/dataset"
)

func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer((&Server{Workers: 2}).Handler())
	t.Cleanup(srv.Close)
	return srv
}

// smallTensorCSV renders a small grammy world as long-form CSV.
func smallTensorCSV(t *testing.T) string {
	t.Helper()
	truth, err := datagen.GoogleTrendsKeyword("grammy",
		datagen.Config{Locations: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := dataset.WriteCSV(&buf, truth.Tensor); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func post(t *testing.T, url, contentType, body string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Post(url, contentType, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(data)
}

func TestHealthz(t *testing.T) {
	srv := testServer(t)
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
}

func TestFitEventsForecastPipeline(t *testing.T) {
	srv := testServer(t)
	csv := smallTensorCSV(t)

	// Fit (global-only keeps the test fast).
	resp, modelJSON := post(t, srv.URL+"/v1/fit?global_only=1&no_growth=1",
		"text/csv", csv)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fit status %d: %s", resp.StatusCode, modelJSON)
	}
	m, err := dataset.ReadModel(strings.NewReader(modelJSON))
	if err != nil {
		t.Fatalf("fit returned unparsable model: %v", err)
	}
	if len(m.Keywords) != 1 || m.Keywords[0] != "grammy" {
		t.Fatalf("model keywords %v", m.Keywords)
	}

	// Events.
	resp, eventsBody := post(t, srv.URL+"/v1/events", "application/json", modelJSON)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events status %d: %s", resp.StatusCode, eventsBody)
	}
	var events struct {
		Events []EventJSON `json:"events"`
	}
	if err := json.Unmarshal([]byte(eventsBody), &events); err != nil {
		t.Fatal(err)
	}
	if len(events.Events) == 0 {
		t.Fatal("no events detected on the grammy world")
	}
	cyclic := false
	for _, e := range events.Events {
		if e.Cyclic {
			cyclic = true
		}
	}
	if !cyclic {
		t.Fatalf("no cyclic event: %+v", events.Events)
	}

	// Forecast.
	resp, fcBody := post(t, srv.URL+"/v1/forecast?horizon=104",
		"application/json", modelJSON)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("forecast status %d: %s", resp.StatusCode, fcBody)
	}
	var fc ForecastJSON
	if err := json.Unmarshal([]byte(fcBody), &fc); err != nil {
		t.Fatal(err)
	}
	if len(fc.Forecast) != 104 {
		t.Fatalf("forecast length %d", len(fc.Forecast))
	}
	if len(fc.Events) == 0 {
		t.Fatal("no predicted events in forecast")
	}
}

func TestAnomaliesEndpoint(t *testing.T) {
	srv := testServer(t)

	// Hand-built model and series with one corrupted tick.
	p := core.KeywordParams{N: 100, Beta: 0.5, Delta: 0.45, Gamma: 0.5,
		I0: 0.02, TEta: core.NoGrowth}
	m := &core.Model{Keywords: []string{"k"}, Locations: []string{"WW"},
		Ticks: 150, Global: []core.KeywordParams{p}}
	series := core.Simulate(&p, 150, nil, -1)
	series[70] += 30

	var modelBuf bytes.Buffer
	if err := dataset.WriteModel(&modelBuf, m); err != nil {
		t.Fatal(err)
	}
	reqBody, _ := json.Marshal(map[string]any{
		"model":     json.RawMessage(modelBuf.Bytes()),
		"series":    series,
		"threshold": 3,
	})
	resp, body := post(t, srv.URL+"/v1/anomalies", "application/json", string(reqBody))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("anomalies status %d: %s", resp.StatusCode, body)
	}
	var out struct {
		Anomalies []core.Anomaly `json:"anomalies"`
	}
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Anomalies) == 0 || out.Anomalies[0].Tick != 70 {
		t.Fatalf("expected anomaly at 70: %+v", out.Anomalies)
	}
}

func TestBadRequests(t *testing.T) {
	srv := testServer(t)
	cases := []struct {
		path, contentType, body string
		wantCode                int
	}{
		{"/v1/fit", "text/csv", "not a csv header", http.StatusBadRequest},
		{"/v1/events", "application/json", "not json", http.StatusBadRequest},
		{"/v1/forecast", "application/json", `{"keywords":[],"ticks":0,"global":[]}`, http.StatusBadRequest},
		{"/v1/anomalies", "application/json", `{}`, http.StatusBadRequest},
	}
	for _, c := range cases {
		resp, body := post(t, srv.URL+c.path, c.contentType, c.body)
		if resp.StatusCode != c.wantCode {
			t.Fatalf("%s: status %d (want %d): %s", c.path, resp.StatusCode, c.wantCode, body)
		}
		if !strings.Contains(body, "error") {
			t.Fatalf("%s: no error payload: %s", c.path, body)
		}
	}
}

func TestMethodNotAllowed(t *testing.T) {
	srv := testServer(t)
	for _, path := range []string{"/v1/fit", "/v1/events", "/v1/forecast", "/v1/anomalies"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("GET %s status %d", path, resp.StatusCode)
		}
	}
}

func TestForecastParamValidation(t *testing.T) {
	srv := testServer(t)
	p := core.KeywordParams{N: 10, TEta: core.NoGrowth}
	m := &core.Model{Keywords: []string{"k"}, Locations: []string{"WW"},
		Ticks: 50, Global: []core.KeywordParams{p}}
	var buf bytes.Buffer
	if err := dataset.WriteModel(&buf, m); err != nil {
		t.Fatal(err)
	}
	resp, _ := post(t, srv.URL+"/v1/forecast?horizon=abc", "application/json", buf.String())
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad horizon accepted: %d", resp.StatusCode)
	}
	resp, _ = post(t, srv.URL+"/v1/forecast?keyword=nope", "application/json", buf.String())
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown keyword accepted: %d", resp.StatusCode)
	}
}
